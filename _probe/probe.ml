open Ammboost
let () =
  let cfg =
    { Config.default with
      epochs = 20; daily_volume = 50_000; users = 16; miners = 40; committee_size = 13;
      max_faulty = 4;
      faults = { Faults.Fault_plan.none with
                 Faults.Fault_plan.scenario =
                   { Faults.Fault_plan.quorum_starvation = Some (2, 5); committee_loss = None } };
      watchdog = { Config.default_watchdog with Config.wd_stall_degraded = 2; wd_stall_halted = 4 };
      seed = "probe" }
  in
  let r = System.run cfg in
  Printf.printf "final_mode=%s transitions=%s exits=%d conservation=%b recovery_latency=%s\n"
    r.System.final_mode
    (String.concat "->" (List.map snd r.System.mode_transitions))
    r.System.exits_served r.System.exit_conservation
    (match r.System.recovery_latency with Some l -> Printf.sprintf "%.1f" l | None -> "none")
