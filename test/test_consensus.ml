(* Priority queue, bounded-delay network, PBFT safety/liveness under
   faults, view change, committee election, and the latency model. *)

open Consensus

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:50 ~name gen f)

(* ------------------------------------------------------------------ *)
(* Priority queue                                                      *)
(* ------------------------------------------------------------------ *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let pop () = match Pqueue.pop q with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ];
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_pqueue_stable_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q 1.0 v) [ 1; 2; 3; 4 ];
  let order = ref [] in
  for _ = 1 to 4 do
    match Pqueue.pop q with Some (_, v) -> order := v :: !order | None -> ()
  done;
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4 ] (List.rev !order)

let pqueue_props =
  [ prop "pops are sorted" QCheck2.Gen.(list_size (int_range 0 60) (float_range 0.0 100.0))
      (fun priorities ->
        let q = Pqueue.create () in
        List.iteri (fun i p -> Pqueue.push q p i) priorities;
        let rec drain acc =
          match Pqueue.pop q with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
        in
        let out = drain [] in
        out = List.sort compare priorities) ]

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let test_network_delay_bound () =
  let rng = Amm_crypto.Rng.create "net" in
  let net = Network.create ~rng ~delta:0.5 () in
  for i = 0 to 99 do
    Network.send net ~at:10.0 ~src:0 ~dst:i "m"
  done;
  let rec drain () =
    match Network.next net with
    | Some (at, _, _) ->
      if at < 10.0 || at > 10.5 then Alcotest.failf "delivery at %.3f out of bound" at;
      drain ()
    | None -> ()
  in
  drain ()

let test_network_schedule_exact () =
  let rng = Amm_crypto.Rng.create "net2" in
  let net = Network.create ~rng ~delta:0.5 () in
  Network.schedule net ~at:42.0 ~dst:3 "timer";
  match Network.next net with
  | Some (at, dst, msg) ->
    Alcotest.(check (float 0.0)) "exact time" 42.0 at;
    Alcotest.(check int) "dst" 3 dst;
    Alcotest.(check string) "msg" "timer" msg
  | None -> Alcotest.fail "no event"

(* ------------------------------------------------------------------ *)
(* PBFT                                                                *)
(* ------------------------------------------------------------------ *)

let cfg_of behaviors =
  { Pbft.n = Array.length behaviors;
    f = (Array.length behaviors - 1) / 3;
    behaviors; delta = 0.1; timeout = 1.0; max_time = 120.0 }

let value = Bytes.of_string "meta-block-7"

let run_case name behaviors ~expect_decide ~expect_view_change =
  let rng = Amm_crypto.Rng.create ("pbft-" ^ name) in
  let cfg = cfg_of behaviors in
  let o = Pbft.run ~rng cfg ~value in
  Alcotest.(check bool) (name ^ ": agreement") true (Pbft.honest_agreement cfg o);
  Alcotest.(check bool) (name ^ ": all honest decide") expect_decide
    (Pbft.all_honest_decided cfg o);
  if expect_view_change then
    Alcotest.(check bool) (name ^ ": view changed") true (o.Pbft.total_view_changes > 0)
  else Alcotest.(check int) (name ^ ": no view change") 0 o.Pbft.total_view_changes

let test_pbft_happy () = run_case "happy" (Array.make 7 Pbft.Honest)
    ~expect_decide:true ~expect_view_change:false

let test_pbft_silent_leader () =
  let b = Array.make 7 Pbft.Honest in
  b.(0) <- Pbft.Silent;
  run_case "silent leader" b ~expect_decide:true ~expect_view_change:true

let test_pbft_invalid_leader () =
  let b = Array.make 7 Pbft.Honest in
  b.(0) <- Pbft.Propose_invalid;
  run_case "invalid leader" b ~expect_decide:true ~expect_view_change:true

let test_pbft_max_faulty_replicas () =
  let b = Array.make 7 Pbft.Honest in
  b.(2) <- Pbft.Silent;
  b.(5) <- Pbft.Silent;
  run_case "f silent replicas" b ~expect_decide:true ~expect_view_change:false

let test_pbft_two_bad_leaders_in_a_row () =
  let b = Array.make 10 Pbft.Honest in
  b.(0) <- Pbft.Silent;
  b.(1) <- Pbft.Propose_invalid;
  run_case "two bad leaders" b ~expect_decide:true ~expect_view_change:true

let test_pbft_larger_committee () =
  run_case "n=22" (Array.make 22 Pbft.Honest) ~expect_decide:true ~expect_view_change:false

let test_pbft_requires_quorum_size () =
  Alcotest.check_raises "n < 3f+1" (Invalid_argument "Pbft.run: need n >= 3f+1") (fun () ->
      let cfg =
        { Pbft.n = 4; f = 2; behaviors = Array.make 4 Pbft.Honest; delta = 0.1;
          timeout = 1.0; max_time = 10.0 }
      in
      ignore (Pbft.run ~rng:(Amm_crypto.Rng.create "x") cfg ~value))

let test_pbft_decision_time_bounded () =
  let rng = Amm_crypto.Rng.create "pbft-time" in
  let cfg = cfg_of (Array.make 7 Pbft.Honest) in
  let o = Pbft.run ~rng cfg ~value in
  Array.iter
    (function
      | Some (_, at) ->
        (* Three message rounds at delta = 0.1 finish well within a second. *)
        if at > 1.0 then Alcotest.failf "decision too slow: %.3f" at
      | None -> Alcotest.fail "undecided")
    o.Pbft.decisions

let test_pbft_exponential_backoff () =
  (* Three silent leaders in a row force three view changes. View-change
     timers double each view (capped), so views 0/1/2 expire after 1, 2
     and 4 timeout units: the view-3 leader cannot decide before t = 7.
     The old linear back-off (view + 1) would have allowed t ≈ 6. *)
  let b = Array.make 13 Pbft.Honest in
  b.(0) <- Pbft.Silent;
  b.(1) <- Pbft.Silent;
  b.(2) <- Pbft.Silent;
  let cfg = { (cfg_of b) with Pbft.delta = 0.01; max_time = 60.0 } in
  let o = Pbft.run ~rng:(Amm_crypto.Rng.create "pbft-backoff") cfg ~value in
  Alcotest.(check bool) "decided" true (Pbft.all_honest_decided cfg o);
  Alcotest.(check bool) "three view changes" true (o.Pbft.total_view_changes >= 3);
  Array.iteri
    (fun i d ->
      match d with
      | Some (_, at) ->
        if cfg.Pbft.behaviors.(i) = Pbft.Honest then begin
          if at < 6.9 then
            Alcotest.failf "replica %d decided at %.3f: back-off is not exponential" i at;
          if at > 8.0 then Alcotest.failf "replica %d decided too late: %.3f" i at
        end
      | None -> if cfg.Pbft.behaviors.(i) = Pbft.Honest then Alcotest.fail "undecided")
    o.Pbft.decisions

let test_pbft_backoff_cap () =
  (* The doubling is capped so a long outage cannot push timers past the
     horizon: 2^backoff_cap is the largest multiplier. *)
  Alcotest.(check bool) "cap is positive and small" true
    (Pbft.backoff_cap > 0 && Pbft.backoff_cap <= 10)

let pbft_props =
  [ prop "safety under random single fault" QCheck2.Gen.(pair (int_range 0 6) (int_range 0 1))
      (fun (faulty, kind) ->
        let b = Array.make 7 Pbft.Honest in
        b.(faulty) <- (if kind = 0 then Pbft.Silent else Pbft.Propose_invalid);
        let cfg = cfg_of b in
        let o = Pbft.run ~rng:(Amm_crypto.Rng.create "prop") cfg ~value in
        Pbft.honest_agreement cfg o && Pbft.all_honest_decided cfg o) ]

(* ------------------------------------------------------------------ *)
(* Election                                                            *)
(* ------------------------------------------------------------------ *)

let make_miners n =
  let rng = Amm_crypto.Rng.create "elect" in
  Array.init n (fun i ->
      let sk, pk = Amm_crypto.Bls.keygen rng in
      (Election.{ miner_id = i; stake = 1 + (i mod 7); pk }, sk))

let seed = Election.seed_for_epoch ~randomness:(Bytes.of_string "genesis") ~epoch:5

let test_election_verifiable () =
  let miners = make_miners 40 in
  let creds =
    Array.to_list (Array.map (fun (m, sk) -> Election.credential ~sk ~miner:m ~seed) miners)
  in
  Alcotest.(check bool) "all credentials verify" true
    (List.for_all
       (fun c -> Election.verify_credential ~miner:(fst miners.(c.Election.c_miner)) ~seed c)
       creds);
  (* A credential for a different seed is rejected. *)
  let other = Election.seed_for_epoch ~randomness:(Bytes.of_string "genesis") ~epoch:6 in
  Alcotest.(check bool) "wrong seed rejected" false
    (Election.verify_credential ~miner:(fst miners.(0)) ~seed:other (List.hd creds))

let test_election_deterministic () =
  let miners = make_miners 40 in
  let creds () =
    Array.to_list (Array.map (fun (m, sk) -> Election.credential ~sk ~miner:m ~seed) miners)
  in
  let c1, l1 = Election.elect ~credentials:(creds ()) ~committee_size:9 in
  let c2, l2 = Election.elect ~credentials:(creds ()) ~committee_size:9 in
  Alcotest.(check (list int)) "same committee" c1 c2;
  Alcotest.(check int) "same leader" l1 l2;
  Alcotest.(check int) "size" 9 (List.length c1)

let test_election_changes_with_epoch () =
  let miners = make_miners 40 in
  let creds s =
    Array.to_list (Array.map (fun (m, sk) -> Election.credential ~sk ~miner:m ~seed:s) miners)
  in
  let s2 = Election.seed_for_epoch ~randomness:(Bytes.of_string "genesis") ~epoch:6 in
  let c1, _ = Election.elect ~credentials:(creds seed) ~committee_size:9 in
  let c2, _ = Election.elect ~credentials:(creds s2) ~committee_size:9 in
  Alcotest.(check bool) "rotation" true (c1 <> c2)

let test_election_stake_weighting () =
  (* A miner with overwhelming stake should win the leadership for most
     epochs. *)
  let rng = Amm_crypto.Rng.create "whale" in
  let miners =
    Array.init 20 (fun i ->
        let sk, pk = Amm_crypto.Bls.keygen rng in
        (Election.{ miner_id = i; stake = (if i = 0 then 10_000 else 1); pk }, sk))
  in
  let wins = ref 0 in
  for epoch = 0 to 49 do
    let s = Election.seed_for_epoch ~randomness:(Bytes.of_string "w") ~epoch in
    let creds =
      Array.to_list
        (Array.map (fun (m, sk) -> Election.credential ~sk ~miner:m ~seed:s) miners)
    in
    let _, leader = Election.elect ~credentials:creds ~committee_size:5 in
    if leader = 0 then incr wins
  done;
  Alcotest.(check bool)
    (Printf.sprintf "whale leads most epochs (%d/50)" !wins)
    true (!wins > 40)

let test_election_not_enough () =
  Alcotest.check_raises "too few" (Invalid_argument "Election.elect: not enough credentials")
    (fun () -> ignore (Election.elect ~credentials:[] ~committee_size:1))

(* ------------------------------------------------------------------ *)
(* Latency model                                                       *)
(* ------------------------------------------------------------------ *)

let test_latency_monotone_in_block_size () =
  let p = Latency_model.default in
  let l1 = Latency_model.consensus_latency p ~block_bytes:100_000 in
  let l2 = Latency_model.consensus_latency p ~block_bytes:2_000_000 in
  Alcotest.(check bool) "bigger block slower" true (l2 > l1)

let test_latency_fits_paper_rounds () =
  (* 1 MB blocks must finish within the paper's 4-second rounds. *)
  Alcotest.(check bool) "1MB in 4s" true
    (Latency_model.fits_in_round Latency_model.default ~block_bytes:1_000_000
       ~round_duration:4.0);
  Alcotest.(check bool) "2MB in 4s" true
    (Latency_model.fits_in_round Latency_model.default ~block_bytes:2_000_000
       ~round_duration:4.0)

let test_latency_view_change_penalty () =
  let p = Latency_model.default in
  Alcotest.(check bool) "view change adds timeout" true
    (Latency_model.view_change_latency p ~timeout:2.0
     > Latency_model.consensus_latency p ~block_bytes:1024 +. 1.9)

(* Cross-check the closed-form model against the message-level PBFT: the
   model's vote-round latency should be within ~3x of a simulated run for
   a small committee (it targets large gossip committees, so only the
   order of magnitude must agree). *)
let test_latency_crosscheck_with_pbft () =
  let rng = Amm_crypto.Rng.create "xcheck" in
  let n = 16 in
  let cfg =
    { Pbft.n; f = 5; behaviors = Array.make n Pbft.Honest; delta = 0.1; timeout = 5.0;
      max_time = 60.0 }
  in
  let o = Pbft.run ~rng cfg ~value in
  let sim_max =
    Array.fold_left
      (fun acc -> function Some (_, at) -> Float.max acc at | None -> acc)
      0.0 o.Pbft.decisions
  in
  let model =
    Latency_model.consensus_latency
      { Latency_model.committee_size = n; mean_delay = 0.055; bandwidth_bytes = 1e9 }
      ~block_bytes:64
  in
  Alcotest.(check bool)
    (Printf.sprintf "model %.3f vs sim %.3f within 3x" model sim_max)
    true
    (model < 3.0 *. sim_max && sim_max < 3.0 *. model)

let () =
  Alcotest.run "consensus"
    [ ( "pqueue",
        [ Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "stable ties" `Quick test_pqueue_stable_ties ]
        @ pqueue_props );
      ( "network",
        [ Alcotest.test_case "delay bound" `Quick test_network_delay_bound;
          Alcotest.test_case "schedule exact" `Quick test_network_schedule_exact ] );
      ( "pbft",
        [ Alcotest.test_case "happy path" `Quick test_pbft_happy;
          Alcotest.test_case "silent leader" `Quick test_pbft_silent_leader;
          Alcotest.test_case "invalid leader" `Quick test_pbft_invalid_leader;
          Alcotest.test_case "f silent replicas" `Quick test_pbft_max_faulty_replicas;
          Alcotest.test_case "two bad leaders" `Quick test_pbft_two_bad_leaders_in_a_row;
          Alcotest.test_case "larger committee" `Quick test_pbft_larger_committee;
          Alcotest.test_case "quorum size check" `Quick test_pbft_requires_quorum_size;
          Alcotest.test_case "decision time" `Quick test_pbft_decision_time_bounded;
          Alcotest.test_case "exponential backoff" `Quick test_pbft_exponential_backoff;
          Alcotest.test_case "backoff cap" `Quick test_pbft_backoff_cap ]
        @ pbft_props );
      ( "election",
        [ Alcotest.test_case "verifiable" `Quick test_election_verifiable;
          Alcotest.test_case "deterministic" `Quick test_election_deterministic;
          Alcotest.test_case "rotation" `Quick test_election_changes_with_epoch;
          Alcotest.test_case "stake weighting" `Quick test_election_stake_weighting;
          Alcotest.test_case "not enough" `Quick test_election_not_enough ] );
      ( "latency_model",
        [ Alcotest.test_case "monotone" `Quick test_latency_monotone_in_block_size;
          Alcotest.test_case "fits paper rounds" `Quick test_latency_fits_paper_rounds;
          Alcotest.test_case "view change penalty" `Quick test_latency_view_change_penalty;
          Alcotest.test_case "cross-check vs pbft" `Quick test_latency_crosscheck_with_pbft ] ) ]
