(* Tick math, sqrt-price math, swap-step math, liquidity math — checked
   against Uniswap V3's published values and cross-checked against
   floating-point models. *)

open Amm_math

let u = U256.of_string
let check_u256 = Alcotest.testable U256.pp U256.equal
let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

(* ------------------------------------------------------------------ *)
(* Tick math                                                           *)
(* ------------------------------------------------------------------ *)

let test_tick_endpoints () =
  Alcotest.check check_u256 "min ratio" Tick_math.min_sqrt_ratio
    (Tick_math.get_sqrt_ratio_at_tick Tick_math.min_tick);
  Alcotest.check check_u256 "max ratio" Tick_math.max_sqrt_ratio
    (Tick_math.get_sqrt_ratio_at_tick Tick_math.max_tick);
  Alcotest.check check_u256 "tick 0 is 2^96" Q96.q96 (Tick_math.get_sqrt_ratio_at_tick 0)

let test_tick_out_of_range () =
  Alcotest.check_raises "beyond max" (Invalid_argument
    "Tick_math.get_sqrt_ratio_at_tick: tick 887273 out of range") (fun () ->
      ignore (Tick_math.get_sqrt_ratio_at_tick (Tick_math.max_tick + 1)))

let test_tick_float_crosscheck () =
  (* sqrt(1.0001^t) within 1e-9 relative error across the range. *)
  List.iter
    (fun t ->
      let exact = Q96.to_float_q96 (Tick_math.get_sqrt_ratio_at_tick t) in
      let expected = Float.pow 1.0001 (float_of_int t /. 2.0) in
      let rel = Float.abs ((exact -. expected) /. expected) in
      if rel > 1e-9 then
        Alcotest.failf "tick %d: got %.15g expected %.15g (rel %.2e)" t exact expected rel)
    [ -500_000; -100_000; -12_345; -1; 1; 60; 887; 123_456; 500_000; 800_000 ]

let test_tick_inverse_roundtrip () =
  List.iter
    (fun t ->
      Alcotest.(check int)
        (Printf.sprintf "roundtrip %d" t)
        t
        (Tick_math.get_tick_at_sqrt_ratio (Tick_math.get_sqrt_ratio_at_tick t)))
    [ Tick_math.min_tick; -100_000; -60; -1; 0; 1; 60; 100_000; Tick_math.max_tick - 1 ]

let test_tick_memo_matches_uncached () =
  (* The memoised entry point must agree with the recomputed ratio across
     the full tick range at every pool tick spacing, and exhaustively in
     the band swap traffic actually visits. *)
  let check_tick t =
    Alcotest.check check_u256
      (Printf.sprintf "tick %d" t)
      (Tick_math.get_sqrt_ratio_at_tick_uncached t)
      (Tick_math.get_sqrt_ratio_at_tick t)
  in
  List.iter
    (fun spacing ->
      let t = ref (-(Tick_math.max_tick / spacing * spacing)) in
      while !t <= Tick_math.max_tick do
        check_tick !t;
        t := !t + spacing
      done)
    [ 200; 60; 10 ];
  for t = -1000 to 1000 do
    check_tick t
  done;
  (* Second lookup hits the memo: still the same value. *)
  check_tick 123456;
  check_tick 123456

let tick_gen = QCheck2.Gen.int_range Tick_math.min_tick Tick_math.max_tick

let tick_props =
  [ prop "ratio monotonic in tick" (QCheck2.Gen.pair tick_gen tick_gen) (fun (a, b) ->
        let a, b = if a <= b then (a, b) else (b, a) in
        U256.le (Tick_math.get_sqrt_ratio_at_tick a) (Tick_math.get_sqrt_ratio_at_tick b));
    prop "tick_at(ratio(t)) = t" tick_gen (fun t ->
        t = Tick_math.max_tick
        || Tick_math.get_tick_at_sqrt_ratio (Tick_math.get_sqrt_ratio_at_tick t) = t);
    prop "tick_at is floor" tick_gen (fun t ->
        (* A ratio strictly between tick t and t+1 maps to t. *)
        if t >= Tick_math.max_tick - 1 then true
        else begin
          let r = Tick_math.get_sqrt_ratio_at_tick t in
          let r' = Tick_math.get_sqrt_ratio_at_tick (t + 1) in
          let mid = U256.div (U256.add r r') U256.two in
          U256.equal mid r || Tick_math.get_tick_at_sqrt_ratio mid = t
        end) ]

(* ------------------------------------------------------------------ *)
(* Sqrt price math                                                     *)
(* ------------------------------------------------------------------ *)

let liquidity_1e21 = u "1000000000000000000000"
let price_1 = Q96.q96

let test_next_price_from_input_directions () =
  let amount = u "1000000000000000000" in
  let down =
    Sqrt_price_math.get_next_sqrt_price_from_input ~sqrt_price:price_1
      ~liquidity:liquidity_1e21 ~amount_in:amount ~zero_for_one:true
  in
  let up =
    Sqrt_price_math.get_next_sqrt_price_from_input ~sqrt_price:price_1
      ~liquidity:liquidity_1e21 ~amount_in:amount ~zero_for_one:false
  in
  Alcotest.(check bool) "token0 in moves price down" true (U256.lt down price_1);
  Alcotest.(check bool) "token1 in moves price up" true (U256.gt up price_1)

let test_next_price_zero_amount () =
  Alcotest.check check_u256 "identity on zero" price_1
    (Sqrt_price_math.get_next_sqrt_price_from_amount0_rounding_up ~sqrt_price:price_1
       ~liquidity:liquidity_1e21 ~amount:U256.zero ~add:true)

let test_amount_deltas_symmetry () =
  let sqrt_a = Tick_math.get_sqrt_ratio_at_tick (-600) in
  let sqrt_b = Tick_math.get_sqrt_ratio_at_tick 600 in
  let d1 = Sqrt_price_math.get_amount0_delta ~sqrt_a ~sqrt_b ~liquidity:liquidity_1e21 ~round_up:false in
  let d2 = Sqrt_price_math.get_amount0_delta ~sqrt_a:sqrt_b ~sqrt_b:sqrt_a ~liquidity:liquidity_1e21 ~round_up:false in
  Alcotest.check check_u256 "order independent" d1 d2;
  let up = Sqrt_price_math.get_amount0_delta ~sqrt_a ~sqrt_b ~liquidity:liquidity_1e21 ~round_up:true in
  Alcotest.(check bool) "round up >= floor" true (U256.ge up d1);
  Alcotest.(check bool) "difference <= 1" true (U256.le (U256.sub up d1) U256.one)

let test_amount1_delta_exact () =
  (* amount1 = L * (sqrt_b - sqrt_a) / 2^96 exactly. *)
  let sqrt_a = price_1 in
  let sqrt_b = U256.add price_1 (U256.shift_left U256.one 90) in
  let expected = U256.mul_div liquidity_1e21 (U256.sub sqrt_b sqrt_a) Q96.q96 in
  Alcotest.check check_u256 "formula"
    expected
    (Sqrt_price_math.get_amount1_delta ~sqrt_a ~sqrt_b ~liquidity:liquidity_1e21 ~round_up:false)

let test_output_exceeding_reserves_raises () =
  Alcotest.check_raises "output too large" U256.Overflow (fun () ->
      ignore
        (Sqrt_price_math.get_next_sqrt_price_from_output ~sqrt_price:price_1
           ~liquidity:(U256.of_int 1000) ~amount_out:(u "1000000000000000000000000")
           ~zero_for_one:true))

let amount_gen =
  QCheck2.Gen.map
    (fun n -> U256.mul (u "1000000000000") (U256.of_int (n + 1)))
    (QCheck2.Gen.int_range 0 1_000_000)

let sqrt_price_props =
  [ prop "input roundtrip bounds output" amount_gen (fun amount_in ->
        (* Pushing amount0 in and asking the implied amount back out never
           produces more than went in (rounding favors the pool). *)
        let next =
          Sqrt_price_math.get_next_sqrt_price_from_input ~sqrt_price:price_1
            ~liquidity:liquidity_1e21 ~amount_in ~zero_for_one:true
        in
        let implied =
          Sqrt_price_math.get_amount0_delta ~sqrt_a:next ~sqrt_b:price_1
            ~liquidity:liquidity_1e21 ~round_up:false
        in
        U256.le implied amount_in);
    prop "next price monotone in amount" (QCheck2.Gen.pair amount_gen amount_gen)
      (fun (a, b) ->
        let small, large = if U256.le a b then (a, b) else (b, a) in
        let p x =
          Sqrt_price_math.get_next_sqrt_price_from_input ~sqrt_price:price_1
            ~liquidity:liquidity_1e21 ~amount_in:x ~zero_for_one:true
        in
        U256.ge (p small) (p large)) ]

(* ------------------------------------------------------------------ *)
(* Swap math                                                           *)
(* ------------------------------------------------------------------ *)

let step ~amount ~fee_pips ~target_tick =
  Swap_math.compute_swap_step ~sqrt_price_current:price_1
    ~sqrt_price_target:(Tick_math.get_sqrt_ratio_at_tick target_tick)
    ~liquidity:liquidity_1e21 ~amount_remaining:amount ~fee_pips

let test_swap_step_exact_in_partial () =
  (* Small input: target not reached; fee = remaining - amount_in. *)
  let amount = u "1000000000000000000" in
  let r = step ~amount:(Swap_math.Exact_in amount) ~fee_pips:3000 ~target_tick:(-60000) in
  Alcotest.(check bool) "did not reach target" true
    (U256.gt r.Swap_math.sqrt_price_next (Tick_math.get_sqrt_ratio_at_tick (-60000)));
  Alcotest.check check_u256 "whole input consumed" amount
    (U256.add r.Swap_math.amount_in r.Swap_math.fee_amount);
  (* 0.3% fee: fee ≈ amount * 0.003 *)
  let expected_fee = U256.mul_div amount (U256.of_int 3000) (U256.of_int 1_000_000) in
  Alcotest.(check bool) "fee close to 30bps" true
    (U256.le (U256.sub (U256.max r.Swap_math.fee_amount expected_fee)
                (U256.min r.Swap_math.fee_amount expected_fee))
       (U256.of_int 10))

let test_swap_step_exact_in_reaches_target () =
  (* Huge input: price stops exactly at the target. *)
  let amount = u "1000000000000000000000000" in
  let r = step ~amount:(Swap_math.Exact_in amount) ~fee_pips:3000 ~target_tick:(-60) in
  Alcotest.check check_u256 "reached target"
    (Tick_math.get_sqrt_ratio_at_tick (-60))
    r.Swap_math.sqrt_price_next;
  Alcotest.(check bool) "input not fully consumed" true
    (U256.lt (U256.add r.Swap_math.amount_in r.Swap_math.fee_amount) amount)

let test_swap_step_exact_out () =
  let amount = u "1000000000000000000" in
  let r = step ~amount:(Swap_math.Exact_out amount) ~fee_pips:3000 ~target_tick:(-60000) in
  Alcotest.check check_u256 "exact output delivered" amount r.Swap_math.amount_out;
  Alcotest.(check bool) "fee on input side" true (U256.gt r.Swap_math.fee_amount U256.zero)

let test_swap_step_zero_fee () =
  let amount = u "1000000000000000000" in
  let r = step ~amount:(Swap_math.Exact_in amount) ~fee_pips:0 ~target_tick:(-60000) in
  Alcotest.check check_u256 "no fee" U256.zero r.Swap_math.fee_amount;
  Alcotest.check check_u256 "all input used" amount r.Swap_math.amount_in

let swap_props =
  [ prop "exact-out never over-delivers" amount_gen (fun amount ->
        let r = step ~amount:(Swap_math.Exact_out amount) ~fee_pips:3000 ~target_tick:(-600) in
        U256.le r.Swap_math.amount_out amount);
    prop "exact-in consumes at most the input" amount_gen (fun amount ->
        let r = step ~amount:(Swap_math.Exact_in amount) ~fee_pips:3000 ~target_tick:(-600) in
        U256.le (U256.add r.Swap_math.amount_in r.Swap_math.fee_amount) amount) ]

let test_swap_step_zero_liquidity_jumps_to_target () =
  (* With no liquidity in range, the price jumps to the target and no
     amounts move — the pool swap loop then crosses to the next tick. *)
  let target = Tick_math.get_sqrt_ratio_at_tick (-600) in
  let r =
    Swap_math.compute_swap_step ~sqrt_price_current:price_1 ~sqrt_price_target:target
      ~liquidity:U256.zero ~amount_remaining:(Swap_math.Exact_in (u "1000000"))
      ~fee_pips:3000
  in
  Alcotest.check check_u256 "price at target" target r.Swap_math.sqrt_price_next;
  Alcotest.check check_u256 "no input" U256.zero r.Swap_math.amount_in;
  Alcotest.check check_u256 "no output" U256.zero r.Swap_math.amount_out

let test_swap_step_fee_monotone_in_fee_pips () =
  let amount = u "1000000000000000000" in
  let fee_at pips =
    (step ~amount:(Swap_math.Exact_in amount) ~fee_pips:pips ~target_tick:(-60000))
      .Swap_math.fee_amount
  in
  Alcotest.(check bool) "higher tier, higher fee" true
    (U256.lt (fee_at 500) (fee_at 3000) && U256.lt (fee_at 3000) (fee_at 10000))

(* ------------------------------------------------------------------ *)
(* Liquidity math                                                      *)
(* ------------------------------------------------------------------ *)

let test_liquidity_for_amounts_in_range () =
  let sqrt_a = Tick_math.get_sqrt_ratio_at_tick (-600) in
  let sqrt_b = Tick_math.get_sqrt_ratio_at_tick 600 in
  let amount = u "1000000000000000000000" in
  let liquidity =
    Liquidity_math.get_liquidity_for_amounts ~sqrt_price:price_1 ~sqrt_a ~sqrt_b
      ~amount0:amount ~amount1:amount
  in
  Alcotest.(check bool) "positive" true (U256.gt liquidity U256.zero);
  let a0, a1 =
    Liquidity_math.get_amounts_for_liquidity ~sqrt_price:price_1 ~sqrt_a ~sqrt_b ~liquidity
  in
  Alcotest.(check bool) "amount0 within budget" true (U256.le a0 amount);
  Alcotest.(check bool) "amount1 within budget" true (U256.le a1 amount)

let test_liquidity_one_sided () =
  let sqrt_a = Tick_math.get_sqrt_ratio_at_tick 600 in
  let sqrt_b = Tick_math.get_sqrt_ratio_at_tick 1200 in
  (* Current price below the range: all liquidity comes from token0. *)
  let liquidity =
    Liquidity_math.get_liquidity_for_amounts ~sqrt_price:price_1 ~sqrt_a ~sqrt_b
      ~amount0:(u "1000000000000000000") ~amount1:U256.zero
  in
  Alcotest.(check bool) "funded by token0 only" true (U256.gt liquidity U256.zero);
  let a0, a1 =
    Liquidity_math.get_amounts_for_liquidity ~sqrt_price:price_1 ~sqrt_a ~sqrt_b ~liquidity
  in
  Alcotest.(check bool) "token0 needed" true (U256.gt a0 U256.zero);
  Alcotest.check check_u256 "no token1 needed" U256.zero a1

let test_apply_delta () =
  Alcotest.check check_u256 "add" (U256.of_int 15)
    (Liquidity_math.apply_delta (U256.of_int 10) (Liquidity_math.Add (U256.of_int 5)));
  Alcotest.check check_u256 "remove" (U256.of_int 5)
    (Liquidity_math.apply_delta (U256.of_int 10) (Liquidity_math.Remove (U256.of_int 5)));
  Alcotest.check_raises "remove too much" U256.Overflow (fun () ->
      ignore (Liquidity_math.apply_delta (U256.of_int 1) (Liquidity_math.Remove U256.two)))

let liquidity_props =
  [ prop "mint amounts round against the LP" amount_gen (fun amount ->
        let sqrt_a = Tick_math.get_sqrt_ratio_at_tick (-600) in
        let sqrt_b = Tick_math.get_sqrt_ratio_at_tick 600 in
        let liquidity =
          Liquidity_math.get_liquidity_for_amounts ~sqrt_price:price_1 ~sqrt_a ~sqrt_b
            ~amount0:amount ~amount1:amount
        in
        U256.is_zero liquidity
        ||
        let f0, f1 =
          Liquidity_math.get_amounts_for_liquidity ~sqrt_price:price_1 ~sqrt_a ~sqrt_b
            ~liquidity
        in
        let u0, u1 =
          Liquidity_math.get_amounts_for_liquidity_rounding_up ~sqrt_price:price_1 ~sqrt_a
            ~sqrt_b ~liquidity
        in
        U256.le f0 u0 && U256.le f1 u1
        && U256.le (U256.sub u0 f0) U256.one
        && U256.le (U256.sub u1 f1) U256.one) ]

let () =
  Alcotest.run "amm_math"
    [ ( "tick_math",
        [ Alcotest.test_case "endpoints" `Quick test_tick_endpoints;
          Alcotest.test_case "out of range" `Quick test_tick_out_of_range;
          Alcotest.test_case "float cross-check" `Quick test_tick_float_crosscheck;
          Alcotest.test_case "inverse roundtrip" `Quick test_tick_inverse_roundtrip;
          Alcotest.test_case "memo matches uncached" `Quick
            test_tick_memo_matches_uncached ]
        @ tick_props );
      ( "sqrt_price_math",
        [ Alcotest.test_case "input directions" `Quick test_next_price_from_input_directions;
          Alcotest.test_case "zero amount" `Quick test_next_price_zero_amount;
          Alcotest.test_case "amount0 delta symmetry" `Quick test_amount_deltas_symmetry;
          Alcotest.test_case "amount1 delta exact" `Quick test_amount1_delta_exact;
          Alcotest.test_case "impossible output raises" `Quick
            test_output_exceeding_reserves_raises ]
        @ sqrt_price_props );
      ( "swap_math",
        [ Alcotest.test_case "exact-in partial" `Quick test_swap_step_exact_in_partial;
          Alcotest.test_case "exact-in reaches target" `Quick
            test_swap_step_exact_in_reaches_target;
          Alcotest.test_case "exact-out" `Quick test_swap_step_exact_out;
          Alcotest.test_case "zero fee" `Quick test_swap_step_zero_fee;
          Alcotest.test_case "zero liquidity" `Quick test_swap_step_zero_liquidity_jumps_to_target;
          Alcotest.test_case "fee monotone" `Quick test_swap_step_fee_monotone_in_fee_pips ]
        @ swap_props );
      ( "liquidity_math",
        [ Alcotest.test_case "amounts in range" `Quick test_liquidity_for_amounts_in_range;
          Alcotest.test_case "one-sided range" `Quick test_liquidity_one_sided;
          Alcotest.test_case "apply delta" `Quick test_apply_delta ]
        @ liquidity_props ) ]
