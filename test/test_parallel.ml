(* The domain pool: ordering, sequential fallback, failure determinism,
   nesting — and the end-to-end guarantee the bench harness relies on:
   running experiment cells at any domain count produces identical rows
   and an identical merged telemetry snapshot. *)

module E = Ammboost.Experiments
module Config = Ammboost.Config

(* ------------------------------------------------------------------ *)
(* map_list basics                                                     *)
(* ------------------------------------------------------------------ *)

let test_ordering () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "squares in submission order"
    (List.map (fun x -> x * x) xs)
    (Parallel.map_list ~domains:4 (fun x -> x * x) xs)

let test_sequential_fallback () =
  (* domains = 1 must not involve the pool at all: tasks run in the
     calling domain, in order. *)
  let order = ref [] in
  let res =
    Parallel.map_list ~domains:1
      (fun x ->
        order := x :: !order;
        x + 1)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "results" [ 2; 3; 4 ] res;
  Alcotest.(check (list int)) "executed in list order" [ 3; 2; 1 ] !order

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map_list ~domains:8 Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Parallel.map_list ~domains:8 (fun x -> x + 1) [ 6 ])

exception Boom of int

let test_exception_lowest_index () =
  (* Several tasks fail; the re-raised exception is the lowest-index one
     at every domain count, so failures are deterministic too. *)
  List.iter
    (fun domains ->
      match
        Parallel.map_list ~domains
          (fun x -> if x mod 3 = 2 then raise (Boom x) else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "lowest failing index at %d domains" domains)
          2 i)
    [ 1; 2; 4; 8 ]

let test_nesting () =
  (* A task that fans out its own batch: the waiting domain helps, so
     this completes even when the pool is saturated. *)
  let res =
    Parallel.map_list ~domains:4
      (fun row ->
        Parallel.map_list ~domains:4 (fun col -> (row * 10) + col) [ 0; 1; 2 ])
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list (list int)))
    "nested results ordered"
    [ [ 0; 1; 2 ]; [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ] ]
    res

let test_run_pair () =
  let a, b = Parallel.run_pair ~domains:2 (fun () -> 6 * 7) (fun () -> "ok") in
  Alcotest.(check int) "first" 42 a;
  Alcotest.(check string) "second" "ok" b

(* ------------------------------------------------------------------ *)
(* Experiment determinism across domain counts                         *)
(* ------------------------------------------------------------------ *)

let small_cfg seed_suffix =
  { Config.default with
    Config.seed = Config.default.Config.seed ^ seed_suffix;
    epochs = 2;
    sc_rounds_per_epoch = 6;
    daily_volume = 20_000;
    users = 20;
    miners = 50;
    committee_size = 10;
    max_faulty = 3 }

let cells () =
  List.map
    (fun i -> E.cell ~label:(Printf.sprintf "cell%d" i) (small_cfg (string_of_int i)))
    [ 0; 1; 2; 3 ]

let run_at ~domains =
  let sink = Telemetry.Report.sink () in
  let rows = E.run_cells ~sink ~domains (cells ()) in
  (rows, Telemetry.Metrics.to_json_string sink.Telemetry.Report.metrics)

let test_run_cells_deterministic () =
  let rows1, json1 = run_at ~domains:1 in
  let rows4, json4 = run_at ~domains:4 in
  List.iter2
    (fun (r1 : E.perf_row) (r4 : E.perf_row) ->
      Alcotest.(check string) "label" r1.E.row_label r4.E.row_label;
      Alcotest.(check (float 0.0)) "throughput" r1.E.throughput r4.E.throughput;
      Alcotest.(check (float 0.0)) "sc latency" r1.E.sc_latency r4.E.sc_latency;
      Alcotest.(check (float 0.0)) "payout latency" r1.E.payout_latency
        r4.E.payout_latency)
    rows1 rows4;
  Alcotest.(check int) "row count" (List.length rows1) (List.length rows4);
  Alcotest.(check string) "merged metrics snapshot" json1 json4

let () =
  Alcotest.run "parallel"
    [ ( "map_list",
        [ Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "sequential fallback" `Quick test_sequential_fallback;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "lowest-index exception" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "run_pair" `Quick test_run_pair ] );
      ( "experiments",
        [ Alcotest.test_case "run_cells deterministic across domains" `Quick
            test_run_cells_deterministic ] ) ]
