(* State-growth observatory: ledger JSON roundtrip and metric mirroring,
   growth-guard verdicts (pass, regression, absolute floor, missing
   epochs/keys), deterministic lifecycle sampling and stage flow, report
   rendering, and the ledger invariants of an instrumented System run. *)

module GL = Observe.Growth_ledger
module GG = Observe.Growth_guard
module LC = Observe.Lifecycle
module RR = Observe.Run_report
module M = Telemetry.Metrics
module H = Telemetry.Histogram

let mk_ledger entries =
  let l = GL.create () in
  List.iter (fun (e, t, fields) -> GL.sample l ~epoch:e ~t fields) entries;
  l

let contains hay needle =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_contains md needle =
  Alcotest.(check bool) (Printf.sprintf "report contains %S" needle) true
    (contains md needle)

(* ------------------------------------------------------------------ *)
(* Growth ledger                                                       *)
(* ------------------------------------------------------------------ *)

let test_ledger_json_roundtrip () =
  let l =
    mk_ledger
      [ (0, 0.0, [ ("mc.bytes.total", 100.0); ("bank.storage_words", 22.0) ]);
        (1, 60.0, [ ("mc.bytes.total", 180.0); ("bank.storage_words", 22.0) ]) ]
  in
  let json = GL.to_json l in
  match GL.of_json json with
  | Error e -> Alcotest.fail e
  | Ok l' ->
    Alcotest.(check string) "roundtrip is byte-identical" json (GL.to_json l');
    Alcotest.(check int) "epochs" 2 (GL.epochs_sampled l');
    Alcotest.(check (list string)) "keys"
      [ "bank.storage_words"; "mc.bytes.total" ]
      (GL.keys l');
    Alcotest.(check (list (pair int (float 1e-9)))) "series"
      [ (0, 100.0); (1, 180.0) ]
      (GL.series l' "mc.bytes.total")

let test_ledger_of_json_rejects () =
  List.iter
    (fun bad ->
      match GL.of_json bad with
      | Ok _ -> Alcotest.failf "%S should not parse as a ledger" bad
      | Error _ -> ())
    [ "";
      "{}";
      "{\"schema\": \"something-else/9\", \"epochs\": []}";
      "{\"schema\": \"ammboost-observe/1\"}";
      "{\"schema\": \"ammboost-observe/1\", \"epochs\": [{\"t\": 0}]}" ]

let test_ledger_metrics_mirror () =
  let reg = M.create () in
  let l = GL.create ~metrics:reg () in
  GL.sample l ~epoch:0 ~t:0.0 [ ("b", 2.0); ("a", 1.0) ];
  GL.sample l ~epoch:1 ~t:60.0 [ ("a", 3.0) ];
  (match GL.rows l with
  | [ r0; _ ] ->
    Alcotest.(check (list (pair string (float 1e-9)))) "fields sorted at sample"
      [ ("a", 1.0); ("b", 2.0) ]
      r0.GL.ge_fields
  | _ -> Alcotest.fail "expected two rows");
  match M.find_series reg "growth.a" with
  | Some s ->
    Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
      "mirrored as a time series keyed by epoch"
      [ (0.0, 1.0); (1.0, 3.0) ]
      (M.series_points s)
  | None -> Alcotest.fail "growth.a series missing from the registry"

(* ------------------------------------------------------------------ *)
(* Growth guard                                                        *)
(* ------------------------------------------------------------------ *)

let guard_baseline () =
  mk_ledger
    [ (0, 0.0, [ ("mc.bytes.total", 10_000.0); ("bank.storage_words", 22.0) ]);
      (1, 60.0, [ ("mc.bytes.total", 20_000.0); ("bank.storage_words", 22.0) ]) ]

let test_guard_pass_and_shrink () =
  let b = guard_baseline () in
  let v = GG.compare_ledgers ~baseline:b ~fresh:b () in
  Alcotest.(check bool) "identical ledgers pass" true (GG.ok v);
  Alcotest.(check int) "all pairs checked" 4 v.GG.checked;
  (* Shrinking is the point of the paper: always fine. *)
  let smaller =
    mk_ledger
      [ (0, 0.0, [ ("mc.bytes.total", 5_000.0); ("bank.storage_words", 10.0) ]);
        (1, 60.0, [ ("mc.bytes.total", 9_000.0); ("bank.storage_words", 10.0) ]) ]
  in
  Alcotest.(check bool) "shrinking passes" true
    (GG.ok (GG.compare_ledgers ~baseline:b ~fresh:smaller ()))

let test_guard_regression () =
  let b = guard_baseline () in
  let fresh =
    mk_ledger
      [ (0, 0.0, [ ("mc.bytes.total", 10_050.0); ("bank.storage_words", 22.0) ]);
        (1, 60.0, [ ("mc.bytes.total", 21_000.0); ("bank.storage_words", 22.0) ]) ]
  in
  (* Epoch 0 is within 1%, epoch 1 is 5% over: exactly one violation. *)
  let v = GG.compare_ledgers ~baseline:b ~fresh () in
  Alcotest.(check int) "one violation" 1 (List.length v.GG.violations);
  Alcotest.(check bool) "names the epoch and key" true
    (contains (List.hd v.GG.violations) "epoch 1 mc.bytes.total");
  (* A looser tolerance absorbs it. *)
  Alcotest.(check bool) "10% tolerance passes" true
    (GG.ok (GG.compare_ledgers ~tolerance:0.10 ~baseline:b ~fresh ()))

let test_guard_absolute_floor () =
  let b = mk_ledger [ (0, 0.0, [ ("bank.storage_words", 22.0) ]) ] in
  let ok_fresh = mk_ledger [ (0, 0.0, [ ("bank.storage_words", 80.0) ]) ] in
  (* 22 -> 80 is a 260% jump but within the 64-unit absolute floor. *)
  Alcotest.(check bool) "small series compare absolutely" true
    (GG.ok (GG.compare_ledgers ~baseline:b ~fresh:ok_fresh ()));
  let bad_fresh = mk_ledger [ (0, 0.0, [ ("bank.storage_words", 100.0) ]) ] in
  Alcotest.(check bool) "past the floor fails" false
    (GG.ok (GG.compare_ledgers ~baseline:b ~fresh:bad_fresh ()))

let test_guard_missing () =
  let b = guard_baseline () in
  let missing_epoch =
    mk_ledger [ (0, 0.0, [ ("mc.bytes.total", 10_000.0); ("bank.storage_words", 22.0) ]) ]
  in
  Alcotest.(check bool) "missing epoch is a violation" false
    (GG.ok (GG.compare_ledgers ~baseline:b ~fresh:missing_epoch ()));
  let missing_key =
    mk_ledger
      [ (0, 0.0, [ ("mc.bytes.total", 10_000.0) ]);
        (1, 60.0, [ ("mc.bytes.total", 20_000.0) ]) ]
  in
  Alcotest.(check bool) "missing key is a violation" false
    (GG.ok (GG.compare_ledgers ~baseline:b ~fresh:missing_key ()));
  let empty = GL.create () in
  Alcotest.(check bool) "empty fresh run is a violation" false
    (GG.ok (GG.compare_ledgers ~baseline:b ~fresh:empty ()))

let test_guard_json_entrypoint () =
  let b = guard_baseline () in
  (match
     GG.compare_json ~baseline:(GL.to_json b) ~fresh:(GL.to_json b) ()
   with
  | Ok v -> Alcotest.(check bool) "json comparison passes" true (GG.ok v)
  | Error e -> Alcotest.fail e);
  match GG.compare_json ~baseline:"{]" ~fresh:(GL.to_json b) () with
  | Ok _ -> Alcotest.fail "bad baseline JSON must be an error"
  | Error e -> Alcotest.(check bool) "error names the side" true (contains e "baseline")

(* ------------------------------------------------------------------ *)
(* Lifecycle tracer                                                    *)
(* ------------------------------------------------------------------ *)

let tx_ids = List.init 400 (fun i -> Bytes.of_string (Printf.sprintf "tx-%05d" i))

let test_lifecycle_sampling_deterministic () =
  let decisions seed =
    let t = LC.create ~metrics:(M.create ()) ~seed () in
    List.map (fun id -> LC.keeps t ~id) tx_ids
  in
  Alcotest.(check (list bool)) "same seed, same decisions" (decisions "obs-a")
    (decisions "obs-a");
  Alcotest.(check bool) "different seed, different decisions" false
    (decisions "obs-a" = decisions "obs-b");
  let kept = List.length (List.filter Fun.id (decisions "obs-a")) in
  (* 1-in-8 sampling over 400 ids: expect ~50, allow a wide band. *)
  Alcotest.(check bool)
    (Printf.sprintf "sampling rate plausible (%d of 400)" kept)
    true
    (kept >= 15 && kept <= 110)

let test_lifecycle_stage_flow () =
  let reg = M.create () in
  let t = LC.create ~metrics:reg ~seed:"flow" () in
  List.iteri
    (fun i id ->
      LC.on_included t ~id ~cls:"swap" ~issued_at:(float_of_int i) ~wire:100
        ~epoch:0
        ~at:(float_of_int i +. 1.0))
    tx_ids;
  let sampled = LC.sampled_count t in
  Alcotest.(check int) "all included ops counted" 400 (LC.seen_count t);
  Alcotest.(check bool) "sampler kept some" true (sampled > 0);
  Alcotest.(check (list string)) "live classes" [ "swap" ] (LC.live_classes t);
  LC.on_stage t ~epoch:0 ~stage:LC.Summarized ~at:1000.0;
  LC.on_submitted t ~epoch:0 ~at:2000.0 ~l1_bytes:8000;
  LC.on_stage t ~epoch:0 ~stage:LC.Confirmed ~at:3000.0;
  let hist_count name =
    match M.find_histogram reg name with Some h -> H.count h | None -> 0
  in
  List.iter
    (fun stage ->
      Alcotest.(check int)
        (Printf.sprintf "lifecycle.swap.%s has one observation per sampled op"
           stage)
        sampled
        (hist_count ("lifecycle.swap." ^ stage)))
    [ "included"; "summarized"; "submitted"; "confirmed"; "amplification" ];
  (* Amplification: 8000 L1 bytes over 400 included ops = 20 B/op,
     against a 100 B wire size -> 0.2 for every sampled op. *)
  (match M.find_histogram reg "lifecycle.swap.amplification" with
  | Some h -> Alcotest.(check (float 1e-9)) "amplification value" 0.2 (H.mean h)
  | None -> Alcotest.fail "amplification histogram missing");
  LC.on_stage t ~epoch:0 ~stage:LC.Pruned ~at:4000.0;
  Alcotest.(check (list string)) "records dropped at prune" [] (LC.live_classes t);
  (* Stage events after the prune are no-ops for that epoch. *)
  LC.on_stage t ~epoch:0 ~stage:LC.Confirmed ~at:5000.0;
  Alcotest.(check int) "no new observations after prune" sampled
    (hist_count "lifecycle.swap.confirmed")

let test_lifecycle_shift_bounds () =
  let mk shift () =
    ignore (LC.create ~sample_shift:shift ~metrics:(M.create ()) ~seed:"x" ())
  in
  Alcotest.check_raises "negative shift" (Invalid_argument "Lifecycle.create")
    (mk (-1));
  Alcotest.check_raises "oversized shift" (Invalid_argument "Lifecycle.create")
    (mk 21);
  (* shift 0 keeps everything. *)
  let t = LC.create ~sample_shift:0 ~metrics:(M.create ()) ~seed:"x" () in
  Alcotest.(check bool) "shift 0 keeps all" true
    (List.for_all (fun id -> LC.keeps t ~id) tx_ids)

(* ------------------------------------------------------------------ *)
(* Run report                                                          *)
(* ------------------------------------------------------------------ *)

let test_report_renders () =
  let ledger =
    mk_ledger
      [ (0, 0.0,
         [ ("mc.bytes.total", 100.0); ("baseline.bytes.sepolia", 400.0) ]);
        (1, 60.0,
         [ ("mc.bytes.total", 200.0); ("baseline.bytes.sepolia", 900.0) ]) ]
  in
  let reg = M.create () in
  M.observe reg "lifecycle.swap.included" 1.5;
  M.observe reg "lifecycle.swap.amplification" 0.3;
  let md =
    RR.render ~title:"test run" ~params:[ ("seed", "x") ]
      ~summary:[ ("processed", "9") ] ~ledger ~metrics:reg
      ~events:[ { RR.ev_t = 5.0; ev_kind = "mode"; ev_detail = "degraded" } ]
      ()
  in
  List.iter (check_contains md)
    [ "# test run"; "## Run summary"; "## State growth by epoch";
      "mc.bytes.total"; "## Transaction lifecycle"; "## Bytes amplification";
      "## Event timeline"; "degraded"; "% reduction" ];
  (* 200 of 900 counterfactual bytes = 77.78% reduction. *)
  check_contains md "77.78% reduction";
  (* Rendering twice is byte-identical (pure function of its inputs). *)
  let md2 =
    RR.render ~title:"test run" ~params:[ ("seed", "x") ]
      ~summary:[ ("processed", "9") ] ~ledger ~metrics:reg
      ~events:[ { RR.ev_t = 5.0; ev_kind = "mode"; ev_detail = "degraded" } ]
      ()
  in
  Alcotest.(check string) "deterministic render" md md2

let test_report_empty_ledger () =
  let md =
    RR.render ~title:"empty" ~params:[] ~summary:[] ~ledger:(GL.create ()) ()
  in
  check_contains md "_no epochs sampled_"

let test_report_explicit_counterfactual () =
  let ledger = mk_ledger [ (0, 0.0, [ ("mc.bytes.total", 100.0) ]) ] in
  let md =
    RR.render ~title:"cf" ~params:[] ~summary:[] ~ledger
      ~counterfactual:("baseline.measured.bytes", [ (0, 1000.0) ])
      ()
  in
  check_contains md "baseline.measured.bytes";
  check_contains md "90.00% reduction"

(* ------------------------------------------------------------------ *)
(* End-to-end: the System run's ledger                                 *)
(* ------------------------------------------------------------------ *)

let small_cfg =
  let open Ammboost in
  { Config.default with
    epochs = 2; daily_volume = 20_000; users = 12; miners = 30;
    committee_size = 10; max_faulty = 2; seed = "observe-e2e" }

let test_system_growth_ledger () =
  let open Ammboost in
  let sink = Telemetry.Report.sink () in
  let r = System.run ~sink small_cfg in
  let l = r.System.growth in
  Alcotest.(check bool)
    (Printf.sprintf "sampled at least one row per epoch (%d)" (GL.epochs_sampled l))
    true
    (GL.epochs_sampled l > small_cfg.Ammboost.Config.epochs);
  (* Cumulative byte series never shrink. *)
  List.iter
    (fun key ->
      let vs = List.map snd (GL.series l key) in
      Alcotest.(check bool) (key ^ " present") true (vs <> []);
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) (key ^ " monotone") true (monotone vs))
    [ "mc.bytes.total"; "mc.gas.total"; "sc.cumulative_bytes";
      "baseline.bytes.sepolia" ];
  (* The counterfactual accumulated something. (It only dominates
     ammBoost's own growth at realistic volumes, where per-op bytes
     outweigh the fixed deposit/sync overhead — the bench observe run
     covers that; this config is deliberately tiny.) *)
  let last key =
    match List.rev (GL.series l key) with (_, v) :: _ -> v | [] -> 0.0
  in
  Alcotest.(check bool) "counterfactual accumulated" true
    (last "baseline.bytes.sepolia" > 0.0);
  Alcotest.(check bool) "lifecycle saw ops" true (r.System.lifecycle_seen > 0);
  Alcotest.(check bool) "sampled <= seen" true
    (r.System.lifecycle_sampled <= r.System.lifecycle_seen);
  (* Mirrored into the sink, and self-comparison passes the guard. *)
  Alcotest.(check bool) "growth series mirrored into the sink" true
    (M.find_series sink.Telemetry.Report.metrics "growth.mc.bytes.total" <> None);
  Alcotest.(check bool) "ledger passes the guard against itself" true
    (GG.ok (GG.compare_ledgers ~baseline:l ~fresh:l ()))

let test_system_ledger_deterministic () =
  let open Ammboost in
  let run () = GL.to_json (System.run small_cfg).System.growth in
  Alcotest.(check string) "ledger JSON byte-identical across runs" (run ())
    (run ())

let () =
  Alcotest.run "observe"
    [ ("ledger",
       [ Alcotest.test_case "json roundtrip" `Quick test_ledger_json_roundtrip;
         Alcotest.test_case "bad json rejected" `Quick test_ledger_of_json_rejects;
         Alcotest.test_case "metrics mirror" `Quick test_ledger_metrics_mirror ]);
      ("guard",
       [ Alcotest.test_case "pass and shrink" `Quick test_guard_pass_and_shrink;
         Alcotest.test_case "regression caught" `Quick test_guard_regression;
         Alcotest.test_case "absolute floor" `Quick test_guard_absolute_floor;
         Alcotest.test_case "missing data" `Quick test_guard_missing;
         Alcotest.test_case "json entrypoint" `Quick test_guard_json_entrypoint ]);
      ("lifecycle",
       [ Alcotest.test_case "deterministic sampling" `Quick
           test_lifecycle_sampling_deterministic;
         Alcotest.test_case "stage flow" `Quick test_lifecycle_stage_flow;
         Alcotest.test_case "shift bounds" `Quick test_lifecycle_shift_bounds ]);
      ("report",
       [ Alcotest.test_case "renders all sections" `Quick test_report_renders;
         Alcotest.test_case "empty ledger" `Quick test_report_empty_ledger;
         Alcotest.test_case "explicit counterfactual" `Quick
           test_report_explicit_counterfactual ]);
      ("system",
       [ Alcotest.test_case "growth ledger invariants" `Quick
           test_system_growth_ledger;
         Alcotest.test_case "ledger deterministic" `Quick
           test_system_ledger_deterministic ]) ]
