(* Fault-plan engine: deterministic seeded schedules, idempotent
   injection accounting, per-layer caps, network chaos closures; the
   differential replay oracle (agreement, divergence detection and
   rollback truncation); and the ISSUE acceptance scenario — a seeded
   all-layer chaos run that recovers every fault, passes the oracle and
   reproduces the identical schedule from the same seed. *)

module U256 = Amm_math.U256
module Address = Chain.Address
module Erc20 = Mainchain.Erc20
module Bls = Amm_crypto.Bls
module Network = Consensus.Network
module Fault_plan = Faults.Fault_plan
module Replay_oracle = Faults.Replay_oracle
open Tokenbank

let u = U256.of_string
let one_e18 = u "1000000000000000000"
let one_e21 = u "1000000000000000000000"

(* ------------------------------------------------------------------ *)
(* Fault plan                                                          *)
(* ------------------------------------------------------------------ *)

(* A fixed sweep over decision coordinates, collecting every answer so
   two plans can be compared wholesale. *)
let sweep plan =
  let acc = Buffer.create 256 in
  for epoch = 0 to 19 do
    Buffer.add_string acc
      (Printf.sprintf "e%d:%b%b%b%b" epoch
         (Fault_plan.silent_leader plan ~epoch)
         (Fault_plan.corrupt_sync plan ~epoch)
         (Fault_plan.congested plan ~epoch)
         (Fault_plan.byzantine_proposer plan ~epoch ~round:0));
    (match Fault_plan.reorg_depth plan ~epoch with
    | Some d -> Buffer.add_string acc (Printf.sprintf "r%d" d)
    | None -> Buffer.add_char acc '-');
    for attempt = 0 to 2 do
      Buffer.add_string acc
        (if Fault_plan.sync_dropped plan ~epoch ~attempt then "D" else ".")
    done;
    List.iter
      (fun i -> Buffer.add_string acc (Printf.sprintf "w%d" i))
      (Fault_plan.withheld_shares plan ~epoch ~n:13 ~max_withheld:4);
    List.iter
      (fun i -> Buffer.add_string acc (Printf.sprintf "x%d" i))
      (Fault_plan.corrupted_shares plan ~epoch ~n:13 ~max_corrupted:4);
    List.iter
      (fun i -> Buffer.add_string acc (Printf.sprintf "c%d" i))
      (Fault_plan.crashed_members plan ~epoch ~round:1 ~members:13 ~max_faulty:4)
  done;
  Buffer.contents acc

let test_none_never_injects () =
  Alcotest.(check bool) "none inactive" false (Fault_plan.active Fault_plan.none);
  Alcotest.(check bool) "zero intensity inactive" false
    (Fault_plan.active (Fault_plan.chaos ~intensity:0.0 ()));
  Alcotest.(check bool) "default chaos active" true
    (Fault_plan.active (Fault_plan.chaos ()));
  let plan = Fault_plan.create ~seed:"quiet" Fault_plan.none in
  let s = sweep plan in
  Alcotest.(check bool) "no decisions fire" false
    (String.exists (function 'D' | 'w' | 'x' | 'c' | 'r' -> true | _ -> false) s);
  Alcotest.(check bool) "no net chaos" true
    (Fault_plan.net_chaos plan ~epoch:0 ~round:0 ~members:7 = None);
  Alcotest.(check int) "nothing counted" 0 (Fault_plan.total_injected plan);
  Alcotest.(check (list (pair string int))) "empty ledger" []
    (Fault_plan.injected plan)

let test_same_seed_same_schedule () =
  let spec = Fault_plan.chaos ~intensity:0.3 () in
  let a = Fault_plan.create ~seed:"twin" spec in
  let b = Fault_plan.create ~seed:"twin" spec in
  Alcotest.(check string) "identical decision sweep" (sweep a) (sweep b);
  Alcotest.(check (list (pair string int))) "identical injection ledger"
    (Fault_plan.injected a) (Fault_plan.injected b);
  Alcotest.(check bool) "schedule nonempty at this intensity" true
    (Fault_plan.total_injected a > 0)

let test_different_seed_different_schedule () =
  let spec = Fault_plan.chaos ~intensity:0.3 () in
  let a = Fault_plan.create ~seed:"seed-a" spec in
  let b = Fault_plan.create ~seed:"seed-b" spec in
  (* 20 epochs × a dozen draws each: a collision would need hundreds of
     independent coin flips to agree. *)
  Alcotest.(check bool) "schedules diverge" true (sweep a <> sweep b)

let test_decisions_idempotent () =
  let plan = Fault_plan.create ~seed:"idem" (Fault_plan.chaos ~intensity:0.5 ()) in
  let first = sweep plan in
  let counted = Fault_plan.total_injected plan in
  Alcotest.(check string) "same answers on re-query" first (sweep plan);
  Alcotest.(check int) "injections counted once" counted
    (Fault_plan.total_injected plan)

let test_caps_respected () =
  let plan = Fault_plan.create ~seed:"caps" (Fault_plan.chaos ~intensity:9.0 ()) in
  for epoch = 0 to 9 do
    let w = Fault_plan.withheld_shares plan ~epoch ~n:10 ~max_withheld:3 in
    Alcotest.(check bool) "withheld within cap" true (List.length w <= 3);
    Alcotest.(check bool) "withheld indices 1-based distinct" true
      (List.for_all (fun i -> i >= 1 && i <= 10) w
      && List.length (List.sort_uniq compare w) = List.length w);
    let x = Fault_plan.corrupted_shares plan ~epoch ~n:10 ~max_corrupted:2 in
    Alcotest.(check bool) "corrupted within cap" true (List.length x <= 2);
    Alcotest.(check bool) "corrupted indices 1-based distinct" true
      (List.for_all (fun i -> i >= 1 && i <= 10) x
      && List.length (List.sort_uniq compare x) = List.length x);
    let c = Fault_plan.crashed_members plan ~epoch ~round:0 ~members:10 ~max_faulty:3 in
    Alcotest.(check bool) "crashes within f" true (List.length c <= 3);
    Alcotest.(check bool) "crash ids 0-based distinct" true
      (List.for_all (fun i -> i >= 0 && i < 10) c
      && List.length (List.sort_uniq compare c) = List.length c);
    match Fault_plan.reorg_depth plan ~epoch with
    | Some d ->
      Alcotest.(check bool) "reorg depth in [1, max]" true
        (d >= 1 && d <= (Fault_plan.spec plan).Fault_plan.mainchain.max_reorg_depth)
    | None -> ()
  done

let test_net_chaos_deterministic () =
  let spec = Fault_plan.chaos ~intensity:0.5 () in
  let trace seed =
    let plan = Fault_plan.create ~seed spec in
    match Fault_plan.net_chaos plan ~epoch:2 ~round:3 ~members:7 with
    | None -> Alcotest.fail "expected a chaos closure at nonzero rates"
    | Some f ->
      let b = Buffer.create 128 in
      for src = 0 to 6 do
        for dst = 0 to 6 do
          if src <> dst then
            Buffer.add_string b
              (match f ~now:(float_of_int (src + dst)) ~src ~dst with
              | Network.Deliver -> "."
              | Network.Drop -> "x"
              | Network.Duplicate d -> Printf.sprintf "2(%.6f)" d
              | Network.Delay d -> Printf.sprintf "+(%.6f)" d)
        done
      done;
      Buffer.contents b
  in
  Alcotest.(check string) "same seed, same per-message fates"
    (trace "net-twin") (trace "net-twin");
  Alcotest.(check bool) "some messages disturbed" true
    (String.exists (fun ch -> ch <> '.') (trace "net-twin"))

(* ------------------------------------------------------------------ *)
(* Replay oracle                                                       *)
(* ------------------------------------------------------------------ *)

let alice = Address.of_label "alice"
let bob = Address.of_label "bob"

type env = {
  bank : Token_bank.t;
  keys : (Bls.secret_key * Bls.public_key) array;
  pool_id : int;
}

let flash_fee_pips = 3000

let make_env () =
  let rng = Amm_crypto.Rng.create "replay-oracle-tests" in
  let erc0 = Erc20.deploy (Chain.Token.make ~id:0 ~symbol:"TKA") in
  let erc1 = Erc20.deploy (Chain.Token.make ~id:1 ~symbol:"TKB") in
  let keys = Array.init 8 (fun _ -> Bls.keygen rng) in
  let bank = Token_bank.deploy ~token0:erc0 ~token1:erc1 ~genesis_committee_vk:(snd keys.(0)) in
  let pool_id = Token_bank.create_pool bank ~flash_fee_pips in
  List.iter
    (fun who ->
      Erc20.mint erc0 who one_e21;
      Erc20.mint erc1 who one_e21;
      Erc20.approve erc0 ~owner:who ~spender:(Token_bank.address bank) U256.max_value;
      Erc20.approve erc1 ~owner:who ~spender:(Token_bank.address bank) U256.max_value)
    [ alice; bob ];
  { bank; keys; pool_id }

let deposit env oracle ~user ~for_epoch ~amount0 ~amount1 =
  (match Token_bank.deposit env.bank ~user ~for_epoch ~amount0 ~amount1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Replay_oracle.record_deposit oracle ~user ~for_epoch ~amount0 ~amount1

let signed_payload ?(users = []) env ~epoch ~balance0 ~balance1 =
  let p =
    { Sync_payload.epoch; pool = env.pool_id; pool_balance0 = balance0;
      pool_balance1 = balance1; users; positions = [];
      next_committee_vk = snd env.keys.(epoch + 1) }
  in
  (p, Bls.sign (fst env.keys.(epoch)) (Sync_payload.signing_bytes p))

let apply_sync env oracle signed =
  (match Token_bank.sync env.bank ~signed with
  | Ok _ -> ()
  | Error e ->
    Alcotest.fail ("sync rejected: " ^ Token_bank.rejection_to_string e));
  Replay_oracle.record_sync oracle signed

let verify env oracle =
  Replay_oracle.verify ~live:env.bank
    ~genesis_committee_vk:(snd env.keys.(0)) ~flash_fee_pips oracle

let test_oracle_agrees_on_faithful_log () =
  let env = make_env () in
  let oracle = Replay_oracle.create () in
  deposit env oracle ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:one_e18;
  deposit env oracle ~user:bob ~for_epoch:0 ~amount0:one_e18 ~amount1:U256.zero;
  let users =
    [ { Sync_payload.user = alice; payin0 = one_e18; payin1 = one_e18;
        payout0 = U256.zero; payout1 = U256.zero } ]
  in
  apply_sync env oracle [ signed_payload ~users env ~epoch:0 ~balance0:one_e18 ~balance1:one_e18 ];
  Alcotest.(check int) "three ops recorded" 3 (Replay_oracle.size oracle);
  match verify env oracle with
  | Ok () -> ()
  | Error e -> Alcotest.failf "oracle should agree: %s" e

let test_oracle_detects_divergence () =
  let env = make_env () in
  let oracle = Replay_oracle.create () in
  deposit env oracle ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:one_e18;
  (* A phantom op the live chain never executed. *)
  Replay_oracle.record_deposit oracle ~user:bob ~for_epoch:0 ~amount0:one_e18
    ~amount1:U256.zero;
  match verify env oracle with
  | Ok () -> Alcotest.fail "oracle must flag the phantom deposit"
  | Error _ -> ()

let test_oracle_truncate_tracks_rollback () =
  let env = make_env () in
  let oracle = Replay_oracle.create () in
  deposit env oracle ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:one_e18;
  let mark = Replay_oracle.mark oracle in
  let cp = Token_bank.checkpoint env.bank in
  (* A fork's worth of history that later falls off the chain. *)
  deposit env oracle ~user:bob ~for_epoch:0 ~amount0:one_e18 ~amount1:one_e18;
  let users =
    [ { Sync_payload.user = alice; payin0 = one_e18; payin1 = one_e18;
        payout0 = U256.zero; payout1 = U256.zero } ]
  in
  apply_sync env oracle [ signed_payload ~users env ~epoch:0 ~balance0:one_e18 ~balance1:one_e18 ];
  Alcotest.(check int) "fork ops recorded" 3 (Replay_oracle.size oracle);
  Token_bank.restore env.bank cp;
  Replay_oracle.truncate oracle mark;
  Alcotest.(check int) "log truncated to the mark" mark (Replay_oracle.size oracle);
  (match verify env oracle with
  | Ok () -> ()
  | Error e -> Alcotest.failf "oracle should agree after rollback: %s" e);
  (* The surviving history can still be extended and re-checked. *)
  let users =
    [ { Sync_payload.user = alice; payin0 = one_e18; payin1 = one_e18;
        payout0 = U256.zero; payout1 = U256.zero } ]
  in
  apply_sync env oracle [ signed_payload ~users env ~epoch:0 ~balance0:one_e18 ~balance1:one_e18 ];
  match verify env oracle with
  | Ok () -> ()
  | Error e -> Alcotest.failf "oracle should agree after re-sync: %s" e

(* ------------------------------------------------------------------ *)
(* Acceptance: seeded all-layer chaos run                              *)
(* ------------------------------------------------------------------ *)

open Ammboost

let chaos_cfg =
  { Config.default with
    epochs = 3;
    daily_volume = 30_000;
    users = 10;
    miners = 40;
    committee_size = 13;
    max_faulty = 4;
    threshold_signing = true;
    message_level_consensus = true;
    mc_confirmations = 3;
    faults = Fault_plan.chaos ~intensity:0.15 ();
    seed = "chaos-accept" }

let chaos_result = lazy (System.run chaos_cfg)

let test_corrupted_shares_caught_at_crypto_layer () =
  (* Only share corruption enabled: every injected corruption must be
     caught by the pairing check on partials, signing must still land
     every epoch, and the replay oracle must stay clean. *)
  let faults =
    { Fault_plan.none with
      committee = { withhold_rate = 0.0; corrupt_rate = 0.6 } }
  in
  let r =
    System.run
      { chaos_cfg with faults; seed = "corrupt-only"; epochs = 3 }
  in
  let injected =
    Option.value ~default:0
      (List.assoc_opt "committee.share_corrupted" r.System.faults_injected)
  in
  Alcotest.(check bool) "corruptions injected" true (injected > 0);
  Alcotest.(check int) "every corruption caught by verify_partial" injected
    r.System.corrupted_partials;
  Alcotest.(check int) "degraded but signed: all epochs applied"
    r.System.epochs_run r.System.epochs_applied;
  Alcotest.(check bool) "degraded signings recorded" true
    (r.System.degraded_signings > 0);
  Alcotest.(check bool) "replay oracle clean" true r.System.replay_consistent

let test_chaos_run_recovers_everything () =
  let r = Lazy.force chaos_result in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 r.System.faults_injected in
  Alcotest.(check bool) "faults actually injected" true (total > 0);
  (* Every layer the spec arms shows up in the ledger at this intensity. *)
  Alcotest.(check bool) "network faults present" true
    (List.exists (fun (l, _) -> String.length l >= 4 && String.sub l 0 4 = "net.")
       r.System.faults_injected);
  Alcotest.(check int) "every epoch applied despite faults"
    r.System.epochs_run r.System.epochs_applied;
  Alcotest.(check bool) "recovery machinery exercised" true
    (r.System.sync_retries + r.System.mass_syncs + r.System.rollbacks
     + r.System.degraded_signings > 0);
  Alcotest.(check bool) "custody invariant" true r.System.custody_consistent;
  Alcotest.(check bool) "differential replay oracle" true r.System.replay_consistent

let test_chaos_run_reproducible () =
  let a = Lazy.force chaos_result in
  let b = System.run chaos_cfg in
  Alcotest.(check (list (pair string int))) "identical fault schedule"
    a.System.faults_injected b.System.faults_injected;
  Alcotest.(check int) "identical retries" a.System.sync_retries b.System.sync_retries;
  Alcotest.(check int) "identical mass-syncs" a.System.mass_syncs b.System.mass_syncs;
  Alcotest.(check int) "identical rollbacks" a.System.rollbacks b.System.rollbacks;
  Alcotest.(check int) "identical degraded signings" a.System.degraded_signings
    b.System.degraded_signings;
  Alcotest.(check int) "identical corrupted partials" a.System.corrupted_partials
    b.System.corrupted_partials;
  Alcotest.(check int) "identical traffic" a.System.processed b.System.processed;
  Alcotest.(check (float 1e-9)) "identical latency" a.System.mean_payout_latency
    b.System.mean_payout_latency

(* ------------------------------------------------------------------ *)
(* Scripted scenarios                                                  *)
(* ------------------------------------------------------------------ *)

let scenario_spec scenario =
  { Fault_plan.none with Fault_plan.scenario }

let test_scenario_activates_plan () =
  Alcotest.(check bool) "none inactive" false (Fault_plan.active Fault_plan.none);
  Alcotest.(check bool) "starvation active" true
    (Fault_plan.active
       (scenario_spec
          { Fault_plan.quorum_starvation = Some (0, 1); committee_loss = None }));
  Alcotest.(check bool) "loss active" true
    (Fault_plan.active
       (scenario_spec
          { Fault_plan.quorum_starvation = None; committee_loss = Some 3 }))

let test_starvation_window_half_open () =
  let plan =
    Fault_plan.create ~seed:"w"
      (scenario_spec
         { Fault_plan.quorum_starvation = Some (2, 5); committee_loss = None })
  in
  List.iter
    (fun (epoch, want) ->
      Alcotest.(check bool)
        (Printf.sprintf "starved at %d" epoch)
        want
        (Fault_plan.sync_starved plan ~epoch))
    [ (0, false); (1, false); (2, true); (3, true); (4, true); (5, false); (9, false) ]

let test_starvation_forever () =
  let plan =
    Fault_plan.create ~seed:"w"
      (scenario_spec
         { Fault_plan.quorum_starvation = Some (1, max_int); committee_loss = None })
  in
  Alcotest.(check bool) "before" false (Fault_plan.sync_starved plan ~epoch:0);
  Alcotest.(check bool) "far future" true (Fault_plan.sync_starved plan ~epoch:1_000_000)

let test_committee_loss_permanent () =
  let plan =
    Fault_plan.create ~seed:"w"
      (scenario_spec
         { Fault_plan.quorum_starvation = None; committee_loss = Some 4 })
  in
  List.iter
    (fun (epoch, want) ->
      Alcotest.(check bool) (Printf.sprintf "lost at %d" epoch) want
        (Fault_plan.committee_lost plan ~epoch))
    [ (0, false); (3, false); (4, true); (5, true); (100, true) ]

let test_scenario_is_seed_independent () =
  (* Scenarios are scripted windows, not probabilistic draws: any two
     seeds agree on every decision. *)
  let spec =
    scenario_spec
      { Fault_plan.quorum_starvation = Some (2, 5); committee_loss = Some 6 }
  in
  let a = Fault_plan.create ~seed:"seed-a" spec in
  let b = Fault_plan.create ~seed:"seed-b" spec in
  for epoch = 0 to 10 do
    Alcotest.(check bool)
      (Printf.sprintf "starved agree at %d" epoch)
      (Fault_plan.sync_starved a ~epoch)
      (Fault_plan.sync_starved b ~epoch);
    Alcotest.(check bool)
      (Printf.sprintf "lost agree at %d" epoch)
      (Fault_plan.committee_lost a ~epoch)
      (Fault_plan.committee_lost b ~epoch)
  done

let () =
  Alcotest.run "faults"
    [ ( "fault_plan",
        [ Alcotest.test_case "none never injects" `Quick test_none_never_injects;
          Alcotest.test_case "same seed same schedule" `Quick test_same_seed_same_schedule;
          Alcotest.test_case "different seed diverges" `Quick
            test_different_seed_different_schedule;
          Alcotest.test_case "decisions idempotent" `Quick test_decisions_idempotent;
          Alcotest.test_case "caps respected" `Quick test_caps_respected;
          Alcotest.test_case "net chaos deterministic" `Quick test_net_chaos_deterministic ] );
      ( "scenarios",
        [ Alcotest.test_case "activate the plan" `Quick test_scenario_activates_plan;
          Alcotest.test_case "starvation window half-open" `Quick
            test_starvation_window_half_open;
          Alcotest.test_case "starvation forever" `Quick test_starvation_forever;
          Alcotest.test_case "committee loss permanent" `Quick
            test_committee_loss_permanent;
          Alcotest.test_case "seed independent" `Quick
            test_scenario_is_seed_independent ] );
      ( "replay_oracle",
        [ Alcotest.test_case "faithful log agrees" `Quick test_oracle_agrees_on_faithful_log;
          Alcotest.test_case "divergence detected" `Quick test_oracle_detects_divergence;
          Alcotest.test_case "truncate tracks rollback" `Quick
            test_oracle_truncate_tracks_rollback ] );
      ( "chaos_acceptance",
        [ Alcotest.test_case "corrupted shares caught" `Quick
            test_corrupted_shares_caught_at_crypto_layer;
          Alcotest.test_case "recovers and replays" `Quick test_chaos_run_recovers_everything;
          Alcotest.test_case "seed reproduces schedule" `Quick test_chaos_run_reproducible ] ) ]
