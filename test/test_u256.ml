(* Unit and property tests for the from-scratch 256-bit integers and the
   sign-magnitude layer on top. *)

open Amm_math

let u = U256.of_string

let check_u256 = Alcotest.testable U256.pp U256.equal

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* Random values across the whole range: a random bit-width keeps small
   and huge magnitudes equally likely. *)
let gen_u256 =
  QCheck2.Gen.(
    let* width = int_range 0 255 in
    let* a = int_range 0 max_int in
    let* b = int_range 0 max_int in
    let base = U256.logor (U256.of_int a) (U256.shift_left (U256.of_int b) 62) in
    let masked = U256.rem base (U256.shift_left U256.one width) in
    return (if U256.is_zero masked then U256.of_int (a land 0xFFFF) else masked))

let gen_nonzero = QCheck2.Gen.map (fun x -> U256.add x U256.one) gen_u256

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_constants () =
  Alcotest.(check string) "zero" "0" (U256.to_string U256.zero);
  Alcotest.(check string) "one" "1" (U256.to_string U256.one);
  Alcotest.(check string) "max"
    "115792089237316195423570985008687907853269984665640564039457584007913129639935"
    (U256.to_string U256.max_value)

let test_of_string_roundtrip () =
  let cases =
    [ "0"; "1"; "42"; "65535"; "65536"; "18446744073709551615";
      "340282366920938463463374607431768211456";
      "115792089237316195423570985008687907853269984665640564039457584007913129639935" ]
  in
  List.iter (fun s -> Alcotest.(check string) s s (U256.to_string (u s))) cases

let test_hex () =
  Alcotest.(check string) "hex" "deadbeef" (U256.to_hex (u "0xdeadbeef"));
  Alcotest.check check_u256 "hex value" (U256.of_int 0xdeadbeef) (u "0xDEADBEEF");
  Alcotest.(check string) "zero hex" "0" (U256.to_hex U256.zero)

let test_add_carry_chain () =
  (* 2^256 - 1 + 1 wraps to 0 through sixteen digit carries. *)
  Alcotest.check check_u256 "wrap" U256.zero (U256.add U256.max_value U256.one);
  Alcotest.check_raises "checked overflow" U256.Overflow (fun () ->
      ignore (U256.checked_add U256.max_value U256.one))

let test_sub_borrow_chain () =
  let x = U256.shift_left U256.one 128 in
  Alcotest.(check string) "borrow chain" "340282366920938463463374607431768211455"
    (U256.to_string (U256.sub x U256.one));
  Alcotest.check_raises "checked underflow" U256.Overflow (fun () ->
      ignore (U256.checked_sub U256.zero U256.one))

let test_mul_known () =
  Alcotest.(check string) "mul"
    "121932631356500531591068431581771069347203169112635269"
    (U256.to_string
       (U256.mul (u "123456789123456789123456789") (u "987654321987654321987654321")));
  Alcotest.check_raises "checked mul overflow" U256.Overflow (fun () ->
      ignore (U256.checked_mul U256.max_value (U256.of_int 2)))

let test_div_known () =
  let q, r = U256.divmod (u "1000000000000000000000000000000") (u "7777777777777") in
  Alcotest.(check string) "quotient" "128571428571441428" (U256.to_string q);
  Alcotest.(check string) "remainder" "4444444454444" (U256.to_string r);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (U256.div U256.one U256.zero))

let test_div_normalization_edge () =
  (* Divisors with a high leading digit exercise the Knuth-D qhat
     correction path. *)
  let a = u "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff" in
  let b = u "0xffffffff00000000ffffffff" in
  let q, r = U256.divmod a b in
  Alcotest.check check_u256 "identity" a (U256.add (U256.mul q b) r);
  Alcotest.(check bool) "r < b" true (U256.lt r b)

let test_mul_div () =
  (* floor(a*b/c) where a*b overflows 256 bits. *)
  let a = U256.shift_left U256.one 200 in
  let b = U256.shift_left U256.one 100 in
  let c = U256.shift_left U256.one 60 in
  Alcotest.check check_u256 "muldiv 512-bit" (U256.shift_left U256.one 240)
    (U256.mul_div a b c);
  Alcotest.check_raises "muldiv overflow" U256.Overflow (fun () ->
      ignore (U256.mul_div U256.max_value U256.max_value U256.one))

let test_mul_div_rounding () =
  Alcotest.check check_u256 "exact" (U256.of_int 6)
    (U256.mul_div_rounding_up (U256.of_int 4) (U256.of_int 3) (U256.of_int 2));
  Alcotest.check check_u256 "rounds up" (U256.of_int 7)
    (U256.mul_div_rounding_up (U256.of_int 13) U256.one (U256.of_int 2));
  Alcotest.check check_u256 "floor" (U256.of_int 6)
    (U256.mul_div (U256.of_int 13) U256.one (U256.of_int 2))

let test_shifts () =
  let x = u "0x123456789abcdef" in
  Alcotest.check check_u256 "left-right" x (U256.shift_right (U256.shift_left x 137) 137);
  Alcotest.check check_u256 "shift out" U256.zero (U256.shift_left x 256);
  Alcotest.check check_u256 "right out" U256.zero (U256.shift_right x 256)

let test_bits () =
  Alcotest.(check int) "bits 0" 0 (U256.bits U256.zero);
  Alcotest.(check int) "bits 1" 1 (U256.bits U256.one);
  Alcotest.(check int) "bits 2^255" 256 (U256.bits (U256.shift_left U256.one 255));
  Alcotest.(check bool) "bit test" true (U256.bit (U256.shift_left U256.one 93) 93)

let test_sqrt_known () =
  Alcotest.check check_u256 "sqrt(10^40)" (U256.pow (U256.of_int 10) 20)
    (U256.sqrt (U256.pow (U256.of_int 10) 40));
  Alcotest.check check_u256 "sqrt 0" U256.zero (U256.sqrt U256.zero);
  Alcotest.check check_u256 "sqrt 3" U256.one (U256.sqrt (U256.of_int 3))

let test_bytes_be () =
  let x = u "0x0102030405" in
  let b = U256.to_bytes_be x in
  Alcotest.(check int) "length" 32 (Bytes.length b);
  Alcotest.(check char) "last byte" '\x05' (Bytes.get b 31);
  Alcotest.check check_u256 "roundtrip" x (U256.of_bytes_be b);
  Alcotest.check check_u256 "short input" (U256.of_int 0x0102)
    (U256.of_bytes_be (Bytes.of_string "\x01\x02"))

let test_mul_mod () =
  let p = u "21888242871839275222246405745257275088548364400416034343698204186575808495617" in
  let a = U256.sub p U256.one in
  (* (p-1)^2 mod p = 1 *)
  Alcotest.check check_u256 "fermat square" U256.one (U256.mul_mod a a p)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let pair = QCheck2.Gen.pair gen_u256 gen_u256

let props =
  [ prop "add commutative" pair (fun (a, b) -> U256.equal (U256.add a b) (U256.add b a));
    prop "add associative" (QCheck2.Gen.triple gen_u256 gen_u256 gen_u256)
      (fun (a, b, c) ->
        U256.equal (U256.add (U256.add a b) c) (U256.add a (U256.add b c)));
    prop "mul commutative" pair (fun (a, b) -> U256.equal (U256.mul a b) (U256.mul b a));
    prop "distributivity" (QCheck2.Gen.triple gen_u256 gen_u256 gen_u256)
      (fun (a, b, c) ->
        U256.equal (U256.mul a (U256.add b c)) (U256.add (U256.mul a b) (U256.mul a c)));
    prop "sub inverse of add" pair (fun (a, b) -> U256.equal (U256.sub (U256.add a b) b) a);
    prop "division identity" (QCheck2.Gen.pair gen_u256 gen_nonzero) (fun (a, b) ->
        let q, r = U256.divmod a b in
        U256.equal a (U256.add (U256.mul q b) r) && U256.lt r b);
    prop "mul_div vs divmod when in range" (QCheck2.Gen.pair gen_u256 gen_nonzero)
      (fun (a, b) -> U256.equal (U256.mul_div a b b) a);
    prop "mul_mod matches divmod" (QCheck2.Gen.triple gen_u256 gen_u256 gen_nonzero)
      (fun (a, b, c) ->
        let p = U256.mul_mod a b c in
        U256.lt p c);
    prop "decimal roundtrip" gen_u256 (fun a ->
        U256.equal a (U256.of_string (U256.to_string a)));
    prop "hex roundtrip" gen_u256 (fun a -> U256.equal a (U256.of_hex (U256.to_hex a)));
    prop "bytes roundtrip" gen_u256 (fun a ->
        U256.equal a (U256.of_bytes_be (U256.to_bytes_be a)));
    prop "sqrt bounds" gen_u256 (fun a ->
        let s = U256.sqrt a in
        U256.le (U256.mul s s) a
        && (U256.equal s U256.max_value
           || U256.gt (U256.mul (U256.add s U256.one) (U256.add s U256.one)) a
           || U256.lt (U256.mul (U256.add s U256.one) (U256.add s U256.one)) s));
    prop "compare antisymmetric" pair (fun (a, b) ->
        U256.compare a b = -U256.compare b a);
    prop "shift_left is mul by 2^k"
      QCheck2.Gen.(pair gen_u256 (int_range 0 64))
      (fun (a, k) ->
        U256.equal (U256.shift_left a k) (U256.mul a (U256.pow U256.two k)));
    prop "logical ops involution" pair (fun (a, b) ->
        U256.equal (U256.logxor (U256.logxor a b) b) a
        && U256.equal (U256.lognot (U256.lognot a)) a);
    prop "ceil - floor division is 0 or 1"
      (QCheck2.Gen.triple gen_u256 gen_u256 gen_nonzero)
      (fun (a, b, c) ->
        match U256.mul_div_rounding_up a b c with
        | up ->
          let down = U256.mul_div a b c in
          let diff = U256.sub up down in
          U256.is_zero diff || U256.equal diff U256.one
        | exception U256.Overflow -> true);
    prop "to_float monotone" pair (fun (a, b) ->
        let fa = U256.to_float a and fb = U256.to_float b in
        if U256.le a b then fa <= fb else fa >= fb) ]

(* ------------------------------------------------------------------ *)
(* Destination-passing variants and mul_div fast paths                  *)
(* ------------------------------------------------------------------ *)

(* Every in-place operation must agree with its allocating counterpart,
   including at the representation boundaries and under the aliasing
   patterns the interface allows. *)

let boundary_values =
  [ U256.zero; U256.one; U256.two; U256.max_value; U256.of_int 65535;
    U256.of_int 65536; U256.of_int max_int;
    U256.shift_left U256.one 128;
    U256.sub (U256.shift_left U256.one 128) U256.one ]

let test_into_boundaries () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let dst = U256.scratch () in
          U256.add_into ~dst a b;
          Alcotest.check check_u256 "add_into" (U256.add a b) dst;
          U256.sub_into ~dst a b;
          Alcotest.check check_u256 "sub_into" (U256.sub a b) dst;
          U256.mul_into ~dst a b;
          Alcotest.check check_u256 "mul_into" (U256.mul a b) dst)
        boundary_values)
    boundary_values

let test_into_aliasing () =
  let a = u "123456789123456789123456789123456789123456789" in
  let b = u "987654321987654321987654321987654321" in
  (* dst == first operand *)
  let c = U256.copy a in
  U256.add_into ~dst:c c b;
  Alcotest.check check_u256 "add dst==a" (U256.add a b) c;
  (* dst == second operand *)
  let c = U256.copy b in
  U256.add_into ~dst:c a c;
  Alcotest.check check_u256 "add dst==b" (U256.add a b) c;
  (* dst == both operands *)
  let c = U256.copy a in
  U256.add_into ~dst:c c c;
  Alcotest.check check_u256 "add dst==a==b" (U256.add a a) c;
  let c = U256.copy a in
  U256.sub_into ~dst:c c b;
  Alcotest.check check_u256 "sub dst==a" (U256.sub a b) c;
  let c = U256.copy b in
  U256.sub_into ~dst:c a c;
  Alcotest.check check_u256 "sub dst==b" (U256.sub a b) c;
  (* mul_into rejects aliasing (the product accumulates in place) *)
  let c = U256.copy a in
  Alcotest.check_raises "mul dst==a"
    (Invalid_argument "U256.mul_into: dst aliases an input") (fun () ->
      U256.mul_into ~dst:c c b)

let test_mul_div_fast_paths () =
  (* b == c short-circuit: a * b / b = a without touching the 512-bit
     path, but division by zero must still raise. *)
  let b = u "987654321987654321987654321987654321" in
  Alcotest.check check_u256 "b==c" U256.max_value (U256.mul_div U256.max_value b b);
  Alcotest.check_raises "b==c zero" Division_by_zero (fun () ->
      ignore (U256.mul_div U256.one U256.zero U256.zero));
  (* Small-operand path: everything fits in a native int. *)
  Alcotest.check check_u256 "small floor" (U256.of_int ((12345 * 6789) / 997))
    (U256.mul_div (U256.of_int 12345) (U256.of_int 6789) (U256.of_int 997));
  Alcotest.check check_u256 "small ceil"
    (U256.of_int (((12345 * 6789) + 996) / 997))
    (U256.mul_div_rounding_up (U256.of_int 12345) (U256.of_int 6789)
       (U256.of_int 997));
  (* Small product, huge divisor: quotient 0 (and 1 when rounding up). *)
  let huge = U256.shift_left U256.one 200 in
  Alcotest.check check_u256 "huge divisor floor" U256.zero
    (U256.mul_div (U256.of_int 12345) (U256.of_int 6789) huge);
  Alcotest.check check_u256 "huge divisor ceil" U256.one
    (U256.mul_div_rounding_up (U256.of_int 12345) (U256.of_int 6789) huge)

let gen_small_int = QCheck2.Gen.int_range 0 0x3FFFFFFF (* ~2^30: products fit *)

let into_props =
  [ prop "add_into matches add" pair (fun (a, b) ->
        let dst = U256.scratch () in
        U256.add_into ~dst a b;
        U256.equal dst (U256.add a b));
    prop "sub_into matches sub" pair (fun (a, b) ->
        let dst = U256.scratch () in
        U256.sub_into ~dst a b;
        U256.equal dst (U256.sub a b));
    prop "mul_into matches mul" pair (fun (a, b) ->
        let dst = U256.scratch () in
        U256.mul_into ~dst a b;
        U256.equal dst (U256.mul a b));
    prop "add_into aliased matches add" pair (fun (a, b) ->
        let c = U256.copy a in
        U256.add_into ~dst:c c b;
        U256.equal c (U256.add a b));
    prop "sub_into aliased matches sub" pair (fun (a, b) ->
        let c = U256.copy b in
        U256.sub_into ~dst:c a c;
        U256.equal c (U256.sub a b));
    prop "mul_div small operands exact"
      QCheck2.Gen.(triple gen_small_int gen_small_int (int_range 1 0x3FFFFFFF))
      (fun (a, b, c) ->
        let p = a * b in
        let floor = p / c in
        let ceil = if p mod c = 0 then floor else floor + 1 in
        U256.equal
          (U256.mul_div (U256.of_int a) (U256.of_int b) (U256.of_int c))
          (U256.of_int floor)
        && U256.equal
             (U256.mul_div_rounding_up (U256.of_int a) (U256.of_int b)
                (U256.of_int c))
             (U256.of_int ceil)) ]

(* ------------------------------------------------------------------ *)
(* Signed values                                                       *)
(* ------------------------------------------------------------------ *)

let check_signed = Alcotest.testable Signed.pp Signed.equal

let test_signed_basics () =
  Alcotest.check check_signed "neg neg" (Signed.of_int 5) (Signed.neg (Signed.of_int (-5)));
  Alcotest.check check_signed "add mixed" (Signed.of_int (-2))
    (Signed.add (Signed.of_int 3) (Signed.of_int (-5)));
  Alcotest.check check_signed "sub" (Signed.of_int 8)
    (Signed.sub (Signed.of_int 3) (Signed.of_int (-5)));
  Alcotest.(check bool) "zero not negative" false
    (Signed.is_negative (Signed.add (Signed.of_int 5) (Signed.of_int (-5))))

let test_signed_apply () =
  Alcotest.check check_u256 "apply pos" (U256.of_int 15)
    (Signed.apply (U256.of_int 10) (Signed.of_int 5));
  Alcotest.check check_u256 "apply neg" (U256.of_int 5)
    (Signed.apply (U256.of_int 10) (Signed.of_int (-5)));
  Alcotest.check_raises "apply below zero" U256.Overflow (fun () ->
      ignore (Signed.apply (U256.of_int 1) (Signed.of_int (-2))))

let signed_gen =
  QCheck2.Gen.(
    map2 (fun v neg -> if neg then Signed.neg_of_u256 v else Signed.of_u256 v) gen_u256 bool)

(* ------------------------------------------------------------------ *)
(* Montgomery contexts                                                 *)
(* ------------------------------------------------------------------ *)

(* The BN254 scalar-field order, the modulus the crypto layer specialises
   for — plus random odd moduli to show the context isn't order-specific. *)
let bn254_order =
  u "21888242871839275222246405745257275088548364400416034343698204186575808495617"

let gen_odd_modulus =
  QCheck2.Gen.map
    (fun x -> U256.logor (U256.add x U256.two) U256.one)
    gen_u256

let mont_props =
  let mul_agrees ctx m (a, b) =
    let a = U256.rem a m and b = U256.rem b m in
    let expect = U256.mul_mod a b m in
    let got =
      U256.Mont.of_mont ctx
        (U256.Mont.mul ctx (U256.Mont.to_mont ctx a) (U256.Mont.to_mont ctx b))
    in
    U256.equal got expect
  in
  let bn_ctx = U256.Mont.create ~modulus:bn254_order in
  [ prop "mont roundtrip (bn254)" gen_u256 (fun x ->
        let x = U256.rem x bn254_order in
        U256.equal x (U256.Mont.of_mont bn_ctx (U256.Mont.to_mont bn_ctx x)));
    prop "mont mul = mul_mod (bn254)" pair (mul_agrees bn_ctx bn254_order);
    prop "mont mul = mul_mod (random odd modulus)"
      (QCheck2.Gen.triple gen_odd_modulus gen_u256 gen_u256)
      (fun (m, a, b) ->
        let ctx = U256.Mont.create ~modulus:m in
        mul_agrees ctx m (a, b));
    prop "mont one is the identity" gen_u256 (fun x ->
        let xm = U256.Mont.to_mont bn_ctx (U256.rem x bn254_order) in
        U256.equal xm (U256.Mont.mul bn_ctx xm (U256.Mont.one bn_ctx))) ]

let test_mont_edges () =
  let m = bn254_order in
  let ctx = U256.Mont.create ~modulus:m in
  let check a b =
    let expect = U256.mul_mod a b m in
    let got =
      U256.Mont.of_mont ctx
        (U256.Mont.mul ctx (U256.Mont.to_mont ctx a) (U256.Mont.to_mont ctx b))
    in
    Alcotest.check check_u256
      (Printf.sprintf "%s * %s" (U256.to_string a) (U256.to_string b))
      expect got
  in
  let pm1 = U256.sub m U256.one in
  List.iter
    (fun (a, b) -> check a b)
    [ (U256.zero, U256.zero); (U256.zero, pm1); (U256.one, U256.one);
      (U256.one, pm1); (pm1, pm1); (U256.two, pm1) ];
  Alcotest.check check_u256 "modulus accessor" m (U256.Mont.modulus ctx);
  Alcotest.check_raises "even modulus rejected"
    (Invalid_argument "U256.Mont.create: modulus must be odd") (fun () ->
      ignore (U256.Mont.create ~modulus:(U256.of_int 10)));
  Alcotest.check_raises "zero modulus rejected"
    (Invalid_argument "U256.Mont.create: modulus must be odd") (fun () ->
      ignore (U256.Mont.create ~modulus:U256.zero))

let signed_props =
  [ prop "signed add commutative" (QCheck2.Gen.pair signed_gen signed_gen) (fun (a, b) ->
        Signed.equal (Signed.add a b) (Signed.add b a));
    prop "signed sub self is zero" signed_gen (fun a -> Signed.is_zero (Signed.sub a a));
    prop "signed neg involution" signed_gen (fun a -> Signed.equal a (Signed.neg (Signed.neg a))) ]

let () =
  Alcotest.run "u256"
    [ ( "unit",
        [ Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "decimal roundtrip" `Quick test_of_string_roundtrip;
          Alcotest.test_case "hex" `Quick test_hex;
          Alcotest.test_case "add carries" `Quick test_add_carry_chain;
          Alcotest.test_case "sub borrows" `Quick test_sub_borrow_chain;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "div known" `Quick test_div_known;
          Alcotest.test_case "div normalization edge" `Quick test_div_normalization_edge;
          Alcotest.test_case "mul_div 512-bit" `Quick test_mul_div;
          Alcotest.test_case "mul_div rounding" `Quick test_mul_div_rounding;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "bits" `Quick test_bits;
          Alcotest.test_case "sqrt known" `Quick test_sqrt_known;
          Alcotest.test_case "bytes" `Quick test_bytes_be;
          Alcotest.test_case "mul_mod" `Quick test_mul_mod ] );
      ("properties", props);
      ( "in-place",
        [ Alcotest.test_case "boundaries" `Quick test_into_boundaries;
          Alcotest.test_case "aliasing" `Quick test_into_aliasing;
          Alcotest.test_case "mul_div fast paths" `Quick test_mul_div_fast_paths ]
        @ into_props );
      ( "mont",
        Alcotest.test_case "edge values" `Quick test_mont_edges :: mont_props );
      ( "signed",
        [ Alcotest.test_case "basics" `Quick test_signed_basics;
          Alcotest.test_case "apply" `Quick test_signed_apply ]
        @ signed_props ) ]
