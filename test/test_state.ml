(* The flat-store layer underneath the million-user engine: the Bytes
   arena (Slab), key interning (Registry), and TokenBank's journalled
   position table (Pos_store). These are the pieces the O(dirty)
   checkpoint bound rests on, so the codec round-trips and the undo
   journal get exercised directly here. *)

module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id
module Slab = Flatstore.Slab
module Pos_store = Tokenbank.Pos_store

let u = U256.of_string
let check_u256 = Alcotest.testable U256.pp U256.equal

let pos_id label = Position_id.of_hash (Amm_crypto.Sha256.digest_string label)

(* ------------------------------------------------------------------ *)
(* Slab                                                                *)
(* ------------------------------------------------------------------ *)

let test_slab_slot_roundtrip () =
  let s = Slab.create ~slots:4 () in
  let r = Slab.alloc s in
  Slab.set_u256 s ~row:r ~slot:0 (u "123456789123456789123456789");
  Slab.set_int s ~row:r ~slot:1 (-42);
  Slab.set_int2 s ~row:r ~slot:2 (-887220) 887220;
  Slab.set_bytes s ~row:r ~slot:3 (Address.to_bytes (Address.of_label "carol"));
  Alcotest.check check_u256 "u256" (u "123456789123456789123456789")
    (Slab.get_u256 s ~row:r ~slot:0);
  Alcotest.(check int) "int" (-42) (Slab.get_int s ~row:r ~slot:1);
  Alcotest.(check (pair int int)) "int2" (-887220, 887220) (Slab.get_int2 s ~row:r ~slot:2);
  Alcotest.(check bytes) "bytes" (Address.to_bytes (Address.of_label "carol"))
    (Slab.get_bytes s ~row:r ~slot:3 ~len:20)

let test_slab_dirty_tracking () =
  let s = Slab.create ~slots:2 () in
  let a = Slab.alloc s in
  let b = Slab.alloc s in
  let c = Slab.alloc s in
  Alcotest.(check (list int)) "allocs are dirty" [ a; b; c ] (Slab.dirty_rows s);
  Slab.clear_dirty s;
  Alcotest.(check int) "clean" 0 (Slab.dirty_count s);
  Slab.set_int s ~row:b ~slot:0 7;
  Slab.set_int s ~row:b ~slot:1 8;
  (* two writes, one row: dirty set dedups *)
  Alcotest.(check (list int)) "only touched row" [ b ] (Slab.dirty_rows s);
  Slab.set_u256 s ~row:a ~slot:0 U256.one;
  Alcotest.(check (list int)) "ascending order" [ a; b ] (Slab.dirty_rows s)

let test_slab_rows_independent () =
  let s = Slab.create ~slots:1 () in
  let a = Slab.alloc s in
  let b = Slab.alloc s in
  Slab.set_u256 s ~row:a ~slot:0 (u "1000000000000000000");
  Slab.set_u256 s ~row:b ~slot:0 (u "2000000000000000000");
  Alcotest.check check_u256 "row a" (u "1000000000000000000") (Slab.get_u256 s ~row:a ~slot:0);
  Alcotest.check check_u256 "row b" (u "2000000000000000000") (Slab.get_u256 s ~row:b ~slot:0);
  let saved = Slab.copy_row s a in
  Slab.set_u256 s ~row:a ~slot:0 U256.zero;
  Slab.blit_row s a saved;
  Alcotest.check check_u256 "blit restores" (u "1000000000000000000")
    (Slab.get_u256 s ~row:a ~slot:0)

let test_slab_codec_roundtrip () =
  let s = Slab.create ~slots:3 () in
  for i = 0 to 9 do
    let r = Slab.alloc s in
    Slab.set_int s ~row:r ~slot:0 i;
    Slab.set_u256 s ~row:r ~slot:1 (U256.of_int (i * 1_000_003));
    Slab.set_bytes s ~row:r ~slot:2 (Bytes.make (i mod 32) 'x')
  done;
  let enc = Slab.to_bytes s in
  let s' = Slab.of_bytes_exn enc in
  Alcotest.(check int) "slots" (Slab.slots s) (Slab.slots s');
  Alcotest.(check int) "rows" (Slab.rows s) (Slab.rows s');
  Alcotest.(check int) "decoded slab is clean" 0 (Slab.dirty_count s');
  Alcotest.(check bytes) "re-encode byte-identical" enc (Slab.to_bytes s');
  (match Slab.of_bytes (Bytes.sub enc 0 (Bytes.length enc - 1)) with
  | Error (Slab.Length_mismatch _) -> ()
  | Error e -> Alcotest.fail ("unexpected error: " ^ Slab.error_to_string e)
  | Ok _ -> Alcotest.fail "truncated buffer accepted")

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

module Areg = Flatstore.Registry.Make (struct
  type t = Address.t

  let equal = Address.equal
  let hash a = Hashtbl.hash (Address.to_bytes a)
end)

let test_registry_intern () =
  let r = Areg.create () in
  let users = List.init 50 (fun i -> Address.of_label (Printf.sprintf "user-%d" i)) in
  let idx = List.map (Areg.intern r) users in
  Alcotest.(check (list int)) "dense first-seen indices" (List.init 50 Fun.id) idx;
  Alcotest.(check (list int)) "intern is idempotent" idx (List.map (Areg.intern r) users);
  Alcotest.(check int) "count unchanged" 50 (Areg.count r);
  Alcotest.(check (option int)) "find known" (Some 7)
    (Areg.find r (Address.of_label "user-7"));
  Alcotest.(check (option int)) "find unknown" None
    (Areg.find r (Address.of_label "stranger"));
  Alcotest.(check bool) "key inverts intern" true
    (Address.equal (Areg.key r 7) (Address.of_label "user-7"));
  let seen = Areg.fold r ~init:[] ~f:(fun acc i k -> (i, k) :: acc) in
  Alcotest.(check int) "fold visits all" 50 (List.length seen);
  match Areg.key r 50 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range index resolved"

(* ------------------------------------------------------------------ *)
(* Pos_store                                                           *)
(* ------------------------------------------------------------------ *)

let entry ?(liquidity = u "5000000000000000000") ?(deleted = false) label =
  { Tokenbank.Sync_payload.pos_id = pos_id label;
    owner = Address.of_label ("owner-" ^ label);
    lower_tick = -60; upper_tick = 60; liquidity;
    amount0 = u "1000000000000000000"; amount1 = u "2000000000000000000";
    fees0 = U256.one; fees1 = U256.two; deleted }

let check_entry = Alcotest.testable
    (fun fmt (e : Tokenbank.Sync_payload.position_entry) ->
      Format.fprintf fmt "%s liq=%a" (Position_id.to_hex e.pos_id) U256.pp e.liquidity)
    (fun a b ->
      Position_id.equal a.Tokenbank.Sync_payload.pos_id b.Tokenbank.Sync_payload.pos_id
      && Address.equal a.owner b.owner
      && a.lower_tick = b.lower_tick && a.upper_tick = b.upper_tick
      && U256.equal a.liquidity b.liquidity
      && U256.equal a.amount0 b.amount0 && U256.equal a.amount1 b.amount1
      && U256.equal a.fees0 b.fees0 && U256.equal a.fees1 b.fees1
      && a.deleted = b.deleted)

let test_pos_store_basics () =
  let t = Pos_store.create () in
  let a = entry "a" and b = entry "b" in
  Pos_store.set t a;
  Pos_store.set t b;
  Alcotest.(check int) "two live" 2 (Pos_store.length t);
  Alcotest.(check (option check_entry)) "find a" (Some a) (Pos_store.find t a.pos_id);
  let a' = entry ~liquidity:(u "7000000000000000000") "a" in
  Pos_store.set t a';
  Alcotest.(check int) "overwrite keeps count" 2 (Pos_store.length t);
  Alcotest.(check (option check_entry)) "overwrite visible" (Some a')
    (Pos_store.find t a.pos_id);
  Pos_store.remove t b.pos_id;
  Alcotest.(check int) "one live after remove" 1 (Pos_store.length t);
  Alcotest.(check (option check_entry)) "removed absent" None (Pos_store.find t b.pos_id);
  let order = Pos_store.fold t ~init:[] ~f:(fun acc e -> e.pos_id :: acc) in
  Alcotest.(check int) "iter skips deleted" 1 (List.length order)

let test_pos_store_undo () =
  let t = Pos_store.create () in
  Pos_store.set t (entry "a");
  Pos_store.set t (entry "b");
  let before = Pos_store.to_bytes t in
  let mark = Pos_store.mark t in
  (* mutate, insert, delete — then rewind all three *)
  Pos_store.set t (entry ~liquidity:(u "9000000000000000000") "a");
  Pos_store.set t (entry "c");
  Pos_store.remove t (pos_id "b");
  Alcotest.(check int) "mutated state live" 2 (Pos_store.length t);
  Pos_store.undo_to t mark;
  Alcotest.(check bytes) "undo restores exact bytes" before (Pos_store.to_bytes t);
  Alcotest.(check (option check_entry)) "fresh insert gone" None
    (Pos_store.find t (pos_id "c"));
  (* rewinding to the same mark twice is a no-op *)
  Pos_store.undo_to t mark;
  Alcotest.(check bytes) "idempotent" before (Pos_store.to_bytes t);
  match Pos_store.undo_to t (Pos_store.mark t + 1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "future mark accepted"

let test_pos_store_journal_bound () =
  let t = Pos_store.create () in
  for i = 0 to 99 do
    Pos_store.set t (entry (Printf.sprintf "p%d" i))
  done;
  let j0 = Pos_store.journal_bytes t in
  let mark = Pos_store.mark t in
  Pos_store.set t (entry ~liquidity:(u "1") "p3");
  let delta = Pos_store.journal_bytes t - j0 in
  Alcotest.(check bool) "journal grows" true (delta > 0);
  (* one mutated row journals one row image, not the 100-entry table *)
  Alcotest.(check bool)
    (Printf.sprintf "single op journals <= 1 row (%d <= %d)" delta (Pos_store.row_bytes t))
    true
    (delta <= Pos_store.row_bytes t);
  Pos_store.release_below t mark;
  Pos_store.set t (entry ~liquidity:(u "2") "p3");
  Alcotest.(check bool) "journal stays monotone after release" true
    (Pos_store.journal_bytes t >= j0 + delta)

let test_pos_store_codec_roundtrip () =
  let t = Pos_store.create () in
  for i = 0 to 19 do
    Pos_store.set t (entry (Printf.sprintf "q%d" i))
  done;
  Pos_store.remove t (pos_id "q7");
  Pos_store.remove t (pos_id "q13");
  let enc = Pos_store.to_bytes t in
  let t' = Pos_store.of_bytes_exn enc in
  Alcotest.(check int) "live count survives" (Pos_store.length t) (Pos_store.length t');
  Alcotest.(check bytes) "re-encode byte-identical" enc (Pos_store.to_bytes t');
  Alcotest.(check (option check_entry)) "deleted stays deleted" None
    (Pos_store.find t' (pos_id "q7"));
  (* insertion order (= row order) is part of the codec contract *)
  let ids t = Pos_store.fold t ~init:[] ~f:(fun acc e -> e.pos_id :: acc) in
  Alcotest.(check bool) "iteration order preserved" true
    (List.for_all2 Position_id.equal (ids t) (ids t'))

let () =
  Alcotest.run "state"
    [ ( "slab",
        [ Alcotest.test_case "slot roundtrip" `Quick test_slab_slot_roundtrip;
          Alcotest.test_case "dirty tracking" `Quick test_slab_dirty_tracking;
          Alcotest.test_case "rows independent" `Quick test_slab_rows_independent;
          Alcotest.test_case "codec roundtrip" `Quick test_slab_codec_roundtrip ] );
      ( "registry",
        [ Alcotest.test_case "intern/find/key" `Quick test_registry_intern ] );
      ( "pos_store",
        [ Alcotest.test_case "set/find/remove" `Quick test_pos_store_basics;
          Alcotest.test_case "undo journal" `Quick test_pos_store_undo;
          Alcotest.test_case "O(dirty) journal bound" `Quick test_pos_store_journal_bound;
          Alcotest.test_case "codec roundtrip" `Quick test_pos_store_codec_roundtrip ] ) ]
