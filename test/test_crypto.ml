(* Hash test vectors, field laws, BLS and threshold signatures, VRF,
   Merkle trees, and the deterministic RNG. *)

open Amm_crypto
module U256 = Amm_math.U256

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)
let gen_msg = QCheck2.Gen.(map Bytes.of_string (string_size (int_range 0 300)))

(* ------------------------------------------------------------------ *)
(* SHA-256 (FIPS 180-4 vectors)                                        *)
(* ------------------------------------------------------------------ *)

let test_sha256_vectors () =
  let cases =
    [ ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      (String.make 1000 'a',
       "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3") ]
  in
  List.iter (fun (input, expect) -> Alcotest.(check string) input expect (Sha256.hex input)) cases

let test_sha256_block_boundaries () =
  (* Lengths that straddle the 64-byte block and padding boundaries. *)
  List.iter
    (fun n ->
      let d = Sha256.digest (Bytes.make n 'x') in
      Alcotest.(check int) (Printf.sprintf "len %d" n) 32 (Bytes.length d))
    [ 54; 55; 56; 63; 64; 65; 119; 120; 128 ]

(* ------------------------------------------------------------------ *)
(* Keccak-256 (Ethereum vectors)                                       *)
(* ------------------------------------------------------------------ *)

let test_keccak_vectors () =
  let cases =
    [ ("", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
      ("abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
      ("hello", "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8");
      ("testing", "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02") ]
  in
  List.iter (fun (input, expect) -> Alcotest.(check string) input expect (Keccak256.hex input)) cases

let test_keccak_rate_boundaries () =
  (* The 136-byte rate boundary and multiples. *)
  List.iter
    (fun n ->
      let d = Keccak256.digest (Bytes.make n 'k') in
      Alcotest.(check int) (Printf.sprintf "len %d" n) 32 (Bytes.length d))
    [ 135; 136; 137; 271; 272; 273 ]

let hash_props =
  [ prop "sha256 deterministic" gen_msg (fun m ->
        Bytes.equal (Sha256.digest m) (Sha256.digest m));
    prop "keccak deterministic" gen_msg (fun m ->
        Bytes.equal (Keccak256.digest m) (Keccak256.digest m));
    prop "sha256 avalanche" gen_msg (fun m ->
        let m' = Bytes.cat m (Bytes.of_string "x") in
        not (Bytes.equal (Sha256.digest m) (Sha256.digest m'))) ]

(* Streaming digests must equal the one-shot digest of the concatenation,
   at any chunk boundary — including mid-block and block-aligned splits. *)
let gen_long_msg =
  QCheck2.Gen.(map Bytes.of_string (string_size (int_range 0 400)))

let streaming_props =
  let split_prop name init feed finalize digest =
    prop name
      QCheck2.Gen.(pair gen_long_msg (int_range 0 400))
      (fun (m, cut) ->
        let cut = Stdlib.min cut (Bytes.length m) in
        let ctx = init () in
        feed ctx (Bytes.sub m 0 cut);
        feed ctx (Bytes.sub m cut (Bytes.length m - cut));
        Bytes.equal (finalize ctx) (digest m))
  in
  [ split_prop "sha256 streaming = one-shot" Sha256.init Sha256.feed
      Sha256.finalize Sha256.digest;
    split_prop "keccak streaming = one-shot" Keccak256.init Keccak256.feed
      Keccak256.finalize Keccak256.digest;
    prop "sha256 concat = digest of concatenation"
      QCheck2.Gen.(list_size (int_range 0 5) gen_msg)
      (fun parts ->
        Bytes.equal (Sha256.concat parts)
          (Sha256.digest (Bytes.concat Bytes.empty parts)));
    prop "streaming context reusable across messages"
      (QCheck2.Gen.pair gen_long_msg gen_long_msg)
      (fun (m1, m2) ->
        let ctx = Keccak256.init () in
        Keccak256.feed ctx m1;
        let d1 = Keccak256.finalize ctx in
        Keccak256.feed ctx m2;
        let d2 = Keccak256.finalize ctx in
        Bytes.equal d1 (Keccak256.digest m1)
        && Bytes.equal d2 (Keccak256.digest m2)) ]

(* ------------------------------------------------------------------ *)
(* Field                                                               *)
(* ------------------------------------------------------------------ *)

let gen_field =
  QCheck2.Gen.(map (fun s -> Field.of_bytes (Bytes.of_string s)) (string_size (return 16)))

let field_props =
  [ prop "field inverse" gen_field (fun a ->
        Field.is_zero a || Field.equal Field.one (Field.mul a (Field.inv a)));
    prop "field add inverse" gen_field (fun a ->
        Field.is_zero (Field.add a (Field.neg a)));
    prop "field distributivity" (QCheck2.Gen.triple gen_field gen_field gen_field)
      (fun (a, b, c) ->
        Field.equal (Field.mul a (Field.add b c))
          (Field.add (Field.mul a b) (Field.mul a c))) ]

let test_field_pow () =
  let a = Field.of_int 7 in
  Alcotest.(check bool) "a^(p-1) = 1 (Fermat)" true
    (Field.equal Field.one (Field.pow a (U256.sub Field.order U256.one)))

(* The Montgomery/extended-GCD fast paths against their naive reference
   implementations (generic-division multiply, Fermat inversion). *)
let gen_exp = QCheck2.Gen.map U256.of_int (QCheck2.Gen.int_range 0 max_int)

let fast_vs_naive_props =
  [ prop "mul = mul_naive" (QCheck2.Gen.pair gen_field gen_field) (fun (a, b) ->
        Field.equal (Field.mul a b) (Field.mul_naive a b));
    prop "inv = inv_naive" gen_field (fun a ->
        Field.is_zero a || Field.equal (Field.inv a) (Field.inv_naive a));
    prop "inv is a multiplicative inverse" gen_field (fun a ->
        Field.is_zero a || Field.equal Field.one (Field.mul a (Field.inv a)));
    prop "pow = pow_naive" (QCheck2.Gen.pair gen_field gen_exp) (fun (a, e) ->
        Field.equal (Field.pow a e) (Field.pow_naive a e));
    prop "batch_inv = map inv"
      QCheck2.Gen.(array_size (int_range 1 12) gen_field)
      (fun xs ->
        let xs = Array.map (fun a -> if Field.is_zero a then Field.one else a) xs in
        let batched = Field.batch_inv xs in
        Array.for_all2 Field.equal batched (Array.map Field.inv xs)) ]

let test_field_inv_edges () =
  let pm1 = Field.of_u256 (U256.sub Field.order U256.one) in
  Alcotest.(check bool) "inv one" true (Field.equal Field.one (Field.inv Field.one));
  (* −1 is its own inverse. *)
  Alcotest.(check bool) "inv (order-1)" true (Field.equal pm1 (Field.inv pm1));
  Alcotest.(check bool) "inv matches naive at order-1" true
    (Field.equal (Field.inv pm1) (Field.inv_naive pm1));
  Alcotest.check_raises "inv zero raises" Division_by_zero (fun () ->
      ignore (Field.inv Field.zero));
  Alcotest.check_raises "batch_inv with zero raises" Division_by_zero (fun () ->
      ignore (Field.batch_inv [| Field.one; Field.zero |]))

(* ------------------------------------------------------------------ *)
(* BLS and threshold signatures                                        *)
(* ------------------------------------------------------------------ *)

let rng () = Rng.create "crypto-tests"

let test_bls_sign_verify () =
  let r = rng () in
  let sk, pk = Bls.keygen r in
  let msg = Bytes.of_string "epoch 7 summary" in
  let s = Bls.sign sk msg in
  Alcotest.(check bool) "valid" true (Bls.verify pk msg s);
  Alcotest.(check bool) "wrong message" false (Bls.verify pk (Bytes.of_string "other") s);
  let _, pk2 = Bls.keygen r in
  Alcotest.(check bool) "wrong key" false (Bls.verify pk2 msg s)

let test_bls_sizes () =
  let sk, pk = Bls.keygen (rng ()) in
  Alcotest.(check int) "sig 64B" 64
    (Bytes.length (Bls.signature_to_bytes (Bls.sign sk (Bytes.of_string "m"))));
  Alcotest.(check int) "vk 128B" 128 (Bytes.length (Bls.public_key_to_bytes pk))

let test_bls_aggregate () =
  let r = rng () in
  let msg = Bytes.of_string "m" in
  let keys = List.init 5 (fun _ -> Bls.keygen r) in
  let sigs = List.map (fun (sk, _) -> Bls.sign sk msg) keys in
  let agg_sig = Bls.aggregate sigs in
  (* Aggregate verifies under the aggregated public key in the ideal
     group: sum of keys = key of summed secrets. *)
  let agg_pk =
    List.fold_left (fun acc (_, pk) -> Group.g2_add acc pk) Group.g2_zero keys
  in
  Alcotest.(check bool) "aggregate verifies" true (Bls.verify agg_pk msg agg_sig)

let test_threshold_basic () =
  let vk, _, shares = Bls.dkg (rng ()) ~n:10 ~threshold:7 in
  let msg = Bytes.of_string "sync payload" in
  let partials = List.map (fun s -> Bls.partial_sign s msg) shares in
  (match Bls.combine ~threshold:7 partials with
  | Some s -> Alcotest.(check bool) "full set verifies" true (Bls.verify vk msg s)
  | None -> Alcotest.fail "combine failed");
  (* Any 7-subset works. *)
  let subset = List.filteri (fun i _ -> i mod 3 <> 1) partials in
  (match Bls.combine ~threshold:7 subset with
  | Some s -> Alcotest.(check bool) "subset verifies" true (Bls.verify vk msg s)
  | None -> Alcotest.fail "subset combine failed")

let test_threshold_too_few () =
  let _, _, shares = Bls.dkg (rng ()) ~n:10 ~threshold:7 in
  let msg = Bytes.of_string "m" in
  let partials = List.filteri (fun i _ -> i < 6) (List.map (fun s -> Bls.partial_sign s msg) shares) in
  Alcotest.(check bool) "6 < 7 rejected" true (Bls.combine ~threshold:7 partials = None)

let test_threshold_duplicates_dont_count () =
  let _, _, shares = Bls.dkg (rng ()) ~n:10 ~threshold:4 in
  let msg = Bytes.of_string "m" in
  let p = Bls.partial_sign (List.hd shares) msg in
  Alcotest.(check bool) "duplicates rejected" true
    (Bls.combine ~threshold:4 [ p; p; p; p ] = None)

let test_threshold_wrong_subset_signature_rejected () =
  let vk, _, shares = Bls.dkg (rng ()) ~n:7 ~threshold:5 in
  let msg = Bytes.of_string "m" in
  let other = Bytes.of_string "forged" in
  let partials = List.map (fun s -> Bls.partial_sign s other) shares in
  match Bls.combine ~threshold:5 partials with
  | Some s -> Alcotest.(check bool) "signature on other message" false (Bls.verify vk msg s)
  | None -> Alcotest.fail "combine failed"

let threshold_subset_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"any t-subset combines, smaller never"
       QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 9))
       (fun (salt, drop) ->
         let r = Rng.create (Printf.sprintf "subset-%d" salt) in
         let n = 9 and threshold = 5 in
         let vk, _, shares = Bls.dkg r ~n ~threshold in
         let msg = Bytes.of_string (string_of_int salt) in
         let partials = List.map (fun s -> Bls.partial_sign s msg) shares in
         (* Remove up to [drop] distinct shares. *)
         let kept = List.filteri (fun i _ -> i >= drop) partials in
         match Bls.combine ~threshold kept with
         | Some sigma -> List.length kept >= threshold && Bls.verify vk msg sigma
         | None -> List.length kept < threshold))

let test_threshold_withheld_any_subset () =
  (* Degraded-quorum signing: when members withhold shares, any [t]
     *distinct* survivors reconstruct — including non-contiguous index
     sets — and every such subset yields the identical group signature
     (Lagrange interpolation is unique in the exponent). *)
  let n = 10 and threshold = 7 in
  let vk, _, shares = Bls.dkg (rng ()) ~n ~threshold in
  let msg = Bytes.of_string "degraded quorum" in
  let partials = Array.of_list (List.map (fun s -> Bls.partial_sign s msg) shares) in
  let pick idxs = List.map (fun i -> partials.(i)) idxs in
  let subsets = [ [ 0; 1; 2; 3; 4; 5; 6 ]; [ 3; 4; 5; 6; 7; 8; 9 ];
                  [ 0; 2; 4; 5; 6; 8; 9 ]; [ 9; 7; 5; 3; 1; 0; 2 ] ] in
  let sigs =
    List.map
      (fun idxs ->
        match Bls.combine ~threshold (pick idxs) with
        | Some s ->
          Alcotest.(check bool) "subset verifies" true (Bls.verify vk msg s);
          s
        | None -> Alcotest.fail "t distinct shares must combine")
      subsets
  in
  let first = Bls.signature_to_bytes (List.hd sigs) in
  List.iter
    (fun s ->
      Alcotest.(check bool) "all subsets give the same signature" true
        (Bytes.equal first (Bls.signature_to_bytes s)))
    (List.tl sigs)

let test_threshold_withheld_below_quorum () =
  (* One withholder too many: t - 1 distinct shares fail, and padding the
     survivor set with duplicated partials must not sneak past the
     distinctness check. *)
  let n = 10 and threshold = 7 in
  let _, _, shares = Bls.dkg (rng ()) ~n ~threshold in
  let msg = Bytes.of_string "withheld" in
  let partials = List.map (fun s -> Bls.partial_sign s msg) shares in
  let survivors = List.filteri (fun i _ -> i mod 3 <> 0) partials in
  Alcotest.(check int) "six survivors" 6 (List.length survivors);
  Alcotest.(check bool) "t-1 distinct rejected" true
    (Bls.combine ~threshold survivors = None);
  let padded = List.hd survivors :: List.hd survivors :: survivors in
  Alcotest.(check bool) "duplicates don't restore quorum" true
    (Bls.combine ~threshold padded = None)

let test_threshold_share_indices () =
  let n = 6 and threshold = 4 in
  let _, _, shares = Bls.dkg (rng ()) ~n ~threshold in
  let msg = Bytes.of_string "indices" in
  List.iter
    (fun s ->
      Alcotest.(check int) "partial carries its share's index"
        (Bls.share_index s)
        (Bls.partial_index (Bls.partial_sign s msg)))
    shares;
  let idxs = List.sort_uniq compare (List.map Bls.share_index shares) in
  Alcotest.(check int) "indices distinct" n (List.length idxs)

let test_dkg_bad_threshold () =
  Alcotest.check_raises "threshold > n" (Invalid_argument "Bls.dkg: bad threshold")
    (fun () -> ignore (Bls.dkg (rng ()) ~n:3 ~threshold:4))

(* Cached/batch-inverted combine against the pre-optimisation reference,
   across random signer subsets and thresholds. Running the same subset
   twice also exercises the λ-cache hit path. *)
let combine_vs_reference_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"combine = combine_reference"
       QCheck2.Gen.(triple (int_range 0 1000) (int_range 1 8) (int_range 0 9))
       (fun (salt, threshold, drop) ->
         let r = Rng.create (Printf.sprintf "combine-ref-%d" salt) in
         let n = 9 in
         let threshold = Stdlib.min threshold n in
         let _, _, shares = Bls.dkg r ~n ~threshold in
         let msg = Bytes.of_string (Printf.sprintf "ref-%d" salt) in
         let partials = List.map (fun s -> Bls.partial_sign s msg) shares in
         let kept = List.filteri (fun i _ -> i >= drop) partials in
         let fast = Bls.combine ~threshold kept in
         let fast2 = Bls.combine ~threshold kept in
         let slow = Bls.combine_reference ~threshold kept in
         match (fast, fast2, slow) with
         | Some a, Some a', Some b ->
           Bytes.equal (Bls.signature_to_bytes a) (Bls.signature_to_bytes b)
           && Bytes.equal (Bls.signature_to_bytes a) (Bls.signature_to_bytes a')
         | None, None, None -> List.length kept < threshold
         | _ -> false))

let test_verify_partial () =
  let n = 10 and threshold = 7 in
  let _, commitments, shares = Bls.dkg (rng ()) ~n ~threshold in
  let msg = Bytes.of_string "partial check" in
  let partials = List.map (fun s -> Bls.partial_sign s msg) shares in
  List.iter
    (fun p ->
      Alcotest.(check bool) "honest partial accepted" true
        (Bls.verify_partial ~commitments msg p))
    partials;
  List.iter
    (fun p ->
      Alcotest.(check bool) "tampered partial rejected" false
        (Bls.verify_partial ~commitments msg (Bls.tamper_partial p)))
    partials;
  (* A partial on a different message fails against this message. *)
  let other = Bls.partial_sign (List.hd shares) (Bytes.of_string "other") in
  Alcotest.(check bool) "wrong-message partial rejected" false
    (Bls.verify_partial ~commitments msg other)

let test_combine_rejects_tampered () =
  (* End-to-end: filter partials through verify_partial, then combine the
     survivors — the tampered share neither blocks nor corrupts signing. *)
  let n = 10 and threshold = 7 in
  let vk, commitments, shares = Bls.dkg (rng ()) ~n ~threshold in
  let msg = Bytes.of_string "filter then combine" in
  let partials =
    List.mapi
      (fun i s ->
        let p = Bls.partial_sign s msg in
        if i < 2 then Bls.tamper_partial p else p)
      shares
  in
  let honest = List.filter (Bls.verify_partial ~commitments msg) partials in
  Alcotest.(check int) "two tampered partials caught" (n - 2) (List.length honest);
  match Bls.combine ~threshold honest with
  | Some s -> Alcotest.(check bool) "survivors sign" true (Bls.verify vk msg s)
  | None -> Alcotest.fail "honest quorum must combine"

let test_member_key_vk () =
  (* The commitments' constant term is the committee verification key:
     member_key at x = 0 recovers vk. *)
  let vk, commitments, _ = Bls.dkg (rng ()) ~n:6 ~threshold:4 in
  Alcotest.(check bool) "member_key 0 = vk" true
    (Group.g2_equal (Bls.member_key commitments 0) vk)

let hash_to_g1_cache_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"hash_to_g1 = uncached" gen_msg
       (fun m ->
         Group.g1_equal (Group.hash_to_g1 m) (Group.hash_to_g1_uncached m)
         (* hit path: the second call reads the memo *)
         && Group.g1_equal (Group.hash_to_g1 m) (Group.hash_to_g1_uncached m)))

(* ------------------------------------------------------------------ *)
(* VRF                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vrf_roundtrip () =
  let sk, pk = Bls.keygen (rng ()) in
  let input = Bytes.of_string "election seed" in
  let out, proof = Vrf.evaluate sk input in
  Alcotest.(check bool) "verifies" true (Vrf.verify pk input proof = Some out);
  Alcotest.(check bool) "wrong input" true (Vrf.verify pk (Bytes.of_string "x") proof = None)

let test_vrf_deterministic () =
  let sk, _ = Bls.keygen (rng ()) in
  let input = Bytes.of_string "seed" in
  let o1, _ = Vrf.evaluate sk input in
  let o2, _ = Vrf.evaluate sk input in
  Alcotest.(check bool) "same output" true (Bytes.equal o1 o2)

let test_vrf_output_below () =
  let out = Bytes.make 32 '\000' in
  Alcotest.(check bool) "0 below 0.5" true (Vrf.output_below out 0.5);
  let top = Bytes.make 32 '\xff' in
  Alcotest.(check bool) "max not below 0.999" false (Vrf.output_below top 0.999)

(* ------------------------------------------------------------------ *)
(* Merkle                                                              *)
(* ------------------------------------------------------------------ *)

let leaves n = List.init n (fun i -> Bytes.of_string (Printf.sprintf "leaf-%d" i))

let test_merkle_all_proofs () =
  List.iter
    (fun n ->
      let l = leaves n in
      let t = Merkle.of_leaves l in
      List.iteri
        (fun i leaf ->
          match Merkle.prove t i with
          | Some p ->
            Alcotest.(check bool)
              (Printf.sprintf "n=%d i=%d" n i)
              true
              (Merkle.verify ~root:(Merkle.root t) ~leaf p)
          | None -> Alcotest.failf "no proof for %d/%d" i n)
        l)
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 33 ]

let test_merkle_bad_proof () =
  let t = Merkle.of_leaves (leaves 8) in
  match Merkle.prove t 3 with
  | Some p ->
    Alcotest.(check bool) "wrong leaf fails" false
      (Merkle.verify ~root:(Merkle.root t) ~leaf:(Bytes.of_string "leaf-4") p)
  | None -> Alcotest.fail "no proof"

let test_merkle_empty_and_range () =
  let t = Merkle.of_leaves [] in
  Alcotest.(check bool) "empty root" true (Bytes.equal (Merkle.root t) Merkle.empty_root);
  let t8 = Merkle.of_leaves (leaves 8) in
  Alcotest.(check bool) "out of range" true (Merkle.prove t8 8 = None);
  Alcotest.(check bool) "negative" true (Merkle.prove t8 (-1) = None)

let test_merkle_proof_length () =
  let t = Merkle.of_leaves (leaves 16) in
  match Merkle.prove t 5 with
  | Some p -> Alcotest.(check int) "log2 16" 4 (Merkle.proof_length p)
  | None -> Alcotest.fail "no proof"

(* ------------------------------------------------------------------ *)
(* RNG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create "seed" and b = Rng.create "seed" in
  for _ = 1 to 10 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let parent = Rng.create "seed" in
  let c1 = Rng.split parent "a" and c2 = Rng.split parent "b" in
  let s1 = List.init 8 (fun _ -> Rng.int c1 1_000_000) in
  let s2 = List.init 8 (fun _ -> Rng.int c2 1_000_000) in
  Alcotest.(check bool) "different streams" true (s1 <> s2)

let test_rng_bounds () =
  let r = Rng.create "bounds" in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v;
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of bounds: %f" f
  done;
  Alcotest.check_raises "nonpositive bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_shuffle_permutes () =
  let r = Rng.create "shuffle" in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let () =
  Alcotest.run "crypto"
    [ ( "sha256",
        [ Alcotest.test_case "vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "block boundaries" `Quick test_sha256_block_boundaries ] );
      ( "keccak256",
        [ Alcotest.test_case "vectors" `Quick test_keccak_vectors;
          Alcotest.test_case "rate boundaries" `Quick test_keccak_rate_boundaries ]
        @ hash_props @ streaming_props );
      ( "field",
        [ Alcotest.test_case "fermat" `Quick test_field_pow;
          Alcotest.test_case "inversion edges" `Quick test_field_inv_edges ]
        @ field_props @ fast_vs_naive_props );
      ( "bls",
        [ Alcotest.test_case "sign/verify" `Quick test_bls_sign_verify;
          Alcotest.test_case "sizes" `Quick test_bls_sizes;
          Alcotest.test_case "aggregate" `Quick test_bls_aggregate;
          Alcotest.test_case "threshold basic" `Quick test_threshold_basic;
          Alcotest.test_case "threshold too few" `Quick test_threshold_too_few;
          Alcotest.test_case "threshold duplicates" `Quick test_threshold_duplicates_dont_count;
          Alcotest.test_case "threshold wrong message" `Quick
            test_threshold_wrong_subset_signature_rejected;
          Alcotest.test_case "threshold withheld any subset" `Quick
            test_threshold_withheld_any_subset;
          Alcotest.test_case "threshold withheld below quorum" `Quick
            test_threshold_withheld_below_quorum;
          Alcotest.test_case "threshold share indices" `Quick test_threshold_share_indices;
          Alcotest.test_case "dkg bad threshold" `Quick test_dkg_bad_threshold;
          Alcotest.test_case "verify partial" `Quick test_verify_partial;
          Alcotest.test_case "combine rejects tampered" `Quick
            test_combine_rejects_tampered;
          Alcotest.test_case "member key at zero" `Quick test_member_key_vk;
          threshold_subset_prop; combine_vs_reference_prop;
          hash_to_g1_cache_prop ] );
      ( "vrf",
        [ Alcotest.test_case "roundtrip" `Quick test_vrf_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_vrf_deterministic;
          Alcotest.test_case "output below" `Quick test_vrf_output_below ] );
      ( "merkle",
        [ Alcotest.test_case "all proofs verify" `Quick test_merkle_all_proofs;
          Alcotest.test_case "bad proof" `Quick test_merkle_bad_proof;
          Alcotest.test_case "empty and range" `Quick test_merkle_empty_and_range;
          Alcotest.test_case "proof length" `Quick test_merkle_proof_length ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes ] ) ]
