(* The concentrated-liquidity pool: swaps, tick crossing, fee accounting,
   mint/burn/collect, flash loans — plus randomized invariant checks
   (constant product never shrinks, tick-table consistency, LP
   no-free-lunch). *)

module U256 = Amm_math.U256
module Q96 = Amm_math.Q96
open Uniswap

let u = U256.of_string
let check_u256 = Alcotest.testable U256.pp U256.equal
let addr = Chain.Address.of_label
let pid s = Chain.Ids.Position_id.of_hash (Amm_crypto.Sha256.digest_string s)
let one_e18 = u "1000000000000000000"
let one_e21 = u "1000000000000000000000"
let one_e24 = u "1000000000000000000000000"

let fresh_pool ?(fee = 3000) ?(spacing = 60) () =
  Pool.create ~pool_id:0
    ~token0:(Chain.Token.make ~id:0 ~symbol:"TKA")
    ~token1:(Chain.Token.make ~id:1 ~symbol:"TKB")
    ~fee_pips:fee ~tick_spacing:spacing ~sqrt_price:Q96.q96

let seeded_pool ?fee ?spacing () =
  let pool = fresh_pool ?fee ?spacing () in
  match
    Router.mint pool ~position_id:(pid "genesis") ~owner:(addr "genesis")
      ~lower_tick:(-887220) ~upper_tick:887220 ~amount0_desired:one_e24
      ~amount1_desired:one_e24
  with
  | Ok _ -> pool
  | Error e -> failwith e

let k_of pool = U256.to_float (Pool.balance0 pool) *. U256.to_float (Pool.balance1 pool)

(* ------------------------------------------------------------------ *)
(* Tick table                                                          *)
(* ------------------------------------------------------------------ *)

let test_tick_update_flip () =
  let table = Tick.create ~tick_spacing:60 in
  let flipped =
    Tick.update table ~tick:120 ~current_tick:0 ~fee_growth_global0:U256.zero
      ~fee_growth_global1:U256.zero
      ~liquidity_delta:(Amm_math.Liquidity_math.Add one_e18) ~upper:false
  in
  Alcotest.(check bool) "flips on init" true flipped;
  Alcotest.(check bool) "initialized" true (Tick.is_initialized table 120);
  let flipped2 =
    Tick.update table ~tick:120 ~current_tick:0 ~fee_growth_global0:U256.zero
      ~fee_growth_global1:U256.zero
      ~liquidity_delta:(Amm_math.Liquidity_math.Add one_e18) ~upper:false
  in
  Alcotest.(check bool) "no flip on second add" false flipped2;
  let flipped3 =
    Tick.update table ~tick:120 ~current_tick:0 ~fee_growth_global0:U256.zero
      ~fee_growth_global1:U256.zero
      ~liquidity_delta:(Amm_math.Liquidity_math.Remove (U256.mul one_e18 U256.two))
      ~upper:false
  in
  Alcotest.(check bool) "flips on full removal" true flipped3

let test_tick_spacing_enforced () =
  let table = Tick.create ~tick_spacing:60 in
  Alcotest.check_raises "off spacing" (Invalid_argument "Tick.update: tick not on spacing")
    (fun () ->
      ignore
        (Tick.update table ~tick:61 ~current_tick:0 ~fee_growth_global0:U256.zero
           ~fee_growth_global1:U256.zero
           ~liquidity_delta:(Amm_math.Liquidity_math.Add U256.one) ~upper:false))

let test_tick_next_initialized () =
  let table = Tick.create ~tick_spacing:60 in
  List.iter
    (fun tick ->
      ignore
        (Tick.update table ~tick ~current_tick:0 ~fee_growth_global0:U256.zero
           ~fee_growth_global1:U256.zero
           ~liquidity_delta:(Amm_math.Liquidity_math.Add one_e18) ~upper:false))
    [ -600; -60; 120; 600 ];
  Alcotest.(check (option int)) "lte from 0" (Some (-60))
    (Tick.next_initialized table ~from_tick:0 ~lte:true);
  Alcotest.(check (option int)) "gt from 0" (Some 120)
    (Tick.next_initialized table ~from_tick:0 ~lte:false);
  Alcotest.(check (option int)) "lte at initialized" (Some 120)
    (Tick.next_initialized table ~from_tick:120 ~lte:true);
  Alcotest.(check (option int)) "gt from top" None
    (Tick.next_initialized table ~from_tick:600 ~lte:false)

(* ------------------------------------------------------------------ *)
(* Swaps                                                               *)
(* ------------------------------------------------------------------ *)

let test_swap_exact_input_output_relation () =
  let pool = seeded_pool () in
  match
    Router.exact_input pool ~zero_for_one:true ~amount_in:one_e18
      ~min_amount_out:U256.zero ()
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.check check_u256 "full input consumed" one_e18 o.Router.spent;
    Alcotest.(check bool) "output below input at par (fee)" true
      (U256.lt o.Router.received one_e18);
    (* 0.3% fee: output ≈ 99.7% of input minus slippage. *)
    let ratio = U256.to_float o.Router.received /. 1e18 in
    Alcotest.(check bool) (Printf.sprintf "ratio %.6f" ratio) true
      (ratio > 0.9955 && ratio < 0.9975)

let test_swap_price_moves_correct_direction () =
  let pool = seeded_pool () in
  let p0 = Pool.sqrt_price pool in
  ignore (Router.exact_input pool ~zero_for_one:true ~amount_in:one_e21 ~min_amount_out:U256.zero ());
  let p1 = Pool.sqrt_price pool in
  Alcotest.(check bool) "selling token0 lowers price" true (U256.lt p1 p0);
  ignore (Router.exact_input pool ~zero_for_one:false ~amount_in:one_e21 ~min_amount_out:U256.zero ());
  Alcotest.(check bool) "selling token1 raises price" true (U256.gt (Pool.sqrt_price pool) p1)

let test_swap_k_never_decreases () =
  let pool = seeded_pool () in
  let k0 = k_of pool in
  for i = 1 to 50 do
    let direction = i mod 2 = 0 in
    ignore
      (Router.exact_input pool ~zero_for_one:direction
         ~amount_in:(U256.mul one_e18 (U256.of_int i)) ~min_amount_out:U256.zero ())
  done;
  Alcotest.(check bool) "k grew with fees" true (k_of pool > k0)

let test_swap_exact_output () =
  let pool = seeded_pool () in
  let want = u "5000000000000000000" in
  match
    Router.exact_output pool ~zero_for_one:false ~amount_out:want
      ~max_amount_in:(U256.mul want (U256.of_int 2)) ()
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.check check_u256 "exact output" want o.Router.received;
    Alcotest.(check bool) "input above output (fee+slippage)" true (U256.gt o.Router.spent want)

let test_swap_slippage_guards () =
  let pool = seeded_pool () in
  (match
     Router.exact_input pool ~zero_for_one:true ~amount_in:one_e18
       ~min_amount_out:one_e18 () (* impossible: fee eats some *)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "min_amount_out not enforced");
  match
    Router.exact_output pool ~zero_for_one:true ~amount_out:one_e18
      ~max_amount_in:(u "990000000000000000") ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "max_amount_in not enforced"

let test_swap_price_limit_partial_fill_rejected () =
  let pool = seeded_pool () in
  (* A price limit one tick away cannot absorb a massive exact-in swap;
     the router rejects the partial fill. *)
  let limit = Amm_math.Tick_math.get_sqrt_ratio_at_tick (-10) in
  match
    Router.exact_input pool ~zero_for_one:true ~amount_in:(U256.mul one_e24 U256.two)
      ~min_amount_out:U256.zero ~sqrt_price_limit:limit ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "partial fill should be rejected for exact input"

let test_swap_zero_amount_rejected () =
  let pool = seeded_pool () in
  match Router.exact_input pool ~zero_for_one:true ~amount_in:U256.zero ~min_amount_out:U256.zero () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero amount accepted"

let test_swap_empty_pool_rejected () =
  let pool = fresh_pool () in
  match Router.exact_input pool ~zero_for_one:true ~amount_in:one_e18 ~min_amount_out:U256.zero () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "swap against empty pool accepted"

let test_swap_crosses_ticks () =
  let pool = seeded_pool () in
  (* Narrow in-range position: a big swap must cross its boundary. *)
  (match
     Router.mint pool ~position_id:(pid "narrow") ~owner:(addr "lp") ~lower_tick:(-120)
       ~upper_tick:120 ~amount0_desired:one_e21 ~amount1_desired:one_e21
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let liquidity_before = Pool.liquidity pool in
  match
    Router.exact_input pool ~zero_for_one:true ~amount_in:(U256.mul one_e21 (U256.of_int 20))
      ~min_amount_out:U256.zero ()
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check bool) "crossed at least one tick" true (o.Router.ticks_crossed >= 1);
    Alcotest.(check bool) "liquidity dropped out of range" true
      (U256.lt (Pool.liquidity pool) liquidity_before);
    Alcotest.(check bool) "tick table consistent" true (Pool.check_liquidity_consistency pool)

(* ------------------------------------------------------------------ *)
(* Liquidity management                                                *)
(* ------------------------------------------------------------------ *)

let test_mint_creates_position () =
  let pool = seeded_pool () in
  match
    Router.mint pool ~position_id:(pid "p1") ~owner:(addr "alice") ~lower_tick:(-600)
      ~upper_tick:600 ~amount0_desired:one_e18 ~amount1_desired:one_e18
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check bool) "liquidity minted" true (U256.gt o.Router.minted_liquidity U256.zero);
    Alcotest.(check bool) "within budget" true
      (U256.le o.Router.amount0_used one_e18 && U256.le o.Router.amount1_used one_e18);
    (match Pool.find_position pool (pid "p1") with
    | Some p ->
      Alcotest.(check bool) "owner recorded" true
        (Chain.Address.equal p.Position.owner (addr "alice"))
    | None -> Alcotest.fail "position not found")

let test_mint_supplement_same_owner_only () =
  let pool = seeded_pool () in
  ignore
    (Router.mint pool ~position_id:(pid "p1") ~owner:(addr "alice") ~lower_tick:(-600)
       ~upper_tick:600 ~amount0_desired:one_e18 ~amount1_desired:one_e18);
  (match
     Router.mint pool ~position_id:(pid "p1") ~owner:(addr "alice") ~lower_tick:(-600)
       ~upper_tick:600 ~amount0_desired:one_e18 ~amount1_desired:one_e18
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "same owner supplement rejected: %s" e);
  match
    Router.mint pool ~position_id:(pid "p1") ~owner:(addr "mallory") ~lower_tick:(-600)
      ~upper_tick:600 ~amount0_desired:one_e18 ~amount1_desired:one_e18
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "other owner could supplement"

let test_mint_invalid_ticks () =
  let pool = seeded_pool () in
  let try_mint lower upper =
    Router.mint pool ~position_id:(pid "bad") ~owner:(addr "x") ~lower_tick:lower
      ~upper_tick:upper ~amount0_desired:one_e18 ~amount1_desired:one_e18
  in
  (match try_mint 600 (-600) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inverted range accepted");
  (match try_mint (-61) 60 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "off-spacing accepted");
  match try_mint (-887280) 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "below min tick accepted"

let test_burn_partial_and_full () =
  let pool = seeded_pool () in
  ignore
    (Router.mint pool ~position_id:(pid "p1") ~owner:(addr "alice") ~lower_tick:(-600)
       ~upper_tick:600 ~amount0_desired:one_e21 ~amount1_desired:one_e21);
  (match
     Router.burn pool ~position_id:(pid "p1") ~caller:(addr "alice")
       ~amount0_requested:one_e18 ~amount1_requested:one_e18
   with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check bool) "partial burn keeps position" false o.Router.position_deleted;
    Alcotest.(check bool) "owed credited" true
      (U256.gt o.Router.amount0_owed U256.zero || U256.gt o.Router.amount1_owed U256.zero));
  match
    Router.burn pool ~position_id:(pid "p1") ~caller:(addr "alice")
      ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value
  with
  | Error e -> Alcotest.fail e
  | Ok o -> Alcotest.(check bool) "full burn deletes" true o.Router.position_deleted

let test_burn_ownership_and_unknown () =
  let pool = seeded_pool () in
  ignore
    (Router.mint pool ~position_id:(pid "p1") ~owner:(addr "alice") ~lower_tick:(-600)
       ~upper_tick:600 ~amount0_desired:one_e21 ~amount1_desired:one_e21);
  (match
     Router.burn pool ~position_id:(pid "p1") ~caller:(addr "bob")
       ~amount0_requested:one_e18 ~amount1_requested:one_e18
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-owner burned");
  match
    Router.burn pool ~position_id:(pid "ghost") ~caller:(addr "alice")
      ~amount0_requested:one_e18 ~amount1_requested:one_e18
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown position burned"

let test_fees_accrue_and_collect () =
  let pool = seeded_pool () in
  ignore
    (Router.mint pool ~position_id:(pid "p1") ~owner:(addr "alice") ~lower_tick:(-6000)
       ~upper_tick:6000 ~amount0_desired:one_e21 ~amount1_desired:one_e21);
  (* Trade back and forth to accrue fees on both sides. *)
  for _ = 1 to 10 do
    ignore (Router.exact_input pool ~zero_for_one:true ~amount_in:one_e21 ~min_amount_out:U256.zero ());
    ignore (Router.exact_input pool ~zero_for_one:false ~amount_in:one_e21 ~min_amount_out:U256.zero ())
  done;
  match
    Router.collect pool ~position_id:(pid "p1") ~caller:(addr "alice")
      ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check bool) "fees collected on token0" true (U256.gt o.Router.collected0 U256.zero);
    Alcotest.(check bool) "fees collected on token1" true (U256.gt o.Router.collected1 U256.zero);
    Alcotest.(check bool) "position survives (still has liquidity)" false o.Router.position_deleted

let test_fees_proportional_to_liquidity () =
  let pool = seeded_pool () in
  (* Two identical-range positions, one with ~3x the liquidity. *)
  ignore
    (Router.mint pool ~position_id:(pid "small") ~owner:(addr "a") ~lower_tick:(-6000)
       ~upper_tick:6000 ~amount0_desired:one_e21 ~amount1_desired:one_e21);
  ignore
    (Router.mint pool ~position_id:(pid "big") ~owner:(addr "b") ~lower_tick:(-6000)
       ~upper_tick:6000 ~amount0_desired:(U256.mul one_e21 (U256.of_int 3))
       ~amount1_desired:(U256.mul one_e21 (U256.of_int 3)));
  for _ = 1 to 6 do
    ignore (Router.exact_input pool ~zero_for_one:true ~amount_in:one_e21 ~min_amount_out:U256.zero ());
    ignore (Router.exact_input pool ~zero_for_one:false ~amount_in:one_e21 ~min_amount_out:U256.zero ())
  done;
  let collect id owner =
    match
      Router.collect pool ~position_id:(pid id) ~caller:(addr owner)
        ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value
    with
    | Ok o -> U256.to_float o.Router.collected0 +. U256.to_float o.Router.collected1
    | Error e -> Alcotest.failf "collect: %s" e
  in
  let small = collect "small" "a" and big = collect "big" "b" in
  let ratio = big /. small in
  Alcotest.(check bool) (Printf.sprintf "fee ratio %.3f ~ 3" ratio) true
    (ratio > 2.8 && ratio < 3.2)

let test_out_of_range_position_earns_nothing () =
  let pool = seeded_pool () in
  ignore
    (Router.mint pool ~position_id:(pid "far") ~owner:(addr "a") ~lower_tick:60000
       ~upper_tick:120000 ~amount0_desired:one_e21 ~amount1_desired:one_e21);
  for _ = 1 to 5 do
    ignore (Router.exact_input pool ~zero_for_one:true ~amount_in:one_e18 ~min_amount_out:U256.zero ())
  done;
  match
    Router.collect pool ~position_id:(pid "far") ~caller:(addr "a")
      ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value
  with
  | Ok o ->
    Alcotest.check check_u256 "no fees 0" U256.zero o.Router.collected0;
    Alcotest.check check_u256 "no fees 1" U256.zero o.Router.collected1
  | Error e -> Alcotest.fail e

let test_swap_matches_paper_cfmm_formula () =
  (* §2 of the paper: for reserves res_A, res_B, an input amt_A yields
     amt_B = res_B − res_A·res_B/(res_A + amt_A). With a full-range
     position this must match the tick engine to high precision (after
     removing the 0.3% fee from the input). *)
  let pool = seeded_pool () in
  let res_a = U256.to_float (Pool.balance0 pool) in
  let res_b = U256.to_float (Pool.balance1 pool) in
  let amount = u "3000000000000000000000" in
  match Router.exact_input pool ~zero_for_one:true ~amount_in:amount ~min_amount_out:U256.zero () with
  | Error e -> Alcotest.fail e
  | Ok o ->
    let amt_a = U256.to_float amount *. 0.997 (* fee excluded from the curve *) in
    let expected = res_b -. (res_a *. res_b /. (res_a +. amt_a)) in
    let got = U256.to_float o.Router.received in
    let rel = Float.abs ((got -. expected) /. expected) in
    if rel > 1e-4 then
      Alcotest.failf "CFMM mismatch: got %.6g, formula %.6g (rel %.2e)" got expected rel

(* ------------------------------------------------------------------ *)
(* Protocol fees                                                       *)
(* ------------------------------------------------------------------ *)

let test_protocol_fee_split () =
  let pool = seeded_pool () in
  Pool.set_protocol_fee pool ~denominator:(Some 4);
  (match
     Router.exact_input pool ~zero_for_one:true ~amount_in:one_e21 ~min_amount_out:U256.zero ()
   with
  | Ok o ->
    let p0, _ = Pool.protocol_fees pool in
    (* 1/4 of the swap fee, up to integer division dust. *)
    let expected = U256.div o.Router.fee (U256.of_int 4) in
    Alcotest.(check bool) "protocol cut ~ fee/4" true
      (U256.le (U256.sub (U256.max p0 expected) (U256.min p0 expected)) (U256.of_int 1000))
  | Error e -> Alcotest.fail e);
  (* LPs earn only the remaining 3/4. *)
  let off_pool = seeded_pool () in
  ignore (Router.exact_input off_pool ~zero_for_one:true ~amount_in:one_e21 ~min_amount_out:U256.zero ());
  Alcotest.(check bool) "LP fee growth reduced vs switch-off" true
    (U256.lt (Pool.fee_growth_global0 pool) (Pool.fee_growth_global0 off_pool))

let test_protocol_fee_collect () =
  let pool = seeded_pool () in
  Pool.set_protocol_fee pool ~denominator:(Some 5);
  ignore (Router.exact_input pool ~zero_for_one:true ~amount_in:one_e21 ~min_amount_out:U256.zero ());
  let owed0, _ = Pool.protocol_fees pool in
  Alcotest.(check bool) "fees accrued" true (U256.gt owed0 U256.zero);
  let balance_before = Pool.balance0 pool in
  let paid0, paid1 = Pool.collect_protocol pool ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value in
  Alcotest.check check_u256 "full payout" owed0 paid0;
  Alcotest.check check_u256 "nothing on token1" U256.zero paid1;
  Alcotest.check check_u256 "reserves reduced" (U256.sub balance_before paid0) (Pool.balance0 pool);
  Alcotest.check check_u256 "accrual reset" U256.zero (fst (Pool.protocol_fees pool))

let test_protocol_fee_bounds () =
  let pool = seeded_pool () in
  Alcotest.check_raises "denominator too small"
    (Invalid_argument "Pool.set_protocol_fee: denominator must be in 4..10") (fun () ->
      Pool.set_protocol_fee pool ~denominator:(Some 3));
  Pool.set_protocol_fee pool ~denominator:(Some 10);
  Pool.set_protocol_fee pool ~denominator:None;
  Alcotest.(check bool) "switch off" true (Pool.protocol_fee_denominator pool = None)

(* ------------------------------------------------------------------ *)
(* Multi-hop routing                                                   *)
(* ------------------------------------------------------------------ *)

let test_multihop_path () =
  (* TKA -> TKB through pool 1, then TKB -> TKC through pool 2. *)
  let pool_ab = seeded_pool () in
  let pool_bc =
    let pool =
      Pool.create ~pool_id:1
        ~token0:(Chain.Token.make ~id:1 ~symbol:"TKB")
        ~token1:(Chain.Token.make ~id:2 ~symbol:"TKC")
        ~fee_pips:3000 ~tick_spacing:60 ~sqrt_price:Q96.q96
    in
    (match
       Router.mint pool ~position_id:(pid "bc") ~owner:(addr "lp") ~lower_tick:(-887220)
         ~upper_tick:887220 ~amount0_desired:one_e24 ~amount1_desired:one_e24
     with
    | Ok _ -> ()
    | Error e -> failwith e);
    pool
  in
  match
    Router.exact_input_path
      ~path:
        [ { Router.hop_pool = pool_ab; hop_zero_for_one = true };
          { Router.hop_pool = pool_bc; hop_zero_for_one = true } ]
      ~amount_in:one_e18 ~min_amount_out:U256.zero
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.check check_u256 "spent is the first hop input" one_e18 o.Router.spent;
    (* Two 0.3% fees: output ≈ 99.7%^2 ≈ 99.4%. *)
    let ratio = U256.to_float o.Router.received /. 1e18 in
    Alcotest.(check bool) (Printf.sprintf "double fee ratio %.6f" ratio) true
      (ratio > 0.9925 && ratio < 0.9955);
    Alcotest.(check bool) "fees from both hops" true
      (U256.to_float o.Router.fee > 0.0058e18)

let test_multihop_slippage_and_empty () =
  let pool_ab = seeded_pool () in
  (match
     Router.exact_input_path
       ~path:[ { Router.hop_pool = pool_ab; hop_zero_for_one = true } ]
       ~amount_in:one_e18 ~min_amount_out:one_e18
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "path slippage not enforced");
  match Router.exact_input_path ~path:[] ~amount_in:one_e18 ~min_amount_out:U256.zero with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty path accepted"

(* ------------------------------------------------------------------ *)
(* Flash loans                                                         *)
(* ------------------------------------------------------------------ *)

let test_flash_repaid () =
  let pool = seeded_pool () in
  let fee_growth_before = Pool.fee_growth_global0 pool in
  match
    Pool.flash pool ~amount0:one_e21 ~amount1:U256.zero ~callback:(fun ~fee0 ~fee1 ->
        ignore fee1;
        Ok (U256.add one_e21 fee0, U256.zero))
  with
  | Error e -> Alcotest.fail e
  | Ok (fee0, _) ->
    Alcotest.(check bool) "fee charged" true (U256.gt fee0 U256.zero);
    Alcotest.(check bool) "fee growth credited" true
      (U256.gt (Pool.fee_growth_global0 pool) fee_growth_before)

let test_flash_default_reverts () =
  let pool = seeded_pool () in
  let b0 = Pool.balance0 pool in
  (match
     Pool.flash pool ~amount0:one_e21 ~amount1:U256.zero ~callback:(fun ~fee0:_ ~fee1:_ ->
         Ok (one_e21, U256.zero) (* principal only, no fee *))
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "underpaid flash accepted");
  Alcotest.check check_u256 "reserves restored" b0 (Pool.balance0 pool);
  (* Callback failure also inverts the loan. *)
  (match
     Pool.flash pool ~amount0:one_e21 ~amount1:U256.zero ~callback:(fun ~fee0:_ ~fee1:_ ->
         Error "arbitrage failed")
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "failed callback accepted");
  Alcotest.check check_u256 "reserves restored again" b0 (Pool.balance0 pool)

let test_flash_exceeding_reserves () =
  let pool = seeded_pool () in
  match
    Pool.flash pool ~amount0:(U256.mul one_e24 (U256.of_int 100)) ~amount1:U256.zero
      ~callback:(fun ~fee0:_ ~fee1:_ -> Ok (U256.zero, U256.zero))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over-reserve flash accepted"

(* ------------------------------------------------------------------ *)
(* Factory                                                             *)
(* ------------------------------------------------------------------ *)

let test_factory () =
  let f = Factory.create () in
  let p0 =
    Factory.create_pool f ~token0:(Chain.Token.make ~id:0 ~symbol:"A")
      ~token1:(Chain.Token.make ~id:1 ~symbol:"B") ~fee_pips:3000 ~tick_spacing:60
      ~sqrt_price:Q96.q96
  in
  let p1 =
    Factory.create_pool f ~token0:(Chain.Token.make ~id:2 ~symbol:"C")
      ~token1:(Chain.Token.make ~id:3 ~symbol:"D") ~fee_pips:500 ~tick_spacing:10
      ~sqrt_price:Q96.q96
  in
  Alcotest.(check int) "ids distinct" 1 (Pool.pool_id p1 - Pool.pool_id p0);
  Alcotest.(check int) "count" 2 (Factory.count f);
  Alcotest.(check bool) "lookup" true (Factory.find f (Pool.pool_id p0) <> None);
  Alcotest.(check bool) "missing" true (Factory.find f 99 = None)

(* ------------------------------------------------------------------ *)
(* Randomized invariants                                               *)
(* ------------------------------------------------------------------ *)

let gen_ops =
  QCheck2.Gen.(list_size (int_range 5 40) (pair (int_range 0 3) (int_range 1 1000)))

let invariant_props =
  let prop name gen f =
    QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:40 ~name gen f)
  in
  [ prop "random op sequences keep pool consistent" gen_ops (fun ops ->
        let pool = seeded_pool () in
        let owner = addr "fuzz" in
        let minted = ref [] in
        let n = ref 0 in
        List.iter
          (fun (op, magnitude) ->
            let amount = U256.mul one_e18 (U256.of_int magnitude) in
            match op with
            | 0 ->
              ignore
                (Router.exact_input pool ~zero_for_one:(magnitude mod 2 = 0)
                   ~amount_in:amount ~min_amount_out:U256.zero ())
            | 1 ->
              incr n;
              let id = pid (Printf.sprintf "fz%d" !n) in
              (match
                 Router.mint pool ~position_id:id ~owner ~lower_tick:(-1200)
                   ~upper_tick:1200 ~amount0_desired:amount ~amount1_desired:amount
               with
              | Ok _ -> minted := id :: !minted
              | Error _ -> ())
            | 2 ->
              (match !minted with
              | id :: rest ->
                (match
                   Router.burn pool ~position_id:id ~caller:owner
                     ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value
                 with
                | Ok o -> if o.Router.position_deleted then minted := rest
                | Error _ -> ())
              | [] -> ())
            | _ ->
              (match !minted with
              | id :: _ ->
                ignore
                  (Router.collect pool ~position_id:id ~caller:owner
                     ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value)
              | [] -> ()))
          ops;
        Pool.check_liquidity_consistency pool);
    prop "swap round trip loses money (no free lunch)"
      (QCheck2.Gen.int_range 1 100_000)
      (fun magnitude ->
        let pool = seeded_pool () in
        let amount = U256.mul (u "10000000000000000") (U256.of_int magnitude) in
        match
          Router.exact_input pool ~zero_for_one:true ~amount_in:amount
            ~min_amount_out:U256.zero ()
        with
        | Error _ -> true
        | Ok o1 ->
          (match
             Router.exact_input pool ~zero_for_one:false ~amount_in:o1.Router.received
               ~min_amount_out:U256.zero ()
           with
          | Error _ -> true
          | Ok o2 -> U256.lt o2.Router.received amount));
    (* The two checks the cross-layer monitor leans on (lib/monitor): the
       whole interleaving is derived from one generated seed through the
       deterministic Rng, so a failure reproduces from the printed int. *)
    prop "seeded interleavings preserve solvency"
      (QCheck2.Gen.int_range 0 1_000_000)
      (fun seed ->
        let rng = Amm_crypto.Rng.create (Printf.sprintf "pool-fuzz-%d" seed) in
        let pool = seeded_pool () in
        let owner = addr "fuzz" in
        let minted = ref [] in
        let n = ref 0 in
        let steps = 5 + Amm_crypto.Rng.int rng 36 in
        let ok = ref true in
        for _ = 1 to steps do
          let magnitude = 1 + Amm_crypto.Rng.int rng 1000 in
          let amount = U256.mul one_e18 (U256.of_int magnitude) in
          (match Amm_crypto.Rng.int rng 4 with
          | 0 ->
            ignore
              (Router.exact_input pool ~zero_for_one:(Amm_crypto.Rng.bool rng)
                 ~amount_in:amount ~min_amount_out:U256.zero ())
          | 1 ->
            incr n;
            let id = pid (Printf.sprintf "sf%d-%d" seed !n) in
            (match
               Router.mint pool ~position_id:id ~owner ~lower_tick:(-1200)
                 ~upper_tick:1200 ~amount0_desired:amount ~amount1_desired:amount
             with
            | Ok _ -> minted := id :: !minted
            | Error _ -> ())
          | 2 ->
            (match !minted with
            | id :: rest ->
              (match
                 Router.burn pool ~position_id:id ~caller:owner
                   ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value
               with
              | Ok o -> if o.Router.position_deleted then minted := rest
              | Error _ -> ())
            | [] -> ())
          | _ ->
            (match !minted with
            | id :: _ ->
              ignore
                (Router.collect pool ~position_id:id ~caller:owner
                   ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value)
            | [] -> ()));
          ok :=
            !ok && Pool.check_owed_solvency pool
            && Pool.check_liquidity_consistency pool
        done;
        !ok);
    prop "seeded interleavings keep fee growth monotone"
      (QCheck2.Gen.int_range 0 1_000_000)
      (fun seed ->
        let rng = Amm_crypto.Rng.create (Printf.sprintf "fee-fuzz-%d" seed) in
        let pool = seeded_pool () in
        let owner = addr "fuzz" in
        let n = ref 0 in
        let last0 = ref (Pool.fee_growth_global0 pool) in
        let last1 = ref (Pool.fee_growth_global1 pool) in
        let ok = ref true in
        let steps = 5 + Amm_crypto.Rng.int rng 26 in
        for _ = 1 to steps do
          let magnitude = 1 + Amm_crypto.Rng.int rng 1000 in
          let amount = U256.mul one_e18 (U256.of_int magnitude) in
          (match Amm_crypto.Rng.int rng 3 with
          | 0 ->
            ignore
              (Router.exact_input pool ~zero_for_one:(Amm_crypto.Rng.bool rng)
                 ~amount_in:amount ~min_amount_out:U256.zero ())
          | 1 ->
            incr n;
            ignore
              (Router.mint pool
                 ~position_id:(pid (Printf.sprintf "ff%d-%d" seed !n))
                 ~owner ~lower_tick:(-1200) ~upper_tick:1200
                 ~amount0_desired:amount ~amount1_desired:amount)
          | _ ->
            ignore
              (Router.exact_input pool ~zero_for_one:(Amm_crypto.Rng.bool rng)
                 ~amount_in:(U256.div amount (U256.of_int 7))
                 ~min_amount_out:U256.zero ()));
          let g0 = Pool.fee_growth_global0 pool in
          let g1 = Pool.fee_growth_global1 pool in
          ok := !ok && U256.le !last0 g0 && U256.le !last1 g1;
          last0 := g0;
          last1 := g1
        done;
        !ok) ]

(* ------------------------------------------------------------------ *)
(* Oracle (TWAP observations)                                          *)
(* ------------------------------------------------------------------ *)

let test_oracle_constant_tick () =
  let o = Oracle.create ~time:0.0 ~tick:100 () in
  Oracle.write o ~time:10.0 ~tick:100;
  Oracle.write o ~time:20.0 ~tick:100;
  Alcotest.(check (float 1e-9)) "constant twap" 100.0 (Oracle.twap_tick o ~now:20.0 ~window:15.0)

let test_oracle_step_change () =
  let o = Oracle.create ~time:0.0 ~tick:0 () in
  (* tick 0 for 10 s, then 200 for 10 s: 20 s TWAP = 100. *)
  Oracle.write o ~time:10.0 ~tick:200;
  Oracle.write o ~time:20.0 ~tick:200;
  Alcotest.(check (float 1e-9)) "mixed window" 100.0 (Oracle.twap_tick o ~now:20.0 ~window:20.0);
  Alcotest.(check (float 1e-9)) "recent window" 200.0 (Oracle.twap_tick o ~now:20.0 ~window:5.0)

let test_oracle_extrapolates_latest () =
  let o = Oracle.create ~time:0.0 ~tick:50 () in
  Oracle.write o ~time:10.0 ~tick:70;
  (* Query past the newest observation: the latest tick extends. *)
  Alcotest.(check (float 1e-9)) "extrapolated" 70.0 (Oracle.twap_tick o ~now:30.0 ~window:10.0)

let test_oracle_ring_eviction () =
  let o = Oracle.create ~capacity:4 ~time:0.0 ~tick:0 () in
  for i = 1 to 10 do
    Oracle.write o ~time:(float_of_int i) ~tick:i
  done;
  Alcotest.(check int) "count capped" 4 (Oracle.observation_count o);
  Alcotest.(check (float 1e-9)) "oldest evicted" 7.0 (Oracle.oldest_time o);
  Alcotest.check_raises "history gone"
    (Invalid_argument "Oracle.tick_cumulative_at: older than the stored history")
    (fun () -> ignore (Oracle.tick_cumulative_at o ~time:2.0))

let test_oracle_same_time_coalesces () =
  let o = Oracle.create ~time:0.0 ~tick:10 () in
  Oracle.write o ~time:5.0 ~tick:20;
  Oracle.write o ~time:5.0 ~tick:30; (* same block: last write wins *)
  Alcotest.(check int) "one observation per timestamp" 2 (Oracle.observation_count o);
  Alcotest.(check (float 1e-9)) "latest tick wins" 30.0
    (Oracle.twap_tick o ~now:15.0 ~window:5.0);
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Oracle.write: time moved backwards") (fun () ->
      Oracle.write o ~time:1.0 ~tick:0)

(* ------------------------------------------------------------------ *)
(* NFPM (NFT positions, ammBoost Remark 1)                             *)
(* ------------------------------------------------------------------ *)

let nfpm_setup () =
  let pool = seeded_pool () in
  let nfpm = Nfpm.create () in
  let alice = addr "alice" and bob = addr "bob" in
  let id, _ =
    match
      Nfpm.mint nfpm pool ~recipient:alice ~lower_tick:(-1200) ~upper_tick:1200
        ~amount0_desired:one_e21 ~amount1_desired:one_e21
    with
    | Ok v -> v
    | Error e -> failwith e
  in
  (pool, nfpm, alice, bob, id)

let test_nfpm_mint_ownership () =
  let pool, nfpm, alice, _, id = nfpm_setup () in
  Alcotest.(check (option bool)) "alice owns token" (Some true)
    (Option.map (Chain.Address.equal alice) (Nfpm.owner_of nfpm id));
  Alcotest.(check (list int)) "enumeration" [ id ] (Nfpm.tokens_of nfpm alice);
  (* The pool-level position belongs to the manager, so direct pool calls
     by the user are rejected — only the NFT layer authorizes. *)
  (match
     Router.collect pool
       ~position_id:(match Pool.positions pool |> List.find_opt (fun p ->
           Chain.Address.equal p.Position.owner (Nfpm.address nfpm)) with
         | Some p -> p.Position.id
         | None -> failwith "no managed position")
       ~caller:alice ~amount0_requested:U256.one ~amount1_requested:U256.one
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "user bypassed the NFT layer")

let test_nfpm_transfer_moves_control () =
  let pool, nfpm, alice, bob, id = nfpm_setup () in
  (* Accrue some fees first. *)
  ignore (Router.exact_input pool ~zero_for_one:true ~amount_in:one_e21 ~min_amount_out:U256.zero ());
  (match Nfpm.transfer nfpm ~caller:alice id ~dest:bob with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* alice lost control; bob gained it. *)
  (match
     Nfpm.collect nfpm pool ~caller:alice id ~amount0_requested:U256.max_value
       ~amount1_requested:U256.max_value
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "previous owner still in control");
  match
    Nfpm.collect nfpm pool ~caller:bob id ~amount0_requested:U256.max_value
      ~amount1_requested:U256.max_value
  with
  | Ok o -> Alcotest.(check bool) "bob collects the fees" true (U256.gt o.Router.collected0 U256.zero)
  | Error e -> Alcotest.fail e

let test_nfpm_approval_flow () =
  let pool, nfpm, alice, bob, id = nfpm_setup () in
  (match Nfpm.approve nfpm ~caller:bob id ~operator:(Some bob) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-owner approved");
  (match Nfpm.approve nfpm ~caller:alice id ~operator:(Some bob) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Nfpm.increase_liquidity nfpm pool ~caller:bob id ~amount0_desired:one_e18
       ~amount1_desired:one_e18
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "approved operator rejected: %s" e);
  (* Transfer clears the approval. *)
  (match Nfpm.transfer nfpm ~caller:bob id ~dest:bob with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Nfpm.transfer nfpm ~caller:alice id ~dest:alice with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale approval survived transfer")

let test_nfpm_burn_requires_empty () =
  let pool, nfpm, alice, _, id = nfpm_setup () in
  (match Nfpm.burn nfpm pool ~caller:alice id with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "burned a live position");
  (match
     Nfpm.decrease_liquidity nfpm pool ~caller:alice id ~amount0_requested:U256.max_value
       ~amount1_requested:U256.max_value
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match
     Nfpm.collect nfpm pool ~caller:alice id ~amount0_requested:U256.max_value
       ~amount1_requested:U256.max_value
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Nfpm.burn nfpm pool ~caller:alice id with
  | Ok () -> Alcotest.(check int) "token gone" 0 (Nfpm.token_count nfpm)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "uniswap"
    [ ( "tick table",
        [ Alcotest.test_case "update flip" `Quick test_tick_update_flip;
          Alcotest.test_case "spacing enforced" `Quick test_tick_spacing_enforced;
          Alcotest.test_case "next initialized" `Quick test_tick_next_initialized ] );
      ( "swaps",
        [ Alcotest.test_case "exact input" `Quick test_swap_exact_input_output_relation;
          Alcotest.test_case "price direction" `Quick test_swap_price_moves_correct_direction;
          Alcotest.test_case "k never decreases" `Quick test_swap_k_never_decreases;
          Alcotest.test_case "exact output" `Quick test_swap_exact_output;
          Alcotest.test_case "slippage guards" `Quick test_swap_slippage_guards;
          Alcotest.test_case "price limit partial" `Quick test_swap_price_limit_partial_fill_rejected;
          Alcotest.test_case "zero amount" `Quick test_swap_zero_amount_rejected;
          Alcotest.test_case "empty pool" `Quick test_swap_empty_pool_rejected;
          Alcotest.test_case "tick crossing" `Quick test_swap_crosses_ticks;
          Alcotest.test_case "matches paper CFMM formula" `Quick
            test_swap_matches_paper_cfmm_formula ] );
      ( "liquidity",
        [ Alcotest.test_case "mint creates position" `Quick test_mint_creates_position;
          Alcotest.test_case "supplement ownership" `Quick test_mint_supplement_same_owner_only;
          Alcotest.test_case "invalid ticks" `Quick test_mint_invalid_ticks;
          Alcotest.test_case "burn partial/full" `Quick test_burn_partial_and_full;
          Alcotest.test_case "burn ownership" `Quick test_burn_ownership_and_unknown;
          Alcotest.test_case "fees accrue+collect" `Quick test_fees_accrue_and_collect;
          Alcotest.test_case "fees proportional" `Quick test_fees_proportional_to_liquidity;
          Alcotest.test_case "out of range no fees" `Quick test_out_of_range_position_earns_nothing ] );
      ( "flash",
        [ Alcotest.test_case "repaid" `Quick test_flash_repaid;
          Alcotest.test_case "default reverts" `Quick test_flash_default_reverts;
          Alcotest.test_case "exceeds reserves" `Quick test_flash_exceeding_reserves ] );
      ("factory", [ Alcotest.test_case "registry" `Quick test_factory ]);
      ( "protocol fees",
        [ Alcotest.test_case "split" `Quick test_protocol_fee_split;
          Alcotest.test_case "collect" `Quick test_protocol_fee_collect;
          Alcotest.test_case "bounds" `Quick test_protocol_fee_bounds ] );
      ( "multi-hop",
        [ Alcotest.test_case "two-hop path" `Quick test_multihop_path;
          Alcotest.test_case "slippage/empty" `Quick test_multihop_slippage_and_empty ] );
      ( "oracle",
        [ Alcotest.test_case "constant tick" `Quick test_oracle_constant_tick;
          Alcotest.test_case "step change" `Quick test_oracle_step_change;
          Alcotest.test_case "extrapolation" `Quick test_oracle_extrapolates_latest;
          Alcotest.test_case "ring eviction" `Quick test_oracle_ring_eviction;
          Alcotest.test_case "same-time coalescing" `Quick test_oracle_same_time_coalesces ] );
      ( "nfpm",
        [ Alcotest.test_case "mint ownership" `Quick test_nfpm_mint_ownership;
          Alcotest.test_case "transfer moves control" `Quick test_nfpm_transfer_moves_control;
          Alcotest.test_case "approval flow" `Quick test_nfpm_approval_flow;
          Alcotest.test_case "burn requires empty" `Quick test_nfpm_burn_requires_empty ] );
      ("invariants", invariant_props) ]
