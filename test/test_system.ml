(* End-to-end integration: multi-epoch ammBoost runs (deposits, epochs,
   syncing, pruning, payouts), interruption handling (silent leader,
   invalid sync, mainchain rollback → mass-sync recovery), the custody
   invariant, threshold-signed syncs, the traffic generator, and the
   baseline runner. These are the paper's Theorem 1 scenarios exercised
   mechanically. *)

open Ammboost

let base =
  { Config.default with
    epochs = 3;
    daily_volume = 50_000;
    users = 20;
    miners = 60;
    committee_size = 20;
    max_faulty = 6;
    seed = "system-tests" }

let run ?(cfg = base) () = System.run cfg

(* ------------------------------------------------------------------ *)
(* Nominal operation                                                   *)
(* ------------------------------------------------------------------ *)

let test_nominal_run () =
  let r = run () in
  Alcotest.(check bool) "traffic generated" true (r.System.generated > 100);
  Alcotest.(check bool) "nearly all processed" true
    (r.System.processed >= r.System.generated - (r.System.rejected + 5));
  Alcotest.(check int) "all epochs synced" r.System.epochs_run r.System.epochs_applied;
  Alcotest.(check bool) "payouts settled for every processed tx" true
    (r.System.payouts_settled = r.System.processed);
  Alcotest.(check bool) "custody invariant" true r.System.custody_consistent;
  Alcotest.(check int) "no mass-syncs needed" 0 r.System.mass_syncs;
  Alcotest.(check int) "no retries needed" 0 r.System.sync_retries;
  Alcotest.(check int) "no rollbacks" 0 r.System.rollbacks;
  Alcotest.(check (list (pair string int))) "no faults injected" []
    r.System.faults_injected;
  Alcotest.(check bool) "replay oracle" true r.System.replay_consistent

let test_latency_sanity () =
  let r = run () in
  (* Uncongested: latency ≈ consensus delay, well under a round. *)
  Alcotest.(check bool)
    (Printf.sprintf "tx latency %.3f < round" r.System.mean_tx_latency)
    true
    (r.System.mean_tx_latency < base.Config.sc_round_duration);
  (* Payout latency ≈ half an epoch + sync confirmation. *)
  let epoch = Config.epoch_duration base in
  Alcotest.(check bool)
    (Printf.sprintf "payout latency %.1f plausible" r.System.mean_payout_latency)
    true
    (r.System.mean_payout_latency > 0.3 *. epoch
    && r.System.mean_payout_latency < 1.5 *. epoch)

let test_pruning_bounds_sidechain () =
  let r = run () in
  Alcotest.(check bool) "pruning reclaimed meta blocks" true
    (r.System.sc_stored_bytes < r.System.sc_cumulative_bytes);
  (* Permanent summaries only: stored size stays modest. *)
  Alcotest.(check bool) "stored well below cumulative" true
    (float_of_int r.System.sc_stored_bytes
    < 0.8 *. float_of_int r.System.sc_cumulative_bytes)

let test_deterministic_given_seed () =
  let r1 = run () and r2 = run () in
  Alcotest.(check int) "same generated" r1.System.generated r2.System.generated;
  Alcotest.(check int) "same processed" r1.System.processed r2.System.processed;
  Alcotest.(check int) "same gas" r1.System.mc_gas_total r2.System.mc_gas_total

let test_committee_rotation () =
  let r = run () in
  let leaders =
    List.sort_uniq compare (List.map (fun c -> c.System.leader) r.System.committees)
  in
  Alcotest.(check bool) "committees recorded" true (List.length r.System.committees >= 3);
  (* With 60 miners, repeated identical leadership across all epochs is
     overwhelmingly unlikely. *)
  Alcotest.(check bool) "leaders rotate" true (List.length leaders > 1)

let test_deposit_gas_matches_paper () =
  let r = run () in
  Alcotest.(check (float 1.0)) "52,696 per deposit (Table 6)" 52696.0
    r.System.deposit_gas_mean

let test_threshold_signing_mode () =
  (* Full DKG + threshold signatures on the Sync path. *)
  let cfg =
    { base with
      epochs = 2; users = 10; committee_size = 10; max_faulty = 2;
      threshold_signing = true; seed = "threshold-mode" }
  in
  let r = run ~cfg () in
  Alcotest.(check int) "synced with threshold sigs" r.System.epochs_run
    r.System.epochs_applied;
  Alcotest.(check bool) "custody" true r.System.custody_consistent

let test_signed_traffic_verified () =
  let cfg =
    { base with
      epochs = 2; sign_transactions = true; verify_signatures = true;
      seed = "signed-traffic" }
  in
  let r = run ~cfg () in
  Alcotest.(check bool) "signed traffic processes" true (r.System.processed > 50);
  Alcotest.(check bool) "no signature rejections" true
    (not (List.mem_assoc "invalid signature" r.System.rejection_reasons))

(* ------------------------------------------------------------------ *)
(* Interruptions (§4.2 "Handling interruptions")                       *)
(* ------------------------------------------------------------------ *)

let test_silent_sync_leader_mass_sync () =
  let cfg = { base with interruptions = [ Config.Silent_sync_leader 1 ] } in
  let r = run ~cfg () in
  (* No failure is observable on chain (nothing was submitted), so
     recovery comes from the next epoch's mass-sync, not a retry. *)
  Alcotest.(check bool) "mass-sync happened" true (r.System.mass_syncs >= 1);
  Alcotest.(check int) "all epochs eventually applied" r.System.epochs_run
    r.System.epochs_applied;
  Alcotest.(check bool) "payouts all settled" true
    (r.System.payouts_settled = r.System.processed);
  Alcotest.(check bool) "custody preserved" true r.System.custody_consistent;
  Alcotest.(check bool) "replay oracle" true r.System.replay_consistent

let test_invalid_sync_rejected_then_recovered () =
  let cfg = { base with interruptions = [ Config.Invalid_sync 1 ] } in
  let r = run ~cfg () in
  (* TokenBank rejected the tampered submission — an observed on-chain
     failure, so the leader's backoff retry resubmits the genuine
     summary before the next epoch ends (no mass-sync needed). *)
  Alcotest.(check bool) "recovered via retry" true (r.System.sync_retries >= 1);
  Alcotest.(check int) "state caught up" r.System.epochs_run r.System.epochs_applied;
  Alcotest.(check bool) "custody preserved" true r.System.custody_consistent;
  Alcotest.(check bool) "replay oracle" true r.System.replay_consistent

let test_mainchain_rollback_recovered () =
  let cfg = { base with interruptions = [ Config.Mainchain_rollback 1 ] } in
  let r = run ~cfg () in
  Alcotest.(check bool) "rollback counter fired" true (r.System.rollbacks >= 1);
  Alcotest.(check bool) "recovered via retry or mass-sync" true
    (r.System.sync_retries >= 1 || r.System.mass_syncs >= 1);
  Alcotest.(check int) "state caught up after rollback" r.System.epochs_run
    r.System.epochs_applied;
  Alcotest.(check bool) "custody preserved" true r.System.custody_consistent;
  Alcotest.(check bool) "replay oracle" true r.System.replay_consistent

let test_multiple_interruptions () =
  let cfg =
    { base with
      epochs = 5;
      interruptions =
        [ Config.Silent_sync_leader 0; Config.Invalid_sync 2; Config.Silent_sync_leader 3 ] }
  in
  let r = run ~cfg () in
  Alcotest.(check int) "all recovered" r.System.epochs_run r.System.epochs_applied;
  Alcotest.(check bool) "custody preserved" true r.System.custody_consistent

let test_censoring_committee_liveness () =
  (* Lemma 2's DoS threat: the epoch-1 committee omits user 0's
     transactions; committee rotation processes them in epoch 2, so
     every generated transaction is still eventually processed. *)
  let cfg = { base with interruptions = [ Config.Censoring_committee 1 ] } in
  let r = run ~cfg () in
  Alcotest.(check bool) "everything eventually processed" true
    (r.System.processed >= r.System.generated - r.System.rejected - 5);
  Alcotest.(check bool) "all payouts settle" true
    (r.System.payouts_settled = r.System.processed);
  Alcotest.(check bool) "custody" true r.System.custody_consistent;
  Alcotest.(check bool) "replay oracle" true r.System.replay_consistent

let test_message_level_consensus_mode () =
  (* Real PBFT per round instead of the latency model; metrics stay sane
     and everything still syncs. *)
  let cfg =
    { base with
      epochs = 2; users = 10; committee_size = 13; max_faulty = 4;
      message_level_consensus = true; seed = "message-level" }
  in
  let r = run ~cfg () in
  Alcotest.(check int) "synced" r.System.epochs_run r.System.epochs_applied;
  Alcotest.(check bool) "latency from real consensus" true
    (r.System.mean_tx_latency > 0.0
    && r.System.mean_tx_latency < base.Config.sc_round_duration);
  Alcotest.(check bool) "custody" true r.System.custody_consistent

let test_self_audit_mode () =
  (* Every epoch's summary re-derived from its meta-blocks and matched —
     the public-verifiability path exercised end-to-end. *)
  let cfg = { base with epochs = 2; self_audit = true; seed = "self-audit" } in
  let r = run ~cfg () in
  Alcotest.(check (option bool)) "all summaries audit clean" (Some true)
    r.System.audit_passed

let test_committee_round_faults () =
  let rng = Amm_crypto.Rng.create "committee-round" in
  let c =
    Sidechain.Committee.create ~rng ~members:10 ~max_faulty:3 ~delta:0.05 ~timeout:0.5
  in
  let digest = Bytes.of_string "block" in
  let ok = Sidechain.Committee.agree c ~block_digest:digest ~horizon:30.0 in
  Alcotest.(check bool) "clean round decides" true ok.Sidechain.Committee.decided;
  Alcotest.(check int) "no view change" 0 ok.Sidechain.Committee.view_changes;
  let faulty =
    Sidechain.Committee.agree c ~invalid_proposer:true ~silent:[ 4; 7 ]
      ~block_digest:digest ~horizon:30.0
  in
  Alcotest.(check bool) "decides despite faults" true faulty.Sidechain.Committee.decided;
  Alcotest.(check bool) "leader replaced" true (faulty.Sidechain.Committee.view_changes > 0);
  Alcotest.(check bool) "slower than clean round" true
    (faulty.Sidechain.Committee.latency > ok.Sidechain.Committee.latency)

(* ------------------------------------------------------------------ *)
(* Congestion behavior                                                 *)
(* ------------------------------------------------------------------ *)

let test_congestion_raises_latency () =
  (* A tiny meta-block forces queueing; latency must grow well past the
     uncongested level while the queue still drains fully. *)
  let uncongested = run () in
  (* ~3 arrivals (~3 KB) per round against a ~1-transaction block. *)
  let congested =
    run ~cfg:{ base with meta_block_bytes = 1_500; seed = "congested" } ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "latency grows (%.2f -> %.2f)" uncongested.System.mean_tx_latency
       congested.System.mean_tx_latency)
    true
    (congested.System.mean_tx_latency > 4.0 *. uncongested.System.mean_tx_latency);
  Alcotest.(check bool) "queue drained eventually" true
    (congested.System.processed >= congested.System.generated - congested.System.rejected - 5)

let test_throughput_scales_with_block_size () =
  let cfg volume bytes seed =
    { base with daily_volume = volume; meta_block_bytes = bytes; seed }
  in
  let small = run ~cfg:(cfg 2_000_000 50_000 "small-blocks") () in
  let large = run ~cfg:(cfg 2_000_000 100_000 "large-blocks") () in
  let ratio = large.System.throughput /. small.System.throughput in
  Alcotest.(check bool) (Printf.sprintf "2x blocks -> ~2x throughput (%.2f)" ratio) true
    (ratio > 1.6 && ratio < 2.4)

let test_deadlines_expire_under_congestion () =
  (* Tiny blocks + a short validity window: queued swaps expire and are
     rejected with the deadline reason instead of executing stale. *)
  let cfg =
    { base with
      meta_block_bytes = 1_500; swap_deadline_rounds = 5; seed = "deadline-congestion" }
  in
  let r = run ~cfg () in
  Alcotest.(check bool) "expired swaps rejected" true
    (match List.assoc_opt "swap: deadline passed" r.System.rejection_reasons with
    | Some n -> n > 0
    | None -> false);
  (* The system still settles whatever it processed. *)
  Alcotest.(check bool) "settlement intact" true
    (r.System.payouts_settled = r.System.processed && r.System.custody_consistent)

(* ------------------------------------------------------------------ *)
(* Traffic generator                                                   *)
(* ------------------------------------------------------------------ *)

let test_traffic_distribution () =
  let cfg = { base with epochs = 6; daily_volume = 500_000; users = 50 } in
  let rng = Amm_crypto.Rng.create "traffic-dist" in
  let users =
    Party.make_users (Amm_crypto.Rng.split rng "users") ~count:cfg.Config.users
      ~lp_fraction:cfg.Config.lp_fraction
  in
  let traffic = Traffic.create ~rng ~cfg ~users in
  for round = 0 to 299 do
    ignore (Traffic.generate_round traffic ~round ~time:(float_of_int round *. 4.0))
  done;
  let stats = Traffic.table8_stats traffic in
  let share name =
    (List.find (fun r -> r.Traffic.ts_name = name) stats).Traffic.ts_share_pct
  in
  Alcotest.(check bool)
    (Printf.sprintf "swap share %.1f ~ 93.19" (share "Swap"))
    true
    (Float.abs (share "Swap" -. 93.19) < 2.0);
  (* Burns/collects with no position fall back to mints, so mint share
     runs slightly above its nominal 2.14. *)
  Alcotest.(check bool) "mint share sane" true (share "Mint" < 7.0);
  let arrivals = Config.arrivals_per_round cfg in
  Alcotest.(check int) "rho = ceil(V_D * b_t / 86400)" 24 arrivals

let test_arrival_rate_formula () =
  let at volume duration =
    Config.arrivals_per_round
      { base with daily_volume = volume; sc_round_duration = duration }
  in
  Alcotest.(check int) "50K @ 4s" 3 (at 50_000 4.0);
  Alcotest.(check int) "500K @ 4s" 24 (at 500_000 4.0);
  Alcotest.(check int) "5M @ 4s" 232 (at 5_000_000 4.0);
  Alcotest.(check int) "25M @ 4s" 1158 (at 25_000_000 4.0);
  Alcotest.(check int) "25M @ 12s" 3473 (at 25_000_000 12.0)

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let test_baseline_runs () =
  let b = Baseline.run { base with seed = "baseline-test" } in
  Alcotest.(check bool) "executed most traffic" true
    (b.Baseline.executed > (3 * b.Baseline.generated) / 4);
  Alcotest.(check bool) "gas accounted" true (b.Baseline.gas_total > 0);
  Alcotest.(check bool) "per-op gas matches model" true
    (List.mem_assoc "swap" b.Baseline.gas_by_op);
  (* Ethereum encoding is strictly larger than Sepolia's. *)
  Alcotest.(check bool) "ethereum bytes > sepolia bytes" true
    (b.Baseline.mc_tx_bytes_ethereum > b.Baseline.mc_tx_bytes)

let test_ammboost_beats_baseline () =
  (* The headline claim at a volume where fixed costs are amortized. *)
  let cfg =
    { base with epochs = 4; daily_volume = 500_000; users = 30; seed = "comparison" }
  in
  let r = System.run cfg in
  let b = Baseline.run cfg in
  let gas_reduction =
    1.0 -. (float_of_int r.System.mc_gas_total /. float_of_int b.Baseline.gas_total)
  in
  Alcotest.(check bool)
    (Printf.sprintf "gas reduction %.1f%% > 60%%" (100.0 *. gas_reduction))
    true (gas_reduction > 0.6);
  let growth_reduction =
    1.0 -. (float_of_int r.System.mc_tx_bytes /. float_of_int b.Baseline.mc_tx_bytes)
  in
  Alcotest.(check bool)
    (Printf.sprintf "growth reduction %.1f%% > 40%%" (100.0 *. growth_reduction))
    true (growth_reduction > 0.4)

(* ------------------------------------------------------------------ *)
(* End-to-end property: any processed epoch syncs                      *)
(* ------------------------------------------------------------------ *)

(* Random transaction soups, processed by the sidechain engine, must
   always yield a payload TokenBank accepts — signature, epoch order and
   token conservation all passing — with custody exactly covering the
   pool afterwards. *)
let sidechain_to_tokenbank_roundtrip_prop =
  let module U256 = Amm_math.U256 in
  let module TB = Tokenbank.Token_bank in
  let gen =
    QCheck2.Gen.(list_size (int_range 5 40) (triple (int_range 0 4) (int_range 1 400) bool))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:20 ~name:"processor payload always syncs" gen (fun ops ->
         let rng = Amm_crypto.Rng.create "roundtrip" in
         let erc0 = Mainchain.Erc20.deploy (Chain.Token.make ~id:0 ~symbol:"TKA") in
         let erc1 = Mainchain.Erc20.deploy (Chain.Token.make ~id:1 ~symbol:"TKB") in
         let csk, cvk = Amm_crypto.Bls.keygen rng in
         let bank = TB.deploy ~token0:erc0 ~token1:erc1 ~genesis_committee_vk:cvk in
         let pool_id = TB.create_pool bank ~flash_fee_pips:3000 in
         let users =
           List.map
             (fun name ->
               let a = Chain.Address.of_label name in
               let big = U256.of_string "10000000000000000000000000" in
               Mainchain.Erc20.mint erc0 a big;
               Mainchain.Erc20.mint erc1 a big;
               Mainchain.Erc20.approve erc0 ~owner:a ~spender:(TB.address bank) U256.max_value;
               Mainchain.Erc20.approve erc1 ~owner:a ~spender:(TB.address bank) U256.max_value;
               (match
                  TB.deposit bank ~user:a ~for_epoch:0
                    ~amount0:(U256.of_string "1000000000000000000000000")
                    ~amount1:(U256.of_string "1000000000000000000000000")
                with
               | Ok () -> ()
               | Error e -> failwith e);
               a)
             [ "rt-alice"; "rt-bob"; "rt-carol" ]
         in
         let pool =
           Uniswap.Pool.create ~pool_id ~token0:(Chain.Token.make ~id:0 ~symbol:"TKA")
             ~token1:(Chain.Token.make ~id:1 ~symbol:"TKB") ~fee_pips:3000
             ~tick_spacing:60 ~sqrt_price:Amm_math.Q96.q96
         in
         let processor =
           Sidechain.Processor.begin_epoch ~pool ~snapshot:(TB.snapshot bank ~epoch:0)
             ~verify_signatures:false ()
         in
         let dummy_pk = cvk in
         let mk issuer round payload =
           Chain.Tx.create ~issuer ~issuer_pk:dummy_pk ~pool:pool_id ~issued_round:round
             ~issued_at:0.0 payload
         in
         (* Seed liquidity. *)
         let genesis =
           mk (List.hd users) 0
             (Chain.Tx.Mint
                { lower_tick = -887220; upper_tick = 887220;
                  amount0_desired = U256.of_string "100000000000000000000000";
                  amount1_desired = U256.of_string "100000000000000000000000";
                  target = Chain.Tx.New_position })
         in
         (match Sidechain.Processor.process processor ~current_round:0 genesis with
         | Ok () -> ()
         | Error e -> failwith e);
         let minted = ref [] in
         List.iteri
           (fun i (op, magnitude, flag) ->
             let round = i + 1 in
             let issuer = List.nth users (magnitude mod 3) in
             let amount =
               U256.mul (U256.of_string "1000000000000000") (U256.of_int magnitude)
             in
             let tx =
               match op with
               | 0 | 1 ->
                 mk issuer round
                   (Chain.Tx.Swap
                      { zero_for_one = flag;
                        kind = (if op = 0 then Chain.Tx.Exact_input else Chain.Tx.Exact_output);
                        amount_specified = amount;
                        amount_limit =
                          (if op = 0 then U256.zero else U256.mul amount (U256.of_int 3));
                        sqrt_price_limit = U256.zero; deadline = round + 50 })
               | 2 ->
                 mk issuer round
                   (Chain.Tx.Mint
                      { lower_tick = -1200; upper_tick = 1200; amount0_desired = amount;
                        amount1_desired = amount; target = Chain.Tx.New_position })
               | 3 ->
                 (match !minted with
                 | (owner, pid) :: _ when Chain.Address.equal owner issuer ->
                   mk issuer round
                     (Chain.Tx.Burn
                        { burn_position = pid; amount0_requested = U256.max_value;
                          amount1_requested = U256.max_value })
                 | _ ->
                   mk issuer round
                     (Chain.Tx.Collect
                        { collect_position =
                            Chain.Ids.Position_id.of_hash
                              (Amm_crypto.Sha256.digest_string "missing");
                          fees0_requested = amount; fees1_requested = amount }))
               | _ ->
                 (match !minted with
                 | (_, pid) :: _ ->
                   mk issuer round
                     (Chain.Tx.Collect
                        { collect_position = pid; fees0_requested = U256.max_value;
                          fees1_requested = U256.max_value })
                 | [] ->
                   mk issuer round
                     (Chain.Tx.Collect
                        { collect_position =
                            Chain.Ids.Position_id.of_hash
                              (Amm_crypto.Sha256.digest_string "missing");
                          fees0_requested = amount; fees1_requested = amount }))
             in
             match (op, Sidechain.Processor.process processor ~current_round:round tx) with
             | 2, Ok () ->
               minted :=
                 (issuer, Uniswap.Position.derive_id ~minter:issuer ~tx_id:tx.Chain.Tx.id)
                 :: !minted
             | 3, Ok () -> (match !minted with _ :: rest -> minted := rest | [] -> ())
             | _ -> ())
           ops;
         let payload =
           Sidechain.Processor.build_payload processor ~epoch:0 ~next_committee_vk:cvk
         in
         let signature =
           Amm_crypto.Bls.sign csk (Tokenbank.Sync_payload.signing_bytes payload)
         in
         match TB.sync bank ~signed:[ (payload, signature) ] with
         | Error e ->
           QCheck2.Test.fail_reportf "sync rejected: %s" (TB.rejection_to_string e)
         | Ok _ ->
           let c0, c1 = TB.total_custody bank in
           (match TB.pool bank pool_id with
           | Some pi ->
             U256.equal c0 pi.TB.balance0 && U256.equal c1 pi.TB.balance1
           | None -> false)))

(* ------------------------------------------------------------------ *)
(* Mainchain substrate                                                 *)
(* ------------------------------------------------------------------ *)

let test_eth_block_production_and_latency () =
  let rng = Amm_crypto.Rng.create "eth" in
  let eth = Mainchain.Eth.create ~interval:12.0 ~rng () in
  let executed = ref [] in
  for i = 0 to 9 do
    Mainchain.Eth.submit eth ~at:(float_of_int i)
      { Mainchain.Eth.label = "op"; size_bytes = 100; gas = 50_000; flow_txs = 1;
        tag = Some (string_of_int i); execute = Some (fun h -> executed := h :: !executed) }
  done;
  Mainchain.Eth.advance_to eth 120.0;
  Alcotest.(check int) "all included" 10 (Mainchain.Eth.included_count eth);
  Alcotest.(check int) "all executed" 10 (List.length !executed);
  Alcotest.(check bool) "tags included" true (Mainchain.Eth.is_tag_included eth "5");
  (match Mainchain.Eth.mean_latency eth "op" with
  | Some l ->
    (* One flow leg ≈ 1.1 block intervals. *)
    Alcotest.(check bool) (Printf.sprintf "latency %.1f in [6;20]" l) true
      (l > 6.0 && l < 20.0)
  | None -> Alcotest.fail "no latency");
  Alcotest.(check bool) "bytes grow" true (Mainchain.Eth.cumulative_bytes eth > 1000)

let test_eth_gas_limit_congestion () =
  let rng = Amm_crypto.Rng.create "eth2" in
  let eth = Mainchain.Eth.create ~interval:12.0 ~gas_limit:100_000 ~rng () in
  for _ = 0 to 9 do
    Mainchain.Eth.submit eth ~at:0.0
      { Mainchain.Eth.label = "big"; size_bytes = 100; gas = 60_000; flow_txs = 1;
        tag = None; execute = None }
  done;
  (* Only one 60k tx fits per 100k block. *)
  Mainchain.Eth.advance_to eth 36.1;
  Alcotest.(check int) "one per block" 3 (Mainchain.Eth.included_count eth);
  Mainchain.Eth.advance_to eth 1200.0;
  Alcotest.(check int) "eventually all" 10 (Mainchain.Eth.included_count eth)

(* mine_block must drain the pending pool strictly by (ready_at,
   submission seq). With [flow_txs = 1] a transaction's readiness is the
   deterministic propagation offset [at +. 0.6 *. interval] — no random
   legs — so the inclusion order read back from the blocks must equal a
   stable sort of the submissions by arrival time, duplicates (ties)
   kept in submission order. *)
let eth_drain_order_prop =
  let gen = QCheck2.Gen.(list_size (int_range 1 80) (int_range 0 20)) in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"drain order = (ready_at, seq)" gen
       (fun slots ->
         let rng = Amm_crypto.Rng.create "eth-drain" in
         let eth = Mainchain.Eth.create ~interval:12.0 ~rng () in
         List.iteri
           (fun i slot ->
             Mainchain.Eth.submit eth ~at:(float_of_int slot)
               { Mainchain.Eth.label = "op"; size_bytes = 64; gas = 21_000;
                 flow_txs = 1; tag = Some (string_of_int i); execute = None })
           slots;
         Mainchain.Eth.advance_to eth 2_000.0;
         let included = ref [] in
         for h = 1 to Mainchain.Eth.height eth do
           match Mainchain.Eth.block_at eth h with
           | Some b ->
             included := !included @ Mainchain.Eth.block_tx_tags b
           | None -> ()
         done;
         let expected =
           List.mapi (fun i slot -> (slot, i)) slots
           |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
           |> List.map (fun (_, i) -> string_of_int i)
         in
         !included = expected))

let test_eth_rollback_drops_tags () =
  let rng = Amm_crypto.Rng.create "eth3" in
  let eth = Mainchain.Eth.create ~interval:12.0 ~rng () in
  Mainchain.Eth.submit eth ~at:0.0
    { Mainchain.Eth.label = "sync"; size_bytes = 100; gas = 1000; flow_txs = 1;
      tag = Some "sync-0"; execute = None };
  Mainchain.Eth.advance_to eth 40.0;
  Alcotest.(check bool) "included" true (Mainchain.Eth.is_tag_included eth "sync-0");
  let dropped = Mainchain.Eth.rollback eth (Mainchain.Eth.height eth) in
  Alcotest.(check (list string)) "tag dropped" [ "sync-0" ] dropped;
  Alcotest.(check bool) "no longer included" false
    (Mainchain.Eth.is_tag_included eth "sync-0")

(* ------------------------------------------------------------------ *)
(* Liveness watchdog and emergency exit                                *)
(* ------------------------------------------------------------------ *)

let watchdog_cfg scenario =
  { base with
    epochs = 8;
    faults = { Faults.Fault_plan.none with Faults.Fault_plan.scenario };
    watchdog =
      { Config.default_watchdog with Config.wd_stall_degraded = 2; wd_stall_halted = 4 };
    seed = "system-watchdog" }

let test_nominal_stays_normal () =
  let r = run () in
  Alcotest.(check string) "final mode" "normal" r.System.final_mode;
  Alcotest.(check bool) "no transitions" true (r.System.mode_transitions = []);
  Alcotest.(check int) "no exits" 0 r.System.exits_served;
  Alcotest.(check bool) "audited every epoch" true
    (r.System.monitor_audits >= r.System.epochs_run)

let test_permanent_loss_halts_and_exits () =
  let cfg =
    watchdog_cfg
      { Faults.Fault_plan.quorum_starvation = None; committee_loss = Some 2 }
  in
  let r = System.run cfg in
  Alcotest.(check string) "terminal mode" "halted" r.System.final_mode;
  Alcotest.(check (list string)) "trajectory" [ "degraded"; "halted" ]
    (List.map snd r.System.mode_transitions);
  Alcotest.(check bool) "halt timestamped" true (r.System.halted_at <> None);
  Alcotest.(check int) "every party exited" cfg.Config.users r.System.exits_served;
  Alcotest.(check bool) "exits carry value" true
    (Amm_math.U256.gt r.System.exit_claims0 Amm_math.U256.zero);
  Alcotest.(check bool) "exit conservation" true r.System.exit_conservation;
  Alcotest.(check bool) "replay oracle covers halt + exits" true
    r.System.replay_consistent;
  Alcotest.(check bool) "custody invariant" true r.System.custody_consistent;
  Alcotest.(check bool) "never reconciled" true (r.System.reconciliation = None)

let test_starvation_halts_then_recovers () =
  let cfg =
    watchdog_cfg
      { Faults.Fault_plan.quorum_starvation = Some (2, 5); committee_loss = None }
  in
  let r = System.run cfg in
  Alcotest.(check string) "recovered" "normal" r.System.final_mode;
  Alcotest.(check (list string)) "full cycle"
    [ "degraded"; "halted"; "recovering"; "normal" ]
    (List.map snd r.System.mode_transitions);
  Alcotest.(check int) "every party exited" cfg.Config.users r.System.exits_served;
  Alcotest.(check bool) "reconciliation applied" true (r.System.reconciliation <> None);
  Alcotest.(check bool) "recovery latency measured" true
    (match r.System.recovery_latency with Some l -> l > 0.0 | None -> false);
  Alcotest.(check bool) "exit conservation" true r.System.exit_conservation;
  Alcotest.(check bool) "replay oracle covers reconcile" true r.System.replay_consistent;
  Alcotest.(check bool) "custody invariant" true r.System.custody_consistent

let test_watchdog_run_deterministic () =
  let cfg =
    watchdog_cfg
      { Faults.Fault_plan.quorum_starvation = Some (2, 5); committee_loss = None }
  in
  let a = System.run cfg and b = System.run cfg in
  Alcotest.(check (list (pair (float 1e-9) string))) "identical transitions"
    a.System.mode_transitions b.System.mode_transitions;
  Alcotest.(check int) "identical exits" a.System.exits_served b.System.exits_served;
  Alcotest.(check string) "identical claims"
    (Amm_math.U256.to_string a.System.exit_claims0)
    (Amm_math.U256.to_string b.System.exit_claims0)

let () =
  Alcotest.run "system"
    [ ( "nominal",
        [ Alcotest.test_case "full run" `Slow test_nominal_run;
          Alcotest.test_case "latency sanity" `Slow test_latency_sanity;
          Alcotest.test_case "pruning bounds growth" `Slow test_pruning_bounds_sidechain;
          Alcotest.test_case "deterministic" `Slow test_deterministic_given_seed;
          Alcotest.test_case "committee rotation" `Slow test_committee_rotation;
          Alcotest.test_case "deposit gas" `Slow test_deposit_gas_matches_paper;
          Alcotest.test_case "threshold signing" `Slow test_threshold_signing_mode;
          Alcotest.test_case "signed traffic" `Slow test_signed_traffic_verified ] );
      ( "message-level consensus",
        [ Alcotest.test_case "system mode" `Slow test_message_level_consensus_mode;
          Alcotest.test_case "self-audit" `Slow test_self_audit_mode;
          Alcotest.test_case "committee faults" `Quick test_committee_round_faults ] );
      ( "interruptions",
        [ Alcotest.test_case "silent leader" `Slow test_silent_sync_leader_mass_sync;
          Alcotest.test_case "invalid sync" `Slow test_invalid_sync_rejected_then_recovered;
          Alcotest.test_case "mainchain rollback" `Slow test_mainchain_rollback_recovered;
          Alcotest.test_case "multiple" `Slow test_multiple_interruptions;
          Alcotest.test_case "censoring committee" `Slow test_censoring_committee_liveness ] );
      ( "congestion",
        [ Alcotest.test_case "latency grows" `Slow test_congestion_raises_latency;
          Alcotest.test_case "deadlines expire" `Slow test_deadlines_expire_under_congestion;
          Alcotest.test_case "throughput vs block size" `Slow
            test_throughput_scales_with_block_size ] );
      ( "traffic",
        [ Alcotest.test_case "distribution" `Quick test_traffic_distribution;
          Alcotest.test_case "arrival rate" `Quick test_arrival_rate_formula ] );
      ( "watchdog",
        [ Alcotest.test_case "nominal stays normal" `Slow test_nominal_stays_normal;
          Alcotest.test_case "permanent loss halts and exits" `Slow
            test_permanent_loss_halts_and_exits;
          Alcotest.test_case "starvation halts then recovers" `Slow
            test_starvation_halts_then_recovers;
          Alcotest.test_case "deterministic" `Slow test_watchdog_run_deterministic ] );
      ("roundtrip", [ sidechain_to_tokenbank_roundtrip_prop ]);
      ( "baseline",
        [ Alcotest.test_case "runs" `Slow test_baseline_runs;
          Alcotest.test_case "ammboost wins" `Slow test_ammboost_beats_baseline ] );
      ( "mainchain",
        [ Alcotest.test_case "blocks and latency" `Quick test_eth_block_production_and_latency;
          Alcotest.test_case "gas limit" `Quick test_eth_gas_limit_congestion;
          Alcotest.test_case "rollback" `Quick test_eth_rollback_drops_tags;
          eth_drain_order_prop ] ) ]
