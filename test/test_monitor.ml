(* The cross-layer invariant monitor (lib/monitor): clean audits over a
   consistent bank+pool view, fatal detection of broken conservation and
   forged or gapped quorum certificates, the graded liveness thresholds,
   the committee-dead audit subset, and the cumulative totals feeding the
   telemetry counters. *)

module U256 = Amm_math.U256
module Address = Chain.Address
module Erc20 = Mainchain.Erc20
module Bls = Amm_crypto.Bls
module Q96 = Amm_math.Q96
open Tokenbank

let u = U256.of_string
let one_e18 = u "1000000000000000000"
let one_e21 = u "1000000000000000000000"
let alice = Address.of_label "alice"

type env = {
  bank : Token_bank.t;
  erc0 : Erc20.t;
  pool : Uniswap.Pool.t;
  keys : (Bls.secret_key * Bls.public_key) array; (* per epoch *)
  pool_id : int;
  sink : Telemetry.Report.sink;
  mon : Monitor.t;
}

let make_env ?thresholds () =
  let rng = Amm_crypto.Rng.create "monitor-tests" in
  let erc0 = Erc20.deploy (Chain.Token.make ~id:0 ~symbol:"TKA") in
  let erc1 = Erc20.deploy (Chain.Token.make ~id:1 ~symbol:"TKB") in
  let keys = Array.init 8 (fun _ -> Bls.keygen rng) in
  let bank =
    Token_bank.deploy ~token0:erc0 ~token1:erc1 ~genesis_committee_vk:(snd keys.(0))
  in
  let pool_id = Token_bank.create_pool bank ~flash_fee_pips:3000 in
  Erc20.mint erc0 alice one_e21;
  Erc20.mint erc1 alice one_e21;
  Erc20.approve erc0 ~owner:alice ~spender:(Token_bank.address bank) U256.max_value;
  Erc20.approve erc1 ~owner:alice ~spender:(Token_bank.address bank) U256.max_value;
  let pool =
    Uniswap.Pool.create ~pool_id:0
      ~token0:(Chain.Token.make ~id:0 ~symbol:"TKA")
      ~token1:(Chain.Token.make ~id:1 ~symbol:"TKB")
      ~fee_pips:3000 ~tick_spacing:60 ~sqrt_price:Q96.q96
  in
  let sink = Telemetry.Report.sink () in
  { bank; erc0; pool; keys; pool_id; sink; mon = Monitor.create ?thresholds sink }

let payload ?(users = []) env ~epoch ~balance0 ~balance1 =
  { Sync_payload.epoch; pool = env.pool_id; pool_balance0 = balance0;
    pool_balance1 = balance1; users; positions = [];
    next_committee_vk = snd env.keys.(epoch + 1) }

let sign env ~epoch p = Bls.sign (fst env.keys.(epoch)) (Sync_payload.signing_bytes p)

let audit ?(epoch = 1) ?(last_summary = 0) ?(pending = []) ?(horizon = 0)
    ?(streak = 0) ?(live = true) env =
  Monitor.audit env.mon ~epoch ~now:0.0 ~bank:env.bank ~pool:env.pool
    ~last_summary_epoch:last_summary ~pending ~deposit_horizon:horizon
    ~degraded_signing_streak:streak ~committee_live:live

(* Apply a clean epoch-0 sync so the bank sits at the steady-state
   frontier: deposit recorded, pool credited, synced through 0. *)
let settle_epoch0 env =
  (match
     Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18
       ~amount1:U256.zero
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let p =
    payload env ~epoch:0 ~balance0:one_e18 ~balance1:U256.zero
      ~users:[ { Sync_payload.user = alice; payin0 = one_e18; payin1 = U256.zero;
                 payout0 = U256.zero; payout1 = U256.zero } ]
  in
  ignore (Token_bank.sync_exn env.bank ~signed:[ (p, sign env ~epoch:0 p) ])

let checks_of v = List.map (fun x -> x.Monitor.v_check) v.Monitor.r_violations

let test_clean_audit () =
  let env = make_env () in
  settle_epoch0 env;
  let r = audit env ~epoch:1 ~last_summary:0 in
  Alcotest.(check (list string)) "no violations" [] (checks_of r);
  Alcotest.(check int) "all checks run" 7 r.Monitor.r_checks;
  Alcotest.(check bool) "no worst severity" true (Monitor.worst r = None);
  Alcotest.(check int) "audit counted" 1 (Monitor.audits_run env.mon);
  Alcotest.(check bool) "no totals" true (Monitor.violation_totals env.mon = [])

let test_custody_violation_is_fatal () =
  let env = make_env () in
  settle_epoch0 env;
  (* Tokens appear in custody that no deposit or pool reserve explains. *)
  Erc20.mint env.erc0 (Token_bank.address env.bank) one_e18;
  let r = audit env ~epoch:1 ~last_summary:0 in
  Alcotest.(check bool) "fatal" true (Monitor.has_fatal r);
  Alcotest.(check (list string)) "conservation check fires"
    [ "custody-conservation" ] (checks_of r)

let test_liveness_grades_by_lag () =
  let env = make_env () in
  (* Bank never synced: applied lag grows with the summary frontier.
     Defaults: warning at lag 2, degraded at lag 3 (sync lag is shifted
     by one epoch of pipeline depth). *)
  let warn = audit env ~epoch:3 ~last_summary:2 in
  Alcotest.(check (list string)) "warning fires" [ "sync-liveness" ] (checks_of warn);
  Alcotest.(check bool) "warning severity" true (Monitor.worst warn = Some Monitor.Warning);
  let deg = audit env ~epoch:4 ~last_summary:3 in
  Alcotest.(check bool) "degraded severity" true (Monitor.worst deg = Some Monitor.Degraded);
  (* Stalled summary production trips the sidechain-side check too. *)
  let stalled = audit env ~epoch:4 ~last_summary:(-1) in
  Alcotest.(check bool) "summary liveness fires" true
    (List.mem "summary-liveness" (checks_of stalled))

let test_committee_dead_skips_liveness () =
  let env = make_env () in
  (* Same stalled state, dead committee: the liveness lags are
     meaningless, only the 5 safety checks run — and pass. *)
  let r = audit env ~epoch:4 ~last_summary:(-1) ~live:false ~streak:9 in
  Alcotest.(check int) "safety subset" 5 r.Monitor.r_checks;
  Alcotest.(check (list string)) "no violations" [] (checks_of r)

let test_signing_streak_thresholds () =
  let env = make_env () in
  settle_epoch0 env;
  let w = audit env ~epoch:1 ~last_summary:0 ~streak:1 in
  Alcotest.(check bool) "streak 1 warns" true (Monitor.worst w = Some Monitor.Warning);
  let d = audit env ~epoch:1 ~last_summary:0 ~streak:4 in
  Alcotest.(check bool) "streak 4 degrades" true (Monitor.worst d = Some Monitor.Degraded);
  Alcotest.(check (list string)) "same check id" [ "degraded-signing" ] (checks_of d)

let test_certificate_chain_validated () =
  let env = make_env () in
  let p0 = payload env ~epoch:0 ~balance0:U256.zero ~balance1:U256.zero in
  let p1 = payload env ~epoch:1 ~balance0:U256.zero ~balance1:U256.zero in
  let good = [ (p0, sign env ~epoch:0 p0); (p1, sign env ~epoch:1 p1) ] in
  Alcotest.(check (list string)) "valid chain clean" []
    (checks_of (audit env ~epoch:2 ~last_summary:1 ~pending:good));
  (* Epoch 1 missing from the pending chain. *)
  let gapped = [ (p1, sign env ~epoch:1 p1) ] in
  Alcotest.(check (list string)) "gap is fatal" [ "epoch-contiguity" ]
    (checks_of (audit env ~epoch:2 ~last_summary:1 ~pending:gapped));
  (* Epoch 1's certificate signed by the wrong committee key. *)
  let forged = [ (p0, sign env ~epoch:0 p0); (p1, sign env ~epoch:3 p1) ] in
  let r = audit env ~epoch:2 ~last_summary:1 ~pending:forged in
  Alcotest.(check (list string)) "forgery is fatal" [ "quorum-certificate" ]
    (checks_of r);
  Alcotest.(check bool) "fatal" true (Monitor.has_fatal r)

let test_totals_accumulate () =
  let env = make_env () in
  settle_epoch0 env;
  ignore (audit env ~epoch:1 ~last_summary:0 ~streak:1);      (* warning *)
  ignore (audit env ~epoch:1 ~last_summary:0 ~streak:5);      (* degraded *)
  Erc20.mint env.erc0 (Token_bank.address env.bank) one_e18;
  ignore (audit env ~epoch:1 ~last_summary:0);                (* fatal *)
  Alcotest.(check int) "audits" 3 (Monitor.audits_run env.mon);
  Alcotest.(check (list (pair string int))) "totals sorted, zero-free"
    [ ("degraded", 1); ("fatal", 1); ("warning", 1) ]
    (Monitor.violation_totals env.mon);
  (* The counters land on the sink's registry for the metrics snapshot. *)
  let snapshot =
    Telemetry.Metrics.to_json_string env.sink.Telemetry.Report.metrics
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "metrics exported" true
    (contains snapshot "monitor.audits" && contains snapshot "monitor.violations.fatal")

let () =
  Alcotest.run "monitor"
    [ ( "audit",
        [ Alcotest.test_case "clean audit" `Quick test_clean_audit;
          Alcotest.test_case "custody violation fatal" `Quick
            test_custody_violation_is_fatal;
          Alcotest.test_case "liveness graded by lag" `Quick
            test_liveness_grades_by_lag;
          Alcotest.test_case "dead committee skips liveness" `Quick
            test_committee_dead_skips_liveness;
          Alcotest.test_case "signing streak thresholds" `Quick
            test_signing_streak_thresholds;
          Alcotest.test_case "certificate chain" `Quick
            test_certificate_chain_validated;
          Alcotest.test_case "totals accumulate" `Quick test_totals_accumulate ] ) ]
