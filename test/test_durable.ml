(* The crash-consistent persistence subsystem: checksums, the wire
   cursor, record/snapshot codecs, WAL segments and their repair, the
   recovery scan's fallback, and session-level resume over real
   System.run executions. *)

module U256 = Amm_math.U256
module Address = Chain.Address
open Durable

let tmp_dir () =
  let f = Filename.temp_file "ammboost-test-durable" "" in
  Sys.remove f;
  Fsio.mkdir_p f;
  f

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let test_crc_vectors () =
  (* The IEEE 802.3 check value. *)
  Alcotest.(check int) "123456789" 0xCBF43926
    (Crc32.digest (Bytes.of_string "123456789"));
  Alcotest.(check int) "empty" 0 (Crc32.digest Bytes.empty);
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int) "sub range" 0xCBF43926 (Crc32.digest_sub b ~pos:2 ~len:9)

let test_crc_incremental () =
  let b = Bytes.of_string "state growth control" in
  let whole = Crc32.digest b in
  let split = Crc32.update (Crc32.update 0 b ~pos:0 ~len:7) b ~pos:7 ~len:13 in
  Alcotest.(check int) "update composes" whole split;
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Crc32.digest_sub") (fun () ->
      ignore (Crc32.digest_sub b ~pos:15 ~len:9))

(* ------------------------------------------------------------------ *)
(* Wire cursor                                                         *)
(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let buf = Buffer.create 64 in
  Wire.w_u8 buf 0xA5;
  Wire.w_u32 buf 123_456;
  Wire.w_i64 buf (-42);
  Wire.w_fixed buf (Bytes.of_string "fixed");
  Wire.w_var buf (Bytes.of_string "variable-length");
  let b = Buffer.to_bytes buf in
  match
    Wire.read b (fun r ->
        let u8 = Wire.r_u8 r "u8" in
        let u32 = Wire.r_u32 r "u32" in
        let i64 = Wire.r_i64 r "i64" in
        let fx = Wire.r_fixed r 5 "fixed" in
        let vr = Wire.r_var r "var" in
        Wire.expect_end r "frame";
        (u8, u32, i64, fx, vr))
  with
  | Ok (u8, u32, i64, fx, vr) ->
    Alcotest.(check int) "u8" 0xA5 u8;
    Alcotest.(check int) "u32" 123_456 u32;
    Alcotest.(check int) "i64" (-42) i64;
    Alcotest.(check string) "fixed" "fixed" (Bytes.to_string fx);
    Alcotest.(check string) "var" "variable-length" (Bytes.to_string vr)
  | Error e -> Alcotest.fail e

let test_wire_malformed () =
  (* A var length pointing past the end must come back as Error, and so
     must trailing garbage. *)
  let buf = Buffer.create 8 in
  Wire.w_u32 buf 1_000_000;
  (match Wire.read (Buffer.to_bytes buf) (fun r -> Wire.r_var r "v") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized var accepted");
  let buf = Buffer.create 8 in
  Wire.w_u8 buf 1;
  Wire.w_u8 buf 2;
  match
    Wire.read (Buffer.to_bytes buf) (fun r ->
        let v = Wire.r_u8 r "v" in
        Wire.expect_end r "frame";
        v)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

(* ------------------------------------------------------------------ *)
(* Records                                                             *)
(* ------------------------------------------------------------------ *)

let sample_records =
  [ Record.Op
      (Record.Deposit
         { user = Address.of_label "durable-alice"; for_epoch = 3;
           amount0 = U256.of_int 1_000; amount1 = U256.of_int 2_000 });
    Record.Op (Record.Halt { epoch = 7 });
    Record.Op (Record.Exit { claimant = Address.of_label "durable-bob" });
    Record.Truncate { keep = 12 } ]

let test_record_roundtrip () =
  List.iter
    (fun r ->
      match Record.of_bytes (Record.to_bytes r) with
      | Ok r' ->
        Alcotest.(check bool)
          (Record.describe r ^ " round-trips") true (Record.equal r r');
        Alcotest.(check bool) "re-encoding byte-identical" true
          (Bytes.equal (Record.to_bytes r) (Record.to_bytes r'))
      | Error e -> Alcotest.fail (Record.describe r ^ ": " ^ e))
    sample_records

let test_record_rejects_garbage () =
  List.iter
    (fun b ->
      match Record.of_bytes b with
      | Error _ -> ()
      | Ok r -> Alcotest.fail ("garbage decoded as " ^ Record.describe r))
    [ Bytes.empty; Bytes.of_string "\xff"; Bytes.make 40 '\x00';
      (* a valid record with its tail cut off *)
      (let b = Record.to_bytes (List.hd sample_records) in
       Bytes.sub b 0 (Bytes.length b - 3)) ]

(* ------------------------------------------------------------------ *)
(* Snapshot files                                                      *)
(* ------------------------------------------------------------------ *)

let sample_snapshot =
  { Snapshot.meta = { Snapshot.epoch = 4; records_before = 77 };
    sections =
      [ ("alpha", Bytes.of_string "first section");
        ("beta", Bytes.make 100 '\x2a') ] }

let test_snapshot_roundtrip () =
  let dir = tmp_dir () in
  let path = Snapshot.write ~dir sample_snapshot in
  (match Snapshot.load path with
  | Ok s ->
    Alcotest.(check int) "epoch" 4 s.Snapshot.meta.Snapshot.epoch;
    Alcotest.(check int) "anchor" 77 s.Snapshot.meta.Snapshot.records_before;
    (match Snapshot.section s "beta" with
    | Some b -> Alcotest.(check int) "section payload" 100 (Bytes.length b)
    | None -> Alcotest.fail "section lost");
    Alcotest.(check bool) "re-encoding byte-identical" true
      (Bytes.equal (Snapshot.encode s) (Snapshot.encode sample_snapshot))
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list (pair int string)))
    "listed" [ (4, path) ] (Snapshot.list ~dir)

let test_snapshot_detects_every_torn_mode () =
  List.iter
    (fun mode ->
      let dir = tmp_dir () in
      let path = Snapshot.write ~dir sample_snapshot in
      Torn.apply path mode;
      match Snapshot.load path with
      | Error _ -> ()
      | Ok _ ->
        Alcotest.fail (Torn.describe mode ^ " survived snapshot validation"))
    [ Faults.Fault_plan.Truncated_tail; Faults.Fault_plan.Bit_flip;
      Faults.Fault_plan.Stale_marker ]

(* ------------------------------------------------------------------ *)
(* WAL segments                                                        *)
(* ------------------------------------------------------------------ *)

let write_segment ~dir ~epoch ~start_index records =
  let w = Wal.open_append ~dir ~epoch ~start_index in
  List.iter (Wal.append w) records;
  Wal.close w;
  Wal.segment_path ~dir ~epoch

let test_wal_roundtrip () =
  let dir = tmp_dir () in
  let path = write_segment ~dir ~epoch:0 ~start_index:0 sample_records in
  match Wal.read_segment path with
  | Ok rr ->
    Alcotest.(check int) "start index" 0 rr.Wal.rr_start_index;
    Alcotest.(check int) "record count" (List.length sample_records)
      (List.length rr.Wal.rr_records);
    Alcotest.(check bool) "clean" true (rr.Wal.rr_torn = None);
    List.iter2
      (fun a b ->
        Alcotest.(check bool) "record survives" true (Record.equal a b))
      sample_records rr.Wal.rr_records
  | Error e -> Alcotest.fail e

let test_wal_append_resumes_existing_segment () =
  (* Reopening a segment must append after the existing frames, not
     rewrite them. *)
  let dir = tmp_dir () in
  let first, rest = (List.hd sample_records, List.tl sample_records) in
  let _ = write_segment ~dir ~epoch:2 ~start_index:9 [ first ] in
  let path = write_segment ~dir ~epoch:2 ~start_index:9 rest in
  match Wal.read_segment path with
  | Ok rr ->
    Alcotest.(check int) "start preserved" 9 rr.Wal.rr_start_index;
    Alcotest.(check int) "all records" (List.length sample_records)
      (List.length rr.Wal.rr_records)
  | Error e -> Alcotest.fail e

let test_wal_torn_tail_repair () =
  let dir = tmp_dir () in
  let path = write_segment ~dir ~epoch:0 ~start_index:0 sample_records in
  Torn.apply path Faults.Fault_plan.Truncated_tail;
  (match Wal.read_segment path with
  | Ok rr ->
    Alcotest.(check bool) "torn reported" true (rr.Wal.rr_torn <> None);
    Alcotest.(check int) "last record lost"
      (List.length sample_records - 1)
      (List.length rr.Wal.rr_records);
    Wal.repair path rr
  | Error e -> Alcotest.fail e);
  match Wal.read_segment path with
  | Ok rr ->
    Alcotest.(check bool) "clean after repair" true (rr.Wal.rr_torn = None);
    Alcotest.(check int) "prefix kept"
      (List.length sample_records - 1)
      (List.length rr.Wal.rr_records)
  | Error e -> Alcotest.fail ("after repair: " ^ e)

let test_wal_bit_flip_stops_at_flip () =
  let dir = tmp_dir () in
  let path = write_segment ~dir ~epoch:0 ~start_index:0 sample_records in
  Torn.apply path Faults.Fault_plan.Bit_flip;
  match Wal.read_segment path with
  | Ok rr ->
    Alcotest.(check bool) "flip detected" true (rr.Wal.rr_torn <> None);
    Alcotest.(check bool) "only a prefix survives" true
      (List.length rr.Wal.rr_records < List.length sample_records)
  | Error _ ->
    (* The flip landed in the header: equally a detection. *)
    ()

(* ------------------------------------------------------------------ *)
(* Recovery scan                                                       *)
(* ------------------------------------------------------------------ *)

let test_recovery_fresh_dir_is_clean () =
  let dir = tmp_dir () in
  let r = Recovery.scan ~dir in
  Alcotest.(check bool) "clean" true (Recovery.clean r);
  Alcotest.(check (list (pair string string))) "no notes" [] (Recovery.notes r)

let test_recovery_rejects_sectionless_snapshot () =
  (* A structurally valid file whose state sections don't decode through
     the typed codecs must be rejected, leaving a genesis start. *)
  let dir = tmp_dir () in
  let _ =
    Snapshot.write ~dir
      { Snapshot.meta = { Snapshot.epoch = 2; records_before = 1 };
        sections = [] }
  in
  let r = Recovery.scan ~dir in
  Alcotest.(check bool) "not chosen" true (r.Recovery.chosen = None);
  Alcotest.(check int) "rejected" 1 (List.length r.Recovery.rejected)

let test_recovery_drops_segment_past_gap () =
  let dir = tmp_dir () in
  let _ = write_segment ~dir ~epoch:0 ~start_index:0 [ List.hd sample_records ] in
  (* start_index 5 leaves records 1..4 nowhere on disk. *)
  let orphan = write_segment ~dir ~epoch:2 ~start_index:5 (List.tl sample_records) in
  let r = Recovery.scan ~dir in
  Alcotest.(check int) "only the anchored prefix" 1 (Array.length r.Recovery.records);
  Alcotest.(check int) "orphan dropped" 1 (List.length r.Recovery.dropped);
  Alcotest.(check bool) "orphan deleted from disk" false (Sys.file_exists orphan)

(* ------------------------------------------------------------------ *)
(* Sessions over real runs                                             *)
(* ------------------------------------------------------------------ *)

let session_cfg =
  { Ammboost.Config.default with
    Ammboost.Config.epochs = 3;
    daily_volume = 20_000;
    users = 8;
    miners = 20;
    committee_size = 7;
    max_faulty = 2;
    seed = "durable-session-tests" }

let durable_run ?armed_after ~dir cfg =
  let s = Session.open_ ?armed_after ~dir ~snapshot_every:2 () in
  let r = Ammboost.System.run ~durable:s cfg in
  (r, s)

let stat stats name = Option.value ~default:0 (List.assoc_opt name stats)

let test_session_rerun_verifies_everything () =
  let dir = tmp_dir () in
  let r1, _ = durable_run ~dir session_cfg in
  let appended = stat r1.Ammboost.System.durability "durability.records_appended" in
  Alcotest.(check bool) "first run appends" true (appended > 0);
  (* Identical re-execution over the same directory: every record
     verifies against the WAL, nothing new is logged, every snapshot
     byte-matches. *)
  let r2, s2 = durable_run ~dir session_cfg in
  Alcotest.(check bool) "resumed" true (Session.resumed s2);
  let d = r2.Ammboost.System.durability in
  Alcotest.(check int) "nothing appended" 0 (stat d "durability.records_appended");
  Alcotest.(check bool) "snapshots verified" true
    (stat d "durability.snapshots_verified" > 0);
  Alcotest.(check int) "no corruption seen" 0
    (stat d "durability.snapshots_rejected" + stat d "durability.wal_repaired"
    + stat d "durability.wal_dropped");
  Alcotest.(check int) "same records overall"
    (stat r1.Ammboost.System.durability "durability.records_appended")
    (stat d "durability.records_replayed" + stat d "durability.records_skipped")

let test_session_divergence_aborts () =
  (* A different run over the same directory contradicts the recovered
     WAL byte-for-byte and must abort, not silently re-log. *)
  let dir = tmp_dir () in
  let _ = durable_run ~dir session_cfg in
  let diverging =
    { session_cfg with Ammboost.Config.seed = "a-different-history" }
  in
  match durable_run ~dir diverging with
  | exception Session.Divergence _ -> ()
  | _ -> Alcotest.fail "divergent re-execution accepted"

let test_session_crash_resume_completes () =
  (* A scripted hard death mid-run, then a resume with the crash point
     disarmed: the resumed run must finish and match an uninterrupted
     run's results. *)
  let dir = tmp_dir () in
  let cfg =
    { session_cfg with
      Ammboost.Config.faults =
        { Faults.Fault_plan.none with
          Faults.Fault_plan.durability =
            { Faults.Fault_plan.crash_rate = 0.0;
              torn_write_rate = 1.0;
              crash_script = [ (1, 10) ] } } }
  in
  (match durable_run ~dir cfg with
  | exception Session.Crashed { epoch; round } ->
    Alcotest.(check (pair int int)) "died at the scripted point" (1, 10)
      (epoch, round)
  | _ -> Alcotest.fail "scripted crash did not fire");
  let r, _ = durable_run ~armed_after:(1, 10) ~dir cfg in
  let clean_dir = tmp_dir () in
  let reference, _ = durable_run ~dir:clean_dir session_cfg in
  Alcotest.(check int) "processed as if never killed"
    reference.Ammboost.System.processed r.Ammboost.System.processed;
  Alcotest.(check int) "synced as if never killed"
    reference.Ammboost.System.sync_count r.Ammboost.System.sync_count;
  Alcotest.(check string) "same final mode"
    reference.Ammboost.System.final_mode r.Ammboost.System.final_mode

let test_session_falls_back_past_corrupt_snapshot () =
  (* Corrupt the newest snapshot of a completed run: the rescan must
     fall back to the previous valid one, and a resume must heal the
     corrupt file and end in the same state. *)
  let dir = tmp_dir () in
  (* Enough epochs for two snapshots to survive the retention window. *)
  let cfg = { session_cfg with Ammboost.Config.epochs = 5 } in
  let _ = durable_run ~dir cfg in
  (match List.rev (Snapshot.list ~dir) with
  | (newest, path) :: (older, _) :: _ ->
    Torn.apply path Faults.Fault_plan.Bit_flip;
    let r = Recovery.scan ~dir in
    (match r.Recovery.chosen with
    | Some (epoch, _) ->
      Alcotest.(check int) "fell back to the previous snapshot" older epoch;
      Alcotest.(check bool) "older than the corrupt one" true (epoch < newest)
    | None -> Alcotest.fail "no snapshot accepted");
    Alcotest.(check int) "corrupt newest rejected" 1
      (List.length r.Recovery.rejected)
  | _ -> Alcotest.fail "run left fewer than two snapshots");
  let r, _ = durable_run ~dir cfg in
  let d = r.Ammboost.System.durability in
  Alcotest.(check int) "rejected on resume too" 1
    (stat d "durability.snapshots_rejected");
  Alcotest.(check bool) "healed" true (stat d "durability.snapshots_healed" >= 1)

let () =
  Alcotest.run "durable"
    [ ( "crc32",
        [ Alcotest.test_case "vectors" `Quick test_crc_vectors;
          Alcotest.test_case "incremental" `Quick test_crc_incremental ] );
      ( "wire",
        [ Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "malformed" `Quick test_wire_malformed ] );
      ( "record",
        [ Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "garbage" `Quick test_record_rejects_garbage ] );
      ( "snapshot",
        [ Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "torn modes detected" `Quick
            test_snapshot_detects_every_torn_mode ] );
      ( "wal",
        [ Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "reopen appends" `Quick
            test_wal_append_resumes_existing_segment;
          Alcotest.test_case "torn tail repair" `Quick test_wal_torn_tail_repair;
          Alcotest.test_case "bit flip" `Quick test_wal_bit_flip_stops_at_flip ] );
      ( "recovery",
        [ Alcotest.test_case "fresh dir" `Quick test_recovery_fresh_dir_is_clean;
          Alcotest.test_case "sectionless rejected" `Quick
            test_recovery_rejects_sectionless_snapshot;
          Alcotest.test_case "gap drops segment" `Quick
            test_recovery_drops_segment_past_gap ] );
      ( "session",
        [ Alcotest.test_case "rerun verifies" `Slow
            test_session_rerun_verifies_everything;
          Alcotest.test_case "divergence aborts" `Slow
            test_session_divergence_aborts;
          Alcotest.test_case "crash resume" `Slow
            test_session_crash_resume_completes;
          Alcotest.test_case "snapshot fallback" `Slow
            test_session_falls_back_past_corrupt_snapshot ] ) ]
