(* The sidechain: dual deposit tracking, the binary codec, meta/summary
   blocks with pruning, and the transaction processor with its Fig. 5
   summary rules — including the conservation property that TokenBank
   enforces at sync time. *)

module U256 = Amm_math.U256
module Address = Chain.Address
module Tx = Chain.Tx
module Position_id = Chain.Ids.Position_id
open Sidechain

let u = U256.of_string
let check_u256 = Alcotest.testable U256.pp U256.equal
let one_e18 = u "1000000000000000000"
let one_e21 = u "1000000000000000000000"
let one_e24 = u "1000000000000000000000000"

let alice = Address.of_label "alice"
let bob = Address.of_label "bob"

let dummy_pk =
  let rng = Amm_crypto.Rng.create "sidechain-tests" in
  snd (Amm_crypto.Bls.keygen rng)

(* ------------------------------------------------------------------ *)
(* Deposits                                                            *)
(* ------------------------------------------------------------------ *)

let deposits () =
  Deposits.create ~snapshot:[ (alice, (one_e18, one_e18)); (bob, (one_e21, U256.zero)) ]

let test_deposits_consume_main_first () =
  let d = deposits () in
  Deposits.credit_side d alice ~amount0:one_e18 ~amount1:U256.zero;
  (match Deposits.consume d alice ~amount0:(U256.mul one_e18 U256.two) ~amount1:U256.zero with
  | Ok c ->
    Alcotest.check check_u256 "main drained first" one_e18 c.Deposits.from_main0;
    Alcotest.check check_u256 "side covers rest" one_e18 c.Deposits.from_side0
  | Error e -> Alcotest.fail e);
  Alcotest.check check_u256 "payin = initial main consumed" one_e18
    (fst (Deposits.payin d alice));
  Alcotest.check check_u256 "payout = remaining side" U256.zero
    (fst (Deposits.payout d alice))

let test_deposits_atomic_failure () =
  let d = deposits () in
  (* token1 is uncovered: nothing must change, including token0. *)
  (match Deposits.consume d alice ~amount0:one_e18 ~amount1:(U256.mul one_e18 U256.two) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "uncovered consume accepted");
  Alcotest.check check_u256 "token0 untouched" one_e18 (fst (Deposits.available d alice))

let test_deposits_refund () =
  let d = deposits () in
  (match Deposits.consume d alice ~amount0:one_e18 ~amount1:U256.zero with
  | Ok c ->
    Deposits.refund d alice c;
    Alcotest.check check_u256 "restored" one_e18 (fst (Deposits.available d alice));
    Alcotest.check check_u256 "payin back to zero" U256.zero (fst (Deposits.payin d alice))
  | Error e -> Alcotest.fail e)

let test_deposits_unknown_user_empty () =
  let d = deposits () in
  let stranger = Address.of_label "stranger" in
  Alcotest.check check_u256 "no balance" U256.zero (fst (Deposits.available d stranger));
  match Deposits.consume d stranger ~amount0:U256.one ~amount1:U256.zero with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stranger spent"

(* The incrementally-maintained sorted index must agree with a plain
   sort of every user ever touched, across any interleaving of a
   sorted epoch-start snapshot with mid-epoch account creations. *)
let users_sorted_prop =
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 60) (int_range 0 199))
        (list_size (int_range 0 60) (int_range 0 199)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"sorted index = sort oracle" gen
       (fun (snapshot_ids, mid_ids) ->
         let addr i = Address.of_label (Printf.sprintf "qc-user-%03d" i) in
         let snapshot_users =
           List.sort_uniq Address.compare (List.map addr snapshot_ids)
         in
         let d =
           Deposits.create
             ~snapshot:(List.map (fun u -> (u, (one_e18, U256.zero))) snapshot_users)
         in
         (* Mid-epoch accounts appear out of order, via sidechain credits
            and balance probes on fresh addresses. *)
         List.iteri
           (fun k i ->
             let u = addr i in
             if k mod 2 = 0 then
               Deposits.credit_side d u ~amount0:U256.one ~amount1:U256.zero
             else ignore (Deposits.available d u))
           mid_ids;
         let oracle =
           List.sort_uniq Address.compare
             (snapshot_users @ List.map addr mid_ids)
         in
         let got = Deposits.users_sorted d in
         List.length got = List.length oracle
         && List.for_all2 Address.equal got oracle))

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_entry_sizes () =
  let user_entry =
    { Tokenbank.Sync_payload.user = alice; payin0 = one_e18; payin1 = U256.zero;
      payout0 = U256.zero; payout1 = one_e18 }
  in
  Alcotest.(check int) "user entry 97 B (Table 7)" 97
    (Bytes.length (Codec.encode_user_entry user_entry));
  let position_entry =
    { Tokenbank.Sync_payload.pos_id = Position_id.of_hash (Amm_crypto.Sha256.digest_string "p");
      owner = alice; lower_tick = -887220; upper_tick = 887220; liquidity = one_e21;
      amount0 = one_e24; amount1 = one_e24; fees0 = one_e18; fees1 = U256.zero;
      deleted = false }
  in
  Alcotest.(check int) "position entry 215 B (Table 7)" 215
    (Bytes.length (Codec.encode_position_entry position_entry))

let test_codec_overflow_guard () =
  let too_big =
    { Tokenbank.Sync_payload.user = alice; payin0 = U256.shift_left U256.one 200;
      payin1 = U256.zero; payout0 = U256.zero; payout1 = U256.zero }
  in
  Alcotest.check_raises "amount beyond 128 bits"
    (Invalid_argument "Codec.amount16: needs more than 128 bits") (fun () ->
      ignore (Codec.encode_user_entry too_big))

(* ------------------------------------------------------------------ *)
(* Blocks and pruning                                                  *)
(* ------------------------------------------------------------------ *)

let dummy_payload ~epoch =
  { Tokenbank.Sync_payload.epoch; pool = 0; pool_balance0 = U256.zero;
    pool_balance1 = U256.zero; users = []; positions = [];
    next_committee_vk = dummy_pk }

let make_tx ~round payload =
  Tx.create ~issuer:alice ~issuer_pk:dummy_pk ~pool:0 ~issued_round:round ~issued_at:0.0
    payload

let some_swap ~round =
  make_tx ~round
    (Tx.Swap
       { zero_for_one = true; kind = Tx.Exact_input; amount_specified = one_e18;
         amount_limit = U256.zero; sqrt_price_limit = U256.zero; deadline = round + 100 })

let test_blocks_prune_epoch () =
  let chain = Blocks.create ~mainchain_ref:(Bytes.make 32 'x') in
  for epoch = 0 to 2 do
    for r = 0 to 4 do
      Blocks.append_meta chain
        (Blocks.make_meta ~epoch ~round:((epoch * 5) + r) ~view_changes:0
           [ some_swap ~round:r ])
    done;
    Blocks.append_summary chain
      { Blocks.s_epoch = epoch; s_payload = dummy_payload ~epoch;
        s_size = Codec.summary_block_size (dummy_payload ~epoch);
        s_rounds_covered = (epoch * 5, (epoch * 5) + 4) }
  done;
  let before = Blocks.stored_bytes chain in
  let reclaimed = Blocks.prune_epoch chain ~epoch:0 in
  Alcotest.(check bool) "bytes reclaimed" true (reclaimed > 0);
  Alcotest.(check int) "stored drops" (before - reclaimed) (Blocks.stored_bytes chain);
  Alcotest.(check int) "cumulative unchanged" before (Blocks.cumulative_bytes chain);
  Alcotest.(check int) "meta blocks left" 10 (Blocks.meta_count_stored chain);
  (* Summaries are permanent. *)
  Alcotest.(check int) "summaries intact" 3 (List.length (Blocks.summaries chain));
  (* Pruning the same epoch again is a no-op. *)
  Alcotest.(check int) "idempotent" 0 (Blocks.prune_epoch chain ~epoch:0)

let test_meta_block_inclusion_proofs () =
  let txs = List.init 7 (fun i -> some_swap ~round:i) in
  let meta = Blocks.make_meta ~epoch:0 ~round:0 ~view_changes:0 txs in
  List.iter
    (fun (tx : Tx.t) ->
      match Blocks.prove_inclusion meta tx.Tx.id with
      | Some proof ->
        Alcotest.(check bool) "proof verifies" true
          (Blocks.verify_inclusion meta tx.Tx.id proof)
      | None -> Alcotest.fail "missing proof")
    txs;
  (* A transaction from another block has no proof, and a stolen proof
     fails verification. *)
  let foreign = some_swap ~round:99 in
  Alcotest.(check bool) "foreign tx unprovable" true
    (Blocks.prove_inclusion meta foreign.Tx.id = None);
  match Blocks.prove_inclusion meta (List.hd txs).Tx.id with
  | Some proof ->
    Alcotest.(check bool) "stolen proof fails" false
      (Blocks.verify_inclusion meta foreign.Tx.id proof)
  | None -> Alcotest.fail "missing proof"

let test_meta_block_size_accounts_txs () =
  let tx = some_swap ~round:0 in
  let meta = Blocks.make_meta ~epoch:0 ~round:0 ~view_changes:0 [ tx; tx ] in
  Alcotest.(check int) "header + wire bytes"
    (Blocks.meta_header_size + (2 * tx.Tx.wire_size))
    meta.Blocks.m_size

(* ------------------------------------------------------------------ *)
(* Processor                                                           *)
(* ------------------------------------------------------------------ *)

let fresh_processor ?(snapshot_deposits = [ (alice, (one_e24, one_e24)); (bob, (one_e24, one_e24)) ])
    () =
  let pool =
    Uniswap.Pool.create ~pool_id:0
      ~token0:(Chain.Token.make ~id:0 ~symbol:"TKA")
      ~token1:(Chain.Token.make ~id:1 ~symbol:"TKB")
      ~fee_pips:3000 ~tick_spacing:60 ~sqrt_price:Amm_math.Q96.q96
  in
  let snapshot =
    { Tokenbank.Token_bank.snap_epoch = 0; snap_deposits = snapshot_deposits;
      snap_pool_balances = [ (0, (U256.zero, U256.zero)) ]; snap_positions = [] }
  in
  Processor.begin_epoch ~pool ~snapshot ~verify_signatures:false ()

let seed_liquidity processor =
  let tx =
    make_tx ~round:0
      (Tx.Mint
         { lower_tick = -887220; upper_tick = 887220; amount0_desired = one_e21;
           amount1_desired = one_e21; target = Tx.New_position })
  in
  match Processor.process processor ~current_round:0 tx with
  | Ok () -> Uniswap.Position.derive_id ~minter:alice ~tx_id:tx.Tx.id
  | Error e -> failwith e

let test_processor_swap_updates_deposits () =
  let p = fresh_processor () in
  let _ = seed_liquidity p in
  let swap = some_swap ~round:1 in
  (match Processor.process p ~current_round:1 swap with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let payin0, _ = Deposits.payin (Processor.deposits p) alice in
  let _, payout1 = Deposits.payout (Processor.deposits p) alice in
  Alcotest.(check bool) "payin includes swap input" true (U256.ge payin0 one_e18);
  Alcotest.(check bool) "payout holds swap output" true (U256.gt payout1 U256.zero)

let test_processor_deadline () =
  let p = fresh_processor () in
  let _ = seed_liquidity p in
  let swap =
    make_tx ~round:1
      (Tx.Swap
         { zero_for_one = true; kind = Tx.Exact_input; amount_specified = one_e18;
           amount_limit = U256.zero; sqrt_price_limit = U256.zero; deadline = 5 })
  in
  match Processor.process p ~current_round:6 swap with
  | Error "swap: deadline passed" -> ()
  | Error e -> Alcotest.failf "wrong rejection: %s" e
  | Ok () -> Alcotest.fail "expired swap accepted"

let test_processor_uncovered_swap_rejected () =
  let p = fresh_processor ~snapshot_deposits:[ (alice, (one_e24, one_e24)) ] () in
  let _ = seed_liquidity p in
  (* Bob never deposited. *)
  let swap =
    Tx.create ~issuer:bob ~issuer_pk:dummy_pk ~pool:0 ~issued_round:1 ~issued_at:0.0
      (Tx.Swap
         { zero_for_one = true; kind = Tx.Exact_input; amount_specified = one_e18;
           amount_limit = U256.zero; sqrt_price_limit = U256.zero; deadline = 100 })
  in
  match Processor.process p ~current_round:1 swap with
  | Error "swap: deposit not covered" -> ()
  | Error e -> Alcotest.failf "wrong rejection: %s" e
  | Ok () -> Alcotest.fail "uncovered swap accepted"

let test_processor_sidechain_credit_spendable () =
  (* A user whose mainchain deposit only covers one swap can keep trading
     with the sidechain credit from the output (§4.2). *)
  let p =
    fresh_processor
      ~snapshot_deposits:[ (alice, (one_e24, one_e24)); (bob, (one_e18, U256.zero)) ] ()
  in
  let _ = seed_liquidity p in
  let swap_b zero_for_one amount =
    Tx.create ~issuer:bob ~issuer_pk:dummy_pk ~pool:0 ~issued_round:1 ~issued_at:0.0
      (Tx.Swap
         { zero_for_one; kind = Tx.Exact_input; amount_specified = amount;
           amount_limit = U256.zero; sqrt_price_limit = U256.zero; deadline = 100 })
  in
  (match Processor.process p ~current_round:1 (swap_b true (u "500000000000000000")) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "first swap: %s" e);
  (* Bob now holds ~0.4985e18 of sidechain credit in token1 (fee taken);
     spending a bit less than the output must succeed. *)
  match Processor.process p ~current_round:1 (swap_b false (u "400000000000000000")) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sidechain credit not spendable: %s" e

let test_processor_mint_burn_collect_cycle () =
  let p = fresh_processor () in
  let _genesis = seed_liquidity p in
  let mint =
    make_tx ~round:1
      (Tx.Mint
         { lower_tick = -600; upper_tick = 600; amount0_desired = one_e18;
           amount1_desired = one_e18; target = Tx.New_position })
  in
  (match Processor.process p ~current_round:1 mint with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mint: %s" e);
  let pid = Uniswap.Position.derive_id ~minter:alice ~tx_id:mint.Tx.id in
  Alcotest.(check bool) "position exists" true
    (Uniswap.Pool.find_position (Processor.pool p) pid <> None);
  (* Swap to accrue fees, then collect. *)
  (match Processor.process p ~current_round:2 (some_swap ~round:2) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "swap: %s" e);
  let collect =
    make_tx ~round:3
      (Tx.Collect
         { collect_position = pid; fees0_requested = U256.max_value;
           fees1_requested = U256.max_value })
  in
  (match Processor.process p ~current_round:3 collect with
  | Ok () -> ()
  | Error e -> Alcotest.failf "collect: %s" e);
  (* Full burn deletes the position and pays principal plus residual fees. *)
  let payout_before = Deposits.payout (Processor.deposits p) alice in
  let burn =
    make_tx ~round:4
      (Tx.Burn
         { burn_position = pid; amount0_requested = U256.max_value;
           amount1_requested = U256.max_value })
  in
  (match Processor.process p ~current_round:4 burn with
  | Ok () -> ()
  | Error e -> Alcotest.failf "burn: %s" e);
  Alcotest.(check bool) "position deleted" true
    (Uniswap.Pool.find_position (Processor.pool p) pid = None);
  let payout_after = Deposits.payout (Processor.deposits p) alice in
  Alcotest.(check bool) "burn proceeds in payout" true
    (U256.gt (fst payout_after) (fst payout_before));
  let stats = Processor.stats p in
  Alcotest.(check int) "all processed" 5 stats.Processor.processed;
  Alcotest.(check int) "one burn" 1 stats.Processor.burns

let test_processor_burn_foreign_position_rejected () =
  let p = fresh_processor () in
  let pid = seed_liquidity p in
  let burn =
    Tx.create ~issuer:bob ~issuer_pk:dummy_pk ~pool:0 ~issued_round:1 ~issued_at:0.0
      (Tx.Burn
         { burn_position = pid; amount0_requested = U256.one; amount1_requested = U256.one })
  in
  match Processor.process p ~current_round:1 burn with
  | Error _ ->
    Alcotest.(check int) "counted as rejection" 1 (Processor.stats p).Processor.rejected
  | Ok () -> Alcotest.fail "foreign burn accepted"

let test_processor_signature_policy () =
  let pool =
    Uniswap.Pool.create ~pool_id:0
      ~token0:(Chain.Token.make ~id:0 ~symbol:"TKA")
      ~token1:(Chain.Token.make ~id:1 ~symbol:"TKB")
      ~fee_pips:3000 ~tick_spacing:60 ~sqrt_price:Amm_math.Q96.q96
  in
  let rng = Amm_crypto.Rng.create "sig-policy" in
  let sk, pk = Amm_crypto.Bls.keygen rng in
  let addr = Address.of_public_key pk in
  let snapshot =
    { Tokenbank.Token_bank.snap_epoch = 0; snap_deposits = [ (addr, (one_e24, one_e24)) ];
      snap_pool_balances = [ (0, (U256.zero, U256.zero)) ]; snap_positions = [] }
  in
  let p = Processor.begin_epoch ~pool ~snapshot ~verify_signatures:true () in
  let mint payload_sign =
    Tx.create ?sign:payload_sign ~issuer:addr ~issuer_pk:pk ~pool:0 ~issued_round:0
      ~issued_at:0.0
      (Tx.Mint
         { lower_tick = -887220; upper_tick = 887220; amount0_desired = one_e21;
           amount1_desired = one_e21; target = Tx.New_position })
  in
  (match Processor.process p ~current_round:0 (mint None) with
  | Error "invalid signature" -> ()
  | Error e -> Alcotest.failf "wrong rejection: %s" e
  | Ok () -> Alcotest.fail "unsigned accepted under verify_signatures");
  match Processor.process p ~current_round:0 (mint (Some sk)) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "signed rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Summary construction and conservation                               *)
(* ------------------------------------------------------------------ *)

let conservation_holds (payload : Tokenbank.Sync_payload.t) ~initial0 ~initial1 =
  let sum f =
    List.fold_left (fun acc e -> U256.add acc (f e)) U256.zero payload.Tokenbank.Sync_payload.users
  in
  let in0 = sum (fun e -> e.Tokenbank.Sync_payload.payin0) in
  let in1 = sum (fun e -> e.Tokenbank.Sync_payload.payin1) in
  let out0 = sum (fun e -> e.Tokenbank.Sync_payload.payout0) in
  let out1 = sum (fun e -> e.Tokenbank.Sync_payload.payout1) in
  U256.equal payload.Tokenbank.Sync_payload.pool_balance0
    (U256.sub (U256.add initial0 in0) out0)
  && U256.equal payload.Tokenbank.Sync_payload.pool_balance1
       (U256.sub (U256.add initial1 in1) out1)

let test_summary_conservation_simple () =
  let p = fresh_processor () in
  let _ = seed_liquidity p in
  List.iter
    (fun r ->
      match Processor.process p ~current_round:r (some_swap ~round:r) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ 1; 2; 3 ];
  let payload = Processor.build_payload p ~epoch:0 ~next_committee_vk:dummy_pk in
  Alcotest.(check bool) "conservation" true
    (conservation_holds payload ~initial0:U256.zero ~initial1:U256.zero);
  (* Delta semantics: bob deposited but never traded, so only alice —
     the one account with nonzero flows — appears in the summary. *)
  Alcotest.(check int) "one entry per active depositor" 1
    (List.length payload.Tokenbank.Sync_payload.users)

(* Shared driver for the random-op properties below: applies a generated
   op soup deterministically, numbering rounds from [round0]. *)
let apply_random_ops ?(round0 = 1) p ops =
  let minted = ref [] in
  List.iteri
    (fun i (op, magnitude, flag) ->
      let round = round0 + i in
               let amount = U256.mul (u "1000000000000000") (U256.of_int magnitude) in
               let issuer, issuer_pk = if flag then (alice, dummy_pk) else (bob, dummy_pk) in
               let mk payload =
                 Tx.create ~issuer ~issuer_pk ~pool:0 ~issued_round:round ~issued_at:0.0
                   payload
               in
               let tx =
                 match op with
                 | 0 | 1 ->
                   mk
                     (Tx.Swap
                        { zero_for_one = flag; kind = (if op = 0 then Tx.Exact_input else Tx.Exact_output);
                          amount_specified = amount;
                          amount_limit = (if op = 0 then U256.zero else U256.mul amount (U256.of_int 3));
                          sqrt_price_limit = U256.zero; deadline = round + 100 })
                 | 2 ->
                   mk
                     (Tx.Mint
                        { lower_tick = -1200; upper_tick = 1200; amount0_desired = amount;
                          amount1_desired = amount; target = Tx.New_position })
                 | 3 ->
                   (match !minted with
                   | (owner, pid) :: _ when Address.equal owner issuer ->
                     mk
                       (Tx.Burn
                          { burn_position = pid; amount0_requested = U256.max_value;
                            amount1_requested = U256.max_value })
                   | _ ->
                     mk
                       (Tx.Burn
                          { burn_position = Position_id.of_hash (Amm_crypto.Sha256.digest_string "none");
                            amount0_requested = amount; amount1_requested = amount }))
                 | _ ->
                   (match !minted with
                   | (_, pid) :: _ ->
                     mk
                       (Tx.Collect
                          { collect_position = pid; fees0_requested = U256.max_value;
                            fees1_requested = U256.max_value })
                   | [] ->
                     mk
                       (Tx.Collect
                          { collect_position = Position_id.of_hash (Amm_crypto.Sha256.digest_string "none");
                            fees0_requested = amount; fees1_requested = amount }))
               in
               (match (op, Processor.process p ~current_round:round tx) with
               | 2, Ok () ->
                 minted := (issuer, Uniswap.Position.derive_id ~minter:issuer ~tx_id:tx.Tx.id) :: !minted
               | 3, Ok () -> (match !minted with _ :: rest -> minted := rest | [] -> ())
               | _ -> ()))
    ops

(* The heavyweight properties: random op soups never violate
   conservation, and the O(Δ) incremental summary builder agrees with
   the full-scan reference byte for byte. *)
let gen_ops =
  QCheck2.Gen.(list_size (int_range 5 50) (triple (int_range 0 4) (int_range 1 500) bool))

let signing_bytes_agree pa pb =
  Bytes.equal (Tokenbank.Sync_payload.signing_bytes pa)
    (Tokenbank.Sync_payload.signing_bytes pb)

let summary_props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:30 ~name:"random epochs conserve tokens" gen_ops
         (fun ops ->
           let p = fresh_processor () in
           let _ = seed_liquidity p in
           apply_random_ops p ops;
           let payload = Processor.build_payload p ~epoch:0 ~next_committee_vk:dummy_pk in
           conservation_holds payload ~initial0:U256.zero ~initial1:U256.zero));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:30
         ~name:"incremental summary = reference across a lagged sync"
         QCheck2.Gen.(pair gen_ops gen_ops)
         (fun (ops1, ops2) ->
           (* Two identical processors walk the same deterministic trace.
              One summarises incrementally (inclusion-time dirty marks
              plus the carry of still-unapplied epochs), the other with
              the O(positions) full scan the auditor uses. The committee
              would sign the same bytes either way. *)
           let make snapshot =
             let pool =
               Uniswap.Pool.create ~pool_id:0
                 ~token0:(Chain.Token.make ~id:0 ~symbol:"TKA")
                 ~token1:(Chain.Token.make ~id:1 ~symbol:"TKB")
                 ~fee_pips:3000 ~tick_spacing:60 ~sqrt_price:Amm_math.Q96.q96
             in
             (pool, Processor.begin_epoch ~pool ~snapshot ~verify_signatures:false ())
           in
           let snapshot0 =
             { Tokenbank.Token_bank.snap_epoch = 0;
               snap_deposits = [ (alice, (one_e24, one_e24)); (bob, (one_e24, one_e24)) ];
               snap_pool_balances = [ (0, (U256.zero, U256.zero)) ]; snap_positions = [] }
           in
           let pool_a, a = make snapshot0 in
           let pool_b, b = make snapshot0 in
           let _ = seed_liquidity a in
           let _ = seed_liquidity b in
           apply_random_ops a ops1;
           apply_random_ops b ops1;
           (* One position far out of range: no epoch-1 fee event marks
              it, so only the carry can keep it in the next summary. *)
           let mint_far p round =
             let tx =
               Tx.create ~issuer:alice ~issuer_pk:dummy_pk ~pool:0 ~issued_round:round
                 ~issued_at:0.0
                 (Tx.Mint
                    { lower_tick = 60000; upper_tick = 61200; amount0_desired = one_e18;
                      amount1_desired = one_e18; target = Tx.New_position })
             in
             match Processor.process p ~current_round:round tx with
             | Ok () -> ()
             | Error e -> failwith e
           in
           let far_round = 1 + List.length ops1 in
           mint_far a far_round;
           mint_far b far_round;
           let pa0 = Processor.build_payload a ~epoch:0 ~next_committee_vk:dummy_pk in
           let pb0 = Processor.build_payload_reference b ~epoch:0 ~next_committee_vk:dummy_pk in
           (* TokenBank lags: epoch 1 starts from the same unsynced
              snapshot, so epoch 0's reported positions ride along as
              carry on the incremental side. *)
           let carry =
             List.map
               (fun (e : Tokenbank.Sync_payload.position_entry) -> e.Tokenbank.Sync_payload.pos_id)
               pa0.Tokenbank.Sync_payload.positions
           in
           let snapshot1 = { snapshot0 with Tokenbank.Token_bank.snap_epoch = 1 } in
           let a1 =
             Processor.begin_epoch ~pool:pool_a ~snapshot:snapshot1 ~carry
               ~verify_signatures:false ()
           in
           let b1 =
             Processor.begin_epoch ~pool:pool_b ~snapshot:snapshot1 ~verify_signatures:false ()
           in
           let round0 = far_round + 1 in
           apply_random_ops ~round0 a1 ops2;
           apply_random_ops ~round0 b1 ops2;
           let pa1 = Processor.build_payload a1 ~epoch:1 ~next_committee_vk:dummy_pk in
           let pb1 = Processor.build_payload_reference b1 ~epoch:1 ~next_committee_vk:dummy_pk in
           signing_bytes_agree pa0 pb0 && signing_bytes_agree pa1 pb1));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:30
         ~name:"delta user entries = full-scan reference across a lagged sync"
         QCheck2.Gen.(pair gen_ops gen_ops)
         (fun (ops1, ops2) ->
           (* The user-side mirror of the position oracle above: the
              incremental builder works off the deposit table's
              balance-mutation candidate marks plus the user carry of
              still-unapplied summaries; the reference full-scans the
              sorted account index. Same bytes either way — including
              carried users who went idle (their zero entries must be
              filtered, not emitted) and carried users evicted from the
              deposit snapshot entirely (they must be skipped, not
              interned as fresh zero rows). *)
           let make snapshot =
             let pool =
               Uniswap.Pool.create ~pool_id:0
                 ~token0:(Chain.Token.make ~id:0 ~symbol:"TKA")
                 ~token1:(Chain.Token.make ~id:1 ~symbol:"TKB")
                 ~fee_pips:3000 ~tick_spacing:60 ~sqrt_price:Amm_math.Q96.q96
             in
             (pool, Processor.begin_epoch ~pool ~snapshot ~verify_signatures:false ())
           in
           let snapshot0 =
             { Tokenbank.Token_bank.snap_epoch = 0;
               snap_deposits = [ (alice, (one_e24, one_e24)); (bob, (one_e24, one_e24)) ];
               snap_pool_balances = [ (0, (U256.zero, U256.zero)) ]; snap_positions = [] }
           in
           let pool_a, a = make snapshot0 in
           let pool_b, b = make snapshot0 in
           let _ = seed_liquidity a in
           let _ = seed_liquidity b in
           apply_random_ops a ops1;
           apply_random_ops b ops1;
           let pa0 = Processor.build_payload a ~epoch:0 ~next_committee_vk:dummy_pk in
           let pb0 = Processor.build_payload_reference b ~epoch:0 ~next_committee_vk:dummy_pk in
           (* TokenBank lags: epoch 1 starts from the same unsynced
              deposit snapshot, and epoch 0's listed users ride along as
              carry on the incremental side — plus a user the next
              snapshot evicted (exited mid-lag) who has no row at all. *)
           let evicted = Address.of_label "evicted-mid-lag" in
           let user_carry =
             evicted
             :: List.map
                  (fun (u : Tokenbank.Sync_payload.user_entry) -> u.Tokenbank.Sync_payload.user)
                  pa0.Tokenbank.Sync_payload.users
           in
           let snapshot1 = { snapshot0 with Tokenbank.Token_bank.snap_epoch = 1 } in
           let a1 =
             Processor.begin_epoch ~pool:pool_a ~snapshot:snapshot1 ~user_carry
               ~verify_signatures:false ()
           in
           let b1 =
             Processor.begin_epoch ~pool:pool_b ~snapshot:snapshot1 ~verify_signatures:false ()
           in
           (* Epoch 1 keeps only alice active: bob's carried entry (if
              epoch 0 listed him) diffs back to zero and must vanish. *)
           let round0 = 1 + List.length ops1 in
           let alice_only =
             List.map (fun (op, mag, _flag) -> (op, mag, true)) ops2
           in
           apply_random_ops ~round0 a1 alice_only;
           apply_random_ops ~round0 b1 alice_only;
           let pa1 = Processor.build_payload a1 ~epoch:1 ~next_committee_vk:dummy_pk in
           let pb1 = Processor.build_payload_reference b1 ~epoch:1 ~next_committee_vk:dummy_pk in
           (* The reference never sees the carry, so agreement also
              proves carried-but-idle users were filtered out. *)
           signing_bytes_agree pa0 pb0
           && signing_bytes_agree pa1 pb1
           && List.for_all
                (fun (u : Tokenbank.Sync_payload.user_entry) ->
                  not (Address.equal u.Tokenbank.Sync_payload.user evicted))
                pa1.Tokenbank.Sync_payload.users)) ]

let test_summary_positions_reported () =
  let p = fresh_processor () in
  let genesis = seed_liquidity p in
  ignore genesis;
  let mint =
    make_tx ~round:1
      (Tx.Mint
         { lower_tick = -600; upper_tick = 600; amount0_desired = one_e18;
           amount1_desired = one_e18; target = Tx.New_position })
  in
  (match Processor.process p ~current_round:1 mint with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let payload = Processor.build_payload p ~epoch:0 ~next_committee_vk:dummy_pk in
  (* Both the genesis position and the new one are fresh this epoch. *)
  Alcotest.(check int) "two position entries" 2
    (List.length payload.Tokenbank.Sync_payload.positions);
  List.iter
    (fun (e : Tokenbank.Sync_payload.position_entry) ->
      Alcotest.(check bool) "live entries" false e.Tokenbank.Sync_payload.deleted)
    payload.Tokenbank.Sync_payload.positions

let test_summary_reports_deletion () =
  let p = fresh_processor () in
  let _ = seed_liquidity p in
  let mint =
    make_tx ~round:1
      (Tx.Mint
         { lower_tick = -600; upper_tick = 600; amount0_desired = one_e18;
           amount1_desired = one_e18; target = Tx.New_position })
  in
  ignore (Processor.process p ~current_round:1 mint);
  let pid = Uniswap.Position.derive_id ~minter:alice ~tx_id:mint.Tx.id in
  let burn =
    make_tx ~round:2
      (Tx.Burn
         { burn_position = pid; amount0_requested = U256.max_value;
           amount1_requested = U256.max_value })
  in
  ignore (Processor.process p ~current_round:2 burn);
  let payload = Processor.build_payload p ~epoch:0 ~next_committee_vk:dummy_pk in
  (* A position minted and fully burned within one epoch never reaches
     TokenBank state; reporting it as deleted is harmless but it must not
     be reported as live. *)
  List.iter
    (fun (e : Tokenbank.Sync_payload.position_entry) ->
      if Position_id.equal e.Tokenbank.Sync_payload.pos_id pid then
        Alcotest.(check bool) "reported deleted" true e.Tokenbank.Sync_payload.deleted)
    payload.Tokenbank.Sync_payload.positions

(* ------------------------------------------------------------------ *)
(* Auditor (public verifiability)                                      *)
(* ------------------------------------------------------------------ *)

let build_epoch_with_metas () =
  (* A processor-run epoch with its meta-blocks, plus the pool clone an
     auditor would hold from the epoch start. *)
  let pool =
    Uniswap.Pool.create ~pool_id:0
      ~token0:(Chain.Token.make ~id:0 ~symbol:"TKA")
      ~token1:(Chain.Token.make ~id:1 ~symbol:"TKB")
      ~fee_pips:3000 ~tick_spacing:60 ~sqrt_price:Amm_math.Q96.q96
  in
  let snapshot =
    { Tokenbank.Token_bank.snap_epoch = 0;
      snap_deposits = [ (alice, (one_e24, one_e24)); (bob, (one_e24, one_e24)) ];
      snap_pool_balances = [ (0, (U256.zero, U256.zero)) ]; snap_positions = [] }
  in
  let pool_at_start = Uniswap.Pool.clone pool in
  let processor = Processor.begin_epoch ~pool ~snapshot ~verify_signatures:false () in
  let mk_round round txs =
    let included =
      List.filter
        (fun tx -> Processor.process processor ~current_round:round tx = Ok ())
        txs
    in
    Blocks.make_meta ~epoch:0 ~round ~view_changes:0 included
  in
  let genesis_mint =
    make_tx ~round:0
      (Tx.Mint
         { lower_tick = -887220; upper_tick = 887220; amount0_desired = one_e21;
           amount1_desired = one_e21; target = Tx.New_position })
  in
  (* Bind rounds sequentially: list literals evaluate right-to-left. *)
  let meta0 = mk_round 0 [ genesis_mint ] in
  let meta1 = mk_round 1 [ some_swap ~round:1; some_swap ~round:1 ] in
  let meta2 =
    mk_round 2
      [ Tx.create ~issuer:bob ~issuer_pk:dummy_pk ~pool:0 ~issued_round:2 ~issued_at:0.0
          (Tx.Swap
             { zero_for_one = false; kind = Tx.Exact_input; amount_specified = one_e18;
               amount_limit = U256.zero; sqrt_price_limit = U256.zero; deadline = 100 }) ]
  in
  let metas = [ meta0; meta1; meta2 ] in
  let payload = Processor.build_payload processor ~epoch:0 ~next_committee_vk:dummy_pk in
  let summary =
    { Blocks.s_epoch = 0; s_payload = payload; s_size = Codec.summary_block_size payload;
      s_rounds_covered = (0, 2) }
  in
  (pool_at_start, snapshot, metas, summary)

let test_auditor_accepts_honest_summary () =
  let pool_at_start, snapshot, metas, summary = build_epoch_with_metas () in
  match Auditor.verify_summary ~pool_at_start ~snapshot ~metas ~summary with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_auditor_rejects_tampered_summary () =
  let pool_at_start, snapshot, metas, summary = build_epoch_with_metas () in
  let tampered_payload =
    { summary.Blocks.s_payload with
      Tokenbank.Sync_payload.pool_balance0 =
        U256.add summary.Blocks.s_payload.Tokenbank.Sync_payload.pool_balance0 U256.one }
  in
  let tampered = { summary with Blocks.s_payload = tampered_payload } in
  match Auditor.verify_summary ~pool_at_start ~snapshot ~metas ~summary:tampered with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tampered summary passed the audit"

let test_auditor_rejects_tampered_meta () =
  let pool_at_start, snapshot, metas, summary = build_epoch_with_metas () in
  (* Drop a meta-block: the replay no longer matches the summary. *)
  let truncated = [ List.hd metas ] in
  match Auditor.verify_summary ~pool_at_start ~snapshot ~metas:truncated ~summary with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing meta-blocks passed the audit"

let test_auditor_replay_does_not_mutate_input_pool () =
  let pool_at_start, snapshot, metas, summary = build_epoch_with_metas () in
  let balance_before = Uniswap.Pool.balance0 pool_at_start in
  ignore (Auditor.verify_summary ~pool_at_start ~snapshot ~metas ~summary);
  Alcotest.check check_u256 "input pool untouched" balance_before
    (Uniswap.Pool.balance0 pool_at_start)

let () =
  Alcotest.run "sidechain"
    [ ( "deposits",
        [ Alcotest.test_case "main first" `Quick test_deposits_consume_main_first;
          Alcotest.test_case "atomic failure" `Quick test_deposits_atomic_failure;
          Alcotest.test_case "refund" `Quick test_deposits_refund;
          Alcotest.test_case "unknown user" `Quick test_deposits_unknown_user_empty;
          users_sorted_prop ] );
      ( "codec",
        [ Alcotest.test_case "entry sizes" `Quick test_codec_entry_sizes;
          Alcotest.test_case "overflow guard" `Quick test_codec_overflow_guard ] );
      ( "blocks",
        [ Alcotest.test_case "prune epoch" `Quick test_blocks_prune_epoch;
          Alcotest.test_case "inclusion proofs" `Quick test_meta_block_inclusion_proofs;
          Alcotest.test_case "meta size" `Quick test_meta_block_size_accounts_txs ] );
      ( "processor",
        [ Alcotest.test_case "swap deposits" `Quick test_processor_swap_updates_deposits;
          Alcotest.test_case "deadline" `Quick test_processor_deadline;
          Alcotest.test_case "uncovered swap" `Quick test_processor_uncovered_swap_rejected;
          Alcotest.test_case "sidechain credit" `Quick test_processor_sidechain_credit_spendable;
          Alcotest.test_case "mint/burn/collect cycle" `Quick
            test_processor_mint_burn_collect_cycle;
          Alcotest.test_case "foreign burn" `Quick test_processor_burn_foreign_position_rejected;
          Alcotest.test_case "signature policy" `Quick test_processor_signature_policy ] );
      ( "auditor",
        [ Alcotest.test_case "accepts honest summary" `Quick test_auditor_accepts_honest_summary;
          Alcotest.test_case "rejects tampered summary" `Quick test_auditor_rejects_tampered_summary;
          Alcotest.test_case "rejects tampered metas" `Quick test_auditor_rejects_tampered_meta;
          Alcotest.test_case "replay is pure" `Quick test_auditor_replay_does_not_mutate_input_pool ] );
      ( "summary",
        [ Alcotest.test_case "conservation simple" `Quick test_summary_conservation_simple;
          Alcotest.test_case "positions reported" `Quick test_summary_positions_reported;
          Alcotest.test_case "deletion reported" `Quick test_summary_reports_deletion ]
        @ summary_props ) ]
