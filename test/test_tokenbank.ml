(* TokenBank: deposits, Sync authentication and application, token
   conservation, the payin-exceeds-deposit rule, mass-sync key chaining,
   flash loans, checkpoint/restore, and the ERC20 + gas substrate. *)

module U256 = Amm_math.U256
module Address = Chain.Address
module Erc20 = Mainchain.Erc20
module Gas = Mainchain.Gas
module Bls = Amm_crypto.Bls
open Tokenbank

let u = U256.of_string
let check_u256 = Alcotest.testable U256.pp U256.equal
let one_e18 = u "1000000000000000000"
let one_e21 = u "1000000000000000000000"

let alice = Address.of_label "alice"
let bob = Address.of_label "bob"

type env = {
  bank : Token_bank.t;
  erc0 : Erc20.t;
  erc1 : Erc20.t;
  keys : (Bls.secret_key * Bls.public_key) array; (* per epoch *)
  pool_id : int;
}

let make_env () =
  let rng = Amm_crypto.Rng.create "tokenbank-tests" in
  let erc0 = Erc20.deploy (Chain.Token.make ~id:0 ~symbol:"TKA") in
  let erc1 = Erc20.deploy (Chain.Token.make ~id:1 ~symbol:"TKB") in
  let keys = Array.init 8 (fun _ -> Bls.keygen rng) in
  let bank = Token_bank.deploy ~token0:erc0 ~token1:erc1 ~genesis_committee_vk:(snd keys.(0)) in
  let pool_id = Token_bank.create_pool bank ~flash_fee_pips:3000 in
  List.iter
    (fun who ->
      Erc20.mint erc0 who one_e21;
      Erc20.mint erc1 who one_e21;
      Erc20.approve erc0 ~owner:who ~spender:(Token_bank.address bank) U256.max_value;
      Erc20.approve erc1 ~owner:who ~spender:(Token_bank.address bank) U256.max_value)
    [ alice; bob ];
  { bank; erc0; erc1; keys; pool_id }

let payload ?(users = []) ?(positions = []) env ~epoch ~balance0 ~balance1 =
  { Sync_payload.epoch; pool = env.pool_id; pool_balance0 = balance0;
    pool_balance1 = balance1; users; positions;
    next_committee_vk = snd env.keys.(epoch + 1) }

let sign env ~epoch p = Bls.sign (fst env.keys.(epoch)) (Sync_payload.signing_bytes p)

let fail_rejection r = Alcotest.fail (Token_bank.rejection_to_string r)

let user_entry ?(payin0 = U256.zero) ?(payin1 = U256.zero) ?(payout0 = U256.zero)
    ?(payout1 = U256.zero) who =
  { Sync_payload.user = who; payin0; payin1; payout0; payout1 }

(* ------------------------------------------------------------------ *)
(* Deposits                                                            *)
(* ------------------------------------------------------------------ *)

let test_deposit_moves_tokens () =
  let env = make_env () in
  (match Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:one_e18 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.check check_u256 "deposit recorded" one_e18
    (fst (Token_bank.deposit_of env.bank ~epoch:0 alice));
  Alcotest.check check_u256 "custody holds tokens" one_e18
    (fst (Token_bank.total_custody env.bank));
  Alcotest.check check_u256 "user debited" (U256.sub one_e21 one_e18)
    (Erc20.balance_of env.erc0 alice)

let test_deposit_epoch_scoping () =
  let env = make_env () in
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:U256.zero);
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:1 ~amount0:(U256.mul one_e18 U256.two) ~amount1:U256.zero);
  Alcotest.check check_u256 "epoch 0" one_e18 (fst (Token_bank.deposit_of env.bank ~epoch:0 alice));
  Alcotest.check check_u256 "epoch 1" (U256.mul one_e18 U256.two)
    (fst (Token_bank.deposit_of env.bank ~epoch:1 alice))

let test_deposit_insufficient_balance () =
  let env = make_env () in
  match
    Token_bank.deposit env.bank ~user:alice ~for_epoch:0
      ~amount0:(U256.mul one_e21 (U256.of_int 5)) ~amount1:U256.zero
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overdraft accepted"

let test_deposit_gas_metered () =
  let env = make_env () in
  let m = Gas.meter () in
  ignore (Token_bank.deposit ~meter:m env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:one_e18);
  let total = Gas.total m in
  (* Structured metering lands in the neighborhood of the paper's 52 696. *)
  Alcotest.(check bool) (Printf.sprintf "deposit gas %d plausible" total) true
    (total > 40_000 && total < 80_000)

(* ------------------------------------------------------------------ *)
(* Sync                                                                *)
(* ------------------------------------------------------------------ *)

let test_sync_happy_path () =
  let env = make_env () in
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:U256.zero);
  (* Alice swapped 1e18 of token0 for 9e17 of token1. *)
  let p =
    payload env ~epoch:0 ~balance0:one_e18 ~balance1:U256.zero
      ~users:[ user_entry alice ~payin0:one_e18 ~payout1:U256.zero ]
  in
  (* Pool must conserve: it gains payin0 and pays nothing (payout comes
     from its balance — here zero balance1 means no payout). *)
  (match Token_bank.sync env.bank ~signed:[ (p, sign env ~epoch:0 p) ] with
  | Ok receipt ->
    Alcotest.(check (list int)) "epoch covered" [ 0 ] receipt.Token_bank.epochs_covered;
    Alcotest.(check int) "synced" 0 (Token_bank.last_synced_epoch env.bank)
  | Error e -> fail_rejection e);
  match Token_bank.pool env.bank env.pool_id with
  | Some pi -> Alcotest.check check_u256 "pool credited" one_e18 pi.Token_bank.balance0
  | None -> Alcotest.fail "pool missing"

let test_sync_bad_signature_rejected () =
  let env = make_env () in
  let p = payload env ~epoch:0 ~balance0:U256.zero ~balance1:U256.zero in
  (* Signed by the wrong committee's key. *)
  let bad = Bls.sign (fst env.keys.(3)) (Sync_payload.signing_bytes p) in
  match Token_bank.sync env.bank ~signed:[ (p, bad) ] with
  | Error e ->
    Alcotest.(check string) "typed class" "bad_signature" (Token_bank.rejection_class e);
    Alcotest.(check int) "state untouched" (-1) (Token_bank.last_synced_epoch env.bank)
  | Ok _ -> Alcotest.fail "forged sync accepted"

let test_sync_tampered_payload_rejected () =
  let env = make_env () in
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:U256.zero);
  let p =
    payload env ~epoch:0 ~balance0:one_e18 ~balance1:U256.zero
      ~users:[ user_entry alice ~payin0:one_e18 ]
  in
  let signature = sign env ~epoch:0 p in
  let tampered = { p with Sync_payload.pool_balance0 = U256.mul one_e18 U256.two } in
  match Token_bank.sync env.bank ~signed:[ (tampered, signature) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered payload accepted"

let test_sync_conservation_violation_rejected () =
  let env = make_env () in
  (* Claim the pool pays out more than it takes in. *)
  let p =
    payload env ~epoch:0 ~balance0:U256.zero ~balance1:U256.zero
      ~users:[ user_entry alice ~payout0:one_e18 ]
  in
  match Token_bank.sync env.bank ~signed:[ (p, sign env ~epoch:0 p) ] with
  | Error e ->
    Alcotest.(check string) "typed class" "conservation_violation"
      (Token_bank.rejection_class e);
    Alcotest.(check int) "state untouched" (-1) (Token_bank.last_synced_epoch env.bank)
  | Ok _ -> Alcotest.fail "uncovered payout accepted"

let test_sync_wrong_epoch_rejected () =
  let env = make_env () in
  let p = payload env ~epoch:2 ~balance0:U256.zero ~balance1:U256.zero in
  match Token_bank.sync env.bank ~signed:[ (p, sign env ~epoch:2 p) ] with
  | Error (Token_bank.Contiguity_gap { expected = 0; got = 2 }) -> ()
  | Error e -> Alcotest.failf "wrong rejection: %s" (Token_bank.rejection_to_string e)
  | Ok _ -> Alcotest.fail "epoch gap accepted"

let test_sync_payout_and_refund () =
  let env = make_env () in
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:U256.zero);
  let balance_before0 = Erc20.balance_of env.erc0 alice in
  let balance_before1 = Erc20.balance_of env.erc1 alice in
  (* Alice spent 0.4e18 token0, got 0.3e18 token1; pool starts empty. *)
  let spent = u "400000000000000000" and got = u "300000000000000000" in
  (* Seed pool with enough token1 via bob's payin. *)
  ignore (Token_bank.deposit env.bank ~user:bob ~for_epoch:0 ~amount0:U256.zero ~amount1:one_e18);
  let p =
    payload env ~epoch:0 ~balance0:spent ~balance1:(U256.sub one_e18 got)
      ~users:
        [ user_entry alice ~payin0:spent ~payout1:got;
          user_entry bob ~payin1:one_e18 ]
  in
  (match Token_bank.sync env.bank ~signed:[ (p, sign env ~epoch:0 p) ] with
  | Ok _ -> ()
  | Error e -> fail_rejection e);
  (* Alice got her payout in token1 and the unspent 0.6e18 token0 refund. *)
  Alcotest.check check_u256 "token1 payout" (U256.add balance_before1 got)
    (Erc20.balance_of env.erc1 alice);
  Alcotest.check check_u256 "token0 residual refund"
    (U256.add balance_before0 (U256.sub one_e18 spent))
    (Erc20.balance_of env.erc0 alice);
  (* Deposit ledger cleared for the epoch. *)
  Alcotest.check check_u256 "deposit cleared" U256.zero
    (fst (Token_bank.deposit_of env.bank ~epoch:0 alice));
  (* Custody equals pool balances exactly after the epoch settles. *)
  let c0, c1 = Token_bank.total_custody env.bank in
  (match Token_bank.pool env.bank env.pool_id with
  | Some pi ->
    Alcotest.check check_u256 "custody = pool 0" pi.Token_bank.balance0 c0;
    Alcotest.check check_u256 "custody = pool 1" pi.Token_bank.balance1 c1
  | None -> Alcotest.fail "pool missing")

let test_sync_payin_exceeding_deposit_clipped_from_payout () =
  let env = make_env () in
  (* Alice deposited 1e18 but her sidechain activity consumed 1.5e18 of
     token0 (she re-spent sidechain credit); the 0.5e18 shortfall comes out
     of her payout (§4.2). *)
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:U256.zero);
  let payin = u "1500000000000000000" and payout = u "800000000000000000" in
  let short = U256.sub payin one_e18 in
  let before0 = Erc20.balance_of env.erc0 alice in
  let p =
    payload env ~epoch:0 ~balance0:(U256.sub payin payout) ~balance1:U256.zero
      ~users:[ user_entry alice ~payin0:payin ~payout0:payout ]
  in
  (match Token_bank.sync env.bank ~signed:[ (p, sign env ~epoch:0 p) ] with
  | Ok _ -> ()
  | Error e -> fail_rejection e);
  Alcotest.check check_u256 "payout clipped by shortfall"
    (U256.add before0 (U256.sub payout short))
    (Erc20.balance_of env.erc0 alice)

let test_mass_sync_key_chain () =
  let env = make_env () in
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:U256.zero);
  let p0 =
    payload env ~epoch:0 ~balance0:one_e18 ~balance1:U256.zero
      ~users:[ user_entry alice ~payin0:one_e18 ]
  in
  let p1 = payload env ~epoch:1 ~balance0:one_e18 ~balance1:U256.zero in
  let p2 = payload env ~epoch:2 ~balance0:one_e18 ~balance1:U256.zero in
  (* Epochs 0-2 land in one mass-sync; each is signed by its own epoch
     committee, whose key is recorded by the previous payload. *)
  (match
     Token_bank.sync env.bank
       ~signed:
         [ (p0, sign env ~epoch:0 p0); (p1, sign env ~epoch:1 p1);
           (p2, sign env ~epoch:2 p2) ]
   with
  | Ok receipt ->
    Alcotest.(check (list int)) "covered" [ 0; 1; 2 ] receipt.Token_bank.epochs_covered;
    Alcotest.(check int) "synced to 2" 2 (Token_bank.last_synced_epoch env.bank)
  | Error e -> fail_rejection e);
  (* A payload signed by the wrong link of the chain is rejected. *)
  let env2 = make_env () in
  let q0 = payload env2 ~epoch:0 ~balance0:U256.zero ~balance1:U256.zero in
  let q1 = payload env2 ~epoch:1 ~balance0:U256.zero ~balance1:U256.zero in
  match
    Token_bank.sync env2.bank
      ~signed:[ (q0, sign env2 ~epoch:0 q0); (q1, sign env2 ~epoch:0 q1) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong chain link accepted"

let test_sync_gas_itemization () =
  let env = make_env () in
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:U256.zero);
  let p =
    payload env ~epoch:0 ~balance0:one_e18 ~balance1:U256.zero
      ~users:[ user_entry alice ~payin0:one_e18 ]
  in
  match Token_bank.sync env.bank ~signed:[ (p, sign env ~epoch:0 p) ] with
  | Error e -> fail_rejection e
  | Ok receipt ->
    let items = Gas.breakdown receipt.Token_bank.gas in
    List.iter
      (fun key ->
        if not (List.mem_assoc key items) then Alcotest.failf "missing component %s" key)
      [ "base"; "calldata"; "auth.hash_to_point"; "auth.pairing"; "storage" ];
    Alcotest.(check int) "pairing cost" Gas.pairing_check
      (List.assoc "auth.pairing" items);
    Alcotest.(check bool) "storage covers vk + balances" true
      (List.assoc "storage" items >= 6 * Gas.sstore_word)

let test_position_lifecycle_through_sync () =
  let env = make_env () in
  let pid = Chain.Ids.Position_id.of_hash (Amm_crypto.Sha256.digest_string "pos") in
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:U256.zero);
  let pos_entry =
    { Sync_payload.pos_id = pid; owner = alice; lower_tick = -60; upper_tick = 60;
      liquidity = one_e18; amount0 = one_e18; amount1 = U256.zero;
      fees0 = U256.zero; fees1 = U256.zero; deleted = false }
  in
  let p0 =
    payload env ~epoch:0 ~balance0:one_e18 ~balance1:U256.zero
      ~users:[ user_entry alice ~payin0:one_e18 ]
      ~positions:[ pos_entry ]
  in
  ignore (Token_bank.sync env.bank ~signed:[ (p0, sign env ~epoch:0 p0) ]);
  Alcotest.(check bool) "position stored" true (Token_bank.find_position env.bank pid <> None);
  (* Next epoch deletes it (full withdrawal paid back to alice). *)
  ignore (Token_bank.deposit env.bank ~user:bob ~for_epoch:1 ~amount0:U256.zero ~amount1:U256.zero);
  let p1 =
    payload env ~epoch:1 ~balance0:U256.zero ~balance1:U256.zero
      ~users:[ user_entry alice ~payout0:one_e18 ]
      ~positions:[ { pos_entry with Sync_payload.deleted = true } ]
  in
  (match Token_bank.sync env.bank ~signed:[ (p1, sign env ~epoch:1 p1) ] with
  | Ok receipt -> Alcotest.(check int) "one delete" 1 receipt.Token_bank.positions_deleted
  | Error e -> fail_rejection e);
  Alcotest.(check bool) "position gone" true (Token_bank.find_position env.bank pid = None)

let test_sync_empty_epoch () =
  (* An epoch with no activity still syncs (records the next vk). *)
  let env = make_env () in
  let p = payload env ~epoch:0 ~balance0:U256.zero ~balance1:U256.zero in
  match Token_bank.sync env.bank ~signed:[ (p, sign env ~epoch:0 p) ] with
  | Ok receipt ->
    Alcotest.(check int) "no payouts" 0 receipt.Token_bank.payouts_dispensed;
    Alcotest.(check int) "epoch advanced" 0 (Token_bank.last_synced_epoch env.bank)
  | Error e -> fail_rejection e

let test_sync_replay_rejected () =
  (* A confirmed Sync resubmitted verbatim must be rejected (stale
     epoch). *)
  let env = make_env () in
  let p = payload env ~epoch:0 ~balance0:U256.zero ~balance1:U256.zero in
  let signed = [ (p, sign env ~epoch:0 p) ] in
  (match Token_bank.sync env.bank ~signed with
  | Ok _ -> ()
  | Error e -> fail_rejection e);
  match Token_bank.sync env.bank ~signed with
  | Error (Token_bank.Stale_epoch _) -> ()
  | Error e -> Alcotest.failf "wrong rejection: %s" (Token_bank.rejection_to_string e)
  | Ok _ -> Alcotest.fail "replayed sync accepted"

let test_multi_pool_sync () =
  let env = make_env () in
  let pool2 = Token_bank.create_pool env.bank ~flash_fee_pips:500 in
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:U256.zero);
  (* Fund pool2 instead of pool 0. *)
  let p =
    { (payload env ~epoch:0 ~balance0:one_e18 ~balance1:U256.zero
         ~users:[ user_entry alice ~payin0:one_e18 ])
      with Sync_payload.pool = pool2 }
  in
  (match Token_bank.sync env.bank ~signed:[ (p, sign env ~epoch:0 p) ] with
  | Ok _ -> ()
  | Error e -> fail_rejection e);
  (match Token_bank.pool env.bank pool2 with
  | Some pi -> Alcotest.check check_u256 "pool2 funded" one_e18 pi.Token_bank.balance0
  | None -> Alcotest.fail "pool2 missing");
  match Token_bank.pool env.bank env.pool_id with
  | Some pi -> Alcotest.check check_u256 "pool0 untouched" U256.zero pi.Token_bank.balance0
  | None -> Alcotest.fail "pool0 missing"

(* ------------------------------------------------------------------ *)
(* Flash loans on the mainchain                                        *)
(* ------------------------------------------------------------------ *)

let flash_env () =
  let env = make_env () in
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:one_e18);
  let p =
    payload env ~epoch:0 ~balance0:one_e18 ~balance1:one_e18
      ~users:[ user_entry alice ~payin0:one_e18 ~payin1:one_e18 ]
  in
  ignore (Token_bank.sync_exn env.bank ~signed:[ (p, sign env ~epoch:0 p) ]);
  env

let test_flash_repaid () =
  let env = flash_env () in
  let borrow = u "100000000000000000" in
  match
    Token_bank.flash env.bank ~pool:env.pool_id ~borrower:bob ~amount0:borrow
      ~amount1:U256.zero ~callback:(fun ~fee0:_ ~fee1:_ -> Ok ())
  with
  | Ok (fee0, _) ->
    Alcotest.(check bool) "fee positive" true (U256.gt fee0 U256.zero);
    (match Token_bank.pool env.bank env.pool_id with
    | Some pi ->
      Alcotest.check check_u256 "pool grew by fee" (U256.add one_e18 fee0)
        pi.Token_bank.balance0
    | None -> Alcotest.fail "pool missing")
  | Error e -> Alcotest.fail e

let test_flash_not_repaid_inverts () =
  let env = flash_env () in
  let borrow = u "100000000000000000" in
  let bob_before = Erc20.balance_of env.erc0 bob in
  (match
     Token_bank.flash env.bank ~pool:env.pool_id ~borrower:bob ~amount0:borrow
       ~amount1:U256.zero
       ~callback:(fun ~fee0 ~fee1:_ ->
         (* Bob burns the fee he owes so he cannot repay. *)
         ignore (Erc20.transfer env.erc0 ~source:bob ~dest:(Address.of_label "void") fee0);
         ignore
           (Erc20.transfer env.erc0 ~source:bob ~dest:(Address.of_label "void")
              (Erc20.balance_of env.erc0 bob));
         Ok ())
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unrepayable flash accepted");
  ignore bob_before;
  match Token_bank.pool env.bank env.pool_id with
  | Some pi -> Alcotest.check check_u256 "pool balance intact" one_e18 pi.Token_bank.balance0
  | None -> Alcotest.fail "pool missing"

let test_flash_pool_balances_unchanged_for_sidechain () =
  (* Flashes must not invalidate the sidechain's epoch-start snapshot:
     pool balances after a successful flash differ only by the earned fee
     (and are identical when the fee is zero). *)
  let env = flash_env () in
  let snap_before = Token_bank.snapshot env.bank ~epoch:1 in
  (match
     Token_bank.flash env.bank ~pool:env.pool_id ~borrower:bob
       ~amount0:(u "500000000000000000") ~amount1:U256.zero
       ~callback:(fun ~fee0:_ ~fee1:_ -> Ok ())
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let snap_after = Token_bank.snapshot env.bank ~epoch:1 in
  Alcotest.(check bool) "deposits unchanged" true
    (snap_before.Token_bank.snap_deposits = snap_after.Token_bank.snap_deposits)

(* ------------------------------------------------------------------ *)
(* Checkpoint / restore (rollback modeling)                            *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_restore () =
  let env = make_env () in
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:U256.zero);
  let ck = Token_bank.checkpoint env.bank in
  let p =
    payload env ~epoch:0 ~balance0:one_e18 ~balance1:U256.zero
      ~users:[ user_entry alice ~payin0:one_e18 ]
  in
  ignore (Token_bank.sync env.bank ~signed:[ (p, sign env ~epoch:0 p) ]);
  Alcotest.(check int) "applied" 0 (Token_bank.last_synced_epoch env.bank);
  Token_bank.restore env.bank ck;
  Alcotest.(check int) "restored epoch" (-1) (Token_bank.last_synced_epoch env.bank);
  Alcotest.check check_u256 "restored deposit" one_e18
    (fst (Token_bank.deposit_of env.bank ~epoch:0 alice));
  (* The same signed payload re-applies after the rollback (mass-sync). *)
  match Token_bank.sync env.bank ~signed:[ (p, sign env ~epoch:0 p) ] with
  | Ok _ -> Alcotest.(check int) "re-applied" 0 (Token_bank.last_synced_epoch env.bank)
  | Error e -> fail_rejection e

let test_checkpoint_o_dirty () =
  (* The checkpoint cost bound: with 100 open positions, an epoch that
     touches exactly one of them journals ~one row image — not a copy of
     the whole table. *)
  let env = make_env () in
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:U256.zero);
  let mk_pos i =
    let pid =
      Chain.Ids.Position_id.of_hash
        (Amm_crypto.Sha256.digest_string (Printf.sprintf "ck-pos-%d" i))
    in
    { Sync_payload.pos_id = pid; owner = alice; lower_tick = -60; upper_tick = 60;
      liquidity = one_e18; amount0 = U256.zero; amount1 = U256.zero;
      fees0 = U256.zero; fees1 = U256.zero; deleted = false }
  in
  let p0 =
    payload env ~epoch:0 ~balance0:one_e18 ~balance1:U256.zero
      ~users:[ user_entry alice ~payin0:one_e18 ]
      ~positions:(List.init 100 mk_pos)
  in
  ignore (Token_bank.sync_exn env.bank ~signed:[ (p0, sign env ~epoch:0 p0) ]);
  let ck = Token_bank.checkpoint env.bank in
  let before = Token_bank.positions_bytes env.bank in
  let j0 = Token_bank.checkpoint_journal_bytes env.bank in
  let p1 =
    payload env ~epoch:1 ~balance0:one_e18 ~balance1:U256.zero
      ~positions:[ { (mk_pos 42) with Sync_payload.liquidity = U256.mul one_e18 U256.two } ]
  in
  ignore (Token_bank.sync_exn env.bank ~signed:[ (p1, sign env ~epoch:1 p1) ]);
  let after = Token_bank.positions_bytes env.bank in
  let delta = Token_bank.checkpoint_journal_bytes env.bank - j0 in
  let row = Pos_store.row_bytes (Token_bank.positions_store env.bank) in
  Alcotest.(check bool)
    (Printf.sprintf "single-position epoch journals O(dirty) bytes (%d <= %d)" delta (2 * row))
    true
    (delta > 0 && delta <= 2 * row);
  (* Rolling back and replaying the same summary reproduces the table
     byte for byte. *)
  Token_bank.restore env.bank ck;
  Alcotest.(check bytes) "restore recovers the position table" before
    (Token_bank.positions_bytes env.bank);
  ignore (Token_bank.sync_exn env.bank ~signed:[ (p1, sign env ~epoch:1 p1) ]);
  Alcotest.(check bytes) "replayed table byte-identical" after
    (Token_bank.positions_bytes env.bank);
  (* The snapshot codec round-trips the restored table. *)
  let decoded = Pos_store.of_bytes_exn after in
  Alcotest.(check int) "decoded live count" 100 (Pos_store.length decoded);
  Alcotest.(check bytes) "decode/encode stable" after (Pos_store.to_bytes decoded)

(* ------------------------------------------------------------------ *)
(* Halt / emergency exit / reconciliation                              *)
(* ------------------------------------------------------------------ *)

let two_e18 = U256.mul one_e18 U256.two

(* Alice and bob each funded the pool 1e18/1e18 in epoch 0; alice holds
   the only position (all the token0 principal). *)
let halt_env () =
  let env = make_env () in
  ignore (Token_bank.deposit env.bank ~user:alice ~for_epoch:0 ~amount0:one_e18 ~amount1:one_e18);
  ignore (Token_bank.deposit env.bank ~user:bob ~for_epoch:0 ~amount0:one_e18 ~amount1:one_e18);
  let pid = Chain.Ids.Position_id.of_hash (Amm_crypto.Sha256.digest_string "pos-a") in
  let pos =
    { Sync_payload.pos_id = pid; owner = alice; lower_tick = -60; upper_tick = 60;
      liquidity = one_e18; amount0 = one_e18; amount1 = U256.zero;
      fees0 = U256.zero; fees1 = U256.zero; deleted = false }
  in
  let p =
    payload env ~epoch:0 ~balance0:two_e18 ~balance1:two_e18
      ~users:
        [ user_entry alice ~payin0:one_e18 ~payin1:one_e18;
          user_entry bob ~payin0:one_e18 ~payin1:one_e18 ]
      ~positions:[ pos ]
  in
  ignore (Token_bank.sync_exn env.bank ~signed:[ (p, sign env ~epoch:0 p) ]);
  env

let test_halt_freezes_bank () =
  let env = halt_env () in
  (match Token_bank.emergency_exit env.bank ~claimant:alice with
  | Error Token_bank.Not_halted -> ()
  | _ -> Alcotest.fail "exit served while live");
  (match Token_bank.halt env.bank ~epoch:0 with
  | Ok () -> ()
  | Error e -> fail_rejection e);
  Alcotest.(check bool) "halted" true (Token_bank.is_halted env.bank);
  (match
     Token_bank.deposit env.bank ~user:alice ~for_epoch:2 ~amount0:one_e18
       ~amount1:U256.zero
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "deposit accepted while halted");
  let p = payload env ~epoch:1 ~balance0:two_e18 ~balance1:two_e18 in
  (match Token_bank.sync env.bank ~signed:[ (p, sign env ~epoch:1 p) ] with
  | Error Token_bank.Bank_halted -> ()
  | Error e -> Alcotest.failf "wrong rejection: %s" (Token_bank.rejection_to_string e)
  | Ok _ -> Alcotest.fail "sync accepted while halted");
  match
    Token_bank.flash env.bank ~pool:env.pool_id ~borrower:bob ~amount0:U256.one
      ~amount1:U256.zero ~callback:(fun ~fee0:_ ~fee1:_ -> Ok ())
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "flash accepted while halted"

let test_exit_pro_rata_and_conservation () =
  let env = halt_env () in
  let custody0, _ = Token_bank.total_custody env.bank in
  (match Token_bank.halt env.bank ~epoch:0 with
  | Ok () -> ()
  | Error e -> fail_rejection e);
  let claim =
    match Token_bank.emergency_exit env.bank ~claimant:alice with
    | Ok c -> c
    | Error e -> fail_rejection e
  in
  (* Alice holds the only position, so her claim covers the full frozen
     token0 reserve; nothing of token1 is position value. *)
  Alcotest.check check_u256 "claim0 = frozen reserves" two_e18 claim.Token_bank.claim0;
  Alcotest.check check_u256 "claim1 zero" U256.zero claim.Token_bank.claim1;
  Alcotest.(check int) "one position closed" 1 claim.Token_bank.positions_closed;
  Alcotest.(check bool) "exit gas metered" true
    (Gas.total claim.Token_bank.exit_gas > 21_000);
  (match Token_bank.emergency_exit env.bank ~claimant:alice with
  | Error (Token_bank.Already_exited _) -> ()
  | _ -> Alcotest.fail "double exit accepted");
  (* Bob holds no position and his deposits were consumed: zero claim. *)
  (match Token_bank.emergency_exit env.bank ~claimant:bob with
  | Ok c -> Alcotest.check check_u256 "bob claim zero" U256.zero c.Token_bank.claim0
  | Error e -> fail_rejection e);
  Alcotest.(check int) "exits served" 2 (Token_bank.exits_served env.bank);
  Alcotest.(check bool) "exit conservation" true
    (Token_bank.exit_conservation_ok env.bank);
  let c0', _ = Token_bank.total_custody env.bank in
  Alcotest.check check_u256 "custody drained by exactly the claims"
    (U256.sub custody0 two_e18) c0'

let test_reconcile_after_exits () =
  let env = halt_env () in
  (* Epoch 1 is certified but never applied: bob pays in another 1e18 of
     token0 and is owed half a token1. *)
  ignore (Token_bank.deposit env.bank ~user:bob ~for_epoch:1 ~amount0:one_e18 ~amount1:U256.zero);
  let half = u "500000000000000000" in
  let p1 =
    payload env ~epoch:1 ~balance0:(U256.add two_e18 one_e18)
      ~balance1:(U256.sub two_e18 half)
      ~users:[ user_entry bob ~payin0:one_e18 ~payout1:half ]
  in
  let signed = [ (p1, sign env ~epoch:1 p1) ] in
  (match Token_bank.reconcile env.bank ~signed with
  | Error Token_bank.Not_halted -> ()
  | _ -> Alcotest.fail "reconcile accepted while live");
  (match Token_bank.halt env.bank ~epoch:1 with
  | Ok () -> ()
  | Error e -> fail_rejection e);
  (* Alice exits during the halt; bob waits for the reconciliation. *)
  (match Token_bank.emergency_exit env.bank ~claimant:alice with
  | Ok _ -> ()
  | Error e -> fail_rejection e);
  let bob1_before = Erc20.balance_of env.erc1 bob in
  match Token_bank.reconcile env.bank ~signed with
  | Error e -> fail_rejection e
  | Ok r ->
    Alcotest.(check (list int)) "epochs reconciled" [ 1 ] r.Token_bank.rec_epochs;
    Alcotest.(check bool) "bank un-halted" false (Token_bank.is_halted env.bank);
    Alcotest.(check int) "synced advanced" 1 (Token_bank.last_synced_epoch env.bank);
    Alcotest.(check int) "bob applied" 1 r.Token_bank.rec_users_applied;
    Alcotest.(check int) "nobody voided" 0 r.Token_bank.rec_users_voided;
    Alcotest.check check_u256 "bob's payout dispensed"
      (U256.add bob1_before half) (Erc20.balance_of env.erc1 bob);
    Alcotest.(check bool) "exit conservation still holds" true
      (Token_bank.exit_conservation_ok env.bank)

let test_reconcile_voids_exited_users () =
  let env = halt_env () in
  (* Epoch 1 owes alice a payout; she exits instead, so the
     reconciliation must void her entry rather than pay twice. *)
  let half = u "500000000000000000" in
  let p1 =
    payload env ~epoch:1 ~balance0:(U256.sub two_e18 half) ~balance1:two_e18
      ~users:[ user_entry alice ~payout0:half ]
  in
  let signed = [ (p1, sign env ~epoch:1 p1) ] in
  (match Token_bank.halt env.bank ~epoch:1 with
  | Ok () -> ()
  | Error e -> fail_rejection e);
  (match Token_bank.emergency_exit env.bank ~claimant:alice with
  | Ok _ -> ()
  | Error e -> fail_rejection e);
  let alice0_after_exit = Erc20.balance_of env.erc0 alice in
  match Token_bank.reconcile env.bank ~signed with
  | Error e -> fail_rejection e
  | Ok r ->
    Alcotest.(check int) "alice voided" 1 r.Token_bank.rec_users_voided;
    Alcotest.check check_u256 "voided value netted" half r.Token_bank.rec_voided0;
    Alcotest.check check_u256 "alice not paid twice" alice0_after_exit
      (Erc20.balance_of env.erc0 alice);
    Alcotest.(check bool) "exit conservation still holds" true
      (Token_bank.exit_conservation_ok env.bank)

(* ------------------------------------------------------------------ *)
(* ABI payload encoding                                                *)
(* ------------------------------------------------------------------ *)

let test_abi_sizes () =
  let env = make_env () in
  let p =
    payload env ~epoch:0 ~balance0:U256.zero ~balance1:U256.zero
      ~users:[ user_entry alice; user_entry bob ]
      ~positions:
        [ { Sync_payload.pos_id = Chain.Ids.Position_id.of_hash (Amm_crypto.Sha256.digest_string "x");
            owner = alice; lower_tick = -60; upper_tick = 60; liquidity = U256.one;
            amount0 = U256.one; amount1 = U256.one; fees0 = U256.zero; fees1 = U256.zero;
            deleted = false } ]
  in
  let base_p = payload env ~epoch:0 ~balance0:U256.zero ~balance1:U256.zero in
  let delta = Sync_payload.abi_size p - Sync_payload.abi_size base_p in
  Alcotest.(check int) "2 users + 1 position delta"
    ((2 * Sync_payload.abi_user_entry_size) + Sync_payload.abi_position_entry_size)
    delta;
  Alcotest.(check int) "user entry 352" 352 Sync_payload.abi_user_entry_size;
  Alcotest.(check int) "position entry 416" 416 Sync_payload.abi_position_entry_size;
  (* Storage: 6 words per live position + 2 pool + 4 vk. *)
  Alcotest.(check int) "storage words" (6 + 2 + 4) (Sync_payload.storage_words p)

let test_erc20_semantics () =
  let erc = Erc20.deploy (Chain.Token.make ~id:9 ~symbol:"T") in
  Erc20.mint erc alice (U256.of_int 100);
  (match Erc20.transfer erc ~source:alice ~dest:bob (U256.of_int 30) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.check check_u256 "balances move" (U256.of_int 70) (Erc20.balance_of erc alice);
  (match Erc20.transfer erc ~source:alice ~dest:bob (U256.of_int 71) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overdraft");
  (* transfer_from needs allowance. *)
  (match
     Erc20.transfer_from erc ~spender:bob ~source:alice ~dest:bob (U256.of_int 10)
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "no allowance");
  Erc20.approve erc ~owner:alice ~spender:bob (U256.of_int 10);
  (match
     Erc20.transfer_from erc ~spender:bob ~source:alice ~dest:bob (U256.of_int 10)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.check check_u256 "allowance consumed" U256.zero
    (Erc20.allowance erc ~owner:alice ~spender:bob)

let test_gas_meter () =
  let m = Gas.meter () in
  Gas.charge m "a" 10;
  Gas.charge m "b" 20;
  Gas.charge m "a" 5;
  Alcotest.(check int) "total" 35 (Gas.total m);
  Alcotest.(check (list (pair string int))) "merged breakdown" [ ("a", 15); ("b", 20) ]
    (Gas.breakdown m);
  Alcotest.(check int) "keccak cost" (30 + 6 * 2) (Gas.keccak_cost 64)

let () =
  Alcotest.run "tokenbank"
    [ ( "deposits",
        [ Alcotest.test_case "moves tokens" `Quick test_deposit_moves_tokens;
          Alcotest.test_case "epoch scoping" `Quick test_deposit_epoch_scoping;
          Alcotest.test_case "insufficient balance" `Quick test_deposit_insufficient_balance;
          Alcotest.test_case "gas metered" `Quick test_deposit_gas_metered ] );
      ( "sync",
        [ Alcotest.test_case "happy path" `Quick test_sync_happy_path;
          Alcotest.test_case "bad signature" `Quick test_sync_bad_signature_rejected;
          Alcotest.test_case "tampered payload" `Quick test_sync_tampered_payload_rejected;
          Alcotest.test_case "conservation" `Quick test_sync_conservation_violation_rejected;
          Alcotest.test_case "wrong epoch" `Quick test_sync_wrong_epoch_rejected;
          Alcotest.test_case "payout + refund" `Quick test_sync_payout_and_refund;
          Alcotest.test_case "payin shortfall clipped" `Quick
            test_sync_payin_exceeding_deposit_clipped_from_payout;
          Alcotest.test_case "mass-sync key chain" `Quick test_mass_sync_key_chain;
          Alcotest.test_case "gas itemization" `Quick test_sync_gas_itemization;
          Alcotest.test_case "position lifecycle" `Quick test_position_lifecycle_through_sync;
          Alcotest.test_case "empty epoch" `Quick test_sync_empty_epoch;
          Alcotest.test_case "replay rejected" `Quick test_sync_replay_rejected;
          Alcotest.test_case "multi-pool" `Quick test_multi_pool_sync ] );
      ( "flash",
        [ Alcotest.test_case "repaid" `Quick test_flash_repaid;
          Alcotest.test_case "not repaid inverts" `Quick test_flash_not_repaid_inverts;
          Alcotest.test_case "snapshot unaffected" `Quick
            test_flash_pool_balances_unchanged_for_sidechain ] );
      ( "checkpoint",
        [ Alcotest.test_case "restore + resync" `Quick test_checkpoint_restore;
          Alcotest.test_case "O(dirty) journal bound" `Quick test_checkpoint_o_dirty ] );
      ( "emergency-exit",
        [ Alcotest.test_case "halt freezes bank" `Quick test_halt_freezes_bank;
          Alcotest.test_case "pro-rata exit + conservation" `Quick
            test_exit_pro_rata_and_conservation;
          Alcotest.test_case "reconcile after exits" `Quick test_reconcile_after_exits;
          Alcotest.test_case "reconcile voids exited users" `Quick
            test_reconcile_voids_exited_users ] );
      ( "encoding/substrate",
        [ Alcotest.test_case "abi sizes" `Quick test_abi_sizes;
          Alcotest.test_case "erc20" `Quick test_erc20_semantics;
          Alcotest.test_case "gas meter" `Quick test_gas_meter ] ) ]
