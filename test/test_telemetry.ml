(* Telemetry subsystem: histogram quantile accuracy, registry snapshots
   and their determinism, span nesting balance, and well-formedness of
   the Chrome trace export (parsed with a minimal JSON reader so no
   extra dependency is needed). *)

module H = Telemetry.Histogram
module M = Telemetry.Metrics
module T = Telemetry.Trace

(* ------------------------------------------------------------------ *)
(* A minimal JSON well-formedness checker                              *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          Buffer.add_char b '?';
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          Buffer.add_char b '?';
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let token = String.sub s start (!pos - start) in
    match float_of_string_opt token with
    | Some f -> f
    | None -> fail ("bad number " ^ token)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let check_close name ~tolerance expected actual =
  let rel = Float.abs (actual -. expected) /. Float.max 1e-9 (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.4f within %.0f%% of %.4f" name actual (100. *. tolerance)
       expected)
    true (rel <= tolerance)

let test_histogram_uniform () =
  let h = H.create () in
  for v = 1 to 10_000 do
    H.observe h (float_of_int v)
  done;
  Alcotest.(check int) "count" 10_000 (H.count h);
  Alcotest.(check (float 1e-6)) "min" 1.0 (H.min_value h);
  Alcotest.(check (float 1e-6)) "max" 10_000.0 (H.max_value h);
  check_close "mean" ~tolerance:1e-9 5000.5 (H.mean h);
  (* Log-bucketed quantiles: a bucket spans ~12%, so allow that. *)
  check_close "p50" ~tolerance:0.13 5000.0 (H.quantile h 0.50);
  check_close "p90" ~tolerance:0.13 9000.0 (H.quantile h 0.90);
  check_close "p99" ~tolerance:0.13 9900.0 (H.quantile h 0.99)

let test_histogram_lognormal_like () =
  (* A two-decade spread: 90% of mass at 10, 10% at 1000. *)
  let h = H.create () in
  for _ = 1 to 900 do
    H.observe h 10.0
  done;
  for _ = 1 to 100 do
    H.observe h 1000.0
  done;
  check_close "p50" ~tolerance:0.13 10.0 (H.quantile h 0.50);
  check_close "p99" ~tolerance:0.13 1000.0 (H.quantile h 0.99)

let test_histogram_edge_cases () =
  let h = H.create () in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (H.quantile h 0.5);
  H.observe h 0.0;
  H.observe h (-5.0);
  H.observe h 2.0;
  Alcotest.(check int) "count with zeros" 3 (H.count h);
  (* Two of three observations are <= 0, so the median is the zero bucket. *)
  Alcotest.(check (float 1e-9)) "p50 dominated by zero bucket" 0.0
    (H.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p99 positive" 2.0 (H.quantile h 0.99)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let populate reg =
  let c = M.counter reg "txs.processed" in
  M.inc c;
  M.inc ~by:41 c;
  M.set (M.gauge reg "mempool.bytes") 123.5;
  M.observe reg "latency" 0.25;
  M.observe reg "latency" 0.75

let test_registry_snapshot () =
  let reg = M.create () in
  populate reg;
  let json = M.to_json_string reg in
  (match parse_json (String.trim json) with
  | Obj fields ->
    Alcotest.(check (list string)) "series sorted by name"
      [ "latency"; "mempool.bytes"; "txs.processed" ]
      (List.map fst fields);
    (match List.assoc "txs.processed" fields with
    | Obj c -> Alcotest.(check bool) "counter value" true (List.assoc "value" c = Num 42.0)
    | _ -> Alcotest.fail "counter not an object")
  | _ -> Alcotest.fail "snapshot not an object");
  (* Registering the same name with another kind is a hard error. *)
  Alcotest.check_raises "kind mismatch"
    (Failure "Metrics: series kind mismatch for txs.processed") (fun () ->
      ignore (M.gauge reg "txs.processed"))

let test_registry_deterministic () =
  let a = M.create () and b = M.create () in
  populate a;
  populate b;
  Alcotest.(check string) "identical registries snapshot identically"
    (M.to_json_string a) (M.to_json_string b);
  Alcotest.(check string) "prometheus dump identical too" (M.to_prometheus a)
    (M.to_prometheus b);
  Alcotest.(check bool) "prometheus has quantile lines" true
    (let dump = M.to_prometheus a in
     let contains hay needle =
       let ln = String.length needle and lh = String.length hay in
       let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
       go 0
     in
     contains dump "latency{quantile=\"0.99\"}")

(* ------------------------------------------------------------------ *)
(* Span tracer                                                         *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let tr = T.create ~enabled:true () in
  T.begin_span tr ~name:"epoch" ~ts:0.0 ();
  T.begin_span tr ~name:"round" ~ts:1.0 ();
  Alcotest.(check int) "two open spans" 2 (T.depth tr);
  T.end_span tr ~ts:2.0 ();
  T.end_span tr ~ts:3.0 ();
  Alcotest.(check int) "balanced" 0 (T.depth tr);
  Alcotest.check_raises "unbalanced end rejected"
    (Failure "Trace.end_span: no open span") (fun () -> T.end_span tr ~ts:4.0 ())

let test_disabled_tracer_records_nothing () =
  let tr = T.create () in
  T.begin_span tr ~name:"x" ~ts:0.0 ();
  T.complete tr ~name:"y" ~ts:0.0 ~dur:1.0 ();
  T.end_span tr ~ts:1.0 ();
  Alcotest.(check int) "no events" 0 (T.event_count tr)

let test_chrome_export_well_formed () =
  let tr = T.create ~enabled:true () in
  T.complete tr ~name:"traffic" ~ts:0.0 ~dur:2.1
    ~args:[ ("generated", Telemetry.Json.Int 7) ]
    ();
  T.begin_span tr ~name:"meta \"quoted\"\nblock" ~ts:2.1 ();
  T.end_span tr ~ts:5.0 ();
  T.instant tr ~name:"prune" ~ts:6.0 ();
  let json = parse_json (String.trim (T.to_chrome_json tr)) in
  match json with
  | Obj fields ->
    (match List.assoc "traceEvents" fields with
    | Arr events ->
      let phase ev =
        match ev with
        | Obj f -> (
          match List.assoc "ph" f with Str p -> p | _ -> Alcotest.fail "ph not a string")
        | _ -> Alcotest.fail "event not an object"
      in
      let phases = List.map phase events in
      let count p = List.length (List.filter (String.equal p) phases) in
      Alcotest.(check int) "four events" 4 (List.length events);
      Alcotest.(check int) "B/E matched" (count "B") (count "E");
      Alcotest.(check int) "one complete event" 1 (count "X");
      List.iter
        (fun ev ->
          match ev with
          | Obj f ->
            Alcotest.(check bool) "has ts" true (List.mem_assoc "ts" f);
            Alcotest.(check bool) "has pid/tid" true
              (List.mem_assoc "pid" f && List.mem_assoc "tid" f);
            if phase ev = "X" then
              Alcotest.(check bool) "X has dur" true (List.mem_assoc "dur" f)
          | _ -> Alcotest.fail "event not an object")
        events
    | _ -> Alcotest.fail "traceEvents not an array")
  | _ -> Alcotest.fail "trace not an object"

(* ------------------------------------------------------------------ *)
(* End-to-end: instrumented run determinism                            *)
(* ------------------------------------------------------------------ *)

let test_system_metrics_deterministic () =
  let open Ammboost in
  let cfg =
    { Config.default with
      epochs = 2; daily_volume = 20_000; users = 12; miners = 30;
      committee_size = 10; max_faulty = 2; seed = "telemetry-determinism" }
  in
  let snapshot () =
    let sink = Telemetry.Report.sink ~trace:true () in
    let _r = System.run ~sink cfg in
    (M.to_json_string sink.Telemetry.Report.metrics,
     T.to_chrome_json sink.Telemetry.Report.trace)
  in
  let m1, t1 = snapshot () in
  let m2, t2 = snapshot () in
  Alcotest.(check string) "metrics snapshots byte-identical" m1 m2;
  Alcotest.(check string) "trace exports byte-identical" t1 t2;
  (match parse_json (String.trim m1) with
  | Obj fields ->
    Alcotest.(check bool)
      (Printf.sprintf "at least 10 series (%d)" (List.length fields))
      true
      (List.length fields >= 10)
  | _ -> Alcotest.fail "metrics not an object");
  ignore (parse_json (String.trim t1))

(* ------------------------------------------------------------------ *)
(* The library JSON parser (Telemetry.Json.parse)                      *)
(* ------------------------------------------------------------------ *)

module J = Telemetry.Json

let test_json_parse_roundtrip () =
  (* Everything the emitters produce must parse back structurally. *)
  let doc =
    J.obj
      [ ("schema", J.string "t/1"); ("count", J.value (J.Int 42));
        ("rate", J.value (J.Float 1.5)); ("ok", J.value (J.Bool true));
        ("tags", J.array [ J.string "a"; J.string "b" ]);
        ("nested", J.obj [ ("x", J.value (J.Int (-7))) ]) ]
  in
  match J.parse doc with
  | Error e -> Alcotest.failf "emitted JSON must parse: %s" e
  | Ok v ->
    Alcotest.(check bool) "schema" true (J.member "schema" v = Some (J.Jstring "t/1"));
    Alcotest.(check bool) "count" true (J.member "count" v = Some (J.Jnumber 42.0));
    Alcotest.(check bool) "rate" true (J.member "rate" v = Some (J.Jnumber 1.5));
    Alcotest.(check bool) "ok" true (J.member "ok" v = Some (J.Jbool true));
    Alcotest.(check bool) "tags" true
      (J.member "tags" v = Some (J.Jarray [ J.Jstring "a"; J.Jstring "b" ]));
    (match J.member "nested" v with
    | Some nested ->
      Alcotest.(check bool) "nested x" true
        (J.member "x" nested = Some (J.Jnumber (-7.0)))
    | None -> Alcotest.fail "nested object missing")

let test_json_parse_escapes () =
  let s = "line1\nline2\ttab \"quoted\" back\\slash" in
  match J.parse (J.string s) with
  | Ok (J.Jstring s') -> Alcotest.(check string) "escape roundtrip" s s'
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parse_literals () =
  List.iter
    (fun (src, expect) ->
      match J.parse src with
      | Ok v -> Alcotest.(check bool) src true (v = expect)
      | Error e -> Alcotest.failf "%s: %s" src e)
    [ ("null", J.Jnull); ("true", J.Jbool true); ("false", J.Jbool false);
      ("[]", J.Jarray []); ("{}", J.Jobject []); ("-12.5e2", J.Jnumber (-1250.0));
      ("  [1, 2]  ", J.Jarray [ J.Jnumber 1.0; J.Jnumber 2.0 ]) ]

let test_json_parse_errors () =
  List.iter
    (fun src ->
      match J.parse src with
      | Ok _ -> Alcotest.failf "%S should not parse" src
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "\"unterminated"; "tru"; "1 2"; "{\"a\" 1}" ]

let test_json_parse_bench_results () =
  (* The real benchmark results format: baseline lookup end to end. *)
  let doc =
    J.obj
      [ ("schema", J.string "ammboost-bench/1");
        ("micro_ns",
         J.obj [ ("ammboost/u256 mul_div", J.value (J.Float 1349.9)) ]) ]
  in
  match J.parse doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
    (match J.member "micro_ns" v with
    | Some (J.Jobject [ (name, J.Jnumber ns) ]) ->
      Alcotest.(check string) "name" "ammboost/u256 mul_div" name;
      Alcotest.(check (float 1e-6)) "ns" 1349.9 ns
    | _ -> Alcotest.fail "micro_ns shape")

(* ------------------------------------------------------------------ *)
(* Property tests: printer/parser roundtrip and quantile accuracy       *)
(* ------------------------------------------------------------------ *)

let prop ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* [Json.float] prints integers exactly and everything else via %.12g,
   so roundtripping can only hold for floats that are fixpoints of the
   printer; one print/parse pass puts any generated number on that
   lattice (and clamps NaN/infinities to finite values, as the emitter
   does). *)
let norm_float f = float_of_string (J.float f)

let gen_json_value =
  let open QCheck2.Gen in
  (* Full char range: exercises the escape table, \u control escapes and
     raw high bytes. *)
  let gen_key = string_size (int_range 0 12) in
  let scalar =
    oneof
      [ return J.Jnull;
        map (fun b -> J.Jbool b) bool;
        map (fun f -> J.Jnumber (norm_float f)) float;
        map
          (fun i -> J.Jnumber (float_of_int i))
          (int_range (-1_000_000_000) 1_000_000_000);
        map (fun s -> J.Jstring s) gen_key ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [ (3, scalar);
               ( 1,
                 map
                   (fun l -> J.Jarray l)
                   (list_size (int_range 0 4) (self (n / 4))) );
               ( 1,
                 map
                   (fun l -> J.Jobject l)
                   (list_size (int_range 0 4) (pair gen_key (self (n / 4)))) ) ])

let json_roundtrip_prop v =
  match J.parse (J.to_string v) with Ok v' -> v' = v | Error _ -> false

let gen_samples = QCheck2.Gen.(list_size (int_range 1 300) (float_range 0.001 1.0e6))

(* The log-bucketed quantile must stay within one bucket (midpoint vs
   extreme at 20/decade is < 6%) of the exact order-statistic; 13% leaves
   margin for boundary ranks. *)
let quantile_vs_exact_prop samples =
  let h = H.create () in
  List.iter (H.observe h) samples;
  let sorted = Array.of_list (List.sort compare samples) in
  let n = Array.length sorted in
  List.for_all
    (fun q ->
      let target = q *. float_of_int n in
      let idx =
        Stdlib.max 0 (Stdlib.min (n - 1) (int_of_float (Float.ceil target) - 1))
      in
      let exact = sorted.(idx) in
      Float.abs (H.quantile h q -. exact) <= 0.13 *. exact)
    [ 0.5; 0.9; 0.99 ]

(* Bucket counts add exactly, so a merged histogram answers quantiles
   identically to one that saw all observations directly. *)
let merged_quantile_prop (xs, ys) =
  let whole = H.create () in
  List.iter (H.observe whole) (xs @ ys);
  let a = H.create () and b = H.create () in
  List.iter (H.observe a) xs;
  List.iter (H.observe b) ys;
  H.merge_into ~into:a b;
  H.count a = H.count whole
  && H.min_value a = H.min_value whole
  && H.max_value a = H.max_value whole
  && List.for_all (fun q -> H.quantile a q = H.quantile whole q) [ 0.5; 0.9; 0.99 ]

let test_quantile_single_observation () =
  let h = H.create () in
  H.observe h 7.3;
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "q=%.2f clamps to the single value" q)
        7.3 (H.quantile h q))
    [ 0.01; 0.5; 0.99 ]

(* ------------------------------------------------------------------ *)
(* Histogram merge guards                                              *)
(* ------------------------------------------------------------------ *)

let test_merge_into_empty_guard () =
  (* Merging into an empty histogram must adopt the source extrema, not
     compare against the fresh ±infinity sentinels — a zero-bucket-only
     source is the sharp case, since all its values are <= 0. *)
  let a = H.create () in
  let b = H.create () in
  for _ = 1 to 5 do
    H.observe b (-2.0)
  done;
  H.merge_into ~into:a b;
  Alcotest.(check int) "count" 5 (H.count a);
  Alcotest.(check (float 1e-9)) "min adopted" (-2.0) (H.min_value a);
  Alcotest.(check (float 1e-9)) "max adopted" (-2.0) (H.max_value a);
  Alcotest.(check (float 1e-9)) "p99 clamps into the zero bucket" (-2.0)
    (H.quantile a 0.99);
  (* Merging an empty histogram is the identity. *)
  let p50 = H.quantile a 0.5 in
  H.merge_into ~into:a (H.create ());
  Alcotest.(check int) "empty merge keeps count" 5 (H.count a);
  Alcotest.(check (float 1e-9)) "empty merge keeps min" (-2.0) (H.min_value a);
  Alcotest.(check (float 1e-9)) "empty merge keeps quantiles" p50 (H.quantile a 0.5);
  Alcotest.check_raises "bucket layout mismatch rejected"
    (Invalid_argument "Histogram.merge_into: bucket layouts differ") (fun () ->
      H.merge_into ~into:(H.create ~buckets_per_decade:10 ()) (H.create ()))

(* ------------------------------------------------------------------ *)
(* Time-series metric kind                                             *)
(* ------------------------------------------------------------------ *)

let test_series_points_and_json () =
  let reg = M.create () in
  let s = M.time_series reg "growth.mc.bytes.total" in
  M.push s ~t:0.0 10.0;
  M.push s ~t:1.0 20.0;
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "points come back in push order"
    [ (0.0, 10.0); (1.0, 20.0) ]
    (M.series_points s);
  Alcotest.(check bool) "find_series sees it" true
    (M.find_series reg "growth.mc.bytes.total" <> None);
  Alcotest.(check bool) "find_histogram does not" true
    (M.find_histogram reg "growth.mc.bytes.total" = None);
  match parse_json (String.trim (M.to_json_string reg)) with
  | Obj [ (name, Obj fields) ] ->
    Alcotest.(check string) "name" "growth.mc.bytes.total" name;
    Alcotest.(check bool) "type series" true
      (List.assoc "type" fields = Str "series");
    (match List.assoc "points" fields with
    | Arr [ Arr [ Num 0.0; Num 10.0 ]; Arr [ Num 1.0; Num 20.0 ] ] -> ()
    | _ -> Alcotest.fail "points shape")
  | _ -> Alcotest.fail "snapshot shape"

let test_series_merge_matches_sequential () =
  (* Private sinks merged in submission order must reproduce a
     sequential run's series byte-for-byte — the growth ledger's -j
     determinism rides on this. *)
  let points = [ (0.0, 1.0); (1.0, 2.0); (2.0, 3.0); (3.0, 4.0) ] in
  let seq = M.create () in
  List.iter (fun (t, v) -> M.push (M.time_series seq "g") ~t v) points;
  let a = M.create () and b = M.create () in
  List.iter (fun (t, v) -> M.push (M.time_series a "g") ~t v)
    [ List.nth points 0; List.nth points 1 ];
  List.iter (fun (t, v) -> M.push (M.time_series b "g") ~t v)
    [ List.nth points 2; List.nth points 3 ];
  let merged = M.create () in
  M.merge_into ~into:merged a;
  M.merge_into ~into:merged b;
  Alcotest.(check string) "merged snapshot = sequential snapshot"
    (M.to_json_string seq) (M.to_json_string merged)

let () =
  Alcotest.run "telemetry"
    [ ("histogram",
       [ Alcotest.test_case "uniform quantiles" `Quick test_histogram_uniform;
         Alcotest.test_case "bimodal quantiles" `Quick test_histogram_lognormal_like;
         Alcotest.test_case "edge cases" `Quick test_histogram_edge_cases;
         Alcotest.test_case "single observation" `Quick
           test_quantile_single_observation;
         Alcotest.test_case "merge guards" `Quick test_merge_into_empty_guard;
         prop "quantile tracks exact order statistic" gen_samples
           quantile_vs_exact_prop;
         prop "merged histogram = combined histogram"
           QCheck2.Gen.(pair gen_samples gen_samples)
           merged_quantile_prop ]);
      ("series",
       [ Alcotest.test_case "points and JSON shape" `Quick
           test_series_points_and_json;
         Alcotest.test_case "submission-order merge is sequential" `Quick
           test_series_merge_matches_sequential ]);
      ("metrics",
       [ Alcotest.test_case "snapshot shape" `Quick test_registry_snapshot;
         Alcotest.test_case "deterministic output" `Quick test_registry_deterministic ]);
      ("trace",
       [ Alcotest.test_case "span nesting balance" `Quick test_span_nesting;
         Alcotest.test_case "disabled tracer" `Quick test_disabled_tracer_records_nothing;
         Alcotest.test_case "chrome export well-formed" `Quick
           test_chrome_export_well_formed ]);
      ("json",
       [ Alcotest.test_case "roundtrip" `Quick test_json_parse_roundtrip;
         prop ~count:500 "print/parse roundtrip (property)" gen_json_value
           json_roundtrip_prop;
         Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
         Alcotest.test_case "literals" `Quick test_json_parse_literals;
         Alcotest.test_case "errors rejected" `Quick test_json_parse_errors;
         Alcotest.test_case "bench results shape" `Quick
           test_json_parse_bench_results ]);
      ("system",
       [ Alcotest.test_case "instrumented run deterministic" `Quick
           test_system_metrics_deterministic ]) ]
