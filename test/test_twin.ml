(* The state twin: unit-level audit semantics (clean pass, exact
   bisection to the culprit op index, out-of-band attribution, replica
   rejections, reorg symmetry, time travel, what-if isolation) — then
   system-level equivalence: twin vs live over random fault
   interleavings (QCheck over chaos intensity and seed, covering halts,
   exits, reconciles and reorgs) with zero false positives, and scripted
   state corruption always detected in the epoch it lands. The
   end-of-run replay oracle rides along as the oracle of the oracle. *)

module U256 = Amm_math.U256
module Address = Chain.Address
module Erc20 = Mainchain.Erc20
module Bls = Amm_crypto.Bls
module Token_bank = Tokenbank.Token_bank
module Sync_payload = Tokenbank.Sync_payload
module State_codec = Durable.State_codec
open Ammboost

let u = U256.of_string
let one_e18 = u "1000000000000000000"
let one_e21 = u "1000000000000000000000"

let alice = Address.of_label "alice"
let bob = Address.of_label "bob"
let carol = Address.of_label "carol"

(* ------------------------------------------------------------------ *)
(* Unit harness: a twin plus a mirror bank standing in for the live
   side. The mirror is deployed with the same genesis vk and pool fee,
   so as long as it sees the same op stream its meta section is
   byte-identical to the replica's — exactly the property the audit
   checks in production.                                                *)
(* ------------------------------------------------------------------ *)

type tenv = {
  tw : Twin.t;
  mirror : Token_bank.t;
  merc0 : Erc20.t;
  merc1 : Erc20.t;
  keys : (Bls.secret_key * Bls.public_key) array;
}

let make_env () =
  let rng = Amm_crypto.Rng.create "twin-tests" in
  let keys = Array.init 8 (fun _ -> Bls.keygen rng) in
  let vk = snd keys.(0) in
  let tw = Twin.create ~seed:"twin-tests" ~genesis_committee_vk:vk ~flash_fee_pips:3000 in
  let merc0 = Erc20.deploy (Chain.Token.make ~id:0 ~symbol:"TKA") in
  let merc1 = Erc20.deploy (Chain.Token.make ~id:1 ~symbol:"TKB") in
  let mirror = Token_bank.deploy ~token0:merc0 ~token1:merc1 ~genesis_committee_vk:vk in
  ignore (Token_bank.create_pool mirror ~flash_fee_pips:3000);
  List.iter
    (fun who ->
      Erc20.mint merc0 who one_e21;
      Erc20.mint merc1 who one_e21;
      Erc20.approve merc0 ~owner:who ~spender:(Token_bank.address mirror) U256.max_value;
      Erc20.approve merc1 ~owner:who ~spender:(Token_bank.address mirror) U256.max_value)
    [ alice; bob; carol ];
  { tw; mirror; merc0; merc1; keys }

let scalars = Bytes.of_string "pool-scalar-section"

(* Live closures over the mirror plus explicit sidechain tables. *)
let live ?(dep = fun _ -> None) ?(dep_dirty = fun () -> [])
    ?(pool_writes = fun () -> ([], [])) ?(pool_scalars = fun () -> scalars)
    ?(bank_meta = None) env () =
  { Twin.live_dep = dep;
    live_dep_dirty = dep_dirty;
    live_pool_pos = (fun _ -> None);
    live_pool_tick = (fun _ -> None);
    live_pool_writes = pool_writes;
    live_pool_scalars = pool_scalars;
    live_bank_meta =
      (match bank_meta with
      | Some f -> f
      | None -> fun () -> State_codec.bank_meta_bytes env.mirror);
    live_bank_pos = (fun _ -> None);
    live_bank_dirty = (fun () -> []) }

let seed_scalars env =
  Twin.record env.tw ~label:"seed" [ (Twin.Pool_scalars, Some scalars) ]

let dep_mirror env who amt =
  match Token_bank.deposit env.mirror ~user:who ~for_epoch:0 ~amount0:amt ~amount1:amt with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let dep_both env who amt =
  Twin.bank_deposit env.tw ~user:who ~for_epoch:0 ~amount0:amt ~amount1:amt;
  dep_mirror env who amt

(* ------------------------------------------------------------------ *)
(* Audit semantics                                                     *)
(* ------------------------------------------------------------------ *)

let test_clean_audit () =
  let env = make_env () in
  seed_scalars env;
  let row = Bytes.make 192 'a' in
  Twin.record env.tw ~label:"swap" [ (Twin.Dep_row alice, Some row) ];
  dep_both env alice one_e18;
  let lv =
    live env
      ~dep:(fun a -> if Address.equal a alice then Some row else None)
      ~dep_dirty:(fun () -> [ alice ])
      ()
  in
  Alcotest.(check (list string)) "no reports" []
    (List.map Twin.report_to_string (Twin.audit env.tw ~epoch:0 lv));
  Alcotest.(check int) "one audit" 1 (Twin.audits_run env.tw);
  Alcotest.(check int) "no divergences" 0 (Twin.divergences env.tw)

let test_bisects_exact_op_index () =
  let env = make_env () in
  seed_scalars env;
  let row_a = Bytes.make 192 'a' and row_b = Bytes.make 192 'b' in
  let row_c = Bytes.make 192 'c' in
  (* Global indices: 0 = seed, 1..3 below. *)
  Twin.record env.tw ~label:"swap" [ (Twin.Dep_row alice, Some row_a) ];
  Twin.record env.tw ~label:"mint" [ (Twin.Dep_row alice, Some row_b) ];
  Twin.record env.tw ~label:"swap" [ (Twin.Dep_row bob, Some row_c) ];
  let corrupted = Bytes.copy row_b in
  Bytes.set corrupted 7 '\255';
  let lv =
    live env
      ~dep:(fun a ->
        if Address.equal a alice then Some corrupted
        else if Address.equal a bob then Some row_c
        else None)
      ~dep_dirty:(fun () -> [ alice; bob ])
      ()
  in
  match Twin.audit env.tw ~epoch:0 lv with
  | [ r ] ->
    Alcotest.(check string) "key" ("dep:" ^ Address.to_hex alice)
      (Twin.key_to_string r.Twin.r_key);
    (* The culprit is the *last* op that wrote the row — global index 2,
       not the earlier write at index 1. *)
    Alcotest.(check (option (pair int string))) "exact culprit op"
      (Some (2, "mint")) r.Twin.r_culprit;
    Alcotest.(check bool) "expected is the op's after-image" true
      (r.Twin.r_expected = Some row_b);
    Alcotest.(check bool) "actual is the live bytes" true
      (r.Twin.r_actual = Some corrupted)
  | rs ->
    Alcotest.fail
      (Printf.sprintf "expected 1 report, got %d" (List.length rs))

let test_out_of_band_has_no_culprit () =
  let env = make_env () in
  seed_scalars env;
  (* Nothing ever wrote carol's row; the live side marks it dirty with
     garbage — silent corruption, attributable to no op. *)
  let garbage = Bytes.make 192 'z' in
  let lv =
    live env
      ~dep:(fun a -> if Address.equal a carol then Some garbage else None)
      ~dep_dirty:(fun () -> [ carol ])
      ()
  in
  (match Twin.audit env.tw ~epoch:0 lv with
  | [ r ] ->
    Alcotest.(check (option (pair int string))) "out-of-band" None r.Twin.r_culprit;
    Alcotest.(check string) "deposits layer" "deposits"
      (Twin.layer_to_string r.Twin.r_layer);
    (* An absent row compares as 192 zero bytes. *)
    Alcotest.(check bool) "expected zeros" true
      (r.Twin.r_expected = Some (Bytes.make 192 '\000'))
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 report, got %d" (List.length rs)));
  Alcotest.(check int) "counted" 1 (Twin.divergences env.tw)

let test_live_bank_drift_is_bank_layer_divergence () =
  let env = make_env () in
  seed_scalars env;
  dep_both env alice one_e18;
  (match Twin.audit env.tw ~epoch:0 (live env ()) with
  | [] -> ()
  | rs -> Alcotest.fail (Printf.sprintf "clean epoch diverged (%d)" (List.length rs)));
  (* Epoch 1: the live bank applies a deposit the twin never hears
     about. No window op wrote the meta section, so the divergence is
     out-of-band at the bank layer. *)
  dep_mirror env bob one_e18;
  match Twin.audit env.tw ~epoch:1 (live env ()) with
  | [ r ] ->
    Alcotest.(check string) "bank meta" "bank.meta" (Twin.key_to_string r.Twin.r_key);
    Alcotest.(check (option (pair int string))) "no window culprit" None r.Twin.r_culprit
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 report, got %d" (List.length rs))

let test_replica_rejection_surfaces () =
  let env = make_env () in
  seed_scalars env;
  dep_both env alice one_e18;
  (* Feed the twin a gapped sync (epoch 5 when 0 is expected). The
     replica rejects it; the audit must surface that as a bank-layer
     divergence bisected to the sync op even though the live meta bytes
     still agree. *)
  let p =
    { Sync_payload.epoch = 5; pool = 0; pool_balance0 = U256.zero;
      pool_balance1 = U256.zero; users = []; positions = [];
      next_committee_vk = snd env.keys.(1) }
  in
  let bad_sync_index = Twin.op_count env.tw in
  Twin.bank_sync env.tw [ (p, Bls.sign (fst env.keys.(0)) (Sync_payload.signing_bytes p)) ];
  let reports = Twin.audit env.tw ~epoch:0 (live env ()) in
  Alcotest.(check bool) "at least one report" true (reports <> []);
  Alcotest.(check bool) "bisected to the sync op" true
    (List.exists
       (fun r -> r.Twin.r_culprit = Some (bad_sync_index, "bank.sync"))
       reports)

let test_checkpoint_restore_reorg_symmetry () =
  let env = make_env () in
  seed_scalars env;
  dep_both env alice one_e18;
  let ck = Twin.checkpoint env.tw in
  let mck = Token_bank.checkpoint env.mirror in
  (* Both sides apply bob's deposit, then the chain reorgs it away. *)
  dep_both env bob one_e18;
  let before = Twin.op_count env.tw in
  Twin.restore env.tw ck;
  Token_bank.restore env.mirror mck;
  Alcotest.(check bool) "rollback op recorded" true (Twin.op_count env.tw > before);
  match Twin.audit env.tw ~epoch:0 (live env ()) with
  | [] -> ()
  | rs ->
    Alcotest.fail
      (Printf.sprintf "restore broke twin/live agreement: %s"
         (String.concat "; " (List.map Twin.report_to_string rs)))

(* ------------------------------------------------------------------ *)
(* Time travel and what-if                                             *)
(* ------------------------------------------------------------------ *)

let test_time_travel () =
  let env = make_env () in
  seed_scalars env;
  let row = Bytes.make 192 'r' in
  Twin.record env.tw ~label:"swap" [ (Twin.Dep_row alice, Some row) ];
  dep_both env alice one_e18;
  let lv0 =
    live env
      ~dep:(fun a -> if Address.equal a alice then Some row else None)
      ~dep_dirty:(fun () -> [ alice ])
      ()
  in
  Alcotest.(check (list string)) "epoch 0 clean" []
    (List.map Twin.report_to_string (Twin.audit env.tw ~epoch:0 lv0));
  dep_both env bob (U256.mul one_e18 U256.two);
  Alcotest.(check (list string)) "epoch 1 clean" []
    (List.map Twin.report_to_string (Twin.audit env.tw ~epoch:1 (live env ())));
  let v = Twin.view env.tw in
  Alcotest.(check (list int)) "sealed epochs" [ 0; 1 ] (Twin.epochs_sealed v);
  (match Twin.custody_at v ~epoch:0 with
  | Some (c0, c1) ->
    Alcotest.(check string) "custody0 at epoch 0" (U256.to_string one_e18)
      (U256.to_string c0);
    Alcotest.(check string) "custody1 at epoch 0" (U256.to_string one_e18)
      (U256.to_string c1)
  | None -> Alcotest.fail "no custody at epoch 0");
  (match Twin.custody_at v ~epoch:1 with
  | Some (c0, _) ->
    Alcotest.(check string) "custody grew" (U256.to_string (U256.mul one_e18 (U256.of_int 3)))
      (U256.to_string c0)
  | None -> Alcotest.fail "no custody at epoch 1");
  Alcotest.(check bool) "row readable at its seal" true
    (Twin.read_at v ~epoch:0 (Twin.Dep_row alice) = Some row);
  (* Epoch-local deposit rows are dropped at the seal: the row is absent
     from the next epoch's snapshot. *)
  Alcotest.(check bool) "row absent next epoch" true
    (Twin.read_at v ~epoch:1 (Twin.Dep_row alice) = None);
  Alcotest.(check bool) "no custody at unsealed epoch" true
    (Twin.custody_at v ~epoch:9 = None)

let test_what_if_discards_effects () =
  let env = make_env () in
  seed_scalars env;
  dep_both env alice one_e18;
  (* Speculatively deposit against the replica: the value is observable
     inside the fork and gone afterwards. *)
  let spec =
    Twin.what_if env.tw (fun bank ->
        (match
           Token_bank.deposit bank ~user:alice ~for_epoch:1 ~amount0:one_e18
             ~amount1:U256.zero
         with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        fst (Token_bank.total_custody bank))
  in
  Alcotest.(check string) "fork saw the deposit"
    (U256.to_string (U256.mul one_e18 U256.two))
    (U256.to_string spec);
  (* The audit against the untouched mirror still passes: nothing
     leaked out of the fork. *)
  match Twin.audit env.tw ~epoch:0 (live env ()) with
  | [] -> ()
  | rs -> Alcotest.fail (Printf.sprintf "what_if leaked: %d reports" (List.length rs))

(* ------------------------------------------------------------------ *)
(* System-level equivalence                                            *)
(* ------------------------------------------------------------------ *)

let sys_base =
  { Config.default with
    epochs = 3;
    daily_volume = 30_000;
    users = 12;
    miners = 40;
    committee_size = 13;
    max_faulty = 4;
    seed = "twin-system-tests" }

let check_detection (r : System.result) =
  (* Every corruption that landed must be reported in the same epoch,
     keyed by the twin's own key string. *)
  List.iter
    (fun (e, k) ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d corruption of %s caught in-epoch" e k)
        true
        (List.exists
           (fun rep ->
             rep.Twin.r_epoch = e && Twin.key_to_string rep.Twin.r_key = k)
           r.System.twin_reports))
    r.System.twin_injections

let qcheck_twin_matches_live =
  QCheck.Test.make ~count:6 ~name:"twin equals live over random fault interleavings"
    QCheck.(pair (int_bound 1000) (int_bound 2))
    (fun (n, intensity_idx) ->
      (* Chaos exercises reorgs, sync drops, degraded signing and
         watchdog transitions; corruption stays off, so any divergence
         is a false positive. *)
      let faults =
        match intensity_idx with
        | 0 -> Faults.Fault_plan.none
        | 1 -> Faults.Fault_plan.chaos ~intensity:0.04 ()
        | _ -> Faults.Fault_plan.chaos ~intensity:0.08 ()
      in
      let cfg =
        { sys_base with
          Config.faults;
          mc_confirmations = (if intensity_idx = 0 then sys_base.Config.mc_confirmations else 3);
          seed = Printf.sprintf "twin-qc-%d-%d" n intensity_idx }
      in
      let r = System.run cfg in
      r.System.twin_audits > 0
      && r.System.twin_divergences = 0
      && r.System.twin_consistent
      && r.System.twin_injections = []
      && r.System.replay_consistent)

let test_scripted_corruption_detected () =
  let spr = sys_base.Config.sc_rounds_per_epoch in
  List.iter
    (fun (label, target) ->
      let cfg =
        { sys_base with
          Config.faults =
            { Faults.Fault_plan.none with
              Faults.Fault_plan.corruption =
                { Faults.Fault_plan.corruption_rate = 0.0;
                  corruption_script = [ (1, spr - 1, target) ] } };
          seed = sys_base.Config.seed ^ "-" ^ label }
      in
      let r = System.run cfg in
      Alcotest.(check bool) (label ^ " landed") true (r.System.twin_injections <> []);
      Alcotest.(check bool) (label ^ " flagged") false r.System.twin_consistent;
      check_detection r;
      Alcotest.(check bool) (label ^ " left normal mode") true
        (r.System.mode_transitions <> []))
    [ ("dep", Faults.Fault_plan.Deposit_row);
      ("pos", Faults.Fault_plan.Position_slab);
      ("tick", Faults.Fault_plan.Pool_tick) ]

let test_twin_covers_halt_exit_reconcile () =
  (* Quorum starvation: degraded → halted (exits served) → reconcile →
     normal. The twin replays the halt, every exit and the reconcile on
     its replica and must still match the live bank byte-for-byte. *)
  let cfg =
    { sys_base with
      Config.epochs = 8;
      faults =
        { Faults.Fault_plan.none with
          Faults.Fault_plan.scenario =
            { Faults.Fault_plan.quorum_starvation = Some (2, 5); committee_loss = None } };
      watchdog =
        { Config.default_watchdog with Config.wd_stall_degraded = 2; wd_stall_halted = 4 };
      seed = "twin-halt-cycle" }
  in
  let r = System.run cfg in
  Alcotest.(check string) "recovered" "normal" r.System.final_mode;
  Alcotest.(check bool) "exits happened" true (r.System.exits_served > 0);
  Alcotest.(check bool) "reconciliation applied" true (r.System.reconciliation <> None);
  Alcotest.(check int) "no twin divergence across the cycle" 0 r.System.twin_divergences;
  Alcotest.(check bool) "twin audited the run" true (r.System.twin_audits > 0);
  Alcotest.(check bool) "replay oracle (oracle of the oracle)" true
    r.System.replay_consistent

let test_twin_off_runs_clean () =
  let cfg = { sys_base with Config.twin_audit = false; seed = "twin-off" } in
  let r = System.run cfg in
  Alcotest.(check int) "no audits" 0 r.System.twin_audits;
  Alcotest.(check bool) "vacuously consistent" true r.System.twin_consistent;
  Alcotest.(check bool) "no view" true (r.System.twin_view = None);
  Alcotest.(check bool) "replay oracle still on" true r.System.replay_consistent

let () =
  Alcotest.run "twin"
    [ ( "audit",
        [ Alcotest.test_case "clean audit reports nothing" `Quick test_clean_audit;
          Alcotest.test_case "bisects to the exact op index" `Quick
            test_bisects_exact_op_index;
          Alcotest.test_case "out-of-band corruption has no culprit" `Quick
            test_out_of_band_has_no_culprit;
          Alcotest.test_case "live bank drift is bank-layer divergence" `Quick
            test_live_bank_drift_is_bank_layer_divergence;
          Alcotest.test_case "replica rejection surfaces" `Quick
            test_replica_rejection_surfaces;
          Alcotest.test_case "checkpoint/restore reorg symmetry" `Quick
            test_checkpoint_restore_reorg_symmetry ] );
      ( "time-travel",
        [ Alcotest.test_case "custody_at / read_at / epochs_sealed" `Quick
            test_time_travel;
          Alcotest.test_case "what_if discards effects" `Quick
            test_what_if_discards_effects ] );
      ( "system",
        [ QCheck_alcotest.to_alcotest ~long:false qcheck_twin_matches_live;
          Alcotest.test_case "scripted corruption detected in-epoch" `Slow
            test_scripted_corruption_detected;
          Alcotest.test_case "halt/exit/reconcile cycle stays consistent" `Slow
            test_twin_covers_halt_exit_reconcile;
          Alcotest.test_case "twin off: no audits, oracle intact" `Quick
            test_twin_off_runs_clean ] ) ]
