lib/tokenbank/sync_payload.ml: Amm_crypto Amm_math Bytes Chain List
