lib/tokenbank/token_bank.mli: Amm_crypto Amm_math Chain Mainchain Sync_payload
