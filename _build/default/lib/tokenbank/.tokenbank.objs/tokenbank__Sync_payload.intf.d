lib/tokenbank/sync_payload.mli: Amm_crypto Amm_math Chain
