lib/tokenbank/token_bank.ml: Amm_crypto Amm_math Chain Hashtbl Int List Mainchain Map Option Printf Result Sync_payload
