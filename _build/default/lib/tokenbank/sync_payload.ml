module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id
module Encoding = Chain.Encoding

type user_entry = {
  user : Address.t;
  payin0 : U256.t;
  payin1 : U256.t;
  payout0 : U256.t;
  payout1 : U256.t;
}

type position_entry = {
  pos_id : Position_id.t;
  owner : Address.t;
  lower_tick : int;
  upper_tick : int;
  liquidity : U256.t;
  amount0 : U256.t;
  amount1 : U256.t;
  fees0 : U256.t;
  fees1 : U256.t;
  deleted : bool;
}

type t = {
  epoch : int;
  pool : int;
  pool_balance0 : U256.t;
  pool_balance1 : U256.t;
  users : user_entry list;
  positions : position_entry list;
  next_committee_vk : Amm_crypto.Bls.public_key;
}

let tick_word tick =
  if tick >= 0 then Encoding.int_word tick
  else Encoding.word (U256.sub U256.zero (U256.of_int (-tick)))

(* A user entry is 11 ABI words = 352 B: the user key padded to two words
   (as the paper submits full public keys), four amounts, a residual-refund
   marker, and per-entry dynamic-array bookkeeping. *)
let abi_user_entry_size = 352

let abi_user_entry e =
  Bytes.concat Bytes.empty
    [ Encoding.address_word e.user; Bytes.make 32 '\000' (* key high words *)
    ; Encoding.word e.payin0; Encoding.word e.payin1
    ; Encoding.word e.payout0; Encoding.word e.payout1
    ; Bytes.make (5 * 32) '\000' (* refund marker, offsets, reserved *) ]

(* A position entry is 13 ABI words = 416 B. *)
let abi_position_entry_size = 416

let abi_position_entry p =
  Bytes.concat Bytes.empty
    [ Encoding.bytes32_word (Position_id.to_bytes p.pos_id)
    ; Encoding.address_word p.owner; Bytes.make 32 '\000'
    ; tick_word p.lower_tick; tick_word p.upper_tick
    ; Encoding.word p.liquidity
    ; Encoding.word p.amount0; Encoding.word p.amount1
    ; Encoding.word p.fees0; Encoding.word p.fees1
    ; Encoding.int_word (if p.deleted then 1 else 0)
    ; Bytes.make (2 * 32) '\000' (* dynamic-array bookkeeping *) ]

let abi_encode t =
  let head =
    [ Bytes.make Encoding.selector_size '\xab'
    ; Encoding.int_word t.epoch; Encoding.int_word t.pool
    ; Encoding.word t.pool_balance0; Encoding.word t.pool_balance1
    ; Bytes.make (4 * 32) '\000' (* array offsets and lengths *)
    ; Amm_crypto.Bls.public_key_to_bytes t.next_committee_vk ]
  in
  Bytes.concat Bytes.empty
    (head @ List.map abi_user_entry t.users @ List.map abi_position_entry t.positions)

let abi_size t = Bytes.length (abi_encode t) + Amm_crypto.Bls.signature_size

let signing_bytes t = Amm_crypto.Sha256.digest (abi_encode t)

let storage_words t =
  (* Positions persist as 6 words each (192 B, Table 6); deleted entries
     free their slots instead. Pool balances: 2 words. Next vk: 4 words. *)
  let live = List.length (List.filter (fun p -> not p.deleted) t.positions) in
  (6 * live) + 2 + 4
