(** The price observation oracle of Uniswap V3: a ring buffer of
    cumulative (tick x time) observations written as the pool's price
    moves, from which time-weighted average prices (TWAPs) over arbitrary
    recent windows are computed. Lens contracts read this on-chain
    history (App. B.1); the baseline deployment carries it, and ammBoost
    can serve it from the sidechain state. *)

type t

val create : ?capacity:int -> time:float -> tick:int -> unit -> t
(** A fresh oracle seeded with the pool's initial tick. [capacity] is the
    ring size (V3's "observation cardinality", default 128). *)

val capacity : t -> int
val observation_count : t -> int
(** Observations currently stored (at most [capacity]). *)

val write : t -> time:float -> tick:int -> unit
(** Records the pool tick at a timestamp. Writes at a timestamp equal to
    the previous observation's are coalesced (one observation per block,
    as in V3). Raises [Invalid_argument] if time moves backwards. *)

val tick_cumulative_at : t -> time:float -> float
(** The cumulative tick·seconds accumulator interpolated/extrapolated at
    a query time, as V3's [observe]. Raises [Invalid_argument] for times
    before the oldest stored observation. *)

val twap_tick : t -> now:float -> window:float -> float
(** Time-weighted average tick over [[now - window, now]]; the TWAP price
    is [1.0001 ** twap_tick]. *)

val oldest_time : t -> float
val newest_time : t -> float
