(** Per-tick state and the initialized-tick table of a concentrated
    liquidity pool (Uniswap V3's Tick + TickBitmap equivalents; the
    next-initialized-tick search uses an ordered set instead of a
    bitmap). *)

module U256 = Amm_math.U256
module Signed = Amm_math.Signed

type info = {
  mutable liquidity_gross : U256.t;   (** total liquidity referencing the tick *)
  mutable liquidity_net : Signed.t;   (** net liquidity added crossing left→right *)
  mutable fee_growth_outside0 : U256.t;  (** X128 *)
  mutable fee_growth_outside1 : U256.t;  (** X128 *)
}

type table

val create : tick_spacing:int -> table
val clone : table -> table
(** Deep copy (per-tick records included), for auditing replays. *)

val tick_spacing : table -> int

val find : table -> int -> info option
val is_initialized : table -> int -> bool

val update :
  table -> tick:int -> current_tick:int ->
  fee_growth_global0:U256.t -> fee_growth_global1:U256.t ->
  liquidity_delta:Amm_math.Liquidity_math.delta -> upper:bool -> bool
(** Applies a mint/burn liquidity delta to the tick; returns [true] when
    the tick flipped between initialized and uninitialized. Initializes
    fee-growth-outside to the global values for ticks at or below the
    current tick, as V3 does. *)

val clear : table -> int -> unit

val cross :
  table -> tick:int -> fee_growth_global0:U256.t -> fee_growth_global1:U256.t -> Signed.t
(** Crossing during a swap: flips the fee-growth-outside snapshots and
    returns the liquidity-net to apply. *)

val next_initialized : table -> from_tick:int -> lte:bool -> int option
(** Nearest initialized tick at or below ([lte]) / strictly above the
    given tick. *)

val initialized_count : table -> int
val fold : table -> init:'a -> f:(int -> info -> 'a -> 'a) -> 'a
