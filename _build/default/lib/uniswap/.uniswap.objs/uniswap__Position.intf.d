lib/uniswap/position.mli: Amm_math Chain
