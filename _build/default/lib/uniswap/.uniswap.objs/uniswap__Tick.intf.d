lib/uniswap/tick.mli: Amm_math
