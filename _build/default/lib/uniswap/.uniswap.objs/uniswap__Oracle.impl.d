lib/uniswap/oracle.ml: Array Stdlib
