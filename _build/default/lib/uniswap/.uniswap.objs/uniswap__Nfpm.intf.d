lib/uniswap/nfpm.mli: Amm_math Chain Pool Router
