lib/uniswap/router.mli: Amm_math Chain Pool
