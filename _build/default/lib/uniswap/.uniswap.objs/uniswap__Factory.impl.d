lib/uniswap/factory.ml: Hashtbl Pool
