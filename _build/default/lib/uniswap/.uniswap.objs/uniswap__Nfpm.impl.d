lib/uniswap/nfpm.ml: Amm_crypto Amm_math Bytes Chain Hashtbl List Option Pool Position Result Router
