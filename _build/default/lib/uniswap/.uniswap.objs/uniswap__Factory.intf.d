lib/uniswap/factory.mli: Amm_math Chain Pool
