lib/uniswap/router.ml: Amm_math Chain Pool Position Result
