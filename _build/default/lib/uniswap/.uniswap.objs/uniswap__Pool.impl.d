lib/uniswap/pool.ml: Amm_math Chain Hashtbl Position Stdlib Tick
