lib/uniswap/oracle.mli:
