lib/uniswap/tick.ml: Amm_math Hashtbl Int Set
