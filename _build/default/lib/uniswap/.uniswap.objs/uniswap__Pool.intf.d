lib/uniswap/pool.mli: Amm_math Chain Position
