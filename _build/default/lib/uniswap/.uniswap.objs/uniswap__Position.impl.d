lib/uniswap/position.ml: Amm_crypto Amm_math Chain
