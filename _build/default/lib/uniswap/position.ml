module U256 = Amm_math.U256
module Liquidity_math = Amm_math.Liquidity_math
module Address = Chain.Address

type t = {
  id : Chain.Ids.Position_id.t;
  owner : Address.t;
  lower_tick : int;
  upper_tick : int;
  mutable liquidity : U256.t;
  mutable fee_growth_inside0_last : U256.t;
  mutable fee_growth_inside1_last : U256.t;
  mutable tokens_owed0 : U256.t;
  mutable tokens_owed1 : U256.t;
}

let create ~id ~owner ~lower_tick ~upper_tick =
  { id; owner; lower_tick; upper_tick; liquidity = U256.zero;
    fee_growth_inside0_last = U256.zero; fee_growth_inside1_last = U256.zero;
    tokens_owed0 = U256.zero; tokens_owed1 = U256.zero }

let q128 = Amm_math.Q96.q128

let update t ~liquidity_delta ~fee_growth_inside0 ~fee_growth_inside1 =
  (* Fees owed since last touch: Δgrowth (wrapping) · L / 2^128. *)
  let owed0 =
    U256.mul_div (U256.sub fee_growth_inside0 t.fee_growth_inside0_last) t.liquidity q128
  in
  let owed1 =
    U256.mul_div (U256.sub fee_growth_inside1 t.fee_growth_inside1_last) t.liquidity q128
  in
  t.tokens_owed0 <- U256.add t.tokens_owed0 owed0;
  t.tokens_owed1 <- U256.add t.tokens_owed1 owed1;
  t.fee_growth_inside0_last <- fee_growth_inside0;
  t.fee_growth_inside1_last <- fee_growth_inside1;
  t.liquidity <- Liquidity_math.apply_delta t.liquidity liquidity_delta

let is_empty t =
  U256.is_zero t.liquidity && U256.is_zero t.tokens_owed0 && U256.is_zero t.tokens_owed1

let derive_id ~minter ~tx_id =
  Chain.Ids.Position_id.of_hash
    (Amm_crypto.Sha256.concat
       [ Chain.Ids.Tx_id.to_bytes tx_id; Address.to_bytes minter ])
