(** User-facing entry points over {!Pool} — the SwapRouter /
    NonfungiblePositionManager equivalents: slippage guards on swaps,
    ownership checks and amount→liquidity conversion for liquidity
    management. Both the baseline (on the mainchain) and the ammBoost
    sidechain committee process transactions through this same logic. *)

module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id

type swap_outcome = {
  spent : U256.t;      (** input consumed, fee included *)
  received : U256.t;
  fee : U256.t;
  ticks_crossed : int;
}

val exact_input :
  Pool.t ->
  zero_for_one:bool ->
  amount_in:U256.t ->
  min_amount_out:U256.t ->
  ?sqrt_price_limit:U256.t ->
  unit ->
  (swap_outcome, string) result
(** Trades the full input for as much output as possible; fails when the
    output falls short of [min_amount_out] or the input cannot be fully
    consumed within the price limit. *)

val exact_output :
  Pool.t ->
  zero_for_one:bool ->
  amount_out:U256.t ->
  max_amount_in:U256.t ->
  ?sqrt_price_limit:U256.t ->
  unit ->
  (swap_outcome, string) result
(** Buys exactly [amount_out] for the least input; fails if more than
    [max_amount_in] would be needed or the pool cannot produce the
    output. *)

(** {1 Multi-hop swaps}

    The SwapRouter's path execution: each hop trades the previous hop's
    output into the next pool (V3's [exactInput] with a multi-pool
    path). *)

type hop = {
  hop_pool : Pool.t;
  hop_zero_for_one : bool;  (** direction within this pool *)
}

val exact_input_path :
  path:hop list ->
  amount_in:U256.t ->
  min_amount_out:U256.t ->
  (swap_outcome, string) result
(** Swaps along the path; [spent] is the first hop's input, [received]
    the last hop's output, [fee] the sum of all hop fees. Fails atomically
    only in the sense that a failing hop aborts the rest — like the real
    router, earlier hops have already executed, so callers guard with
    [min_amount_out]. *)

type mint_outcome = {
  minted_liquidity : U256.t;
  amount0_used : U256.t;
  amount1_used : U256.t;
}

val mint :
  Pool.t ->
  position_id:Position_id.t ->
  owner:Address.t ->
  lower_tick:int ->
  upper_tick:int ->
  amount0_desired:U256.t ->
  amount1_desired:U256.t ->
  (mint_outcome, string) result
(** Converts the desired token budgets into the maximum fundable
    liquidity (V3's [getLiquidityForAmounts]) and mints it. Re-minting an
    existing position id requires the same owner and range. *)

type burn_outcome = {
  burned_liquidity : U256.t;
  amount0_owed : U256.t;   (** credited to tokens_owed, not yet paid *)
  amount1_owed : U256.t;
  position_deleted : bool; (** all liquidity withdrawn *)
}

val burn :
  Pool.t ->
  position_id:Position_id.t ->
  caller:Address.t ->
  amount0_requested:U256.t ->
  amount1_requested:U256.t ->
  (burn_outcome, string) result
(** Withdraws up to the requested token amounts from the caller's
    position (full withdrawal when the requests cover the position). *)

type collect_outcome = { collected0 : U256.t; collected1 : U256.t; position_deleted : bool }

val collect :
  Pool.t ->
  position_id:Position_id.t ->
  caller:Address.t ->
  amount0_requested:U256.t ->
  amount1_requested:U256.t ->
  (collect_outcome, string) result
(** Pays out owed fees/principal up to the requested amounts; only the
    owner may collect. *)
