(** Pool registry — the PoolFactory/PoolDeployer equivalent. *)

type t

val create : unit -> t

val create_pool :
  t ->
  token0:Chain.Token.t ->
  token1:Chain.Token.t ->
  fee_pips:int ->
  tick_spacing:int ->
  sqrt_price:Amm_math.U256.t ->
  Pool.t
(** Deploys a new pool with a fresh id. *)

val find : t -> int -> Pool.t option
val pools : t -> Pool.t list
val count : t -> int
