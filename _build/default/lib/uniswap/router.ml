module U256 = Amm_math.U256
module Swap_math = Amm_math.Swap_math
module Tick_math = Amm_math.Tick_math
module Liquidity_math = Amm_math.Liquidity_math
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id

type swap_outcome = {
  spent : U256.t;
  received : U256.t;
  fee : U256.t;
  ticks_crossed : int;
}

let ( let* ) = Result.bind

let limit_or_default pool ~zero_for_one = function
  | Some l -> l
  | None ->
    ignore pool;
    Pool.default_price_limit ~zero_for_one

let exact_input pool ~zero_for_one ~amount_in ~min_amount_out ?sqrt_price_limit () =
  let sqrt_price_limit = limit_or_default pool ~zero_for_one sqrt_price_limit in
  let* r =
    Pool.swap pool ~zero_for_one ~amount:(Swap_math.Exact_in amount_in) ~sqrt_price_limit
  in
  if U256.lt r.Pool.amount_in amount_in then Error "router: input not fully consumable"
  else if U256.lt r.Pool.amount_out min_amount_out then Error "router: slippage (output too low)"
  else
    Ok { spent = r.Pool.amount_in; received = r.Pool.amount_out; fee = r.Pool.fee_paid;
         ticks_crossed = r.Pool.ticks_crossed }

let exact_output pool ~zero_for_one ~amount_out ~max_amount_in ?sqrt_price_limit () =
  let sqrt_price_limit = limit_or_default pool ~zero_for_one sqrt_price_limit in
  let* r =
    Pool.swap pool ~zero_for_one ~amount:(Swap_math.Exact_out amount_out) ~sqrt_price_limit
  in
  if U256.lt r.Pool.amount_out amount_out then Error "router: insufficient liquidity for output"
  else if U256.gt r.Pool.amount_in max_amount_in then Error "router: slippage (input too high)"
  else
    Ok { spent = r.Pool.amount_in; received = r.Pool.amount_out; fee = r.Pool.fee_paid;
         ticks_crossed = r.Pool.ticks_crossed }

type hop = {
  hop_pool : Pool.t;
  hop_zero_for_one : bool;
}

let exact_input_path ~path ~amount_in ~min_amount_out =
  match path with
  | [] -> Error "router: empty path"
  | _ :: _ ->
    let rec hop_loop amount fee crossed = function
      | [] -> Ok (amount, fee, crossed)
      | h :: rest ->
        let* r =
          exact_input h.hop_pool ~zero_for_one:h.hop_zero_for_one ~amount_in:amount
            ~min_amount_out:U256.zero ()
        in
        hop_loop r.received (U256.add fee r.fee) (crossed + r.ticks_crossed) rest
    in
    let* received, fee, ticks_crossed = hop_loop amount_in U256.zero 0 path in
    if U256.lt received min_amount_out then Error "router: slippage (path output too low)"
    else Ok { spent = amount_in; received; fee; ticks_crossed }

type mint_outcome = {
  minted_liquidity : U256.t;
  amount0_used : U256.t;
  amount1_used : U256.t;
}

let mint pool ~position_id ~owner ~lower_tick ~upper_tick ~amount0_desired ~amount1_desired =
  (* Reject malformed ranges before any tick-math computation — a bad
     transaction must surface as an error, never an exception. *)
  let* () =
    if lower_tick >= upper_tick then Error "router: lower tick must be below upper tick"
    else if lower_tick < Tick_math.min_tick || upper_tick > Tick_math.max_tick then
      Error "router: tick out of range"
    else Ok ()
  in
  let sqrt_a = Tick_math.get_sqrt_ratio_at_tick lower_tick in
  let sqrt_b = Tick_math.get_sqrt_ratio_at_tick upper_tick in
  let liquidity =
    Liquidity_math.get_liquidity_for_amounts ~sqrt_price:(Pool.sqrt_price pool) ~sqrt_a
      ~sqrt_b ~amount0:amount0_desired ~amount1:amount1_desired
  in
  if U256.is_zero liquidity then Error "router: amounts too small for any liquidity"
  else
    let* amount0_used, amount1_used =
      Pool.mint pool ~position_id ~owner ~lower_tick ~upper_tick ~liquidity
    in
    (* getLiquidityForAmounts guarantees the used amounts never exceed the
       desired budgets (up to rounding, checked here). *)
    if U256.gt amount0_used amount0_desired || U256.gt amount1_used amount1_desired then
      Error "router: internal rounding exceeded desired amounts"
    else Ok { minted_liquidity = liquidity; amount0_used; amount1_used }

type burn_outcome = {
  burned_liquidity : U256.t;
  amount0_owed : U256.t;
  amount1_owed : U256.t;
  position_deleted : bool;
}

let owned_position pool ~position_id ~caller =
  match Pool.find_position pool position_id with
  | None -> Error "router: unknown position"
  | Some p ->
    if Address.equal p.Position.owner caller then Ok p
    else Error "router: caller does not own the position"

let burn pool ~position_id ~caller ~amount0_requested ~amount1_requested =
  let* position = owned_position pool ~position_id ~caller in
  let held = position.Position.liquidity in
  if U256.is_zero held then Error "router: position has no liquidity"
  else begin
    let sqrt_a = Tick_math.get_sqrt_ratio_at_tick position.Position.lower_tick in
    let sqrt_b = Tick_math.get_sqrt_ratio_at_tick position.Position.upper_tick in
    (* How much liquidity the requested token amounts correspond to; a
       request covering the whole position burns it entirely. *)
    let full0, full1 =
      Liquidity_math.get_amounts_for_liquidity ~sqrt_price:(Pool.sqrt_price pool) ~sqrt_a
        ~sqrt_b ~liquidity:held
    in
    let liquidity =
      if U256.ge amount0_requested full0 && U256.ge amount1_requested full1 then held
      else
        U256.min held
          (Liquidity_math.get_liquidity_for_amounts ~sqrt_price:(Pool.sqrt_price pool)
             ~sqrt_a ~sqrt_b ~amount0:amount0_requested ~amount1:amount1_requested)
    in
    if U256.is_zero liquidity then Error "router: requested amounts burn no liquidity"
    else
      let* amount0_owed, amount1_owed = Pool.burn pool ~position_id ~liquidity in
      let deleted = U256.is_zero (U256.sub held liquidity) in
      Ok { burned_liquidity = liquidity; amount0_owed; amount1_owed;
           position_deleted = deleted }
  end

type collect_outcome = { collected0 : U256.t; collected1 : U256.t; position_deleted : bool }

let collect pool ~position_id ~caller ~amount0_requested ~amount1_requested =
  let* _position = owned_position pool ~position_id ~caller in
  let* collected0, collected1 =
    Pool.collect pool ~position_id ~amount0_requested ~amount1_requested
  in
  let deleted = Pool.find_position pool position_id = None in
  Ok { collected0; collected1; position_deleted = deleted }
