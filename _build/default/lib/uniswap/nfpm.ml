module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id

type token_id = int

type token = {
  t_owner : Address.t;
  t_approved : Address.t option;
  t_position : Position_id.t;
}

type t = {
  self : Address.t;
  mutable next_id : int;
  tokens : (token_id, token) Hashtbl.t;
}

let create () =
  { self = Address.of_label "NonfungiblePositionManager"; next_id = 1;
    tokens = Hashtbl.create 32 }

let address t = t.self
let owner_of t id = Option.map (fun tok -> tok.t_owner) (Hashtbl.find_opt t.tokens id)
let token_count t = Hashtbl.length t.tokens

let tokens_of t owner =
  Hashtbl.fold
    (fun id tok acc -> if Address.equal tok.t_owner owner then id :: acc else acc)
    t.tokens []
  |> List.sort compare

let ( let* ) = Result.bind

let position_id t token_id =
  (* Position ids derive from the manager and the token, so each NFT maps
     to exactly one pool position. *)
  Position_id.of_hash
    (Amm_crypto.Sha256.concat
       [ Address.to_bytes t.self; Bytes.of_string (string_of_int token_id) ])

let mint t pool ~recipient ~lower_tick ~upper_tick ~amount0_desired ~amount1_desired =
  let id = t.next_id in
  let pid = position_id t id in
  let* outcome =
    Router.mint pool ~position_id:pid ~owner:t.self ~lower_tick ~upper_tick
      ~amount0_desired ~amount1_desired
  in
  t.next_id <- id + 1;
  Hashtbl.replace t.tokens id { t_owner = recipient; t_approved = None; t_position = pid };
  Ok (id, outcome)

let authorized t ~caller token_id =
  match Hashtbl.find_opt t.tokens token_id with
  | None -> Error "nfpm: unknown token"
  | Some tok ->
    if Address.equal tok.t_owner caller
       || (match tok.t_approved with Some op -> Address.equal op caller | None -> false)
    then Ok tok
    else Error "nfpm: caller is not owner nor approved"

let approve t ~caller token_id ~operator =
  match Hashtbl.find_opt t.tokens token_id with
  | None -> Error "nfpm: unknown token"
  | Some tok ->
    if not (Address.equal tok.t_owner caller) then Error "nfpm: only the owner can approve"
    else begin
      Hashtbl.replace t.tokens token_id { tok with t_approved = operator };
      Ok ()
    end

let transfer t ~caller token_id ~dest =
  let* tok = authorized t ~caller token_id in
  Hashtbl.replace t.tokens token_id { tok with t_owner = dest; t_approved = None };
  Ok ()

let increase_liquidity t pool ~caller token_id ~amount0_desired ~amount1_desired =
  let* tok = authorized t ~caller token_id in
  match Pool.find_position pool tok.t_position with
  | None -> Error "nfpm: position no longer exists"
  | Some p ->
    Router.mint pool ~position_id:tok.t_position ~owner:t.self
      ~lower_tick:p.Position.lower_tick ~upper_tick:p.Position.upper_tick
      ~amount0_desired ~amount1_desired

let decrease_liquidity t pool ~caller token_id ~amount0_requested ~amount1_requested =
  let* tok = authorized t ~caller token_id in
  Router.burn pool ~position_id:tok.t_position ~caller:t.self ~amount0_requested
    ~amount1_requested

let collect t pool ~caller token_id ~amount0_requested ~amount1_requested =
  let* tok = authorized t ~caller token_id in
  Router.collect pool ~position_id:tok.t_position ~caller:t.self ~amount0_requested
    ~amount1_requested

let burn t pool ~caller token_id =
  let* tok = authorized t ~caller token_id in
  match Pool.find_position pool tok.t_position with
  | Some _ -> Error "nfpm: position still holds liquidity or owed tokens"
  | None ->
    Hashtbl.remove t.tokens token_id;
    Ok ()
