(** Liquidity positions: a share of pool liquidity over a tick range,
    with per-position fee accounting (Uniswap V3's Position library).
    Ownership is tracked by address — the scheme ammBoost uses on the
    sidechain (§4.2 "Mints": identifier plus owner public key). *)

module U256 = Amm_math.U256
module Address = Chain.Address

type t = {
  id : Chain.Ids.Position_id.t;
  owner : Address.t;
  lower_tick : int;
  upper_tick : int;
  mutable liquidity : U256.t;
  mutable fee_growth_inside0_last : U256.t;  (** X128 snapshot *)
  mutable fee_growth_inside1_last : U256.t;
  mutable tokens_owed0 : U256.t;
  mutable tokens_owed1 : U256.t;
}

val create :
  id:Chain.Ids.Position_id.t -> owner:Address.t -> lower_tick:int -> upper_tick:int -> t

val update :
  t ->
  liquidity_delta:Amm_math.Liquidity_math.delta ->
  fee_growth_inside0:U256.t ->
  fee_growth_inside1:U256.t ->
  unit
(** Credits fees accrued since the last touch into [tokens_owed] and
    applies the liquidity delta. *)

val is_empty : t -> bool
(** No liquidity and nothing owed — eligible for deletion. *)

val derive_id :
  minter:Address.t -> tx_id:Chain.Ids.Tx_id.t -> Chain.Ids.Position_id.t
(** ammBoost's position identifier: hash of the mint transaction and the
    LP's identity (§4.2). *)
