type t = { mutable next_id : int; table : (int, Pool.t) Hashtbl.t }

let create () = { next_id = 0; table = Hashtbl.create 8 }

let create_pool t ~token0 ~token1 ~fee_pips ~tick_spacing ~sqrt_price =
  let pool_id = t.next_id in
  t.next_id <- pool_id + 1;
  let pool = Pool.create ~pool_id ~token0 ~token1 ~fee_pips ~tick_spacing ~sqrt_price in
  Hashtbl.add t.table pool_id pool;
  pool

let find t id = Hashtbl.find_opt t.table id
let pools t = Hashtbl.fold (fun _ p acc -> p :: acc) t.table []
let count t = Hashtbl.length t.table
