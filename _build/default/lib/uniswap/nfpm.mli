(** The NonfungiblePositionManager equivalent — V3's NFT wrapper over
    liquidity positions, and the extension ammBoost's Remark 1 discusses:
    the pool-level position is owned by the manager contract itself while
    user-facing ownership lives in a transferable ERC721-style token, so
    positions can be traded between LPs.

    Under ammBoost, NFT minting is a mainchain operation: a position
    created on the sidechain gets its token at the end of the epoch, and
    operations through a fresh token wait for the next epoch (Remark 1).
    This module provides the ownership layer itself; both deployments use
    it identically. *)

module U256 = Amm_math.U256
module Address = Chain.Address

type t
type token_id = int

val create : unit -> t
val address : t -> Address.t
(** The manager's own address — the owner of every wrapped pool
    position. *)

val mint :
  t ->
  Pool.t ->
  recipient:Address.t ->
  lower_tick:int ->
  upper_tick:int ->
  amount0_desired:U256.t ->
  amount1_desired:U256.t ->
  (token_id * Router.mint_outcome, string) result
(** Mints pool liquidity wrapped in a fresh NFT for the recipient. *)

val owner_of : t -> token_id -> Address.t option
val token_count : t -> int
val tokens_of : t -> Address.t -> token_id list

val approve : t -> caller:Address.t -> token_id -> operator:Address.t option ->
  (unit, string) result
(** Grants (or clears) a single approved operator; owner only. *)

val transfer : t -> caller:Address.t -> token_id -> dest:Address.t -> (unit, string) result
(** Moves the NFT — and with it the position — to a new owner. The caller
    must be the owner or the approved operator; approval clears on
    transfer. *)

val increase_liquidity :
  t -> Pool.t -> caller:Address.t -> token_id ->
  amount0_desired:U256.t -> amount1_desired:U256.t ->
  (Router.mint_outcome, string) result

val decrease_liquidity :
  t -> Pool.t -> caller:Address.t -> token_id ->
  amount0_requested:U256.t -> amount1_requested:U256.t ->
  (Router.burn_outcome, string) result

val collect :
  t -> Pool.t -> caller:Address.t -> token_id ->
  amount0_requested:U256.t -> amount1_requested:U256.t ->
  (Router.collect_outcome, string) result

val burn : t -> Pool.t -> caller:Address.t -> token_id -> (unit, string) result
(** Destroys the NFT. Requires the underlying position to be fully
    withdrawn and collected first, as V3's [Burn_NFPM] does. *)
