(* Ring buffer of (time, tick_cumulative) pairs; the cumulative value is
   Σ tick·dt since creation. Between observations the tick is constant,
   so cumulative values interpolate linearly and extrapolate with the
   latest tick, matching V3's observation semantics. *)

type observation = {
  o_time : float;
  o_tick : int;            (* tick active since this observation *)
  o_cumulative : float;    (* Σ tick·dt up to o_time *)
}

type t = {
  ring : observation array;
  mutable next : int;      (* slot for the next write *)
  mutable count : int;
}

let create ?(capacity = 128) ~time ~tick () =
  if capacity < 2 then invalid_arg "Oracle.create: capacity must be at least 2";
  let seed = { o_time = time; o_tick = tick; o_cumulative = 0.0 } in
  let ring = Array.make capacity seed in
  { ring; next = 1; count = 1 }

let capacity t = Array.length t.ring
let observation_count t = t.count

let newest t =
  t.ring.((t.next + Array.length t.ring - 1) mod Array.length t.ring)

let oldest t =
  if t.count < Array.length t.ring then t.ring.(0)
  else t.ring.(t.next mod Array.length t.ring)

let oldest_time t = (oldest t).o_time
let newest_time t = (newest t).o_time

let write t ~time ~tick =
  let last = newest t in
  if time < last.o_time then invalid_arg "Oracle.write: time moved backwards";
  if time = last.o_time then begin
    (* Same block: the last write wins. *)
    let slot = (t.next + Array.length t.ring - 1) mod Array.length t.ring in
    t.ring.(slot) <- { last with o_tick = tick }
  end
  else begin
    let cumulative = last.o_cumulative +. (float_of_int last.o_tick *. (time -. last.o_time)) in
    t.ring.(t.next) <- { o_time = time; o_tick = tick; o_cumulative = cumulative };
    t.next <- (t.next + 1) mod Array.length t.ring;
    t.count <- Stdlib.min (t.count + 1) (Array.length t.ring)
  end

(* Observations in time order. *)
let fold_observations t ~init ~f =
  let len = Array.length t.ring in
  let start = if t.count < len then 0 else t.next mod len in
  let acc = ref init in
  for i = 0 to t.count - 1 do
    acc := f !acc t.ring.((start + i) mod len)
  done;
  !acc

let tick_cumulative_at t ~time =
  if time < oldest_time t then
    invalid_arg "Oracle.tick_cumulative_at: older than the stored history";
  let last = newest t in
  if time >= last.o_time then
    (* Extrapolate with the latest tick. *)
    last.o_cumulative +. (float_of_int last.o_tick *. (time -. last.o_time))
  else begin
    (* Find the observation at or before the query and interpolate. *)
    let before =
      fold_observations t ~init:None ~f:(fun acc o ->
          if o.o_time <= time then Some o else acc)
    in
    match before with
    | Some o -> o.o_cumulative +. (float_of_int o.o_tick *. (time -. o.o_time))
    | None -> assert false (* guarded by the oldest_time check *)
  end

let twap_tick t ~now ~window =
  if window <= 0.0 then invalid_arg "Oracle.twap_tick: window must be positive";
  let c_now = tick_cumulative_at t ~time:now in
  let c_then = tick_cumulative_at t ~time:(now -. window) in
  (c_now -. c_then) /. window
