module U256 = Amm_math.U256
module Signed = Amm_math.Signed
module Liquidity_math = Amm_math.Liquidity_math

type info = {
  mutable liquidity_gross : U256.t;
  mutable liquidity_net : Signed.t;
  mutable fee_growth_outside0 : U256.t;
  mutable fee_growth_outside1 : U256.t;
}

module Int_set = Set.Make (Int)

type table = {
  spacing : int;
  infos : (int, info) Hashtbl.t;
  mutable initialized : Int_set.t;
}

let create ~tick_spacing =
  if tick_spacing <= 0 then invalid_arg "Tick.create: spacing must be positive";
  { spacing = tick_spacing; infos = Hashtbl.create 64; initialized = Int_set.empty }

let clone t =
  let infos = Hashtbl.create (Hashtbl.length t.infos) in
  Hashtbl.iter (fun k (v : info) -> Hashtbl.replace infos k { v with liquidity_gross = v.liquidity_gross }) t.infos;
  { spacing = t.spacing; infos; initialized = t.initialized }

let tick_spacing t = t.spacing

let find t tick = Hashtbl.find_opt t.infos tick
let is_initialized t tick = Int_set.mem tick t.initialized

let get_or_create t tick =
  match Hashtbl.find_opt t.infos tick with
  | Some info -> info
  | None ->
    let info =
      { liquidity_gross = U256.zero; liquidity_net = Signed.zero;
        fee_growth_outside0 = U256.zero; fee_growth_outside1 = U256.zero }
    in
    Hashtbl.add t.infos tick info;
    info

let update t ~tick ~current_tick ~fee_growth_global0 ~fee_growth_global1 ~liquidity_delta
    ~upper =
  if tick mod t.spacing <> 0 then invalid_arg "Tick.update: tick not on spacing";
  let info = get_or_create t tick in
  let gross_before = info.liquidity_gross in
  info.liquidity_gross <- Liquidity_math.apply_delta info.liquidity_gross liquidity_delta;
  let signed_delta =
    match liquidity_delta with
    | Liquidity_math.Add d -> Signed.of_u256 d
    | Liquidity_math.Remove d -> Signed.neg_of_u256 d
  in
  (* Upper ticks subtract liquidity when crossed left→right. *)
  info.liquidity_net <-
    (if upper then Signed.sub info.liquidity_net signed_delta
     else Signed.add info.liquidity_net signed_delta);
  let was = not (U256.is_zero gross_before) in
  let is = not (U256.is_zero info.liquidity_gross) in
  let flipped = was <> is in
  if flipped then begin
    if is then begin
      (* Convention: assume all growth so far happened below the tick. *)
      if tick <= current_tick then begin
        info.fee_growth_outside0 <- fee_growth_global0;
        info.fee_growth_outside1 <- fee_growth_global1
      end;
      t.initialized <- Int_set.add tick t.initialized
    end
    else t.initialized <- Int_set.remove tick t.initialized
  end;
  flipped

let clear t tick =
  Hashtbl.remove t.infos tick;
  t.initialized <- Int_set.remove tick t.initialized

let cross t ~tick ~fee_growth_global0 ~fee_growth_global1 =
  match find t tick with
  | None -> Signed.zero
  | Some info ->
    (* Wrapping subtraction, as in V3. *)
    info.fee_growth_outside0 <- U256.sub fee_growth_global0 info.fee_growth_outside0;
    info.fee_growth_outside1 <- U256.sub fee_growth_global1 info.fee_growth_outside1;
    info.liquidity_net

let next_initialized t ~from_tick ~lte =
  if lte then Int_set.find_last_opt (fun tick -> tick <= from_tick) t.initialized
  else Int_set.find_first_opt (fun tick -> tick > from_tick) t.initialized

let initialized_count t = Int_set.cardinal t.initialized

let fold t ~init ~f = Hashtbl.fold f t.infos init
