(** Signed 256-bit values (sign-magnitude), used for liquidity-net deltas
    on ticks and for net position changes in epoch summaries. *)

type t

val zero : t
val of_u256 : U256.t -> t
val neg_of_u256 : U256.t -> t
val of_int : int -> t
val is_zero : t -> bool
val is_negative : t -> bool
val magnitude : t -> U256.t
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val equal : t -> t -> bool

val apply : U256.t -> t -> U256.t
(** Adds the signed value to an unsigned one; raises {!U256.Overflow} if
    the result would be negative or exceed 256 bits. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
