let get_next_sqrt_price_from_amount0_rounding_up ~sqrt_price ~liquidity ~amount ~add =
  if U256.is_zero amount then sqrt_price
  else begin
    let numerator1 = U256.shift_left liquidity 96 in
    if add then
      (* Preferred precise path: L<<96 * sqrtP / (L<<96 + amount*sqrtP);
         falls back to the division-first form when the product overflows,
         exactly as the Solidity implementation. *)
      match U256.checked_mul amount sqrt_price with
      | product ->
        (match U256.checked_add numerator1 product with
         | denominator -> U256.mul_div_rounding_up numerator1 sqrt_price denominator
         | exception U256.Overflow ->
           U256.div_rounding_up numerator1 (U256.add (U256.div numerator1 sqrt_price) amount))
      | exception U256.Overflow ->
        U256.div_rounding_up numerator1 (U256.add (U256.div numerator1 sqrt_price) amount)
    else begin
      let product = U256.checked_mul amount sqrt_price in
      if U256.le numerator1 product then raise U256.Overflow;
      let denominator = U256.sub numerator1 product in
      U256.mul_div_rounding_up numerator1 sqrt_price denominator
    end
  end

let get_next_sqrt_price_from_amount1_rounding_down ~sqrt_price ~liquidity ~amount ~add =
  if add then begin
    let quotient =
      if U256.le amount Q96.q160_max then U256.div (U256.shift_left amount 96) liquidity
      else U256.mul_div amount Q96.q96 liquidity
    in
    U256.checked_add sqrt_price quotient
  end
  else begin
    let quotient =
      if U256.le amount Q96.q160_max then U256.div_rounding_up (U256.shift_left amount 96) liquidity
      else U256.mul_div_rounding_up amount Q96.q96 liquidity
    in
    if U256.le sqrt_price quotient then raise U256.Overflow;
    U256.sub sqrt_price quotient
  end

let get_next_sqrt_price_from_input ~sqrt_price ~liquidity ~amount_in ~zero_for_one =
  if U256.is_zero sqrt_price || U256.is_zero liquidity then
    invalid_arg "Sqrt_price_math.get_next_sqrt_price_from_input";
  if zero_for_one then
    get_next_sqrt_price_from_amount0_rounding_up ~sqrt_price ~liquidity ~amount:amount_in ~add:true
  else
    get_next_sqrt_price_from_amount1_rounding_down ~sqrt_price ~liquidity ~amount:amount_in ~add:true

let get_next_sqrt_price_from_output ~sqrt_price ~liquidity ~amount_out ~zero_for_one =
  if U256.is_zero sqrt_price || U256.is_zero liquidity then
    invalid_arg "Sqrt_price_math.get_next_sqrt_price_from_output";
  if zero_for_one then
    get_next_sqrt_price_from_amount1_rounding_down ~sqrt_price ~liquidity ~amount:amount_out ~add:false
  else
    get_next_sqrt_price_from_amount0_rounding_up ~sqrt_price ~liquidity ~amount:amount_out ~add:false

let get_amount0_delta ~sqrt_a ~sqrt_b ~liquidity ~round_up =
  let sqrt_a, sqrt_b = if U256.gt sqrt_a sqrt_b then (sqrt_b, sqrt_a) else (sqrt_a, sqrt_b) in
  if U256.is_zero sqrt_a then invalid_arg "Sqrt_price_math.get_amount0_delta: zero price";
  let numerator1 = U256.shift_left liquidity 96 in
  let numerator2 = U256.sub sqrt_b sqrt_a in
  if round_up then
    U256.div_rounding_up (U256.mul_div_rounding_up numerator1 numerator2 sqrt_b) sqrt_a
  else
    U256.div (U256.mul_div numerator1 numerator2 sqrt_b) sqrt_a

let get_amount1_delta ~sqrt_a ~sqrt_b ~liquidity ~round_up =
  let sqrt_a, sqrt_b = if U256.gt sqrt_a sqrt_b then (sqrt_b, sqrt_a) else (sqrt_a, sqrt_b) in
  let diff = U256.sub sqrt_b sqrt_a in
  if round_up then U256.mul_div_rounding_up liquidity diff Q96.q96
  else U256.mul_div liquidity diff Q96.q96
