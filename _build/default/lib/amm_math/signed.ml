type t = { negative : bool; mag : U256.t }
(* Invariant: zero is never negative. *)

let normalize t = if U256.is_zero t.mag then { negative = false; mag = U256.zero } else t

let zero = { negative = false; mag = U256.zero }
let of_u256 mag = { negative = false; mag }
let neg_of_u256 mag = normalize { negative = true; mag }

let of_int n =
  if n >= 0 then of_u256 (U256.of_int n) else neg_of_u256 (U256.of_int (-n))

let is_zero t = U256.is_zero t.mag
let is_negative t = t.negative
let magnitude t = t.mag
let neg t = normalize { t with negative = not t.negative }

let add a b =
  if a.negative = b.negative then { a with mag = U256.checked_add a.mag b.mag }
  else if U256.ge a.mag b.mag then normalize { a with mag = U256.sub a.mag b.mag }
  else normalize { b with mag = U256.sub b.mag a.mag }

let sub a b = add a (neg b)
let equal a b = a.negative = b.negative && U256.equal a.mag b.mag

let apply base t =
  if t.negative then U256.checked_sub base t.mag else U256.checked_add base t.mag

let to_string t = (if t.negative then "-" else "") ^ U256.to_string t.mag
let pp fmt t = Format.pp_print_string fmt (to_string t)
