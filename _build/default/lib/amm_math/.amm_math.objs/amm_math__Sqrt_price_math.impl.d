lib/amm_math/sqrt_price_math.ml: Q96 U256
