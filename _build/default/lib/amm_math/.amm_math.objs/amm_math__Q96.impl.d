lib/amm_math/q96.ml: U256
