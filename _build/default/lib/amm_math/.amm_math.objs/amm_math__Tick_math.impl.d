lib/amm_math/tick_math.ml: Array Printf Q96 U256
