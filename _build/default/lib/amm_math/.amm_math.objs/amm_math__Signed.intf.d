lib/amm_math/signed.mli: Format U256
