lib/amm_math/liquidity_math.mli: U256
