lib/amm_math/signed.ml: Format U256
