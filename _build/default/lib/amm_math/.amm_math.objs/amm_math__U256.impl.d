lib/amm_math/u256.ml: Array Buffer Bytes Char Format Int64 List Printf Stdlib String
