lib/amm_math/u256.mli: Format
