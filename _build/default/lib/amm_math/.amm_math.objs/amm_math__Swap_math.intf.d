lib/amm_math/swap_math.mli: U256
