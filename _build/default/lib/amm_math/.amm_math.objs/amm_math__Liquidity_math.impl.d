lib/amm_math/liquidity_math.ml: Q96 Sqrt_price_math U256
