lib/amm_math/swap_math.ml: Sqrt_price_math U256
