lib/amm_math/tick_math.mli: U256
