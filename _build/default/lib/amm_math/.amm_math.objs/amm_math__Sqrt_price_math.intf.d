lib/amm_math/sqrt_price_math.mli: U256
