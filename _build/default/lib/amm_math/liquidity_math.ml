type delta =
  | Add of U256.t
  | Remove of U256.t

let apply_delta liquidity = function
  | Add d -> U256.checked_add liquidity d
  | Remove d -> U256.checked_sub liquidity d

let order sqrt_a sqrt_b = if U256.gt sqrt_a sqrt_b then (sqrt_b, sqrt_a) else (sqrt_a, sqrt_b)

let get_liquidity_for_amount0 ~sqrt_a ~sqrt_b ~amount0 =
  let sqrt_a, sqrt_b = order sqrt_a sqrt_b in
  let intermediate = U256.mul_div sqrt_a sqrt_b Q96.q96 in
  U256.mul_div amount0 intermediate (U256.sub sqrt_b sqrt_a)

let get_liquidity_for_amount1 ~sqrt_a ~sqrt_b ~amount1 =
  let sqrt_a, sqrt_b = order sqrt_a sqrt_b in
  U256.mul_div amount1 Q96.q96 (U256.sub sqrt_b sqrt_a)

let get_liquidity_for_amounts ~sqrt_price ~sqrt_a ~sqrt_b ~amount0 ~amount1 =
  let sqrt_a, sqrt_b = order sqrt_a sqrt_b in
  if U256.le sqrt_price sqrt_a then get_liquidity_for_amount0 ~sqrt_a ~sqrt_b ~amount0
  else if U256.lt sqrt_price sqrt_b then
    let liquidity0 = get_liquidity_for_amount0 ~sqrt_a:sqrt_price ~sqrt_b ~amount0 in
    let liquidity1 = get_liquidity_for_amount1 ~sqrt_a ~sqrt_b:sqrt_price ~amount1 in
    U256.min liquidity0 liquidity1
  else get_liquidity_for_amount1 ~sqrt_a ~sqrt_b ~amount1

let amounts ~round_up ~sqrt_price ~sqrt_a ~sqrt_b ~liquidity =
  let sqrt_a, sqrt_b = order sqrt_a sqrt_b in
  if U256.le sqrt_price sqrt_a then
    (Sqrt_price_math.get_amount0_delta ~sqrt_a ~sqrt_b ~liquidity ~round_up, U256.zero)
  else if U256.lt sqrt_price sqrt_b then
    ( Sqrt_price_math.get_amount0_delta ~sqrt_a:sqrt_price ~sqrt_b ~liquidity ~round_up,
      Sqrt_price_math.get_amount1_delta ~sqrt_a ~sqrt_b:sqrt_price ~liquidity ~round_up )
  else (U256.zero, Sqrt_price_math.get_amount1_delta ~sqrt_a ~sqrt_b ~liquidity ~round_up)

let get_amounts_for_liquidity = amounts ~round_up:false
let get_amounts_for_liquidity_rounding_up = amounts ~round_up:true
