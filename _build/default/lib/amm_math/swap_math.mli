(** The single-step swap computation within one tick range, following
    Uniswap V3's [SwapMath.computeSwapStep]. *)

type amount_specified =
  | Exact_in of U256.t   (** remaining input the swapper still wants to spend *)
  | Exact_out of U256.t  (** remaining output the swapper still wants to receive *)

type step_result = {
  sqrt_price_next : U256.t;  (** price after this step (Q64.96) *)
  amount_in : U256.t;        (** input consumed by the step, fee excluded *)
  amount_out : U256.t;       (** output produced by the step *)
  fee_amount : U256.t;       (** fee taken on the input side *)
}

val fee_denominator : int
(** 1_000_000: fees are expressed in hundredths of a bip ("pips"). *)

val compute_swap_step :
  sqrt_price_current:U256.t ->
  sqrt_price_target:U256.t ->
  liquidity:U256.t ->
  amount_remaining:amount_specified ->
  fee_pips:int ->
  step_result
(** Computes how far the price moves toward the target within the current
    liquidity range, how much is consumed/produced, and the fee charged.
    The swap direction is implied by the order of current and target
    prices. *)
