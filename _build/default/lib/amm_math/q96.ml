(* Shared fixed-point constants for the Q64.96 sqrt-price representation. *)

let resolution = 96

let q96 = U256.shift_left U256.one 96
(* 2^96: one in Q64.96. *)

let q128 = U256.shift_left U256.one 128
let q160_max = U256.sub (U256.shift_left U256.one 160) U256.one
let u128_max = U256.sub q128 U256.one

let to_float_q96 x = U256.to_float x /. U256.to_float q96
