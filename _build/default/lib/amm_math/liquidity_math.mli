(** Conversions between token amounts and liquidity shares, following
    Uniswap V3's [LiquidityAmounts], plus signed liquidity deltas. *)

type delta =
  | Add of U256.t     (** mint: liquidity increases *)
  | Remove of U256.t  (** burn: liquidity decreases *)

val apply_delta : U256.t -> delta -> U256.t
(** Applies a signed delta to a liquidity amount. Raises {!U256.Overflow}
    when removing more than is present. *)

val get_liquidity_for_amount0 : sqrt_a:U256.t -> sqrt_b:U256.t -> amount0:U256.t -> U256.t
(** Maximum liquidity fundable with [amount0] of token0 over the range. *)

val get_liquidity_for_amount1 : sqrt_a:U256.t -> sqrt_b:U256.t -> amount1:U256.t -> U256.t
(** Maximum liquidity fundable with [amount1] of token1 over the range. *)

val get_liquidity_for_amounts :
  sqrt_price:U256.t -> sqrt_a:U256.t -> sqrt_b:U256.t ->
  amount0:U256.t -> amount1:U256.t -> U256.t
(** Maximum liquidity fundable with both budgets at the current price. *)

val get_amounts_for_liquidity :
  sqrt_price:U256.t -> sqrt_a:U256.t -> sqrt_b:U256.t -> liquidity:U256.t ->
  U256.t * U256.t
(** Token amounts [(amount0, amount1)] represented by a liquidity share
    over the range at the current price (rounded down, as on burn). *)

val get_amounts_for_liquidity_rounding_up :
  sqrt_price:U256.t -> sqrt_a:U256.t -> sqrt_b:U256.t -> liquidity:U256.t ->
  U256.t * U256.t
(** Like {!get_amounts_for_liquidity} but rounded up, as owed on mint. *)
