(** Price movement math for constant-product pools with concentrated
    liquidity, following Uniswap V3's [SqrtPriceMath]. All prices are
    Q64.96 sqrt prices; liquidity and amounts are unsigned. *)

val get_next_sqrt_price_from_amount0_rounding_up :
  sqrt_price:U256.t -> liquidity:U256.t -> amount:U256.t -> add:bool -> U256.t
(** Next sqrt price after adding (or removing) [amount] of token0. *)

val get_next_sqrt_price_from_amount1_rounding_down :
  sqrt_price:U256.t -> liquidity:U256.t -> amount:U256.t -> add:bool -> U256.t
(** Next sqrt price after adding (or removing) [amount] of token1. *)

val get_next_sqrt_price_from_input :
  sqrt_price:U256.t -> liquidity:U256.t -> amount_in:U256.t -> zero_for_one:bool -> U256.t
(** Price after an exact input of the given amount; rounds against the
    swapper. *)

val get_next_sqrt_price_from_output :
  sqrt_price:U256.t -> liquidity:U256.t -> amount_out:U256.t -> zero_for_one:bool -> U256.t
(** Price after an exact output of the given amount; rounds against the
    swapper. Raises {!U256.Overflow} if the pool cannot provide the
    output. *)

val get_amount0_delta :
  sqrt_a:U256.t -> sqrt_b:U256.t -> liquidity:U256.t -> round_up:bool -> U256.t
(** Amount of token0 covering the price range between the two sqrt
    prices at the given liquidity. *)

val get_amount1_delta :
  sqrt_a:U256.t -> sqrt_b:U256.t -> liquidity:U256.t -> round_up:bool -> U256.t
(** Amount of token1 covering the price range between the two sqrt
    prices at the given liquidity. *)
