type amount_specified =
  | Exact_in of U256.t
  | Exact_out of U256.t

type step_result = {
  sqrt_price_next : U256.t;
  amount_in : U256.t;
  amount_out : U256.t;
  fee_amount : U256.t;
}

let fee_denominator = 1_000_000

let compute_swap_step ~sqrt_price_current ~sqrt_price_target ~liquidity ~amount_remaining
    ~fee_pips =
  let zero_for_one = U256.ge sqrt_price_current sqrt_price_target in
  let fee_den = U256.of_int fee_denominator in
  let fee_complement = U256.of_int (fee_denominator - fee_pips) in
  let sqrt_price_next =
    match amount_remaining with
    | Exact_in amount ->
      let amount_remaining_less_fee = U256.mul_div amount fee_complement fee_den in
      let amount_in_to_target =
        if zero_for_one then
          Sqrt_price_math.get_amount0_delta ~sqrt_a:sqrt_price_target
            ~sqrt_b:sqrt_price_current ~liquidity ~round_up:true
        else
          Sqrt_price_math.get_amount1_delta ~sqrt_a:sqrt_price_current
            ~sqrt_b:sqrt_price_target ~liquidity ~round_up:true
      in
      if U256.ge amount_remaining_less_fee amount_in_to_target then sqrt_price_target
      else
        Sqrt_price_math.get_next_sqrt_price_from_input ~sqrt_price:sqrt_price_current
          ~liquidity ~amount_in:amount_remaining_less_fee ~zero_for_one
    | Exact_out amount ->
      let amount_out_to_target =
        if zero_for_one then
          Sqrt_price_math.get_amount1_delta ~sqrt_a:sqrt_price_target
            ~sqrt_b:sqrt_price_current ~liquidity ~round_up:false
        else
          Sqrt_price_math.get_amount0_delta ~sqrt_a:sqrt_price_current
            ~sqrt_b:sqrt_price_target ~liquidity ~round_up:false
      in
      if U256.ge amount amount_out_to_target then sqrt_price_target
      else
        Sqrt_price_math.get_next_sqrt_price_from_output ~sqrt_price:sqrt_price_current
          ~liquidity ~amount_out:amount ~zero_for_one
  in
  let reached_target = U256.equal sqrt_price_next sqrt_price_target in
  let amount_in =
    if zero_for_one then
      Sqrt_price_math.get_amount0_delta ~sqrt_a:sqrt_price_next ~sqrt_b:sqrt_price_current
        ~liquidity ~round_up:true
    else
      Sqrt_price_math.get_amount1_delta ~sqrt_a:sqrt_price_current ~sqrt_b:sqrt_price_next
        ~liquidity ~round_up:true
  in
  let amount_out =
    if zero_for_one then
      Sqrt_price_math.get_amount1_delta ~sqrt_a:sqrt_price_next ~sqrt_b:sqrt_price_current
        ~liquidity ~round_up:false
    else
      Sqrt_price_math.get_amount0_delta ~sqrt_a:sqrt_price_current ~sqrt_b:sqrt_price_next
        ~liquidity ~round_up:false
  in
  (* Never deliver more than an exact-output swap asked for. *)
  let amount_out =
    match amount_remaining with
    | Exact_out amount when U256.gt amount_out amount -> amount
    | Exact_out _ | Exact_in _ -> amount_out
  in
  let fee_amount =
    match amount_remaining with
    | Exact_in amount when not reached_target ->
      (* The whole remaining input is consumed: the fee is whatever is left
         after the in-range amount, so no input dust escapes the pool. *)
      U256.sub amount amount_in
    | Exact_in _ | Exact_out _ ->
      U256.mul_div_rounding_up amount_in (U256.of_int fee_pips) fee_complement
  in
  { sqrt_price_next; amount_in; amount_out; fee_amount }
