(* 32-byte content identifiers for transactions, positions and blocks. *)

module type ID = sig
  type t

  val of_hash : bytes -> t
  val to_bytes : t -> bytes
  val to_hex : t -> string
  val short : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
end

module Make () : ID = struct
  type t = bytes

  let of_hash b =
    if Bytes.length b <> 32 then invalid_arg "Ids: need a 32-byte hash";
    b

  let to_bytes t = Bytes.copy t
  let to_hex t = Amm_crypto.Hex.of_bytes t
  let short t = String.sub (to_hex t) 0 8
  let equal = Bytes.equal
  let compare = Bytes.compare
  let pp fmt t = Format.pp_print_string fmt (short t)

  module Ord = struct
    type nonrec t = t

    let compare = compare
  end

  module Map = Map.Make (Ord)
  module Set = Set.Make (Ord)
end

module Tx_id = Make ()
module Position_id = Make ()
module Block_id = Make ()
