module U256 = Amm_math.U256

type swap_kind = Exact_input | Exact_output

type swap = {
  zero_for_one : bool;
  kind : swap_kind;
  amount_specified : U256.t;
  amount_limit : U256.t;
  sqrt_price_limit : U256.t;
  deadline : int;
}

type position_target =
  | New_position
  | Existing_position of Ids.Position_id.t

type mint = {
  lower_tick : int;
  upper_tick : int;
  amount0_desired : U256.t;
  amount1_desired : U256.t;
  target : position_target;
}

type burn = {
  burn_position : Ids.Position_id.t;
  amount0_requested : U256.t;
  amount1_requested : U256.t;
}

type collect = {
  collect_position : Ids.Position_id.t;
  fees0_requested : U256.t;
  fees1_requested : U256.t;
}

type payload =
  | Swap of swap
  | Mint of mint
  | Burn of burn
  | Collect of collect

type t = {
  id : Ids.Tx_id.t;
  issuer : Address.t;
  issuer_pk : Amm_crypto.Bls.public_key;
  pool : int;
  payload : payload;
  issued_round : int;
  issued_at : float;
  signature : Amm_crypto.Bls.signature option;
  wire_size : int;
}

let op_of_payload = function
  | Swap _ -> Encoding.Op_swap
  | Mint _ -> Encoding.Op_mint
  | Burn _ -> Encoding.Op_burn
  | Collect _ -> Encoding.Op_collect

(* Ticks can be negative; ABI words are unsigned two's complement. *)
let tick_word tick =
  if tick >= 0 then Encoding.int_word tick
  else Encoding.word (U256.sub U256.zero (U256.of_int (-tick)))

let fields_of ~issuer ~pool payload =
  let addr = Encoding.address_word issuer in
  let pool_w = Encoding.int_word pool in
  match payload with
  | Swap s ->
    let flags = (if s.zero_for_one then 1 else 0) lor (match s.kind with Exact_input -> 0 | Exact_output -> 2) in
    [ addr; pool_w; Encoding.int_word flags; Encoding.word s.amount_specified;
      Encoding.word s.amount_limit; Encoding.word s.sqrt_price_limit;
      Encoding.int_word s.deadline ]
  | Mint m ->
    let target_w =
      match m.target with
      | New_position -> Encoding.int_word 0
      | Existing_position pid -> Encoding.bytes32_word (Ids.Position_id.to_bytes pid)
    in
    [ addr; pool_w; tick_word m.lower_tick; tick_word m.upper_tick;
      Encoding.word m.amount0_desired; Encoding.word m.amount1_desired; target_w ]
  | Burn b ->
    [ addr; pool_w; Encoding.bytes32_word (Ids.Position_id.to_bytes b.burn_position);
      Encoding.word b.amount0_requested; Encoding.word b.amount1_requested ]
  | Collect c ->
    [ addr; pool_w; Encoding.bytes32_word (Ids.Position_id.to_bytes c.collect_position);
      Encoding.word c.fees0_requested; Encoding.word c.fees1_requested ]

let create ?sign ~issuer ~issuer_pk ~pool ~issued_round ~issued_at payload =
  let op = op_of_payload payload in
  let fields = fields_of ~issuer ~pool payload in
  let wire =
    Encoding.transaction_wire ~op ~fields
      ~padding:(Encoding.universal_router_padding op)
  in
  (* The id commits to the round so identical re-submissions differ. *)
  let id_input =
    Bytes.concat Bytes.empty (fields @ [ Encoding.int_word issued_round ])
  in
  let id = Ids.Tx_id.of_hash (Amm_crypto.Sha256.digest id_input) in
  let signature =
    Option.map (fun sk -> Amm_crypto.Bls.sign sk (Ids.Tx_id.to_bytes id)) sign
  in
  { id; issuer; issuer_pk; pool; payload; issued_round; issued_at; signature;
    wire_size = Bytes.length wire }

let verify_signature t =
  match t.signature with
  | None -> false
  | Some s -> Amm_crypto.Bls.verify t.issuer_pk (Ids.Tx_id.to_bytes t.id) s

let type_name = function
  | Swap _ -> "swap"
  | Mint _ -> "mint"
  | Burn _ -> "burn"
  | Collect _ -> "collect"

let pp fmt t =
  Format.fprintf fmt "%s[%a by %a @%d]" (type_name t.payload) Ids.Tx_id.pp t.id
    Address.pp t.issuer t.issued_round
