type t = bytes (* exactly 20 bytes *)

let of_bytes b =
  if Bytes.length b <> 20 then invalid_arg "Address.of_bytes: need 20 bytes";
  Bytes.copy b

let of_public_key pk =
  let h = Amm_crypto.Keccak256.digest (Amm_crypto.Bls.public_key_to_bytes pk) in
  Bytes.sub h 12 20

let of_label label = Bytes.sub (Amm_crypto.Keccak256.digest_string label) 12 20
let to_bytes t = Bytes.copy t
let to_hex t = "0x" ^ Amm_crypto.Hex.of_bytes t
let equal = Bytes.equal
let compare = Bytes.compare
let pp fmt t = Format.pp_print_string fmt (to_hex t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
