module U256 = Amm_math.U256

type op = Op_swap | Op_mint | Op_burn | Op_collect

let envelope_size = 110
let selector_size = 4
let word_size = 32

let word v = U256.to_bytes_be v

let int_word n = word (U256.of_int n)

let address_word a =
  let b = Bytes.make word_size '\000' in
  Bytes.blit (Address.to_bytes a) 0 b 12 20;
  b

let bytes32_word h =
  if Bytes.length h <> 32 then invalid_arg "Encoding.bytes32_word";
  Bytes.copy h

(* Router overhead (ABI offsets, array headers, command strings, permit
   blobs). Word/byte counts are calibrated so that envelope + selector +
   genuine fields + padding reproduces the measured averages:
   Table 8 (universal router, production Ethereum):
     swap 1007.83 B, mint 814.49 B, burn 907.07 B, collect 921.80 B
   Table 7 (simple router, Sepolia):
     swap 365.27 B, mint 565.55 B, burn 280.21 B, collect 150.18 B.
   Genuine field words: swap 7, mint 7, burn 5, collect 5 (see Tx). *)
let universal_router_padding = function
  | Op_swap -> (20, 30)
  | Op_mint -> (14, 28)
  | Op_burn -> (19, 25)
  | Op_collect -> (20, 8)

let simple_router_padding = function
  | Op_swap -> (0, 27)
  | Op_mint -> (7, 3)
  | Op_burn -> (0, 6)
  | Op_collect -> (0, 4)

let transaction_wire ~op:_ ~fields ~padding:(pad_words, pad_bytes) =
  let buf = Buffer.create 512 in
  (* Envelope placeholder: nonce/gas/to/value/signature of a legacy tx. *)
  Buffer.add_bytes buf (Bytes.make envelope_size '\xee');
  Buffer.add_bytes buf (Bytes.make selector_size '\xab');
  List.iter (Buffer.add_bytes buf) fields;
  Buffer.add_bytes buf (Bytes.make (pad_words * word_size) '\000');
  Buffer.add_bytes buf (Bytes.make pad_bytes '\000');
  Buffer.to_bytes buf

let genuine_words = function Op_swap -> 7 | Op_mint -> 7 | Op_burn | Op_collect -> 5

let size_with padding op =
  let pad_words, pad_bytes = padding op in
  envelope_size + selector_size + ((genuine_words op + pad_words) * word_size) + pad_bytes

(* Sepolia's observed collect (150.18 B) is below even our 5 genuine words;
   the simple router elides fields there, so the baseline sizes are modeled
   directly from the measured table. *)
let sepolia_op_size = function
  | Op_swap -> 365
  | Op_mint -> 566
  | Op_burn -> 280
  | Op_collect -> 150

let ethereum_op_size op = size_with universal_router_padding op
