type 'tx t = {
  queue : 'tx Queue.t;
  size : 'tx -> int;
  mutable bytes : int;
}

let create ~size = { queue = Queue.create (); size; bytes = 0 }

let push t tx =
  Queue.push tx t.queue;
  t.bytes <- t.bytes + t.size tx

let length t = Queue.length t.queue
let byte_size t = t.bytes
let is_empty t = Queue.is_empty t.queue

let take_up_to t ~max_bytes =
  let taken = ref [] in
  let used = ref 0 in
  let continue = ref true in
  while !continue && not (Queue.is_empty t.queue) do
    let tx = Queue.peek t.queue in
    let sz = t.size tx in
    if !used + sz <= max_bytes || (!used = 0 && sz > max_bytes) then begin
      ignore (Queue.pop t.queue);
      t.bytes <- t.bytes - sz;
      used := !used + sz;
      taken := tx :: !taken
    end
    else continue := false
  done;
  List.rev !taken

let drop_if t pred =
  let kept = Queue.create () in
  let dropped = ref 0 in
  Queue.iter
    (fun tx ->
      if pred tx then begin
        incr dropped;
        t.bytes <- t.bytes - t.size tx
      end
      else Queue.push tx kept)
    t.queue;
  Queue.clear t.queue;
  Queue.transfer kept t.queue;
  !dropped

let clear t =
  Queue.clear t.queue;
  t.bytes <- 0

let peek_all t = List.of_seq (Queue.to_seq t.queue)
