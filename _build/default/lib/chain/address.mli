(** 20-byte account addresses, derived from public keys as on Ethereum
    (low 20 bytes of the Keccak-256 of the key). *)

type t

val of_public_key : Amm_crypto.Bls.public_key -> t
val of_bytes : bytes -> t
(** Requires exactly 20 bytes. *)

val of_label : string -> t
(** Deterministic address for named system accounts (contracts, test
    users). *)

val to_bytes : t -> bytes
val to_hex : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
