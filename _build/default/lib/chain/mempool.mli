(** A FIFO transaction queue with byte accounting — the pending pool a
    block producer drains up to its block capacity. *)

type 'tx t

val create : size:('tx -> int) -> 'tx t
val push : 'tx t -> 'tx -> unit
val length : 'tx t -> int
val byte_size : 'tx t -> int
val is_empty : 'tx t -> bool

val take_up_to : 'tx t -> max_bytes:int -> 'tx list
(** Removes and returns the longest FIFO prefix fitting in [max_bytes]
    (a transaction larger than [max_bytes] on its own is returned alone
    rather than wedging the queue forever). *)

val drop_if : 'tx t -> ('tx -> bool) -> int
(** Removes entries matching the predicate (e.g. expired deadlines);
    returns how many were dropped. *)

val clear : 'tx t -> unit
val peek_all : 'tx t -> 'tx list
