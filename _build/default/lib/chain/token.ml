type t = { id : int; symbol : string }

let make ~id ~symbol = { id; symbol }
let id t = t.id
let symbol t = t.symbol
let equal a b = a.id = b.id
let compare a b = Stdlib.compare a.id b.id
let pp fmt t = Format.pp_print_string fmt t.symbol

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
