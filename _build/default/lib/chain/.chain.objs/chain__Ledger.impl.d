lib/chain/ledger.ml: Array List
