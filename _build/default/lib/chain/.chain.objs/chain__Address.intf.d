lib/chain/address.mli: Amm_crypto Format Map Set
