lib/chain/address.ml: Amm_crypto Bytes Format Map Set
