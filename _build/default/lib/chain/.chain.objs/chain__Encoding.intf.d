lib/chain/encoding.mli: Address Amm_math
