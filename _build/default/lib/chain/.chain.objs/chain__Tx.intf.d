lib/chain/tx.mli: Address Amm_crypto Amm_math Encoding Format Ids
