lib/chain/mempool.mli:
