lib/chain/mempool.ml: List Queue
