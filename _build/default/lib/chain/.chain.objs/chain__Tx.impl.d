lib/chain/tx.ml: Address Amm_crypto Amm_math Bytes Encoding Format Ids Option
