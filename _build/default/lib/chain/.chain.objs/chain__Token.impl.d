lib/chain/token.ml: Format Map Stdlib
