lib/chain/ledger.mli:
