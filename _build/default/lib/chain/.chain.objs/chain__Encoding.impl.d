lib/chain/encoding.ml: Address Amm_math Buffer Bytes List
