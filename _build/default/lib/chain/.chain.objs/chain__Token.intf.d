lib/chain/token.mli: Format Map
