lib/chain/ids.ml: Amm_crypto Bytes Format Map Set String
