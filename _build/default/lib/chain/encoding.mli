(** Wire encodings and size models.

    Two encodings matter to the paper's evaluation (Tables 7 and 8):

    - the transaction wire format users broadcast (an Ethereum-style
      envelope plus ABI calldata; Table 8 averages ~1008 B swaps) — this
      bounds the sidechain meta-block capacity and hence throughput;
    - the byte sizes of baseline Uniswap operations on Sepolia (Table 7),
      used for the baseline's mainchain-growth accounting.

    Calldata is genuinely serialized (fields are real 32-byte ABI words);
    the router overhead that the paper's measured averages include (offsets,
    array headers, permit blobs of the Uniswap routers) is modeled as
    documented per-operation padding. *)

module U256 = Amm_math.U256

type op = Op_swap | Op_mint | Op_burn | Op_collect

val envelope_size : int
(** Bytes of a minimal legacy Ethereum transaction envelope including the
    65-byte secp256k1 signature (≈110 B). *)

val selector_size : int
(** 4 bytes of function selector. *)

val word : U256.t -> bytes
(** 32-byte big-endian ABI word. *)

val int_word : int -> bytes
val address_word : Address.t -> bytes
val bytes32_word : bytes -> bytes

val universal_router_padding : op -> int * int
(** (words, loose bytes) of router overhead in the production-Ethereum
    encoding; calibrated so full transactions match the Table 8 averages. *)

val simple_router_padding : op -> int * int
(** Same for the Sepolia simple-router encoding of Table 7. *)

val transaction_wire :
  op:op -> fields:bytes list -> padding:int * int -> bytes
(** Full wire bytes: envelope, selector, the given ABI words, and padding. *)

val sepolia_op_size : op -> int
(** Baseline Uniswap per-operation size on Sepolia (Table 7 model). *)

val ethereum_op_size : op -> int
(** Baseline Uniswap per-operation size on production Ethereum (Table 8
    model), used for the paper's "vs production Ethereum" comparison. *)
