(** AMM transactions — the traffic that ammBoost offloads to the
    sidechain (swaps, mints, burns, collects; flashes stay on the
    mainchain and are modeled in {!module:Mainchain}). Field sets follow
    §4.2 of the paper. *)

module U256 = Amm_math.U256

type swap_kind =
  | Exact_input   (** trade an exact input for the maximum output *)
  | Exact_output  (** trade the minimum input for an exact output *)

type swap = {
  zero_for_one : bool;          (** true: sell token0 for token1 *)
  kind : swap_kind;
  amount_specified : U256.t;    (** exact input or exact output amount *)
  amount_limit : U256.t;        (** min output / max input (slippage guard) *)
  sqrt_price_limit : U256.t;    (** price the trade must not cross *)
  deadline : int;               (** sidechain round after which the swap is void *)
}

type position_target =
  | New_position
  | Existing_position of Ids.Position_id.t

type mint = {
  lower_tick : int;
  upper_tick : int;
  amount0_desired : U256.t;
  amount1_desired : U256.t;
  target : position_target;
}

type burn = {
  burn_position : Ids.Position_id.t;
  amount0_requested : U256.t;
  amount1_requested : U256.t;
}

type collect = {
  collect_position : Ids.Position_id.t;
  fees0_requested : U256.t;
  fees1_requested : U256.t;
}

type payload =
  | Swap of swap
  | Mint of mint
  | Burn of burn
  | Collect of collect

type t = {
  id : Ids.Tx_id.t;
  issuer : Address.t;
  issuer_pk : Amm_crypto.Bls.public_key;
  pool : int;
  payload : payload;
  issued_round : int;           (** sidechain round of broadcast *)
  issued_at : float;            (** simulation time of broadcast, seconds *)
  signature : Amm_crypto.Bls.signature option;
  wire_size : int;              (** serialized size in bytes (Table 8 encoding) *)
}

val create :
  ?sign:Amm_crypto.Bls.secret_key ->
  issuer:Address.t ->
  issuer_pk:Amm_crypto.Bls.public_key ->
  pool:int ->
  issued_round:int ->
  issued_at:float ->
  payload ->
  t
(** Builds a transaction: serializes the payload (fixing [wire_size]),
    hashes it into the id and optionally signs it. *)

val verify_signature : t -> bool
(** True when the transaction carries a valid signature of its id under
    the issuer's key. Unsigned transactions fail. *)

val type_name : payload -> string
val op_of_payload : payload -> Encoding.op
val pp : Format.formatter -> t -> unit
