type 'blk t = {
  mutable blocks : 'blk option array; (* index = height; None = pruned *)
  mutable len : int;
  size : 'blk -> int;
  k_depth : int;
  mutable cumulative_bytes : int;
  mutable stored_bytes : int;
}

let create ~genesis ~size ~k_depth =
  let blocks = Array.make 64 None in
  blocks.(0) <- Some genesis;
  let b = size genesis in
  { blocks; len = 1; size; k_depth; cumulative_bytes = b; stored_bytes = b }

let ensure_capacity t =
  if t.len >= Array.length t.blocks then begin
    let bigger = Array.make (2 * Array.length t.blocks) None in
    Array.blit t.blocks 0 bigger 0 t.len;
    t.blocks <- bigger
  end

let append t blk =
  ensure_capacity t;
  t.blocks.(t.len) <- Some blk;
  t.len <- t.len + 1;
  let b = t.size blk in
  t.cumulative_bytes <- t.cumulative_bytes + b;
  t.stored_bytes <- t.stored_bytes + b

let height t = t.len - 1

let tip t =
  match t.blocks.(t.len - 1) with
  | Some b -> b
  | None -> assert false (* the tip is never pruned *)

let confirmed_height t = height t - t.k_depth
let is_confirmed t h = h >= 0 && h <= confirmed_height t

let nth t h = if h < 0 || h >= t.len then None else t.blocks.(h)

let rollback t n =
  if n < 0 || n >= t.len then invalid_arg "Ledger.rollback";
  let dropped = ref [] in
  for h = t.len - n to t.len - 1 do
    match t.blocks.(h) with
    | Some b ->
      dropped := b :: !dropped;
      let sz = t.size b in
      t.cumulative_bytes <- t.cumulative_bytes - sz;
      t.stored_bytes <- t.stored_bytes - sz;
      t.blocks.(h) <- None
    | None -> ()
  done;
  t.len <- t.len - n;
  List.rev !dropped

let prune t ~keep =
  let reclaimed = ref 0 in
  for h = 1 to t.len - 2 do
    match t.blocks.(h) with
    | Some b when not (keep b) ->
      reclaimed := !reclaimed + t.size b;
      t.blocks.(h) <- None
    | Some _ | None -> ()
  done;
  t.stored_bytes <- t.stored_bytes - !reclaimed;
  !reclaimed

let cumulative_bytes t = t.cumulative_bytes
let stored_bytes t = t.stored_bytes

let iter_stored t f =
  for h = 0 to t.len - 1 do
    match t.blocks.(h) with Some b -> f h b | None -> ()
  done

let k_depth t = t.k_depth
