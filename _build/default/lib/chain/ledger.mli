(** A generic append-only chain of blocks with k-deep confirmation,
    rollback (mainchain forks) and pruning (sidechain meta-block
    suppression). Tracks both cumulative bytes ever appended and bytes
    currently stored — the difference is what pruning reclaimed. *)

type 'blk t

val create : genesis:'blk -> size:('blk -> int) -> k_depth:int -> 'blk t
val append : 'blk t -> 'blk -> unit
val tip : 'blk t -> 'blk
val height : 'blk t -> int
(** Height of the tip; the genesis block is height 0. *)

val confirmed_height : 'blk t -> int
(** Highest height buried under at least [k_depth] blocks. *)

val is_confirmed : 'blk t -> int -> bool
val nth : 'blk t -> int -> 'blk option
(** Block at a height, unless pruned or rolled back. *)

val rollback : 'blk t -> int -> 'blk list
(** [rollback t n] abandons the last [n] blocks (fork switch) and returns
    them, newest first. The genesis block cannot be rolled back. *)

val prune : 'blk t -> keep:('blk -> bool) -> int
(** Drops stored blocks failing [keep] (never the tip or genesis);
    returns the bytes reclaimed. Pruned heights return [None] from
    {!nth}. *)

val cumulative_bytes : 'blk t -> int
(** Total bytes ever appended — the paper's "chain growth". *)

val stored_bytes : 'blk t -> int
(** Bytes currently held after pruning. *)

val iter_stored : 'blk t -> (int -> 'blk -> unit) -> unit
(** Iterates stored blocks in height order. *)

val k_depth : 'blk t -> int
