(** Fungible token identities (the ERC20 contracts of the simulated
    mainchain). A pool always trades an ordered pair (token0, token1). *)

type t

val make : id:int -> symbol:string -> t
val id : t -> int
val symbol : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
