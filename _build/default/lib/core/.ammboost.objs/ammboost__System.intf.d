lib/core/system.mli: Config Tokenbank
