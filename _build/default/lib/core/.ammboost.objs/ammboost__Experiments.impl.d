lib/core/experiments.ml: Amm_crypto Amm_math Baseline Chain Config Float Gas_model List Mainchain Option Party Printf Sidechain Stdlib String Sys System Tokenbank Traffic
