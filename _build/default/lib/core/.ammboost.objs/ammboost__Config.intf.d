lib/core/config.mli: Amm_math Consensus
