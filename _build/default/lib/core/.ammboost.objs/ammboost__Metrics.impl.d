lib/core/metrics.ml: Hashtbl
