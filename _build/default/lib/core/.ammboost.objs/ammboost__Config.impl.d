lib/core/config.ml: Amm_math Consensus Float
