lib/core/experiments.mli: Baseline System Traffic
