lib/core/party.ml: Amm_crypto Array Chain Consensus
