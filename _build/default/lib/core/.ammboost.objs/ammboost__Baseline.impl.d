lib/core/baseline.ml: Amm_crypto Amm_math Array Chain Config Gas_model List Mainchain Option Party Sidechain Tokenbank Traffic Uniswap
