lib/core/gas_model.mli: Chain
