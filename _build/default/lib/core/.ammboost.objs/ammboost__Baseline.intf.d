lib/core/baseline.mli: Config
