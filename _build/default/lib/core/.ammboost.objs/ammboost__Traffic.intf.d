lib/core/traffic.mli: Amm_crypto Chain Config Party
