lib/core/gas_model.ml: Chain List Mainchain
