lib/core/system.ml: Amm_crypto Amm_math Array Bytes Chain Config Consensus Gas_model Hashtbl List Mainchain Metrics Option Party Printf Sidechain Stdlib Tokenbank Traffic Uniswap
