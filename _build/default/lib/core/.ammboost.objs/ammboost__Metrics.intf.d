lib/core/metrics.mli:
