lib/core/party.mli: Amm_crypto Chain Consensus
