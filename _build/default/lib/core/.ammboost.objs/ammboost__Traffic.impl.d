lib/core/traffic.ml: Amm_crypto Amm_math Array Chain Config Hashtbl List Party Stdlib Uniswap
