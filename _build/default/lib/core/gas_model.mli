(** Itemized gas model for the baseline Uniswap-on-mainchain operations.

    Component counts reflect the storage and transfer activity of the
    real V3 contracts; a final "evm execution" residual carries the
    interpreter cost so each operation's total matches the average the
    paper measured on Sepolia (Table 6). *)

val paper_swap_gas : int     (** 160 601 *)

val paper_mint_gas : int     (** 435 610 *)

val paper_burn_gas : int     (** 158 473 *)

val paper_collect_gas : int  (** 163 743 *)

val paper_deposit_gas : int  (** 52 696 *)

val op_gas : Chain.Encoding.op -> int
val op_components : Chain.Encoding.op -> (string * int) list
val total : (string * int) list -> int

val flow_txs_of_op : Chain.Encoding.op -> int
(** Sequential mainchain transactions in the user flow (approvals plus
    the operation), driving the Table 6 confirmation latencies. *)

val deposit_flow_txs : int  (** 4 *)

val sync_flow_txs : int     (** 1 *)
