(* System participants: clients and LPs with key pairs and addresses, and
   the sidechain miner population with stakes (§3 System model). *)

module Rng = Amm_crypto.Rng
module Bls = Amm_crypto.Bls
module Address = Chain.Address

type user = {
  user_index : int;
  sk : Bls.secret_key;
  pk : Bls.public_key;
  address : Address.t;
  is_lp : bool;
}

type miner = {
  m : Consensus.Election.miner;
  m_sk : Bls.secret_key;
}

let make_users rng ~count ~lp_fraction =
  Array.init count (fun i ->
      let sk, pk = Bls.keygen rng in
      { user_index = i; sk; pk; address = Address.of_public_key pk;
        is_lp = float_of_int i < (lp_fraction *. float_of_int count) })

let make_miners rng ~count =
  Array.init count (fun i ->
      let sk, pk = Bls.keygen rng in
      { m = { Consensus.Election.miner_id = i; stake = 1 + Rng.int rng 10; pk };
        m_sk = sk })
