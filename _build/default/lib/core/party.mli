(** System participants (§3): clients and liquidity providers with BLS
    key pairs and derived addresses, and the sidechain miner population
    with proof-of-stake weights for sortition. *)

type user = {
  user_index : int;
  sk : Amm_crypto.Bls.secret_key;
  pk : Amm_crypto.Bls.public_key;
  address : Chain.Address.t;
  is_lp : bool;  (** also provides liquidity (mint/burn/collect traffic) *)
}

type miner = {
  m : Consensus.Election.miner;
  m_sk : Amm_crypto.Bls.secret_key;
}

val make_users : Amm_crypto.Rng.t -> count:int -> lp_fraction:float -> user array
val make_miners : Amm_crypto.Rng.t -> count:int -> miner array
