(* Itemized gas model for the baseline Uniswap-on-mainchain operations.

   Component counts reflect the storage and transfer activity of the real
   V3 contracts (pit-stop ERC20 transfers, slot0/liquidity/fee-growth
   updates, tick and position writes, NFT bookkeeping); a final
   "evm execution" component carries the residual interpreter cost so each
   operation's total matches the average the paper measured on Sepolia
   (Table 6): swap 160 601, mint 435 610, burn 158 473, collect 163 743. *)

module Gas = Mainchain.Gas

let paper_swap_gas = 160_601
let paper_mint_gas = 435_610
let paper_burn_gas = 158_473
let paper_collect_gas = 163_743
let paper_deposit_gas = 52_696

let with_residual ~target components =
  let subtotal = List.fold_left (fun acc (_, v) -> acc + v) 0 components in
  components @ [ ("evm execution", target - subtotal) ]

let swap_components =
  with_residual ~target:paper_swap_gas
    [ ("tx base", Gas.tx_base);
      ("calldata", Gas.calldata_cost_of_size (Chain.Encoding.sepolia_op_size Chain.Encoding.Op_swap));
      ("erc20 transfers (2)", 2 * ((2 * Gas.sload) + (2 * Gas.sstore_update)));
      ("pool reads", 8 * Gas.sload);
      ("slot0/liquidity updates", 3 * Gas.sstore_update);
      ("fee growth writes", 2 * Gas.sstore_word);
      ("tick crossing", Gas.sstore_word) ]

let mint_components =
  with_residual ~target:paper_mint_gas
    [ ("tx base", Gas.tx_base);
      ("calldata", Gas.calldata_cost_of_size (Chain.Encoding.sepolia_op_size Chain.Encoding.Op_mint));
      ("erc20 transfers (2)", 2 * ((2 * Gas.sload) + (2 * Gas.sstore_update)));
      ("NFT mint", 3 * Gas.sstore_word);
      ("position storage (6 words)", 6 * Gas.sstore_word);
      ("tick init (2)", 2 * Gas.sstore_word);
      ("bitmap init", Gas.sstore_word);
      ("pool updates", 3 * Gas.sstore_update);
      ("fee snapshots", 2 * Gas.sstore_word);
      ("pool reads", 20 * Gas.sload) ]

let burn_components =
  with_residual ~target:paper_burn_gas
    [ ("tx base", Gas.tx_base);
      ("calldata", Gas.calldata_cost_of_size (Chain.Encoding.sepolia_op_size Chain.Encoding.Op_burn));
      ("position updates", 4 * Gas.sstore_update);
      ("tick updates (2)", 2 * Gas.sstore_update);
      ("fee calculation reads", 12 * Gas.sload);
      ("owed-token writes", 2 * Gas.sstore_word) ]

let collect_components =
  with_residual ~target:paper_collect_gas
    [ ("tx base", Gas.tx_base);
      ("calldata", Gas.calldata_cost_of_size (Chain.Encoding.sepolia_op_size Chain.Encoding.Op_collect));
      ("erc20 transfers (2)", 2 * ((2 * Gas.sload) + (2 * Gas.sstore_update)));
      ("position fee reset", 2 * Gas.sstore_update);
      ("NFT ownership checks", 6 * Gas.sload) ]

let total components = List.fold_left (fun acc (_, v) -> acc + v) 0 components

let op_gas = function
  | Chain.Encoding.Op_swap -> total swap_components
  | Chain.Encoding.Op_mint -> total mint_components
  | Chain.Encoding.Op_burn -> total burn_components
  | Chain.Encoding.Op_collect -> total collect_components

let op_components = function
  | Chain.Encoding.Op_swap -> swap_components
  | Chain.Encoding.Op_mint -> mint_components
  | Chain.Encoding.Op_burn -> burn_components
  | Chain.Encoding.Op_collect -> collect_components

(* Mainchain user-flow lengths (sequential transactions including the
   final one), driving the Table 6 confirmation latencies: a deposit needs
   two ERC20 approvals plus a transfer-setup leg, a swap one approval, a
   mint two approvals; burns and collects are single transactions. *)
let flow_txs_of_op = function
  | Chain.Encoding.Op_swap -> 2
  | Chain.Encoding.Op_mint -> 3
  | Chain.Encoding.Op_burn -> 1
  | Chain.Encoding.Op_collect -> 1

let deposit_flow_txs = 4
let sync_flow_txs = 1
