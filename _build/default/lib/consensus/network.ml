module Rng = Amm_crypto.Rng

type 'msg t = {
  rng : Rng.t;
  delta : float;
  queue : (int * 'msg) Pqueue.t;
}

let create ~rng ~delta = { rng; delta; queue = Pqueue.create () }
let delta t = t.delta

let send t ~at ~src:_ ~dst msg =
  let delay = t.delta *. (0.1 +. (0.9 *. Rng.float t.rng)) in
  Pqueue.push t.queue (at +. delay) (dst, msg)

let broadcast t ~at ~src ~dsts msg = List.iter (fun dst -> send t ~at ~src ~dst msg) dsts

let schedule t ~at ~dst msg = Pqueue.push t.queue at (dst, msg)

let next t =
  match Pqueue.pop t.queue with
  | Some (time, (dst, msg)) -> Some (time, dst, msg)
  | None -> None

let next_time t = Pqueue.peek_priority t.queue
let pending t = Pqueue.length t.queue
