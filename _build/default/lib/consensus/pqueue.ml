(* Binary min-heap keyed by float priority; ties break by insertion order
   so simulations stay deterministic. *)

type 'a t = {
  mutable data : (float * int * 'a) array;
  mutable len : int;
  mutable stamp : int;
}

let create () = { data = Array.make 16 (0.0, 0, Obj.magic 0); len = 0; stamp = 0 }

let is_empty t = t.len = 0
let length t = t.len

let before (p1, s1, _) (p2, s2, _) = p1 < p2 || (p1 = p2 && s1 < s2)

let push t priority v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) t.data.(0) in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- (priority, t.stamp, v);
  t.stamp <- t.stamp + 1;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while !i > 0 && before t.data.(!i) t.data.((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(!i) in
    t.data.(!i) <- t.data.(parent);
    t.data.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.len = 0 then None
  else begin
    let (priority, _, v) = t.data.(0) in
    t.len <- t.len - 1;
    t.data.(0) <- t.data.(t.len);
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && before t.data.(l) t.data.(!smallest) then smallest := l;
      if r < t.len && before t.data.(r) t.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.data.(!i) in
        t.data.(!i) <- t.data.(!smallest);
        t.data.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some (priority, v)
  end

let peek_priority t = if t.len = 0 then None else (fun (p, _, _) -> Some p) t.data.(0)
