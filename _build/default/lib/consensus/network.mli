(** Bounded-delay message-passing network (the Δ-synchronous model of the
    paper's adversary section): every sent message is delivered within
    [delta] seconds; actual delays are drawn uniformly from
    [[0.1·delta, delta]]. The adversary may reorder in that window — which
    random delays exercise — but cannot drop messages. *)

type 'msg t

val create : rng:Amm_crypto.Rng.t -> delta:float -> 'msg t
val delta : 'msg t -> float

val send : 'msg t -> at:float -> src:int -> dst:int -> 'msg -> unit
val broadcast : 'msg t -> at:float -> src:int -> dsts:int list -> 'msg -> unit

val schedule : 'msg t -> at:float -> dst:int -> 'msg -> unit
(** Local event (e.g. a timer) delivered to [dst] at exactly [at]. *)

val next : 'msg t -> (float * int * 'msg) option
(** Earliest undelivered event as [(time, dst, msg)]. *)

val next_time : 'msg t -> float option
val pending : 'msg t -> int
