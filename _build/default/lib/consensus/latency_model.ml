type params = {
  committee_size : int;
  mean_delay : float;
  bandwidth_bytes : float;
}

let default =
  { committee_size = 500; mean_delay = 0.05; bandwidth_bytes = 125_000_000.0 }

let consensus_latency p ~block_bytes =
  (* Leader serializes the block to the committee (tree/gossip dissemination
     costs ~2 link transmissions), then two vote rounds of small messages.
     Vote aggregation is BLS CoSi, so votes are constant-size. *)
  let push = 2.0 *. float_of_int block_bytes /. p.bandwidth_bytes in
  let vote_rounds = 3.0 *. p.mean_delay in
  (* Quorum waits for the slower fraction of the committee: scale delay by
     log of the committee size (gossip depth). *)
  let fanout_penalty = log (float_of_int (Stdlib.max 2 p.committee_size)) /. log 16.0 in
  push +. (vote_rounds *. fanout_penalty)

let view_change_latency p ~timeout = timeout +. consensus_latency p ~block_bytes:1024

let fits_in_round p ~block_bytes ~round_duration =
  consensus_latency p ~block_bytes < round_duration
