(** Closed-form PBFT round latency for committees too large to simulate
    message-by-message (the paper runs 500-miner committees).

    One leader-based PBFT instance costs: block broadcast by the leader,
    then prepare and commit all-to-all rounds — three message delays —
    plus the time to push the block over the leader's link. The model is
    cross-checked against the message-level {!Pbft} in tests. *)

type params = {
  committee_size : int;
  mean_delay : float;       (** mean one-way message latency, seconds *)
  bandwidth_bytes : float;  (** per-node usable bandwidth, bytes/second *)
}

val default : params
(** 500 miners on a 1 Gbps cluster link with ~50 ms mean delay, matching
    the paper's testbed description. *)

val consensus_latency : params -> block_bytes:int -> float
(** Expected time from the leader proposing a block of the given size to
    quorum commit. *)

val view_change_latency : params -> timeout:float -> float
(** Expected extra delay when the leader must be replaced once. *)

val fits_in_round : params -> block_bytes:int -> round_duration:float -> bool
