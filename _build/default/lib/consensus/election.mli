(** Stake-weighted committee election by verifiable random function —
    the cryptographic-sortition mechanism (Algorand-style) chainBoost and
    ammBoost use to pick each epoch's committee and leader from the
    sidechain miner population. *)

type miner = {
  miner_id : int;
  stake : int;                       (** Sybil-resistance weight (proof of stake) *)
  pk : Amm_crypto.Bls.public_key;
}

type credential = {
  c_miner : int;
  c_output : bytes;                  (** VRF output *)
  c_proof : Amm_crypto.Vrf.proof;    (** the proof of election (paper §4.2 fn. 4) *)
  c_priority : float;                (** stake-weighted priority; lower wins *)
}

val seed_for_epoch : randomness:bytes -> epoch:int -> bytes
(** Election seed derived from sidechain randomness and the epoch. *)

val credential : sk:Amm_crypto.Bls.secret_key -> miner:miner -> seed:bytes -> credential
(** The miner's sortition ticket: priority is an Exp(stake)-distributed
    draw from the VRF output, so selection probability is proportional to
    stake. *)

val verify_credential : miner:miner -> seed:bytes -> credential -> bool
(** Publicly verifiable, as required for Sync authentication. *)

val elect : credentials:credential list -> committee_size:int -> int list * int
(** [(committee, leader)] — the [committee_size] best priorities, leader
    first. Raises [Invalid_argument] when fewer credentials than seats. *)
