module Vrf = Amm_crypto.Vrf
module Sha256 = Amm_crypto.Sha256

type miner = {
  miner_id : int;
  stake : int;
  pk : Amm_crypto.Bls.public_key;
}

type credential = {
  c_miner : int;
  c_output : bytes;
  c_proof : Vrf.proof;
  c_priority : float;
}

let seed_for_epoch ~randomness ~epoch =
  Sha256.concat [ randomness; Bytes.of_string (Printf.sprintf "/election/%d" epoch) ]

let uniform_of_output out =
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code (Bytes.get out i)
  done;
  let u = float_of_int (!v land ((1 lsl 53) - 1)) /. float_of_int (1 lsl 53) in
  (* Avoid log 0. *)
  Float.max u 1e-300

let priority_of ~stake out =
  (* -ln(U)/stake: the classic weighted-sampling trick — the minimum is
     held by miner i with probability stake_i / Σ stake. *)
  -.log (uniform_of_output out) /. float_of_int (Stdlib.max 1 stake)

let credential ~sk ~miner ~seed =
  let output, proof = Vrf.evaluate sk seed in
  { c_miner = miner.miner_id; c_output = output; c_proof = proof;
    c_priority = priority_of ~stake:miner.stake output }

let verify_credential ~miner ~seed cred =
  match Vrf.verify miner.pk seed cred.c_proof with
  | None -> false
  | Some output ->
    Bytes.equal output cred.c_output
    && Float.equal cred.c_priority (priority_of ~stake:miner.stake output)

let elect ~credentials ~committee_size =
  if List.length credentials < committee_size then
    invalid_arg "Election.elect: not enough credentials";
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare a.c_priority b.c_priority with
        | 0 -> Stdlib.compare a.c_miner b.c_miner
        | c -> c)
      credentials
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | c :: rest -> c.c_miner :: take (n - 1) rest
  in
  let committee = take committee_size sorted in
  match committee with
  | leader :: _ -> (committee, leader)
  | [] -> invalid_arg "Election.elect: empty committee"
