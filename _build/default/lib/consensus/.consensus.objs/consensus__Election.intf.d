lib/consensus/election.mli: Amm_crypto
