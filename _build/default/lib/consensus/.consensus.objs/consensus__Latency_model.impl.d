lib/consensus/latency_model.ml: Stdlib
