lib/consensus/election.ml: Amm_crypto Bytes Char Float List Printf Stdlib
