lib/consensus/pqueue.ml: Array Obj
