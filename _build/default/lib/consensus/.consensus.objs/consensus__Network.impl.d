lib/consensus/network.ml: Amm_crypto List Pqueue
