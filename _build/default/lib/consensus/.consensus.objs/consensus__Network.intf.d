lib/consensus/network.mli: Amm_crypto
