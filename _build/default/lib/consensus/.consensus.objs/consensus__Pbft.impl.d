lib/consensus/pbft.ml: Amm_crypto Array Bytes Fun Hashtbl List Network
