lib/consensus/pbft.mli: Amm_crypto
