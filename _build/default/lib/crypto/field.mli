(** Prime-field arithmetic modulo the BN254 group order, used by the
    simulated BN256 group, Shamir secret sharing and Lagrange
    interpolation. *)

type t
(** A field element; always reduced modulo the order. *)

val order : Amm_math.U256.t
(** 21888242871839275222246405745257275088548364400416034343698204186575808495617,
    the order of the BN254 (alt_bn128) groups. *)

val zero : t
val one : t
val of_u256 : Amm_math.U256.t -> t
val of_int : int -> t
val to_u256 : t -> Amm_math.U256.t
val of_bytes : bytes -> t
(** Reduces arbitrary bytes into the field (hash-to-field). *)

val equal : t -> t -> bool
val is_zero : t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val inv : t -> t
(** Multiplicative inverse by Fermat's little theorem. Raises
    [Division_by_zero] on zero. *)

val div : t -> t -> t
val pow : t -> Amm_math.U256.t -> t
val pp : Format.formatter -> t -> unit
