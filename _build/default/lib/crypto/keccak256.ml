(* Keccak-f[1600] with 64-bit lanes held in Int64; rate 1088 bits (136 bytes),
   capacity 512, output 256 bits, multi-rate padding with suffix 0x01. *)

let rounds = 24

let round_constants =
  [| 0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
     0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
     0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
     0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
     0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
     0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
     0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
     0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L |]

let rotation_offsets =
  (* r[x][y] indexed as offsets.(x + 5*y) *)
  [| 0; 1; 62; 28; 27;
     36; 44; 6; 55; 20;
     3; 10; 43; 25; 39;
     41; 45; 15; 21; 8;
     18; 2; 61; 56; 14 |]

let rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let keccak_f state =
  let c = Array.make 5 0L and d = Array.make 5 0L in
  let b = Array.make 25 0L in
  for round = 0 to rounds - 1 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor state.(x)
          (Int64.logxor state.(x + 5)
             (Int64.logxor state.(x + 10) (Int64.logxor state.(x + 15) state.(x + 20))))
    done;
    for x = 0 to 4 do
      d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1)
    done;
    for x = 0 to 4 do
      for y = 0 to 4 do
        state.(x + 5 * y) <- Int64.logxor state.(x + 5 * y) d.(x)
      done
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        b.(y + 5 * ((2 * x + 3 * y) mod 5)) <-
          rotl64 state.(x + 5 * y) rotation_offsets.(x + 5 * y)
      done
    done;
    (* chi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        state.(x + 5 * y) <-
          Int64.logxor b.(x + 5 * y)
            (Int64.logand (Int64.lognot b.((x + 1) mod 5 + 5 * y)) b.((x + 2) mod 5 + 5 * y))
      done
    done;
    (* iota *)
    state.(0) <- Int64.logxor state.(0) round_constants.(round)
  done

let rate_bytes = 136

let digest input =
  let state = Array.make 25 0L in
  let len = Bytes.length input in
  (* Padded length: multiple of the rate, multi-rate padding 0x01 .. 0x80. *)
  let padded_len = (len / rate_bytes + 1) * rate_bytes in
  let m = Bytes.make padded_len '\000' in
  Bytes.blit input 0 m 0 len;
  Bytes.set m len '\x01';
  Bytes.set m (padded_len - 1)
    (Char.chr (Char.code (Bytes.get m (padded_len - 1)) lor 0x80));
  let lane off =
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get m (off + i))))
    done;
    !v
  in
  let nblocks = padded_len / rate_bytes in
  for blk = 0 to nblocks - 1 do
    for i = 0 to (rate_bytes / 8) - 1 do
      state.(i) <- Int64.logxor state.(i) (lane (blk * rate_bytes + 8 * i))
    done;
    keccak_f state
  done;
  let out = Bytes.create 32 in
  for i = 0 to 3 do
    let v = state.(i) in
    for j = 0 to 7 do
      Bytes.set out (8 * i + j)
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * j)) 0xFFL)))
    done
  done;
  out

let digest_string s = digest (Bytes.of_string s)
let hex s = Hex.of_bytes (digest_string s)
