lib/crypto/rng.mli: Amm_math Field
