lib/crypto/bls.mli: Group Rng
