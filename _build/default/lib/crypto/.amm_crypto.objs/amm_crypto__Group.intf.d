lib/crypto/group.mli: Field
