lib/crypto/bls.ml: Array Field Group List Rng Stdlib
