lib/crypto/hex.ml: Buffer Bytes Char Printf String
