lib/crypto/field.ml: Amm_math Sha256
