lib/crypto/rng.ml: Amm_math Array Bytes Char Field Sha256 Stdlib
