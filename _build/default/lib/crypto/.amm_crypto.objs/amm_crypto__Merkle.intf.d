lib/crypto/merkle.mli:
