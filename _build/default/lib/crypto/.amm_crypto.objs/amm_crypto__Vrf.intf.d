lib/crypto/vrf.mli: Bls
