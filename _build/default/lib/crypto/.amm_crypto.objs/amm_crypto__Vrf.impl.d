lib/crypto/vrf.ml: Bls Bytes Char Sha256
