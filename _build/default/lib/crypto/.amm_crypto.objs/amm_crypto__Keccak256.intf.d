lib/crypto/keccak256.mli:
