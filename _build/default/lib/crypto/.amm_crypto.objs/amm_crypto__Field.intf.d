lib/crypto/field.mli: Amm_math Format
