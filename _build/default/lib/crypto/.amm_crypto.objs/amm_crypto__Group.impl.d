lib/crypto/group.ml: Amm_math Bytes Field Keccak256
