lib/crypto/keccak256.ml: Array Bytes Char Hex Int64
