type proof = Bls.signature

let evaluate sk input =
  let sigma = Bls.sign sk input in
  (Sha256.digest (Bls.signature_to_bytes sigma), sigma)

let verify pk input proof =
  if Bls.verify pk input proof then
    Some (Sha256.digest (Bls.signature_to_bytes proof))
  else None

let output_below out p =
  (* Use the top 53 bits as a uniform fraction. *)
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code (Bytes.get out i)
  done;
  let frac = float_of_int (!v land ((1 lsl 53) - 1)) /. float_of_int (1 lsl 53) in
  frac < p
