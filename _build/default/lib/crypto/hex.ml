(* Hexadecimal encoding helpers shared across the crypto modules. *)

let of_bytes b =
  let len = Bytes.length b in
  let out = Buffer.create (2 * len) in
  for i = 0 to len - 1 do
    Buffer.add_string out (Printf.sprintf "%02x" (Char.code (Bytes.get b i)))
  done;
  Buffer.contents out

let of_string s = of_bytes (Bytes.of_string s)

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.to_bytes: bad character"

let to_bytes s =
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      String.sub s 2 (String.length s - 2)
    else s
  in
  let len = String.length s in
  if len mod 2 <> 0 then invalid_arg "Hex.to_bytes: odd length";
  Bytes.init (len / 2) (fun i -> Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
