(** Deterministic pseudo-random generator (SHA-256 in counter mode).

    Every source of randomness in the simulation flows through an [Rng.t]
    created from an explicit string seed, so whole experiments are
    reproducible bit-for-bit. *)

type t

val create : string -> t
(** A generator deterministically derived from the seed. *)

val split : t -> string -> t
(** An independent generator derived from this one and a label; does not
    disturb the parent's stream. *)

val bytes : t -> int -> bytes
val u256 : t -> Amm_math.U256.t
val field : t -> Field.t
val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
