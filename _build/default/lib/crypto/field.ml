module U256 = Amm_math.U256

type t = U256.t

let order =
  U256.of_string
    "21888242871839275222246405745257275088548364400416034343698204186575808495617"

let zero = U256.zero
let one = U256.one
let of_u256 x = U256.rem x order
let of_int n = of_u256 (U256.of_int n)
let to_u256 x = x
let of_bytes b = of_u256 (U256.of_bytes_be (Sha256.digest b))

let equal = U256.equal
let is_zero = U256.is_zero
let add a b = U256.rem (U256.add a b) order
let sub a b = if U256.ge a b then U256.sub a b else U256.sub (U256.add a order) b
let neg a = if U256.is_zero a then zero else U256.sub order a
let mul a b = U256.mul_mod a b order

let pow base exponent =
  (* Square-and-multiply over the 256 exponent bits. *)
  let result = ref one and acc = ref base in
  for i = 0 to U256.bits exponent - 1 do
    if U256.bit exponent i then result := mul !result !acc;
    acc := mul !acc !acc
  done;
  !result

let inv a =
  if is_zero a then raise Division_by_zero;
  pow a (U256.sub order (U256.of_int 2))

let div a b = mul a (inv b)
let pp fmt x = U256.pp fmt x
