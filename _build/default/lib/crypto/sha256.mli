(** SHA-256 (FIPS 180-4), implemented from scratch. *)

val digest : bytes -> bytes
(** 32-byte digest of the input. *)

val digest_string : string -> bytes
val hex : string -> string
(** Hex digest of a string input, convenient for tests. *)

val concat : bytes list -> bytes
(** Digest of the concatenation of the inputs. *)
