(** Keccak-256 as used by Ethereum (original Keccak padding [0x01], not the
    NIST SHA3-256 variant), implemented from scratch on Keccak-f[1600]. *)

val digest : bytes -> bytes
(** 32-byte digest of the input. *)

val digest_string : string -> bytes
val hex : string -> string
(** Hex digest of a string input, convenient for tests. *)
