(** Verifiable random function built on the BLS signature (the classic
    BLS-VRF construction): the proof is the unique signature on the input,
    and the output is its hash. Used by the committee election
    (cryptographic-sortition style, as in Algorand and chainBoost). *)

type proof

val evaluate : Bls.secret_key -> bytes -> bytes * proof
(** [(output, proof)] for this key on the input; output is 32 bytes. *)

val verify : Bls.public_key -> bytes -> proof -> bytes option
(** [Some output] when the proof is valid for the key and input. *)

val output_below : bytes -> float -> bool
(** [output_below out p] treats the 32-byte output as a uniform fraction
    in [0,1) and tests whether it falls below probability [p] — the
    sortition lottery test. *)
