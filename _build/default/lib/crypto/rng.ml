module U256 = Amm_math.U256

type t = { seed : bytes; mutable counter : int }

let create seed = { seed = Sha256.digest_string seed; counter = 0 }

let split t label =
  { seed = Sha256.concat [ t.seed; Bytes.of_string ("/" ^ label) ]; counter = 0 }

let next_block t =
  let ctr = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set ctr i (Char.chr ((t.counter lsr (8 * i)) land 0xFF))
  done;
  t.counter <- t.counter + 1;
  Sha256.concat [ t.seed; ctr ]

let bytes t n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    let blk = next_block t in
    let take = Stdlib.min 32 (n - !filled) in
    Bytes.blit blk 0 out !filled take;
    filled := !filled + take
  done;
  out

let u256 t = U256.of_bytes_be (next_block t)
let field t = Field.of_u256 (u256 t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62 uniform bits are plenty; modulo bias is negligible for the bounds
     used in the simulation (all far below 2^31). *)
  let blk = next_block t in
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code (Bytes.get blk i)
  done;
  !v land max_int mod n

let float t =
  let blk = next_block t in
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code (Bytes.get blk i)
  done;
  float_of_int (!v land ((1 lsl 53) - 1)) /. float_of_int (1 lsl 53)

let bool t = int t 2 = 1

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
