(** Binary Merkle trees over SHA-256, used for block transaction roots and
    summary-block checkpoints. *)

type tree

val empty_root : bytes
(** Root of a tree over the empty list (hash of the empty string). *)

val of_leaves : bytes list -> tree
(** Builds a tree over the given leaf payloads (hashed internally). *)

val root : tree -> bytes

type proof

val prove : tree -> int -> proof option
(** Inclusion proof for the leaf at the index, if in range. *)

val verify : root:bytes -> leaf:bytes -> proof -> bool
val proof_length : proof -> int
