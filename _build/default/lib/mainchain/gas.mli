(** EVM-style gas schedule and metering.

    The primitive costs follow Ethereum's schedule, with the composite
    costs the paper measured on Sepolia (Table 6) adopted verbatim where
    it reports them: 22 100 gas per stored 32-byte word, 15 771 per payout
    transfer, 6 000 per BN256 scalar multiplication, 113 000 per pairing
    check, Keccak at 30 + 6 per word. *)

(** {1 Primitive costs} *)

val tx_base : int
val sstore_word : int
(** Storing one fresh 32-byte word: 22 100 (Table 6). *)

val sstore_update : int
val sload : int
val calldata_nonzero_byte : int
val calldata_zero_byte : int
val keccak_base : int
val keccak_per_word : int
val ec_mul : int
(** BN256 scalar multiplication precompile: 6 000 (Table 6). *)

val pairing_check : int
(** BN256 pairing verification: 113 000 (Table 6). *)

val payout_transfer : int
(** Per payout entry dispensed by Sync: 15 771 (Table 6). *)

val keccak_cost : int -> int
(** Keccak cost of hashing [n] bytes. *)

val calldata_cost : bytes -> int
val calldata_cost_of_size : int -> int
(** Approximate calldata cost when only the size is known (assumes the
    measured 2:1 nonzero:zero byte mix). *)

(** {1 Metering} *)

type meter

val meter : unit -> meter
val charge : meter -> string -> int -> unit
(** Accumulates a named component. *)

val total : meter -> int
val breakdown : meter -> (string * int) list
(** Components in charge order, merged by label. *)
