lib/mainchain/eth.ml: Amm_crypto Chain Hashtbl List Option Stdlib
