lib/mainchain/erc20.mli: Amm_math Chain Gas
