lib/mainchain/gas.ml: Bytes
