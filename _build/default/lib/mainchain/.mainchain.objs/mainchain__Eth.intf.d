lib/mainchain/eth.mli: Amm_crypto
