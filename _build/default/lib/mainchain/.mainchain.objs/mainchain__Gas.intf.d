lib/mainchain/gas.mli:
