lib/mainchain/erc20.ml: Amm_math Chain Gas Option Printf
