(** A standard ERC20 token contract: balances, allowances, transfers.
    Two instances provide the traded pair, exactly as the paper deploys
    two standard ERC20 contracts on Sepolia. *)

module U256 = Amm_math.U256
module Address = Chain.Address

type t

val deploy : Chain.Token.t -> t
val token : t -> Chain.Token.t

val mint : t -> Address.t -> U256.t -> unit
(** Test faucet: credits fresh supply. *)

val balance_of : t -> Address.t -> U256.t
val total_supply : t -> U256.t
val allowance : t -> owner:Address.t -> spender:Address.t -> U256.t

val approve : ?meter:Gas.meter -> t -> owner:Address.t -> spender:Address.t -> U256.t -> unit

val transfer :
  ?meter:Gas.meter -> t -> source:Address.t -> dest:Address.t -> U256.t -> (unit, string) result
(** Moves value; fails when the balance is insufficient. *)

type checkpoint

val checkpoint : t -> checkpoint
(** Snapshot of balances/allowances (cheap: persistent maps), used to
    model mainchain rollbacks. *)

val restore : t -> checkpoint -> unit

val transfer_from :
  ?meter:Gas.meter ->
  t -> spender:Address.t -> source:Address.t -> dest:Address.t -> U256.t ->
  (unit, string) result
(** Spends from an allowance, as the contracts' pit-stop deposits do. *)
