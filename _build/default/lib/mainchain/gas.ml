let tx_base = 21_000
let sstore_word = 22_100
let sstore_update = 5_000
let sload = 2_100
let calldata_nonzero_byte = 16
let calldata_zero_byte = 4
let keccak_base = 30
let keccak_per_word = 6
let ec_mul = 6_000
let pairing_check = 113_000
let payout_transfer = 15_771

let keccak_cost n = keccak_base + (keccak_per_word * ((n + 31) / 32))

let calldata_cost b =
  let cost = ref 0 in
  Bytes.iter
    (fun c -> cost := !cost + if c = '\000' then calldata_zero_byte else calldata_nonzero_byte)
    b;
  !cost

let calldata_cost_of_size n =
  (* Measured Uniswap calldata runs about two nonzero bytes per zero byte. *)
  n * ((2 * calldata_nonzero_byte) + calldata_zero_byte) / 3

type meter = { mutable items : (string * int) list; mutable total : int }

let meter () = { items = []; total = 0 }

let charge m label amount =
  m.total <- m.total + amount;
  (* Merge into the label's first occurrence so the breakdown keeps the
     original charge order. *)
  let rec update = function
    | [] -> [ (label, amount) ]
    | (l, v) :: rest when l = label -> (l, v + amount) :: rest
    | item :: rest -> item :: update rest
  in
  m.items <- update m.items

let total m = m.total
let breakdown m = m.items
