(** Public verifiability of summary-blocks (§3's [VerifyBlock] for
    [btype = summary], and the safety argument of Lemma 1): until the
    meta-blocks of an epoch are pruned, anyone can re-execute them from
    the epoch-start state — with the same unchanged AMM logic — and check
    that they derive exactly the summary the committee published. A
    mismatch exposes an invalid summary before its Sync confirms. *)

val replay_epoch :
  pool_at_start:Uniswap.Pool.t ->
  snapshot:Tokenbank.Token_bank.snapshot ->
  metas:Blocks.meta list ->
  epoch:int ->
  next_committee_vk:Amm_crypto.Bls.public_key ->
  Tokenbank.Sync_payload.t
(** Re-processes the meta-blocks' transactions (in block and intra-block
    order) on a clone of the epoch-start pool and returns the summary
    payload they induce. The input pool is not modified. *)

val verify_summary :
  pool_at_start:Uniswap.Pool.t ->
  snapshot:Tokenbank.Token_bank.snapshot ->
  metas:Blocks.meta list ->
  summary:Blocks.summary ->
  (unit, string) result
(** [Ok ()] iff replaying the meta-blocks reproduces the summary-block's
    payload bit-for-bit (canonical signing bytes). *)
