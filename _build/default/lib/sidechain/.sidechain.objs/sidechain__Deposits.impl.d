lib/sidechain/deposits.ml: Amm_math Chain Hashtbl List
