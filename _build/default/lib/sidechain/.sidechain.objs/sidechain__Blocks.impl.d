lib/sidechain/blocks.ml: Amm_crypto Chain List Tokenbank
