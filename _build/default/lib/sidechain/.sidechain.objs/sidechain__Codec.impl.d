lib/sidechain/codec.ml: Amm_math Bytes Chain Char List Tokenbank
