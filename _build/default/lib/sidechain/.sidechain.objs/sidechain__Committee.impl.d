lib/sidechain/committee.ml: Amm_crypto Array Consensus Float List
