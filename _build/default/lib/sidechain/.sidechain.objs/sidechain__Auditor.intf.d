lib/sidechain/auditor.mli: Amm_crypto Blocks Tokenbank Uniswap
