lib/sidechain/processor.ml: Amm_math Chain Deposits Hashtbl List Option Result Tokenbank Uniswap
