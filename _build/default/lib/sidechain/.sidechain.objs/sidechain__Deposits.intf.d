lib/sidechain/deposits.mli: Amm_math Chain
