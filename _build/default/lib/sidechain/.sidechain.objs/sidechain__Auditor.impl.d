lib/sidechain/auditor.ml: Blocks Bytes List Printf Processor Tokenbank Uniswap
