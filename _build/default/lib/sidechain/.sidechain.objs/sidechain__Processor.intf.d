lib/sidechain/processor.mli: Amm_crypto Amm_math Chain Deposits Tokenbank Uniswap
