lib/sidechain/blocks.mli: Amm_crypto Chain Tokenbank
