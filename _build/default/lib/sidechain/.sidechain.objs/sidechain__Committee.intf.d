lib/sidechain/committee.mli: Amm_crypto
