type meta = {
  m_epoch : int;
  m_round : int;
  m_txs : Chain.Tx.t list;
  m_tx_root : bytes;
  m_size : int;
  m_view_changes : int;
}

type summary = {
  s_epoch : int;
  s_payload : Tokenbank.Sync_payload.t;
  s_size : int;
  s_rounds_covered : int * int;
}

type block =
  | Genesis of { mainchain_ref : bytes }
  | Meta of meta
  | Summary of summary

(* Parent hash, round/epoch numbers, transaction merkle root, the
   committee's aggregate commit signature. *)
let meta_header_size = 32 + 16 + 32 + 64 + 64

type t = { ledger : block Chain.Ledger.t }

let block_size = function
  | Genesis _ -> 128
  | Meta m -> m.m_size
  | Summary s -> s.s_size

let create ~mainchain_ref =
  { ledger =
      Chain.Ledger.create ~genesis:(Genesis { mainchain_ref }) ~size:block_size
        ~k_depth:0 }

let append_meta t m = Chain.Ledger.append t.ledger (Meta m)
let append_summary t s = Chain.Ledger.append t.ledger (Summary s)

let tx_leaves txs = List.map (fun tx -> Chain.Ids.Tx_id.to_bytes tx.Chain.Tx.id) txs

let make_meta ~epoch ~round ~view_changes txs =
  let tx_bytes = List.fold_left (fun acc tx -> acc + tx.Chain.Tx.wire_size) 0 txs in
  let root = Amm_crypto.Merkle.root (Amm_crypto.Merkle.of_leaves (tx_leaves txs)) in
  { m_epoch = epoch; m_round = round; m_txs = txs; m_tx_root = root;
    m_size = meta_header_size + tx_bytes; m_view_changes = view_changes }

let prove_inclusion meta tx_id =
  let rec index i = function
    | [] -> None
    | tx :: rest ->
      if Chain.Ids.Tx_id.equal tx.Chain.Tx.id tx_id then Some i else index (i + 1) rest
  in
  match index 0 meta.m_txs with
  | None -> None
  | Some i ->
    Amm_crypto.Merkle.prove (Amm_crypto.Merkle.of_leaves (tx_leaves meta.m_txs)) i

let verify_inclusion meta tx_id proof =
  Amm_crypto.Merkle.verify ~root:meta.m_tx_root ~leaf:(Chain.Ids.Tx_id.to_bytes tx_id) proof

let prune_epoch t ~epoch =
  Chain.Ledger.prune t.ledger ~keep:(function
    | Meta m -> m.m_epoch <> epoch
    | Genesis _ | Summary _ -> true)

let cumulative_bytes t = Chain.Ledger.cumulative_bytes t.ledger
let stored_bytes t = Chain.Ledger.stored_bytes t.ledger
let height t = Chain.Ledger.height t.ledger

let blocks_stored t =
  let acc = ref [] in
  Chain.Ledger.iter_stored t.ledger (fun _ b -> acc := b :: !acc);
  List.rev !acc

let summaries t =
  List.filter_map (function Summary s -> Some s | Genesis _ | Meta _ -> None)
    (blocks_stored t)

let meta_count_stored t =
  List.length
    (List.filter (function Meta _ -> true | Genesis _ | Summary _ -> false)
       (blocks_stored t))
