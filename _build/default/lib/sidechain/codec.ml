(* Sidechain binary packing (Table 7's "size on sidechain" column): a
   simple packed layout without ABI word padding.

   - user (swap) entry: 97 B = 33 B compressed key + four 16 B amounts
   - position entry: 215 B = 32 B id + 33 B owner key + two 3 B ticks
     + 16 B liquidity + four 32 B amount/fee fields.

   Amount fields are truncating (16 B = 2^128) — ample for the simulated
   economy; encoders check and raise on overflow rather than wrap. *)

module U256 = Amm_math.U256
module Address = Chain.Address

let user_entry_size = 97
let position_entry_size = 215

let amount16 v =
  if U256.bits v > 128 then invalid_arg "Codec.amount16: needs more than 128 bits";
  Bytes.sub (U256.to_bytes_be v) 16 16

let amount32 v = U256.to_bytes_be v

let compressed_key addr =
  (* 33 B: a compression-prefix byte plus the 20 B address padded into a
     32 B field, standing in for a compressed public key. *)
  let b = Bytes.make 33 '\000' in
  Bytes.set b 0 '\x02';
  Bytes.blit (Address.to_bytes addr) 0 b 13 20;
  b

let tick3 tick =
  (* Ticks fit in a signed 24-bit field (|tick| <= 887272 < 2^23). *)
  let v = if tick >= 0 then tick else tick + (1 lsl 24) in
  Bytes.init 3 (fun i -> Char.chr ((v lsr (8 * (2 - i))) land 0xFF))

let encode_user_entry (e : Tokenbank.Sync_payload.user_entry) =
  let b =
    Bytes.concat Bytes.empty
      [ compressed_key e.user; amount16 e.payin0; amount16 e.payin1;
        amount16 e.payout0; amount16 e.payout1 ]
  in
  assert (Bytes.length b = user_entry_size);
  b

let encode_position_entry (p : Tokenbank.Sync_payload.position_entry) =
  let b =
    Bytes.concat Bytes.empty
      [ Chain.Ids.Position_id.to_bytes p.pos_id; compressed_key p.owner;
        tick3 p.lower_tick; tick3 p.upper_tick; amount16 p.liquidity;
        amount32 p.amount0; amount32 p.amount1; amount32 p.fees0; amount32 p.fees1 ]
  in
  assert (Bytes.length b = position_entry_size);
  b

let summary_block_size (payload : Tokenbank.Sync_payload.t) =
  (* Header (parent hash, epoch, merkle root, leader signature) + packed
     entries + pool balances. *)
  let header = 32 + 8 + 32 + 64 in
  header + (2 * 16)
  + (user_entry_size * List.length payload.users)
  + (position_entry_size * List.length payload.positions)
