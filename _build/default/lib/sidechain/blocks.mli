(** The ammBoost sidechain ledger: temporary meta-blocks recording the
    processed transactions (one per round, pruned once their epoch's Sync
    is confirmed on the mainchain) and permanent summary-blocks
    checkpointing each epoch's state changes. *)

type meta = {
  m_epoch : int;
  m_round : int;                    (** global sidechain round number *)
  m_txs : Chain.Tx.t list;
  m_tx_root : bytes;                (** Merkle root over the transaction ids *)
  m_size : int;
  m_view_changes : int;             (** leader changes recorded for accountability *)
}

type summary = {
  s_epoch : int;
  s_payload : Tokenbank.Sync_payload.t;
  s_size : int;                     (** sidechain binary packing size *)
  s_rounds_covered : int * int;     (** first and last round of the epoch *)
}

type block =
  | Genesis of { mainchain_ref : bytes }  (** references the block holding TokenBank *)
  | Meta of meta
  | Summary of summary

type t

val meta_header_size : int

val create : mainchain_ref:bytes -> t
val append_meta : t -> meta -> unit
val append_summary : t -> summary -> unit

val make_meta :
  epoch:int -> round:int -> view_changes:int -> Chain.Tx.t list -> meta

val prove_inclusion : meta -> Chain.Ids.Tx_id.t -> Amm_crypto.Merkle.proof option
(** Merkle inclusion proof for a transaction in the meta-block — the
    public-verifiability hook: until pruning, anyone can check that a
    transaction feeding a summary was really processed. *)

val verify_inclusion : meta -> Chain.Ids.Tx_id.t -> Amm_crypto.Merkle.proof -> bool

val prune_epoch : t -> epoch:int -> int
(** Drops the meta-blocks of the epoch (their Sync is confirmed);
    summary-blocks are permanent. Returns bytes reclaimed. *)

val cumulative_bytes : t -> int
(** Total bytes ever appended — "sidechain growth" before pruning. *)

val stored_bytes : t -> int
(** Bytes currently stored — what remains after pruning. *)

val height : t -> int
val blocks_stored : t -> block list
val summaries : t -> summary list
(** All permanent summary blocks, oldest first. *)

val meta_count_stored : t -> int
