(* The LP lifecycle on the concentrated-liquidity AMM itself — the same
   logic that runs on both the baseline mainchain and the ammBoost
   sidechain: mint a concentrated position, earn fees from swap flow
   through your range, collect, supplement, and withdraw.

     dune exec examples/liquidity_provider.exe *)

module U256 = Amm_math.U256
module Q96 = Amm_math.Q96
open Uniswap

let u = U256.of_string
let fmt_tokens v = U256.to_float v /. 1e18
let pid label = Chain.Ids.Position_id.of_hash (Amm_crypto.Sha256.digest_string label)
let expect = function Ok v -> v | Error e -> failwith e

let () =
  Printf.printf "=== Liquidity provider walkthrough ===\n\n";
  let pool =
    Pool.create ~pool_id:0
      ~token0:(Chain.Token.make ~id:0 ~symbol:"TKA")
      ~token1:(Chain.Token.make ~id:1 ~symbol:"TKB")
      ~fee_pips:3000 (* 0.30% *) ~tick_spacing:60 ~sqrt_price:Q96.q96
  in
  Printf.printf "Pool created at price 1.0 (tick %d), fee tier 0.30%%.\n\n"
    (Pool.current_tick pool);

  (* A market maker provides deep background liquidity across the whole
     curve; our LP concentrates around the current price. *)
  let whale = Chain.Address.of_label "whale" in
  let alice = Chain.Address.of_label "alice" in
  let _ =
    expect
      (Router.mint pool ~position_id:(pid "whale") ~owner:whale ~lower_tick:(-887220)
         ~upper_tick:887220 ~amount0_desired:(u "1000000000000000000000000")
         ~amount1_desired:(u "1000000000000000000000000"))
  in
  let mint =
    expect
      (Router.mint pool ~position_id:(pid "alice") ~owner:alice ~lower_tick:(-1200)
         ~upper_tick:1200 ~amount0_desired:(u "100000000000000000000")
         ~amount1_desired:(u "100000000000000000000"))
  in
  Printf.printf
    "alice mints a concentrated position (ticks -1200..1200, ~±12%% around par):\n\
    \  liquidity %.4g, used %.2f TKA + %.2f TKB\n\n"
    (U256.to_float mint.Router.minted_liquidity)
    (fmt_tokens mint.Router.amount0_used)
    (fmt_tokens mint.Router.amount1_used);

  (* Swap flow passes through her range and accrues fees. *)
  Printf.printf "Traders swap back and forth through alice's range...\n";
  let volume = ref 0.0 in
  for i = 1 to 40 do
    let zero_for_one = i mod 2 = 0 in
    let amount = u "5000000000000000000000" in
    let o =
      expect
        (Router.exact_input pool ~zero_for_one ~amount_in:amount ~min_amount_out:U256.zero ())
    in
    volume := !volume +. fmt_tokens o.Router.spent
  done;
  Printf.printf "  %.0f tokens of volume routed; pool price now tick %d\n\n" !volume
    (Pool.current_tick pool);

  (* Collect fees. *)
  let c =
    expect
      (Router.collect pool ~position_id:(pid "alice") ~caller:alice
         ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value)
  in
  Printf.printf "alice collects her fees: %.4f TKA + %.4f TKB\n"
    (fmt_tokens c.Router.collected0) (fmt_tokens c.Router.collected1);
  Printf.printf "  (share of the 0.30%% fee on volume crossing her range,\n";
  Printf.printf "   split pro-rata with the whale's in-range liquidity)\n\n";

  (* Supplement the position, then withdraw everything. *)
  let supplement =
    expect
      (Router.mint pool ~position_id:(pid "alice") ~owner:alice ~lower_tick:(-1200)
         ~upper_tick:1200 ~amount0_desired:(u "50000000000000000000")
         ~amount1_desired:(u "50000000000000000000"))
  in
  Printf.printf "alice supplements the same position with %.2f + %.2f more tokens.\n\n"
    (fmt_tokens supplement.Router.amount0_used)
    (fmt_tokens supplement.Router.amount1_used);
  let b =
    expect
      (Router.burn pool ~position_id:(pid "alice") ~caller:alice
         ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value)
  in
  Printf.printf "Full burn: %.2f TKA + %.2f TKB owed back (position deleted = %b)\n"
    (fmt_tokens b.Router.amount0_owed) (fmt_tokens b.Router.amount1_owed)
    b.Router.position_deleted;
  let final =
    expect
      (Router.collect pool ~position_id:(pid "alice") ~caller:alice
         ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value)
  in
  Printf.printf "Final collect pays out principal + residual fees: %.2f TKA + %.2f TKB\n"
    (fmt_tokens final.Router.collected0) (fmt_tokens final.Router.collected1);
  Printf.printf "Position deleted: %b; pool consistency: %b\n" final.Router.position_deleted
    (Pool.check_liquidity_consistency pool)
