examples/quickstart.mli:
