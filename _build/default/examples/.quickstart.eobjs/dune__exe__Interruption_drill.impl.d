examples/interruption_drill.ml: Amm_crypto Ammboost Array Bytes Config Consensus Printf System
