examples/liquidity_provider.mli:
