examples/quickstart.ml: Ammboost Config List Mainchain Printf System Tokenbank
