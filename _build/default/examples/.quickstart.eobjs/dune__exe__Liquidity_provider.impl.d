examples/liquidity_provider.ml: Amm_crypto Amm_math Chain Pool Printf Router Uniswap
