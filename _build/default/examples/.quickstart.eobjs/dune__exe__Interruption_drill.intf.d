examples/interruption_drill.mli:
