examples/flash_arbitrage.mli:
