examples/flash_arbitrage.ml: Amm_crypto Amm_math Chain Mainchain Printf Tokenbank
