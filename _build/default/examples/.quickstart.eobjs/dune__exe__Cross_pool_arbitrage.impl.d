examples/cross_pool_arbitrage.ml: Amm_crypto Amm_math Chain Factory Oracle Pool Printf Router Uniswap
