examples/cross_pool_arbitrage.mli:
