(* Quickstart: run a small ammBoost deployment end to end and watch the
   pieces the paper describes — epoch deposits, sidechain processing,
   summary blocks, the authenticated Sync, payouts and pruning.

     dune exec examples/quickstart.exe *)

open Ammboost

let () =
  Printf.printf "=== ammBoost quickstart ===\n\n";
  Printf.printf
    "Setting up: TokenBank on the mainchain, a TKA/TKB pool, 20 users\n\
     (4 of them LPs), 60 sidechain miners, 3 epochs of 30 x 4s rounds,\n\
     Uniswap-2023 traffic at 50K transactions/day.\n\n%!";
  let cfg =
    { Config.default with
      epochs = 3;
      daily_volume = 50_000;
      users = 20;
      miners = 60;
      committee_size = 20;
      max_faulty = 6;
      seed = "quickstart" }
  in
  let r = System.run cfg in
  Printf.printf "Traffic\n";
  Printf.printf "  generated            %8d transactions\n" r.System.generated;
  Printf.printf "  processed            %8d (swaps %d, mints %d, burns %d, collects %d)\n"
    r.System.processed r.System.swaps r.System.mints r.System.burns r.System.collects;
  Printf.printf "  rejected             %8d\n\n" r.System.rejected;
  Printf.printf "Performance\n";
  Printf.printf "  throughput           %8.2f tx/s\n" r.System.throughput;
  Printf.printf "  sidechain latency    %8.3f s   (submission -> meta-block)\n"
    r.System.mean_tx_latency;
  Printf.printf "  payout latency       %8.2f s   (submission -> tokens in hand)\n\n"
    r.System.mean_payout_latency;
  Printf.printf "Mainchain footprint (what ammBoost actually puts on chain)\n";
  Printf.printf "  bytes                %8d B across %d epochs\n" r.System.mc_tx_bytes
    r.System.epochs_applied;
  Printf.printf "  gas                  %8d total\n" r.System.mc_gas_total;
  List.iter
    (fun (label, gas) -> Printf.printf "    %-10s %12d gas\n" label gas)
    (List.sort compare r.System.mc_gas_by_label);
  Printf.printf "\nSidechain storage (the state-growth control at work)\n";
  Printf.printf "  all blocks ever      %8d B\n" r.System.sc_cumulative_bytes;
  Printf.printf "  stored after pruning %8d B (meta-blocks discarded once their\n"
    r.System.sc_stored_bytes;
  Printf.printf "                                 Sync is confirmed; summaries kept)\n\n";
  (match r.System.last_sync_receipt with
  | Some receipt ->
    Printf.printf "Last epoch's Sync call (the only state that reaches the mainchain):\n";
    Printf.printf "  calldata %d B, %d payout transfers, %d live positions written\n"
      receipt.Tokenbank.Token_bank.calldata_bytes receipt.Tokenbank.Token_bank.payouts_dispensed
      receipt.Tokenbank.Token_bank.positions_written;
    List.iter
      (fun (k, v) -> Printf.printf "    %-20s %10d gas\n" k v)
      (Mainchain.Gas.breakdown receipt.Tokenbank.Token_bank.gas)
  | None -> ());
  Printf.printf "\nInvariants: custody conserved = %b, epochs synced = %d/%d\n"
    r.System.custody_consistent r.System.epochs_applied r.System.epochs_run
