(* Cross-pool arbitrage with TWAP oracles: two pools trade the same pair
   at different prices; an arbitrageur moves value from the cheap pool to
   the expensive one until the prices converge, while each pool's
   observation oracle records the time-weighted average the lens
   contracts would serve.

     dune exec examples/cross_pool_arbitrage.exe *)

module U256 = Amm_math.U256
module Q96 = Amm_math.Q96
module Tick_math = Amm_math.Tick_math
open Uniswap

let u = U256.of_string
let fmt v = U256.to_float v /. 1e18
let pid label = Chain.Ids.Position_id.of_hash (Amm_crypto.Sha256.digest_string label)
let expect = function Ok v -> v | Error e -> failwith e

let price_of pool =
  let p = Q96.to_float_q96 (Pool.sqrt_price pool) in
  p *. p

let () =
  Printf.printf "=== Cross-pool arbitrage ===\n\n";
  let token0 = Chain.Token.make ~id:0 ~symbol:"TKA" in
  let token1 = Chain.Token.make ~id:1 ~symbol:"TKB" in
  let factory = Factory.create () in
  (* Pool A at par; pool B mispriced ~5% higher (tick 488 ≈ 1.0001^488). *)
  let pool_a =
    Factory.create_pool factory ~token0 ~token1 ~fee_pips:3000 ~tick_spacing:60
      ~sqrt_price:Q96.q96
  in
  let pool_b =
    Factory.create_pool factory ~token0 ~token1 ~fee_pips:3000 ~tick_spacing:60
      ~sqrt_price:(Tick_math.get_sqrt_ratio_at_tick 480)
  in
  let lp = Chain.Address.of_label "lp" in
  let seed pool label =
    ignore
      (expect
         (Router.mint pool ~position_id:(pid label) ~owner:lp ~lower_tick:(-887220)
            ~upper_tick:887220 ~amount0_desired:(u "1000000000000000000000000")
            ~amount1_desired:(u "1000000000000000000000000")))
  in
  seed pool_a "lp-a";
  seed pool_b "lp-b";
  Printf.printf "pool A price: %.4f TKB/TKA   pool B price: %.4f TKB/TKA\n\n"
    (price_of pool_a) (price_of pool_b);

  (* Observation oracles, written once per simulated block. *)
  let oracle_a = Oracle.create ~time:0.0 ~tick:(Pool.current_tick pool_a) () in
  let oracle_b = Oracle.create ~time:0.0 ~tick:(Pool.current_tick pool_b) () in

  (* Arbitrage loop: buy TKA where it is expensive in TKB terms... TKA is
     cheap in pool A (price low), so buy TKA in A and sell it in B. *)
  Printf.printf "Arbitrage: buy TKA in pool A (cheap), sell in pool B (dear)...\n";
  let tka_budget = u "2000000000000000000000" in
  let profit = ref 0.0 in
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < 50 do
    incr steps;
    let time = float_of_int !steps *. 12.0 in
    let gap = price_of pool_b -. price_of pool_a in
    if gap < 0.002 then continue := false
    else begin
      (* Spend TKB in A to acquire TKA. *)
      let buy =
        expect
          (Router.exact_input pool_a ~zero_for_one:false ~amount_in:tka_budget
             ~min_amount_out:U256.zero ())
      in
      (* Sell that TKA into B for TKB. *)
      let sell =
        expect
          (Router.exact_input pool_b ~zero_for_one:true ~amount_in:buy.Router.received
             ~min_amount_out:U256.zero ())
      in
      profit := !profit +. (fmt sell.Router.received -. fmt tka_budget);
      Oracle.write oracle_a ~time ~tick:(Pool.current_tick pool_a);
      Oracle.write oracle_b ~time ~tick:(Pool.current_tick pool_b)
    end
  done;
  Printf.printf "  %d round trips; prices now A %.4f / B %.4f; arbitrage profit %.2f TKB\n\n"
    !steps (price_of pool_a) (price_of pool_b) !profit;

  (* TWAPs over the convergence window. *)
  let now = float_of_int !steps *. 12.0 in
  let window = now /. 2.0 in
  let twap o = 1.0001 ** Oracle.twap_tick o ~now ~window in
  Printf.printf "Oracle TWAPs over the last %.0f s: pool A %.4f, pool B %.4f\n" window
    (twap oracle_a) (twap oracle_b);
  Printf.printf
    "  (the averages lag the spot prices — exactly what makes TWAP oracles\n\
    \   robust against single-block manipulation)\n\n";
  Printf.printf "Consistency: pool A %b, pool B %b\n"
    (Pool.check_liquidity_consistency pool_a)
    (Pool.check_liquidity_consistency pool_b)
