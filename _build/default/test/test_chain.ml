(* Tokens, addresses, ids, transactions, wire encodings, the generic
   ledger and the mempool. *)

module U256 = Amm_math.U256
open Chain

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)

(* ------------------------------------------------------------------ *)
(* Tokens and addresses                                                *)
(* ------------------------------------------------------------------ *)

let test_token () =
  let a = Token.make ~id:0 ~symbol:"TKA" in
  let a' = Token.make ~id:0 ~symbol:"other" in
  let b = Token.make ~id:1 ~symbol:"TKB" in
  Alcotest.(check bool) "identity by id" true (Token.equal a a');
  Alcotest.(check bool) "distinct" false (Token.equal a b);
  Alcotest.(check string) "symbol" "TKA" (Token.symbol a)

let test_address_derivation () =
  let rng = Amm_crypto.Rng.create "addr" in
  let _, pk = Amm_crypto.Bls.keygen rng in
  let a = Address.of_public_key pk in
  Alcotest.(check int) "20 bytes" 20 (Bytes.length (Address.to_bytes a));
  Alcotest.(check bool) "deterministic" true (Address.equal a (Address.of_public_key pk));
  let b = Address.of_label "TokenBank" in
  Alcotest.(check bool) "label deterministic" true
    (Address.equal b (Address.of_label "TokenBank"));
  Alcotest.(check bool) "distinct labels" false
    (Address.equal b (Address.of_label "Other"));
  Alcotest.(check bool) "hex prefix" true
    (String.length (Address.to_hex a) = 42 && String.sub (Address.to_hex a) 0 2 = "0x")

let test_address_bad_length () =
  Alcotest.check_raises "19 bytes" (Invalid_argument "Address.of_bytes: need 20 bytes")
    (fun () -> ignore (Address.of_bytes (Bytes.make 19 'x')))

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

let user () =
  let rng = Amm_crypto.Rng.create "tx-user" in
  let sk, pk = Amm_crypto.Bls.keygen rng in
  (sk, pk, Address.of_public_key pk)

let sample_swap ?sign () =
  let sk, pk, addr = user () in
  let sign = if sign = Some true then Some sk else None in
  Tx.create ?sign ~issuer:addr ~issuer_pk:pk ~pool:0 ~issued_round:5 ~issued_at:20.0
    (Tx.Swap
       { zero_for_one = true; kind = Tx.Exact_input;
         amount_specified = U256.of_int 1000; amount_limit = U256.zero;
         sqrt_price_limit = U256.zero; deadline = 100 })

let test_tx_wire_sizes () =
  (* The Ethereum-encoded wire sizes must match the Table 8 model. *)
  let _, pk, addr = user () in
  let mk payload =
    (Tx.create ~issuer:addr ~issuer_pk:pk ~pool:0 ~issued_round:0 ~issued_at:0.0 payload)
      .Tx.wire_size
  in
  let pid = Ids.Position_id.of_hash (Amm_crypto.Sha256.digest_string "p") in
  Alcotest.(check int) "swap" (Encoding.ethereum_op_size Encoding.Op_swap)
    (mk (Tx.Swap
           { zero_for_one = false; kind = Tx.Exact_output;
             amount_specified = U256.one; amount_limit = U256.one;
             sqrt_price_limit = U256.zero; deadline = 1 }));
  Alcotest.(check int) "mint" (Encoding.ethereum_op_size Encoding.Op_mint)
    (mk (Tx.Mint
           { lower_tick = -60; upper_tick = 60; amount0_desired = U256.one;
             amount1_desired = U256.one; target = Tx.New_position }));
  Alcotest.(check int) "burn" (Encoding.ethereum_op_size Encoding.Op_burn)
    (mk (Tx.Burn { burn_position = pid; amount0_requested = U256.one;
                   amount1_requested = U256.one }));
  Alcotest.(check int) "collect" (Encoding.ethereum_op_size Encoding.Op_collect)
    (mk (Tx.Collect { collect_position = pid; fees0_requested = U256.one;
                      fees1_requested = U256.one }))

let test_tx_table8_sizes () =
  (* Concrete Table 8 values. *)
  Alcotest.(check int) "swap 1008" 1008 (Encoding.ethereum_op_size Encoding.Op_swap);
  Alcotest.(check int) "mint 814" 814 (Encoding.ethereum_op_size Encoding.Op_mint);
  Alcotest.(check int) "burn 907" 907 (Encoding.ethereum_op_size Encoding.Op_burn);
  Alcotest.(check int) "collect 922" 922 (Encoding.ethereum_op_size Encoding.Op_collect)

let test_tx_sepolia_sizes () =
  Alcotest.(check int) "swap" 365 (Encoding.sepolia_op_size Encoding.Op_swap);
  Alcotest.(check int) "mint" 566 (Encoding.sepolia_op_size Encoding.Op_mint);
  Alcotest.(check int) "burn" 280 (Encoding.sepolia_op_size Encoding.Op_burn);
  Alcotest.(check int) "collect" 150 (Encoding.sepolia_op_size Encoding.Op_collect)

let test_tx_signature () =
  let signed = sample_swap ~sign:true () in
  Alcotest.(check bool) "valid signature" true (Tx.verify_signature signed);
  let unsigned = sample_swap () in
  Alcotest.(check bool) "unsigned fails" false (Tx.verify_signature unsigned)

let test_tx_id_depends_on_round () =
  let _, pk, addr = user () in
  let payload =
    Tx.Swap
      { zero_for_one = true; kind = Tx.Exact_input; amount_specified = U256.one;
        amount_limit = U256.zero; sqrt_price_limit = U256.zero; deadline = 9 }
  in
  let t1 = Tx.create ~issuer:addr ~issuer_pk:pk ~pool:0 ~issued_round:1 ~issued_at:0.0 payload in
  let t2 = Tx.create ~issuer:addr ~issuer_pk:pk ~pool:0 ~issued_round:2 ~issued_at:0.0 payload in
  Alcotest.(check bool) "distinct ids" false (Ids.Tx_id.equal t1.Tx.id t2.Tx.id)

let test_word_encodings () =
  Alcotest.(check int) "word size" 32 (Bytes.length (Encoding.word U256.one));
  let addr = Address.of_label "x" in
  let w = Encoding.address_word addr in
  Alcotest.(check int) "padded" 32 (Bytes.length w);
  Alcotest.(check char) "left padding" '\000' (Bytes.get w 0)

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)
(* ------------------------------------------------------------------ *)

type blk = { h : int; sz : int }

let mk_ledger () =
  Ledger.create ~genesis:{ h = 0; sz = 100 } ~size:(fun b -> b.sz) ~k_depth:2

let test_ledger_append_confirm () =
  let l = mk_ledger () in
  for i = 1 to 5 do
    Ledger.append l { h = i; sz = 10 }
  done;
  Alcotest.(check int) "height" 5 (Ledger.height l);
  Alcotest.(check int) "confirmed" 3 (Ledger.confirmed_height l);
  Alcotest.(check bool) "3 confirmed" true (Ledger.is_confirmed l 3);
  Alcotest.(check bool) "4 not confirmed" false (Ledger.is_confirmed l 4);
  Alcotest.(check int) "bytes" 150 (Ledger.cumulative_bytes l)

let test_ledger_rollback () =
  let l = mk_ledger () in
  for i = 1 to 5 do
    Ledger.append l { h = i; sz = 10 }
  done;
  let dropped = Ledger.rollback l 2 in
  Alcotest.(check int) "dropped" 2 (List.length dropped);
  Alcotest.(check int) "height after" 3 (Ledger.height l);
  Alcotest.(check int) "bytes after" 130 (Ledger.cumulative_bytes l);
  Alcotest.(check bool) "tip is 3" true ((Ledger.tip l).h = 3)

let test_ledger_prune () =
  let l = mk_ledger () in
  for i = 1 to 6 do
    Ledger.append l { h = i; sz = 10 }
  done;
  let reclaimed = Ledger.prune l ~keep:(fun b -> b.h mod 2 = 0) in
  (* Blocks 1, 3, 5 are dropped (the tip, block 6, is even anyway). *)
  Alcotest.(check int) "reclaimed odd blocks" 30 reclaimed;
  Alcotest.(check int) "stored" (160 - 30) (Ledger.stored_bytes l);
  Alcotest.(check int) "cumulative unchanged" 160 (Ledger.cumulative_bytes l);
  Alcotest.(check bool) "pruned height is None" true (Ledger.nth l 3 = None);
  Alcotest.(check bool) "kept height" true (Ledger.nth l 4 <> None)

let test_ledger_prune_keeps_tip () =
  let l = mk_ledger () in
  Ledger.append l { h = 1; sz = 10 };
  let _ = Ledger.prune l ~keep:(fun _ -> false) in
  Alcotest.(check bool) "tip intact" true ((Ledger.tip l).h = 1)

let ledger_props =
  [ prop "rollback preserves the untouched prefix"
      QCheck2.Gen.(pair (int_range 1 30) (int_range 0 29))
      (fun (n, k) ->
        let k = Stdlib.min k (n - 1) in
        let l = mk_ledger () in
        for i = 1 to n do
          Ledger.append l { h = i; sz = i }
        done;
        let _ = Ledger.rollback l k in
        Ledger.height l = n - k
        && (match Ledger.nth l (n - k) with Some b -> b.h = n - k | None -> false)
        && Ledger.cumulative_bytes l = 100 + (((n - k) * (n - k + 1)) / 2)) ]

(* ------------------------------------------------------------------ *)
(* Mempool                                                             *)
(* ------------------------------------------------------------------ *)

let mp () = Mempool.create ~size:(fun (_, sz) -> sz)

let test_mempool_fifo_capacity () =
  let m = mp () in
  List.iter (fun x -> Mempool.push m x) [ (1, 40); (2, 40); (3, 40); (4, 40) ];
  Alcotest.(check int) "bytes" 160 (Mempool.byte_size m);
  let taken = Mempool.take_up_to m ~max_bytes:100 in
  Alcotest.(check (list int)) "fifo prefix" [ 1; 2 ] (List.map fst taken);
  Alcotest.(check int) "remaining" 2 (Mempool.length m)

let test_mempool_oversized_tx () =
  let m = mp () in
  Mempool.push m (1, 500);
  Mempool.push m (2, 10);
  (* An oversized head is delivered alone instead of wedging the queue. *)
  let taken = Mempool.take_up_to m ~max_bytes:100 in
  Alcotest.(check (list int)) "oversize alone" [ 1 ] (List.map fst taken);
  Alcotest.(check (list int)) "next fits" [ 2 ]
    (List.map fst (Mempool.take_up_to m ~max_bytes:100))

let test_mempool_drop_if () =
  let m = mp () in
  List.iter (fun x -> Mempool.push m x) [ (1, 10); (2, 10); (3, 10) ];
  let dropped = Mempool.drop_if m (fun (i, _) -> i = 2) in
  Alcotest.(check int) "dropped" 1 dropped;
  Alcotest.(check int) "bytes updated" 20 (Mempool.byte_size m);
  Alcotest.(check (list int)) "order preserved" [ 1; 3 ]
    (List.map fst (Mempool.peek_all m))

let mempool_props =
  [ prop "take never exceeds capacity (multi-tx case)"
      QCheck2.Gen.(list_size (int_range 0 30) (int_range 1 50))
      (fun sizes ->
        let m = mp () in
        List.iteri (fun i sz -> Mempool.push m (i, sz)) sizes;
        let taken = Mempool.take_up_to m ~max_bytes:60 in
        let total = List.fold_left (fun acc (_, sz) -> acc + sz) 0 taken in
        total <= 60 || List.length taken = 1) ]

let () =
  Alcotest.run "chain"
    [ ( "token/address",
        [ Alcotest.test_case "token" `Quick test_token;
          Alcotest.test_case "address derivation" `Quick test_address_derivation;
          Alcotest.test_case "address bad length" `Quick test_address_bad_length ] );
      ( "tx/encoding",
        [ Alcotest.test_case "wire sizes" `Quick test_tx_wire_sizes;
          Alcotest.test_case "table 8 sizes" `Quick test_tx_table8_sizes;
          Alcotest.test_case "sepolia sizes" `Quick test_tx_sepolia_sizes;
          Alcotest.test_case "signature" `Quick test_tx_signature;
          Alcotest.test_case "id freshness" `Quick test_tx_id_depends_on_round;
          Alcotest.test_case "word encodings" `Quick test_word_encodings ] );
      ( "ledger",
        [ Alcotest.test_case "append/confirm" `Quick test_ledger_append_confirm;
          Alcotest.test_case "rollback" `Quick test_ledger_rollback;
          Alcotest.test_case "prune" `Quick test_ledger_prune;
          Alcotest.test_case "prune keeps tip" `Quick test_ledger_prune_keeps_tip ]
        @ ledger_props );
      ( "mempool",
        [ Alcotest.test_case "fifo capacity" `Quick test_mempool_fifo_capacity;
          Alcotest.test_case "oversized" `Quick test_mempool_oversized_tx;
          Alcotest.test_case "drop_if" `Quick test_mempool_drop_if ]
        @ mempool_props ) ]
