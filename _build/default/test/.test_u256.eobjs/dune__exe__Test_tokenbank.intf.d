test/test_tokenbank.mli:
