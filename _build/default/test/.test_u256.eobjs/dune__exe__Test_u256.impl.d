test/test_u256.ml: Alcotest Amm_math Bytes List QCheck2 QCheck_alcotest Signed U256
