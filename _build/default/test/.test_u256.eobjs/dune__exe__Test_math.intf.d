test/test_math.mli:
