test/test_consensus.ml: Alcotest Amm_crypto Array Bytes Consensus Election Float Latency_model List Network Pbft Pqueue Printf QCheck2 QCheck_alcotest
