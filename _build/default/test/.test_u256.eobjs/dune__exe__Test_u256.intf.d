test/test_u256.mli:
