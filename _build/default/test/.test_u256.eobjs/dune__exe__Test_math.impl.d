test/test_math.ml: Alcotest Amm_math Float Liquidity_math List Printf Q96 QCheck2 QCheck_alcotest Sqrt_price_math Swap_math Tick_math U256
