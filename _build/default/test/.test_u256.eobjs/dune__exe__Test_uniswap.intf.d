test/test_uniswap.mli:
