test/test_sidechain.mli:
