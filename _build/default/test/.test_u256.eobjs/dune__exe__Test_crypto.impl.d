test/test_crypto.ml: Alcotest Amm_crypto Amm_math Array Bls Bytes Field Fun Group Keccak256 List Merkle Printf QCheck2 QCheck_alcotest Rng Sha256 String Vrf
