test/test_system.ml: Alcotest Amm_crypto Amm_math Ammboost Baseline Bytes Chain Config Float List Mainchain Party Printf QCheck2 QCheck_alcotest Sidechain System Tokenbank Traffic Uniswap
