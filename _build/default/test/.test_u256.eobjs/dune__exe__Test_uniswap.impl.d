test/test_uniswap.ml: Alcotest Amm_crypto Amm_math Chain Factory Float List Nfpm Option Oracle Pool Position Printf QCheck2 QCheck_alcotest Router Tick Uniswap
