test/test_sidechain.ml: Alcotest Amm_crypto Amm_math Auditor Blocks Bytes Chain Codec Deposits List Processor QCheck2 QCheck_alcotest Sidechain Tokenbank Uniswap
