test/test_tokenbank.ml: Alcotest Amm_crypto Amm_math Array Chain List Mainchain Printf String Sync_payload Token_bank Tokenbank
