test/test_chain.ml: Address Alcotest Amm_crypto Amm_math Bytes Chain Encoding Ids Ledger List Mempool QCheck2 QCheck_alcotest Stdlib String Token Tx
