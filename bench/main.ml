(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (one sub-command per table; no argument runs everything) and
   runs Bechamel micro-benchmarks of the hot primitives.

   Environment: AMMBOOST_BENCH_SCALE=<n> divides the daily traffic volumes
   by n for quicker runs (1 = the paper's full volumes);
   AMMBOOST_METRICS_DIR=<dir> writes one telemetry metrics snapshot per
   experiment to <dir>/<name>.metrics.json. *)

module E = Ammboost.Experiments

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let open Amm_math in
  let a = U256.of_string "123456789123456789123456789123456789123456789" in
  let b = U256.of_string "987654321987654321987654321987654321" in
  let c = U256.of_string "55555555555555555555555555" in
  let t_muldiv =
    Test.make ~name:"u256 mul_div" (Staged.stage (fun () -> U256.mul_div a b c))
  in
  let t_sqrt = Test.make ~name:"u256 sqrt" (Staged.stage (fun () -> U256.sqrt a)) in
  let t_tick =
    Test.make ~name:"tick->sqrt ratio"
      (Staged.stage (fun () -> Tick_math.get_sqrt_ratio_at_tick 123456))
  in
  let t_tick_inv =
    let ratio = Tick_math.get_sqrt_ratio_at_tick 123456 in
    Test.make ~name:"sqrt ratio->tick"
      (Staged.stage (fun () -> Tick_math.get_tick_at_sqrt_ratio ratio))
  in
  let payload = Bytes.make 1024 'x' in
  let t_keccak =
    Test.make ~name:"keccak256 (1KiB)"
      (Staged.stage (fun () -> Amm_crypto.Keccak256.digest payload))
  in
  let t_sha =
    Test.make ~name:"sha256 (1KiB)"
      (Staged.stage (fun () -> Amm_crypto.Sha256.digest payload))
  in
  let rng = Amm_crypto.Rng.create "bench" in
  let sk, pk = Amm_crypto.Bls.keygen rng in
  let msg = Bytes.of_string "sync payload digest" in
  let sigma = Amm_crypto.Bls.sign sk msg in
  let t_sign =
    Test.make ~name:"bls sign" (Staged.stage (fun () -> Amm_crypto.Bls.sign sk msg))
  in
  let t_verify =
    Test.make ~name:"bls verify"
      (Staged.stage (fun () -> Amm_crypto.Bls.verify pk msg sigma))
  in
  let _vk, shares = Amm_crypto.Bls.dkg rng ~n:16 ~threshold:11 in
  let t_threshold =
    Test.make ~name:"threshold sign 11-of-16"
      (Staged.stage (fun () ->
           let partials = List.map (fun s -> Amm_crypto.Bls.partial_sign s msg) shares in
           Amm_crypto.Bls.combine ~threshold:11 partials))
  in
  (* A pool primed for swap benchmarks. *)
  let pool =
    Uniswap.Pool.create ~pool_id:0
      ~token0:(Chain.Token.make ~id:0 ~symbol:"TKA")
      ~token1:(Chain.Token.make ~id:1 ~symbol:"TKB")
      ~fee_pips:3000 ~tick_spacing:60 ~sqrt_price:Q96.q96
  in
  let owner = Chain.Address.of_label "bench-lp" in
  (match
     Uniswap.Router.mint pool
       ~position_id:(Chain.Ids.Position_id.of_hash (Amm_crypto.Sha256.digest_string "b"))
       ~owner ~lower_tick:(-887220) ~upper_tick:887220
       ~amount0_desired:(U256.of_string "1000000000000000000000000")
       ~amount1_desired:(U256.of_string "1000000000000000000000000")
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  let amount = U256.of_string "1000000000000000000" in
  let flip = ref true in
  let t_swap =
    (* Alternate directions so the price random-walks around par instead of
       drifting out of range over thousands of samples. *)
    Test.make ~name:"pool swap (exact in)"
      (Staged.stage (fun () ->
           flip := not !flip;
           Uniswap.Router.exact_input pool ~zero_for_one:!flip ~amount_in:amount
             ~min_amount_out:U256.zero ()))
  in
  Test.make_grouped ~name:"ammboost" ~fmt:"%s/%s"
    [ t_muldiv; t_sqrt; t_tick; t_tick_inv; t_keccak; t_sha; t_sign; t_verify;
      t_threshold; t_swap ]

let run_micro () =
  let open Bechamel in
  Printf.printf "\n=== Micro-benchmarks (Bechamel; ns/run via OLS) ===\n%!";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      let r = Hashtbl.find results name in
      match Analyze.OLS.estimates r with
      | Some (t :: _) -> Printf.printf "  %-32s %12.1f ns/run\n" name t
      | Some [] | None -> Printf.printf "  %-32s (no estimate)\n" name)
    (List.sort compare names)

(* ------------------------------------------------------------------ *)
(* Experiment dispatch                                                 *)
(* ------------------------------------------------------------------ *)

let run_table1 sink =
  E.print_perf_table ~title:"Table 1: scalability of ammBoost" ~col_header:"Daily volume"
    (E.table1_scalability ~sink ())

let run_table2 sink =
  E.print_perf_table ~title:"Table 2: impact of sidechain block size (V_D = 50M)"
    ~col_header:"Block size" (E.table2_block_size ~sink ())

let run_table3 sink =
  E.print_perf_table ~title:"Table 3: impact of sidechain round duration (V_D = 25M)"
    ~col_header:"Round duration" (E.table3_round_duration ~sink ())

let run_table4 sink =
  E.print_perf_table ~title:"Table 4: impact of epoch length (V_D = 25M)"
    ~col_header:"Epoch (sc rounds)" (E.table4_epoch_length ~sink ())

let run_table5 sink =
  E.print_perf_table ~title:"Table 5: impact of traffic distribution (V_D = 25M)"
    ~col_header:"(swap,mint,burn,collect)" (E.table5_distribution ~sink ())

let run_table6 sink = E.print_table6 (E.table6_gas_itemized ~sink ())
let run_table7 _sink = E.print_table7 (E.table7_storage ())
let run_fig6 sink = E.print_fig6 (E.fig6_overall ~sink ())
let run_table8 _sink = E.print_table8 (E.table8_stats ())

let run_ablations sink =
  E.print_ablation ~title:"QC authentication cost" (E.ablation_authentication ~sink ());
  E.print_ablation ~title:"summary aggregation vs per-tx posting"
    (E.ablation_aggregation ~sink ());
  E.print_ablation ~title:"meta-block pruning" (E.ablation_pruning ~sink ())

let all_experiments =
  [ ("table1", run_table1); ("table2", run_table2); ("table3", run_table3);
    ("table4", run_table4); ("table5", run_table5); ("table6", run_table6);
    ("table7", run_table7); ("table8", run_table8); ("fig6", run_fig6);
    ("ablations", run_ablations); ("micro", fun _sink -> run_micro ()) ]

let metrics_dir = Sys.getenv_opt "AMMBOOST_METRICS_DIR"

let () =
  let targets =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all_experiments
  in
  Printf.printf "ammBoost benchmark harness (volumes = paper volumes / %.0f)\n" E.scale;
  List.iter
    (fun name ->
      match List.assoc_opt name all_experiments with
      | Some f ->
        (* One metrics registry per experiment: the snapshot aggregates
           every simulator run behind that table. *)
        let sink = Telemetry.Report.sink () in
        let sw = Telemetry.Clock.stopwatch () in
        f sink;
        Printf.printf "  [%s done in %.1fs wall, %.1fs cpu]\n%!" name
          (Telemetry.Clock.elapsed_wall sw) (Telemetry.Clock.elapsed_cpu sw);
        (match metrics_dir with
        | Some dir ->
          Telemetry.Report.write_metrics sink
            ~path:(Filename.concat dir (name ^ ".metrics.json"))
        | None -> ())
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map fst all_experiments)))
    targets
