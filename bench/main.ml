(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (one sub-command per table; no argument runs everything) and
   runs Bechamel micro-benchmarks of the hot primitives.

   Simulator experiments run concurrently on OCaml 5 domains: the job
   count comes from -j N / --jobs N, else AMMBOOST_BENCH_JOBS, else the
   machine's recommended domain count. Each experiment computes against a
   private telemetry sink and returns a printer; printing happens
   sequentially in command-line order afterwards, so stdout is
   byte-identical at any job count (timing lines go to stderr). The micro
   benchmark is timing-sensitive and always runs serially, at its position
   in the target list.

   Environment: AMMBOOST_BENCH_SCALE=<n> divides the daily traffic volumes
   by n for quicker runs (1 = the paper's full volumes);
   AMMBOOST_BENCH_JOBS=<n> sets the default domain count;
   AMMBOOST_METRICS_DIR=<dir> writes one telemetry metrics snapshot per
   experiment to <dir>/<name>.metrics.json;
   AMMBOOST_BENCH_RESULTS=<path> sets where the machine-readable results
   JSON lands (default ./BENCH_results.json);
   AMMBOOST_OBSERVE_OUT=<path> makes the "observe" experiment write its
   growth-ledger series JSON there (the CI growth guard diffs that file
   against the checked-in OBSERVE_baseline.json — the observe run uses a
   fixed configuration, so the output ignores AMMBOOST_BENCH_SCALE);
   AMMBOOST_REPORT_OUT=<path> makes it write the markdown run-report. *)

module E = Ammboost.Experiments
module Json = Telemetry.Json

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* Report order = declaration order below. Bechamel hands results back in
   a Hashtbl whose iteration order is unspecified, so the report walks
   this static list instead. *)
let micro_names =
  [ "u256 mul_div"; "u256 sqrt"; "tick->sqrt ratio"; "sqrt ratio->tick";
    "keccak256 (1KiB)"; "sha256 (1KiB)"; "bls sign"; "bls verify";
    "threshold sign 11-of-16"; "pool swap (exact in)" ]
  |> List.map (fun n -> "ammboost/" ^ n)

(* ns/run measured on the pre-optimisation tree (same machine class, same
   Bechamel settings). Fallback only: when a previous results file exists
   at the results path, its [micro_ns] becomes the baseline instead (see
   [load_baseline]), so successive runs compare against the checked-in
   numbers without this table going stale. *)
let builtin_baseline_micro_ns =
  [ ("ammboost/u256 mul_div", 1349.9); ("ammboost/u256 sqrt", 6469.2);
    ("ammboost/tick->sqrt ratio", 4546.7); ("ammboost/sqrt ratio->tick", 130382.8);
    ("ammboost/keccak256 (1KiB)", 140086.3); ("ammboost/sha256 (1KiB)", 22705.3);
    ("ammboost/bls sign", 17244.3); ("ammboost/bls verify", 23639.9);
    ("ammboost/threshold sign 11-of-16", 145973092.7);
    ("ammboost/pool swap (exact in)", 89366.4) ]

let micro_tests () =
  let open Bechamel in
  let open Amm_math in
  let a = U256.of_string "123456789123456789123456789123456789123456789" in
  let b = U256.of_string "987654321987654321987654321987654321" in
  let c = U256.of_string "55555555555555555555555555" in
  let t_muldiv =
    Test.make ~name:"u256 mul_div" (Staged.stage (fun () -> U256.mul_div a b c))
  in
  let t_sqrt = Test.make ~name:"u256 sqrt" (Staged.stage (fun () -> U256.sqrt a)) in
  let t_tick =
    Test.make ~name:"tick->sqrt ratio"
      (Staged.stage (fun () -> Tick_math.get_sqrt_ratio_at_tick 123456))
  in
  let t_tick_inv =
    let ratio = Tick_math.get_sqrt_ratio_at_tick 123456 in
    Test.make ~name:"sqrt ratio->tick"
      (Staged.stage (fun () -> Tick_math.get_tick_at_sqrt_ratio ratio))
  in
  let payload = Bytes.make 1024 'x' in
  let t_keccak =
    Test.make ~name:"keccak256 (1KiB)"
      (Staged.stage (fun () -> Amm_crypto.Keccak256.digest payload))
  in
  let t_sha =
    Test.make ~name:"sha256 (1KiB)"
      (Staged.stage (fun () -> Amm_crypto.Sha256.digest payload))
  in
  let rng = Amm_crypto.Rng.create "bench" in
  let sk, pk = Amm_crypto.Bls.keygen rng in
  let msg = Bytes.of_string "sync payload digest" in
  let sigma = Amm_crypto.Bls.sign sk msg in
  let t_sign =
    Test.make ~name:"bls sign" (Staged.stage (fun () -> Amm_crypto.Bls.sign sk msg))
  in
  let t_verify =
    Test.make ~name:"bls verify"
      (Staged.stage (fun () -> Amm_crypto.Bls.verify pk msg sigma))
  in
  let _vk, _, shares = Amm_crypto.Bls.dkg rng ~n:16 ~threshold:11 in
  let t_threshold =
    Test.make ~name:"threshold sign 11-of-16"
      (Staged.stage (fun () ->
           let partials = List.map (fun s -> Amm_crypto.Bls.partial_sign s msg) shares in
           Amm_crypto.Bls.combine ~threshold:11 partials))
  in
  (* A pool primed for swap benchmarks. *)
  let pool =
    Uniswap.Pool.create ~pool_id:0
      ~token0:(Chain.Token.make ~id:0 ~symbol:"TKA")
      ~token1:(Chain.Token.make ~id:1 ~symbol:"TKB")
      ~fee_pips:3000 ~tick_spacing:60 ~sqrt_price:Q96.q96
  in
  let owner = Chain.Address.of_label "bench-lp" in
  (match
     Uniswap.Router.mint pool
       ~position_id:(Chain.Ids.Position_id.of_hash (Amm_crypto.Sha256.digest_string "b"))
       ~owner ~lower_tick:(-887220) ~upper_tick:887220
       ~amount0_desired:(U256.of_string "1000000000000000000000000")
       ~amount1_desired:(U256.of_string "1000000000000000000000000")
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  let amount = U256.of_string "1000000000000000000" in
  let flip = ref true in
  let t_swap =
    (* Alternate directions so the price random-walks around par instead of
       drifting out of range over thousands of samples. *)
    Test.make ~name:"pool swap (exact in)"
      (Staged.stage (fun () ->
           flip := not !flip;
           Uniswap.Router.exact_input pool ~zero_for_one:!flip ~amount_in:amount
             ~min_amount_out:U256.zero ()))
  in
  Test.make_grouped ~name:"ammboost" ~fmt:"%s/%s"
    [ t_muldiv; t_sqrt; t_tick; t_tick_inv; t_keccak; t_sha; t_sign; t_verify;
      t_threshold; t_swap ]

(* AMMBOOST_MICRO_QUOTA=<seconds> shrinks the per-test sampling budget —
   CI's perf-guard runs at a reduced quota so the job stays fast. *)
let micro_quota () =
  match Sys.getenv_opt "AMMBOOST_MICRO_QUOTA" with
  | Some s ->
    (match float_of_string_opt s with
    | Some q when q > 0.0 -> q
    | _ ->
      Printf.eprintf "ignoring invalid AMMBOOST_MICRO_QUOTA=%S\n%!" s;
      0.5)
  | None -> 0.5

let run_micro () =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second (micro_quota ())) ~kde:None ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  List.map
    (fun name ->
      let ns =
        match Hashtbl.find_opt results name with
        | None -> None
        | Some r ->
          (match Analyze.OLS.estimates r with
          | Some (t :: _) -> Some t
          | Some [] | None -> None)
      in
      (name, ns))
    micro_names

let print_micro rows =
  Printf.printf "\n=== Micro-benchmarks (Bechamel; ns/run via OLS) ===\n";
  List.iter
    (fun (name, ns) ->
      match ns with
      | Some t -> Printf.printf "  %-32s %12.1f ns/run\n" name t
      | None -> Printf.printf "  %-32s (no estimate)\n" name)
    rows

(* ------------------------------------------------------------------ *)
(* Experiment dispatch                                                 *)
(* ------------------------------------------------------------------ *)

(* Each simulator experiment is compute/print split: [compute sink]
   performs the runs (this part fans out over domains) and returns a
   printer closure over the finished rows. *)

let compute_table1 sink =
  let rows = E.table1_scalability ~sink () in
  fun () ->
    E.print_perf_table ~title:"Table 1: scalability of ammBoost"
      ~col_header:"Daily volume" rows

let compute_table2 sink =
  let rows = E.table2_block_size ~sink () in
  fun () ->
    E.print_perf_table ~title:"Table 2: impact of sidechain block size (V_D = 50M)"
      ~col_header:"Block size" rows

let compute_table3 sink =
  let rows = E.table3_round_duration ~sink () in
  fun () ->
    E.print_perf_table ~title:"Table 3: impact of sidechain round duration (V_D = 25M)"
      ~col_header:"Round duration" rows

let compute_table4 sink =
  let rows = E.table4_epoch_length ~sink () in
  fun () ->
    E.print_perf_table ~title:"Table 4: impact of epoch length (V_D = 25M)"
      ~col_header:"Epoch (sc rounds)" rows

let compute_table5 sink =
  let rows = E.table5_distribution ~sink () in
  fun () ->
    E.print_perf_table ~title:"Table 5: impact of traffic distribution (V_D = 25M)"
      ~col_header:"(swap,mint,burn,collect)" rows

let compute_table6 sink =
  let t = E.table6_gas_itemized ~sink () in
  fun () -> E.print_table6 t

let compute_table7 _sink =
  let t = E.table7_storage () in
  fun () -> E.print_table7 t

let compute_fig6 sink =
  let f = E.fig6_overall ~sink () in
  fun () -> E.print_fig6 f

let compute_table8 _sink =
  let rows = E.table8_stats () in
  fun () -> E.print_table8 rows

let compute_chaos sink =
  let rows = E.chaos_soak ~sink () in
  fun () ->
    E.print_perf_table
      ~title:"Chaos soak: fault-rate sweep (recovery + replay oracle)"
      ~col_header:"Fault intensity" rows

let compute_exit_drill sink =
  let rows = E.exit_drill ~sink () in
  fun () ->
    E.print_perf_table
      ~title:"Exit drill: stall duration vs exit gas and recovery latency"
      ~col_header:"Liveness failure" rows

let compute_crash_drill sink =
  let rows = E.crash_drill ~sink () in
  fun () -> E.print_crash_drill rows

let compute_ablations sink =
  (* The three ablations are independent runs: fan them out too. *)
  let auth, (agg, pruning) =
    Parallel.run_pair
      (fun () -> E.ablation_authentication ~sink ())
      (fun () ->
        Parallel.run_pair
          (fun () -> E.ablation_aggregation ~sink ())
          (fun () -> E.ablation_pruning ~sink ()))
  in
  fun () ->
    E.print_ablation ~title:"QC authentication cost" auth;
    E.print_ablation ~title:"summary aggregation vs per-tx posting" agg;
    E.print_ablation ~title:"meta-block pruning" pruning

let observe_out = Sys.getenv_opt "AMMBOOST_OBSERVE_OUT"
let report_out = Sys.getenv_opt "AMMBOOST_REPORT_OUT"

let write_file path text =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let compute_observe sink =
  let o = E.observe ~sink () in
  fun () ->
    E.print_observe o;
    (match observe_out with
    | Some path when path <> "" ->
      write_file path o.E.obs_series_json;
      Printf.eprintf "  [growth series written to %s]\n%!" path
    | _ -> ());
    (match report_out with
    | Some path when path <> "" ->
      write_file path o.E.obs_report;
      Printf.eprintf "  [run report written to %s]\n%!" path
    | _ -> ())

let twin_out = Sys.getenv_opt "AMMBOOST_TWIN_OUT"

let compute_twin_audit sink =
  let rows = E.twin_audit ~sink () in
  let overhead = E.twin_overhead ~sink () in
  fun () ->
    E.print_perf_table
      ~title:"Twin audit: silent corruption vs the differential audit"
      ~col_header:"Corruption cell" rows;
    E.print_twin_overhead overhead;
    (match twin_out with
    | Some path when path <> "" ->
      write_file path (E.twin_overhead_json overhead ^ "\n");
      Printf.eprintf "  [twin overhead written to %s]\n%!" path
    | _ -> ())

let sweep_out = Sys.getenv_opt "AMMBOOST_SWEEP_OUT"

let compute_scale_sweep sink =
  let rows = E.scale_sweep ~sink () in
  fun () ->
    E.print_scale_sweep rows;
    (match sweep_out with
    | Some path when path <> "" ->
      write_file path (E.sweep_json rows ^ "\n");
      Printf.eprintf "  [sweep table written to %s]\n%!" path
    | _ -> ())

type experiment =
  | Sim of (Telemetry.Report.sink -> unit -> unit)
  | Micro
  | Sweep  (** serial like [Micro]: its RSS measurement is process-wide *)

(* The default target list. "scale-sweep" is opt-in only (see
   [extra_experiments]): its 10k-user cell is far heavier than any
   table and its measurements want an otherwise quiet process. *)
let all_experiments =
  [ ("table1", Sim compute_table1); ("table2", Sim compute_table2);
    ("table3", Sim compute_table3); ("table4", Sim compute_table4);
    ("table5", Sim compute_table5); ("table6", Sim compute_table6);
    ("table7", Sim compute_table7); ("table8", Sim compute_table8);
    ("fig6", Sim compute_fig6); ("ablations", Sim compute_ablations);
    ("chaos", Sim compute_chaos); ("exit-drill", Sim compute_exit_drill);
    ("crash-drill", Sim compute_crash_drill);
    ("twin-audit", Sim compute_twin_audit);
    ("observe", Sim compute_observe); ("micro", Micro) ]

let extra_experiments = [ ("scale-sweep", Sweep) ]

let metrics_dir = Sys.getenv_opt "AMMBOOST_METRICS_DIR"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(* ------------------------------------------------------------------ *)
(* Orchestration                                                       *)
(* ------------------------------------------------------------------ *)

type outcome = {
  o_name : string;
  o_print : unit -> unit;
  o_sink : Telemetry.Report.sink;
  o_wall : float;
  o_cpu : float;
  o_rss_kb : int;          (* process peak RSS when the experiment ended *)
  o_major_words : float;   (* GC major words allocated, driving domain *)
  o_promoted_words : float;
  o_micro : (string * float option) list;  (* non-empty only for micro *)
}

(* GC counters are per-domain: for parallel-batched experiments they cover
   the driving domain only (workers allocate in their own heaps), which
   still tracks the serial experiments exactly and trends for the rest.
   Peak RSS is process-wide and monotone. *)
let run_measured name compute =
  let sink = Telemetry.Report.sink () in
  let sw = Telemetry.Clock.stopwatch () in
  let g0 = Gc.quick_stat () in
  let print, micro = compute sink in
  let g1 = Gc.quick_stat () in
  { o_name = name; o_print = print; o_sink = sink;
    o_wall = Telemetry.Clock.elapsed_wall sw;
    o_cpu = Telemetry.Clock.elapsed_cpu sw;
    o_rss_kb = E.peak_rss_kb ();
    o_major_words = g1.Gc.major_words -. g0.Gc.major_words;
    o_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    o_micro = micro }

let run_sim name compute =
  (* One metrics registry per experiment: the snapshot aggregates every
     simulator run behind that table. The sink is private to this
     experiment, so concurrent experiments never share one. *)
  run_measured name (fun sink -> (compute sink, []))

let run_micro_outcome () =
  (* Even idle pool domains degrade minor-GC pauses; join them so the
     micro numbers measure the primitive, not the pool. The pool restarts
     lazily if more simulator experiments follow. *)
  Parallel.shutdown ();
  run_measured "micro" (fun _sink ->
      let rows = run_micro () in
      ((fun () -> print_micro rows), rows))

let run_sweep_outcome () =
  (* Like micro: serial, with the domain pool quiesced, so the sweep's
     peak-RSS and GC numbers describe the sweep alone. *)
  Parallel.shutdown ();
  run_measured "scale-sweep" (fun sink -> (compute_scale_sweep sink, []))

let finish outcome =
  outcome.o_print ();
  flush stdout;
  (* Timing depends on load and job count: stderr, so stdout stays
     byte-identical across -j values. *)
  Printf.eprintf
    "  [%s done in %.1fs wall, %.1fs cpu; rss peak %dKB, %.0f major words, %.0f promoted]\n%!"
    outcome.o_name outcome.o_wall outcome.o_cpu outcome.o_rss_kb
    outcome.o_major_words outcome.o_promoted_words;
  match metrics_dir with
  | Some dir ->
    mkdir_p dir;
    Telemetry.Report.write_metrics outcome.o_sink
      ~path:(Filename.concat dir (outcome.o_name ^ ".metrics.json"))
  | None -> ()

(* Simulator experiments between two micro runs execute as one parallel
   batch; printing stays in command-line order. *)
let run_targets targets =
  let rec go acc = function
    | [] -> List.rev acc
    | ("micro", Micro) :: rest ->
      let o = run_micro_outcome () in
      finish o;
      go (o :: acc) rest
    | (_, Sim _) :: _ as l ->
      let sims, rest =
        let rec split acc = function
          | (name, Sim f) :: tl -> split ((name, f) :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        split [] l
      in
      let outcomes = Parallel.map_list (fun (name, f) -> run_sim name f) sims in
      List.iter finish outcomes;
      go (List.rev_append outcomes acc) rest
    | (_, Sweep) :: rest ->
      let o = run_sweep_outcome () in
      finish o;
      go (o :: acc) rest
    | (name, Micro) :: rest ->
      (* unreachable: only "micro" carries Micro *)
      ignore name;
      go acc rest
  in
  go [] targets

(* ------------------------------------------------------------------ *)
(* Machine-readable results                                            *)
(* ------------------------------------------------------------------ *)

let results_path () =
  match Sys.getenv_opt "AMMBOOST_BENCH_RESULTS" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_results.json"

(* The micro baseline: the previous results file at the results path when
   it parses, else the built-in table. Must run before the file is
   truncated for writing. *)
let load_baseline () =
  let path = results_path () in
  let from_file =
    if not (Sys.file_exists path) then None
    else
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error _ -> None
      | text ->
        (match Json.parse text with
        | Error _ -> None
        | Ok doc ->
          (match Json.member "micro_ns" doc with
          | Some (Json.Jobject fields) ->
            let rows =
              List.filter_map
                (fun (k, v) ->
                  match v with Json.Jnumber f -> Some (k, f) | _ -> None)
                fields
            in
            if rows = [] then None else Some rows
          | _ -> None))
  in
  match from_file with
  | Some rows ->
    Printf.eprintf "  [micro baseline: previous %s]\n%!" path;
    rows
  | None ->
    Printf.eprintf "  [micro baseline: built-in table]\n%!";
    builtin_baseline_micro_ns

let write_results ~jobs ~baseline outcomes =
  let micro_rows = List.concat_map (fun o -> o.o_micro) outcomes in
  let ns_obj rows =
    Json.obj
      (List.filter_map
         (fun (name, ns) -> Option.map (fun t -> (name, Json.float t)) ns)
         rows)
  in
  let experiments =
    Json.array
      (List.map
         (fun o ->
           Json.obj_of_fields
             [ ("name", Json.String o.o_name); ("wall_s", Json.Float o.o_wall);
               ("cpu_s", Json.Float o.o_cpu); ("rss_peak_kb", Json.Int o.o_rss_kb);
               ("gc_major_words", Json.Float o.o_major_words);
               ("gc_promoted_words", Json.Float o.o_promoted_words) ])
         outcomes)
  in
  let doc =
    Json.obj
      [ ("schema", Json.string "ammboost-bench/1");
        ("scale", Json.float E.scale);
        ("jobs", string_of_int jobs);
        ("experiments", experiments);
        ("micro_ns", ns_obj micro_rows);
        ("baseline_micro_ns",
         ns_obj (List.map (fun (n, v) -> (n, Some v)) baseline)) ]
  in
  let path = results_path () in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (doc ^ "\n"));
  Printf.eprintf "  [results written to %s]\n%!" path

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let usage () =
  Printf.eprintf
    "usage: main.exe [-j N | --jobs N] [experiment ...]\navailable experiments: %s\n"
    (String.concat ", " (List.map fst (all_experiments @ extra_experiments)));
  exit 2

let parse_jobs s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | _ ->
    Printf.eprintf "invalid job count %S (want a positive integer)\n" s;
    exit 2

let parse_argv argv =
  let rec go jobs targets = function
    | [] -> (jobs, List.rev targets)
    | ("-j" | "--jobs") :: n :: rest -> go (Some (parse_jobs n)) targets rest
    | [ "-j" ] | [ "--jobs" ] ->
      Printf.eprintf "missing job count after -j\n";
      exit 2
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
      go (Some (parse_jobs (String.sub arg 7 (String.length arg - 7)))) targets rest
    | arg :: rest
      when String.length arg > 2 && String.sub arg 0 2 = "-j"
           && int_of_string_opt (String.sub arg 2 (String.length arg - 2)) <> None ->
      go (Some (parse_jobs (String.sub arg 2 (String.length arg - 2)))) targets rest
    | ("-h" | "--help") :: _ -> usage ()
    | arg :: rest -> go jobs (arg :: targets) rest
  in
  go None [] (List.tl (Array.to_list argv))

let () =
  let jobs_flag, names = parse_argv Sys.argv in
  (match jobs_flag with Some n -> Parallel.set_default_domains n | None -> ());
  let jobs = Parallel.default_domains () in
  let names = if names = [] then List.map fst all_experiments else names in
  let known = all_experiments @ extra_experiments in
  let targets =
    List.filter_map
      (fun name ->
        match List.assoc_opt name known with
        | Some kind -> Some (name, kind)
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst known));
          None)
      names
  in
  Printf.printf "ammBoost benchmark harness (volumes = paper volumes / %.0f)\n" E.scale;
  Printf.eprintf "  [running %d experiment(s) with %d job(s)]\n%!"
    (List.length targets) jobs;
  let baseline = load_baseline () in
  let outcomes = run_targets targets in
  write_results ~jobs ~baseline outcomes
