(* Flash loans — the one transaction type ammBoost keeps on the mainchain
   (§4.2 "Flashes"): borrowing requires instant token dispensing, which
   the epoch-delayed sidechain payouts cannot provide.

   An arbitrageur flash-borrows TKA from TokenBank, trades it at a better
   price on an external venue (simulated), repays principal + fee within
   the same block, and keeps the difference. A second attempt with no
   profitable trade shows the loan inverting without touching the pool.

     dune exec examples/flash_arbitrage.exe *)

module U256 = Amm_math.U256
module Erc20 = Mainchain.Erc20
module Token_bank = Tokenbank.Token_bank

let u = U256.of_string
let fmt v = U256.to_float v /. 1e18
let expect = function Ok v -> v | Error e -> failwith e

let () =
  Printf.printf "=== Flash loans on TokenBank ===\n\n";
  let erc0 = Erc20.deploy (Chain.Token.make ~id:0 ~symbol:"TKA") in
  let erc1 = Erc20.deploy (Chain.Token.make ~id:1 ~symbol:"TKB") in
  let rng = Amm_crypto.Rng.create "flash-committee" in
  let csk, cvk = Amm_crypto.Bls.keygen rng in
  let bank = Token_bank.deploy ~token0:erc0 ~token1:erc1 ~genesis_committee_vk:cvk in
  let pool_id = Token_bank.create_pool bank ~flash_fee_pips:3000 in

  (* Fund the pool the way ammBoost does: an LP deposits for epoch 0 and
     the committee's Sync turns the payin into pool reserves. *)
  let lp = Chain.Address.of_label "lp" in
  let reserve = u "1000000000000000000000" in
  Erc20.mint erc0 lp reserve;
  Erc20.mint erc1 lp reserve;
  Erc20.approve erc0 ~owner:lp ~spender:(Token_bank.address bank) U256.max_value;
  Erc20.approve erc1 ~owner:lp ~spender:(Token_bank.address bank) U256.max_value;
  expect (Token_bank.deposit bank ~user:lp ~for_epoch:0 ~amount0:reserve ~amount1:reserve);
  let payload =
    { Tokenbank.Sync_payload.epoch = 0; pool = pool_id; pool_balance0 = reserve;
      pool_balance1 = reserve;
      users =
        [ { Tokenbank.Sync_payload.user = lp; payin0 = reserve; payin1 = reserve;
            payout0 = U256.zero; payout1 = U256.zero } ];
      positions = []; next_committee_vk = cvk }
  in
  let signature = Amm_crypto.Bls.sign csk (Tokenbank.Sync_payload.signing_bytes payload) in
  ignore (Token_bank.sync_exn bank ~signed:[ (payload, signature) ]);
  Printf.printf "Pool funded with %.0f TKA / %.0f TKB via the epoch-0 Sync.\n\n"
    (fmt reserve) (fmt reserve);

  let arb = Chain.Address.of_label "arbitrageur" in
  let borrow = u "100000000000000000000" in

  (* Scenario 1: profitable arbitrage — an external venue (simulated)
     pays a 1% premium on TKA. *)
  Printf.printf "[1] Borrow %.0f TKA, sell at a 1%% premium elsewhere, repay + 0.3%% fee:\n"
    (fmt borrow);
  let venue = Chain.Address.of_label "external-venue" in
  Erc20.mint erc0 venue (u "10000000000000000000000");
  (match
     Token_bank.flash bank ~pool:pool_id ~borrower:arb ~amount0:borrow ~amount1:U256.zero
       ~callback:(fun ~fee0 ~fee1:_ ->
         let premium = U256.div (U256.mul borrow (U256.of_int 101)) (U256.of_int 100) in
         expect (Erc20.transfer erc0 ~source:arb ~dest:venue borrow);
         expect (Erc20.transfer erc0 ~source:venue ~dest:arb premium);
         Printf.printf "    external trade done: hold %.2f TKA, owe %.2f + %.4f fee\n"
           (fmt premium) (fmt borrow) (fmt fee0);
         Ok ())
   with
  | Ok (fee0, _) ->
    Printf.printf "    repaid. Arbitrageur profit: %.4f TKA; pool earned %.4f TKA fee.\n\n"
      (fmt (Erc20.balance_of erc0 arb)) (fmt fee0)
  | Error e -> Printf.printf "    unexpected failure: %s\n\n" e);

  (* Scenario 2: the opportunity evaporates; the whole loan inverts. *)
  Printf.printf "[2] Borrow again, but the external price moved — cannot repay:\n";
  let pool_balance () =
    match Token_bank.pool bank pool_id with
    | Some p -> p.Token_bank.balance0
    | None -> U256.zero
  in
  let before = pool_balance () in
  (match
     Token_bank.flash bank ~pool:pool_id ~borrower:arb ~amount0:borrow ~amount1:U256.zero
       ~callback:(fun ~fee0:_ ~fee1:_ ->
         (* The funds end up somewhere unrecoverable, then the trade fails;
            the EVM-style revert unwinds all of it. *)
         expect (Erc20.transfer erc0 ~source:arb ~dest:venue borrow);
         Error "arbitrage no longer profitable")
   with
  | Ok _ -> Printf.printf "    BUG: loan should have inverted\n"
  | Error e -> Printf.printf "    loan inverted: %s\n" e);
  let after = pool_balance () in
  Printf.printf "    pool reserves unchanged: %.4f = %.4f (%b)\n" (fmt before) (fmt after)
    (U256.equal before after);
  Printf.printf
    "\nBecause a flash settles within one block, it never invalidates the pool\n\
     snapshot the sidechain committee took at epoch start (§4.2).\n"
