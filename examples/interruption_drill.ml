(* Interruption drill — the paper's §4.2 recovery mechanisms under fire:

   1. a message-level PBFT committee replacing a silent and then a
      malicious leader through view change;
   2. full system runs where an epoch's Sync goes missing (silent
      leader), arrives corrupted (invalid sync), or falls off the
      mainchain (rollback) — each repaired by the next committee's
      mass-sync;
   3. seeded all-layer chaos via the fault-plan engine (lib/faults/):
      probabilistic network, consensus, committee and mainchain faults
      swept by intensity, with the recovery counters and the
      differential replay oracle verdict printed per run;
   4. liveness failures past the point of repair: scripted
      quorum-starvation windows and a permanent committee loss drive the
      watchdog through Degraded and Halted, parties withdraw through the
      emergency exit, and a reconciliation restores the survivors.

   The drill is an executable spec: every scene's oracle verdicts
   (custody, differential replay, exit conservation) are asserted, and
   the process exits non-zero if any of them fail.

     dune exec examples/interruption_drill.exe *)

open Ammboost

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.printf "  ** ASSERTION FAILED: %s\n" what
  end

let run_pbft_scene name behaviors =
  let rng = Amm_crypto.Rng.create ("drill-" ^ name) in
  let n = Array.length behaviors in
  let cfg =
    { Consensus.Pbft.n; f = (n - 1) / 3; behaviors; delta = 0.08; timeout = 1.0;
      max_time = 60.0 }
  in
  let o = Consensus.Pbft.run ~rng cfg ~value:(Bytes.of_string "meta-block") in
  let decided =
    Array.fold_left (fun acc d -> if d <> None then acc + 1 else acc) 0
      o.Consensus.Pbft.decisions
  in
  Printf.printf "  %-28s agreement=%b decided=%d/%d view-changes=%d\n" name
    (Consensus.Pbft.honest_agreement cfg o)
    decided n o.Consensus.Pbft.total_view_changes

let run_system_scene name interruptions =
  let cfg =
    { Config.default with
      epochs = 4; daily_volume = 50_000; users = 20; miners = 60; committee_size = 20;
      max_faulty = 6; interruptions; seed = "drill-" ^ name }
  in
  let r = System.run cfg in
  Printf.printf
    "  %-28s epochs synced=%d/%d mass-syncs=%d payouts settled=%d/%d custody=%b\n" name
    r.System.epochs_applied r.System.epochs_run r.System.mass_syncs
    r.System.payouts_settled r.System.processed r.System.custody_consistent;
  check (name ^ ": custody") r.System.custody_consistent;
  check (name ^ ": replay oracle") r.System.replay_consistent;
  check (name ^ ": all epochs synced") (r.System.epochs_applied = r.System.epochs_run)

let run_chaos_scene intensity =
  let cfg =
    { Config.default with
      epochs = 4; daily_volume = 50_000; users = 12; miners = 40; committee_size = 13;
      max_faulty = 4; threshold_signing = true; message_level_consensus = true;
      mc_confirmations = 3;
      faults = Faults.Fault_plan.chaos ~intensity ();
      seed = Printf.sprintf "drill-chaos-%.2f" intensity }
  in
  let r = System.run cfg in
  let injected = List.fold_left (fun a (_, n) -> a + n) 0 r.System.faults_injected in
  Printf.printf
    "  intensity %3.0f%%  faults=%-5d epochs=%d/%d retries=%d mass-syncs=%d \
     degraded=%d rollbacks=%d oracle=%s\n"
    (intensity *. 100.) injected r.System.epochs_applied r.System.epochs_run
    r.System.sync_retries r.System.mass_syncs r.System.degraded_signings
    r.System.rollbacks
    (if r.System.replay_consistent then "pass" else "FAIL");
  check (Printf.sprintf "chaos %.2f: replay oracle" intensity) r.System.replay_consistent;
  check (Printf.sprintf "chaos %.2f: custody" intensity) r.System.custody_consistent

let run_watchdog_scene name scenario ~expect_final ~expect_exits =
  let cfg =
    { Config.default with
      epochs = 8; daily_volume = 50_000; users = 16; miners = 40; committee_size = 13;
      max_faulty = 4;
      faults = { Faults.Fault_plan.none with Faults.Fault_plan.scenario };
      watchdog =
        { Config.default_watchdog with Config.wd_stall_degraded = 2; wd_stall_halted = 4 };
      seed = "drill-" ^ name }
  in
  let r = System.run cfg in
  Printf.printf
    "  %-28s mode=%s exits=%d/%d exit-conservation=%b oracle=%s custody=%b\n" name
    r.System.final_mode r.System.exits_served cfg.Config.users
    r.System.exit_conservation
    (if r.System.replay_consistent then "pass" else "FAIL")
    r.System.custody_consistent;
  check (name ^ ": final mode " ^ expect_final) (r.System.final_mode = expect_final);
  check (name ^ ": exit conservation") r.System.exit_conservation;
  check (name ^ ": replay oracle") r.System.replay_consistent;
  check (name ^ ": custody") r.System.custody_consistent;
  if expect_exits then
    check (name ^ ": every party exited") (r.System.exits_served = cfg.Config.users)
  else check (name ^ ": no exits") (r.System.exits_served = 0)

let () =
  Printf.printf "=== Interruption drill ===\n\n";
  Printf.printf "[1] PBFT committee (n=10, f=3) under leader faults:\n";
  run_pbft_scene "all honest" (Array.make 10 Consensus.Pbft.Honest);
  let b = Array.make 10 Consensus.Pbft.Honest in
  b.(0) <- Consensus.Pbft.Silent;
  run_pbft_scene "silent leader" b;
  let b = Array.make 10 Consensus.Pbft.Honest in
  b.(0) <- Consensus.Pbft.Propose_invalid;
  b.(1) <- Consensus.Pbft.Silent;
  run_pbft_scene "invalid then silent leader" b;
  let b = Array.make 10 Consensus.Pbft.Honest in
  b.(3) <- Consensus.Pbft.Silent;
  b.(6) <- Consensus.Pbft.Silent;
  b.(9) <- Consensus.Pbft.Silent;
  run_pbft_scene "f silent replicas" b;

  Printf.printf "\n[2] Full-system interruptions (4 epochs, recovery via mass-sync):\n";
  run_system_scene "no interruption" [];
  run_system_scene "silent sync leader @1" [ Config.Silent_sync_leader 1 ];
  run_system_scene "invalid sync @1" [ Config.Invalid_sync 1 ];
  run_system_scene "mainchain rollback @1" [ Config.Mainchain_rollback 1 ];
  run_system_scene "censoring committee @1" [ Config.Censoring_committee 1 ];
  run_system_scene "three interruptions"
    [ Config.Silent_sync_leader 0; Config.Invalid_sync 2 ];

  Printf.printf "\n[3] Seeded chaos (fault-plan engine, all layers at once):\n";
  List.iter run_chaos_scene [ 0.05; 0.15; 0.3 ];

  Printf.printf
    "\n[4] Liveness watchdog and emergency exit (Degraded at 2 stalled epochs,\n\
    \    Halted at 4):\n";
  run_watchdog_scene "short starvation"
    { Faults.Fault_plan.quorum_starvation = Some (2, 4); committee_loss = None }
    ~expect_final:"normal" ~expect_exits:false;
  run_watchdog_scene "long starvation"
    { Faults.Fault_plan.quorum_starvation = Some (2, 5); committee_loss = None }
    ~expect_final:"normal" ~expect_exits:true;
  run_watchdog_scene "permanent committee loss"
    { Faults.Fault_plan.quorum_starvation = None; committee_loss = Some 2 }
    ~expect_final:"halted" ~expect_exits:true;

  Printf.printf
    "\nIn every scenario the AMM state catches up (safety) and every processed\n\
     transaction is eventually paid out (liveness) — Theorem 1, mechanically.\n\
     The chaos scenes recover probabilistic faults the scripts never staged:\n\
     withheld DKG shares (degraded-quorum signing), evicted and reorged Syncs\n\
     (backoff retries, checkpoint restore), and lossy committee networks —\n\
     and the replay oracle re-derives the final TokenBank state from the\n\
     surviving history to prove nothing was lost. When liveness cannot be\n\
     repaired, the watchdog halts the bank and the emergency exit pays every\n\
     party pro rata from the last confirmed summary — conservation intact.\n";
  if !failures > 0 then begin
    Printf.printf "\n%d assertion(s) FAILED\n" !failures;
    exit 1
  end
