(** Deterministic fan-out over OCaml 5 domains.

    A fixed pool of worker domains (sized from
    [Domain.recommended_domain_count]) executes batches submitted through
    {!map_list}. Results always come back in submission order and any
    exception raised by a task is re-raised in the caller — the one from
    the lowest task index when several fail, so failures are deterministic
    too. [map_list] calls nest freely: a task may itself call [map_list]
    (the waiting domain helps execute its own batch, so the pool never
    deadlocks). With [domains = 1] (or a single-element list) the map runs
    sequentially in the calling domain with no pool involvement at all. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]: what the hardware offers. *)

val default_domains : unit -> int
(** The job count used when [?domains] is omitted: the value given to
    {!set_default_domains} if any, else [AMMBOOST_BENCH_JOBS] if set to a
    positive integer, else {!recommended}. *)

val set_default_domains : int -> unit
(** Override the default job count (the bench harness's [-j N]). Raises
    [Invalid_argument] if [n < 1]. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ?domains f xs] applies [f] to every element of [xs], running
    up to [domains] applications concurrently (default
    {!default_domains}), and returns the results in the order of [xs].
    Tasks are independent: each runs to completion even if a sibling
    raises; afterwards the exception of the lowest-index failing task is
    re-raised with its backtrace. *)

val run_pair : ?domains:int -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [run_pair f g] evaluates two heterogeneous thunks, concurrently when
    [domains > 1]. *)

val shutdown : unit -> unit
(** Join the pool's worker domains. Called automatically [at_exit]; safe
    to call multiple times. After shutdown the pool restarts lazily on
    the next parallel {!map_list}. *)
