(* A fixed pool of worker domains plus ordered fan-out on top of it.

   Design notes:
   - The pool is a single global job queue guarded by a mutex/condition.
     Workers loop popping thunks; they never block on anything except the
     queue, so they are always available to make progress on some batch.
   - A batch hands out task indices through an atomic counter; whoever
     grabs an index (pool worker or the submitting domain itself) runs
     that task. The submitter "helps": it drains indices like a worker
     and only then waits for stragglers. Because waiting happens only
     after every index has been claimed by a running domain, nested
     [map_list] calls cannot deadlock — a worker whose task fans out a
     sub-batch simply helps execute that sub-batch.
   - Results land in a per-batch array slot per index, so output order is
     submission order no matter who ran what when. Exceptions are stored
     per batch, keeping the one with the lowest task index so a failing
     run fails the same way at every job count. *)

let () =
  (* Domains need the OCaml 5 multicore runtime. The check is redundant
     when compiling (Domain does not exist on 4.x) but turns a stale
     build against an old runtime into a clear startup error. *)
  match String.index_opt Sys.ocaml_version '.' with
  | Some i when int_of_string (String.sub Sys.ocaml_version 0 i) >= 5 -> ()
  | _ ->
    failwith
      "Parallel: the OCaml 5 multicore runtime (Domain support) is required; \
       rebuild with an OCaml >= 5 compiler"

let recommended () = Stdlib.max 1 (Domain.recommended_domain_count ())

(* 0 = no override; set_default_domains stores a positive job count. *)
let override = Atomic.make 0

let set_default_domains n =
  if n < 1 then invalid_arg "Parallel.set_default_domains: n < 1";
  Atomic.set override n

let env_jobs () =
  match Sys.getenv_opt "AMMBOOST_BENCH_JOBS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_domains () =
  let n = Atomic.get override in
  if n >= 1 then n
  else match env_jobs () with Some n -> n | None -> recommended ()

(* ------------------------------------------------------------------ *)
(* The worker pool                                                     *)
(* ------------------------------------------------------------------ *)

type pool = {
  m : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable stopping : bool;
}

(* The runtime supports at most ~128 live domains; stay clear of it. *)
let max_workers = 120

let pool_m = Mutex.create ()
let pool_ref : pool option ref = ref None

let worker_loop p =
  let rec loop () =
    Mutex.lock p.m;
    while Queue.is_empty p.jobs && not p.stopping do
      Condition.wait p.nonempty p.m
    done;
    if Queue.is_empty p.jobs then Mutex.unlock p.m (* stopping, drained *)
    else begin
      let job = Queue.pop p.jobs in
      Mutex.unlock p.m;
      job (); (* batch jobs store their own exceptions; never raises *)
      loop ()
    end
  in
  loop ()

(* Get (or lazily build) the pool, growing it to at least [want_workers]
   workers — sized from the hardware by default, larger only if a caller
   explicitly asks for more jobs than cores. *)
let get_pool ~want_workers =
  Mutex.lock pool_m;
  let p =
    match !pool_ref with
    | Some p -> p
    | None ->
      let p =
        { m = Mutex.create (); nonempty = Condition.create ();
          jobs = Queue.create (); workers = []; stopping = false }
      in
      pool_ref := Some p;
      p
  in
  let have = List.length p.workers in
  let target =
    Stdlib.min max_workers (Stdlib.max want_workers (recommended () - 1))
  in
  if target > have then
    for _ = 1 to target - have do
      p.workers <- Domain.spawn (fun () -> worker_loop p) :: p.workers
    done;
  Mutex.unlock pool_m;
  p

let submit p job =
  Mutex.lock p.m;
  Queue.push job p.jobs;
  Condition.signal p.nonempty;
  Mutex.unlock p.m

let shutdown () =
  Mutex.lock pool_m;
  let p = !pool_ref in
  pool_ref := None;
  Mutex.unlock pool_m;
  match p with
  | None -> ()
  | Some p ->
    Mutex.lock p.m;
    p.stopping <- true;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.m;
    List.iter Domain.join p.workers

let () = at_exit shutdown

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

type ('a, 'b) batch = {
  f : 'a -> 'b;
  tasks : 'a array;
  results : 'b option array;
  next : int Atomic.t;
  bm : Mutex.t;
  finished : Condition.t;
  mutable completed : int;
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
}

let run_one b i =
  (match b.f b.tasks.(i) with
  | v -> b.results.(i) <- Some v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Mutex.lock b.bm;
    (match b.failure with
    | Some (j, _, _) when j < i -> ()
    | Some _ | None -> b.failure <- Some (i, e, bt));
    Mutex.unlock b.bm);
  Mutex.lock b.bm;
  b.completed <- b.completed + 1;
  if b.completed = Array.length b.tasks then Condition.broadcast b.finished;
  Mutex.unlock b.bm

let rec drain b =
  let i = Atomic.fetch_and_add b.next 1 in
  if i < Array.length b.tasks then begin
    run_one b i;
    drain b
  end

let map_list ?domains f xs =
  let domains =
    match domains with
    | Some d -> if d < 1 then invalid_arg "Parallel.map_list: domains < 1" else d
    | None -> default_domains ()
  in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when domains = 1 -> List.map f xs
  | _ ->
    let tasks = Array.of_list xs in
    let n = Array.length tasks in
    let b =
      { f; tasks; results = Array.make n None; next = Atomic.make 0;
        bm = Mutex.create (); finished = Condition.create (); completed = 0;
        failure = None }
    in
    let helpers = Stdlib.min (domains - 1) (n - 1) in
    let p = get_pool ~want_workers:helpers in
    for _ = 1 to helpers do
      submit p (fun () -> drain b)
    done;
    drain b;
    Mutex.lock b.bm;
    while b.completed < n do
      Condition.wait b.finished b.bm
    done;
    let failure = b.failure in
    Mutex.unlock b.bm;
    (match failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) b.results)

let run_pair ?domains f g =
  match
    map_list ?domains
      (fun thunk -> thunk ())
      [ (fun () -> `A (f ())); (fun () -> `B (g ())) ]
  with
  | [ `A a; `B b ] -> (a, b)
  | _ -> assert false
