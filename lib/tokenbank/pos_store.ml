module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id
module Slab = Flatstore.Slab

module Reg = Flatstore.Registry.Make (struct
  type t = Position_id.t

  let equal = Position_id.equal
  let hash id = Hashtbl.hash (Position_id.to_bytes id)
end)

(* Row layout, 8 slots of 32 bytes. *)
let s_owner = 0 (* 20-byte address *)
let s_ticks = 1 (* int2: lower, upper *)
let s_live = 2 (* int: 1 = live, 0 = deleted/never written *)
let s_liquidity = 3
let s_amount0 = 4
let s_amount1 = 5
let s_fees0 = 6
let s_fees1 = 7
let n_slots = 8

type jentry =
  | Mutate of { row : int; prev : bytes }
  | Fresh of { row : int }  (* allocated since the mark: undo zeroes it *)

type t = {
  reg : Reg.t;
  slab : Slab.t;
  mutable live_count : int;
  mutable jdata : jentry array;
  mutable jlen : int;
  mutable jbase : int;  (* absolute index of jdata.(0) *)
  mutable jbytes : int;
}

let create () =
  { reg = Reg.create ();
    slab = Slab.create ~slots:n_slots ();
    live_count = 0;
    jdata = [||]; jlen = 0; jbase = 0; jbytes = 0 }

let length t = t.live_count
let row_bytes t = Slab.row_bytes t.slab
let journal_bytes t = t.jbytes

let jpush t e =
  if t.jlen = Array.length t.jdata then begin
    let grown = Array.make (Stdlib.max 16 (2 * t.jlen)) e in
    Array.blit t.jdata 0 grown 0 t.jlen;
    t.jdata <- grown
  end;
  t.jdata.(t.jlen) <- e;
  t.jlen <- t.jlen + 1;
  t.jbytes <-
    t.jbytes + (match e with Mutate { prev; _ } -> Bytes.length prev | Fresh _ -> 8)

let is_live t row = Slab.get_int t.slab ~row ~slot:s_live = 1

let entry_of_row t row : Sync_payload.position_entry =
  let lower_tick, upper_tick = Slab.get_int2 t.slab ~row ~slot:s_ticks in
  { pos_id = Reg.key t.reg row;
    owner = Address.of_bytes (Slab.get_bytes t.slab ~row ~slot:s_owner ~len:20);
    lower_tick; upper_tick;
    liquidity = Slab.get_u256 t.slab ~row ~slot:s_liquidity;
    amount0 = Slab.get_u256 t.slab ~row ~slot:s_amount0;
    amount1 = Slab.get_u256 t.slab ~row ~slot:s_amount1;
    fees0 = Slab.get_u256 t.slab ~row ~slot:s_fees0;
    fees1 = Slab.get_u256 t.slab ~row ~slot:s_fees1;
    deleted = false }

let find t id =
  match Reg.find t.reg id with
  | Some row when is_live t row -> Some (entry_of_row t row)
  | _ -> None

let write_row t row (p : Sync_payload.position_entry) =
  Slab.set_bytes t.slab ~row ~slot:s_owner (Address.to_bytes p.owner);
  Slab.set_int2 t.slab ~row ~slot:s_ticks p.lower_tick p.upper_tick;
  Slab.set_int t.slab ~row ~slot:s_live 1;
  Slab.set_u256 t.slab ~row ~slot:s_liquidity p.liquidity;
  Slab.set_u256 t.slab ~row ~slot:s_amount0 p.amount0;
  Slab.set_u256 t.slab ~row ~slot:s_amount1 p.amount1;
  Slab.set_u256 t.slab ~row ~slot:s_fees0 p.fees0;
  Slab.set_u256 t.slab ~row ~slot:s_fees1 p.fees1

let set t (p : Sync_payload.position_entry) =
  match Reg.find t.reg p.pos_id with
  | Some row ->
    jpush t (Mutate { row; prev = Slab.copy_row t.slab row });
    if not (is_live t row) then t.live_count <- t.live_count + 1;
    write_row t row p
  | None ->
    let row = Reg.intern t.reg p.pos_id in
    let row' = Slab.alloc t.slab in
    assert (row = row');
    jpush t (Fresh { row });
    t.live_count <- t.live_count + 1;
    write_row t row p

let remove t id =
  match Reg.find t.reg id with
  | Some row when is_live t row ->
    jpush t (Mutate { row; prev = Slab.copy_row t.slab row });
    Slab.set_int t.slab ~row ~slot:s_live 0;
    t.live_count <- t.live_count - 1
  | _ -> ()

let iter t f =
  for row = 0 to Slab.rows t.slab - 1 do
    if is_live t row then f (entry_of_row t row)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun p -> acc := f !acc p);
  !acc

let mark t = t.jbase + t.jlen

let undo_to t mark =
  if mark > t.jbase + t.jlen then invalid_arg "Pos_store.undo_to: future mark";
  if mark < t.jbase then invalid_arg "Pos_store.undo_to: released mark";
  while t.jbase + t.jlen > mark do
    t.jlen <- t.jlen - 1;
    (match t.jdata.(t.jlen) with
    | Mutate { row; prev } ->
      let was_live = is_live t row in
      Slab.blit_row t.slab row prev;
      let now_live = is_live t row in
      if was_live && not now_live then t.live_count <- t.live_count - 1
      else if (not was_live) && now_live then t.live_count <- t.live_count + 1
    | Fresh { row } ->
      if is_live t row then t.live_count <- t.live_count - 1;
      Slab.blit_row t.slab row (Bytes.make (Slab.row_bytes t.slab) '\000'))
  done

let release_below t mark =
  let mark = Stdlib.min mark (t.jbase + t.jlen) in
  if mark > t.jbase then begin
    let drop = mark - t.jbase in
    let keep = t.jlen - drop in
    Array.blit t.jdata drop t.jdata 0 keep;
    t.jlen <- keep;
    t.jbase <- mark
  end

(* ------------------------------------------------------------------ *)
(* Audit surface                                                       *)
(* ------------------------------------------------------------------ *)

let row_image t id =
  match Reg.find t.reg id with
  | Some row when row < Slab.rows t.slab -> Some (Slab.copy_row t.slab row)
  | _ -> None

let dirty_ids t = List.map (Reg.key t.reg) (Slab.dirty_rows t.slab)
let clear_dirty t = Slab.clear_dirty t.slab

let corrupt_bit t ~index ~bit =
  let rows = Slab.rows t.slab in
  if rows = 0 then None
  else begin
    let row = ((index mod rows) + rows) mod rows in
    Slab.corrupt_bit t.slab ~row ~bit;
    Some (Reg.key t.reg row)
  end

let to_bytes t =
  let rb = Slab.row_bytes t.slab in
  let out = Buffer.create (4 + (t.live_count * (32 + rb))) in
  Buffer.add_int32_be out (Int32.of_int t.live_count);
  for row = 0 to Slab.rows t.slab - 1 do
    if is_live t row then begin
      Buffer.add_bytes out (Position_id.to_bytes (Reg.key t.reg row));
      Buffer.add_bytes out (Slab.copy_row t.slab row)
    end
  done;
  Buffer.to_bytes out

type error = Flatstore.Slab.error =
  | Truncated of { need : int; got : int }
  | Bad_header of string
  | Length_mismatch of { expected : int; got : int }

let error_to_string = Flatstore.Slab.error_to_string

let decode_entries t b n rb =
  for i = 0 to n - 1 do
    let off = 4 + (i * (32 + rb)) in
    let id = Position_id.of_hash (Bytes.sub b off 32) in
    let row = Reg.intern t.reg id in
    let row' = Slab.alloc t.slab in
    assert (row = row');
    Slab.blit_row t.slab row (Bytes.sub b (off + 32) rb);
    if is_live t row then t.live_count <- t.live_count + 1
  done;
  (* A decoded store starts with a clean history. *)
  t.jdata <- [||];
  t.jlen <- 0;
  t.jbase <- 0;
  t.jbytes <- 0;
  t

(* Like [Slab.of_bytes], the decoder is total: snapshot bytes read back
   from disk are untrusted, so every malformed shape maps to a typed
   error instead of letting [Bytes] primitives raise. *)
let of_bytes b =
  let len = Bytes.length b in
  if len < 4 then Error (Truncated { need = 4; got = len })
  else begin
    let n = Int32.to_int (Bytes.get_int32_be b 0) in
    let t = create () in
    let rb = Slab.row_bytes t.slab in
    if n < 0 then
      Error (Bad_header (Printf.sprintf "entry count = %d, must be non-negative" n))
    else begin
      let expected = 4 + (n * (32 + rb)) in
      if len <> expected then Error (Length_mismatch { expected; got = len })
      else Ok (decode_entries t b n rb)
    end
  end

let of_bytes_exn b =
  match of_bytes b with
  | Ok t -> t
  | Error e -> invalid_arg ("Pos_store.of_bytes: " ^ error_to_string e)
