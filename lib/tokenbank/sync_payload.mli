(** The contents of a sync-transaction — the epoch summary the sidechain
    committee submits to TokenBank (§4.2 "Syncing TokenBank"): the
    per-user payin/payout list, the updated liquidity position list, the
    updated pool balances, and the next committee's verification key.

    As in the paper's summary rules, each participating user contributes
    a single tuple (public key, total payin, total payout) per epoch. *)

module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id

type user_entry = {
  user : Address.t;
  payin0 : U256.t;   (** to deduct from the user's mainchain deposit *)
  payin1 : U256.t;
  payout0 : U256.t;  (** tokens the user receives at sync *)
  payout1 : U256.t;
}

type position_entry = {
  pos_id : Position_id.t;
  owner : Address.t;
  lower_tick : int;
  upper_tick : int;
  liquidity : U256.t;     (** absolute liquidity after the epoch *)
  amount0 : U256.t;       (** token amounts the position represents *)
  amount1 : U256.t;
  fees0 : U256.t;         (** remaining fee balance *)
  fees1 : U256.t;
  deleted : bool;         (** fully withdrawn during the epoch *)
}

type t = {
  epoch : int;
  pool : int;
  pool_balance0 : U256.t;  (** updated reserves after the epoch *)
  pool_balance1 : U256.t;
  users : user_entry list;
  positions : position_entry list;
  next_committee_vk : Amm_crypto.Bls.public_key;
      (** vk of committee e+1, recorded for authenticating the next Sync *)
}

val signing_bytes : t -> bytes
(** Canonical bytes the committee threshold-signs. *)

val abi_encode : t -> bytes
(** Mainchain ABI encoding of the Sync calldata: 352 B per user entry,
    416 B per position entry, 128 B vk (plus the fixed head); a 64 B
    signature travels alongside (Table 7). *)

val abi_size : t -> int
(** [Bytes.length (abi_encode t)] plus the 64-byte signature. *)

val abi_user_entry_size : int
(** 352. *)

val abi_position_entry_size : int
(** 416. *)

val storage_words : t -> int
(** 32-byte words TokenBank persists when applying this summary (6 words
    per position as in Table 6, 2 for pool balances, 4 for the vk). *)

(** {1 Binary codec}

    Exact, compact encoding for the durability layer (WAL records and
    the snapshotted unconfirmed-summary window) — unlike {!abi_encode},
    which models EVM calldata. [of_bytes (to_bytes t)] reproduces [t]
    and re-encodes byte-identically; the decoder is total over arbitrary
    buffers. *)

val to_bytes : t -> bytes

val of_bytes : bytes -> (t, string) result
(** Never raises; malformed or truncated buffers come back as [Error]
    with a description of the first offending field. *)
