module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id
module Encoding = Chain.Encoding

type user_entry = {
  user : Address.t;
  payin0 : U256.t;
  payin1 : U256.t;
  payout0 : U256.t;
  payout1 : U256.t;
}

type position_entry = {
  pos_id : Position_id.t;
  owner : Address.t;
  lower_tick : int;
  upper_tick : int;
  liquidity : U256.t;
  amount0 : U256.t;
  amount1 : U256.t;
  fees0 : U256.t;
  fees1 : U256.t;
  deleted : bool;
}

type t = {
  epoch : int;
  pool : int;
  pool_balance0 : U256.t;
  pool_balance1 : U256.t;
  users : user_entry list;
  positions : position_entry list;
  next_committee_vk : Amm_crypto.Bls.public_key;
}

let tick_word tick =
  if tick >= 0 then Encoding.int_word tick
  else Encoding.word (U256.sub U256.zero (U256.of_int (-tick)))

(* A user entry is 11 ABI words = 352 B: the user key padded to two words
   (as the paper submits full public keys), four amounts, a residual-refund
   marker, and per-entry dynamic-array bookkeeping. *)
let abi_user_entry_size = 352

let abi_user_entry e =
  Bytes.concat Bytes.empty
    [ Encoding.address_word e.user; Bytes.make 32 '\000' (* key high words *)
    ; Encoding.word e.payin0; Encoding.word e.payin1
    ; Encoding.word e.payout0; Encoding.word e.payout1
    ; Bytes.make (5 * 32) '\000' (* refund marker, offsets, reserved *) ]

(* A position entry is 13 ABI words = 416 B. *)
let abi_position_entry_size = 416

let abi_position_entry p =
  Bytes.concat Bytes.empty
    [ Encoding.bytes32_word (Position_id.to_bytes p.pos_id)
    ; Encoding.address_word p.owner; Bytes.make 32 '\000'
    ; tick_word p.lower_tick; tick_word p.upper_tick
    ; Encoding.word p.liquidity
    ; Encoding.word p.amount0; Encoding.word p.amount1
    ; Encoding.word p.fees0; Encoding.word p.fees1
    ; Encoding.int_word (if p.deleted then 1 else 0)
    ; Bytes.make (2 * 32) '\000' (* dynamic-array bookkeeping *) ]

let abi_encode t =
  let head =
    [ Bytes.make Encoding.selector_size '\xab'
    ; Encoding.int_word t.epoch; Encoding.int_word t.pool
    ; Encoding.word t.pool_balance0; Encoding.word t.pool_balance1
    ; Bytes.make (4 * 32) '\000' (* array offsets and lengths *)
    ; Amm_crypto.Bls.public_key_to_bytes t.next_committee_vk ]
  in
  Bytes.concat Bytes.empty
    (head @ List.map abi_user_entry t.users @ List.map abi_position_entry t.positions)

let abi_size t = Bytes.length (abi_encode t) + Amm_crypto.Bls.signature_size

let signing_bytes t = Amm_crypto.Sha256.digest (abi_encode t)

let storage_words t =
  (* Positions persist as 6 words each (192 B, Table 6); deleted entries
     free their slots instead. Pool balances: 2 words. Next vk: 4 words. *)
  let live = List.length (List.filter (fun p -> not p.deleted) t.positions) in
  (6 * live) + 2 + 4

(* ------------------------------------------------------------------ *)
(* Binary codec (durable WAL / snapshot window records)                *)
(* ------------------------------------------------------------------ *)

(* Unlike [abi_encode] (which models calldata and pads like the EVM),
   this is a compact, exact encoding: decode . encode = id, byte for
   byte, which is what the durability layer's checksummed records and
   the resume-time byte comparison rely on. *)

let add_i64 buf v = Buffer.add_int64_be buf (Int64.of_int v)
let add_u256 buf v = Buffer.add_bytes buf (U256.to_bytes_be v)

let add_user buf e =
  Buffer.add_bytes buf (Address.to_bytes e.user);
  add_u256 buf e.payin0;
  add_u256 buf e.payin1;
  add_u256 buf e.payout0;
  add_u256 buf e.payout1

let add_position buf p =
  Buffer.add_bytes buf (Position_id.to_bytes p.pos_id);
  Buffer.add_bytes buf (Address.to_bytes p.owner);
  add_i64 buf p.lower_tick;
  add_i64 buf p.upper_tick;
  add_u256 buf p.liquidity;
  add_u256 buf p.amount0;
  add_u256 buf p.amount1;
  add_u256 buf p.fees0;
  add_u256 buf p.fees1;
  Buffer.add_char buf (if p.deleted then '\001' else '\000')

let to_bytes t =
  let buf = Buffer.create 512 in
  add_i64 buf t.epoch;
  add_i64 buf t.pool;
  add_u256 buf t.pool_balance0;
  add_u256 buf t.pool_balance1;
  Buffer.add_bytes buf (Amm_crypto.Bls.public_key_to_bytes t.next_committee_vk);
  add_i64 buf (List.length t.users);
  List.iter (add_user buf) t.users;
  add_i64 buf (List.length t.positions);
  List.iter (add_position buf) t.positions;
  Buffer.to_bytes buf

exception Malformed of string

let of_bytes b =
  let len = Bytes.length b in
  let pos = ref 0 in
  let need n what =
    if !pos + n > len then
      raise (Malformed (Printf.sprintf "truncated at %s: need %d bytes at offset %d of %d"
                          what n !pos len))
  in
  let i64 what =
    need 8 what;
    let v = Int64.to_int (Bytes.get_int64_be b !pos) in
    pos := !pos + 8;
    v
  in
  let raw n what =
    need n what;
    let v = Bytes.sub b !pos n in
    pos := !pos + n;
    v
  in
  let u256 what = U256.of_bytes_be (raw 32 what) in
  let count what =
    let n = i64 what in
    if n < 0 || n > (len / 8) + 1 then
      raise (Malformed (Printf.sprintf "implausible %s count %d" what n));
    n
  in
  let user () =
    let user = Address.of_bytes (raw 20 "user") in
    let payin0 = u256 "payin0" in
    let payin1 = u256 "payin1" in
    let payout0 = u256 "payout0" in
    let payout1 = u256 "payout1" in
    { user; payin0; payin1; payout0; payout1 }
  in
  let position () =
    let pos_id = Position_id.of_hash (raw 32 "pos_id") in
    let owner = Address.of_bytes (raw 20 "owner") in
    let lower_tick = i64 "lower_tick" in
    let upper_tick = i64 "upper_tick" in
    let liquidity = u256 "liquidity" in
    let amount0 = u256 "amount0" in
    let amount1 = u256 "amount1" in
    let fees0 = u256 "fees0" in
    let fees1 = u256 "fees1" in
    let deleted =
      match Bytes.get (raw 1 "deleted") 0 with
      | '\000' -> false
      | '\001' -> true
      | c -> raise (Malformed (Printf.sprintf "bad deleted flag %d" (Char.code c)))
    in
    { pos_id; owner; lower_tick; upper_tick; liquidity; amount0; amount1;
      fees0; fees1; deleted }
  in
  match
    let epoch = i64 "epoch" in
    let pool = i64 "pool" in
    let pool_balance0 = u256 "pool_balance0" in
    let pool_balance1 = u256 "pool_balance1" in
    let next_committee_vk =
      Amm_crypto.Bls.public_key_of_bytes
        (raw Amm_crypto.Bls.public_key_size "next_committee_vk")
    in
    (* Explicit recursion: the cursor demands left-to-right evaluation,
       which [List.init] does not guarantee. *)
    let read_list n f =
      let rec go acc i = if i = n then List.rev acc else go (f () :: acc) (i + 1) in
      go [] 0
    in
    let users = read_list (count "users") user in
    let positions = read_list (count "positions") position in
    if !pos <> len then
      raise (Malformed (Printf.sprintf "trailing garbage: %d bytes" (len - !pos)));
    { epoch; pool; pool_balance0; pool_balance1; users; positions;
      next_committee_vk }
  with
  | t -> Ok t
  | exception Malformed msg -> Error msg
  | exception Invalid_argument msg -> Error msg
