(** TokenBank — the minimal base smart contract ammBoost leaves on the
    mainchain (Fig. 4): it custodies the actual tokens, tracks pool
    balances, user deposits and synced liquidity positions, processes
    epoch-based deposits, applies authenticated Sync summaries (dispensing
    payouts, deducting payins, refunding residual deposits), and serves
    flash loans in real time. *)

module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id

type t

type pool_info = {
  pool_id : int;
  token0 : Chain.Token.t;
  token1 : Chain.Token.t;
  balance0 : U256.t;
  balance1 : U256.t;
  flash_fee_pips : int;
}

val deploy :
  token0:Mainchain.Erc20.t ->
  token1:Mainchain.Erc20.t ->
  genesis_committee_vk:Amm_crypto.Bls.public_key ->
  t
(** Deploys the contract over the two ERC20s and records the first
    epoch committee's verification key. *)

val address : t -> Address.t
val create_pool : t -> flash_fee_pips:int -> int
(** Initializes a pool for the token pair; returns its id. *)

val pool : t -> int -> pool_info option
val committee_vk : t -> Amm_crypto.Bls.public_key
val last_synced_epoch : t -> int
(** -1 before the first sync. *)

val is_halted : t -> bool
val halt_epoch : t -> int option
(** The epoch recorded when the bank was (last) halted; [None] if the
    bank has never been halted. *)

(** {1 Rejections}

    Typed failure classes for the authenticated entry points, so the
    watchdog and the tests can react to a rejection without matching on
    message strings. *)

type rejection =
  | Empty_submission
  | Bank_halted              (** sync/deposit refused while halted *)
  | Not_halted               (** exit/reconcile outside a halt *)
  | Already_exited of Address.t
  | Bad_signature of { epoch : int }
  | Stale_epoch of { expected : int; got : int }
      (** first payload is older than the synced frontier *)
  | Contiguity_gap of { expected : int; got : int }
      (** payload chain skips an epoch *)
  | Conservation_violation of { epoch : int }
      (** new balance ≠ old + payins − payouts *)

val rejection_class : rejection -> string
(** Short stable tag (e.g. ["stale_epoch"]) for metrics labels. *)

val rejection_to_string : rejection -> string

(** {1 Deposits} *)

val deposit :
  ?meter:Mainchain.Gas.meter ->
  t -> user:Address.t -> for_epoch:int -> amount0:U256.t -> amount1:U256.t ->
  (unit, string) result
(** Epoch-based deposit backing the user's sidechain activity during
    [for_epoch]; pulls the tokens from the user's ERC20 balances
    (requires prior approvals, reflected in the metered gas and the
    4-transaction flow latency). Deposits are scoped to their epoch, so
    funding epoch e+1 during epoch e never collides with e's sync. *)

val deposit_of : t -> epoch:int -> Address.t -> U256.t * U256.t
val deposits_for_epoch : t -> epoch:int -> (Address.t * (U256.t * U256.t)) list

(** {1 Sync} *)

type sync_receipt = {
  gas : Mainchain.Gas.meter;
  calldata_bytes : int;
  payouts_dispensed : int;
  positions_written : int;
  positions_deleted : int;
  epochs_covered : int list;
}

val sync :
  ?check_signatures:bool ->
  t ->
  signed:(Sync_payload.t * Amm_crypto.Bls.signature) list ->
  (sync_receipt, rejection) result
(** Applies one or more epoch summaries, each carrying its own epoch
    committee's threshold signature (a list longer than one is a
    mass-sync after an interruption — recorded keys advance payload by
    payload, so epoch e's signature verifies under the vk recorded by
    epoch e−1's payload). [?check_signatures] (default [true]) controls
    the pairing check and its payload hashing — the state twin's replica
    passes [false]: it only ever replays payloads the live contract
    already accepted, so re-deriving state does not need to re-pay the
    dominant crypto cost, and the epoch-contiguity and conservation
    checks still run. Checks epoch contiguity and token conservation
    (new pool balance = old + payins − payouts), then updates positions,
    dispenses payouts, deducts payins (any excess over the deposit comes
    out of the payout, §4.2), refunds residual deposits, and records each
    next committee's key. Nothing is applied when any step fails. *)

val sync_exn :
  t ->
  signed:(Sync_payload.t * Amm_crypto.Bls.signature) list ->
  sync_receipt
(** Thin raising wrapper over {!sync} for callers that treat any
    rejection as fatal; raises [Failure] with the rendered rejection. *)

val positions : t -> Sync_payload.position_entry list
val find_position : t -> Position_id.t -> Sync_payload.position_entry option

val storage_words : t -> int
(** Live contract storage in 32-byte words across positions, pools, the
    committee vk, pending epoch deposits and exit claims — the on-chain
    state footprint the growth ledger samples each epoch. *)

(** {1 Emergency exit (halt / exit / reconcile)}

    The liveness escape hatch: when the sidechain committee is lost (or
    stalls past the watchdog's patience), the bank is halted and every
    party can withdraw directly on the mainchain against the last
    confirmed summary — no committee signature required. *)

val halt : t -> epoch:int -> (unit, rejection) result
(** Freezes the bank at the last confirmed summary: no further deposits,
    syncs or flashes are accepted, pool reserves and the aggregate
    position value are snapshotted as the pro-rata base for exit claims.
    [epoch] is the mainchain's view of the stalled sidechain epoch (for
    the record; claims derive from [last_synced_epoch]'s state). *)

type exit_claim = {
  claimant : Address.t;
  claim0 : U256.t;   (** pro-rata share of the frozen pool reserves *)
  claim1 : U256.t;
  refund0 : U256.t;  (** residual epoch deposits returned in full *)
  refund1 : U256.t;
  positions_closed : int;
  exit_gas : Mainchain.Gas.meter;
}

val emergency_exit : t -> claimant:Address.t -> (exit_claim, rejection) result
(** One-shot withdrawal while halted: closes the claimant's synced
    positions, pays [frozen_reserves × value(claimant) / value(all)]
    per token (floored, so total claims never exceed the reserves) plus
    every residual deposit, and marks the claimant exited. *)

val has_exited : t -> Address.t -> bool
val exit_of : t -> Address.t -> exit_claim option
val exits : t -> exit_claim list
(** Claims served so far, oldest first. *)

val exits_served : t -> int

type reconciliation = {
  rec_epochs : int list;
  rec_users_applied : int;
  rec_users_voided : int;       (** summary entries superseded by exits *)
  rec_positions_voided : int;
  rec_voided0 : U256.t;         (** payout value netted against exits *)
  rec_voided1 : U256.t;
  rec_paid0 : U256.t;           (** residual payouts actually dispensed *)
  rec_paid1 : U256.t;
  rec_gas : Mainchain.Gas.meter;
}

val reconcile :
  t ->
  signed:(Sync_payload.t * Amm_crypto.Bls.signature) list ->
  (reconciliation, rejection) result
(** Committee-recovery path out of a halt: verifies the pending summary
    chain against the balances frozen at the halt (signatures, epoch
    contiguity, conservation), then applies it with exit netting — any
    entry belonging to a party that already exited is void (their value
    left on-chain at exit), everyone else's flows apply normally, capped
    by the post-exit reserves. Lifts the halt and re-chains the committee
    key. *)

val exit_conservation_ok : t -> bool
(** After a halt: custody frozen at the halt = live custody + everything
    dispensed since (exit claims, refunds, reconciled payouts). Trivially
    true if the bank was never halted. *)

(** {1 Flash loans (mainchain-resident, §4.2 "Flashes")} *)

val flash :
  ?meter:Mainchain.Gas.meter ->
  t ->
  pool:int ->
  borrower:Address.t ->
  amount0:U256.t ->
  amount1:U256.t ->
  callback:(fee0:U256.t -> fee1:U256.t -> (unit, string) result) ->
  (U256.t * U256.t, string) result
(** Lends pool reserves to the borrower within a single block; the
    callback must leave the borrower holding principal + fee for
    repayment or the whole loan inverts. Returns the fees earned. *)

(** {1 Snapshot (the sidechain's SnapshotBank call)} *)

type snapshot = {
  snap_epoch : int;
  snap_deposits : (Address.t * (U256.t * U256.t)) list;
  snap_pool_balances : (int * (U256.t * U256.t)) list;
  snap_positions : Sync_payload.position_entry list;
}

val snapshot : t -> epoch:int -> snapshot
(** The sidechain committee's epoch-start view: the deposits scoped to
    the starting epoch, pool balances and positions. *)

type checkpoint

val checkpoint : t -> checkpoint
(** O(dirty) state capture (contract fields plus both ERC20s), used to
    model mainchain rollbacks abandoning executed Sync calls. The cost is
    a handful of pointer copies plus journal marks on the flat position
    store — nothing proportional to the number of open positions. *)

val restore : t -> checkpoint -> unit
(** Rewinds to the checkpoint by undoing the journal entries recorded
    since it was taken — O(mutations since the checkpoint). *)

val release_checkpoint : t -> checkpoint -> unit
(** Declares that no checkpoint older than this one will ever be
    restored, letting the undo journal drop the history below its mark.
    The checkpoint itself (and any newer one) stays restorable. *)

val checkpoint_journal_bytes : t -> int
(** Cumulative bytes copied into the position-store undo journal —
    monotone; the delta across an operation bounds its checkpoint cost
    (asserted by the O(dirty) test). *)

val positions_bytes : t -> bytes
(** Compact binary snapshot of the live position table (flat rows, live
    entries only); decode with {!Pos_store.of_bytes}. *)

val positions_store : t -> Pos_store.t

val total_custody : t -> U256.t * U256.t
(** ERC20 balances held by the contract — must equal deposits + pool
    balances (conservation invariant, checked in tests). *)
