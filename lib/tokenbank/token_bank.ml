module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id
module Gas = Mainchain.Gas
module Erc20 = Mainchain.Erc20
module Bls = Amm_crypto.Bls
module Log = Telemetry.Log

let scope = "token_bank"

type pool_info = {
  pool_id : int;
  token0 : Chain.Token.t;
  token1 : Chain.Token.t;
  balance0 : U256.t;
  balance1 : U256.t;
  flash_fee_pips : int;
}

module Epoch_map = Map.Make (Int)

type exit_claim = {
  claimant : Address.t;
  claim0 : U256.t;
  claim1 : U256.t;
  refund0 : U256.t;
  refund1 : U256.t;
  positions_closed : int;
  exit_gas : Gas.meter;
}

(* Journal record for the (tiny) exit-claim table: the claim previously
   bound to the address, [None] when it was absent. *)
type exit_jentry = Address.t * exit_claim option

type t = {
  bank_address : Address.t;
  erc0 : Erc20.t;
  erc1 : Erc20.t;
  mutable pools : pool_info array;  (* indexed by pool_id *)
  mutable next_pool_id : int;
  mutable user_deposits : (U256.t * U256.t) Address.Map.t Epoch_map.t;
  positions_store : Pos_store.t;
  mutable vk : Bls.public_key;
  mutable synced_epoch : int;
  (* Emergency-exit state. While [halted] no Sync or deposit is accepted;
     parties withdraw pro-rata against the reserves frozen at the halt. *)
  mutable halted : bool;
  mutable ever_halted : bool;
  mutable halt_epoch : int;
  mutable frozen_pools : pool_info list;
  mutable frozen_value0 : U256.t;  (* Σ position (amount + fees), token0 *)
  mutable frozen_value1 : U256.t;
  mutable custody_at_halt : U256.t * U256.t;
  mutable paid_out0 : U256.t;      (* custody dispensed since the halt *)
  mutable paid_out1 : U256.t;
  exit_table : (Address.t, exit_claim) Hashtbl.t;
  mutable exit_order : Address.t list;  (* newest first *)
  mutable exit_journal : exit_jentry list;
  mutable exit_journal_len : int;
}

let deploy ~token0 ~token1 ~genesis_committee_vk =
  { bank_address = Address.of_label "TokenBank";
    erc0 = token0; erc1 = token1;
    pools = [||]; next_pool_id = 0;
    user_deposits = Epoch_map.empty;
    positions_store = Pos_store.create ();
    vk = genesis_committee_vk;
    synced_epoch = -1;
    halted = false; ever_halted = false; halt_epoch = -1;
    frozen_pools = []; frozen_value0 = U256.zero; frozen_value1 = U256.zero;
    custody_at_halt = (U256.zero, U256.zero);
    paid_out0 = U256.zero; paid_out1 = U256.zero;
    exit_table = Hashtbl.create 16; exit_order = [];
    exit_journal = []; exit_journal_len = 0 }

let address t = t.bank_address

let create_pool t ~flash_fee_pips =
  let pool_id = t.next_pool_id in
  t.next_pool_id <- pool_id + 1;
  let info =
    { pool_id; token0 = Erc20.token t.erc0; token1 = Erc20.token t.erc1;
      balance0 = U256.zero; balance1 = U256.zero; flash_fee_pips }
  in
  let pools = Array.make (pool_id + 1) info in
  Array.blit t.pools 0 pools 0 pool_id;
  t.pools <- pools;
  pool_id

let pool t id =
  if id >= 0 && id < t.next_pool_id then Some t.pools.(id) else None

let set_pool_balances t id balance0 balance1 =
  if id >= 0 && id < t.next_pool_id then
    t.pools.(id) <- { (t.pools.(id)) with balance0; balance1 }

(* Newest-created first — the order the old cons-list exposed, which the
   emergency-exit drain and snapshots depend on. *)
let pools_newest_first t =
  let acc = ref [] in
  for id = 0 to t.next_pool_id - 1 do
    acc := t.pools.(id) :: !acc
  done;
  !acc

let committee_vk t = t.vk
let last_synced_epoch t = t.synced_epoch
let is_halted t = t.halted
let halt_epoch t = if t.ever_halted then Some t.halt_epoch else None

(* ------------------------------------------------------------------ *)
(* Rejections                                                          *)
(* ------------------------------------------------------------------ *)

type rejection =
  | Empty_submission
  | Bank_halted
  | Not_halted
  | Already_exited of Address.t
  | Bad_signature of { epoch : int }
  | Stale_epoch of { expected : int; got : int }
  | Contiguity_gap of { expected : int; got : int }
  | Conservation_violation of { epoch : int }

let rejection_class = function
  | Empty_submission -> "empty_submission"
  | Bank_halted -> "bank_halted"
  | Not_halted -> "not_halted"
  | Already_exited _ -> "already_exited"
  | Bad_signature _ -> "bad_signature"
  | Stale_epoch _ -> "stale_epoch"
  | Contiguity_gap _ -> "contiguity_gap"
  | Conservation_violation _ -> "conservation_violation"

let rejection_to_string = function
  | Empty_submission -> "TokenBank.sync: empty payload list"
  | Bank_halted -> "TokenBank: bank is halted (emergency-exit mode)"
  | Not_halted -> "TokenBank: bank is not halted"
  | Already_exited a ->
    Printf.sprintf "TokenBank.emergency_exit: %s already exited" (Address.to_hex a)
  | Bad_signature { epoch } ->
    Printf.sprintf "TokenBank.sync: bad committee signature for epoch %d" epoch
  | Stale_epoch { expected; got } ->
    Printf.sprintf "TokenBank.sync: stale epoch %d (expected %d)" got expected
  | Contiguity_gap { expected; got } ->
    Printf.sprintf "TokenBank.sync: contiguity gap, expected epoch %d, got %d"
      expected got
  | Conservation_violation { epoch } ->
    Printf.sprintf "TokenBank.sync: token conservation violated in epoch %d" epoch

(* ------------------------------------------------------------------ *)
(* Deposits                                                            *)
(* ------------------------------------------------------------------ *)

let epoch_deposits t epoch =
  Option.value ~default:Address.Map.empty (Epoch_map.find_opt epoch t.user_deposits)

let deposit_of t ~epoch user =
  Option.value ~default:(U256.zero, U256.zero)
    (Address.Map.find_opt user (epoch_deposits t epoch))

let deposits_for_epoch t ~epoch = Address.Map.bindings (epoch_deposits t epoch)

let charge meter label amount =
  match meter with Some m -> Gas.charge m label amount | None -> ()

let ( let* ) = Result.bind

let deposit ?meter t ~user ~for_epoch ~amount0 ~amount1 =
  if t.halted then Error (rejection_to_string Bank_halted)
  else begin
  charge meter "base" Gas.tx_base;
  charge meter "calldata" (Gas.calldata_cost_of_size (Chain.Encoding.selector_size + 64));
  let* () =
    if U256.is_zero amount0 then Ok ()
    else Erc20.transfer_from ?meter t.erc0 ~spender:t.bank_address ~source:user
        ~dest:t.bank_address amount0
  in
  let* () =
    if U256.is_zero amount1 then Ok ()
    else Erc20.transfer_from ?meter t.erc1 ~spender:t.bank_address ~source:user
        ~dest:t.bank_address amount1
  in
  let d0, d1 = deposit_of t ~epoch:for_epoch user in
  t.user_deposits <-
    Epoch_map.add for_epoch
      (Address.Map.add user (U256.add d0 amount0, U256.add d1 amount1)
         (epoch_deposits t for_epoch))
      t.user_deposits;
  charge meter "deposit.bookkeeping" (Gas.sload + (2 * Gas.sstore_update));
  (* Deposits are the hottest bank entry point (one per user per epoch at
     the big sweep cells): don't pay for hex/decimal rendering unless the
     debug level is actually on. *)
  if Log.enabled Log.Debug then
    Log.debug ~scope
      ~fields:
        [ ("user", Telemetry.Json.String (Address.to_hex user));
          ("for_epoch", Telemetry.Json.Int for_epoch);
          ("amount0", Telemetry.Json.String (U256.to_string amount0));
          ("amount1", Telemetry.Json.String (U256.to_string amount1)) ]
      "deposit recorded";
  Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Sync                                                                *)
(* ------------------------------------------------------------------ *)

type sync_receipt = {
  gas : Gas.meter;
  calldata_bytes : int;
  payouts_dispensed : int;
  positions_written : int;
  positions_deleted : int;
  epochs_covered : int list;
}

let conservation_ok ~balance0 ~balance1 payload =
  let sum f =
    List.fold_left (fun acc u -> U256.add acc (f u)) U256.zero payload.Sync_payload.users
  in
  let in0 = sum (fun u -> u.Sync_payload.payin0)
  and in1 = sum (fun u -> u.Sync_payload.payin1)
  and out0 = sum (fun u -> u.Sync_payload.payout0)
  and out1 = sum (fun u -> u.Sync_payload.payout1) in
  (* new = old + payins − payouts, per token; fails if payouts exceed
     what the pool plus payins can cover. *)
  let check old payin payout updated =
    let credited = U256.add old payin in
    U256.ge credited payout && U256.equal (U256.sub credited payout) updated
  in
  check balance0 in0 out0 payload.Sync_payload.pool_balance0
  && check balance1 in1 out1 payload.Sync_payload.pool_balance1

let apply_payload t (m : Gas.meter) payload =
  let open Sync_payload in
  (* Positions: write updates, delete withdrawn. *)
  let written = ref 0 and deleted = ref 0 in
  List.iter
    (fun p ->
      if p.deleted then begin
        Pos_store.remove t.positions_store p.pos_id;
        incr deleted
      end
      else begin
        Pos_store.set t.positions_store p;
        incr written
      end)
    payload.positions;
  Gas.charge m "storage" (storage_words payload * Gas.sstore_word);
  set_pool_balances t payload.pool payload.pool_balance0 payload.pool_balance1;
  (* Users: deduct payins, dispense payouts, refund residual deposits. *)
  let payouts_dispensed = ref 0 in
  (* Payout plus residual refund leave the bank in one transfer per
     token. *)
  let send ~dest erc amount ~token0 =
    if not (U256.is_zero amount) then begin
      match Erc20.transfer erc ~source:t.bank_address ~dest amount with
      | Ok () ->
        incr payouts_dispensed;
        (* After a halt-and-reconcile cycle, every dispensed token still
           counts against the custody frozen at the halt. *)
        if t.ever_halted then
          if token0 then t.paid_out0 <- U256.add t.paid_out0 amount
          else t.paid_out1 <- U256.add t.paid_out1 amount
      | Error e -> failwith ("TokenBank.sync: custody underflow: " ^ e)
    end
  in
  List.iter
    (fun u ->
      let d0, d1 = deposit_of t ~epoch:payload.epoch u.user in
      (* Payin beyond the deposit is taken out of the payout (§4.2). *)
      let short0 = if U256.ge d0 u.payin0 then U256.zero else U256.sub u.payin0 d0 in
      let short1 = if U256.ge d1 u.payin1 then U256.zero else U256.sub u.payin1 d1 in
      let residual0 = if U256.ge d0 u.payin0 then U256.sub d0 u.payin0 else U256.zero in
      let residual1 = if U256.ge d1 u.payin1 then U256.sub d1 u.payin1 else U256.zero in
      let pay0 = U256.sub (U256.max u.payout0 short0) short0 in
      let pay1 = U256.sub (U256.max u.payout1 short1) short1 in
      send ~dest:u.user t.erc0 (U256.add pay0 residual0) ~token0:true;
      send ~dest:u.user t.erc1 (U256.add pay1 residual1) ~token0:false;
      t.user_deposits <-
        Epoch_map.add payload.epoch
          (Address.Map.remove u.user (epoch_deposits t payload.epoch))
          t.user_deposits)
    payload.users;
  (* A delta payload lists only users with nonzero flows; every other
     deposit pending for this epoch is untouched in full. Refund the
     leftovers in aggregate and retire the epoch's map wholesale, so
     pending-deposit storage stays O(active), not O(population). *)
  Address.Map.iter
    (fun user (d0, d1) ->
      send ~dest:user t.erc0 d0 ~token0:true;
      send ~dest:user t.erc1 d1 ~token0:false)
    (epoch_deposits t payload.epoch);
  t.user_deposits <- Epoch_map.remove payload.epoch t.user_deposits;
  Gas.charge m "payouts" (!payouts_dispensed * Gas.payout_transfer);
  t.vk <- payload.next_committee_vk;
  t.synced_epoch <- payload.epoch;
  (!written, !deleted, !payouts_dispensed)

(* Dry-run verification pass — nothing is applied unless every payload
   checks out. The committee key chain advances payload by payload: epoch
   e's signature verifies under the vk recorded by e−1. Shared between
   [sync] and [reconcile] (which verifies against the frozen balances). *)
let rec verify_all ?(check_signatures = true) m ~vk ~expected_epoch ~balance0
    ~balance1 = function
  | [] -> Ok ()
  | (p, signature) :: rest ->
    (* The epoch-ordering check comes first: it is a couple of sloads,
       so the contract rejects stale or gapped chains before paying for
       the pairing. *)
    if p.Sync_payload.epoch <> expected_epoch then begin
      if p.Sync_payload.epoch < expected_epoch then
        Error (Stale_epoch { expected = expected_epoch; got = p.Sync_payload.epoch })
      else
        Error (Contiguity_gap { expected = expected_epoch; got = p.Sync_payload.epoch })
    end
    else begin
      if check_signatures then begin
        Gas.charge m "auth.hash_to_point"
          (Gas.keccak_cost (Sync_payload.abi_size p) + Gas.ec_mul);
        Gas.charge m "auth.pairing" Gas.pairing_check
      end;
      if check_signatures
         && not (Bls.verify vk (Sync_payload.signing_bytes p) signature)
      then Error (Bad_signature { epoch = p.Sync_payload.epoch })
      else if not (conservation_ok ~balance0 ~balance1 p) then
        Error (Conservation_violation { epoch = p.Sync_payload.epoch })
      else
        verify_all ~check_signatures m ~vk:p.Sync_payload.next_committee_vk
          ~expected_epoch:(expected_epoch + 1)
          ~balance0:p.Sync_payload.pool_balance0
          ~balance1:p.Sync_payload.pool_balance1 rest
    end

let log_rejected t ~payloads rejection =
  Log.warn ~scope
    ~fields:
      [ ("reason", Telemetry.Json.String (rejection_to_string rejection));
        ("class", Telemetry.Json.String (rejection_class rejection));
        ("payloads", Telemetry.Json.Int (List.length payloads));
        ("synced_epoch", Telemetry.Json.Int t.synced_epoch) ]
    "sync rejected: state unchanged";
  Error rejection

let sync ?(check_signatures = true) t ~signed =
  match signed with
  | [] -> Error Empty_submission
  | _ when t.halted -> log_rejected t ~payloads:(List.map fst signed) Bank_halted
  | _ ->
    let payloads = List.map fst signed in
    let m = Gas.meter () in
    Gas.charge m "base" Gas.tx_base;
    let calldata_bytes =
      List.fold_left (fun acc p -> acc + Sync_payload.abi_size p) 0 payloads
    in
    Gas.charge m "calldata" (Gas.calldata_cost_of_size calldata_bytes);
    let balance0, balance1 =
      match payloads with
      | p :: _ ->
        (match pool t p.Sync_payload.pool with
        | Some info -> (info.balance0, info.balance1)
        | None -> (U256.zero, U256.zero))
      | [] -> (U256.zero, U256.zero)
    in
    let* () =
      match
        verify_all ~check_signatures m ~vk:t.vk ~expected_epoch:(t.synced_epoch + 1)
          ~balance0 ~balance1 signed
      with
      | Ok () -> Ok ()
      | Error rejection -> log_rejected t ~payloads rejection
    in
    let written = ref 0 and deleted = ref 0 and paid = ref 0 in
    List.iter
      (fun p ->
        let w, d, pd = apply_payload t m p in
        written := !written + w;
        deleted := !deleted + d;
        paid := !paid + pd)
      payloads;
    let epochs_covered = List.map (fun p -> p.Sync_payload.epoch) payloads in
    Log.info ~scope
      ~fields:
        [ ("epochs",
           Telemetry.Json.String (String.concat "," (List.map string_of_int epochs_covered)));
          ("payouts", Telemetry.Json.Int !paid);
          ("positions_written", Telemetry.Json.Int !written);
          ("positions_deleted", Telemetry.Json.Int !deleted);
          ("calldata_bytes", Telemetry.Json.Int calldata_bytes);
          ("gas", Telemetry.Json.Int (Gas.total m)) ]
      "sync applied: committee key rotated";
    Ok
      { gas = m; calldata_bytes; payouts_dispensed = !paid;
        positions_written = !written; positions_deleted = !deleted;
        epochs_covered }

let sync_exn t ~signed =
  match sync t ~signed with
  | Ok receipt -> receipt
  | Error rejection -> failwith (rejection_to_string rejection)

let positions t = Pos_store.fold t.positions_store ~init:[] ~f:(fun acc p -> p :: acc)
let find_position t pid = Pos_store.find t.positions_store pid

(* Live contract storage footprint in 32-byte words: the quantity the
   paper's state-growth argument is about. 6 words per open position
   (owner, bounds, liquidity, amounts, fees packed as in
   [Sync_payload.storage_words]), 2 per pool (reserves), 4 for the
   committee vk, 3 per pending epoch-deposit entry (key + two amounts)
   and 6 per exit claim. *)
let storage_words t =
  let deposit_entries =
    Epoch_map.fold (fun _ m acc -> acc + Address.Map.cardinal m) t.user_deposits 0
  in
  (6 * Pos_store.length t.positions_store)
  + (2 * t.next_pool_id)
  + 4
  + (3 * deposit_entries)
  + (6 * Hashtbl.length t.exit_table)

(* ------------------------------------------------------------------ *)
(* Flash loans                                                         *)
(* ------------------------------------------------------------------ *)

let flash ?meter t ~pool:pool_id ~borrower ~amount0 ~amount1 ~callback =
  if t.halted then Error (rejection_to_string Bank_halted)
  else
  match pool t pool_id with
  | None -> Error "TokenBank.flash: unknown pool"
  | Some p ->
    if U256.gt amount0 p.balance0 || U256.gt amount1 p.balance1 then
      Error "TokenBank.flash: exceeds pool reserves"
    else begin
      charge meter "base" Gas.tx_base;
      let fee_of a =
        U256.mul_div_rounding_up a (U256.of_int p.flash_fee_pips)
          (U256.of_int Amm_math.Swap_math.fee_denominator)
      in
      let fee0 = fee_of amount0 and fee1 = fee_of amount1 in
      (* The entire flash executes inside one transaction: on any failure
         every token movement — including whatever the callback did —
         reverts, exactly as the EVM unwinds state. *)
      let ck0 = Erc20.checkpoint t.erc0 and ck1 = Erc20.checkpoint t.erc1 in
      let revert () =
        Erc20.restore t.erc0 ck0;
        Erc20.restore t.erc1 ck1
      in
      let lend erc amount =
        if U256.is_zero amount then Ok ()
        else Erc20.transfer ?meter erc ~source:t.bank_address ~dest:borrower amount
      in
      let repay () =
        let pull erc amount =
          if U256.is_zero amount then Ok ()
          else Erc20.transfer ?meter erc ~source:borrower ~dest:t.bank_address amount
        in
        let* () = pull t.erc0 (U256.add amount0 fee0) in
        pull t.erc1 (U256.add amount1 fee1)
      in
      let outcome =
        let* () = lend t.erc0 amount0 in
        let* () = lend t.erc1 amount1 in
        let* () = callback ~fee0 ~fee1 in
        repay ()
      in
      match outcome with
      | Error e ->
        revert ();
        Error ("TokenBank.flash: reverted: " ^ e)
      | Ok () ->
        (* Fees accrue to the pool reserves. *)
        set_pool_balances t pool_id (U256.add p.balance0 fee0) (U256.add p.balance1 fee1);
        Ok (fee0, fee1)
    end

(* ------------------------------------------------------------------ *)
(* Emergency exit: halt / exit / reconcile                             *)
(* ------------------------------------------------------------------ *)

let total_custody t =
  (Erc20.balance_of t.erc0 t.bank_address, Erc20.balance_of t.erc1 t.bank_address)

(* Aggregate value the last confirmed summary attributes to open
   positions: principal plus uncollected fees, per token. The pro-rata
   denominator for exit claims. *)
let position_value t =
  Pos_store.fold t.positions_store ~init:(U256.zero, U256.zero)
    ~f:(fun (v0, v1) (p : Sync_payload.position_entry) ->
      ( U256.add v0 (U256.add p.Sync_payload.amount0 p.Sync_payload.fees0),
        U256.add v1 (U256.add p.Sync_payload.amount1 p.Sync_payload.fees1) ))

let halt t ~epoch =
  if t.halted then Error Bank_halted
  else begin
    let v0, v1 = position_value t in
    t.halted <- true;
    t.ever_halted <- true;
    t.halt_epoch <- epoch;
    t.frozen_pools <- pools_newest_first t;
    t.frozen_value0 <- v0;
    t.frozen_value1 <- v1;
    t.custody_at_halt <- total_custody t;
    t.paid_out0 <- U256.zero;
    t.paid_out1 <- U256.zero;
    Log.error ~scope
      ~fields:
        [ ("epoch", Telemetry.Json.Int epoch);
          ("position_value0", Telemetry.Json.String (U256.to_string v0));
          ("position_value1", Telemetry.Json.String (U256.to_string v1)) ]
      "bank halted: emergency-exit mode engaged";
    Ok ()
  end

let track_paid t ~token0 amount =
  if token0 then t.paid_out0 <- U256.add t.paid_out0 amount
  else t.paid_out1 <- U256.add t.paid_out1 amount

(* One outgoing transfer per token; an error here means the conservation
   invariant is already broken, which the dry-run verification rules out. *)
let pay_out t m ~dest ~label amount ~token0 =
  if not (U256.is_zero amount) then begin
    let erc = if token0 then t.erc0 else t.erc1 in
    match Erc20.transfer erc ~source:t.bank_address ~dest amount with
    | Ok () ->
      Gas.charge m label Gas.payout_transfer;
      track_paid t ~token0 amount
    | Error e -> failwith ("TokenBank: custody underflow: " ^ e)
  end

let emergency_exit t ~claimant =
  if not t.halted then Error Not_halted
  else if Hashtbl.mem t.exit_table claimant then Error (Already_exited claimant)
  else begin
    let m = Gas.meter () in
    Gas.charge m "base" Gas.tx_base;
    Gas.charge m "calldata"
      (Gas.calldata_cost_of_size (Chain.Encoding.selector_size + 32));
    (* The claimant's open positions, in id order, valued exactly as the
       last confirmed summary recorded them. *)
    let mine =
      Pos_store.fold t.positions_store ~init:[]
        ~f:(fun acc (p : Sync_payload.position_entry) ->
          if Address.equal p.Sync_payload.owner claimant then
            (p.Sync_payload.pos_id, p) :: acc
          else acc)
      |> List.sort (fun (a, _) (b, _) -> Position_id.compare a b)
    in
    Gas.charge m "exit.positions" (List.length mine * 8 * Gas.sload);
    let mine0, mine1 =
      List.fold_left
        (fun (v0, v1) (_, (p : Sync_payload.position_entry)) ->
          ( U256.add v0 (U256.add p.Sync_payload.amount0 p.Sync_payload.fees0),
            U256.add v1 (U256.add p.Sync_payload.amount1 p.Sync_payload.fees1) ))
        (U256.zero, U256.zero) mine
    in
    (* Pro-rata claim against the reserves frozen at the halt, floored so
       the sum over all claimants can never exceed those reserves. *)
    let frozen0, frozen1 =
      List.fold_left
        (fun (b0, b1) p -> (U256.add b0 p.balance0, U256.add b1 p.balance1))
        (U256.zero, U256.zero) t.frozen_pools
    in
    let share frozen mine total =
      if U256.is_zero total then U256.zero else U256.mul_div frozen mine total
    in
    let claim0 = share frozen0 mine0 t.frozen_value0 in
    let claim1 = share frozen1 mine1 t.frozen_value1 in
    (* Residual epoch deposits — never consumed by a sync — come back in
       full, regardless of which epoch they were scoped to. *)
    let refund0 = ref U256.zero and refund1 = ref U256.zero in
    t.user_deposits <-
      Epoch_map.map
        (fun map ->
          match Address.Map.find_opt claimant map with
          | None -> map
          | Some (d0, d1) ->
            refund0 := U256.add !refund0 d0;
            refund1 := U256.add !refund1 d1;
            Address.Map.remove claimant map)
        t.user_deposits;
    (* Drain the claim from the live pool balances, pool by pool,
       newest-created first (the historical list order). *)
    let rem0 = ref claim0 and rem1 = ref claim1 in
    for id = t.next_pool_id - 1 downto 0 do
      let p = t.pools.(id) in
      let take rem bal =
        let x = U256.min !rem bal in
        rem := U256.sub !rem x;
        U256.sub bal x
      in
      t.pools.(id) <-
        { p with balance0 = take rem0 p.balance0; balance1 = take rem1 p.balance1 }
    done;
    List.iter (fun (pid, _) -> Pos_store.remove t.positions_store pid) mine;
    Gas.charge m "exit.bookkeeping"
      ((List.length mine * Gas.sstore_update) + Gas.sstore_word);
    pay_out t m ~dest:claimant ~label:"exit.payout" (U256.add claim0 !refund0)
      ~token0:true;
    pay_out t m ~dest:claimant ~label:"exit.payout" (U256.add claim1 !refund1)
      ~token0:false;
    let claim =
      { claimant; claim0; claim1; refund0 = !refund0; refund1 = !refund1;
        positions_closed = List.length mine; exit_gas = m }
    in
    t.exit_journal <- (claimant, Hashtbl.find_opt t.exit_table claimant) :: t.exit_journal;
    t.exit_journal_len <- t.exit_journal_len + 1;
    Hashtbl.replace t.exit_table claimant claim;
    t.exit_order <- claimant :: t.exit_order;
    Log.warn ~scope
      ~fields:
        [ ("claimant", Telemetry.Json.String (Address.to_hex claimant));
          ("claim0", Telemetry.Json.String (U256.to_string claim0));
          ("claim1", Telemetry.Json.String (U256.to_string claim1));
          ("refund0", Telemetry.Json.String (U256.to_string !refund0));
          ("refund1", Telemetry.Json.String (U256.to_string !refund1));
          ("positions_closed", Telemetry.Json.Int claim.positions_closed);
          ("gas", Telemetry.Json.Int (Gas.total m)) ]
      "emergency exit served";
    Ok claim
  end

let has_exited t user = Hashtbl.mem t.exit_table user
let exit_of t user = Hashtbl.find_opt t.exit_table user
let exits t = List.rev_map (fun a -> Hashtbl.find t.exit_table a) t.exit_order
let exits_served t = Hashtbl.length t.exit_table

type reconciliation = {
  rec_epochs : int list;
  rec_users_applied : int;
  rec_users_voided : int;
  rec_positions_voided : int;
  rec_voided0 : U256.t;
  rec_voided1 : U256.t;
  rec_paid0 : U256.t;
  rec_paid1 : U256.t;
  rec_gas : Gas.meter;
}

let reconcile t ~signed =
  match signed with
  | [] -> Error Empty_submission
  | _ when not t.halted -> Error Not_halted
  | _ ->
    let payloads = List.map fst signed in
    let m = Gas.meter () in
    Gas.charge m "base" Gas.tx_base;
    let calldata_bytes =
      List.fold_left (fun acc p -> acc + Sync_payload.abi_size p) 0 payloads
    in
    Gas.charge m "calldata" (Gas.calldata_cost_of_size calldata_bytes);
    (* The recovered committee's summaries were built against the pre-halt
       state, so the chain verifies against the balances frozen at the
       halt — not the live ones the exits have since drained. *)
    let frozen_of pool_id =
      match List.find_opt (fun p -> p.pool_id = pool_id) t.frozen_pools with
      | Some info -> (info.balance0, info.balance1)
      | None -> (U256.zero, U256.zero)
    in
    let balance0, balance1 =
      match payloads with
      | p :: _ -> frozen_of p.Sync_payload.pool
      | [] -> (U256.zero, U256.zero)
    in
    let* () =
      match
        verify_all m ~vk:t.vk ~expected_epoch:(t.synced_epoch + 1) ~balance0
          ~balance1 signed
      with
      | Ok () -> Ok ()
      | Error rejection -> log_rejected t ~payloads rejection
    in
    let users_applied = ref 0 and users_voided = ref 0 in
    let positions_voided = ref 0 in
    let voided0 = ref U256.zero and voided1 = ref U256.zero in
    let paid0 = ref U256.zero and paid1 = ref U256.zero in
    (* Live per-pool balances, mutated as flows are applied. *)
    let live = Hashtbl.create 4 in
    Array.iter (fun p -> Hashtbl.replace live p.pool_id (p.balance0, p.balance1)) t.pools;
    List.iter
      (fun (p : Sync_payload.t) ->
        let open Sync_payload in
        List.iter
          (fun pe ->
            if Hashtbl.mem t.exit_table pe.owner then begin
              (* The owner already withdrew this position's value on-chain:
                 the summary's view of it is void. *)
              Pos_store.remove t.positions_store pe.pos_id;
              incr positions_voided
            end
            else if pe.deleted then Pos_store.remove t.positions_store pe.pos_id
            else Pos_store.set t.positions_store pe)
          p.positions;
        Gas.charge m "storage" (storage_words p * Gas.sstore_word);
        let b0, b1 =
          Option.value ~default:(U256.zero, U256.zero) (Hashtbl.find_opt live p.pool)
        in
        let b0 = ref b0 and b1 = ref b1 in
        List.iter
          (fun u ->
            if Hashtbl.mem t.exit_table u.user then begin
              incr users_voided;
              voided0 := U256.add !voided0 u.payout0;
              voided1 := U256.add !voided1 u.payout1
            end
            else begin
              incr users_applied;
              let d0, d1 = deposit_of t ~epoch:p.epoch u.user in
              let short0 =
                if U256.ge d0 u.payin0 then U256.zero else U256.sub u.payin0 d0
              in
              let short1 =
                if U256.ge d1 u.payin1 then U256.zero else U256.sub u.payin1 d1
              in
              let residual0 =
                if U256.ge d0 u.payin0 then U256.sub d0 u.payin0 else U256.zero
              in
              let residual1 =
                if U256.ge d1 u.payin1 then U256.sub d1 u.payin1 else U256.zero
              in
              (* Credit the payin first, then cap the payout at what the
                 live (post-exit) reserves can actually cover. *)
              b0 := U256.add !b0 u.payin0;
              b1 := U256.add !b1 u.payin1;
              let want0 = U256.sub (U256.max u.payout0 short0) short0 in
              let want1 = U256.sub (U256.max u.payout1 short1) short1 in
              let pay0 = U256.min want0 !b0 and pay1 = U256.min want1 !b1 in
              if U256.lt pay0 want0 || U256.lt pay1 want1 then
                Log.warn ~scope
                  ~fields:
                    [ ("user", Telemetry.Json.String (Address.to_hex u.user));
                      ("epoch", Telemetry.Json.Int p.epoch) ]
                  "reconcile: payout capped by post-exit reserves";
              b0 := U256.sub !b0 pay0;
              b1 := U256.sub !b1 pay1;
              paid0 := U256.add !paid0 (U256.add pay0 residual0);
              paid1 := U256.add !paid1 (U256.add pay1 residual1);
              pay_out t m ~dest:u.user ~label:"reconcile.payout"
                (U256.add pay0 residual0) ~token0:true;
              pay_out t m ~dest:u.user ~label:"reconcile.payout"
                (U256.add pay1 residual1) ~token0:false;
              t.user_deposits <-
                Epoch_map.add p.epoch
                  (Address.Map.remove u.user (epoch_deposits t p.epoch))
                  t.user_deposits
            end)
          p.users;
        (* Deposits the delta payload leaves unlisted are pure residuals
           (exited claimants were already drained by their exit): refund
           them in aggregate and retire the epoch's map, mirroring
           [apply_payload]. *)
        Address.Map.iter
          (fun user (d0, d1) ->
            paid0 := U256.add !paid0 d0;
            paid1 := U256.add !paid1 d1;
            pay_out t m ~dest:user ~label:"reconcile.payout" d0 ~token0:true;
            pay_out t m ~dest:user ~label:"reconcile.payout" d1 ~token0:false)
          (epoch_deposits t p.epoch);
        t.user_deposits <- Epoch_map.remove p.epoch t.user_deposits;
        Hashtbl.replace live p.pool (!b0, !b1);
        t.vk <- p.next_committee_vk;
        t.synced_epoch <- p.epoch)
      payloads;
    Hashtbl.iter (fun pool_id (b0, b1) -> set_pool_balances t pool_id b0 b1) live;
    t.halted <- false;
    let rec_epochs = List.map (fun p -> p.Sync_payload.epoch) payloads in
    let r =
      { rec_epochs; rec_users_applied = !users_applied;
        rec_users_voided = !users_voided; rec_positions_voided = !positions_voided;
        rec_voided0 = !voided0; rec_voided1 = !voided1;
        rec_paid0 = !paid0; rec_paid1 = !paid1; rec_gas = m }
    in
    Log.info ~scope
      ~fields:
        [ ("epochs",
           Telemetry.Json.String
             (String.concat "," (List.map string_of_int rec_epochs)));
          ("users_applied", Telemetry.Json.Int r.rec_users_applied);
          ("users_voided", Telemetry.Json.Int r.rec_users_voided);
          ("positions_voided", Telemetry.Json.Int r.rec_positions_voided);
          ("voided0", Telemetry.Json.String (U256.to_string r.rec_voided0));
          ("voided1", Telemetry.Json.String (U256.to_string r.rec_voided1));
          ("gas", Telemetry.Json.Int (Gas.total m)) ]
      "bank reconciled: halt lifted, committee key re-chained";
    Ok r

let exit_conservation_ok t =
  if not t.ever_halted then true
  else begin
    let c0h, c1h = t.custody_at_halt in
    let c0, c1 = total_custody t in
    U256.equal c0h (U256.add c0 t.paid_out0)
    && U256.equal c1h (U256.add c1 t.paid_out1)
  end

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_epoch : int;
  snap_deposits : (Address.t * (U256.t * U256.t)) list;
  snap_pool_balances : (int * (U256.t * U256.t)) list;
  snap_positions : Sync_payload.position_entry list;
}

let snapshot t ~epoch =
  { snap_epoch = epoch;
    snap_deposits = deposits_for_epoch t ~epoch;
    snap_pool_balances =
      List.map (fun p -> (p.pool_id, (p.balance0, p.balance1))) (pools_newest_first t);
    snap_positions = positions t }

(* A checkpoint is O(dirty): the only copied state is the (tiny) pool
   array; everything else is either a persistent-map pointer (ERC-20
   balances, epoch deposits, exit order) or a journal mark. [restore]
   rewinds the position-store and exit-claim journals to those marks, so
   its cost is proportional to the mutations made since the checkpoint,
   not to the total number of positions. *)
type checkpoint = {
  ck_pools : pool_info array;
  ck_next_pool_id : int;
  ck_deposits : (U256.t * U256.t) Address.Map.t Epoch_map.t;
  ck_pos_mark : int;
  ck_exit_mark : int;
  ck_vk : Bls.public_key;
  ck_synced_epoch : int;
  ck_erc0 : Erc20.checkpoint;
  ck_erc1 : Erc20.checkpoint;
  ck_halted : bool;
  ck_ever_halted : bool;
  ck_halt_epoch : int;
  ck_frozen_pools : pool_info list;
  ck_frozen_value : U256.t * U256.t;
  ck_custody_at_halt : U256.t * U256.t;
  ck_paid_out : U256.t * U256.t;
  ck_exit_order : Address.t list;
}

let checkpoint t =
  { ck_pools = Array.copy t.pools; ck_next_pool_id = t.next_pool_id;
    ck_deposits = t.user_deposits;
    ck_pos_mark = Pos_store.mark t.positions_store;
    ck_exit_mark = t.exit_journal_len;
    ck_vk = t.vk; ck_synced_epoch = t.synced_epoch;
    ck_erc0 = Erc20.checkpoint t.erc0; ck_erc1 = Erc20.checkpoint t.erc1;
    ck_halted = t.halted; ck_ever_halted = t.ever_halted;
    ck_halt_epoch = t.halt_epoch; ck_frozen_pools = t.frozen_pools;
    ck_frozen_value = (t.frozen_value0, t.frozen_value1);
    ck_custody_at_halt = t.custody_at_halt;
    ck_paid_out = (t.paid_out0, t.paid_out1);
    ck_exit_order = t.exit_order }

let restore t ck =
  Log.warn ~scope
    ~fields:
      [ ("from_epoch", Telemetry.Json.Int t.synced_epoch);
        ("to_epoch", Telemetry.Json.Int ck.ck_synced_epoch) ]
    "state restored to pre-sync checkpoint";
  t.pools <- Array.copy ck.ck_pools;
  t.next_pool_id <- ck.ck_next_pool_id;
  t.user_deposits <- ck.ck_deposits;
  Pos_store.undo_to t.positions_store ck.ck_pos_mark;
  t.vk <- ck.ck_vk;
  t.synced_epoch <- ck.ck_synced_epoch;
  Erc20.restore t.erc0 ck.ck_erc0;
  Erc20.restore t.erc1 ck.ck_erc1;
  t.halted <- ck.ck_halted;
  t.ever_halted <- ck.ck_ever_halted;
  t.halt_epoch <- ck.ck_halt_epoch;
  t.frozen_pools <- ck.ck_frozen_pools;
  (let v0, v1 = ck.ck_frozen_value in
   t.frozen_value0 <- v0;
   t.frozen_value1 <- v1);
  t.custody_at_halt <- ck.ck_custody_at_halt;
  (let p0, p1 = ck.ck_paid_out in
   t.paid_out0 <- p0;
   t.paid_out1 <- p1);
  (* Rewind the exit-claim journal to the checkpoint's mark. *)
  if ck.ck_exit_mark > t.exit_journal_len then
    invalid_arg "Token_bank.restore: future exit-journal mark";
  while t.exit_journal_len > ck.ck_exit_mark do
    (match t.exit_journal with
    | (claimant, prev) :: rest ->
      (match prev with
      | None -> Hashtbl.remove t.exit_table claimant
      | Some c -> Hashtbl.replace t.exit_table claimant c);
      t.exit_journal <- rest
    | [] -> invalid_arg "Token_bank.restore: exit journal underflow");
    t.exit_journal_len <- t.exit_journal_len - 1
  done;
  t.exit_order <- ck.ck_exit_order

let release_checkpoint t ck =
  Pos_store.release_below t.positions_store ck.ck_pos_mark

let checkpoint_journal_bytes t = Pos_store.journal_bytes t.positions_store

let positions_bytes t = Pos_store.to_bytes t.positions_store
let positions_store t = t.positions_store
