module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id
module Gas = Mainchain.Gas
module Erc20 = Mainchain.Erc20
module Bls = Amm_crypto.Bls
module Log = Telemetry.Log

let scope = "token_bank"

type pool_info = {
  pool_id : int;
  token0 : Chain.Token.t;
  token1 : Chain.Token.t;
  balance0 : U256.t;
  balance1 : U256.t;
  flash_fee_pips : int;
}

module Epoch_map = Map.Make (Int)

type t = {
  bank_address : Address.t;
  erc0 : Erc20.t;
  erc1 : Erc20.t;
  mutable pools : pool_info list;
  mutable next_pool_id : int;
  mutable user_deposits : (U256.t * U256.t) Address.Map.t Epoch_map.t;
  position_table : (Position_id.t, Sync_payload.position_entry) Hashtbl.t;
  mutable vk : Bls.public_key;
  mutable synced_epoch : int;
}

let deploy ~token0 ~token1 ~genesis_committee_vk =
  { bank_address = Address.of_label "TokenBank";
    erc0 = token0; erc1 = token1;
    pools = []; next_pool_id = 0;
    user_deposits = Epoch_map.empty;
    position_table = Hashtbl.create 64;
    vk = genesis_committee_vk;
    synced_epoch = -1 }

let address t = t.bank_address

let create_pool t ~flash_fee_pips =
  let pool_id = t.next_pool_id in
  t.next_pool_id <- pool_id + 1;
  t.pools <-
    { pool_id; token0 = Erc20.token t.erc0; token1 = Erc20.token t.erc1;
      balance0 = U256.zero; balance1 = U256.zero; flash_fee_pips }
    :: t.pools;
  pool_id

let pool t id = List.find_opt (fun p -> p.pool_id = id) t.pools

let set_pool_balances t id balance0 balance1 =
  t.pools <-
    List.map (fun p -> if p.pool_id = id then { p with balance0; balance1 } else p) t.pools

let committee_vk t = t.vk
let last_synced_epoch t = t.synced_epoch

(* ------------------------------------------------------------------ *)
(* Deposits                                                            *)
(* ------------------------------------------------------------------ *)

let epoch_deposits t epoch =
  Option.value ~default:Address.Map.empty (Epoch_map.find_opt epoch t.user_deposits)

let deposit_of t ~epoch user =
  Option.value ~default:(U256.zero, U256.zero)
    (Address.Map.find_opt user (epoch_deposits t epoch))

let deposits_for_epoch t ~epoch = Address.Map.bindings (epoch_deposits t epoch)

let charge meter label amount =
  match meter with Some m -> Gas.charge m label amount | None -> ()

let ( let* ) = Result.bind

let deposit ?meter t ~user ~for_epoch ~amount0 ~amount1 =
  charge meter "base" Gas.tx_base;
  charge meter "calldata" (Gas.calldata_cost_of_size (Chain.Encoding.selector_size + 64));
  let* () =
    if U256.is_zero amount0 then Ok ()
    else Erc20.transfer_from ?meter t.erc0 ~spender:t.bank_address ~source:user
        ~dest:t.bank_address amount0
  in
  let* () =
    if U256.is_zero amount1 then Ok ()
    else Erc20.transfer_from ?meter t.erc1 ~spender:t.bank_address ~source:user
        ~dest:t.bank_address amount1
  in
  let d0, d1 = deposit_of t ~epoch:for_epoch user in
  t.user_deposits <-
    Epoch_map.add for_epoch
      (Address.Map.add user (U256.add d0 amount0, U256.add d1 amount1)
         (epoch_deposits t for_epoch))
      t.user_deposits;
  charge meter "deposit.bookkeeping" (Gas.sload + (2 * Gas.sstore_update));
  Log.debug ~scope
    ~fields:
      [ ("user", Telemetry.Json.String (Address.to_hex user));
        ("for_epoch", Telemetry.Json.Int for_epoch);
        ("amount0", Telemetry.Json.String (U256.to_string amount0));
        ("amount1", Telemetry.Json.String (U256.to_string amount1)) ]
    "deposit recorded";
  Ok ()

(* ------------------------------------------------------------------ *)
(* Sync                                                                *)
(* ------------------------------------------------------------------ *)

type sync_receipt = {
  gas : Gas.meter;
  calldata_bytes : int;
  payouts_dispensed : int;
  positions_written : int;
  positions_deleted : int;
  epochs_covered : int list;
}

let conservation_ok ~balance0 ~balance1 payload =
  let sum f =
    List.fold_left (fun acc u -> U256.add acc (f u)) U256.zero payload.Sync_payload.users
  in
  let in0 = sum (fun u -> u.Sync_payload.payin0)
  and in1 = sum (fun u -> u.Sync_payload.payin1)
  and out0 = sum (fun u -> u.Sync_payload.payout0)
  and out1 = sum (fun u -> u.Sync_payload.payout1) in
  (* new = old + payins − payouts, per token; fails if payouts exceed
     what the pool plus payins can cover. *)
  let check old payin payout updated =
    let credited = U256.add old payin in
    U256.ge credited payout && U256.equal (U256.sub credited payout) updated
  in
  check balance0 in0 out0 payload.Sync_payload.pool_balance0
  && check balance1 in1 out1 payload.Sync_payload.pool_balance1

let apply_payload t (m : Gas.meter) payload =
  let open Sync_payload in
  (* Positions: write updates, delete withdrawn. *)
  let written = ref 0 and deleted = ref 0 in
  List.iter
    (fun p ->
      if p.deleted then begin
        Hashtbl.remove t.position_table p.pos_id;
        incr deleted
      end
      else begin
        Hashtbl.replace t.position_table p.pos_id p;
        incr written
      end)
    payload.positions;
  Gas.charge m "storage" (storage_words payload * Gas.sstore_word);
  set_pool_balances t payload.pool payload.pool_balance0 payload.pool_balance1;
  (* Users: deduct payins, dispense payouts, refund residual deposits. *)
  let payouts_dispensed = ref 0 in
  List.iter
    (fun u ->
      let d0, d1 = deposit_of t ~epoch:payload.epoch u.user in
      (* Payin beyond the deposit is taken out of the payout (§4.2). *)
      let short0 = if U256.ge d0 u.payin0 then U256.zero else U256.sub u.payin0 d0 in
      let short1 = if U256.ge d1 u.payin1 then U256.zero else U256.sub u.payin1 d1 in
      let residual0 = if U256.ge d0 u.payin0 then U256.sub d0 u.payin0 else U256.zero in
      let residual1 = if U256.ge d1 u.payin1 then U256.sub d1 u.payin1 else U256.zero in
      let pay0 = U256.sub (U256.max u.payout0 short0) short0 in
      let pay1 = U256.sub (U256.max u.payout1 short1) short1 in
      (* Payout plus residual refund leave the bank in one transfer per
         token. *)
      let send erc amount =
        if not (U256.is_zero amount) then begin
          match
            Erc20.transfer erc ~source:t.bank_address ~dest:u.user amount
          with
          | Ok () -> incr payouts_dispensed
          | Error e -> failwith ("TokenBank.sync: custody underflow: " ^ e)
        end
      in
      send t.erc0 (U256.add pay0 residual0);
      send t.erc1 (U256.add pay1 residual1);
      t.user_deposits <-
        Epoch_map.add payload.epoch
          (Address.Map.remove u.user (epoch_deposits t payload.epoch))
          t.user_deposits)
    payload.users;
  Gas.charge m "payouts" (!payouts_dispensed * Gas.payout_transfer);
  t.vk <- payload.next_committee_vk;
  t.synced_epoch <- payload.epoch;
  (!written, !deleted, !payouts_dispensed)

let sync t ~signed =
  match signed with
  | [] -> Error "TokenBank.sync: empty payload list"
  | _ ->
    let payloads = List.map fst signed in
    let m = Gas.meter () in
    Gas.charge m "base" Gas.tx_base;
    let calldata_bytes =
      List.fold_left (fun acc p -> acc + Sync_payload.abi_size p) 0 payloads
    in
    Gas.charge m "calldata" (Gas.calldata_cost_of_size calldata_bytes);
    (* Dry-run verification pass — nothing is applied unless every payload
       checks out. The committee key chain advances payload by payload:
       epoch e's signature verifies under the vk recorded by e−1. *)
    let rec verify_all ~vk ~expected_epoch ~balance0 ~balance1 = function
      | [] -> Ok ()
      | (p, signature) :: rest ->
        Gas.charge m "auth.hash_to_point"
          (Gas.keccak_cost (Sync_payload.abi_size p) + Gas.ec_mul);
        Gas.charge m "auth.pairing" Gas.pairing_check;
        if not (Bls.verify vk (Sync_payload.signing_bytes p) signature) then
          Error
            (Printf.sprintf "TokenBank.sync: bad committee signature for epoch %d"
               p.Sync_payload.epoch)
        else if p.Sync_payload.epoch <> expected_epoch then
          Error
            (Printf.sprintf "TokenBank.sync: expected epoch %d, got %d" expected_epoch
               p.Sync_payload.epoch)
        else if not (conservation_ok ~balance0 ~balance1 p) then
          Error
            (Printf.sprintf "TokenBank.sync: token conservation violated in epoch %d"
               p.Sync_payload.epoch)
        else
          verify_all ~vk:p.Sync_payload.next_committee_vk
            ~expected_epoch:(expected_epoch + 1)
            ~balance0:p.Sync_payload.pool_balance0
            ~balance1:p.Sync_payload.pool_balance1 rest
    in
    let balance0, balance1 =
      match payloads with
      | p :: _ ->
        (match pool t p.Sync_payload.pool with
        | Some info -> (info.balance0, info.balance1)
        | None -> (U256.zero, U256.zero))
      | [] -> (U256.zero, U256.zero)
    in
    let* () =
      match
        verify_all ~vk:t.vk ~expected_epoch:(t.synced_epoch + 1) ~balance0 ~balance1
          signed
      with
      | Ok () -> Ok ()
      | Error reason ->
        Log.warn ~scope
          ~fields:
            [ ("reason", Telemetry.Json.String reason);
              ("payloads", Telemetry.Json.Int (List.length payloads));
              ("synced_epoch", Telemetry.Json.Int t.synced_epoch) ]
          "sync rejected: state unchanged";
        Error reason
    in
    let written = ref 0 and deleted = ref 0 and paid = ref 0 in
    List.iter
      (fun p ->
        let w, d, pd = apply_payload t m p in
        written := !written + w;
        deleted := !deleted + d;
        paid := !paid + pd)
      payloads;
    let epochs_covered = List.map (fun p -> p.Sync_payload.epoch) payloads in
    Log.info ~scope
      ~fields:
        [ ("epochs",
           Telemetry.Json.String (String.concat "," (List.map string_of_int epochs_covered)));
          ("payouts", Telemetry.Json.Int !paid);
          ("positions_written", Telemetry.Json.Int !written);
          ("positions_deleted", Telemetry.Json.Int !deleted);
          ("calldata_bytes", Telemetry.Json.Int calldata_bytes);
          ("gas", Telemetry.Json.Int (Gas.total m)) ]
      "sync applied: committee key rotated";
    Ok
      { gas = m; calldata_bytes; payouts_dispensed = !paid;
        positions_written = !written; positions_deleted = !deleted;
        epochs_covered }

let positions t = Hashtbl.fold (fun _ p acc -> p :: acc) t.position_table []
let find_position t pid = Hashtbl.find_opt t.position_table pid

(* ------------------------------------------------------------------ *)
(* Flash loans                                                         *)
(* ------------------------------------------------------------------ *)

let flash ?meter t ~pool:pool_id ~borrower ~amount0 ~amount1 ~callback =
  match pool t pool_id with
  | None -> Error "TokenBank.flash: unknown pool"
  | Some p ->
    if U256.gt amount0 p.balance0 || U256.gt amount1 p.balance1 then
      Error "TokenBank.flash: exceeds pool reserves"
    else begin
      charge meter "base" Gas.tx_base;
      let fee_of a =
        U256.mul_div_rounding_up a (U256.of_int p.flash_fee_pips)
          (U256.of_int Amm_math.Swap_math.fee_denominator)
      in
      let fee0 = fee_of amount0 and fee1 = fee_of amount1 in
      (* The entire flash executes inside one transaction: on any failure
         every token movement — including whatever the callback did —
         reverts, exactly as the EVM unwinds state. *)
      let ck0 = Erc20.checkpoint t.erc0 and ck1 = Erc20.checkpoint t.erc1 in
      let revert () =
        Erc20.restore t.erc0 ck0;
        Erc20.restore t.erc1 ck1
      in
      let lend erc amount =
        if U256.is_zero amount then Ok ()
        else Erc20.transfer ?meter erc ~source:t.bank_address ~dest:borrower amount
      in
      let repay () =
        let pull erc amount =
          if U256.is_zero amount then Ok ()
          else Erc20.transfer ?meter erc ~source:borrower ~dest:t.bank_address amount
        in
        let* () = pull t.erc0 (U256.add amount0 fee0) in
        pull t.erc1 (U256.add amount1 fee1)
      in
      let outcome =
        let* () = lend t.erc0 amount0 in
        let* () = lend t.erc1 amount1 in
        let* () = callback ~fee0 ~fee1 in
        repay ()
      in
      match outcome with
      | Error e ->
        revert ();
        Error ("TokenBank.flash: reverted: " ^ e)
      | Ok () ->
        (* Fees accrue to the pool reserves. *)
        set_pool_balances t pool_id (U256.add p.balance0 fee0) (U256.add p.balance1 fee1);
        Ok (fee0, fee1)
    end

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_epoch : int;
  snap_deposits : (Address.t * (U256.t * U256.t)) list;
  snap_pool_balances : (int * (U256.t * U256.t)) list;
  snap_positions : Sync_payload.position_entry list;
}

let snapshot t ~epoch =
  { snap_epoch = epoch;
    snap_deposits = deposits_for_epoch t ~epoch;
    snap_pool_balances = List.map (fun p -> (p.pool_id, (p.balance0, p.balance1))) t.pools;
    snap_positions = positions t }

type checkpoint = {
  ck_pools : pool_info list;
  ck_next_pool_id : int;
  ck_deposits : (U256.t * U256.t) Address.Map.t Epoch_map.t;
  ck_positions : (Position_id.t * Sync_payload.position_entry) list;
  ck_vk : Bls.public_key;
  ck_synced_epoch : int;
  ck_erc0 : Erc20.checkpoint;
  ck_erc1 : Erc20.checkpoint;
}

let checkpoint t =
  { ck_pools = t.pools; ck_next_pool_id = t.next_pool_id; ck_deposits = t.user_deposits;
    ck_positions = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.position_table [];
    ck_vk = t.vk; ck_synced_epoch = t.synced_epoch;
    ck_erc0 = Erc20.checkpoint t.erc0; ck_erc1 = Erc20.checkpoint t.erc1 }

let restore t ck =
  Log.warn ~scope
    ~fields:
      [ ("from_epoch", Telemetry.Json.Int t.synced_epoch);
        ("to_epoch", Telemetry.Json.Int ck.ck_synced_epoch) ]
    "state restored to pre-sync checkpoint";
  t.pools <- ck.ck_pools;
  t.next_pool_id <- ck.ck_next_pool_id;
  t.user_deposits <- ck.ck_deposits;
  Hashtbl.reset t.position_table;
  List.iter (fun (k, v) -> Hashtbl.replace t.position_table k v) ck.ck_positions;
  t.vk <- ck.ck_vk;
  t.synced_epoch <- ck.ck_synced_epoch;
  Erc20.restore t.erc0 ck.ck_erc0;
  Erc20.restore t.erc1 ck.ck_erc1

let total_custody t =
  (Erc20.balance_of t.erc0 t.bank_address, Erc20.balance_of t.erc1 t.bank_address)
