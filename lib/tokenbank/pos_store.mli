(** TokenBank's open-position table on a flat store.

    Entries live in a {!Flatstore.Slab} (one 256-byte row per position,
    no per-entry boxing); a {!Flatstore.Registry} maps position ids to
    rows. Deletion clears a row's live flag — rows and id bindings are
    never recycled, so an undo journal can restore any prior state by
    replaying row images backwards.

    The journal is what makes TokenBank checkpoints O(dirty): a
    checkpoint is just the current {!mark}, and {!undo_to} rewinds
    exactly the rows written since. {!journal_bytes} exposes the
    cumulative bytes copied, so tests can assert the bound. *)

module Position_id = Chain.Ids.Position_id

type t

val create : unit -> t

val length : t -> int
(** Live (non-deleted) entries. *)

val find : t -> Position_id.t -> Sync_payload.position_entry option
(** Entries come back with [deleted = false]; deleted positions are
    simply absent. *)

val set : t -> Sync_payload.position_entry -> unit
(** Insert or overwrite, keyed by the entry's [pos_id]. *)

val remove : t -> Position_id.t -> unit

val iter : t -> (Sync_payload.position_entry -> unit) -> unit
(** In insertion (row) order — deterministic across runs. *)

val fold : t -> init:'a -> f:('a -> Sync_payload.position_entry -> 'a) -> 'a

(** {1 Undo journal} *)

val mark : t -> int
(** The current journal position — an O(1) checkpoint token. *)

val undo_to : t -> int -> unit
(** Rewind every mutation made since [mark] was taken. Raises
    [Invalid_argument] on a mark from the future. *)

val release_below : t -> int -> unit
(** Drop journal entries older than [mark] once no checkpoint can reach
    them — keeps long runs from accumulating history. *)

val journal_bytes : t -> int
(** Cumulative row bytes copied into the journal since creation —
    monotone; the difference across an operation bounds its checkpoint
    cost. *)

val row_bytes : t -> int

(** {1 Audit surface}

    The twin's differential audit compares exactly the rows written
    since the last {!clear_dirty} — O(dirty), not O(positions). Row
    images carry no row index, so two stores that applied the same
    entry sequence have byte-identical images per position id. *)

val row_image : t -> Position_id.t -> bytes option
(** The raw 256-byte row for a position id, deleted rows included
    (their stale field bytes are part of the deterministic surface);
    [None] for an id that never had a row. *)

val dirty_ids : t -> Position_id.t list
(** Ids whose rows were written since the last {!clear_dirty}, in row
    (first-seen) order — deterministic across runs. *)

val clear_dirty : t -> unit

val corrupt_bit : t -> index:int -> bit:int -> Position_id.t option
(** Flips one bit in the row selected by [index mod rows] (fault
    injection); returns the affected id, or [None] on an empty store.
    The row is marked dirty — corruption hits the same audit surface
    as a legitimate write. Deliberately bypasses the undo journal: a
    silent corruption is not a transaction. *)

(** {1 Binary codec}

    Live entries only: [n : u32be] then per entry a 32-byte id followed
    by the raw row. Decode→encode is byte-identical. *)

type error = Flatstore.Slab.error =
  | Truncated of { need : int; got : int }
  | Bad_header of string
  | Length_mismatch of { expected : int; got : int }
      (** Same shape as {!Flatstore.Slab.error} — both codecs fail the
          same ways on torn or malformed buffers. *)

val error_to_string : error -> string

val to_bytes : t -> bytes

val of_bytes : bytes -> (t, error) result
(** Total: never raises. Untrusted buffers (snapshot files) go here. *)

val of_bytes_exn : bytes -> t
(** Raises [Invalid_argument] with the rendered error. *)
