(** Prime-field arithmetic modulo the BN254 group order, used by the
    simulated BN256 group, Shamir secret sharing and Lagrange
    interpolation.

    The modulus is fixed, so elements are held in Montgomery form and
    multiplied through a precomputed {!Amm_math.U256.Mont} context (no
    per-operation division); inversion is a binary extended GCD. The
    [_naive] functions preserve the original generic-modulus code path
    (schoolbook multiply + Knuth division, Fermat inversion) as
    reference implementations — the fast path must agree with them
    exactly on every input. *)

type t
(** A field element; always reduced modulo the order. *)

val order : Amm_math.U256.t
(** 21888242871839275222246405745257275088548364400416034343698204186575808495617,
    the order of the BN254 (alt_bn128) groups. *)

val zero : t
val one : t
val of_u256 : Amm_math.U256.t -> t
val of_int : int -> t
val to_u256 : t -> Amm_math.U256.t
val of_bytes : bytes -> t
(** Reduces arbitrary bytes into the field (hash-to-field). *)

val equal : t -> t -> bool
val is_zero : t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val inv : t -> t
(** Multiplicative inverse by binary extended GCD. Raises
    [Division_by_zero] on zero. *)

val div : t -> t -> t
val pow : t -> Amm_math.U256.t -> t

val batch_inv : t array -> t array
(** Montgomery's trick: the inverses of all entries for the cost of one
    inversion plus [3(n-1)] multiplications. Raises [Division_by_zero]
    if any entry is zero. *)

(** {1 Naive reference implementations}

    The pre-optimisation operations, kept verbatim for differential
    testing; equal to the fast path on every input. *)

val mul_naive : t -> t -> t
val pow_naive : t -> Amm_math.U256.t -> t

val inv_naive : t -> t
(** Fermat inversion ([a^(order-2)]). Raises [Division_by_zero] on zero. *)

val pp : Format.formatter -> t -> unit
