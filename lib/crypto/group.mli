(** Simulated BN256 (alt_bn128) pairing groups.

    SUBSTITUTION (documented in DESIGN.md): no elliptic-curve library is
    available offline, so G1, G2 and GT are modeled as ideal cyclic groups
    of the BN254 order — an element is its discrete logarithm with respect
    to the group generator, tagged with the group it belongs to. Every
    protocol-visible behaviour of the real curve is preserved: the group
    laws, hash-to-curve, the bilinear pairing
    [e(a·G1, b·G2) = ab·GT], and serialized sizes (G1 64 B, G2 128 B
    uncompressed, as in the paper's Table 7). What is NOT preserved is
    hardness of discrete log — acceptable because the evaluation measures
    protocol costs, not cryptanalytic strength. *)

type g1
type g2
type gt

val g1_generator : g1
val g2_generator : g2

val g1_zero : g1
val g2_zero : g2
(** The group identities — the right accumulator seeds for sums, instead
    of burning a scalar multiplication on [mul generator Field.zero]. *)

val g1_mul : g1 -> Field.t -> g1
val g2_mul : g2 -> Field.t -> g2
val g1_add : g1 -> g1 -> g1
val g2_add : g2 -> g2 -> g2
val g1_equal : g1 -> g1 -> bool
val g2_equal : g2 -> g2 -> bool
val gt_equal : gt -> gt -> bool

val hash_to_g1 : bytes -> g1
(** Hash-to-point: Keccak-256 of the message mapped into G1, mirroring the
    paper's hash-to-point (Keccak256 then scalar multiplication). Results
    are memoised per domain (bounded), since the signing path hashes the
    same epoch summary once per committee member. *)

val hash_to_g1_uncached : bytes -> g1
(** The memo-free computation; [hash_to_g1] always agrees with it. *)

val pairing : g1 -> g2 -> gt
(** The bilinear map. *)

val g1_to_bytes : g1 -> bytes
(** 64-byte encoding (two 32-byte coordinates on the real curve). *)

val g2_to_bytes : g2 -> bytes
(** 128-byte encoding. *)

val g1_of_bytes : bytes -> g1
val g2_of_bytes : bytes -> g2
