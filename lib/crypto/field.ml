module U256 = Amm_math.U256
module Mont = U256.Mont

(* Elements are stored in Montgomery form (x·R mod order, R = 2^256):
   the BN254 order is fixed for the lifetime of the program, so every
   multiplication runs through the precomputed CIOS context instead of
   the generic 512-bit product + Knuth division of [U256.mul_mod].
   Montgomery residues are canonical (always reduced), so equality,
   zero-tests and hashing work on the raw representation; only
   [of_u256]/[to_u256] convert. The [_naive] functions keep the original
   generic-modulus code path alive as a differential reference. *)

type t = U256.t

let order =
  U256.of_string
    "21888242871839275222246405745257275088548364400416034343698204186575808495617"

let ctx = Mont.create ~modulus:order

let zero = U256.zero
let one = Mont.one ctx
let of_u256 x = Mont.to_mont ctx (U256.rem x order)
let of_int n = of_u256 (U256.of_int n)
let to_u256 x = Mont.of_mont ctx x
let of_bytes b = of_u256 (U256.of_bytes_be (Sha256.digest b))

let equal = U256.equal
let is_zero = U256.is_zero

(* Both operands are reduced and the order is 254 bits, so the sum never
   wraps 256 bits: a conditional subtract replaces the generic [rem]. *)
let add a b =
  let s = U256.add a b in
  if U256.ge s order then U256.sub s order else s

let sub a b = if U256.ge a b then U256.sub a b else U256.sub (U256.add a order) b
let neg a = if U256.is_zero a then zero else U256.sub order a
let mul a b = Mont.mul ctx a b

let pow base exponent =
  (* Square-and-multiply over the 256 exponent bits. *)
  let result = ref one and acc = ref base in
  for i = 0 to U256.bits exponent - 1 do
    if U256.bit exponent i then result := mul !result !acc;
    acc := mul !acc !acc
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Inversion: binary extended GCD                                      *)
(* ------------------------------------------------------------------ *)

(* x/2 mod order for x < order: odd x borrows the odd modulus first
   (x + order < 2^255, so the add cannot wrap). *)
let half_mod x =
  if U256.bit x 0 then U256.shift_right (U256.add x order) 1
  else U256.shift_right x 1

let sub_mod a b =
  if U256.ge a b then U256.sub a b else U256.sub (U256.add a order) b

(* Inverse of a nonzero residue modulo [order] by the binary extended
   GCD (HAC 14.61 specialised to an odd prime modulus): invariants
   x1·a ≡ u and x2·a ≡ v (mod order); ~1.5 shift/sub iterations per bit
   instead of the ~380 full Montgomery multiplications Fermat costs. *)
let inv_u256 a =
  let u = ref a and v = ref order in
  let x1 = ref U256.one and x2 = ref U256.zero in
  while (not (U256.equal !u U256.one)) && not (U256.equal !v U256.one) do
    while not (U256.bit !u 0) do
      u := U256.shift_right !u 1;
      x1 := half_mod !x1
    done;
    while not (U256.bit !v 0) do
      v := U256.shift_right !v 1;
      x2 := half_mod !x2
    done;
    if U256.ge !u !v then begin
      u := U256.sub !u !v;
      x1 := sub_mod !x1 !x2
    end
    else begin
      v := U256.sub !v !u;
      x2 := sub_mod !x2 !x1
    end
  done;
  if U256.equal !u U256.one then !x1 else !x2

let inv a =
  if is_zero a then raise Division_by_zero;
  (* a is v·R; the GCD inverts the raw residue to v⁻¹·R⁻¹, and each
     to_mont multiplies by R, landing back on the Montgomery form v⁻¹·R. *)
  Mont.to_mont ctx (Mont.to_mont ctx (inv_u256 a))

let div a b = mul a (inv b)

(* Montgomery's batch-inversion trick: one inversion plus 3(n−1)
   multiplications for n inverses. Raises [Division_by_zero] if any
   entry is zero (the prefix product collapses, as single [inv] would). *)
let batch_inv xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let prefix = Array.make n xs.(0) in
    for i = 1 to n - 1 do
      prefix.(i) <- mul prefix.(i - 1) xs.(i)
    done;
    let acc = ref (inv prefix.(n - 1)) in
    let out = Array.make n zero in
    for i = n - 1 downto 1 do
      out.(i) <- mul !acc prefix.(i - 1);
      acc := mul !acc xs.(i)
    done;
    out.(0) <- !acc;
    out
  end

(* ------------------------------------------------------------------ *)
(* Naive reference implementations                                     *)
(* ------------------------------------------------------------------ *)

(* The pre-fast-path code: generic-modulus multiply (full 512-bit
   product + division) and Fermat inversion. Kept for differential
   tests — every fast operation must agree with these exactly. *)

let mul_naive a b = of_u256 (U256.mul_mod (to_u256 a) (to_u256 b) order)

let pow_naive base exponent =
  let result = ref one and acc = ref base in
  for i = 0 to U256.bits exponent - 1 do
    if U256.bit exponent i then result := mul_naive !result !acc;
    acc := mul_naive !acc !acc
  done;
  !result

let inv_naive a =
  if is_zero a then raise Division_by_zero;
  pow_naive a (U256.sub order (U256.of_int 2))

let pp fmt x = U256.pp fmt (to_u256 x)
