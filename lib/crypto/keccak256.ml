(* Keccak-f[1600] with 64-bit lanes held in Int64; rate 1088 bits (136 bytes),
   capacity 512, output 256 bits, multi-rate padding with suffix 0x01.

   The permutation runs against a reusable context: the theta/chi lane
   indices and the rho+pi destinations are precomputed tables (no [mod 5]
   in the round loop), and the c/d/b scratch arrays live in the context
   instead of being allocated per call. One-shot [digest] runs on a
   domain-local context through the streaming [feed]/[finalize] API, so
   it neither allocates scratch nor copies the input into a padded
   buffer. *)

let rounds = 24
let rate_bytes = 136

let round_constants =
  [| 0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
     0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
     0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
     0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
     0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
     0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
     0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
     0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L |]

let rotation_offsets =
  (* r[x][y] indexed as offsets.(x + 5*y) *)
  [| 0; 1; 62; 28; 27;
     36; 44; 6; 55; 20;
     3; 10; 43; 25; 39;
     41; 45; 15; 21; 8;
     18; 2; 61; 56; 14 |]

(* Index tables hoisted out of the round loop. For lane i = x + 5y:
   rho+pi writes b.(pi_dst.(i)) from state.(i); chi combines
   b.(i), b.(chi1.(i)), b.(chi2.(i)); theta's d.(x) mixes columns
   (x+4) mod 5 and (x+1) mod 5. *)
let pi_dst =
  Array.init 25 (fun i ->
      let x = i mod 5 and y = i / 5 in
      ((2 * x) + (3 * y)) mod 5 * 5 + y)

let chi1 = Array.init 25 (fun i -> (i / 5 * 5) + ((i + 1) mod 5))
let chi2 = Array.init 25 (fun i -> (i / 5 * 5) + ((i + 2) mod 5))
let prev5 = [| 4; 0; 1; 2; 3 |]
let next5 = [| 1; 2; 3; 4; 0 |]

let rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

type ctx = {
  st : int64 array; (* 25 lanes *)
  c : int64 array; (* theta column parities, 5 *)
  d : int64 array; (* theta deltas, 5 *)
  b : int64 array; (* rho+pi output, 25 *)
  buf : Bytes.t; (* one partial rate block *)
  mutable fill : int; (* bytes buffered in [buf] *)
}

let init () =
  { st = Array.make 25 0L; c = Array.make 5 0L; d = Array.make 5 0L;
    b = Array.make 25 0L; buf = Bytes.create rate_bytes; fill = 0 }

let reset ctx =
  Array.fill ctx.st 0 25 0L;
  ctx.fill <- 0

let keccak_f ctx =
  let state = ctx.st and c = ctx.c and d = ctx.d and b = ctx.b in
  for round = 0 to rounds - 1 do
    (* theta *)
    for x = 0 to 4 do
      Array.unsafe_set c x
        (Int64.logxor (Array.unsafe_get state x)
           (Int64.logxor (Array.unsafe_get state (x + 5))
              (Int64.logxor (Array.unsafe_get state (x + 10))
                 (Int64.logxor (Array.unsafe_get state (x + 15))
                    (Array.unsafe_get state (x + 20))))))
    done;
    for x = 0 to 4 do
      Array.unsafe_set d x
        (Int64.logxor
           (Array.unsafe_get c (Array.unsafe_get prev5 x))
           (rotl64 (Array.unsafe_get c (Array.unsafe_get next5 x)) 1))
    done;
    for i = 0 to 24 do
      Array.unsafe_set state i
        (Int64.logxor (Array.unsafe_get state i) (Array.unsafe_get d (i mod 5)))
    done;
    (* rho + pi *)
    for i = 0 to 24 do
      Array.unsafe_set b (Array.unsafe_get pi_dst i)
        (rotl64 (Array.unsafe_get state i) (Array.unsafe_get rotation_offsets i))
    done;
    (* chi *)
    for i = 0 to 24 do
      Array.unsafe_set state i
        (Int64.logxor (Array.unsafe_get b i)
           (Int64.logand
              (Int64.lognot (Array.unsafe_get b (Array.unsafe_get chi1 i)))
              (Array.unsafe_get b (Array.unsafe_get chi2 i))))
    done;
    (* iota *)
    state.(0) <- Int64.logxor state.(0) (Array.unsafe_get round_constants round)
  done

(* XOR one rate block at [off] in [src] into the state and permute. *)
let absorb ctx src off =
  let st = ctx.st in
  for i = 0 to (rate_bytes / 8) - 1 do
    Array.unsafe_set st i
      (Int64.logxor (Array.unsafe_get st i) (Bytes.get_int64_le src (off + (8 * i))))
  done;
  keccak_f ctx

let feed ctx input =
  let len = Bytes.length input in
  let pos = ref 0 in
  (* Top up a partially filled buffer first. *)
  if ctx.fill > 0 then begin
    let take = Stdlib.min (rate_bytes - ctx.fill) len in
    Bytes.blit input 0 ctx.buf ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := take;
    if ctx.fill = rate_bytes then begin
      absorb ctx ctx.buf 0;
      ctx.fill <- 0
    end
  end;
  (* Whole blocks straight from the input, no copy. *)
  while len - !pos >= rate_bytes do
    absorb ctx input !pos;
    pos := !pos + rate_bytes
  done;
  if !pos < len then begin
    Bytes.blit input !pos ctx.buf 0 (len - !pos);
    ctx.fill <- len - !pos
  end

let feed_string ctx s = feed ctx (Bytes.unsafe_of_string s)

let finalize ctx =
  (* Multi-rate padding 0x01 .. 0x80 in the tail block. *)
  Bytes.fill ctx.buf ctx.fill (rate_bytes - ctx.fill) '\000';
  Bytes.set ctx.buf ctx.fill '\x01';
  Bytes.set ctx.buf (rate_bytes - 1)
    (Char.chr (Char.code (Bytes.get ctx.buf (rate_bytes - 1)) lor 0x80));
  absorb ctx ctx.buf 0;
  let out = Bytes.create 32 in
  for i = 0 to 3 do
    Bytes.set_int64_le out (8 * i) ctx.st.(i)
  done;
  (* Leave the context ready for the next message. *)
  reset ctx;
  out

(* One-shot digests reuse a domain-local context: [digest] never runs
   re-entrantly (it takes no callbacks), so sharing per domain is safe
   and saves the scratch allocations on every call. *)
let dls_ctx : ctx Domain.DLS.key = Domain.DLS.new_key init

let digest input =
  let ctx = Domain.DLS.get dls_ctx in
  reset ctx;
  feed ctx input;
  finalize ctx

let digest_string s = digest (Bytes.of_string s)
let hex s = Hex.of_bytes (digest_string s)
