(** Keccak-256 as used by Ethereum (original Keccak padding [0x01], not the
    NIST SHA3-256 variant), implemented from scratch on Keccak-f[1600]. *)

val digest : bytes -> bytes
(** 32-byte digest of the input. Runs on a reusable domain-local state:
    no per-call scratch allocation and no padded input copy. *)

val digest_string : string -> bytes
val hex : string -> string
(** Hex digest of a string input, convenient for tests. *)

(** {1 Streaming interface}

    Absorb a message in arbitrary chunks; equals the one-shot digest of
    the concatenation. A context is reusable: {!finalize} leaves it
    ready for the next message (as does {!reset}). *)

type ctx

val init : unit -> ctx
val reset : ctx -> unit
val feed : ctx -> bytes -> unit
val feed_string : ctx -> string -> unit
val finalize : ctx -> bytes
