(** SHA-256 (FIPS 180-4), implemented from scratch. *)

val digest : bytes -> bytes
(** 32-byte digest of the input. Runs on a reusable domain-local context:
    no per-call message-schedule allocation and no padded input copy. *)

val digest_string : string -> bytes
val hex : string -> string
(** Hex digest of a string input, convenient for tests. *)

val concat : bytes list -> bytes
(** Digest of the concatenation of the inputs, streamed — the parts are
    never copied into one buffer. *)

(** {1 Streaming interface}

    Feed a message in arbitrary chunks; equals the one-shot digest of
    the concatenation. A context is reusable: {!finalize} leaves it
    ready for the next message (as does {!reset}). *)

type ctx

val init : unit -> ctx
val reset : ctx -> unit
val feed : ctx -> bytes -> unit
val feed_string : ctx -> string -> unit
val finalize : ctx -> bytes
