type secret_key = Field.t
type public_key = Group.g2
type signature = Group.g1

let keygen rng =
  let sk = Rng.field rng in
  (sk, Group.g2_mul Group.g2_generator sk)

let public_key sk = Group.g2_mul Group.g2_generator sk

let sign sk msg = Group.g1_mul (Group.hash_to_g1 msg) sk

let verify pk msg sigma =
  (* e(sigma, g2) = e(H(m), pk) *)
  Group.gt_equal
    (Group.pairing sigma Group.g2_generator)
    (Group.pairing (Group.hash_to_g1 msg) pk)

let aggregate = function
  | [] -> invalid_arg "Bls.aggregate: empty list"
  | s :: rest -> List.fold_left Group.g1_add s rest

let signature_size = 64
let public_key_size = 128
let signature_to_bytes = Group.g1_to_bytes
let public_key_to_bytes = Group.g2_to_bytes
let signature_of_bytes = Group.g1_of_bytes
let public_key_of_bytes = Group.g2_of_bytes

(* ------------------------------------------------------------------ *)
(* Threshold scheme: Shamir sharing of the committee secret            *)
(* ------------------------------------------------------------------ *)

type share = { index : int; value : Field.t }
type partial_signature = { p_index : int; p_sig : Group.g1 }
type commitments = Group.g2 array

let share_index s = s.index

let eval_poly coeffs x =
  (* Horner evaluation of Σ coeffs.(i) · x^i. *)
  Array.fold_right (fun c acc -> Field.add c (Field.mul acc x)) coeffs Field.zero

let dkg rng ~n ~threshold =
  if threshold < 1 || threshold > n then invalid_arg "Bls.dkg: bad threshold";
  (* Equivalent outcome of a Pedersen-style DKG: a uniformly random degree
     (threshold-1) polynomial nobody fully knows; here the simulation draws
     it directly from the deterministic rng. The Feldman commitments
     g2^{a_k} are what a real DKG broadcasts — they let anyone check a
     partial signature against the share it should have been made with. *)
  let coeffs = Array.init threshold (fun _ -> Rng.field rng) in
  let secret = coeffs.(0) in
  let commitments = Array.map (Group.g2_mul Group.g2_generator) coeffs in
  let shares =
    List.init n (fun i ->
        let index = i + 1 in
        { index; value = eval_poly coeffs (Field.of_int index) })
  in
  (Group.g2_mul Group.g2_generator secret, commitments, shares)

let member_key commitments i =
  (* g2^{poly(i)} by Horner in the exponent over the commitments. *)
  let x = Field.of_int i in
  Array.fold_right
    (fun c acc -> Group.g2_add c (Group.g2_mul acc x))
    commitments Group.g2_zero

let partial_sign share msg =
  { p_index = share.index; p_sig = Group.g1_mul (Group.hash_to_g1 msg) share.value }

let partial_index p = p.p_index

let verify_partial ~commitments msg p =
  (* e(p_sig, g2) = e(H(m), g2^{poly(i)}): the partial really is H(m)
     raised to the share the DKG committed to for this member. *)
  p.p_index >= 1
  && Group.gt_equal
       (Group.pairing p.p_sig Group.g2_generator)
       (Group.pairing (Group.hash_to_g1 msg) (member_key commitments p.p_index))

let tamper_partial p = { p with p_sig = Group.g1_add p.p_sig Group.g1_generator }

let lagrange_coefficient_at_zero indices i =
  (* λ_i = Π_{j ≠ i} x_j / (x_j − x_i) over the field. *)
  List.fold_left
    (fun acc j ->
      if j = i then acc
      else
        let xj = Field.of_int j and xi = Field.of_int i in
        Field.mul acc (Field.div xj (Field.sub xj xi)))
    Field.one indices

let lagrange_coefficients_uncached indices =
  (* All λ_i at once: numerators Π_{j≠i} x_j come from prefix/suffix
     product arrays; the t denominators Π_{j≠i} (x_j − x_i) are inverted
     together with Montgomery's trick — one field inversion total,
     versus t·(t−1) divisions for the one-at-a-time formula. *)
  let xs = Array.of_list (List.map Field.of_int indices) in
  let t = Array.length xs in
  let prefix = Array.make (t + 1) Field.one in
  for i = 0 to t - 1 do
    prefix.(i + 1) <- Field.mul prefix.(i) xs.(i)
  done;
  let suffix = Array.make (t + 1) Field.one in
  for i = t - 1 downto 0 do
    suffix.(i) <- Field.mul suffix.(i + 1) xs.(i)
  done;
  let dens =
    Array.init t (fun i ->
        let d = ref Field.one in
        for j = 0 to t - 1 do
          if j <> i then d := Field.mul !d (Field.sub xs.(j) xs.(i))
        done;
        !d)
  in
  let inv_dens = Field.batch_inv dens in
  Array.init t (fun i ->
      Field.mul (Field.mul prefix.(i) suffix.(i + 1)) inv_dens.(i))

(* The signer set barely changes between epochs (the same quorum answers
   every Sync until membership or faults shift it), so the coefficient
   vector for a given index set is cached per domain. Keyed by the sorted
   index list; bounded so a pathological churn of signer sets cannot grow
   the table without limit. Domain-local state keeps parallel experiment
   runs deterministic: a hit and a miss return identical values. *)
let lambda_cache_cap = 1 lsl 12

let lambda_cache : (int list, Field.t array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let lagrange_coefficients indices =
  let tbl = Domain.DLS.get lambda_cache in
  match Hashtbl.find_opt tbl indices with
  | Some lambdas -> lambdas
  | None ->
    let lambdas = lagrange_coefficients_uncached indices in
    if Hashtbl.length tbl >= lambda_cache_cap then Hashtbl.reset tbl;
    Hashtbl.add tbl indices lambdas;
    lambdas

let select_quorum ~threshold partials =
  (* Deduplicate by index; any [threshold] distinct shares reconstruct. *)
  let distinct =
    List.sort_uniq (fun a b -> Stdlib.compare a.p_index b.p_index) partials
  in
  if List.length distinct < threshold then None
  else Some (List.filteri (fun i _ -> i < threshold) distinct)

let combine ~threshold partials =
  match select_quorum ~threshold partials with
  | None -> None
  | Some used ->
    let indices = List.map (fun p -> p.p_index) used in
    let lambdas = lagrange_coefficients indices in
    let sigma = ref Group.g1_zero in
    List.iteri
      (fun k p -> sigma := Group.g1_add !sigma (Group.g1_mul p.p_sig lambdas.(k)))
      used;
    Some !sigma

let combine_reference ~threshold partials =
  (* The pre-optimisation path — per-partial λ_i with a field division per
     factor — kept as the oracle [combine] is tested against. *)
  match select_quorum ~threshold partials with
  | None -> None
  | Some used ->
    let indices = List.map (fun p -> p.p_index) used in
    let sigma =
      List.fold_left
        (fun acc p ->
          let lambda = lagrange_coefficient_at_zero indices p.p_index in
          Group.g1_add acc (Group.g1_mul p.p_sig lambda))
        Group.g1_zero used
    in
    Some sigma
