type secret_key = Field.t
type public_key = Group.g2
type signature = Group.g1

let keygen rng =
  let sk = Rng.field rng in
  (sk, Group.g2_mul Group.g2_generator sk)

let public_key sk = Group.g2_mul Group.g2_generator sk

let sign sk msg = Group.g1_mul (Group.hash_to_g1 msg) sk

let verify pk msg sigma =
  (* e(sigma, g2) = e(H(m), pk) *)
  Group.gt_equal
    (Group.pairing sigma Group.g2_generator)
    (Group.pairing (Group.hash_to_g1 msg) pk)

let aggregate = function
  | [] -> invalid_arg "Bls.aggregate: empty list"
  | s :: rest -> List.fold_left Group.g1_add s rest

let signature_size = 64
let public_key_size = 128
let signature_to_bytes = Group.g1_to_bytes
let public_key_to_bytes = Group.g2_to_bytes

(* ------------------------------------------------------------------ *)
(* Threshold scheme: Shamir sharing of the committee secret            *)
(* ------------------------------------------------------------------ *)

type share = { index : int; value : Field.t }
type partial_signature = { p_index : int; p_sig : Group.g1 }

let share_index s = s.index

let eval_poly coeffs x =
  (* Horner evaluation of Σ coeffs.(i) · x^i. *)
  Array.fold_right (fun c acc -> Field.add c (Field.mul acc x)) coeffs Field.zero

let dkg rng ~n ~threshold =
  if threshold < 1 || threshold > n then invalid_arg "Bls.dkg: bad threshold";
  (* Equivalent outcome of a Pedersen-style DKG: a uniformly random degree
     (threshold-1) polynomial nobody fully knows; here the simulation draws
     it directly from the deterministic rng. *)
  let coeffs = Array.init threshold (fun _ -> Rng.field rng) in
  let secret = coeffs.(0) in
  let shares =
    List.init n (fun i ->
        let index = i + 1 in
        { index; value = eval_poly coeffs (Field.of_int index) })
  in
  (Group.g2_mul Group.g2_generator secret, shares)

let partial_sign share msg =
  { p_index = share.index; p_sig = Group.g1_mul (Group.hash_to_g1 msg) share.value }

let partial_index p = p.p_index
let verify_partial p = p.p_index >= 1

let lagrange_coefficient_at_zero indices i =
  (* λ_i = Π_{j ≠ i} x_j / (x_j − x_i) over the field. *)
  List.fold_left
    (fun acc j ->
      if j = i then acc
      else
        let xj = Field.of_int j and xi = Field.of_int i in
        Field.mul acc (Field.div xj (Field.sub xj xi)))
    Field.one indices

let combine ~threshold partials =
  (* Deduplicate by index; any [threshold] distinct shares reconstruct. *)
  let distinct =
    List.sort_uniq (fun a b -> Stdlib.compare a.p_index b.p_index) partials
  in
  if List.length distinct < threshold then None
  else begin
    let used = ref [] in
    let rec take n = function
      | _ when n = 0 -> ()
      | [] -> ()
      | p :: rest -> used := p :: !used; take (n - 1) rest
    in
    take threshold distinct;
    let indices = List.map (fun p -> p.p_index) !used in
    let sigma =
      List.fold_left
        (fun acc p ->
          let lambda = lagrange_coefficient_at_zero indices p.p_index in
          Group.g1_add acc (Group.g1_mul p.p_sig lambda))
        (Group.g1_mul Group.g1_generator Field.zero)
        !used
    in
    Some sigma
  end
