module U256 = Amm_math.U256

(* Ideal-group model: an element is its discrete log w.r.t. the group
   generator. The phantom types keep G1/G2/GT apart at compile time. *)
type g1 = Field.t
type g2 = Field.t
type gt = Field.t

let g1_generator = Field.one
let g2_generator = Field.one
let g1_zero = Field.zero
let g2_zero = Field.zero

let g1_mul p s = Field.mul p s
let g2_mul p s = Field.mul p s
let g1_add a b = Field.add a b
let g2_add a b = Field.add a b
let g1_equal = Field.equal
let g2_equal = Field.equal
let gt_equal = Field.equal

let hash_to_g1_uncached msg = Field.of_u256 (U256.of_bytes_be (Keccak256.digest msg))

(* Hash-to-point is called with the same message over and over on the
   signing path — every committee member partial-signs the identical
   epoch summary, and the combine/verify steps hash it again — so a
   small domain-local memo turns all but the first call per (domain,
   message) into a table lookup. Keyed by an immutable string copy of
   the message (callers may reuse their buffer); bounded so adversarial
   message streams cannot grow it without limit. *)
let memo_cap = 1 lsl 12

let memo_key : (string, Field.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let hash_to_g1 msg =
  let tbl = Domain.DLS.get memo_key in
  let key = Bytes.to_string msg in
  match Hashtbl.find_opt tbl key with
  | Some p -> p
  | None ->
    let p = hash_to_g1_uncached msg in
    if Hashtbl.length tbl >= memo_cap then Hashtbl.reset tbl;
    Hashtbl.add tbl key p;
    p

let pairing (p : g1) (q : g2) : gt = Field.mul p q

(* Serializations pad the discrete log to the real curve's uncompressed
   sizes so byte accounting matches BN256 (64 B G1 points, 128 B G2). *)
let element_to_bytes size x =
  let b = Bytes.make size '\000' in
  let repr = U256.to_bytes_be (Field.to_u256 x) in
  Bytes.blit repr 0 b (size - 32) 32;
  b

let element_of_bytes size b =
  if Bytes.length b <> size then invalid_arg "Group.element_of_bytes: bad length";
  Field.of_u256 (U256.of_bytes_be (Bytes.sub b (size - 32) 32))

let g1_to_bytes = element_to_bytes 64
let g2_to_bytes = element_to_bytes 128
let g1_of_bytes = element_of_bytes 64
let g2_of_bytes = element_of_bytes 128
