(** BLS signatures over the simulated BN256 groups (see {!Group} for the
    substitution note), including the threshold variant ammBoost uses to
    authenticate [Sync] calls: a distributed key generation produces one
    committee verification key [vk_c] plus one signing-key share per
    member; any [threshold] members can jointly produce a signature that
    verifies under [vk_c]. *)

type secret_key
type public_key = Group.g2
type signature = Group.g1

val keygen : Rng.t -> secret_key * public_key
val public_key : secret_key -> public_key
val sign : secret_key -> bytes -> signature
val verify : public_key -> bytes -> signature -> bool
val aggregate : signature list -> signature
(** Sum of signatures; verifies under the sum of public keys for a common
    message. *)

val signature_size : int
(** 64 bytes, as reported in the paper's Table 7. *)

val public_key_size : int
(** 128 bytes ([vk_c] in Table 7). *)

val signature_to_bytes : signature -> bytes
val public_key_to_bytes : public_key -> bytes

val signature_of_bytes : bytes -> signature
(** Inverse of {!signature_to_bytes}; raises [Invalid_argument] unless
    the buffer is exactly {!signature_size} bytes. *)

val public_key_of_bytes : bytes -> public_key
(** Inverse of {!public_key_to_bytes}; raises [Invalid_argument] unless
    the buffer is exactly {!public_key_size} bytes. *)

(** {1 Threshold scheme} *)

type share
(** A signing-key share held by one committee member. *)

type partial_signature

type commitments = Group.g2 array
(** Feldman commitments [g2^{a_k}] to the DKG polynomial's coefficients.
    Public alongside [vk_c]; they determine every member's public share
    key [g2^{poly(i)}], which is what partial signatures verify against. *)

val share_index : share -> int

val dkg : Rng.t -> n:int -> threshold:int -> public_key * commitments * share list
(** Distributed key generation for an [n]-member committee: returns the
    committee verification key, the coefficient commitments, and one
    share per member (indices 1..n). Any [threshold] shares can sign;
    fewer reveal nothing usable. *)

val member_key : commitments -> int -> Group.g2
(** [g2^{poly(i)}], member [i]'s public share key, evaluated in the
    exponent from the commitments. *)

val partial_sign : share -> bytes -> partial_signature

val partial_index : partial_signature -> int
(** The signing share's index (used to identify withheld/duplicate
    contributions when combining under a degraded quorum). *)

val verify_partial : commitments:commitments -> bytes -> partial_signature -> bool
(** Cryptographic check of a partial against the DKG commitments:
    [e(p_sig, g2) = e(H(m), g2^{poly(i)})]. Rejects corrupted or
    mis-attributed partials, not just malformed indices. *)

val tamper_partial : partial_signature -> partial_signature
(** The same index with a corrupted signature value — what a Byzantine
    member submits. [verify_partial] rejects the result; used by the
    fault-injection layer. *)

val combine : threshold:int -> partial_signature list -> signature option
(** Lagrange-combines at least [threshold] distinct partials into a full
    signature; [None] if there are too few distinct indices. The
    coefficient vector for a signer set costs one field inversion (batch
    inverted) and is cached per domain, keyed by the index set. *)

val combine_reference : threshold:int -> partial_signature list -> signature option
(** The pre-optimisation combine (per-partial coefficient, one field
    division per factor, no cache). Always agrees with {!combine};
    kept as the oracle for tests and benchmarks. *)
