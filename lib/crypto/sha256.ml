(* FIPS 180-4 SHA-256 over 32-bit words; words are kept in native ints and
   masked to 32 bits after every operation.

   The compression function runs against a reusable context (hash state,
   message schedule and one partial block), exposed both as a streaming
   [feed]/[finalize] API and as one-shot digests on a domain-local
   context — so hot callers like the Merkle tree builder and the
   deterministic RNG pay no per-call scratch allocation and no padded
   input copy. *)

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

let mask32 = 0xFFFFFFFF
let block_bytes = 64
let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

let iv =
  [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
     0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |]

type ctx = {
  h : int array; (* 8 chaining words *)
  w : int array; (* 64-entry message schedule *)
  buf : Bytes.t; (* one partial block *)
  mutable fill : int; (* bytes buffered in [buf] *)
  mutable total : int; (* total message bytes fed so far *)
}

let init () =
  { h = Array.copy iv; w = Array.make 64 0; buf = Bytes.create block_bytes;
    fill = 0; total = 0 }

let reset ctx =
  Array.blit iv 0 ctx.h 0 8;
  ctx.fill <- 0;
  ctx.total <- 0

(* Compress the 64-byte block at [off] in [src] into the chaining state. *)
let compress ctx src off =
  let h = ctx.h and w = ctx.w in
  for t = 0 to 15 do
    Array.unsafe_set w t
      ((Char.code (Bytes.get src (off + (4 * t))) lsl 24)
      lor (Char.code (Bytes.get src (off + (4 * t) + 1)) lsl 16)
      lor (Char.code (Bytes.get src (off + (4 * t) + 2)) lsl 8)
      lor Char.code (Bytes.get src (off + (4 * t) + 3)))
  done;
  for t = 16 to 63 do
    let w15 = Array.unsafe_get w (t - 15) and w2 = Array.unsafe_get w (t - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1)
      land mask32)
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 =
      (!hh + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t) land mask32
    in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask32 in
    hh := !g; g := !f; f := !e;
    e := (!d + t1) land mask32;
    d := !c; c := !b; b := !a;
    a := (t1 + t2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let feed ctx input =
  let len = Bytes.length input in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  if ctx.fill > 0 then begin
    let take = Stdlib.min (block_bytes - ctx.fill) len in
    Bytes.blit input 0 ctx.buf ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := take;
    if ctx.fill = block_bytes then begin
      compress ctx ctx.buf 0;
      ctx.fill <- 0
    end
  end;
  while len - !pos >= block_bytes do
    compress ctx input !pos;
    pos := !pos + block_bytes
  done;
  if !pos < len then begin
    Bytes.blit input !pos ctx.buf 0 (len - !pos);
    ctx.fill <- len - !pos
  end

let feed_string ctx s = feed ctx (Bytes.unsafe_of_string s)

let finalize ctx =
  (* Padding: 0x80, zeros, 64-bit big-endian bit length. *)
  let bitlen = ctx.total * 8 in
  Bytes.set ctx.buf ctx.fill '\x80';
  ctx.fill <- ctx.fill + 1;
  if ctx.fill > block_bytes - 8 then begin
    Bytes.fill ctx.buf ctx.fill (block_bytes - ctx.fill) '\000';
    compress ctx ctx.buf 0;
    ctx.fill <- 0
  end;
  Bytes.fill ctx.buf ctx.fill (block_bytes - ctx.fill) '\000';
  for i = 0 to 7 do
    Bytes.set ctx.buf (block_bytes - 1 - i)
      (Char.chr ((bitlen lsr (8 * i)) land 0xFF))
  done;
  compress ctx ctx.buf 0;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let h = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((h lsr 24) land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr ((h lsr 16) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr ((h lsr 8) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr (h land 0xFF))
  done;
  reset ctx;
  out

(* One-shot digests on a domain-local context: [digest]/[concat] take no
   callbacks, so they never run re-entrantly on a domain. *)
let dls_ctx : ctx Domain.DLS.key = Domain.DLS.new_key init

let digest input =
  let ctx = Domain.DLS.get dls_ctx in
  reset ctx;
  feed ctx input;
  finalize ctx

let digest_string s = digest (Bytes.of_string s)
let hex s = Hex.of_bytes (digest_string s)

let concat parts =
  (* Digest of the concatenation, streamed — no intermediate copy. *)
  let ctx = Domain.DLS.get dls_ctx in
  reset ctx;
  List.iter (fun p -> feed ctx p) parts;
  finalize ctx
