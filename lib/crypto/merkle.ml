(* Odd nodes are promoted unpaired (Bitcoin-style duplication is avoided to
   keep proofs unambiguous). Leaf and node hashes are domain-separated. *)

let leaf_tag = Bytes.of_string "\x00"
let node_tag = Bytes.of_string "\x01"

(* The tree build is the hot path (one hash per node per epoch); thread an
   explicit streaming context through it so the whole build shares one
   message schedule. The one-shot wrappers below keep the prove/verify
   paths unchanged. *)
let leaf_hash_into ctx payload =
  Sha256.reset ctx;
  Sha256.feed ctx leaf_tag;
  Sha256.feed ctx payload;
  Sha256.finalize ctx

let node_hash_into ctx l r =
  Sha256.reset ctx;
  Sha256.feed ctx node_tag;
  Sha256.feed ctx l;
  Sha256.feed ctx r;
  Sha256.finalize ctx

let leaf_hash payload = Sha256.concat [ leaf_tag; payload ]
let node_hash l r = Sha256.concat [ node_tag; l; r ]

type tree = { levels : bytes array array }
(* levels.(0) = leaf hashes; last level has length 1 (the root). *)

let empty_root = Sha256.digest Bytes.empty

let of_leaves payloads =
  match payloads with
  | [] -> { levels = [| [| empty_root |] |] }
  | _ ->
    let ctx = Sha256.init () in
    let leaves = Array.of_list (List.map (leaf_hash_into ctx) payloads) in
    let rec build acc level =
      if Array.length level <= 1 then List.rev (level :: acc)
      else begin
        let n = Array.length level in
        let parents =
          Array.init ((n + 1) / 2) (fun i ->
              if (2 * i) + 1 < n then
                node_hash_into ctx level.(2 * i) level.((2 * i) + 1)
              else level.(2 * i))
        in
        build (level :: acc) parents
      end
    in
    { levels = Array.of_list (build [] leaves) }

let root t = t.levels.(Array.length t.levels - 1).(0)

type proof = { path : (bool * bytes) list }
(* (is_right_sibling, sibling hash) from leaf to root; [None] entries for
   promoted odd nodes are simply omitted. *)

let prove t index =
  let nleaves = Array.length t.levels.(0) in
  if index < 0 || index >= nleaves then None
  else begin
    let path = ref [] in
    let idx = ref index in
    for lvl = 0 to Array.length t.levels - 2 do
      let level = t.levels.(lvl) in
      let sibling = !idx lxor 1 in
      if sibling < Array.length level then
        path := (sibling > !idx, level.(sibling)) :: !path;
      idx := !idx / 2
    done;
    Some { path = List.rev !path }
  end

let verify ~root:expected ~leaf proof =
  let acc =
    List.fold_left
      (fun acc (is_right, sibling) ->
        if is_right then node_hash acc sibling else node_hash sibling acc)
      (leaf_hash leaf) proof.path
  in
  Bytes.equal acc expected

let proof_length p = List.length p.path
