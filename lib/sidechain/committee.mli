(** Message-level committee operation: each round's meta-block (and the
    epoch's summary-block) agreed through the real PBFT implementation
    over the Δ-network, rather than the closed-form latency model the
    large-scale experiments use. Intended for full-fidelity runs with
    committees of tens of members (the paper's 500-miner committees are
    modeled; see DESIGN.md). *)

type t

type round_outcome = {
  decided : bool;        (** quorum commit reached within the horizon *)
  latency : float;       (** proposal to slowest honest commit, seconds *)
  view_changes : int;    (** leader replacements during the round *)
}

val create :
  rng:Amm_crypto.Rng.t ->
  members:int ->
  max_faulty:int ->
  delta:float ->
  timeout:float ->
  t
(** A committee of [members] replicas tolerating [max_faulty] faults
    (requires members >= 3·max_faulty + 1). *)

val members : t -> int
val max_faulty : t -> int

val agree :
  ?silent:int list ->
  ?invalid_proposer:bool ->
  ?chaos:(now:float -> src:int -> dst:int -> Consensus.Network.delivery) ->
  t ->
  block_digest:bytes ->
  horizon:float ->
  round_outcome
(** Runs one consensus instance on a block digest. [silent] members never
    respond; [invalid_proposer] makes the current leader propose an
    invalid block (detected and resolved by view change); [chaos] injects
    per-message drop/duplication/delay into the round's Δ-network. *)
