let replay_epoch ~pool_at_start ~snapshot ~metas ~epoch ~next_committee_vk =
  let pool = Uniswap.Pool.clone pool_at_start in
  let processor =
    (* Auditors re-check signatures the committee already validated only
       when transactions carry them. *)
    Processor.begin_epoch ~pool ~snapshot ~verify_signatures:false ()
  in
  List.iter
    (fun (meta : Blocks.meta) ->
      List.iter
        (fun tx ->
          match Processor.process processor ~current_round:meta.Blocks.m_round tx with
          | Ok () -> ()
          | Error e ->
            (* A transaction the committee included but that does not
               execute means the meta-block itself is invalid. *)
            failwith
              (Printf.sprintf "Auditor: invalid tx in meta-block round %d: %s"
                 meta.Blocks.m_round e))
        meta.Blocks.m_txs)
    metas;
  (* The audit derives the summary by the full O(positions) scan, not the
     committee's incremental builder: an independent path that also
     cross-checks the incremental change tracking in production. *)
  Processor.build_payload_reference processor ~epoch ~next_committee_vk

let verify_summary ~pool_at_start ~snapshot ~metas ~summary =
  let claimed = summary.Blocks.s_payload in
  match
    replay_epoch ~pool_at_start ~snapshot ~metas ~epoch:claimed.Tokenbank.Sync_payload.epoch
      ~next_committee_vk:claimed.Tokenbank.Sync_payload.next_committee_vk
  with
  | exception Failure e -> Error e
  | derived ->
    if
      Bytes.equal
        (Tokenbank.Sync_payload.signing_bytes derived)
        (Tokenbank.Sync_payload.signing_bytes claimed)
    then Ok ()
    else Error "Auditor: summary does not match the meta-block replay"
