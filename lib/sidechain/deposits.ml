module U256 = Amm_math.U256
module Address = Chain.Address

(* Accounts live in a flat slab, one row per user, six 32-byte slots:
   initial and remaining mainchain deposit plus the sidechain-accrued
   balance, per token. The user registry assigns rows in first-seen
   order; a separate sorted index of addresses is maintained
   incrementally on every account creation, so [users_sorted] never
   sorts. The snapshot (already sorted — it comes from
   [Address.Map.bindings]) loads as pure appends; only the few accounts
   auto-created mid-epoch pay an insertion shift. *)

module Reg = Flatstore.Registry.Make (struct
  type t = Address.t

  let equal = Address.equal
  let hash a = Hashtbl.hash (Address.to_bytes a)
end)

module Slab = Flatstore.Slab

let s_initial0 = 0
let s_initial1 = 1
let s_main0 = 2
let s_main1 = 3
let s_side0 = 4
let s_side1 = 5

type t = {
  reg : Reg.t;
  slab : Slab.t;
  mutable sorted : Address.t array; (* ascending; only [0, sorted_len) valid *)
  mutable sorted_len : int;
  (* Summary candidates: rows whose payin/payout could be nonzero, i.e.
     rows some balance mutation touched since epoch start. Marked at
     inclusion time by [consume]/[refund]/[credit_side] (and by
     [corrupt_bit], so injected corruption flows into the summary the
     same way a legitimate write does). Distinct from the slab's dirty
     rows, which the twin audit owns and clears mid-epoch. *)
  mutable cand_bits : Bytes.t; (* bit per row *)
  mutable cand_rows : int list; (* marked rows, most recent first *)
}

type consumption = {
  from_main0 : U256.t;
  from_side0 : U256.t;
  from_main1 : U256.t;
  from_side1 : U256.t;
}

(* Binary-search insertion into the sorted index. A sorted snapshot
   loads as O(1) appends (the common case: each address exceeds the
   current maximum); a mid-epoch account pays one O(n) shift, which only
   the handful of accounts created after epoch start ever do. *)
let sorted_insert t user =
  if t.sorted_len = Array.length t.sorted then begin
    let grown = Array.make (Stdlib.max 16 (2 * t.sorted_len)) user in
    Array.blit t.sorted 0 grown 0 t.sorted_len;
    t.sorted <- grown
  end;
  if t.sorted_len > 0 && Address.compare t.sorted.(t.sorted_len - 1) user < 0 then begin
    t.sorted.(t.sorted_len) <- user;
    t.sorted_len <- t.sorted_len + 1
  end
  else begin
    let lo = ref 0 and hi = ref t.sorted_len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Address.compare t.sorted.(mid) user < 0 then lo := mid + 1 else hi := mid
    done;
    Array.blit t.sorted !lo t.sorted (!lo + 1) (t.sorted_len - !lo);
    t.sorted.(!lo) <- user;
    t.sorted_len <- t.sorted_len + 1
  end

let mark_row t row =
  let byte = row lsr 3 and bit = row land 7 in
  if byte >= Bytes.length t.cand_bits then begin
    let grown =
      Bytes.make (Stdlib.max 16 (2 * (byte + 1))) '\000'
    in
    Bytes.blit t.cand_bits 0 grown 0 (Bytes.length t.cand_bits);
    t.cand_bits <- grown
  end;
  let v = Char.code (Bytes.get t.cand_bits byte) in
  if v land (1 lsl bit) = 0 then begin
    Bytes.set t.cand_bits byte (Char.chr (v lor (1 lsl bit)));
    t.cand_rows <- row :: t.cand_rows
  end

let create ~snapshot =
  let n = List.length snapshot in
  let reg = Reg.create ~capacity:(Stdlib.max 64 (2 * n)) () in
  let slab = Slab.create ~slots:6 ~capacity:(Stdlib.max 16 n) () in
  let t =
    { reg; slab; sorted = [||]; sorted_len = 0;
      cand_bits = Bytes.make (Stdlib.max 2 ((n / 8) + 1)) '\000';
      cand_rows = [] }
  in
  List.iter
    (fun (user, (d0, d1)) ->
      let row = Reg.intern reg user in
      let row' = Slab.alloc slab in
      assert (row = row');
      Slab.set_u256 slab ~row ~slot:s_initial0 d0;
      Slab.set_u256 slab ~row ~slot:s_initial1 d1;
      Slab.set_u256 slab ~row ~slot:s_main0 d0;
      Slab.set_u256 slab ~row ~slot:s_main1 d1;
      sorted_insert t user)
    snapshot;
  t

let row_of t user =
  let row = Reg.intern t.reg user in
  if row >= Slab.rows t.slab then begin
    ignore (Slab.alloc t.slab);
    sorted_insert t user
  end;
  row

let get t row slot = Slab.get_u256 t.slab ~row ~slot
let set t row slot v = Slab.set_u256 t.slab ~row ~slot v

let known_users t = Reg.fold t.reg ~init:[] ~f:(fun acc _ u -> u :: acc)

(* Ascending by address, straight off the incrementally-maintained
   index — no sorting, no merging, O(n) to materialize the list. *)
let users_sorted t =
  let out = ref [] in
  for i = t.sorted_len - 1 downto 0 do
    out := t.sorted.(i) :: !out
  done;
  !out

let available t user =
  let row = row_of t user in
  ( U256.add (get t row s_main0) (get t row s_side0),
    U256.add (get t row s_main1) (get t row s_side1) )

let main_remaining t user =
  let row = row_of t user in
  (get t row s_main0, get t row s_main1)

let side_balance t user =
  let row = row_of t user in
  (get t row s_side0, get t row s_side1)

let insufficient user reason =
  Telemetry.Log.debug ~scope:"deposits"
    ~fields:[ ("user", Telemetry.Json.String (Address.to_hex user)) ]
    reason;
  Error reason

let consume t user ~amount0 ~amount1 =
  let row = row_of t user in
  let main0 = get t row s_main0 and main1 = get t row s_main1 in
  let side0 = get t row s_side0 and side1 = get t row s_side1 in
  if U256.lt (U256.add main0 side0) amount0 then
    insufficient user "deposit: token0 not covered"
  else if U256.lt (U256.add main1 side1) amount1 then
    insufficient user "deposit: token1 not covered"
  else begin
    let split main amount =
      if U256.ge main amount then (amount, U256.zero)
      else (main, U256.sub amount main)
    in
    let from_main0, from_side0 = split main0 amount0 in
    let from_main1, from_side1 = split main1 amount1 in
    set t row s_main0 (U256.sub main0 from_main0);
    set t row s_side0 (U256.sub side0 from_side0);
    set t row s_main1 (U256.sub main1 from_main1);
    set t row s_side1 (U256.sub side1 from_side1);
    mark_row t row;
    Ok { from_main0; from_side0; from_main1; from_side1 }
  end

let refund t user c =
  let row = row_of t user in
  set t row s_main0 (U256.add (get t row s_main0) c.from_main0);
  set t row s_side0 (U256.add (get t row s_side0) c.from_side0);
  set t row s_main1 (U256.add (get t row s_main1) c.from_main1);
  set t row s_side1 (U256.add (get t row s_side1) c.from_side1);
  mark_row t row

let credit_side t user ~amount0 ~amount1 =
  let row = row_of t user in
  set t row s_side0 (U256.add (get t row s_side0) amount0);
  set t row s_side1 (U256.add (get t row s_side1) amount1);
  mark_row t row

let payin t user =
  let row = row_of t user in
  ( U256.sub (get t row s_initial0) (get t row s_main0),
    U256.sub (get t row s_initial1) (get t row s_main1) )

let payout t user = side_balance t user

(* Aggregate balances across every account. Summed exactly in U256 —
   addition is associative, so row order cannot leak into the totals
   (the growth ledger folds them into deterministic output). *)
let totals t =
  let m0 = ref U256.zero and m1 = ref U256.zero in
  let s0 = ref U256.zero and s1 = ref U256.zero in
  for row = 0 to Slab.rows t.slab - 1 do
    m0 := U256.add !m0 (get t row s_main0);
    m1 := U256.add !m1 (get t row s_main1);
    s0 := U256.add !s0 (get t row s_side0);
    s1 := U256.add !s1 (get t row s_side1)
  done;
  ((!m0, !m1), (!s0, !s1))

let accounts t = Reg.count t.reg

(* First-marked order — deterministic (mark order follows the meta-block
   transaction order). The summary builder re-sorts by address anyway. *)
let candidate_users t = List.rev_map (Reg.key t.reg) t.cand_rows
let candidate_count t = List.length t.cand_rows

let mem t user =
  match Reg.find t.reg user with
  | Some row -> row < Slab.rows t.slab
  | None -> false


(* ------------------------------------------------------------------ *)
(* Audit surface                                                       *)
(* ------------------------------------------------------------------ *)

(* Read-only row image: unlike the accessors above this never interns
   the user, so the audit can probe arbitrary addresses without growing
   the table (or dirtying a fresh zero row). *)
let row_image t user =
  match Reg.find t.reg user with
  | Some row when row < Slab.rows t.slab -> Some (Slab.copy_row t.slab row)
  | _ -> None

let dirty_users t = List.map (Reg.key t.reg) (Slab.dirty_rows t.slab)
let dirty_rows t = Slab.dirty_count t.slab
let clear_dirty t = Slab.clear_dirty t.slab

let corrupt_bit t ~index ~bit =
  let rows = Slab.rows t.slab in
  if rows = 0 then None
  else begin
    let row = ((index mod rows) + rows) mod rows in
    Slab.corrupt_bit t.slab ~row ~bit;
    (* The corrupted row joins the summary candidates: the delta builder
       must see the same (bad) value the full-scan oracle would, so the
       divergence is caught by the twin, not masked by the filter. *)
    mark_row t row;
    Some (Reg.key t.reg row)
  end

(* ------------------------------------------------------------------ *)
(* Binary codec (durable snapshot section)                             *)
(* ------------------------------------------------------------------ *)

let to_bytes t =
  let n = Reg.count t.reg in
  let slab_bytes = Slab.to_bytes t.slab in
  let buf = Buffer.create (4 + (n * 20) + Bytes.length slab_bytes) in
  Buffer.add_int32_be buf (Int32.of_int n);
  Reg.iteri t.reg (fun _ u -> Buffer.add_bytes buf (Address.to_bytes u));
  Buffer.add_bytes buf slab_bytes;
  Buffer.to_bytes buf

let of_bytes b =
  let len = Bytes.length b in
  if len < 4 then Error "Deposits.of_bytes: truncated header"
  else begin
    let n = Int32.to_int (Bytes.get_int32_be b 0) in
    if n < 0 || 4 + (n * 20) > len then
      Error (Printf.sprintf "Deposits.of_bytes: implausible account count %d" n)
    else begin
      let slab_off = 4 + (n * 20) in
      match Slab.of_bytes (Bytes.sub b slab_off (len - slab_off)) with
      | Error e -> Error ("Deposits.of_bytes: slab: " ^ Slab.error_to_string e)
      | Ok slab ->
        if Slab.slots slab <> 6 then
          Error
            (Printf.sprintf "Deposits.of_bytes: expected 6 slots, got %d"
               (Slab.slots slab))
        else if Slab.rows slab <> n then
          Error
            (Printf.sprintf "Deposits.of_bytes: %d addresses but %d rows" n
               (Slab.rows slab))
        else begin
          let t =
            { reg = Reg.create ~capacity:(Stdlib.max 64 (2 * n)) (); slab;
              sorted = [||]; sorted_len = 0;
              cand_bits = Bytes.make (Stdlib.max 2 ((n / 8) + 1)) '\000';
              cand_rows = [] }
          in
          let ok = ref true in
          (try
             for i = 0 to n - 1 do
               let u = Address.of_bytes (Bytes.sub b (4 + (i * 20)) 20) in
               if Reg.intern t.reg u <> i then raise Exit;
               sorted_insert t u
             done
           with Exit | Invalid_argument _ -> ok := false);
          (* Candidate marks are not serialized; rebuild them from the
             rows themselves. A row restored with nonzero payin or payout
             was mutated after epoch start, which is exactly the
             candidate predicate — so a summary built after recovery
             matches one built on the uninterrupted path. *)
          if !ok then begin
            for row = n - 1 downto 0 do
              let nonzero slot_a slot_b =
                not (U256.equal (get t row slot_a) (get t row slot_b))
              in
              if
                nonzero s_initial0 s_main0 || nonzero s_initial1 s_main1
                || (not (U256.is_zero (get t row s_side0)))
                || not (U256.is_zero (get t row s_side1))
              then mark_row t row
            done;
            Ok t
          end
          else Error "Deposits.of_bytes: duplicate address"
        end
    end
  end
