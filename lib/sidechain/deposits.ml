module U256 = Amm_math.U256
module Address = Chain.Address

type account = {
  initial0 : U256.t;
  initial1 : U256.t;
  mutable main0 : U256.t;
  mutable main1 : U256.t;
  mutable side0 : U256.t;
  mutable side1 : U256.t;
}

type t = (Address.t, account) Hashtbl.t

type consumption = {
  from_main0 : U256.t;
  from_side0 : U256.t;
  from_main1 : U256.t;
  from_side1 : U256.t;
}

let create ~snapshot =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (user, (d0, d1)) ->
      Hashtbl.replace table user
        { initial0 = d0; initial1 = d1; main0 = d0; main1 = d1;
          side0 = U256.zero; side1 = U256.zero })
    snapshot;
  table

let empty_account () =
  { initial0 = U256.zero; initial1 = U256.zero; main0 = U256.zero; main1 = U256.zero;
    side0 = U256.zero; side1 = U256.zero }

let account t user =
  match Hashtbl.find_opt t user with
  | Some a -> a
  | None ->
    let a = empty_account () in
    Hashtbl.replace t user a;
    a

let known_users t = Hashtbl.fold (fun u _ acc -> u :: acc) t []

let available t user =
  let a = account t user in
  (U256.add a.main0 a.side0, U256.add a.main1 a.side1)

let main_remaining t user =
  let a = account t user in
  (a.main0, a.main1)

let side_balance t user =
  let a = account t user in
  (a.side0, a.side1)

let insufficient user reason =
  Telemetry.Log.debug ~scope:"deposits"
    ~fields:[ ("user", Telemetry.Json.String (Address.to_hex user)) ]
    reason;
  Error reason

let consume t user ~amount0 ~amount1 =
  let a = account t user in
  if U256.lt (U256.add a.main0 a.side0) amount0 then
    insufficient user "deposit: token0 not covered"
  else if U256.lt (U256.add a.main1 a.side1) amount1 then
    insufficient user "deposit: token1 not covered"
  else begin
    let split main amount =
      if U256.ge main amount then (amount, U256.zero)
      else (main, U256.sub amount main)
    in
    let from_main0, from_side0 = split a.main0 amount0 in
    let from_main1, from_side1 = split a.main1 amount1 in
    a.main0 <- U256.sub a.main0 from_main0;
    a.side0 <- U256.sub a.side0 from_side0;
    a.main1 <- U256.sub a.main1 from_main1;
    a.side1 <- U256.sub a.side1 from_side1;
    Ok { from_main0; from_side0; from_main1; from_side1 }
  end

let refund t user c =
  let a = account t user in
  a.main0 <- U256.add a.main0 c.from_main0;
  a.side0 <- U256.add a.side0 c.from_side0;
  a.main1 <- U256.add a.main1 c.from_main1;
  a.side1 <- U256.add a.side1 c.from_side1

let credit_side t user ~amount0 ~amount1 =
  let a = account t user in
  a.side0 <- U256.add a.side0 amount0;
  a.side1 <- U256.add a.side1 amount1

let payin t user =
  let a = account t user in
  (U256.sub a.initial0 a.main0, U256.sub a.initial1 a.main1)

let payout t user = side_balance t user

(* Aggregate balances across every account. Summed exactly in U256 —
   addition is associative, so Hashtbl iteration order cannot leak into
   the totals (the growth ledger folds them into deterministic output). *)
let totals t =
  let m0 = ref U256.zero and m1 = ref U256.zero in
  let s0 = ref U256.zero and s1 = ref U256.zero in
  Hashtbl.iter
    (fun _ a ->
      m0 := U256.add !m0 a.main0;
      m1 := U256.add !m1 a.main1;
      s0 := U256.add !s0 a.side0;
      s1 := U256.add !s1 a.side1)
    t;
  ((!m0, !m1), (!s0, !s1))

let accounts t = Hashtbl.length t
