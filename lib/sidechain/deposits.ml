module U256 = Amm_math.U256
module Address = Chain.Address

(* Accounts live in a flat slab, one row per user, six 32-byte slots:
   initial and remaining mainchain deposit plus the sidechain-accrued
   balance, per token. The user registry assigns rows in first-seen
   order, so the snapshot (already sorted — it comes from
   [Address.Map.bindings]) occupies a sorted prefix and only the few
   accounts auto-created mid-epoch land after it. *)

module Reg = Flatstore.Registry.Make (struct
  type t = Address.t

  let equal = Address.equal
  let hash a = Hashtbl.hash (Address.to_bytes a)
end)

module Slab = Flatstore.Slab

let s_initial0 = 0
let s_initial1 = 1
let s_main0 = 2
let s_main1 = 3
let s_side0 = 4
let s_side1 = 5

type t = {
  reg : Reg.t;
  slab : Slab.t;
  snapshot_rows : int;  (* rows [0, snapshot_rows) hold sorted snapshot users *)
}

type consumption = {
  from_main0 : U256.t;
  from_side0 : U256.t;
  from_main1 : U256.t;
  from_side1 : U256.t;
}

let rec is_sorted = function
  | (a, _) :: ((b, _) :: _ as rest) -> Address.compare a b < 0 && is_sorted rest
  | _ -> true

let create ~snapshot =
  let n = List.length snapshot in
  let reg = Reg.create ~capacity:(Stdlib.max 64 (2 * n)) () in
  let slab = Slab.create ~slots:6 ~capacity:(Stdlib.max 16 n) () in
  List.iter
    (fun (user, (d0, d1)) ->
      let row = Reg.intern reg user in
      let row' = Slab.alloc slab in
      assert (row = row');
      Slab.set_u256 slab ~row ~slot:s_initial0 d0;
      Slab.set_u256 slab ~row ~slot:s_initial1 d1;
      Slab.set_u256 slab ~row ~slot:s_main0 d0;
      Slab.set_u256 slab ~row ~slot:s_main1 d1)
    snapshot;
  (* SnapshotBank hands us [Address.Map.bindings], which is sorted; if a
     caller ever passes an unsorted list, treat every row as an "extra"
     so [users_sorted] falls back to a full sort. *)
  { reg; slab; snapshot_rows = (if is_sorted snapshot then Reg.count reg else 0) }

let row_of t user =
  let row = Reg.intern t.reg user in
  if row >= Slab.rows t.slab then ignore (Slab.alloc t.slab);
  row

let get t row slot = Slab.get_u256 t.slab ~row ~slot
let set t row slot v = Slab.set_u256 t.slab ~row ~slot v

let known_users t = Reg.fold t.reg ~init:[] ~f:(fun acc _ u -> u :: acc)

(* Ascending by address without a global sort: the snapshot prefix is
   already sorted, so only the (rare) accounts created after epoch start
   pay an O(k log k) sort before a linear merge. *)
let users_sorted t =
  let extras = ref [] in
  Reg.iteri t.reg (fun i u -> if i >= t.snapshot_rows then extras := u :: !extras);
  let extras = List.sort Address.compare !extras in
  let prefix = ref [] in
  Reg.iteri t.reg (fun i u -> if i < t.snapshot_rows then prefix := u :: !prefix);
  List.merge Address.compare (List.rev !prefix) extras

let available t user =
  let row = row_of t user in
  ( U256.add (get t row s_main0) (get t row s_side0),
    U256.add (get t row s_main1) (get t row s_side1) )

let main_remaining t user =
  let row = row_of t user in
  (get t row s_main0, get t row s_main1)

let side_balance t user =
  let row = row_of t user in
  (get t row s_side0, get t row s_side1)

let insufficient user reason =
  Telemetry.Log.debug ~scope:"deposits"
    ~fields:[ ("user", Telemetry.Json.String (Address.to_hex user)) ]
    reason;
  Error reason

let consume t user ~amount0 ~amount1 =
  let row = row_of t user in
  let main0 = get t row s_main0 and main1 = get t row s_main1 in
  let side0 = get t row s_side0 and side1 = get t row s_side1 in
  if U256.lt (U256.add main0 side0) amount0 then
    insufficient user "deposit: token0 not covered"
  else if U256.lt (U256.add main1 side1) amount1 then
    insufficient user "deposit: token1 not covered"
  else begin
    let split main amount =
      if U256.ge main amount then (amount, U256.zero)
      else (main, U256.sub amount main)
    in
    let from_main0, from_side0 = split main0 amount0 in
    let from_main1, from_side1 = split main1 amount1 in
    set t row s_main0 (U256.sub main0 from_main0);
    set t row s_side0 (U256.sub side0 from_side0);
    set t row s_main1 (U256.sub main1 from_main1);
    set t row s_side1 (U256.sub side1 from_side1);
    Ok { from_main0; from_side0; from_main1; from_side1 }
  end

let refund t user c =
  let row = row_of t user in
  set t row s_main0 (U256.add (get t row s_main0) c.from_main0);
  set t row s_side0 (U256.add (get t row s_side0) c.from_side0);
  set t row s_main1 (U256.add (get t row s_main1) c.from_main1);
  set t row s_side1 (U256.add (get t row s_side1) c.from_side1)

let credit_side t user ~amount0 ~amount1 =
  let row = row_of t user in
  set t row s_side0 (U256.add (get t row s_side0) amount0);
  set t row s_side1 (U256.add (get t row s_side1) amount1)

let payin t user =
  let row = row_of t user in
  ( U256.sub (get t row s_initial0) (get t row s_main0),
    U256.sub (get t row s_initial1) (get t row s_main1) )

let payout t user = side_balance t user

(* Aggregate balances across every account. Summed exactly in U256 —
   addition is associative, so row order cannot leak into the totals
   (the growth ledger folds them into deterministic output). *)
let totals t =
  let m0 = ref U256.zero and m1 = ref U256.zero in
  let s0 = ref U256.zero and s1 = ref U256.zero in
  for row = 0 to Slab.rows t.slab - 1 do
    m0 := U256.add !m0 (get t row s_main0);
    m1 := U256.add !m1 (get t row s_main1);
    s0 := U256.add !s0 (get t row s_side0);
    s1 := U256.add !s1 (get t row s_side1)
  done;
  ((!m0, !m1), (!s0, !s1))

let accounts t = Reg.count t.reg
