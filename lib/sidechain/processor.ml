module U256 = Amm_math.U256
module Tick_math = Amm_math.Tick_math
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id
module Tx = Chain.Tx
module Router = Uniswap.Router
module Pool = Uniswap.Pool
module Position = Uniswap.Position
module Sync_payload = Tokenbank.Sync_payload
module Log = Telemetry.Log

let scope = "processor"

type deleted_position = {
  del_id : Position_id.t;
  del_owner : Address.t;
  del_lower : int;
  del_upper : int;
}

type tap = label:string -> user:Address.t -> ok:bool -> unit

type t = {
  pool : Pool.t;
  deposits : Deposits.t;
  mutable tap : tap option;
      (* Fired after every transaction attempt, success or rejection —
         a rejected swap has already moved the pool (the router's
         slippage check runs after [Pool.swap]), so the observer must
         see those writes too. *)
  verify_signatures : bool;
  snapshot_positions : (Position_id.t, Sync_payload.position_entry) Hashtbl.t;
  carry : Position_id.t list;
      (* Positions reported by still-unapplied summaries of earlier
         epochs. The snapshot diffs against the bank's last *synced*
         state, so while syncs lag those positions stay "changed" even if
         this epoch never touches them — the pool's inclusion-time marks
         alone would miss them. *)
  user_carry : Address.t list;
      (* Users listed by still-unapplied summaries. Per-epoch user flows
         restart from zero each epoch, so unlike positions these can only
         re-enter the summary through fresh activity — but while syncs
         lag, the carry keeps the incremental builder considering them,
         guaranteeing it diffs a superset of what the full-scan oracle
         reports whatever the lag pattern. *)
  mutable deleted : deleted_position list;
  mutable processed : int;
  mutable swaps : int;
  mutable mints : int;
  mutable burns : int;
  mutable collects : int;
  wire_bytes : (string, int) Hashtbl.t; (* per class, processed txs only *)
  rejections : (string, int) Hashtbl.t;
  mutable rejected_total : int;
}

type stats = {
  processed : int;
  rejected : int;
  rejection_reasons : (string * int) list;
  swaps : int;
  mints : int;
  burns : int;
  collects : int;
  wire_bytes_by_class : (string * int) list; (* sorted by class *)
}

let begin_epoch ~pool ~snapshot ?(carry = []) ?(user_carry = []) ~verify_signatures () =
  let snapshot_positions = Hashtbl.create 64 in
  List.iter
    (fun (p : Sync_payload.position_entry) ->
      Hashtbl.replace snapshot_positions p.pos_id p)
    snapshot.Tokenbank.Token_bank.snap_positions;
  (* The epoch's change set starts empty: from here on the pool marks
     every position this epoch touches. *)
  Pool.epoch_reset pool;
  { pool;
    deposits = Deposits.create ~snapshot:snapshot.Tokenbank.Token_bank.snap_deposits;
    tap = None;
    verify_signatures; snapshot_positions; carry; user_carry; deleted = [];
    processed = 0; swaps = 0; mints = 0; burns = 0; collects = 0;
    wire_bytes = Hashtbl.create 4;
    rejections = Hashtbl.create 8; rejected_total = 0 }

let pool t = t.pool
let deposits t = t.deposits
let set_tap t tap = t.tap <- Some tap

let ( let* ) = Result.bind

let reject t ~tx reason =
  t.rejected_total <- t.rejected_total + 1;
  Hashtbl.replace t.rejections reason
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.rejections reason));
  Log.debug ~scope
    ~fields:
      [ ("reason", Telemetry.Json.String reason);
        ("issuer", Telemetry.Json.String (Address.to_hex tx.Tx.issuer));
        ("issued_round", Telemetry.Json.Int tx.Tx.issued_round) ]
    "transaction rejected";
  Error reason

let needed_amounts ~zero_for_one amount =
  if zero_for_one then (amount, U256.zero) else (U256.zero, amount)

let covered t user ~amount0 ~amount1 =
  let a0, a1 = Deposits.available t.deposits user in
  U256.ge a0 amount0 && U256.ge a1 amount1

let consume_exn t user ~amount0 ~amount1 =
  match Deposits.consume t.deposits user ~amount0 ~amount1 with
  | Ok _ -> ()
  | Error e ->
    (* Coverage was pre-checked; failure here is a processor bug. *)
    failwith ("Processor.consume: " ^ e)

let record_deletion t (position : Position.t) =
  t.deleted <-
    { del_id = position.Position.id; del_owner = position.Position.owner;
      del_lower = position.Position.lower_tick; del_upper = position.Position.upper_tick }
    :: t.deleted

let process_swap t (tx : Tx.t) (s : Tx.swap) =
  let user = tx.Tx.issuer in
  match s.Tx.kind with
  | Tx.Exact_input ->
    let amount0, amount1 = needed_amounts ~zero_for_one:s.Tx.zero_for_one s.Tx.amount_specified in
    if not (covered t user ~amount0 ~amount1) then Error "swap: deposit not covered"
    else
      let price_limit =
        if U256.is_zero s.Tx.sqrt_price_limit then None else Some s.Tx.sqrt_price_limit
      in
      let* outcome =
        Router.exact_input t.pool ~zero_for_one:s.Tx.zero_for_one
          ~amount_in:s.Tx.amount_specified ~min_amount_out:s.Tx.amount_limit
          ?sqrt_price_limit:price_limit ()
      in
      consume_exn t user ~amount0 ~amount1;
      let out0, out1 = needed_amounts ~zero_for_one:(not s.Tx.zero_for_one) outcome.Router.received in
      Deposits.credit_side t.deposits user ~amount0:out0 ~amount1:out1;
      Ok ()
  | Tx.Exact_output ->
    (* Reserve the slippage bound (max input); consume what was spent. *)
    let max0, max1 = needed_amounts ~zero_for_one:s.Tx.zero_for_one s.Tx.amount_limit in
    if not (covered t user ~amount0:max0 ~amount1:max1) then
      Error "swap: deposit not covered"
    else
      let price_limit =
        if U256.is_zero s.Tx.sqrt_price_limit then None else Some s.Tx.sqrt_price_limit
      in
      let* outcome =
        Router.exact_output t.pool ~zero_for_one:s.Tx.zero_for_one
          ~amount_out:s.Tx.amount_specified ~max_amount_in:s.Tx.amount_limit
          ?sqrt_price_limit:price_limit ()
      in
      let in0, in1 = needed_amounts ~zero_for_one:s.Tx.zero_for_one outcome.Router.spent in
      consume_exn t user ~amount0:in0 ~amount1:in1;
      let out0, out1 = needed_amounts ~zero_for_one:(not s.Tx.zero_for_one) outcome.Router.received in
      Deposits.credit_side t.deposits user ~amount0:out0 ~amount1:out1;
      Ok ()

let process_mint t (tx : Tx.t) (m : Tx.mint) =
  let user = tx.Tx.issuer in
  if not (covered t user ~amount0:m.Tx.amount0_desired ~amount1:m.Tx.amount1_desired) then
    Error "mint: deposit not covered"
  else begin
    let position_id =
      match m.Tx.target with
      | Tx.New_position -> Position.derive_id ~minter:user ~tx_id:tx.Tx.id
      | Tx.Existing_position pid -> pid
    in
    (* Supplementing an existing position requires issuer = owner; the
       added liquidity lands on the position's own range ("an existing
       position will receive an increase in its balance", §4.2). *)
    let* lower_tick, upper_tick =
      match m.Tx.target with
      | Tx.New_position -> Ok (m.Tx.lower_tick, m.Tx.upper_tick)
      | Tx.Existing_position pid ->
        (match Pool.find_position t.pool pid with
        | None -> Error "mint: unknown position"
        | Some p ->
          if Address.equal p.Position.owner user then
            Ok (p.Position.lower_tick, p.Position.upper_tick)
          else Error "mint: not the position owner")
    in
    let* outcome =
      Router.mint t.pool ~position_id ~owner:user ~lower_tick ~upper_tick
        ~amount0_desired:m.Tx.amount0_desired ~amount1_desired:m.Tx.amount1_desired
    in
    consume_exn t user ~amount0:outcome.Router.amount0_used
      ~amount1:outcome.Router.amount1_used;
    Ok ()
  end

let process_burn t (tx : Tx.t) (b : Tx.burn) =
  let user = tx.Tx.issuer in
  let before = Pool.find_position t.pool b.Tx.burn_position in
  let* outcome =
    Router.burn t.pool ~position_id:b.Tx.burn_position ~caller:user
      ~amount0_requested:b.Tx.amount0_requested ~amount1_requested:b.Tx.amount1_requested
  in
  (* Withdrawn principal is paid into the sidechain deposit right away
     (§4.2 burn summary rules): pull it out of the pool's owed bucket. *)
  let* paid0, paid1 =
    Pool.collect t.pool ~position_id:b.Tx.burn_position
      ~amount0_requested:outcome.Router.amount0_owed
      ~amount1_requested:outcome.Router.amount1_owed
  in
  Deposits.credit_side t.deposits user ~amount0:paid0 ~amount1:paid1;
  (* A fully withdrawn position pays its remaining fees into the LP's
     payout and disappears ("if a deleted position has fees owed to it,
     the owner LP will receive these fees as part of her total payout"). *)
  let* () =
    match Pool.find_position t.pool b.Tx.burn_position with
    | Some p when U256.is_zero p.Position.liquidity ->
      let* fees0, fees1 =
        Pool.collect t.pool ~position_id:b.Tx.burn_position
          ~amount0_requested:U256.max_value ~amount1_requested:U256.max_value
      in
      Deposits.credit_side t.deposits user ~amount0:fees0 ~amount1:fees1;
      Ok ()
    | Some _ | None -> Ok ()
  in
  (if Pool.find_position t.pool b.Tx.burn_position = None then
     match before with Some p -> record_deletion t p | None -> ());
  Ok ()

let process_collect t (tx : Tx.t) (c : Tx.collect) =
  let user = tx.Tx.issuer in
  let before = Pool.find_position t.pool c.Tx.collect_position in
  let* outcome =
    Router.collect t.pool ~position_id:c.Tx.collect_position ~caller:user
      ~amount0_requested:c.Tx.fees0_requested ~amount1_requested:c.Tx.fees1_requested
  in
  Deposits.credit_side t.deposits user ~amount0:outcome.Router.collected0
    ~amount1:outcome.Router.collected1;
  (if outcome.Router.position_deleted then
     match before with Some p -> record_deletion t p | None -> ());
  Ok ()

let process t ~current_round (tx : Tx.t) =
  let result =
    let* () =
      if t.verify_signatures && not (Tx.verify_signature tx) then
        Error "invalid signature"
      else Ok ()
    in
    match tx.Tx.payload with
    | Tx.Swap s ->
      let* () =
        if current_round > s.Tx.deadline then Error "swap: deadline passed" else Ok ()
      in
      process_swap t tx s
    | Tx.Mint m -> process_mint t tx m
    | Tx.Burn b -> process_burn t tx b
    | Tx.Collect c -> process_collect t tx c
  in
  let outcome =
    match result with
    | Ok () ->
      t.processed <- t.processed + 1;
      (match tx.Tx.payload with
      | Tx.Swap _ -> t.swaps <- t.swaps + 1
      | Tx.Mint _ -> t.mints <- t.mints + 1
      | Tx.Burn _ -> t.burns <- t.burns + 1
      | Tx.Collect _ -> t.collects <- t.collects + 1);
      let cls = Tx.type_name tx.Tx.payload in
      Hashtbl.replace t.wire_bytes cls
        (tx.Tx.wire_size
        + Option.value ~default:0 (Hashtbl.find_opt t.wire_bytes cls));
      Ok ()
    | Error reason -> reject t ~tx reason
  in
  (match t.tap with
  | Some f ->
    f ~label:(Tx.type_name tx.Tx.payload) ~user:tx.Tx.issuer
      ~ok:(Result.is_ok outcome)
  | None -> ());
  outcome

let stats (t : t) =
  { processed = t.processed; rejected = t.rejected_total;
    rejection_reasons = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.rejections [];
    swaps = t.swaps; mints = t.mints; burns = t.burns; collects = t.collects;
    wire_bytes_by_class =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.wire_bytes []) }

(* ------------------------------------------------------------------ *)
(* Summary construction (Fig. 5)                                       *)
(* ------------------------------------------------------------------ *)

let position_entry_of t (p : Position.t) =
  let sqrt_a = Tick_math.get_sqrt_ratio_at_tick p.Position.lower_tick in
  let sqrt_b = Tick_math.get_sqrt_ratio_at_tick p.Position.upper_tick in
  let amount0, amount1 =
    Amm_math.Liquidity_math.get_amounts_for_liquidity
      ~sqrt_price:(Pool.sqrt_price t.pool) ~sqrt_a ~sqrt_b ~liquidity:p.Position.liquidity
  in
  { Sync_payload.pos_id = p.Position.id; owner = p.Position.owner;
    lower_tick = p.Position.lower_tick; upper_tick = p.Position.upper_tick;
    liquidity = p.Position.liquidity; amount0; amount1;
    fees0 = p.Position.tokens_owed0; fees1 = p.Position.tokens_owed1;
    deleted = false }

let entry_changed (a : Sync_payload.position_entry) (b : Sync_payload.position_entry) =
  not
    (U256.equal a.liquidity b.liquidity
    && U256.equal a.fees0 b.fees0
    && U256.equal a.fees1 b.fees1
    && U256.equal a.amount0 b.amount0
    && U256.equal a.amount1 b.amount1)

let user_entry t user =
  let payin0, payin1 = Deposits.payin t.deposits user in
  let payout0, payout1 = Deposits.payout t.deposits user in
  { Sync_payload.user; payin0; payin1; payout0; payout1 }

(* The deposit table is rebuilt from the bank snapshot at epoch start,
   so every account's begin-epoch entry is the zero entry: "changed
   since the snapshot" and "nonzero" are the same predicate. *)
let user_entry_nonzero (u : Sync_payload.user_entry) =
  not
    (U256.is_zero u.Sync_payload.payin0
    && U256.is_zero u.Sync_payload.payin1
    && U256.is_zero u.Sync_payload.payout0
    && U256.is_zero u.Sync_payload.payout1)

let finish_payload t ~epoch ~next_committee_vk ~users ~touched =
  let deletions =
    t.deleted
    |> List.filter (fun d -> Pool.find_position t.pool d.del_id = None)
    |> List.map (fun d ->
           { Sync_payload.pos_id = d.del_id; owner = d.del_owner;
             lower_tick = d.del_lower; upper_tick = d.del_upper;
             liquidity = U256.zero; amount0 = U256.zero; amount1 = U256.zero;
             fees0 = U256.zero; fees1 = U256.zero; deleted = true })
  in
  let positions =
    (touched @ deletions)
    |> List.sort (fun a b ->
           Position_id.compare a.Sync_payload.pos_id b.Sync_payload.pos_id)
  in
  Log.info ~scope
    ~fields:
      [ ("epoch", Telemetry.Json.Int epoch);
        ("users", Telemetry.Json.Int (List.length users));
        ("positions", Telemetry.Json.Int (List.length positions));
        ("deleted", Telemetry.Json.Int (List.length deletions));
        ("processed", Telemetry.Json.Int t.processed);
        ("rejected", Telemetry.Json.Int t.rejected_total) ]
    "epoch summary payload built";
  { Sync_payload.epoch; pool = Pool.pool_id t.pool;
    pool_balance0 = Pool.balance0 t.pool; pool_balance1 = Pool.balance1 t.pool;
    users; positions; next_committee_vk }

let build_payload_reference t ~epoch ~next_committee_vk =
  (* Full scan off the incrementally-sorted index (already ascending —
     no re-sort), reporting every account whose flows moved this epoch.
     Zero entries are omitted: they carry no value movement, and the
     bank settles unlisted residual deposits in aggregate. *)
  let users =
    Deposits.users_sorted t.deposits
    |> List.filter_map (fun u ->
           let entry = user_entry t u in
           if user_entry_nonzero entry then Some entry else None)
  in
  (* Refresh fee accounting, then report every position that is new or
     changed since the snapshot, plus deletions. *)
  let touched =
    Pool.positions t.pool
    |> List.filter_map (fun p ->
           (match Pool.touch_position t.pool p.Position.id with
           | Ok () -> ()
           | Error _ -> ());
           let entry = position_entry_of t p in
           match Hashtbl.find_opt t.snapshot_positions p.Position.id with
           | Some old when not (entry_changed old entry) -> None
           | Some _ | None -> Some entry)
  in
  finish_payload t ~epoch ~next_committee_vk ~users ~touched

let build_payload t ~epoch ~next_committee_vk =
  (* Only users a balance mutation marked this epoch — plus the carry
     from unapplied earlier summaries — can have nonzero flows; diff
     those instead of walking every account. Sorting the candidates
     (O(active log active)) reproduces the reference's ascending order. *)
  let seen_users = Hashtbl.create 256 in
  let consider_user acc user =
    if Hashtbl.mem seen_users user || not (Deposits.mem t.deposits user) then acc
    else begin
      Hashtbl.replace seen_users user ();
      let entry = user_entry t user in
      if user_entry_nonzero entry then entry :: acc else acc
    end
  in
  let users =
    List.fold_left consider_user
      (List.fold_left consider_user [] (Deposits.candidate_users t.deposits))
      t.user_carry
    |> List.sort (fun a b -> Address.compare a.Sync_payload.user b.Sync_payload.user)
  in
  (* Only positions the pool marked this epoch — plus the carry from
     unapplied earlier summaries — can differ from the snapshot; touch
     and diff those instead of scanning the whole table. *)
  let seen = Hashtbl.create 256 in
  let consider acc pid =
    if Hashtbl.mem seen pid then acc
    else begin
      Hashtbl.replace seen pid ();
      match Pool.find_position t.pool pid with
      | None -> acc
      | Some p ->
        (match Pool.touch_position t.pool pid with
        | Ok () -> ()
        | Error _ -> ());
        let entry = position_entry_of t p in
        (match Hashtbl.find_opt t.snapshot_positions pid with
        | Some old when not (entry_changed old entry) -> acc
        | Some _ | None -> entry :: acc)
    end
  in
  let touched =
    List.fold_left consider
      (List.fold_left consider [] (Pool.epoch_candidates t.pool))
      t.carry
  in
  finish_payload t ~epoch ~next_committee_vk ~users ~touched
