module Pbft = Consensus.Pbft

type t = {
  rng : Amm_crypto.Rng.t;
  members : int;
  max_faulty : int;
  delta : float;
  timeout : float;
}

type round_outcome = {
  decided : bool;
  latency : float;
  view_changes : int;
}

let create ~rng ~members ~max_faulty ~delta ~timeout =
  if members < (3 * max_faulty) + 1 then
    invalid_arg "Committee.create: need members >= 3f+1";
  { rng; members; max_faulty; delta; timeout }

let members t = t.members
let max_faulty t = t.max_faulty

let agree ?(silent = []) ?(invalid_proposer = false) ?chaos t ~block_digest ~horizon =
  let behaviors = Array.make t.members Pbft.Honest in
  List.iter
    (fun i -> if i >= 0 && i < t.members then behaviors.(i) <- Pbft.Silent)
    silent;
  if invalid_proposer && behaviors.(0) = Pbft.Honest then
    behaviors.(0) <- Pbft.Propose_invalid;
  let cfg =
    { Pbft.n = t.members; f = t.max_faulty; behaviors; delta = t.delta;
      timeout = t.timeout; max_time = horizon }
  in
  let o = Pbft.run ~rng:t.rng ?chaos cfg ~value:block_digest in
  let decided = Pbft.all_honest_decided cfg o && Pbft.honest_agreement cfg o in
  let latency =
    Array.fold_left
      (fun acc -> function Some (_, at) -> Float.max acc at | None -> acc)
      0.0 o.Pbft.decisions
  in
  { decided; latency; view_changes = o.Pbft.total_view_changes }
