(** The epoch processing engine the elected committee runs: validates and
    executes sidechain transactions against the pool state using the
    unchanged AMM logic, maintains the dual deposits, and accumulates
    everything needed to build the epoch's summary (§4.2).

    Transactions are accepted only when the issuer's deposits cover them
    (mainchain snapshot first, then sidechain-accrued), signatures verify
    (when enabled), deadlines have not passed, and position operations
    come from the owner. *)

module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id

type t

type stats = {
  processed : int;
  rejected : int;
  rejection_reasons : (string * int) list;
  swaps : int;
  mints : int;
  burns : int;
  collects : int;
  wire_bytes_by_class : (string * int) list;
      (** Cumulative wire bytes of processed transactions per class
          ("swap", "mint", ...), sorted by class name. *)
}

val begin_epoch :
  pool:Uniswap.Pool.t ->
  snapshot:Tokenbank.Token_bank.snapshot ->
  ?carry:Position_id.t list ->
  ?user_carry:Address.t list ->
  verify_signatures:bool ->
  unit ->
  t
(** Starts an epoch from the TokenBank snapshot (deposit balances; the
    committee's pool object carries the full tick/position state, which
    the permanent summary-blocks let anyone audit). Resets the pool's
    epoch change-tracking set.

    [carry] lists the positions reported by summaries the bank has not
    yet applied (sync lag): the snapshot reflects the last {e synced}
    state, so those positions must be re-diffed even when this epoch
    never touches them. [user_carry] is the analogous set of users those
    summaries listed; the incremental builder re-diffs them alongside
    the epoch's own candidate marks. *)

val pool : t -> Uniswap.Pool.t
val deposits : t -> Deposits.t

type tap = label:string -> user:Address.t -> ok:bool -> unit
(** A per-transaction observer: [label] is the transaction class
    ("swap", "mint", ...), [user] the issuer, [ok] whether it was
    accepted. Fired after {e every} attempt — a rejected swap has
    already moved the pool (the router checks slippage after the swap
    executes), so write-tracking observers need rejected attempts too. *)

val set_tap : t -> tap -> unit
(** Installs the observer (the state twin's op-capture hook). The tap
    must not mutate pool or deposit state. *)

val process : t -> current_round:int -> Chain.Tx.t -> (unit, string) result
(** Validates and executes one transaction; [Error] is a rejection (the
    transaction is dropped, state unchanged). *)

val stats : t -> stats

val build_payload :
  t -> epoch:int -> next_committee_vk:Amm_crypto.Bls.public_key ->
  Tokenbank.Sync_payload.t
(** The epoch summary: one entry per depositor {e with nonzero flows}
    (payin = consumed mainchain deposit, payout = accrued sidechain
    deposit), the updated or deleted positions, and the updated pool
    balances. The bank refunds the deposits of unlisted users in
    aggregate when it applies the summary.

    O(Δ) on both axes: drains the deposit table's balance-mutation
    candidate marks and the pool's inclusion-time change marks (plus
    the two carry sets) instead of rescanning every account and open
    position — byte-identical to {!build_payload_reference}
    (property-tested). *)

val build_payload_reference :
  t -> epoch:int -> next_committee_vk:Amm_crypto.Bls.public_key ->
  Tokenbank.Sync_payload.t
(** The full-scan summary builder (O(accounts) + O(positions)) the
    incremental {!build_payload} must agree with — kept as the
    auditor's oracle. *)
