(** Dual per-user deposit tracking for one epoch (§4.2): the mainchain
    deposit snapshot taken at epoch start, and the sidechain-accrued
    deposit (swap outputs, burn proceeds, collected fees) usable
    immediately within the epoch. Consumption drains the mainchain
    deposit first, then the sidechain one; at epoch end the payin is the
    consumed mainchain amount and the payout is the accrued sidechain
    balance. *)

module U256 = Amm_math.U256
module Address = Chain.Address

type t

type consumption = {
  from_main0 : U256.t;
  from_side0 : U256.t;
  from_main1 : U256.t;
  from_side1 : U256.t;
}

val create : snapshot:(Address.t * (U256.t * U256.t)) list -> t
(** Loads the epoch-start mainchain deposits (SnapshotBank). *)

val known_users : t -> Address.t list

val users_sorted : t -> Address.t list
(** Every tracked user in ascending address order. The epoch-start
    snapshot occupies a sorted prefix of the flat store, so this merges
    it with the few mid-epoch accounts instead of sorting everything. *)


val available : t -> Address.t -> U256.t * U256.t
(** Total spendable (main + side) per token. *)

val main_remaining : t -> Address.t -> U256.t * U256.t
val side_balance : t -> Address.t -> U256.t * U256.t

val consume :
  t -> Address.t -> amount0:U256.t -> amount1:U256.t -> (consumption, string) result
(** Atomically consumes both token amounts (mainchain first); fails
    without any change when either is uncovered. *)

val refund : t -> Address.t -> consumption -> unit
(** Returns a consumption (e.g. a rejected trade) to where it came from. *)

val credit_side : t -> Address.t -> amount0:U256.t -> amount1:U256.t -> unit

val payin : t -> Address.t -> U256.t * U256.t
(** Mainchain deposit consumed so far (initial − remaining). *)

val payout : t -> Address.t -> U256.t * U256.t
(** Current sidechain deposit — what the user receives at sync. *)

val totals : t -> (U256.t * U256.t) * (U256.t * U256.t)
(** [((main0, main1), (side0, side1))] summed over every account —
    exact U256 sums, independent of iteration order. *)

val accounts : t -> int
(** Number of tracked accounts this epoch. *)

val mem : t -> Address.t -> bool
(** Whether the user already has an account row. Pure: never interns. *)

val candidate_users : t -> Address.t list
(** Users marked by a balance mutation ({!consume}, {!refund},
    {!credit_side}, {!corrupt_bit}) since epoch start, in first-marked
    order — the only accounts whose summary entry can be nonzero. A
    superset of the entries the summary reports (a consume+refund pair
    nets to zero); the builder still diffs each candidate. Unrelated to
    the twin's slab dirty marks, which are cleared mid-epoch. *)

val candidate_count : t -> int

(** {1 Audit surface}

    The twin's differential audit compares exactly the rows written
    since the last {!clear_dirty} — O(dirty), not O(accounts). *)

val row_image : t -> Address.t -> bytes option
(** The user's raw 192-byte account row; [None] for a user with no row
    yet. Pure: never allocates a row. *)

val dirty_users : t -> Address.t list
(** Users whose rows were written since the last {!clear_dirty}, in row
    (first-seen) order — deterministic across runs. *)

val dirty_rows : t -> int
val clear_dirty : t -> unit

val corrupt_bit : t -> index:int -> bit:int -> Address.t option
(** Flips one bit in the row selected by [index mod accounts] (fault
    injection); returns the affected user, or [None] on an empty table.
    The row is marked dirty — corruption hits the same audit surface as
    a legitimate write. *)

(** {1 Binary codec}

    [count : u32be][addresses, row order][slab codec] — the whole
    account table, durable-snapshot ready. Decode rebuilds the registry
    and the sorted index; re-encoding is byte-identical. *)

val to_bytes : t -> bytes

val of_bytes : bytes -> (t, string) result
(** Total: malformed buffers (bad counts, truncated slab, duplicate
    addresses) come back as [Error]. *)
