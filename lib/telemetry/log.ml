(* Leveled structured logger: one JSON object per line on stderr so that
   stdout reports and piped metrics stay clean. Disabled by default —
   enable with AMMBOOST_LOG=<level> or [set_level]. Simulated time is
   attached by the caller via ~t (there is no global simulation clock). *)

type level = Error | Warn | Info | Debug

let rank = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" | "trace" -> Some Debug
  | _ -> None (* includes "off"/"none"/garbage: stay silent *)

let current : level option ref = ref None
let env_read = ref false
let out_channel = ref stderr

let effective () =
  if not !env_read then begin
    env_read := true;
    match Sys.getenv_opt "AMMBOOST_LOG" with
    | Some s -> current := level_of_string s
    | None -> ()
  end;
  !current

let set_level l =
  env_read := true;
  current := l

let set_channel ch = out_channel := ch

let enabled lvl =
  match effective () with None -> false | Some l -> rank lvl <= rank l

(* Simulator runs may log from several domains at once; serialize the
   write+flush so JSON lines never interleave mid-line. *)
let emit_mutex = Mutex.create ()

let emit lvl ~scope ?t ?(fields = []) msg =
  if enabled lvl then begin
    let base =
      [ ("lvl", Json.String (level_name lvl)); ("scope", Json.String scope) ]
    in
    let time = match t with Some t -> [ ("t", Json.Float t) ] | None -> [] in
    let line =
      Json.obj_of_fields (base @ time @ (("msg", Json.String msg) :: fields))
    in
    Mutex.lock emit_mutex;
    output_string !out_channel (line ^ "\n");
    flush !out_channel;
    Mutex.unlock emit_mutex
  end

let error ~scope ?t ?fields msg = emit Error ~scope ?t ?fields msg
let warn ~scope ?t ?fields msg = emit Warn ~scope ?t ?fields msg
let info ~scope ?t ?fields msg = emit Info ~scope ?t ?fields msg
let debug ~scope ?t ?fields msg = emit Debug ~scope ?t ?fields msg
