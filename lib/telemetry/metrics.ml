(* Named-series registry: counters, gauges, and histograms, get-or-create
   by name. Snapshots sort series by name, so two identical runs produce
   byte-identical JSON / Prometheus dumps regardless of registration or
   Hashtbl iteration order. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

(* Append-only (t, value) points, newest first internally. Merging
   appends [src]'s points after [into]'s, so sinks merged in submission
   order reproduce a sequential run's series exactly — the growth
   ledger's per-epoch samples ride on this for the -j determinism
   guarantee. *)
type timeseries = { ts_name : string; mutable ts_rev_points : (float * float) list }

type series =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Histogram.t
  | Series of timeseries

type t = { table : (string, series) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let find_or_add t name make =
  match Hashtbl.find_opt t.table name with
  | Some s -> s
  | None ->
    let s = make () in
    Hashtbl.add t.table name s;
    s

let kind_error name = failwith ("Metrics: series kind mismatch for " ^ name)

let counter t name =
  match find_or_add t name (fun () -> Counter { c_name = name; c_value = 0 }) with
  | Counter c -> c
  | Gauge _ | Histogram _ | Series _ -> kind_error name

let gauge t name =
  match find_or_add t name (fun () -> Gauge { g_name = name; g_value = 0.0 }) with
  | Gauge g -> g
  | Counter _ | Histogram _ | Series _ -> kind_error name

let histogram ?buckets_per_decade t name =
  match
    find_or_add t name (fun () -> Histogram (Histogram.create ?buckets_per_decade ()))
  with
  | Histogram h -> h
  | Counter _ | Gauge _ | Series _ -> kind_error name

let time_series t name =
  match
    find_or_add t name (fun () -> Series { ts_name = name; ts_rev_points = [] })
  with
  | Series s -> s
  | Counter _ | Gauge _ | Histogram _ -> kind_error name

let inc ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value
let set g v = g.g_value <- v
let add_gauge g v = g.g_value <- g.g_value +. v
let gauge_value g = g.g_value
let push ts ~t v = ts.ts_rev_points <- (t, v) :: ts.ts_rev_points
let series_points ts = List.rev ts.ts_rev_points

(* Histograms looked up without creating — report renderers walk the
   registry read-only. *)
let find_histogram t name =
  match Hashtbl.find_opt t.table name with Some (Histogram h) -> Some h | _ -> None

let find_series t name =
  match Hashtbl.find_opt t.table name with Some (Series s) -> Some s | _ -> None

(* Convenience: record into a histogram looked up by name. *)
let observe t name v = Histogram.observe (histogram t name) v

let series_count t = Hashtbl.length t.table

(* Merge [src] into [into]: counters add, gauges take [src]'s value
   (merging sinks in submission order then matches a sequential run's
   last-write-wins), histograms merge bucket-exact. Series are visited
   in name order so the operation is deterministic. *)
let merge_into ~into src =
  let sorted =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) src.table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, s) ->
      match s with
      | Counter c -> inc ~by:c.c_value (counter into name)
      | Gauge g -> set (gauge into name) g.g_value
      | Histogram h ->
        Histogram.merge_into
          ~into:
            (histogram ~buckets_per_decade:(Histogram.buckets_per_decade h) into
               name)
          h
      | Series s ->
        let dst = time_series into name in
        dst.ts_rev_points <- s.ts_rev_points @ dst.ts_rev_points)
    sorted

let sorted_series t =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json_string t =
  let entry (name, s) =
    let body =
      match s with
      | Counter c ->
        Json.obj [ ("type", Json.string "counter"); ("value", string_of_int c.c_value) ]
      | Gauge g ->
        Json.obj [ ("type", Json.string "gauge"); ("value", Json.float g.g_value) ]
      | Histogram h ->
        Json.obj
          (("type", Json.string "histogram")
          :: List.map (fun (k, v) -> (k, Json.value v)) (Histogram.snapshot_fields h))
      | Series ts ->
        Json.obj
          [ ("type", Json.string "series");
            ("points",
             Json.array
               (List.map
                  (fun (t, v) -> Json.array [ Json.float t; Json.float v ])
                  (series_points ts))) ]
    in
    Json.string name ^ ": " ^ body
  in
  "{" ^ String.concat ", " (List.map entry (sorted_series t)) ^ "}\n"

(* Prometheus text exposition. Series names become metric names with
   dots mapped to underscores; histograms export count/sum/quantiles. *)
let to_prometheus t =
  let mangle name =
    String.map (fun c -> if c = '.' || c = '-' then '_' else c) name
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, s) ->
      let n = mangle name in
      match s with
      | Counter c ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n c.c_value)
      | Gauge g ->
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (Json.float g.g_value))
      | Histogram h ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
        List.iter
          (fun q ->
            Buffer.add_string buf
              (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n (Json.float q)
                 (Json.float (Histogram.quantile h q))))
          [ 0.5; 0.9; 0.99 ];
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %s\n%s_count %d\n" n
             (Json.float (Histogram.sum h)) n (Histogram.count h))
      | Series ts ->
        (* Prometheus has no native series type; expose the last sample
           as a gauge (scrapes see the current value). *)
        let last =
          match ts.ts_rev_points with (_, v) :: _ -> v | [] -> 0.0
        in
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (Json.float last)))
    (sorted_series t);
  Buffer.contents buf
