(** Stop-the-world GC pause observation via the OCaml 5 runtime-events
    ring (self-monitoring cursor). {!start} once, then {!poll} at each
    measurement boundary: every sample covers exactly the interval since
    the previous poll. Counts minor collections and major slices as
    delimited by the runtime's own begin/end phase events. *)

type t

val start : unit -> t
(** Enables runtime events for the current process and attaches a
    self-monitoring cursor. Safe to call once per process; the runtime
    keeps emitting into the same ring afterwards. *)

type sample = {
  pauses : int;        (** minor collections + major slices observed *)
  total_ns : int64;    (** summed pause time *)
  max_ns : int64;      (** longest single pause *)
}

val poll : t -> sample
(** Drains the ring and returns the pauses observed since the last
    [poll] (or since {!start}), resetting the interval accumulators. *)
