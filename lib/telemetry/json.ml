(* Minimal deterministic JSON emission shared by the telemetry modules.
   Output is byte-stable for identical inputs: fields keep insertion
   order, floats use a fixed format, and no locale/time state leaks in. *)

type field =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let string s = "\"" ^ escape s ^ "\""

(* JSON has no NaN/Infinity; clamp them so output always parses. *)
let float f =
  if Float.is_nan f then "0"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let value = function
  | String s -> string s
  | Int i -> string_of_int i
  | Float f -> float f
  | Bool b -> if b then "true" else "false"

let obj fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> string k ^ ": " ^ v) fields)
  ^ "}"

let obj_of_fields fields = obj (List.map (fun (k, v) -> (k, value v)) fields)
let array items = "[" ^ String.concat ", " items ^ "]"

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* A small recursive-descent parser, enough to read back what the
   emitters above write (benchmark results, metrics snapshots) plus
   standard JSON from other tools. Numbers all land in [Jnumber] as
   floats, which is exact for the integer ranges we emit. *)

type value =
  | Jnull
  | Jbool of bool
  | Jnumber of float
  | Jstring of string
  | Jarray of value list
  | Jobject of (string * value) list

exception Parse_error of string

let parse (s : string) : (value, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | None -> fail "bad \\u escape"
    | Some v ->
      pos := !pos + 4;
      v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "truncated escape";
         (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'u' ->
           advance ();
           let v = parse_hex4 () in
           (* Non-ASCII code points re-encode as UTF-8; the emitter only
              escapes control characters, so this path is rare. *)
           if v < 0x80 then Buffer.add_char b (Char.chr v)
           else if v < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (v lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (v land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (v lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (v land 0x3F)))
           end
         | c -> fail (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
         | _ -> false)
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Jstring (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobject []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Jobject (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jarray []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Jarray (items [])
      end
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some ('-' | '0' .. '9') -> Jnumber (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Jobject fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Printing parsed values                                              *)
(* ------------------------------------------------------------------ *)

(* Prints a [value] back with the same conventions as the emitters above
   (field order preserved, floats via [float]), so a parse/print pair
   roundtrips: [parse (to_string v) = Ok v] for any [v] whose numbers
   survive the float format (see the fixpoint note in the tests). *)
let rec to_string = function
  | Jnull -> "null"
  | Jbool b -> if b then "true" else "false"
  | Jnumber f -> float f
  | Jstring s -> string s
  | Jarray items -> array (List.map to_string items)
  | Jobject fields -> obj (List.map (fun (k, v) -> (k, to_string v)) fields)
