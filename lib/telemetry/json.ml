(* Minimal deterministic JSON emission shared by the telemetry modules.
   Output is byte-stable for identical inputs: fields keep insertion
   order, floats use a fixed format, and no locale/time state leaks in. *)

type field =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let string s = "\"" ^ escape s ^ "\""

(* JSON has no NaN/Infinity; clamp them so output always parses. *)
let float f =
  if Float.is_nan f then "0"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let value = function
  | String s -> string s
  | Int i -> string_of_int i
  | Float f -> float f
  | Bool b -> if b then "true" else "false"

let obj fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> string k ^ ": " ^ v) fields)
  ^ "}"

let obj_of_fields fields = obj (List.map (fun (k, v) -> (k, value v)) fields)
let array items = "[" ^ String.concat ", " items ^ "]"
