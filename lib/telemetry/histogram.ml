(* Log-bucketed histogram with streaming quantiles. Values land in
   geometric buckets (default 20 per decade ≈ 12% bucket width) so the
   memory stays O(decades) while p50/p90/p99 come back within a few
   percent. Non-positive observations are tracked in a dedicated zero
   bucket. Deterministic: the snapshot depends only on the observations. *)

type t = {
  per_decade : int;
  counts : (int, int) Hashtbl.t; (* bucket index -> count, v in 10^(i/pd) *)
  mutable zero : int; (* observations <= 0 *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(buckets_per_decade = 20) () =
  if buckets_per_decade <= 0 then invalid_arg "Histogram.create";
  { per_decade = buckets_per_decade; counts = Hashtbl.create 32; zero = 0;
    count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }

let bucket_index t v =
  int_of_float (Float.floor (Float.log10 v *. float_of_int t.per_decade))

(* Geometric midpoint of bucket [i]: representative value for quantiles. *)
let bucket_value t i =
  Float.pow 10.0 ((float_of_int i +. 0.5) /. float_of_int t.per_decade)

let observe t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  if v <= 0.0 then t.zero <- t.zero + 1
  else begin
    let i = bucket_index t v in
    Hashtbl.replace t.counts i
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts i))
  end

let count t = t.count
let sum t = t.sum
let buckets_per_decade t = t.per_decade

(* Merge [src] into [into] as if [src]'s observations had been replayed
   after [into]'s. Bucketed counts add exactly; the float [sum] adds as
   one term per source, so merging the same sources in the same order is
   deterministic (which is what the parallel experiment runner needs). *)
let merge_into ~into src =
  if src.per_decade <> into.per_decade then
    invalid_arg "Histogram.merge_into: bucket layouts differ";
  Hashtbl.iter
    (fun i n ->
      Hashtbl.replace into.counts i
        (n + Option.value ~default:0 (Hashtbl.find_opt into.counts i)))
    src.counts;
  let into_was_empty = into.count = 0 in
  into.zero <- into.zero + src.zero;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.count > 0 then
    if into_was_empty then begin
      (* Adopt [src]'s extrema outright: an empty [into] carries the
         ±infinity sentinels, and copying (rather than comparing against
         them) keeps the invariant that min/max are always observed
         values once count > 0. *)
      into.min_v <- src.min_v;
      into.max_v <- src.max_v
    end
    else begin
      if src.min_v < into.min_v then into.min_v <- src.min_v;
      if src.max_v > into.max_v then into.max_v <- src.max_v
    end
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0.0 else t.min_v
let max_value t = if t.count = 0 then 0.0 else t.max_v

let sorted_buckets t =
  Hashtbl.fold (fun i n acc -> (i, n) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Quantile by cumulative walk over the ordered buckets; the answer is
   the bucket midpoint clamped to the observed [min,max]. q in [0,1]. *)
let quantile t q =
  if t.count = 0 then 0.0
  else begin
    let target = q *. float_of_int t.count in
    let clamp v = Float.min t.max_v (Float.max t.min_v v) in
    if float_of_int t.zero >= target && t.zero > 0 then clamp 0.0
    else begin
      let rec walk acc = function
        | [] -> t.max_v
        | (i, n) :: rest ->
          let acc = acc + n in
          if float_of_int acc >= target then clamp (bucket_value t i)
          else walk acc rest
      in
      walk t.zero (sorted_buckets t)
    end
  end

let snapshot_fields t =
  [ ("count", Json.Int t.count); ("sum", Json.Float t.sum);
    ("mean", Json.Float (mean t)); ("min", Json.Float (min_value t));
    ("max", Json.Float (max_value t)); ("p50", Json.Float (quantile t 0.50));
    ("p90", Json.Float (quantile t 0.90)); ("p99", Json.Float (quantile t 0.99)) ]

let to_json t = Json.obj_of_fields (snapshot_fields t)
