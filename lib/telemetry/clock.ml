(* Wall and CPU clocks for the harnesses. [Sys.time] measures CPU time
   only, which hides time spent blocked; experiment timing wants both.
   The wall clock is monotonic-ish: readings never go backwards within a
   process even if the system clock is stepped. *)

let last_wall = Atomic.make neg_infinity

let wall () =
  (* Atomic CAS keeps the monotonic floor consistent when stopwatches are
     read from several domains at once. *)
  let t = Unix.gettimeofday () in
  let rec floor_to t =
    let last = Atomic.get last_wall in
    if t <= last then last
    else if Atomic.compare_and_set last_wall last t then t
    else floor_to t
  in
  floor_to t

let cpu () = Sys.time ()

type stopwatch = { started_wall : float; started_cpu : float }

let stopwatch () = { started_wall = wall (); started_cpu = cpu () }
let elapsed_wall sw = wall () -. sw.started_wall
let elapsed_cpu sw = cpu () -. sw.started_cpu
