(* Wall and CPU clocks for the harnesses. [Sys.time] measures CPU time
   only, which hides time spent blocked; experiment timing wants both.
   The wall clock is monotonic-ish: readings never go backwards within a
   process even if the system clock is stepped. *)

let last_wall = ref neg_infinity

let wall () =
  let t = Unix.gettimeofday () in
  let t = if t > !last_wall then t else !last_wall in
  last_wall := t;
  t

let cpu () = Sys.time ()

type stopwatch = { started_wall : float; started_cpu : float }

let stopwatch () = { started_wall = wall (); started_cpu = cpu () }
let elapsed_wall sw = wall () -. sw.started_wall
let elapsed_cpu sw = cpu () -. sw.started_cpu
