(* Glue: one sink bundles the per-run metrics registry and span tracer,
   plus writers for their on-disk forms. A fresh sink per run keeps
   snapshots deterministic (no cross-run state). *)

type sink = {
  metrics : Metrics.t;
  trace : Trace.t;
}

let sink ?(trace = false) () =
  { metrics = Metrics.create (); trace = Trace.create ~enabled:trace () }

(* Fold one sink into another (counters add, gauges last-write, histogram
   buckets add, trace events append). The parallel experiment runner gives
   every simulator run a private sink and merges them back in submission
   order, which keeps aggregated snapshots identical at any job count. *)
let merge_into ~into src =
  Metrics.merge_into ~into:into.metrics src.metrics;
  Trace.merge_into ~into:into.trace src.trace

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_metrics s ~path = write_file path (Metrics.to_json_string s.metrics)
let write_prometheus s ~path = write_file path (Metrics.to_prometheus s.metrics)
let write_trace s ~path = write_file path (Trace.to_chrome_json s.trace)
