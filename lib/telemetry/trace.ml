(* Span tracer keyed to the *simulated* clock. Spans carry timestamps in
   simulated seconds (the caller decides what "now" means) and export as
   Chrome trace_event JSON — load the file in chrome://tracing or
   https://ui.perfetto.dev. Disabled tracers drop every event so the
   default run pays only a branch per call site. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char; (* 'X' complete | 'B' begin | 'E' end | 'i' instant *)
  ev_ts : float; (* microseconds of simulated time *)
  ev_dur : float option; (* microseconds, X events only *)
  ev_tid : int;
  ev_args : (string * Json.field) list;
}

type t = {
  mutable enabled : bool;
  mutable events : event list; (* newest first *)
  mutable depth : int; (* open B spans *)
  mutable count : int;
}

let create ?(enabled = false) () = { enabled; events = []; depth = 0; count = 0 }
let set_enabled t b = t.enabled <- b
let enabled t = t.enabled
let depth t = t.depth
let event_count t = t.count

let us_of_seconds s = s *. 1e6

let push t ev =
  t.events <- ev :: t.events;
  t.count <- t.count + 1

(* A complete span: [ts, ts+dur] in simulated seconds. *)
let complete t ?(cat = "phase") ?(tid = 1) ?(args = []) ~name ~ts ~dur () =
  if t.enabled then
    push t
      { ev_name = name; ev_cat = cat; ev_ph = 'X'; ev_ts = us_of_seconds ts;
        ev_dur = Some (us_of_seconds (Float.max 0.0 dur)); ev_tid = tid;
        ev_args = args }

let begin_span t ?(cat = "phase") ?(tid = 1) ?(args = []) ~name ~ts () =
  if t.enabled then begin
    t.depth <- t.depth + 1;
    push t
      { ev_name = name; ev_cat = cat; ev_ph = 'B'; ev_ts = us_of_seconds ts;
        ev_dur = None; ev_tid = tid; ev_args = args }
  end

let end_span t ?(tid = 1) ~ts () =
  if t.enabled then begin
    if t.depth <= 0 then failwith "Trace.end_span: no open span";
    t.depth <- t.depth - 1;
    push t
      { ev_name = ""; ev_cat = ""; ev_ph = 'E'; ev_ts = us_of_seconds ts;
        ev_dur = None; ev_tid = tid; ev_args = [] }
  end

let instant t ?(cat = "event") ?(tid = 1) ?(args = []) ~name ~ts () =
  if t.enabled then
    push t
      { ev_name = name; ev_cat = cat; ev_ph = 'i'; ev_ts = us_of_seconds ts;
        ev_dur = None; ev_tid = tid; ev_args = args }

(* Append [src]'s events after [into]'s existing ones, as if they had
   been recorded on [into] next. A disabled [into] drops the events, the
   same way it drops direct recordings. *)
let merge_into ~into src =
  if into.enabled then begin
    into.events <- src.events @ into.events;
    into.count <- into.count + src.count;
    into.depth <- into.depth + src.depth
  end

let event_json ev =
  let fields =
    [ ("name", Json.string ev.ev_name); ("cat", Json.string ev.ev_cat);
      ("ph", Json.string (String.make 1 ev.ev_ph)); ("ts", Json.float ev.ev_ts);
      ("pid", "1"); ("tid", string_of_int ev.ev_tid) ]
  in
  let fields =
    match ev.ev_dur with
    | Some d -> fields @ [ ("dur", Json.float d) ]
    | None -> fields
  in
  let fields = if ev.ev_ph = 'i' then fields @ [ ("s", Json.string "t") ] else fields in
  let fields =
    match ev.ev_args with
    | [] -> fields
    | args -> fields @ [ ("args", Json.obj_of_fields args) ]
  in
  Json.obj fields

(* Events sort by (ts, duration desc, insertion order) so nested X spans
   come out parent-first, which the Chrome/Perfetto importers expect. *)
let to_chrome_json t =
  let numbered = List.mapi (fun i ev -> (t.count - i, ev)) t.events in
  let dur ev = Option.value ~default:0.0 ev.ev_dur in
  let ordered =
    List.sort
      (fun (ia, a) (ib, b) ->
        match compare a.ev_ts b.ev_ts with
        | 0 -> (match compare (dur b) (dur a) with 0 -> compare ia ib | c -> c)
        | c -> c)
      numbered
  in
  Json.obj
    [ ("traceEvents", Json.array (List.map (fun (_, ev) -> event_json ev) ordered));
      ("displayTimeUnit", Json.string "ms") ]
  ^ "\n"
