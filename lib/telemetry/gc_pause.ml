(* Stop-the-world GC pause observation through the OCaml 5 runtime-events
   ring buffer (self-monitoring cursor, no external consumer needed).

   A "pause" here is one minor collection or one major-GC slice as
   delimited by the runtime's own begin/end phase events, measured on the
   runtime's monotonic clock. Polling is explicit: the caller drains the
   ring at measurement boundaries (e.g. once per sweep cell); the ring
   holds the default 64k events per domain, far above what a cell emits
   between polls at the two phases we subscribe to. *)

type acc = {
  (* Phase open timestamps per domain, keyed by the phase itself —
     phases nest (a minor can run inside a major slice), so each tracks
     its own begin independently. *)
  open_begin : (int * Runtime_events.runtime_phase, int64) Hashtbl.t;
  mutable pauses : int;
  mutable total_ns : int64;
  mutable max_ns : int64;
}

type t = { cursor : Runtime_events.cursor; callbacks : Runtime_events.Callbacks.t; acc : acc }

(* Top-level phases only: their spans cover the mutator-visible pause.
   Sub-phases (sweep, mark, scan...) nest inside and would double-count. *)
let tracked_top (phase : Runtime_events.runtime_phase) =
  match phase with EV_MINOR | EV_MAJOR -> true | _ -> false

let start () =
  Runtime_events.start ();
  let cursor = Runtime_events.create_cursor None in
  let acc =
    { open_begin = Hashtbl.create 16; pauses = 0; total_ns = 0L; max_ns = 0L }
  in
  let on_begin domain ts phase =
    if tracked_top phase then
      Hashtbl.replace acc.open_begin (domain, phase)
        (Runtime_events.Timestamp.to_int64 ts)
  in
  let on_end domain ts phase =
    if tracked_top phase then begin
      match Hashtbl.find_opt acc.open_begin (domain, phase) with
      | None -> ()
      | Some t0 ->
        Hashtbl.remove acc.open_begin (domain, phase);
        let dt = Int64.sub (Runtime_events.Timestamp.to_int64 ts) t0 in
        if Int64.compare dt 0L > 0 then begin
          acc.pauses <- acc.pauses + 1;
          acc.total_ns <- Int64.add acc.total_ns dt;
          if Int64.compare dt acc.max_ns > 0 then acc.max_ns <- dt
        end
    end
  in
  let callbacks =
    Runtime_events.Callbacks.create ~runtime_begin:on_begin ~runtime_end:on_end ()
  in
  { cursor; callbacks; acc }

type sample = { pauses : int; total_ns : int64; max_ns : int64 }

(* Drain the ring, then report the delta since the previous [poll] and
   reset the accumulators — each call covers exactly one interval. *)
let poll t =
  let rec drain () =
    if Runtime_events.read_poll t.cursor t.callbacks None > 0 then drain ()
  in
  drain ();
  let s = { pauses = t.acc.pauses; total_ns = t.acc.total_ns; max_ns = t.acc.max_ns } in
  t.acc.pauses <- 0;
  t.acc.total_ns <- 0L;
  t.acc.max_ns <- 0L;
  s
