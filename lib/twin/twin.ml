module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id
module Erc20 = Mainchain.Erc20
module Token_bank = Tokenbank.Token_bank
module Pos_store = Tokenbank.Pos_store
module Sync_payload = Tokenbank.Sync_payload
module Bls = Amm_crypto.Bls
module State_codec = Durable.State_codec

(* ------------------------------------------------------------------ *)
(* Keys and layers                                                     *)
(* ------------------------------------------------------------------ *)

type key =
  | Dep_row of Address.t
  | Pool_pos of Position_id.t
  | Pool_tick of int
  | Pool_scalars
  | Bank_meta
  | Bank_pos of Position_id.t

type layer = Deposits_layer | Pool_layer | Bank_layer

let layer_of_key = function
  | Dep_row _ -> Deposits_layer
  | Pool_pos _ | Pool_tick _ | Pool_scalars -> Pool_layer
  | Bank_meta | Bank_pos _ -> Bank_layer

let layer_to_string = function
  | Deposits_layer -> "deposits"
  | Pool_layer -> "pool"
  | Bank_layer -> "bank"

let key_to_string = function
  | Dep_row a -> "dep:" ^ Address.to_hex a
  | Pool_pos p -> "pos:" ^ Position_id.to_hex p
  | Pool_tick t -> "tick:" ^ string_of_int t
  | Pool_scalars -> "pool.scalars"
  | Bank_meta -> "bank.meta"
  | Bank_pos p -> "bank.pos:" ^ Position_id.to_hex p

(* Total order: layer tag first, then the inner key — gives the audit a
   deterministic report order without depending on map internals. *)
let key_rank = function
  | Dep_row _ -> 0
  | Pool_pos _ -> 1
  | Pool_tick _ -> 2
  | Pool_scalars -> 3
  | Bank_meta -> 4
  | Bank_pos _ -> 5

let compare_key a b =
  match (a, b) with
  | Dep_row x, Dep_row y -> Address.compare x y
  | Pool_pos x, Pool_pos y -> Position_id.compare x y
  | Pool_tick x, Pool_tick y -> compare x y
  | Bank_pos x, Bank_pos y -> Position_id.compare x y
  | Pool_scalars, Pool_scalars | Bank_meta, Bank_meta -> 0
  | _ -> compare (key_rank a) (key_rank b)

module Kmap = Map.Make (struct
  type t = key

  let compare = compare_key
end)

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type op = { op_index : int; op_label : string; op_writes : (key * bytes option) list }

type snapshot = {
  snap_epoch : int;
  snap_side : bytes Kmap.t;  (* Dep_row / Pool_* images *)
  snap_bank : bytes Kmap.t;  (* Bank_* images *)
  snap_custody : U256.t * U256.t;
}

type t = {
  seed : string;
  replica : Token_bank.t;
  erc0 : Erc20.t;
  erc1 : Erc20.t;
  funded : (Address.t, unit) Hashtbl.t;
  (* Shadow state. Two persistent maps so a reorg can rewind the bank
     side in O(1) without touching sidechain after-images (a mainchain
     fork never unwinds sidechain state). Only present keys are stored;
     a deleted/absent key is simply missing. *)
  mutable side : bytes Kmap.t;
  mutable bank : bytes Kmap.t;
  (* The op log: growable vector, indices are global and never reused.
     [window_base] marks the first op of the open window. *)
  mutable ops : op array;
  mutable op_len : int;
  mutable window_base : int;
  (* Replica rejections that the live bank did not report — each is a
     divergence surfaced at the next audit. *)
  mutable rejected : (int * string * string) list;  (* op index, label, error *)
  mutable history : snapshot list;  (* newest first *)
  mutable audits : int;
  mutable diverged : int;
}

let faucet = U256.of_string "1000000000000000000000000000000"

let create ~seed ~genesis_committee_vk ~flash_fee_pips =
  let token0 = Chain.Token.make ~id:0 ~symbol:"TKA" in
  let token1 = Chain.Token.make ~id:1 ~symbol:"TKB" in
  let erc0 = Erc20.deploy token0 and erc1 = Erc20.deploy token1 in
  let replica = Token_bank.deploy ~token0:erc0 ~token1:erc1 ~genesis_committee_vk in
  ignore (Token_bank.create_pool replica ~flash_fee_pips);
  let t =
    { seed; replica; erc0; erc1; funded = Hashtbl.create 64;
      side = Kmap.empty; bank = Kmap.empty;
      ops = [||]; op_len = 0; window_base = 0;
      rejected = []; history = []; audits = 0; diverged = 0 }
  in
  t.bank <- Kmap.add Bank_meta (State_codec.bank_meta_bytes replica) t.bank;
  t

let op_count t = t.op_len

let push_op t op =
  if t.op_len = Array.length t.ops then begin
    let grown = Array.make (Stdlib.max 64 (2 * t.op_len)) op in
    Array.blit t.ops 0 grown 0 t.op_len;
    t.ops <- grown
  end;
  t.ops.(t.op_len) <- op;
  t.op_len <- t.op_len + 1

let apply_writes t writes =
  List.iter
    (fun (k, image) ->
      let target =
        match layer_of_key k with Bank_layer -> `Bank | _ -> `Side
      in
      match (target, image) with
      (* A [None] Bank_meta image is a lazy marker, not a deletion: bank
         ops on the hot path only assert "this op wrote the meta section"
         for bisection; the actual bytes are materialized from the
         replica once per audit instead of once per deposit. *)
      | `Bank, None when compare_key k Bank_meta = 0 -> ()
      | `Bank, Some b -> t.bank <- Kmap.add k b t.bank
      | `Bank, None -> t.bank <- Kmap.remove k t.bank
      | `Side, Some b -> t.side <- Kmap.add k b t.side
      | `Side, None -> t.side <- Kmap.remove k t.side)
    writes

let record t ~label writes =
  let op = { op_index = t.op_len; op_label = label; op_writes = writes } in
  push_op t op;
  apply_writes t writes

(* ------------------------------------------------------------------ *)
(* Bank ops: apply to the replica, capture after-images from it        *)
(* ------------------------------------------------------------------ *)

let ensure_funded t user =
  if not (Hashtbl.mem t.funded user) then begin
    Hashtbl.replace t.funded user ();
    Erc20.mint t.erc0 user faucet;
    Erc20.mint t.erc1 user faucet;
    Erc20.approve t.erc0 ~owner:user ~spender:(Token_bank.address t.replica)
      U256.max_value;
    Erc20.approve t.erc1 ~owner:user ~spender:(Token_bank.address t.replica)
      U256.max_value
  end

let bank_pos_image t pid = Pos_store.row_image (Token_bank.positions_store t.replica) pid

let record_bank t ~label ~pos_ids outcome =
  (* Lazy meta: the op lists Bank_meta as written (bisection needs the
     key), but serializing the section per op would make every deposit
     pay an O(meta) encode — {!audit} materializes it once per epoch. *)
  let writes =
    (Bank_meta, None)
    :: List.map (fun pid -> (Bank_pos pid, bank_pos_image t pid)) pos_ids
  in
  let op = { op_index = t.op_len; op_label = label; op_writes = writes } in
  push_op t op;
  apply_writes t writes;
  match outcome with
  | Ok () -> ()
  | Error e -> t.rejected <- (op.op_index, label, e) :: t.rejected

let payload_pos_ids signed =
  List.concat_map
    (fun (p, _) ->
      List.map
        (fun (e : Sync_payload.position_entry) -> e.Sync_payload.pos_id)
        p.Sync_payload.positions)
    signed
  |> List.sort_uniq Position_id.compare

let bank_deposit t ~user ~for_epoch ~amount0 ~amount1 =
  ensure_funded t user;
  let r =
    match Token_bank.deposit t.replica ~user ~for_epoch ~amount0 ~amount1 with
    | Ok () -> Ok ()
    | Error e -> Error e
  in
  record_bank t ~label:"bank.deposit" ~pos_ids:[] r

let bank_sync t signed =
  let r =
    (* The live bank already verified these signatures before the payloads
       reached us; the replica re-derives state, not crypto acceptance. *)
    match Token_bank.sync ~check_signatures:false t.replica ~signed with
    | Ok _ -> Ok ()
    | Error rej -> Error (Token_bank.rejection_to_string rej)
  in
  record_bank t ~label:"bank.sync" ~pos_ids:(payload_pos_ids signed) r

let bank_halt t ~epoch =
  let r =
    match Token_bank.halt t.replica ~epoch with
    | Ok () -> Ok ()
    | Error rej -> Error (Token_bank.rejection_to_string rej)
  in
  record_bank t ~label:"bank.halt" ~pos_ids:[] r

let bank_exit t ~claimant =
  (* The exit closes the claimant's synced positions: capture those ids
     before the op so their (now absent-or-rewritten) rows land in the
     write set. *)
  let owned =
    List.filter_map
      (fun (e : Sync_payload.position_entry) ->
        if Address.equal e.Sync_payload.owner claimant then Some e.Sync_payload.pos_id
        else None)
      (Token_bank.positions t.replica)
  in
  let r =
    match Token_bank.emergency_exit t.replica ~claimant with
    | Ok _ -> Ok ()
    | Error rej -> Error (Token_bank.rejection_to_string rej)
  in
  record_bank t ~label:"bank.exit" ~pos_ids:(List.sort_uniq Position_id.compare owned) r

let bank_reconcile t signed =
  let r =
    match Token_bank.reconcile t.replica ~signed with
    | Ok _ -> Ok ()
    | Error rej -> Error (Token_bank.rejection_to_string rej)
  in
  record_bank t ~label:"bank.reconcile" ~pos_ids:(payload_pos_ids signed) r

(* ------------------------------------------------------------------ *)
(* Reorg symmetry                                                      *)
(* ------------------------------------------------------------------ *)

type checkpoint = {
  ck_bank : Token_bank.checkpoint;
  ck_map : bytes Kmap.t;
  ck_ops : int;
}

let checkpoint t = { ck_bank = Token_bank.checkpoint t.replica; ck_map = t.bank; ck_ops = t.op_len }

let restore t ck =
  Token_bank.restore t.replica ck.ck_bank;
  (* Re-state the post-restore image of every bank key written since the
     checkpoint as a synthetic op, so last-writer bisection over the
     window points at the rollback, not at an undone sync. *)
  let touched = ref [] in
  for i = ck.ck_ops to t.op_len - 1 do
    List.iter
      (fun (k, _) ->
        match layer_of_key k with
        | Bank_layer -> if not (List.mem k !touched) then touched := k :: !touched
        | _ -> ())
      t.ops.(i).op_writes
  done;
  t.bank <- ck.ck_map;
  t.rejected <- List.filter (fun (i, _, _) -> i < ck.ck_ops) t.rejected;
  let writes =
    List.map
      (fun k ->
        match k with
        | Bank_meta -> (k, Some (State_codec.bank_meta_bytes t.replica))
        | Bank_pos pid -> (k, bank_pos_image t pid)
        | _ -> assert false)
      (List.sort compare_key !touched)
  in
  if writes <> [] then record t ~label:"bank.rollback" writes

let release t ck = Token_bank.release_checkpoint t.replica ck.ck_bank

(* ------------------------------------------------------------------ *)
(* The audit                                                           *)
(* ------------------------------------------------------------------ *)

type live = {
  live_dep : Address.t -> bytes option;
  live_dep_dirty : unit -> Address.t list;
  live_pool_pos : Position_id.t -> bytes option;
  live_pool_tick : int -> bytes option;
  live_pool_writes : unit -> Position_id.t list * int list;
  live_pool_scalars : unit -> bytes;
  live_bank_meta : unit -> bytes;
  live_bank_pos : Position_id.t -> bytes option;
  live_bank_dirty : unit -> Position_id.t list;
}

type report = {
  r_epoch : int;
  r_seed : string;
  r_key : key;
  r_layer : layer;
  r_expected : bytes option;
  r_actual : bytes option;
  r_culprit : (int * string) option;
  r_window_ops : int;
}

let hex_prefix = function
  | None -> "absent"
  | Some b ->
    let n = Stdlib.min 8 (Bytes.length b) in
    let out = Buffer.create (2 * n) in
    for i = 0 to n - 1 do
      Buffer.add_string out (Printf.sprintf "%02x" (Char.code (Bytes.get b i)))
    done;
    Printf.sprintf "%d:%s" (Bytes.length b) (Buffer.contents out)

let report_to_string r =
  Printf.sprintf "epoch=%d layer=%s key=%s culprit=%s expected=%s actual=%s window=%d"
    r.r_epoch
    (layer_to_string r.r_layer)
    (key_to_string r.r_key)
    (match r.r_culprit with
    | Some (i, l) -> Printf.sprintf "op[%d]:%s" i l
    | None -> "out-of-band")
    (hex_prefix r.r_expected) (hex_prefix r.r_actual) r.r_window_ops

(* A deposit row that exists on only one side compares as all-zeroes:
   the live table auto-allocates zeroed rows on pure reads (no op ever
   wrote them), and the twin drops the epoch-local rows at each seal. *)
let dep_zero = Bytes.make 192 '\000'

let bytes_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Bytes.equal x y
  | _ -> false

(* Last window op that wrote [k], scanning the window newest-first. *)
let bisect t k =
  let rec go i =
    if i < t.window_base then None
    else
      let op = t.ops.(i) in
      if List.exists (fun (k', _) -> compare_key k k' = 0) op.op_writes then
        Some (op.op_index, op.op_label)
      else go (i - 1)
  in
  go (t.op_len - 1)

let audit t ~epoch live =
  (* Materialize the lazily-tracked meta section (see {!record_bank})
     before anything reads [t.bank]: the audit's expected value, the
     sealed snapshot and any checkpoint taken after this point all see
     the replica's current bytes. *)
  t.bank <- Kmap.add Bank_meta (State_codec.bank_meta_bytes t.replica) t.bank;
  let window_ops = t.op_len - t.window_base in
  (* Compare set: every key written in the window by an op, plus every
     key the live side marked written (silent corruption only appears
     there), plus the two always-on scalar sections. *)
  let keys = ref Kmap.empty in
  let add k = keys := Kmap.add k () !keys in
  for i = t.window_base to t.op_len - 1 do
    List.iter (fun (k, _) -> add k) t.ops.(i).op_writes
  done;
  List.iter (fun u -> add (Dep_row u)) (live.live_dep_dirty ());
  let wpos, wticks = live.live_pool_writes () in
  List.iter (fun p -> add (Pool_pos p)) wpos;
  List.iter (fun tk -> add (Pool_tick tk)) wticks;
  List.iter (fun pid -> add (Bank_pos pid)) (live.live_bank_dirty ());
  add Pool_scalars;
  add Bank_meta;
  let expected k =
    match k with
    | Dep_row _ -> Some (Option.value ~default:dep_zero (Kmap.find_opt k t.side))
    | Pool_pos _ | Pool_tick _ | Pool_scalars -> Kmap.find_opt k t.side
    | Bank_meta | Bank_pos _ -> Kmap.find_opt k t.bank
  in
  let actual k =
    match k with
    | Dep_row u -> Some (Option.value ~default:dep_zero (live.live_dep u))
    | Pool_pos p -> live.live_pool_pos p
    | Pool_tick tk -> live.live_pool_tick tk
    | Pool_scalars -> Some (live.live_pool_scalars ())
    | Bank_meta -> Some (live.live_bank_meta ())
    | Bank_pos p -> live.live_bank_pos p
  in
  let reports = ref [] in
  Kmap.iter
    (fun k () ->
      let e = expected k and a = actual k in
      if not (bytes_opt_equal e a) then
        reports :=
          { r_epoch = epoch; r_seed = t.seed; r_key = k; r_layer = layer_of_key k;
            r_expected = e; r_actual = a; r_culprit = bisect t k;
            r_window_ops = window_ops }
          :: !reports)
    !keys;
  (* Replica rejections the live bank accepted: bank-layer divergence
     even when the meta bytes happen to agree. *)
  List.iter
    (fun (idx, label, err) ->
      if idx >= t.window_base then
        reports :=
          { r_epoch = epoch; r_seed = t.seed; r_key = Bank_meta; r_layer = Bank_layer;
            r_expected = None;
            r_actual = Some (Bytes.of_string ("replica rejected: " ^ err));
            r_culprit = Some (idx, label); r_window_ops = window_ops }
          :: !reports)
    t.rejected;
  let reports =
    List.sort
      (fun a b ->
        match compare (layer_of_key b.r_key) (layer_of_key a.r_key) with
        | 0 -> compare_key a.r_key b.r_key
        | c -> c)
      !reports
  in
  (* Seal the epoch: snapshot (O(1) on persistent maps), open a fresh
     window, drop the epoch-local deposit rows — the live table is
     rebuilt from the bank snapshot at the next epoch start. *)
  t.history <-
    { snap_epoch = epoch; snap_side = t.side; snap_bank = t.bank;
      snap_custody = Token_bank.total_custody t.replica }
    :: t.history;
  (* Compact the sealed window: bisection never looks behind
     [window_base] again, and {!restore} only needs Bank_layer keys, so
     sealed ops shed their pool/deposit payloads — the op vector stays
     O(bank ops + open window) bytes over arbitrarily long runs. *)
  for i = t.window_base to t.op_len - 1 do
    let op = t.ops.(i) in
    let bank_writes =
      List.filter (fun (k, _) -> layer_of_key k = Bank_layer) op.op_writes
    in
    if List.length bank_writes < List.length op.op_writes then
      t.ops.(i) <- { op with op_writes = bank_writes }
  done;
  t.window_base <- t.op_len;
  t.side <- Kmap.filter (fun k _ -> match k with Dep_row _ -> false | _ -> true) t.side;
  t.audits <- t.audits + 1;
  t.diverged <- t.diverged + List.length reports;
  reports

let audits_run t = t.audits
let divergences t = t.diverged

(* ------------------------------------------------------------------ *)
(* Time travel                                                         *)
(* ------------------------------------------------------------------ *)

type view = snapshot list

let view t = t.history

let find_snap v epoch = List.find_opt (fun s -> s.snap_epoch = epoch) v

let custody_at v ~epoch =
  Option.map (fun s -> s.snap_custody) (find_snap v epoch)

let read_at v ~epoch k =
  match find_snap v epoch with
  | None -> None
  | Some s -> (
    match layer_of_key k with
    | Bank_layer -> Kmap.find_opt k s.snap_bank
    | _ -> Kmap.find_opt k s.snap_side)

(* Pool position image layout (see Pool.position_bytes): owner 20,
   ticks 2×8, then liquidity / fee checkpoints / owed, 32 bytes each. *)
let owed_of_image b =
  if Bytes.length b <> 196 then None
  else
    Some
      ( U256.of_bytes_be (Bytes.sub b 132 32),
        U256.of_bytes_be (Bytes.sub b 164 32) )

let position_fees v ~from_epoch ~until_epoch pid =
  match
    ( read_at v ~epoch:from_epoch (Pool_pos pid),
      read_at v ~epoch:until_epoch (Pool_pos pid) )
  with
  | Some b0, Some b1 -> (
    match (owed_of_image b0, owed_of_image b1) with
    | Some (a0, a1), Some (u0, u1) ->
      let sat a b = if U256.ge b a then U256.sub b a else U256.zero in
      Some (sat a0 u0, sat a1 u1)
    | _ -> None)
  | _ -> None

let epochs_sealed v = List.sort compare (List.map (fun s -> s.snap_epoch) v)

let what_if t f =
  let ck = Token_bank.checkpoint t.replica in
  Fun.protect
    ~finally:(fun () -> Token_bank.restore t.replica ck)
    (fun () -> f t.replica)
