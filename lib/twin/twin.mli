(** The state twin: a copy-on-write shadow of TokenBank + pool + deposit
    state, advanced from the same op stream the live system applies and
    byte-compared against the live flat stores at every epoch boundary —
    a continuous O(Δ) differential audit.

    Two trust layers, matched to what each can afford:

    {ul
    {- The {e bank twin} is a full replica [Token_bank] advanced by the
       semantic ops (deposit / sync / halt / exit / reconcile) — genuine
       independent re-derivation, continuously, of what the replay
       oracle used to check only at end of run. Bank ops are per-epoch
       scale, so re-execution is cheap.}
    {- The {e pool and deposits twins} are after-image shadows: every
       transaction's written keys are captured into persistent maps at
       mutation time, before any later out-of-band damage can land. The
       epoch-boundary audit compares those captures against the live
       rows, catching silent corruption and lost/torn writes in the
       epoch they occur; AMM logic itself stays covered by the
       end-of-run replay oracle and the self-audit. A replica pool
       re-executing every swap would blow the audit's overhead budget —
       this shadow keeps it O(written keys).}}

    The persistent maps make epoch snapshots O(1), which is what funds
    the time-travel queries ({!custody_at}, {!position_fees}) and the
    cheap what-if forks ({!what_if}). *)

module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id
module Token_bank = Tokenbank.Token_bank
module Sync_payload = Tokenbank.Sync_payload

type t

(** One audited state cell. *)
type key =
  | Dep_row of Address.t     (** a deposit-account row (192 bytes) *)
  | Pool_pos of Position_id.t  (** a pool position image *)
  | Pool_tick of int         (** an initialized tick image *)
  | Pool_scalars             (** the pool scalar section *)
  | Bank_meta                (** the bank.meta section *)
  | Bank_pos of Position_id.t  (** a TokenBank position row *)

type layer = Deposits_layer | Pool_layer | Bank_layer

val layer_of_key : key -> layer
val layer_to_string : layer -> string
val key_to_string : key -> string

val create :
  seed:string ->
  genesis_committee_vk:Amm_crypto.Bls.public_key ->
  flash_fee_pips:int ->
  t
(** Deploys the replica bank (own ERC20s, own faucet) and an empty
    shadow state. [seed] is stamped into forensic reports. *)

(** {1 Advancing: sidechain after-images}

    Called by the system's processor tap after each successful
    transaction, with the key/after-image pairs the transaction wrote
    ([None] = the key was deleted). Ops are indexed globally in arrival
    order; the index is what the bisector reports. *)

val record : t -> label:string -> (key * bytes option) list -> unit

val op_count : t -> int
(** Ops recorded so far (the next op's index). *)

(** {1 Advancing: bank ops}

    Each applies the semantic op to the replica bank, captures the
    after-images of the keys it wrote {e from the replica}, and records
    a window op. A rejection that the live bank did not report is a
    divergence in its own right and surfaces at the next audit. *)

val bank_deposit :
  t -> user:Address.t -> for_epoch:int -> amount0:U256.t -> amount1:U256.t -> unit

val bank_sync : t -> (Sync_payload.t * Amm_crypto.Bls.signature) list -> unit
val bank_halt : t -> epoch:int -> unit
val bank_exit : t -> claimant:Address.t -> unit
val bank_reconcile : t -> (Sync_payload.t * Amm_crypto.Bls.signature) list -> unit

(** {1 Reorg symmetry} *)

type checkpoint

val checkpoint : t -> checkpoint
(** O(1): the replica bank's journal mark plus the persistent bank-side
    shadow map. *)

val restore : t -> checkpoint -> unit
(** Rewinds the replica and the bank-side shadow to the checkpoint and
    records a synthetic [bank.rollback] window op restating the
    post-restore images of every bank key written since — so last-writer
    bisection stays truthful across reorgs. *)

val release : t -> checkpoint -> unit

(** {1 The epoch-boundary audit} *)

(** Live-state access, supplied by the system. The twin deliberately
    has no dependency on the sidechain or AMM libraries — it sees live
    state only through these closures. *)
type live = {
  live_dep : Address.t -> bytes option;
  live_dep_dirty : unit -> Address.t list;
      (** deposit rows written since the last audit (fault injections
          included); the caller clears its dirty marks after the audit *)
  live_pool_pos : Position_id.t -> bytes option;
  live_pool_tick : int -> bytes option;
  live_pool_writes : unit -> Position_id.t list * int list;
      (** positions/ticks written since the last audit *)
  live_pool_scalars : unit -> bytes;
  live_bank_meta : unit -> bytes;
  live_bank_pos : Position_id.t -> bytes option;
  live_bank_dirty : unit -> Position_id.t list;
}

type report = {
  r_epoch : int;
  r_seed : string;
  r_key : key;
  r_layer : layer;
  r_expected : bytes option;  (** the twin's view ([None] = absent) *)
  r_actual : bytes option;    (** the live bytes ([None] = absent) *)
  r_culprit : (int * string) option;
      (** last window op that wrote the key (global index, label);
          [None] = no op wrote it — out-of-band corruption *)
  r_window_ops : int;         (** ops in the audited window *)
}

val report_to_string : report -> string
(** One deterministic line: epoch, layer, key, culprit, byte prefixes. *)

val audit : t -> epoch:int -> live -> report list
(** Byte-compares every key written in the window (by ops or by the
    live side's own dirty marks — corruption shows up only there)
    plus the two scalar sections, most-severe layer first, key order
    deterministic. Cost is O(written keys), never O(state).

    Whatever the outcome, the audit then seals the epoch: snapshots the
    shadow state (O(1)), opens a fresh window and drops the epoch-local
    deposit rows (the live table is rebuilt from the bank snapshot next
    epoch). The caller clears the live dirty marks. *)

val audits_run : t -> int
val divergences : t -> int
(** Total divergent keys reported across all audits. *)

(** {1 Time travel}

    Queries over sealed epoch snapshots. A {!view} is an immutable
    capture safe to query from another domain while the twin advances. *)

type view

val view : t -> view

val custody_at : view -> epoch:int -> (U256.t * U256.t) option
(** The replica bank's total custody as of the epoch's audit. *)

val read_at : view -> epoch:int -> key -> bytes option
(** The audited after-image of any key at an epoch seal. *)

val position_fees :
  view -> from_epoch:int -> until_epoch:int -> Position_id.t -> (U256.t * U256.t) option
(** Growth of the position's uncollected [tokens_owed] between the two
    epoch seals, saturating at zero per token (collections inside the
    window reduce the owed balance). [None] unless the position exists
    at both seals. *)

val epochs_sealed : view -> int list
(** Ascending epochs with a sealed snapshot. *)

val what_if : t -> (Token_bank.t -> 'a) -> 'a
(** Runs a speculative candidate (an exit, a reconcile...) against the
    replica bank and discards every effect — checkpoint, apply, read,
    undo. The live system is never touched. *)
