module U256 = Amm_math.U256
module Q96 = Amm_math.Q96
module Signed = Amm_math.Signed
module Tick_math = Amm_math.Tick_math
module Swap_math = Amm_math.Swap_math
module Sqrt_price_math = Amm_math.Sqrt_price_math
module Liquidity_math = Amm_math.Liquidity_math
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id

type t = {
  pool_id : int;
  token0 : Chain.Token.t;
  token1 : Chain.Token.t;
  fee_pips : int;
  ticks : Tick.table;
  position_table : (Position_id.t, Position.t) Hashtbl.t;
  mutable sqrt_price : U256.t;
  mutable tick : int;
  mutable liquidity : U256.t;
  mutable fee_growth_global0 : U256.t;
  mutable fee_growth_global1 : U256.t;
  mutable balance0 : U256.t;
  mutable balance1 : U256.t;
  mutable protocol_fee_denominator : int option;
  mutable protocol_fees0 : U256.t;
  mutable protocol_fees1 : U256.t;
  (* Inclusion-time change tracking for O(Δ) epoch summaries. [dirty]
     over-approximates the positions whose summary entry may differ from
     the epoch-start snapshot: every minted/burned/collected position,
     plus every position that was in range during a fee event (swap or
     flash) since the last [epoch_reset]. [in_range] is the standing set
     of positions whose range contains the current tick, maintained at
     mint/collect and at tick crossings via [bounds_index]
     (tick -> positions bound there). [fee_marked] records that the
     current in-range set has already been bulk-marked this epoch, so
     later fee events only pay for new entrants. *)
  dirty : (Position_id.t, unit) Hashtbl.t;
  in_range : (Position_id.t, unit) Hashtbl.t;
  bounds_index : (int, Position_id.t list ref) Hashtbl.t;
  mutable fee_marked : bool;
  (* Twin-audit write tracking, orthogonal to [dirty] (which
     over-approximates summary candidates): these record exactly the
     positions and ticks whose bytes were written. [op_*] collect the
     writes of the transaction in flight and are drained per op by the
     processor's tap; [audit_*] accumulate until the epoch-boundary
     audit clears them. Fault injection marks only [audit_*] — a silent
     corruption must not be attributed to the next transaction. *)
  op_pos : (Position_id.t, unit) Hashtbl.t;
  op_ticks : (int, unit) Hashtbl.t;
  audit_pos : (Position_id.t, unit) Hashtbl.t;
  audit_ticks : (int, unit) Hashtbl.t;
}

let create ~pool_id ~token0 ~token1 ~fee_pips ~tick_spacing ~sqrt_price =
  if U256.lt sqrt_price Tick_math.min_sqrt_ratio || U256.ge sqrt_price Tick_math.max_sqrt_ratio
  then invalid_arg "Pool.create: sqrt_price out of range";
  { pool_id; token0; token1; fee_pips;
    ticks = Tick.create ~tick_spacing;
    position_table = Hashtbl.create 64;
    sqrt_price;
    tick = Tick_math.get_tick_at_sqrt_ratio sqrt_price;
    liquidity = U256.zero;
    fee_growth_global0 = U256.zero; fee_growth_global1 = U256.zero;
    balance0 = U256.zero; balance1 = U256.zero;
    protocol_fee_denominator = None;
    protocol_fees0 = U256.zero; protocol_fees1 = U256.zero;
    dirty = Hashtbl.create 64; in_range = Hashtbl.create 64;
    bounds_index = Hashtbl.create 64; fee_marked = false;
    op_pos = Hashtbl.create 16; op_ticks = Hashtbl.create 16;
    audit_pos = Hashtbl.create 64; audit_ticks = Hashtbl.create 64 }

let clone t =
  let copy_tbl src =
    let dst = Hashtbl.create (Stdlib.max 16 (Hashtbl.length src)) in
    Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src;
    dst
  in
  let position_table = Hashtbl.create (Hashtbl.length t.position_table) in
  Hashtbl.iter
    (fun k (p : Position.t) ->
      Hashtbl.replace position_table k
        { p with Position.liquidity = p.Position.liquidity })
    t.position_table;
  let bounds_index = Hashtbl.create (Stdlib.max 16 (Hashtbl.length t.bounds_index)) in
  Hashtbl.iter (fun k l -> Hashtbl.replace bounds_index k (ref !l)) t.bounds_index;
  { t with ticks = Tick.clone t.ticks; position_table;
    dirty = copy_tbl t.dirty; in_range = copy_tbl t.in_range; bounds_index;
    op_pos = copy_tbl t.op_pos; op_ticks = copy_tbl t.op_ticks;
    audit_pos = copy_tbl t.audit_pos; audit_ticks = copy_tbl t.audit_ticks }

(* ------------------------------------------------------------------ *)
(* Change tracking                                                     *)
(* ------------------------------------------------------------------ *)

let mark_dirty t pid = Hashtbl.replace t.dirty pid ()

let write_pos t pid =
  Hashtbl.replace t.op_pos pid ();
  Hashtbl.replace t.audit_pos pid ()

let write_tick t tick =
  Hashtbl.replace t.op_ticks tick ();
  Hashtbl.replace t.audit_ticks tick ()

(* Fees are about to accrue to in-range liquidity: make sure every
   position currently in range is a summary candidate. Amortized — the
   bulk pass runs once per epoch, later fee events only mark entrants. *)
let mark_fee_bearing t =
  if not t.fee_marked then begin
    Hashtbl.iter (fun pid () -> mark_dirty t pid) t.in_range;
    t.fee_marked <- true
  end

let bounds_add t tick pid =
  match Hashtbl.find_opt t.bounds_index tick with
  | Some l -> l := pid :: !l
  | None -> Hashtbl.add t.bounds_index tick (ref [ pid ])

let bounds_remove t tick pid =
  match Hashtbl.find_opt t.bounds_index tick with
  | Some l ->
    l := List.filter (fun q -> not (Position_id.equal q pid)) !l;
    if !l = [] then Hashtbl.remove t.bounds_index tick
  | None -> ()

(* Re-derive whether [pid]'s range contains the current tick. Entering
   range marks the position: any subsequent fee event reaches it. *)
let refresh_range_membership t pid =
  match Hashtbl.find_opt t.position_table pid with
  | None -> Hashtbl.remove t.in_range pid
  | Some p ->
    if p.Position.lower_tick <= t.tick && t.tick < p.Position.upper_tick then begin
      if not (Hashtbl.mem t.in_range pid) then begin
        Hashtbl.replace t.in_range pid ();
        mark_dirty t pid
      end
    end
    else Hashtbl.remove t.in_range pid

let drain_op_writes t =
  let pos =
    List.sort Position_id.compare
      (Hashtbl.fold (fun pid () acc -> pid :: acc) t.op_pos [])
  in
  let ticks = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) t.op_ticks []) in
  Hashtbl.reset t.op_pos;
  Hashtbl.reset t.op_ticks;
  (pos, ticks)

let audit_writes t =
  let pos =
    List.sort Position_id.compare
      (Hashtbl.fold (fun pid () acc -> pid :: acc) t.audit_pos [])
  in
  let ticks =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) t.audit_ticks [])
  in
  (pos, ticks)

let clear_audit_writes t =
  Hashtbl.reset t.audit_pos;
  Hashtbl.reset t.audit_ticks

let epoch_candidates t = Hashtbl.fold (fun pid () acc -> pid :: acc) t.dirty []

let epoch_reset t =
  Hashtbl.reset t.dirty;
  t.fee_marked <- false

let pool_id t = t.pool_id
let token0 t = t.token0
let token1 t = t.token1
let fee_pips t = t.fee_pips
let sqrt_price t = t.sqrt_price
let current_tick t = t.tick
let liquidity t = t.liquidity
let balance0 t = t.balance0
let balance1 t = t.balance1
let fee_growth_global0 t = t.fee_growth_global0
let fee_growth_global1 t = t.fee_growth_global1
let find_position t pid = Hashtbl.find_opt t.position_table pid

let set_protocol_fee t ~denominator =
  (match denominator with
  | Some n when n < 4 || n > 10 ->
    invalid_arg "Pool.set_protocol_fee: denominator must be in 4..10"
  | Some _ | None -> ());
  t.protocol_fee_denominator <- denominator

let protocol_fee_denominator t = t.protocol_fee_denominator
let protocol_fees t = (t.protocol_fees0, t.protocol_fees1)

let collect_protocol t ~amount0_requested ~amount1_requested =
  let pay0 = U256.min amount0_requested t.protocol_fees0 in
  let pay1 = U256.min amount1_requested t.protocol_fees1 in
  t.protocol_fees0 <- U256.sub t.protocol_fees0 pay0;
  t.protocol_fees1 <- U256.sub t.protocol_fees1 pay1;
  t.balance0 <- U256.checked_sub t.balance0 pay0;
  t.balance1 <- U256.checked_sub t.balance1 pay1;
  (pay0, pay1)
let positions t = Hashtbl.fold (fun _ p acc -> p :: acc) t.position_table []
let position_count t = Hashtbl.length t.position_table
let initialized_tick_count t = Tick.initialized_count t.ticks

(* ------------------------------------------------------------------ *)
(* Fee growth inside a range                                           *)
(* ------------------------------------------------------------------ *)

let fee_growth_inside t ~lower_tick ~upper_tick =
  let outside tick =
    match Tick.find t.ticks tick with
    | Some info -> (info.Tick.fee_growth_outside0, info.Tick.fee_growth_outside1)
    | None -> (U256.zero, U256.zero)
  in
  let lower0, lower1 = outside lower_tick in
  let upper0, upper1 = outside upper_tick in
  (* All subtractions wrap, exactly as V3's X128 accounting does. *)
  let below0, below1 =
    if t.tick >= lower_tick then (lower0, lower1)
    else (U256.sub t.fee_growth_global0 lower0, U256.sub t.fee_growth_global1 lower1)
  in
  let above0, above1 =
    if t.tick < upper_tick then (upper0, upper1)
    else (U256.sub t.fee_growth_global0 upper0, U256.sub t.fee_growth_global1 upper1)
  in
  ( U256.sub (U256.sub t.fee_growth_global0 below0) above0,
    U256.sub (U256.sub t.fee_growth_global1 below1) above1 )

(* ------------------------------------------------------------------ *)
(* Swaps                                                               *)
(* ------------------------------------------------------------------ *)

type swap_result = {
  amount_in : U256.t;
  amount_out : U256.t;
  fee_paid : U256.t;
  sqrt_price_after : U256.t;
  tick_after : int;
  ticks_crossed : int;
}

let default_price_limit ~zero_for_one =
  if zero_for_one then U256.add Tick_math.min_sqrt_ratio U256.one
  else U256.sub Tick_math.max_sqrt_ratio U256.one

let swap t ~zero_for_one ~amount ~sqrt_price_limit =
  let valid_limit =
    if zero_for_one then
      U256.lt sqrt_price_limit t.sqrt_price && U256.ge sqrt_price_limit Tick_math.min_sqrt_ratio
    else
      U256.gt sqrt_price_limit t.sqrt_price && U256.lt sqrt_price_limit Tick_math.max_sqrt_ratio
  in
  let specified_positive =
    match amount with
    | Swap_math.Exact_in a | Swap_math.Exact_out a -> not (U256.is_zero a)
  in
  if not valid_limit then Error "pool: invalid price limit"
  else if not specified_positive then Error "pool: zero amount"
  else begin
    (* Every position in range anywhere along the swap path may accrue
       fees: mark the current set now, entrants as ticks are crossed. *)
    mark_fee_bearing t;
    let remaining = ref amount in
    let total_in = ref U256.zero and total_out = ref U256.zero in
    let total_fee = ref U256.zero in
    let crossed = ref 0 in
    let finished = ref false in
    while not !finished do
      let exhausted =
        match !remaining with
        | Swap_math.Exact_in a | Swap_math.Exact_out a -> U256.is_zero a
      in
      if exhausted || U256.equal t.sqrt_price sqrt_price_limit then finished := true
      else begin
        (* Find the next initialized tick in the swap direction; the pool
           edge acts as a final pseudo-tick. *)
        let tick_next, initialized =
          if zero_for_one then
            match Tick.next_initialized t.ticks ~from_tick:t.tick ~lte:true with
            | Some tk -> (Stdlib.max tk Tick_math.min_tick, true)
            | None -> (Tick_math.min_tick, false)
          else
            match Tick.next_initialized t.ticks ~from_tick:t.tick ~lte:false with
            | Some tk -> (Stdlib.min tk Tick_math.max_tick, true)
            | None -> (Tick_math.max_tick, false)
        in
        let sqrt_tick_next = Tick_math.get_sqrt_ratio_at_tick tick_next in
        let target =
          if zero_for_one then U256.max sqrt_tick_next sqrt_price_limit
          else U256.min sqrt_tick_next sqrt_price_limit
        in
        if U256.equal target t.sqrt_price then
          (* No liquidity left in the direction of travel. *)
          finished := true
        else begin
          let step =
            Swap_math.compute_swap_step ~sqrt_price_current:t.sqrt_price
              ~sqrt_price_target:target ~liquidity:t.liquidity
              ~amount_remaining:!remaining ~fee_pips:t.fee_pips
          in
          t.sqrt_price <- step.Swap_math.sqrt_price_next;
          let consumed_in = U256.add step.amount_in step.fee_amount in
          total_in := U256.add !total_in consumed_in;
          total_out := U256.add !total_out step.amount_out;
          total_fee := U256.add !total_fee step.fee_amount;
          (remaining :=
             match !remaining with
             | Swap_math.Exact_in a ->
               Swap_math.Exact_in
                 (if U256.ge consumed_in a then U256.zero else U256.sub a consumed_in)
             | Swap_math.Exact_out a ->
               Swap_math.Exact_out
                 (if U256.ge step.amount_out a then U256.zero else U256.sub a step.amount_out));
          (* The protocol's cut comes off the top; the remainder accrues
             to in-range liquidity on the input token side. *)
          let protocol_cut =
            match t.protocol_fee_denominator with
            | Some n -> U256.div step.fee_amount (U256.of_int n)
            | None -> U256.zero
          in
          (if not (U256.is_zero protocol_cut) then
             if zero_for_one then
               t.protocol_fees0 <- U256.add t.protocol_fees0 protocol_cut
             else t.protocol_fees1 <- U256.add t.protocol_fees1 protocol_cut);
          let lp_fee = U256.sub step.fee_amount protocol_cut in
          if not (U256.is_zero t.liquidity) then begin
            let growth = U256.mul_div lp_fee Q96.q128 t.liquidity in
            if zero_for_one then
              t.fee_growth_global0 <- U256.add t.fee_growth_global0 growth
            else t.fee_growth_global1 <- U256.add t.fee_growth_global1 growth
          end;
          if U256.equal t.sqrt_price sqrt_tick_next then begin
            if initialized then begin
              incr crossed;
              write_tick t tick_next;
              let net =
                Tick.cross t.ticks ~tick:tick_next
                  ~fee_growth_global0:t.fee_growth_global0
                  ~fee_growth_global1:t.fee_growth_global1
              in
              let net = if zero_for_one then Signed.neg net else net in
              t.liquidity <- Signed.apply t.liquidity net
            end;
            t.tick <- (if zero_for_one then tick_next - 1 else tick_next);
            (* Crossing flips range membership for positions bound at
               this tick; entrants get marked for the epoch summary. *)
            (match Hashtbl.find_opt t.bounds_index tick_next with
            | Some l -> List.iter (refresh_range_membership t) !l
            | None -> ())
          end
          else t.tick <- Tick_math.get_tick_at_sqrt_ratio t.sqrt_price
        end
      end
    done;
    if U256.is_zero !total_in && U256.is_zero !total_out then
      Error "pool: insufficient liquidity"
    else begin
      if zero_for_one then begin
        t.balance0 <- U256.add t.balance0 !total_in;
        t.balance1 <- U256.checked_sub t.balance1 !total_out
      end
      else begin
        t.balance1 <- U256.add t.balance1 !total_in;
        t.balance0 <- U256.checked_sub t.balance0 !total_out
      end;
      Ok
        { amount_in = !total_in; amount_out = !total_out; fee_paid = !total_fee;
          sqrt_price_after = t.sqrt_price; tick_after = t.tick;
          ticks_crossed = !crossed }
    end
  end

(* ------------------------------------------------------------------ *)
(* Liquidity management                                                *)
(* ------------------------------------------------------------------ *)

let check_ticks t ~lower_tick ~upper_tick =
  let spacing = Tick.tick_spacing t.ticks in
  if lower_tick >= upper_tick then Error "pool: lower tick must be below upper tick"
  else if lower_tick < Tick_math.min_tick || upper_tick > Tick_math.max_tick then
    Error "pool: tick out of range"
  else if lower_tick mod spacing <> 0 || upper_tick mod spacing <> 0 then
    Error "pool: tick not a multiple of spacing"
  else Ok ()

let update_position_liquidity t position ~liquidity_delta =
  let lower_tick = position.Position.lower_tick in
  let upper_tick = position.Position.upper_tick in
  write_pos t position.Position.id;
  write_tick t lower_tick;
  write_tick t upper_tick;
  let flipped_lower =
    Tick.update t.ticks ~tick:lower_tick ~current_tick:t.tick
      ~fee_growth_global0:t.fee_growth_global0 ~fee_growth_global1:t.fee_growth_global1
      ~liquidity_delta ~upper:false
  in
  let flipped_upper =
    Tick.update t.ticks ~tick:upper_tick ~current_tick:t.tick
      ~fee_growth_global0:t.fee_growth_global0 ~fee_growth_global1:t.fee_growth_global1
      ~liquidity_delta ~upper:true
  in
  let inside0, inside1 = fee_growth_inside t ~lower_tick ~upper_tick in
  Position.update position ~liquidity_delta ~fee_growth_inside0:inside0
    ~fee_growth_inside1:inside1;
  (* Ticks whose gross liquidity dropped to zero are garbage collected. *)
  (match liquidity_delta with
  | Liquidity_math.Remove _ ->
    if flipped_lower then Tick.clear t.ticks lower_tick;
    if flipped_upper then Tick.clear t.ticks upper_tick
  | Liquidity_math.Add _ -> ());
  if t.tick >= lower_tick && t.tick < upper_tick then
    t.liquidity <- Liquidity_math.apply_delta t.liquidity liquidity_delta

let mint t ~position_id ~owner ~lower_tick ~upper_tick ~liquidity =
  match check_ticks t ~lower_tick ~upper_tick with
  | Error e -> Error e
  | Ok () ->
    if U256.is_zero liquidity then Error "pool: zero liquidity mint"
    else begin
      let position =
        match Hashtbl.find_opt t.position_table position_id with
        | Some p -> p
        | None ->
          let p = Position.create ~id:position_id ~owner ~lower_tick ~upper_tick in
          Hashtbl.add t.position_table position_id p;
          bounds_add t lower_tick position_id;
          bounds_add t upper_tick position_id;
          p
      in
      if not (Address.equal position.Position.owner owner) then
        Error "pool: not the position owner"
      else if position.Position.lower_tick <> lower_tick
              || position.Position.upper_tick <> upper_tick then
        Error "pool: position range mismatch"
      else begin
        update_position_liquidity t position ~liquidity_delta:(Liquidity_math.Add liquidity);
        mark_dirty t position_id;
        refresh_range_membership t position_id;
        let amount0, amount1 =
          Liquidity_math.get_amounts_for_liquidity_rounding_up ~sqrt_price:t.sqrt_price
            ~sqrt_a:(Tick_math.get_sqrt_ratio_at_tick lower_tick)
            ~sqrt_b:(Tick_math.get_sqrt_ratio_at_tick upper_tick)
            ~liquidity
        in
        t.balance0 <- U256.add t.balance0 amount0;
        t.balance1 <- U256.add t.balance1 amount1;
        Ok (amount0, amount1)
      end
    end

let burn t ~position_id ~liquidity =
  match Hashtbl.find_opt t.position_table position_id with
  | None -> Error "pool: unknown position"
  | Some position ->
    if U256.gt liquidity position.Position.liquidity then
      Error "pool: burning more than the position holds"
    else if U256.is_zero liquidity then Error "pool: zero liquidity burn"
    else begin
      update_position_liquidity t position
        ~liquidity_delta:(Liquidity_math.Remove liquidity);
      mark_dirty t position_id;
      let amount0, amount1 =
        Liquidity_math.get_amounts_for_liquidity ~sqrt_price:t.sqrt_price
          ~sqrt_a:(Tick_math.get_sqrt_ratio_at_tick position.Position.lower_tick)
          ~sqrt_b:(Tick_math.get_sqrt_ratio_at_tick position.Position.upper_tick)
          ~liquidity
      in
      position.Position.tokens_owed0 <- U256.add position.Position.tokens_owed0 amount0;
      position.Position.tokens_owed1 <- U256.add position.Position.tokens_owed1 amount1;
      Ok (amount0, amount1)
    end

let touch_position t position_id =
  match Hashtbl.find_opt t.position_table position_id with
  | None -> Error "pool: unknown position"
  | Some position ->
    let inside0, inside1 =
      fee_growth_inside t ~lower_tick:position.Position.lower_tick
        ~upper_tick:position.Position.upper_tick
    in
    Position.update position ~liquidity_delta:(Liquidity_math.Add U256.zero)
      ~fee_growth_inside0:inside0 ~fee_growth_inside1:inside1;
    write_pos t position_id;
    Ok ()

let collect t ~position_id ~amount0_requested ~amount1_requested =
  match touch_position t position_id with
  | Error e -> Error e
  | Ok () ->
    let position = Hashtbl.find t.position_table position_id in
    let pay0 = U256.min amount0_requested position.Position.tokens_owed0 in
    let pay1 = U256.min amount1_requested position.Position.tokens_owed1 in
    position.Position.tokens_owed0 <- U256.sub position.Position.tokens_owed0 pay0;
    position.Position.tokens_owed1 <- U256.sub position.Position.tokens_owed1 pay1;
    t.balance0 <- U256.checked_sub t.balance0 pay0;
    t.balance1 <- U256.checked_sub t.balance1 pay1;
    mark_dirty t position_id;
    if Position.is_empty position then begin
      Hashtbl.remove t.position_table position_id;
      Hashtbl.remove t.in_range position_id;
      bounds_remove t position.Position.lower_tick position_id;
      bounds_remove t position.Position.upper_tick position_id
    end;
    Ok (pay0, pay1)

(* ------------------------------------------------------------------ *)
(* Flash loans                                                         *)
(* ------------------------------------------------------------------ *)

let flash t ~amount0 ~amount1 ~callback =
  if U256.gt amount0 t.balance0 || U256.gt amount1 t.balance1 then
    Error "pool: flash exceeds reserves"
  else begin
    let fee_den = U256.of_int Swap_math.fee_denominator in
    let fee_of a = U256.mul_div_rounding_up a (U256.of_int t.fee_pips) fee_den in
    let fee0 = fee_of amount0 and fee1 = fee_of amount1 in
    let before0 = t.balance0 and before1 = t.balance1 in
    t.balance0 <- U256.sub t.balance0 amount0;
    t.balance1 <- U256.sub t.balance1 amount1;
    match callback ~fee0 ~fee1 with
    | Error e ->
      (* The whole flash inverts: reserves are restored untouched. *)
      t.balance0 <- before0;
      t.balance1 <- before1;
      Error e
    | Ok (repay0, repay1) ->
      let owed0 = U256.add amount0 fee0 and owed1 = U256.add amount1 fee1 in
      if U256.lt repay0 owed0 || U256.lt repay1 owed1 then begin
        t.balance0 <- before0;
        t.balance1 <- before1;
        Error "pool: flash not repaid"
      end
      else begin
        t.balance0 <- U256.add t.balance0 repay0;
        t.balance1 <- U256.add t.balance1 repay1;
        if not (U256.is_zero t.liquidity) then begin
          let credit fee global =
            U256.add global (U256.mul_div fee Q96.q128 t.liquidity)
          in
          mark_fee_bearing t;
          t.fee_growth_global0 <- credit fee0 t.fee_growth_global0;
          t.fee_growth_global1 <- credit fee1 t.fee_growth_global1
        end;
        Ok (fee0, fee1)
      end
  end

(* ------------------------------------------------------------------ *)
(* Audit images                                                        *)
(* ------------------------------------------------------------------ *)

(* Canonical byte images of a position / an initialized tick for the
   twin's differential audit. Not a durable codec — a stable,
   field-complete surface: two pools that agree on every image (plus
   the scalar section) are observably identical. *)

let position_bytes t pid =
  match Hashtbl.find_opt t.position_table pid with
  | None -> None
  | Some p ->
    let buf = Buffer.create 196 in
    Buffer.add_bytes buf (Address.to_bytes p.Position.owner);
    Buffer.add_int64_be buf (Int64.of_int p.Position.lower_tick);
    Buffer.add_int64_be buf (Int64.of_int p.Position.upper_tick);
    Buffer.add_bytes buf (U256.to_bytes_be p.Position.liquidity);
    Buffer.add_bytes buf (U256.to_bytes_be p.Position.fee_growth_inside0_last);
    Buffer.add_bytes buf (U256.to_bytes_be p.Position.fee_growth_inside1_last);
    Buffer.add_bytes buf (U256.to_bytes_be p.Position.tokens_owed0);
    Buffer.add_bytes buf (U256.to_bytes_be p.Position.tokens_owed1);
    Some (Buffer.to_bytes buf)

let tick_bytes t tick =
  match Tick.find t.ticks tick with
  | None -> None
  | Some info ->
    let buf = Buffer.create 129 in
    Buffer.add_bytes buf (U256.to_bytes_be info.Tick.liquidity_gross);
    Buffer.add_char buf
      (if Signed.is_negative info.Tick.liquidity_net then '\001' else '\000');
    Buffer.add_bytes buf (U256.to_bytes_be (Signed.magnitude info.Tick.liquidity_net));
    Buffer.add_bytes buf (U256.to_bytes_be info.Tick.fee_growth_outside0);
    Buffer.add_bytes buf (U256.to_bytes_be info.Tick.fee_growth_outside1);
    Some (Buffer.to_bytes buf)

(* Deterministic nth initialized tick, walking the sorted set. *)
let nth_initialized ticks n =
  let rec go from k =
    match Tick.next_initialized ticks ~from_tick:from ~lte:false with
    | None -> None
    | Some tk -> if k = 0 then Some tk else go tk (k - 1)
  in
  go (Tick_math.min_tick - 1) n

(* Corruption stays within the fee-growth accumulators: they are pure
   audit surface, so the flipped run keeps satisfying the pool's
   liquidity arithmetic and terminates — the audit, not a crash, must
   be what catches the fault. Marks only the audit set: out-of-band
   damage is not attributable to any transaction. *)
let corrupt_tick_bit t ~index ~bit =
  let n = Tick.initialized_count t.ticks in
  if n = 0 then None
  else begin
    let idx = ((index mod n) + n) mod n in
    match nth_initialized t.ticks idx with
    | None -> None
    | Some tick ->
      (match Tick.find t.ticks tick with
      | None -> None
      | Some info ->
        let flip v =
          let b = ((bit mod 256) + 256) mod 256 in
          let bytes = U256.to_bytes_be v in
          let o = b / 8 in
          Bytes.set bytes o
            (Char.chr (Char.code (Bytes.get bytes o) lxor (1 lsl (b mod 8))));
          U256.of_bytes_be bytes
        in
        if (bit / 256) mod 2 = 0 then
          info.Tick.fee_growth_outside0 <- flip info.Tick.fee_growth_outside0
        else info.Tick.fee_growth_outside1 <- flip info.Tick.fee_growth_outside1;
        Hashtbl.replace t.audit_ticks tick ();
        Some tick)
  end

(* ------------------------------------------------------------------ *)
(* Invariant checks                                                    *)
(* ------------------------------------------------------------------ *)

let check_liquidity_consistency t =
  (* Sum liquidity_net over all initialized ticks at or below the current
     tick; the result must equal the tracked in-range liquidity. *)
  let net =
    Tick.fold t.ticks ~init:Signed.zero ~f:(fun tick info acc ->
        if tick <= t.tick then Signed.add acc info.Tick.liquidity_net else acc)
  in
  (not (Signed.is_negative net)) && U256.equal (Signed.magnitude net) t.liquidity

let check_owed_solvency t =
  (* Everything the pool owes on demand — position [tokens_owed] (burned
     principal plus accrued fees) and uncollected protocol fees — must be
     covered by the reserves it actually holds. *)
  let owed0, owed1 =
    Hashtbl.fold
      (fun _ (p : Position.t) (o0, o1) ->
        (U256.add o0 p.Position.tokens_owed0, U256.add o1 p.Position.tokens_owed1))
      t.position_table
      (t.protocol_fees0, t.protocol_fees1)
  in
  U256.ge t.balance0 owed0 && U256.ge t.balance1 owed1
