(** The concentrated-liquidity constant-product pool — the AMM logic that
    baseline Uniswap runs on the mainchain and that ammBoost migrates,
    unchanged, to the sidechain (§4.2 "ammBoost does not change the logic
    based on which an AMM operates").

    State mirrors V3's core: a Q64.96 sqrt price and current tick, the
    in-range liquidity, global fee-growth accumulators (X128), the tick
    table and the position map. *)

module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id

type t

val create :
  pool_id:int ->
  token0:Chain.Token.t ->
  token1:Chain.Token.t ->
  fee_pips:int ->
  tick_spacing:int ->
  sqrt_price:U256.t ->
  t

val clone : t -> t
(** Deep copy of the full pool state (price, liquidity, ticks, positions,
    fee accumulators) — the auditing replays in {!Sidechain} start from a
    clone of the epoch-start state. *)

(** {1 Inspection} *)

val pool_id : t -> int
val token0 : t -> Chain.Token.t
val token1 : t -> Chain.Token.t
val fee_pips : t -> int
val sqrt_price : t -> U256.t
val current_tick : t -> int
val liquidity : t -> U256.t
(** Liquidity in range at the current price. *)

val balance0 : t -> U256.t
(** Reserve of token0 (paper: res_A). *)

val balance1 : t -> U256.t
val fee_growth_global0 : t -> U256.t
val fee_growth_global1 : t -> U256.t
val find_position : t -> Position_id.t -> Position.t option
val positions : t -> Position.t list
val position_count : t -> int
val initialized_tick_count : t -> int

(** {1 Swaps} *)

type swap_result = {
  amount_in : U256.t;        (** input consumed, fee included *)
  amount_out : U256.t;
  fee_paid : U256.t;
  sqrt_price_after : U256.t;
  tick_after : int;
  ticks_crossed : int;
}

val swap :
  t ->
  zero_for_one:bool ->
  amount:Amm_math.Swap_math.amount_specified ->
  sqrt_price_limit:U256.t ->
  (swap_result, string) result
(** Executes a swap against the pool. The price never crosses
    [sqrt_price_limit]; an exact-in swap that exhausts liquidity before
    consuming its input fills partially (the router layers slippage
    protection on top). *)

val default_price_limit : zero_for_one:bool -> U256.t
(** The loosest legal limit for the direction. *)

(** {1 Liquidity management} *)

val mint :
  t ->
  position_id:Position_id.t ->
  owner:Address.t ->
  lower_tick:int ->
  upper_tick:int ->
  liquidity:U256.t ->
  (U256.t * U256.t, string) result
(** Adds liquidity to a (possibly new) position; returns the token
    amounts the LP owes the pool, rounded up. *)

val burn :
  t ->
  position_id:Position_id.t ->
  liquidity:U256.t ->
  (U256.t * U256.t, string) result
(** Removes liquidity; the returned amounts are credited to the
    position's [tokens_owed] (collected separately, as in V3). *)

val collect :
  t ->
  position_id:Position_id.t ->
  amount0_requested:U256.t ->
  amount1_requested:U256.t ->
  (U256.t * U256.t, string) result
(** Pays out owed tokens (fees and burned principal) up to the requested
    amounts; deletes the position once empty. *)

val touch_position : t -> Position_id.t -> (unit, string) result
(** Refreshes a position's fee accounting without changing liquidity
    (used before reading [tokens_owed]). *)

(** {1 Epoch change tracking}

    The pool marks, at inclusion time, every position whose epoch-summary
    entry may have changed: minted/burned/collected positions plus every
    position that was in range during a fee event (swap or flash) since
    the last reset. The summary builder drains this set instead of
    scanning the whole position table — positions outside it provably
    kept their [fee_growth_inside], so their entries are unchanged. *)

val epoch_candidates : t -> Position_id.t list
(** The current over-approximation of changed positions, unordered. *)

val epoch_reset : t -> unit
(** Clears the candidate set at an epoch boundary. *)

val fee_growth_inside : t -> lower_tick:int -> upper_tick:int -> U256.t * U256.t

(** {1 Twin-audit write tracking}

    Orthogonal to the epoch candidate set: these record {e exactly} the
    positions and ticks whose bytes were written, so the state twin can
    capture per-transaction after-images and the epoch-boundary audit
    can compare O(written) keys instead of O(state). *)

val drain_op_writes : t -> Position_id.t list * int list
(** The positions and ticks written since the last drain (both sorted
    ascending), clearing the per-op set — called by the processor's tap
    after each transaction. *)

val audit_writes : t -> Position_id.t list * int list
(** Everything written since the last {!clear_audit_writes} (sorted),
    fault injections included. *)

val clear_audit_writes : t -> unit

val position_bytes : t -> Position_id.t -> bytes option
(** Canonical byte image of a position (owner, range, liquidity, fee
    checkpoints, owed tokens); [None] once deleted. *)

val tick_bytes : t -> int -> bytes option
(** Canonical byte image of an initialized tick (gross/net liquidity,
    outside fee growth); [None] for uninitialized ticks. *)

val corrupt_tick_bit : t -> index:int -> bit:int -> int option
(** Fault injection: flips one bit in the fee-growth accumulators of
    the [index mod initialized]-th initialized tick and marks it on the
    audit surface (but on no transaction's write set — corruption is
    out-of-band by construction). Returns the tick, or [None] when no
    tick is initialized. *)

(** {1 Protocol fees}

    V3's protocol fee switch: when enabled, 1/n of every swap fee is
    diverted to the protocol instead of LPs; the factory owner collects
    it separately. *)

val set_protocol_fee : t -> denominator:int option -> unit
(** [Some n] diverts 1/n of swap fees (V3 allows 4..10); [None] turns the
    switch off. Raises [Invalid_argument] outside that range. *)

val protocol_fee_denominator : t -> int option
val protocol_fees : t -> U256.t * U256.t
(** Accrued, uncollected protocol fees per token. *)

val collect_protocol : t -> amount0_requested:U256.t -> amount1_requested:U256.t ->
  U256.t * U256.t
(** Withdraws accrued protocol fees (up to the requested amounts) from
    the reserves; returns what was paid. *)

(** {1 Flash loans} *)

val flash :
  t ->
  amount0:U256.t ->
  amount1:U256.t ->
  callback:(fee0:U256.t -> fee1:U256.t -> (U256.t * U256.t, string) result) ->
  (U256.t * U256.t, string) result
(** Lends reserves for the duration of the callback; the callback returns
    what it repays. Reverts (restoring balances) unless repayment covers
    principal plus fee; fees accrue to in-range LPs. Returns the fees
    collected. *)

(** {1 Invariant helpers (for tests)} *)

val check_liquidity_consistency : t -> bool
(** Recomputes in-range liquidity from the tick table and compares. *)

val check_owed_solvency : t -> bool
(** Reserves cover every on-demand obligation: the sum of position
    [tokens_owed] plus uncollected protocol fees, per token. *)
