(* Write-ahead-log segments.

   A segment is a header followed by framed records:

     header:  magic "ammboost-wal/1\n" (15 B)
              start_index  i64   absolute index of the first record
              epoch        i64   the snapshot boundary that opened it
     frame:   len     u32
              crc     u32   CRC-32 over the payload
              payload len B (a [Record.t] encoding)
              marker  u8    0xA6 — the frame's commit marker

   Segment 0 opens at genesis; every snapshot at epoch [e] rotates the
   log into a fresh segment keyed by [e], so truncating the WAL at a
   snapshot boundary is just deleting older segments. The header makes
   each segment self-describing: recovery can place its records in the
   global stream even when the matching snapshot was rejected.

   Appends flush per record — a crash loses at most the frame in flight,
   and [read_segment] keeps the longest valid prefix, reporting the torn
   tail for {!repair} to cut off. *)

let magic = "ammboost-wal/1\n"
let magic_len = String.length magic
let header_len = magic_len + 8 + 8
let marker = 0xA6
let frame_overhead = 4 + 4 + 1

let segment_name ~epoch = Printf.sprintf "wal-%08d.log" epoch
let segment_path ~dir ~epoch = Filename.concat dir (segment_name ~epoch)

let header_bytes ~start_index ~epoch =
  let buf = Buffer.create header_len in
  Buffer.add_string buf magic;
  Wire.w_i64 buf start_index;
  Wire.w_i64 buf epoch;
  Buffer.to_bytes buf

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = { oc : out_channel; w_path : string }

let path w = w.w_path

let open_append ~dir ~epoch ~start_index =
  Fsio.mkdir_p dir;
  let p = segment_path ~dir ~epoch in
  let fresh = not (Sys.file_exists p) in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 p in
  if fresh then begin
    output_bytes oc (header_bytes ~start_index ~epoch);
    flush oc
  end;
  { oc; w_path = p }

let append w record =
  let payload = Record.to_bytes record in
  let buf = Buffer.create (Bytes.length payload + frame_overhead) in
  Wire.w_u32 buf (Bytes.length payload);
  Wire.w_u32 buf (Crc32.digest payload);
  Buffer.add_bytes buf payload;
  Wire.w_u8 buf marker;
  output_bytes w.oc (Buffer.to_bytes buf);
  flush w.oc

let close w = try close_out w.oc with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type read_result = {
  rr_epoch : int;
  rr_start_index : int;
  rr_records : Record.t list;  (* the valid prefix, in append order *)
  rr_valid_len : int;          (* bytes of valid prefix, header included *)
  rr_torn : string option;     (* why reading stopped early, if it did *)
}

let read_segment p =
  match Fsio.read_file p with
  | exception Sys_error e -> Error ("unreadable: " ^ e)
  | b ->
    let len = Bytes.length b in
    if len < header_len then Error (Printf.sprintf "truncated header (%d bytes)" len)
    else if not (String.equal (Bytes.sub_string b 0 magic_len) magic) then
      Error "bad magic (not an ammboost-wal/1 segment)"
    else begin
      let rr_start_index = Int64.to_int (Bytes.get_int64_be b magic_len) in
      let rr_epoch = Int64.to_int (Bytes.get_int64_be b (magic_len + 8)) in
      let records = ref [] in
      let pos = ref header_len in
      let torn = ref None in
      let stop reason = torn := Some reason in
      while !torn = None && !pos < len do
        let remaining = len - !pos in
        if remaining < frame_overhead then
          stop (Printf.sprintf "torn frame header (%d trailing bytes)" remaining)
        else begin
          let plen = Int32.to_int (Bytes.get_int32_be b !pos) land 0xFFFF_FFFF in
          if plen > remaining - frame_overhead then
            stop (Printf.sprintf "torn frame payload (want %d, have %d)" plen
                    (remaining - frame_overhead))
          else begin
            let stored =
              Int32.to_int (Bytes.get_int32_be b (!pos + 4)) land 0xFFFF_FFFF
            in
            let computed = Crc32.digest_sub b ~pos:(!pos + 8) ~len:plen in
            if stored <> computed then
              stop
                (Printf.sprintf "record checksum mismatch (stored %08x, computed %08x)"
                   stored computed)
            else if Char.code (Bytes.get b (!pos + 8 + plen)) <> marker then
              stop "record commit marker missing"
            else
              match Record.of_bytes (Bytes.sub b (!pos + 8) plen) with
              | Error e -> stop ("record undecodable: " ^ e)
              | Ok r ->
                records := r :: !records;
                pos := !pos + frame_overhead + plen
          end
        end
      done;
      Ok
        { rr_epoch; rr_start_index; rr_records = List.rev !records;
          rr_valid_len = !pos; rr_torn = !torn }
    end

(* Cut a torn tail back to the valid prefix (atomic rewrite). *)
let repair p rr =
  match rr.rr_torn with
  | None -> ()
  | Some _ ->
    let b = Fsio.read_file p in
    Fsio.write_atomic p (Bytes.sub b 0 (Stdlib.min rr.rr_valid_len (Bytes.length b)))

let list ~dir =
  Fsio.files_matching ~dir ~prefix:"wal-" ~suffix:".log"
  |> List.filter_map (fun f ->
         match int_of_string_opt (String.sub f 4 8) with
         | Some epoch -> Some (epoch, Filename.concat dir f)
         | None -> None)
