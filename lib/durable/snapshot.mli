(** Versioned, checksummed snapshot files.

    A snapshot captures every durable state surface at an epoch boundary
    as named byte sections (see {!State_codec} for the section registry),
    framed as

    {v magic | epoch | records_before | sections | crc32 | 0xA5 v}

    and written atomically (temp file + rename). [records_before] is the
    number of WAL records appended before the snapshot was taken: it
    anchors the snapshot in the record stream so recovery can skip-count
    records whose segments were already pruned. {!decode} accepts a file
    only when magic, length, CRC-32 and the commit marker all agree —
    every torn-write mode fails at least one check. *)

val magic : string
(** ["ammboost-snapshot/1\n"] — bump the version on format changes. *)

type meta = { epoch : int; records_before : int }
type t = { meta : meta; sections : (string * bytes) list }

val section : t -> string -> bytes option

val encode : t -> bytes
val decode : bytes -> (t, string) result

val filename : epoch:int -> string
val path : dir:string -> epoch:int -> string

val write : dir:string -> t -> string
(** Atomic write under the epoch-keyed name; returns the path. *)

val load : string -> (t, string) result
(** Read + decode; unreadable files are an [Error], never an exception. *)

val list : dir:string -> (int * string) list
(** [(epoch, path)] of every snapshot file present, ascending by epoch. *)
