module U256 = Amm_math.U256
module Address = Chain.Address
module Bls = Amm_crypto.Bls
module Token_bank = Tokenbank.Token_bank
module Sync_payload = Tokenbank.Sync_payload
module Pos_store = Tokenbank.Pos_store
module Pool = Uniswap.Pool
module Deposits = Sidechain.Deposits

(* The snapshot section registry: every durable state surface at an
   epoch boundary, one named byte section each. Adding a surface means
   adding a name here, a builder, and a validator arm — recovery rejects
   snapshots containing sections it does not know.

     bank.meta           TokenBank scalars: sync frontier, halt state,
                         committee vk, custody, pools, exit claims
     bank.positions      the open-position flat store (Pos_store codec)
     sidechain.deposits  the epoch's deposit accounts (Deposits codec)
     sidechain.pool      AMM pool scalars (price, tick, liquidity,
                         balances, fee growths, table sizes)
     window.pending      certified-but-unapplied summaries, oldest first

   Encodings are exact (encode . decode = id byte-for-byte): resume-time
   verification compares freshly rebuilt sections against disk. *)

let s_bank_meta = "bank.meta"
let s_bank_positions = "bank.positions"
let s_deposits = "sidechain.deposits"
let s_pool = "sidechain.pool"
let s_pending = "window.pending"

(* Pool ids are dense from 0; probe a fixed small range so the encoding
   never depends on iteration order. *)
let max_pools = 8

let w_u256 buf v = Wire.w_fixed buf (U256.to_bytes_be v)
let r_u256 r what = U256.of_bytes_be (Wire.r_fixed r 32 what)

let bank_meta_bytes bank =
  let buf = Buffer.create 512 in
  Wire.w_i64 buf (Token_bank.last_synced_epoch bank);
  Wire.w_u8 buf (if Token_bank.is_halted bank then 1 else 0);
  Wire.w_i64 buf (match Token_bank.halt_epoch bank with Some e -> e | None -> -1);
  Wire.w_fixed buf (Bls.public_key_to_bytes (Token_bank.committee_vk bank));
  let c0, c1 = Token_bank.total_custody bank in
  w_u256 buf c0;
  w_u256 buf c1;
  let pools =
    List.filter_map (Token_bank.pool bank) (List.init max_pools (fun i -> i))
  in
  Wire.w_u32 buf (List.length pools);
  List.iter
    (fun (p : Token_bank.pool_info) ->
      Wire.w_i64 buf p.Token_bank.pool_id;
      Wire.w_i64 buf p.Token_bank.flash_fee_pips;
      w_u256 buf p.Token_bank.balance0;
      w_u256 buf p.Token_bank.balance1)
    pools;
  let exits = Token_bank.exits bank in
  Wire.w_u32 buf (List.length exits);
  List.iter
    (fun (c : Token_bank.exit_claim) ->
      Wire.w_fixed buf (Address.to_bytes c.Token_bank.claimant);
      w_u256 buf c.Token_bank.claim0;
      w_u256 buf c.Token_bank.claim1;
      w_u256 buf c.Token_bank.refund0;
      w_u256 buf c.Token_bank.refund1;
      Wire.w_i64 buf c.Token_bank.positions_closed)
    exits;
  Buffer.to_bytes buf

let validate_bank_meta b =
  Wire.read b (fun r ->
      let _synced = Wire.r_i64 r "synced_epoch" in
      let halted = Wire.r_u8 r "halted" in
      if halted > 1 then Wire.fail "bad halted flag %d" halted;
      let _halt_epoch = Wire.r_i64 r "halt_epoch" in
      let _vk = Bls.public_key_of_bytes (Wire.r_fixed r Bls.public_key_size "vk") in
      let _c0 = r_u256 r "custody0" and _c1 = r_u256 r "custody1" in
      let npools = Wire.r_u32 r "pool count" in
      if npools > max_pools then Wire.fail "implausible pool count %d" npools;
      for _ = 1 to npools do
        let _ = Wire.r_i64 r "pool_id" in
        let _ = Wire.r_i64 r "flash_fee_pips" in
        let _ = r_u256 r "pool balance0" in
        let _ = r_u256 r "pool balance1" in
        ()
      done;
      let nexits = Wire.r_u32 r "exit count" in
      if nexits > Wire.remaining r / 148 + 1 then
        Wire.fail "implausible exit count %d" nexits;
      for _ = 1 to nexits do
        let _ = Wire.r_fixed r 20 "claimant" in
        let _ = r_u256 r "claim0" and _ = r_u256 r "claim1" in
        let _ = r_u256 r "refund0" and _ = r_u256 r "refund1" in
        let _ = Wire.r_i64 r "positions_closed" in
        ()
      done;
      Wire.expect_end r "bank.meta")

let pool_bytes pool =
  let buf = Buffer.create 256 in
  w_u256 buf (Pool.sqrt_price pool);
  Wire.w_i64 buf (Pool.current_tick pool);
  w_u256 buf (Pool.liquidity pool);
  w_u256 buf (Pool.balance0 pool);
  w_u256 buf (Pool.balance1 pool);
  w_u256 buf (Pool.fee_growth_global0 pool);
  w_u256 buf (Pool.fee_growth_global1 pool);
  Wire.w_i64 buf (Pool.position_count pool);
  Wire.w_i64 buf (Pool.initialized_tick_count pool);
  Buffer.to_bytes buf

let validate_pool b =
  Wire.read b (fun r ->
      let _ = r_u256 r "sqrt_price" in
      let _ = Wire.r_i64 r "current_tick" in
      let _ = r_u256 r "liquidity" in
      let _ = r_u256 r "balance0" and _ = r_u256 r "balance1" in
      let _ = r_u256 r "fee_growth0" and _ = r_u256 r "fee_growth1" in
      let _ = Wire.r_i64 r "position_count" in
      let _ = Wire.r_i64 r "initialized_ticks" in
      Wire.expect_end r "sidechain.pool")

let pending_bytes pending =
  let buf = Buffer.create 1024 in
  Wire.w_u32 buf (List.length pending);
  List.iter
    (fun (p, s) ->
      Wire.w_var buf (Sync_payload.to_bytes p);
      Wire.w_fixed buf (Bls.signature_to_bytes s))
    pending;
  Buffer.to_bytes buf

let validate_pending b =
  Wire.read b (fun r ->
      let n = Wire.r_u32 r "pending count" in
      if n > Wire.remaining r / (4 + Bls.signature_size) + 1 then
        Wire.fail "implausible pending count %d" n;
      for _ = 1 to n do
        (match Sync_payload.of_bytes (Wire.r_var r "pending payload") with
        | Ok _ -> ()
        | Error e -> Wire.fail "pending payload: %s" e);
        let _ = Bls.signature_of_bytes (Wire.r_fixed r Bls.signature_size "pending sig") in
        ()
      done;
      Wire.expect_end r "window.pending")

let sections ~bank ~pool ~deposits ~pending =
  [ (s_bank_meta, bank_meta_bytes bank);
    (s_bank_positions, Token_bank.positions_bytes bank);
    (s_deposits, Deposits.to_bytes deposits);
    (s_pool, pool_bytes pool);
    (s_pending, pending_bytes pending) ]

(* Structural validation: every section must decode through its typed
   codec. This is what stands between a checksum-valid-but-semantically
   -garbage file and the resume path. *)
let validate_section (name, payload) =
  if String.equal name s_bank_meta then validate_bank_meta payload
  else if String.equal name s_bank_positions then begin
    match Pos_store.of_bytes payload with
    | Ok _ -> Ok ()
    | Error e -> Error (Pos_store.error_to_string e)
  end
  else if String.equal name s_deposits then begin
    match Deposits.of_bytes payload with Ok _ -> Ok () | Error e -> Error e
  end
  else if String.equal name s_pool then validate_pool payload
  else if String.equal name s_pending then validate_pending payload
  else Error (Printf.sprintf "unknown section %S" name)

let required = [ s_bank_meta; s_bank_positions; s_deposits; s_pool; s_pending ]

let validate sections =
  let missing =
    List.filter (fun n -> not (List.mem_assoc n sections)) required
  in
  if missing <> [] then
    Error (Printf.sprintf "missing sections: %s" (String.concat ", " missing))
  else
    List.fold_left
      (fun acc (name, payload) ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
          match validate_section (name, payload) with
          | Ok () -> Ok ()
          | Error e -> Error (Printf.sprintf "section %s: %s" name e)))
      (Ok ()) sections
