(** Cursor-based binary reader/writer shared by the durable codecs.

    Writers append to a [Buffer]; readers walk an untrusted byte buffer
    behind an explicit cursor and signal every malformed shape through
    {!Malformed}, which {!read} catches into a [result] — nothing in a
    decode path raises past it. *)

exception Malformed of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Malformed} with a formatted message (for decoders layered on
    top of the primitive readers). *)

(** {1 Writer} *)

val w_u8 : Buffer.t -> int -> unit
val w_u32 : Buffer.t -> int -> unit
val w_i64 : Buffer.t -> int -> unit
val w_fixed : Buffer.t -> bytes -> unit

val w_var : Buffer.t -> bytes -> unit
(** Length-prefixed ([u32] big-endian) byte string. *)

(** {1 Reader} *)

type reader

val reader : ?pos:int -> ?limit:int -> bytes -> reader
val pos : reader -> int
val remaining : reader -> int
val at_end : reader -> bool

(** Each primitive takes a short field name used in failure messages. *)

val r_u8 : reader -> string -> int
val r_u32 : reader -> string -> int
val r_i64 : reader -> string -> int
val r_fixed : reader -> int -> string -> bytes
val r_var : reader -> string -> bytes

val expect_end : reader -> string -> unit
(** Fails unless the cursor consumed the whole buffer. *)

val read : bytes -> (reader -> 'a) -> ('a, string) result
(** Run a decoder over a fresh reader; {!Malformed} (and stray
    [Invalid_argument] from byte primitives) become [Error]. *)
