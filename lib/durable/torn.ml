(* Deliberate on-disk corruption, one mode per [Fault_plan.torn] variant.
   Applied to the file a dying process was appending (and, in the crash
   drill, to completed snapshots) — each mode produces a file the
   recovery scan must detect by checksum/marker and reject or repair.

   The corruption is deterministic in the file contents alone (no RNG):
   the drill's crash/recover loops stay reproducible at any seed. *)

let apply path (mode : Faults.Fault_plan.torn) =
  if Sys.file_exists path then begin
    let b = Fsio.read_file path in
    let len = Bytes.length b in
    if len > 0 then
      match mode with
      | Faults.Fault_plan.Truncated_tail ->
        (* The tail of the last write never reached the disk. *)
        Fsio.write_file path (Bytes.sub b 0 (Stdlib.max 0 (len - 7)))
      | Faults.Fault_plan.Bit_flip ->
        (* A payload byte in the middle of the file went bad. *)
        let i = len / 2 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
        Fsio.write_file path b
      | Faults.Fault_plan.Stale_marker ->
        (* The commit marker was never written (or overwritten). *)
        Bytes.set b (len - 1) '\x00';
        Fsio.write_file path b
  end

let describe : Faults.Fault_plan.torn -> string = function
  | Faults.Fault_plan.Truncated_tail -> "truncated-tail"
  | Faults.Fault_plan.Bit_flip -> "bit-flip"
  | Faults.Fault_plan.Stale_marker -> "stale-marker"
