(** Deliberate on-disk corruption for fault injection.

    One mode per {!Faults.Fault_plan.torn} variant: tail truncation, a
    single flipped payload bit, or a stale/zeroed commit marker. Each
    produces a file the recovery scan must reject (snapshots) or repair
    to the valid prefix (WAL segments). Deterministic in the file
    contents — no randomness, so drills reproduce byte-for-byte. *)

val apply : string -> Faults.Fault_plan.torn -> unit
(** No-op when the file is missing or empty. *)

val describe : Faults.Fault_plan.torn -> string
