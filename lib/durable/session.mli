(** One crash-consistent [System.run] attached to a durable directory.

    ammBoost recovery is integrity-checked deterministic re-execution —
    transactions carry closures, so state is never restored literally.
    A resumed run re-executes from genesis and the session referees it
    against the on-disk history: records below the snapshot anchor are
    skip-counted (their segments were pruned), records the WAL still
    holds must match byte-for-byte, and everything past the disk
    frontier is appended with a per-record checksum and commit marker.
    Snapshot boundaries verify the same way — the freshly rebuilt
    snapshot must be byte-identical to the file on disk, with corrupt or
    missing files healed in place.

    Crash injection lives here too: {!maybe_crash} consults the fault
    plan at round boundaries and on a hit closes the WAL, applies any
    torn-write corruption to its tail, and raises {!Crashed}. *)

exception Crashed of { epoch : int; round : int }
(** The fault plan killed the process image at this point; the durable
    directory holds whatever had been flushed. *)

exception Divergence of string
(** Re-execution produced bytes that contradict a checksum-valid file on
    disk. Determinism is load-bearing, so this aborts loudly. *)

type t

val open_ :
  ?armed_after:int * int -> dir:string -> snapshot_every:int -> unit -> t
(** Scan [dir] ({!Recovery.scan}) and start a session over what
    survived. [armed_after] disarms scripted crash points at or before
    that [(epoch, round)] watermark so a resumed run can re-execute
    through its own crash point; it is consulted {e before} the fault
    plan, so disarmed points never pollute fault metrics. *)

val record : t -> Record.t -> unit
(** Feed one re-executed record through skip/verify/append.
    @raise Divergence on a byte mismatch with the recovered WAL. *)

val snapshot_due : t -> epoch:int -> bool

val snapshot : t -> epoch:int -> sections:(string * bytes) list -> unit
(** Take (or verify, or heal) the snapshot at this epoch boundary, then
    rotate the WAL segment and prune history beyond the retention
    window (two snapshots). @raise Divergence as {!record}. *)

val maybe_crash :
  t -> plan:Faults.Fault_plan.t -> epoch:int -> round:int -> unit
(** @raise Crashed when the fault plan fires at this round boundary. *)

val finish : t -> unit
(** Close the WAL writer (idempotent). *)

val report : t -> Recovery.report
val resumed : t -> bool
(** Whether the scan found any prior history to resume from. *)

val stats : t -> (string * int) list
(** [durability.*] counters: records appended / replayed / skipped,
    snapshots written / verified / healed / rejected, WAL segments
    repaired / dropped. *)
