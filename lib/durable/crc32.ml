(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
   guarding every snapshot file and WAL record. Table-driven; all
   arithmetic stays inside OCaml's 63-bit int with explicit 32-bit
   masking, so the digest is identical on every platform. *)

let mask = 0xFFFF_FFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB8_8320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b ~pos ~len =
  let t = Lazy.force table in
  let c = ref (crc lxor mask) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  (!c lxor mask) land mask

let digest_sub b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.digest_sub";
  update 0 b ~pos ~len

let digest b = update 0 b ~pos:0 ~len:(Bytes.length b)
