(** CRC-32 (IEEE 802.3) over byte buffers.

    The checksum behind every durable artifact: snapshot files carry one
    over their whole body, and each write-ahead-log record carries one
    over its payload. Values are in [0, 2{^32}) and platform-independent
    (all arithmetic is explicitly 32-bit masked). *)

val digest : bytes -> int

val digest_sub : bytes -> pos:int -> len:int -> int
(** Raises [Invalid_argument] when the range is out of bounds. *)

val update : int -> bytes -> pos:int -> len:int -> int
(** Incremental form: [update crc b ~pos ~len] extends a running digest
    (start from [0]). No bounds check — internal use. *)
