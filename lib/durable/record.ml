module U256 = Amm_math.U256
module Address = Chain.Address
module Bls = Amm_crypto.Bls
module Sync_payload = Tokenbank.Sync_payload

(* One write-ahead-log record: a mainchain state transition in the exact
   order the live TokenBank applied it. The op variants mirror the
   differential replay oracle's record points one-for-one, so a WAL is a
   durable, checksummed copy of the op log — plus [Truncate], the
   compensation record for reorg rollbacks (a log file cannot un-append,
   so the rollback is itself logged and re-applied on recovery). *)

type op =
  | Deposit of {
      user : Address.t;
      for_epoch : int;
      amount0 : U256.t;
      amount1 : U256.t;
    }
  | Sync of (Sync_payload.t * Bls.signature) list
  | Halt of { epoch : int }
  | Exit of { claimant : Address.t }
  | Reconcile of (Sync_payload.t * Bls.signature) list

type t = Op of op | Truncate of { keep : int }

let tag = function
  | Op (Deposit _) -> 0
  | Op (Sync _) -> 1
  | Op (Halt _) -> 2
  | Op (Exit _) -> 3
  | Op (Reconcile _) -> 4
  | Truncate _ -> 5

let describe = function
  | Op (Deposit { for_epoch; _ }) -> Printf.sprintf "deposit(for_epoch=%d)" for_epoch
  | Op (Sync signed) -> Printf.sprintf "sync(%d epochs)" (List.length signed)
  | Op (Halt { epoch }) -> Printf.sprintf "halt(epoch=%d)" epoch
  | Op (Exit _) -> "exit"
  | Op (Reconcile signed) ->
    Printf.sprintf "reconcile(%d epochs)" (List.length signed)
  | Truncate { keep } -> Printf.sprintf "truncate(keep=%d)" keep

let w_signed buf signed =
  Wire.w_u32 buf (List.length signed);
  List.iter
    (fun (p, s) ->
      Wire.w_var buf (Sync_payload.to_bytes p);
      Wire.w_fixed buf (Bls.signature_to_bytes s))
    signed

let to_bytes r =
  let buf = Buffer.create 64 in
  Wire.w_u8 buf (tag r);
  (match r with
  | Op (Deposit { user; for_epoch; amount0; amount1 }) ->
    Wire.w_fixed buf (Address.to_bytes user);
    Wire.w_i64 buf for_epoch;
    Wire.w_fixed buf (U256.to_bytes_be amount0);
    Wire.w_fixed buf (U256.to_bytes_be amount1)
  | Op (Sync signed) | Op (Reconcile signed) -> w_signed buf signed
  | Op (Halt { epoch }) -> Wire.w_i64 buf epoch
  | Op (Exit { claimant }) -> Wire.w_fixed buf (Address.to_bytes claimant)
  | Truncate { keep } -> Wire.w_i64 buf keep);
  Buffer.to_bytes buf

let r_signed r =
  let n = Wire.r_u32 r "signed count" in
  if n > Wire.remaining r / (4 + Bls.signature_size) + 1 then
    Wire.fail "implausible signed count %d" n;
  let rec go acc i =
    if i = n then List.rev acc
    else begin
      let pb = Wire.r_var r "payload" in
      let sigma = Bls.signature_of_bytes (Wire.r_fixed r Bls.signature_size "signature") in
      match Sync_payload.of_bytes pb with
      | Ok p -> go ((p, sigma) :: acc) (i + 1)
      | Error e -> Wire.fail "payload: %s" e
    end
  in
  go [] 0

let of_bytes b =
  Wire.read b (fun r ->
      let v =
        match Wire.r_u8 r "tag" with
        | 0 ->
          let user = Address.of_bytes (Wire.r_fixed r 20 "user") in
          let for_epoch = Wire.r_i64 r "for_epoch" in
          let amount0 = U256.of_bytes_be (Wire.r_fixed r 32 "amount0") in
          let amount1 = U256.of_bytes_be (Wire.r_fixed r 32 "amount1") in
          Op (Deposit { user; for_epoch; amount0; amount1 })
        | 1 -> Op (Sync (r_signed r))
        | 2 -> Op (Halt { epoch = Wire.r_i64 r "epoch" })
        | 3 -> Op (Exit { claimant = Address.of_bytes (Wire.r_fixed r 20 "claimant") })
        | 4 -> Op (Reconcile (r_signed r))
        | 5 -> Truncate { keep = Wire.r_i64 r "keep" }
        | t -> Wire.fail "unknown record tag %d" t
      in
      Wire.expect_end r "record";
      v)

let equal a b = Bytes.equal (to_bytes a) (to_bytes b)
