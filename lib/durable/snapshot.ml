(* Versioned, checksummed snapshot files.

   Layout (all integers big-endian):

     magic            20 B   "ammboost-snapshot/1\n"
     epoch            i64    epoch boundary the snapshot was taken at
     records_before   i64    WAL records appended before this snapshot
     section count    u32
     per section             name (u32-prefixed) + payload (u32-prefixed)
     crc              u32    CRC-32 over everything above
     commit marker    u8     0xA5

   A snapshot is valid only when the magic, length, checksum and commit
   marker all agree — a torn write fails at least one of them. Files are
   written to a temp name and renamed into place, so a crash between
   operations never leaves a half-written snapshot under the real name;
   torn files only arise from injected corruption (or a dying write in
   the crash drill). *)

let magic = "ammboost-snapshot/1\n"
let magic_len = String.length magic
let marker = 0xA5
let trailer_len = 4 + 1 (* crc + marker *)

type meta = { epoch : int; records_before : int }
type t = { meta : meta; sections : (string * bytes) list }

let section t name = List.assoc_opt name t.sections

let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Wire.w_i64 buf t.meta.epoch;
  Wire.w_i64 buf t.meta.records_before;
  Wire.w_u32 buf (List.length t.sections);
  List.iter
    (fun (name, payload) ->
      Wire.w_var buf (Bytes.of_string name);
      Wire.w_var buf payload)
    t.sections;
  let body = Buffer.to_bytes buf in
  let out = Buffer.create (Bytes.length body + trailer_len) in
  Buffer.add_bytes out body;
  Wire.w_u32 out (Crc32.digest body);
  Wire.w_u8 out marker;
  Buffer.to_bytes out

let decode b =
  let len = Bytes.length b in
  if len < magic_len + 8 + 8 + 4 + trailer_len then
    Error (Printf.sprintf "too short to be a snapshot (%d bytes)" len)
  else if not (String.equal (Bytes.sub_string b 0 magic_len) magic) then
    Error "bad magic (not an ammboost-snapshot/1 file)"
  else begin
    let m = Char.code (Bytes.get b (len - 1)) in
    if m <> marker then
      Error (Printf.sprintf "commit marker missing (0x%02x, want 0x%02x)" m marker)
    else begin
      let body_len = len - trailer_len in
      let stored =
        Int32.to_int (Bytes.get_int32_be b body_len) land 0xFFFF_FFFF
      in
      let computed = Crc32.digest_sub b ~pos:0 ~len:body_len in
      if stored <> computed then
        Error
          (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)" stored
             computed)
      else
        Wire.read (Bytes.sub b 0 body_len) (fun r ->
            let _magic = Wire.r_fixed r magic_len "magic" in
            let epoch = Wire.r_i64 r "epoch" in
            let records_before = Wire.r_i64 r "records_before" in
            let n = Wire.r_u32 r "section count" in
            if n > 64 then Wire.fail "implausible section count %d" n;
            let rec go acc i =
              if i = n then List.rev acc
              else begin
                let name = Bytes.to_string (Wire.r_var r "section name") in
                let payload = Wire.r_var r "section payload" in
                go ((name, payload) :: acc) (i + 1)
              end
            in
            let sections = go [] 0 in
            Wire.expect_end r "snapshot";
            { meta = { epoch; records_before }; sections })
    end
  end

let filename ~epoch = Printf.sprintf "snapshot-%08d.amm" epoch
let path ~dir ~epoch = Filename.concat dir (filename ~epoch)

let write ~dir t =
  let p = path ~dir ~epoch:t.meta.epoch in
  Fsio.write_atomic p (encode t);
  p

let load p =
  match Fsio.read_file p with
  | b -> decode b
  | exception Sys_error e -> Error ("unreadable: " ^ e)

(* Snapshot files under [dir], ascending by epoch (the name embeds it). *)
let list ~dir =
  Fsio.files_matching ~dir ~prefix:"snapshot-" ~suffix:".amm"
  |> List.filter_map (fun f ->
         match int_of_string_opt (String.sub f 9 8) with
         | Some epoch -> Some (epoch, Filename.concat dir f)
         | None -> None)
