(** Write-ahead-log segments: framed, per-record-checksummed append logs.

    Each frame is [len | crc32(payload) | payload | 0xA6]; appends flush
    per record, so a hard crash loses at most the frame in flight.
    Segments rotate at snapshot boundaries (segment 0 opens at genesis;
    a snapshot at epoch [e] opens segment [e]), which makes WAL
    truncation a matter of deleting whole older segments. The segment
    header records the absolute index of its first record, so each file
    is self-describing in the global record stream. *)

val magic : string
(** ["ammboost-wal/1\n"]. *)

val segment_name : epoch:int -> string
val segment_path : dir:string -> epoch:int -> string

(** {1 Appending} *)

type writer

val open_append : dir:string -> epoch:int -> start_index:int -> writer
(** Open (creating, with header, if absent) the segment keyed by
    [epoch]. [start_index] is written to the header only on creation. *)

val append : writer -> Record.t -> unit
(** Frame, write, flush. *)

val close : writer -> unit
val path : writer -> string

(** {1 Reading and repair} *)

type read_result = {
  rr_epoch : int;
  rr_start_index : int;
  rr_records : Record.t list;  (** the valid prefix, in append order *)
  rr_valid_len : int;          (** bytes of valid prefix, header included *)
  rr_torn : string option;     (** why reading stopped early, if it did *)
}

val read_segment : string -> (read_result, string) result
(** [Error] when the header itself is unreadable (the segment carries no
    usable records); [Ok] with the longest valid record prefix
    otherwise, [rr_torn] explaining any early stop — a truncated tail, a
    checksum mismatch, a missing commit marker, or an undecodable
    record. *)

val repair : string -> read_result -> unit
(** Rewrite the file (atomically) down to the valid prefix when the read
    reported a torn tail; no-op on a clean read. *)

val list : dir:string -> (int * string) list
(** [(epoch, path)] of every segment present, ascending by epoch. *)
