(** Binary-safe file plumbing for the durability layer (Stdlib only). *)

val read_file : string -> bytes

val write_file : string -> bytes -> unit
(** Plain overwrite — only for deliberate in-place corruption (torn-write
    injection); real writes go through {!write_atomic}. *)

val write_atomic : string -> bytes -> unit
(** Write to [path ^ ".tmp"], then rename over [path]: readers see the
    old complete file or the new complete file, never a prefix. *)

val mkdir_p : string -> unit

val files_matching : dir:string -> prefix:string -> suffix:string -> string list
(** Basenames under [dir] matching both affixes, sorted; [[]] when [dir]
    is missing. *)

val remove_if_exists : string -> unit
