(** Post-crash scan of a durable directory.

    Reduces whatever a (possibly violent) shutdown left behind to the
    facts the resume path needs: the newest snapshot that survives the
    full gauntlet (readable, CRC/marker valid, filename agrees with the
    embedded epoch, every section decodes through its typed codec), and
    the longest checksum-valid prefix of the WAL record stream anchored
    at that snapshot's [records_before].

    Scanning has deliberate side effects on the directory: torn segment
    tails are truncated in place ({!Wal.repair}), and segments that can
    no longer be anchored — unreadable headers, or records past a gap in
    the stream — are deleted, because deterministic re-execution will
    regenerate those records and appending into stale files would
    interleave garbage. Rejected snapshots are {e left in place}: the
    resume path heals them when re-execution reaches their epoch. *)

type report = {
  chosen : (int * int) option;
      (** [(epoch, records_before)] of the accepted snapshot. *)
  rejected : (string * string) list;
      (** Snapshot [(path, reason)] failures, newest first. *)
  records : Record.t array;
      (** The trustworthy record stream, contiguous from [skip_until]. *)
  skip_until : int;
      (** Records with index below this are pruned history: not on disk,
          re-executed without verification. *)
  repaired : (string * string) list;
      (** Torn segments truncated to their valid prefix. *)
  dropped : (string * string) list;  (** Segments deleted as unusable. *)
}

val scan : dir:string -> report
(** Scan (creating [dir] if missing — an empty report on a fresh dir). *)

val clean : report -> bool
(** No prior state and nothing unusual found: a genesis start. *)

val notes : report -> (string * string) list
(** [(check-id, detail)] lines for the monitor — [snapshot-rejected],
    [wal-repaired], [wal-dropped] — one per rejected snapshot, repair,
    and dropped segment. *)
