(** The snapshot section registry.

    Maps every durable state surface at an epoch boundary to a named
    byte section, and validates sections read back from disk through
    their typed codecs. Encodings are exact (encode ∘ decode = id,
    byte-for-byte): the resume path compares freshly rebuilt sections
    against the on-disk snapshot to detect divergence.

    Sections: [bank.meta] (sync frontier, halt state, committee vk,
    custody, pools, exit claims), [bank.positions]
    ({!Tokenbank.Pos_store} codec), [sidechain.deposits]
    ({!Sidechain.Deposits} codec), [sidechain.pool] (AMM pool scalars),
    [window.pending] (certified-but-unapplied summaries). *)

val s_bank_meta : string
val s_bank_positions : string
val s_deposits : string
val s_pool : string
val s_pending : string

val required : string list
(** Every section a valid snapshot must carry. *)

val bank_meta_bytes : Tokenbank.Token_bank.t -> bytes
(** The [bank.meta] section alone: sync frontier, halt state, committee
    vk, custody, pool balances and exit claims. Also the byte surface
    the state twin compares its replica bank against — two banks with
    equal observable state encode identically. *)

val pool_bytes : Uniswap.Pool.t -> bytes
(** The [sidechain.pool] section alone: the AMM pool's scalar fields
    (price, tick, liquidity, balances, fee growths, table sizes). *)

val sections :
  bank:Tokenbank.Token_bank.t ->
  pool:Uniswap.Pool.t ->
  deposits:Sidechain.Deposits.t ->
  pending:(Tokenbank.Sync_payload.t * Amm_crypto.Bls.signature) list ->
  (string * bytes) list
(** Build the full section list from the live system ([pending] is the
    certified-but-unapplied summary window, oldest first). *)

val validate : (string * bytes) list -> (unit, string) result
(** Structural validation: every required section present, every section
    known and decodable through its typed codec. This is what stands
    between a checksum-valid-but-semantically-garbage file and the
    resume path. *)
