module Fault_plan = Faults.Fault_plan

(* A durable session wraps one System.run with crash consistency.

   ammBoost recovery is integrity-checked deterministic re-execution:
   transactions carry closures, so state is never restored literally
   from disk. Instead a resumed run re-executes from genesis, and the
   session acts as a referee between the re-execution and the on-disk
   history recovered by {!Recovery.scan}:

     index < skip_until                    Skip    pruned history; count it
     skip_until <= index < disk frontier   Verify  byte-compare against WAL
     index >= disk frontier                Append  new ground; log it

   Any byte mismatch in Verify is a {!Divergence} — determinism is the
   load-bearing invariant, so a divergent replay must abort loudly, not
   quietly re-log. Snapshot boundaries verify the same way: the freshly
   rebuilt snapshot must be byte-identical to the file on disk; corrupt
   or missing files are healed (rewritten), byte-different valid files
   abort.

   Crash injection also lives here: {!maybe_crash} consults the fault
   plan at every round boundary, and on a hit closes the WAL, applies
   any torn-write corruption to its tail, and raises {!Crashed} — the
   closest a single process gets to `kill -9` at a chosen instant. The
   [armed_after] watermark disarms crash points at or before the last
   crash so a resumed run can re-execute through them (consulted before
   the plan so disarmed points never pollute fault metrics). *)

exception Crashed of { epoch : int; round : int }
exception Divergence of string

type stats = {
  mutable appended : int;
  mutable replayed : int;
  mutable skipped : int;
  mutable snapshots_written : int;
  mutable snapshots_verified : int;
  mutable snapshots_healed : int;
}

type t = {
  dir : string;
  snapshot_every : int;
  armed_after : (int * int) option;
  report : Recovery.report;
  disk : Record.t array;
  skip_until : int;
  known_epoch : int option;  (* epoch of the accepted snapshot, if any *)
  stats : stats;
  mutable index : int;  (* global index of the next record *)
  mutable seg_epoch : int;  (* WAL segment appends go to *)
  mutable seg_start : int;  (* first record index of that segment *)
  mutable writer : Wal.writer option;
}

let open_ ?armed_after ~dir ~snapshot_every () =
  let report = Recovery.scan ~dir in
  { dir;
    snapshot_every;
    armed_after;
    report;
    disk = report.Recovery.records;
    skip_until = report.Recovery.skip_until;
    known_epoch =
      (match report.Recovery.chosen with Some (e, _) -> Some e | None -> None);
    stats =
      { appended = 0; replayed = 0; skipped = 0; snapshots_written = 0;
        snapshots_verified = 0; snapshots_healed = 0 };
    index = 0;
    seg_epoch = 0;
    seg_start = 0;
    writer = None }

let report t = t.report
let resumed t = t.skip_until > 0 || Array.length t.disk > 0

let ensure_writer t =
  match t.writer with
  | Some w -> w
  | None ->
    let w =
      Wal.open_append ~dir:t.dir ~epoch:t.seg_epoch ~start_index:t.seg_start
    in
    t.writer <- Some w;
    w

let close_writer t =
  (match t.writer with Some w -> Wal.close w | None -> ());
  t.writer <- None

let record t r =
  let i = t.index in
  t.index <- i + 1;
  if i < t.skip_until then t.stats.skipped <- t.stats.skipped + 1
  else begin
    let j = i - t.skip_until in
    if j < Array.length t.disk then begin
      if not (Record.equal r t.disk.(j)) then
        raise
          (Divergence
             (Printf.sprintf
                "record %d: re-execution produced %s, WAL holds %s" i
                (Record.describe r)
                (Record.describe t.disk.(j))));
      t.stats.replayed <- t.stats.replayed + 1
    end
    else begin
      Wal.append (ensure_writer t) r;
      t.stats.appended <- t.stats.appended + 1
    end
  end

let snapshot_due t ~epoch =
  t.snapshot_every > 0 && epoch > 0 && epoch mod t.snapshot_every = 0

(* Keep the last two snapshots and every WAL segment needed to recover
   from the older of them; everything before is history the summaries
   have already absorbed. *)
let prune t =
  let snaps = Snapshot.list ~dir:t.dir in
  let n = List.length snaps in
  if n > 2 then begin
    let keep_from = fst (List.nth snaps (n - 2)) in
    List.iter
      (fun (e, p) -> if e < keep_from then Fsio.remove_if_exists p)
      snaps;
    List.iter
      (fun (e, p) -> if e < keep_from then Fsio.remove_if_exists p)
      (Wal.list ~dir:t.dir)
  end

let snapshot t ~epoch ~sections =
  let fresh =
    Snapshot.encode
      { Snapshot.meta = { Snapshot.epoch; records_before = t.index }; sections }
  in
  let p = Snapshot.path ~dir:t.dir ~epoch in
  (if Sys.file_exists p then begin
     let existing = Fsio.read_file p in
     if Bytes.equal existing fresh then
       t.stats.snapshots_verified <- t.stats.snapshots_verified + 1
     else
       match Snapshot.decode existing with
       | Ok _ ->
         (* A checksum-valid snapshot that differs byte-for-byte means
            the re-execution is not the run that wrote it. Abort. *)
         raise
           (Divergence
              (Printf.sprintf "snapshot at epoch %d diverges from disk" epoch))
       | Error _ ->
         (* Corrupt file from a torn write: heal it. *)
         Fsio.write_atomic p fresh;
         t.stats.snapshots_healed <- t.stats.snapshots_healed + 1
   end
   else begin
     Fsio.write_atomic p fresh;
     match t.known_epoch with
     | Some known when epoch <= known ->
       t.stats.snapshots_healed <- t.stats.snapshots_healed + 1
     | _ -> t.stats.snapshots_written <- t.stats.snapshots_written + 1
   end);
  (* Rotate the WAL: appends after this boundary go to the segment keyed
     by this epoch (created lazily on first append). *)
  close_writer t;
  t.seg_epoch <- epoch;
  t.seg_start <- t.index;
  prune t

let maybe_crash t ~plan ~epoch ~round =
  let armed =
    match t.armed_after with
    | Some watermark -> compare (epoch, round) watermark > 0
    | None -> true
  in
  if armed && Fault_plan.crash_now plan ~epoch ~round then begin
    close_writer t;
    (match Fault_plan.torn_write plan ~epoch ~round with
    | Some mode ->
      Torn.apply (Wal.segment_path ~dir:t.dir ~epoch:t.seg_epoch) mode
    | None -> ());
    raise (Crashed { epoch; round })
  end

let finish t = close_writer t

let stats t =
  let s = t.stats in
  let r = t.report in
  [ ("durability.records_appended", s.appended);
    ("durability.records_replayed", s.replayed);
    ("durability.records_skipped", s.skipped);
    ("durability.snapshots_written", s.snapshots_written);
    ("durability.snapshots_verified", s.snapshots_verified);
    ("durability.snapshots_healed", s.snapshots_healed);
    ("durability.snapshots_rejected", List.length r.Recovery.rejected);
    ("durability.wal_repaired", List.length r.Recovery.repaired);
    ("durability.wal_dropped", List.length r.Recovery.dropped) ]
