(** Write-ahead-log records.

    Each record is one mainchain state transition, in the exact order the
    live TokenBank applied it — the op variants mirror the differential
    replay oracle's record points one-for-one. [Truncate] is the
    compensation record for mainchain reorg rollbacks: an append-only log
    cannot un-append, so the rollback to op-log mark [keep] is itself a
    record, replayed like any other on recovery.

    The codec is exact: [of_bytes (to_bytes r)] succeeds and re-encodes
    byte-identically, which is what resume-time verification compares. *)

type op =
  | Deposit of {
      user : Chain.Address.t;
      for_epoch : int;
      amount0 : Amm_math.U256.t;
      amount1 : Amm_math.U256.t;
    }
  | Sync of (Tokenbank.Sync_payload.t * Amm_crypto.Bls.signature) list
  | Halt of { epoch : int }
  | Exit of { claimant : Chain.Address.t }
  | Reconcile of (Tokenbank.Sync_payload.t * Amm_crypto.Bls.signature) list

type t = Op of op | Truncate of { keep : int }

val to_bytes : t -> bytes

val of_bytes : bytes -> (t, string) result
(** Total — disk bytes are untrusted. *)

val equal : t -> t -> bool
(** Byte-level equality of the encodings. *)

val describe : t -> string
(** Short human label for logs and divergence reports. *)
