(* Minimal file plumbing for the durability layer — binary-safe reads,
   atomic replace-on-rename writes, and directory listing. Everything
   lives in [Stdlib]/[Sys]; no unix dependency. *)

let read_file path =
  In_channel.with_open_bin path (fun ic ->
      Bytes.unsafe_of_string (In_channel.input_all ic))

let write_file path b =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b)

(* Write-then-rename: readers either see the old complete file or the
   new complete file, never a prefix. (The simulator's crash points are
   between operations, so the tmp write itself is not a torn-write
   surface — torn writes are injected explicitly by the fault plan.) *)
let write_atomic path b =
  let tmp = path ^ ".tmp" in
  write_file tmp b;
  Sys.rename tmp path

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      let parent = Filename.dirname d in
      if parent <> d then go parent;
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let files_matching ~dir ~prefix ~suffix =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.starts_with ~prefix f && String.ends_with ~suffix f)
    |> List.sort String.compare

let remove_if_exists path = if Sys.file_exists path then Sys.remove path
