(* Cursor-based binary reader/writer shared by the durable codecs.

   Writers are plain [Buffer] helpers. Readers carry an explicit cursor
   over an untrusted buffer and fail through a single exception that
   [read] turns into a [result] — file bytes read back from disk must
   never be able to raise out of the decode path. *)

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))
let w_u32 buf v = Buffer.add_int32_be buf (Int32.of_int v)
let w_i64 buf v = Buffer.add_int64_be buf (Int64.of_int v)
let w_fixed buf b = Buffer.add_bytes buf b

let w_var buf b =
  w_u32 buf (Bytes.length b);
  Buffer.add_bytes buf b

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type reader = { buf : bytes; mutable pos : int; limit : int }

let reader ?(pos = 0) ?limit buf =
  let len = Bytes.length buf in
  let limit = match limit with Some l -> l | None -> len in
  if pos < 0 || limit > len || pos > limit then invalid_arg "Wire.reader";
  { buf; pos; limit }

let pos r = r.pos
let remaining r = r.limit - r.pos
let at_end r = r.pos = r.limit

let need r n what =
  if remaining r < n then
    fail "truncated at %s: need %d bytes at offset %d of %d" what n r.pos r.limit

let r_u8 r what =
  need r 1 what;
  let v = Char.code (Bytes.get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let r_u32 r what =
  need r 4 what;
  let v = Int32.to_int (Bytes.get_int32_be r.buf r.pos) in
  r.pos <- r.pos + 4;
  (* Int32 sign-extends: reinterpret as the unsigned 32-bit value. *)
  let v = v land 0xFFFF_FFFF in
  v

let r_i64 r what =
  need r 8 what;
  let v = Int64.to_int (Bytes.get_int64_be r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let r_fixed r n what =
  need r n what;
  let v = Bytes.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  v

let r_var r what =
  let n = r_u32 r what in
  if n > remaining r then
    fail "implausible %s length %d: only %d bytes remain" what n (remaining r);
  r_fixed r n what

let expect_end r what =
  if not (at_end r) then fail "trailing garbage after %s: %d bytes" what (remaining r)

let read buf f =
  match f (reader buf) with
  | v -> Ok v
  | exception Malformed msg -> Error msg
  | exception Invalid_argument msg -> Error msg
