(** Differential replay oracle.

    Records every state-changing TokenBank operation the mainchain
    actually executed — deposits and accepted Sync summaries, in
    execution order — and can re-derive the contract state from scratch
    by replaying them against a fresh replica. A chaos run passes the
    oracle when the live bank and the replica agree on every observable:
    last synced epoch, custody, pool balances, the full position table
    and the recorded committee key.

    Rollbacks are modeled with {!mark}/{!truncate}: a checkpoint taken at
    sync inclusion pairs the bank snapshot with the op-log length, and
    restoring the snapshot truncates the log to the same point, keeping
    the oracle aligned with the chain's surviving history. *)

module U256 = Amm_math.U256
module Address = Chain.Address

type t

val create : unit -> t

val record_deposit :
  t -> user:Address.t -> for_epoch:int -> amount0:U256.t -> amount1:U256.t -> unit

val record_sync :
  t -> (Tokenbank.Sync_payload.t * Amm_crypto.Bls.signature) list -> unit

val record_halt : t -> epoch:int -> unit
(** The bank entered emergency-exit mode. *)

val record_exit : t -> claimant:Address.t -> unit
(** An emergency-exit claim was served (the claim amounts are re-derived
    on replay and compared by {!verify}). *)

val record_reconcile :
  t -> (Tokenbank.Sync_payload.t * Amm_crypto.Bls.signature) list -> unit
(** The recovered committee's pending summaries were reconciled and the
    halt lifted. *)

val mark : t -> int
(** Current length of the op log; pair it with a state checkpoint. *)

val truncate : t -> int -> unit
(** Drop every op recorded after [mark] (used when a rollback restores
    the paired checkpoint). *)

val size : t -> int

val verify :
  live:Tokenbank.Token_bank.t ->
  genesis_committee_vk:Amm_crypto.Bls.public_key ->
  flash_fee_pips:int ->
  t ->
  (unit, string) result
(** Replays the log against a fresh replica deployed with the same
    genesis key and pool, then compares the replica to [live]. *)
