module U256 = Amm_math.U256
module Address = Chain.Address
module Position_id = Chain.Ids.Position_id
module Erc20 = Mainchain.Erc20
module Token_bank = Tokenbank.Token_bank
module Sync_payload = Tokenbank.Sync_payload
module Bls = Amm_crypto.Bls

type op =
  | Deposit of { user : Address.t; for_epoch : int; amount0 : U256.t; amount1 : U256.t }
  | Sync of (Sync_payload.t * Bls.signature) list
  | Halt of { epoch : int }
  | Exit of { claimant : Address.t }
  | Reconcile of (Sync_payload.t * Bls.signature) list

type t = { mutable ops : op list (* newest first *); mutable n : int }

let create () = { ops = []; n = 0 }

let push t op =
  t.ops <- op :: t.ops;
  t.n <- t.n + 1

let record_deposit t ~user ~for_epoch ~amount0 ~amount1 =
  push t (Deposit { user; for_epoch; amount0; amount1 })

let record_sync t signed = push t (Sync signed)
let record_halt t ~epoch = push t (Halt { epoch })
let record_exit t ~claimant = push t (Exit { claimant })
let record_reconcile t signed = push t (Reconcile signed)

let mark t = t.n
let size t = t.n

let truncate t mark =
  if mark < t.n then begin
    (* ops is newest-first: drop the (n - mark) most recent entries. *)
    let rec drop k l = if k <= 0 then l else drop (k - 1) (List.tl l) in
    t.ops <- drop (t.n - mark) t.ops;
    t.n <- mark
  end

(* Enough to fund any simulated deposit schedule (the system faucet
   mints 1e30 per side). *)
let faucet = U256.of_string "1000000000000000000000000000000"

let u256_eq_pair (a0, a1) (b0, b1) = U256.equal a0 b0 && U256.equal a1 b1

let pos_entry_eq (a : Sync_payload.position_entry) (b : Sync_payload.position_entry) =
  Position_id.equal a.pos_id b.pos_id
  && Address.equal a.owner b.owner
  && a.lower_tick = b.lower_tick
  && a.upper_tick = b.upper_tick
  && U256.equal a.liquidity b.liquidity
  && U256.equal a.amount0 b.amount0
  && U256.equal a.amount1 b.amount1
  && U256.equal a.fees0 b.fees0
  && U256.equal a.fees1 b.fees1
  && a.deleted = b.deleted

let sorted_positions bank =
  List.sort
    (fun (a : Sync_payload.position_entry) b -> Position_id.compare a.pos_id b.pos_id)
    (Token_bank.positions bank)

let verify ~live ~genesis_committee_vk ~flash_fee_pips t =
  let token0 = Chain.Token.make ~id:0 ~symbol:"TKA" in
  let token1 = Chain.Token.make ~id:1 ~symbol:"TKB" in
  let erc0 = Erc20.deploy token0 and erc1 = Erc20.deploy token1 in
  let replica = Token_bank.deploy ~token0:erc0 ~token1:erc1 ~genesis_committee_vk in
  let pool_id = Token_bank.create_pool replica ~flash_fee_pips in
  let funded = Hashtbl.create 64 in
  let ensure_funded user =
    if not (Hashtbl.mem funded user) then begin
      Hashtbl.replace funded user ();
      Erc20.mint erc0 user faucet;
      Erc20.mint erc1 user faucet;
      Erc20.approve erc0 ~owner:user ~spender:(Token_bank.address replica)
        U256.max_value;
      Erc20.approve erc1 ~owner:user ~spender:(Token_bank.address replica)
        U256.max_value
    end
  in
  let replay op =
    match op with
    | Deposit { user; for_epoch; amount0; amount1 } ->
      ensure_funded user;
      (match Token_bank.deposit replica ~user ~for_epoch ~amount0 ~amount1 with
      | Ok () -> Ok ()
      | Error e ->
        Error (Printf.sprintf "replay: deposit for epoch %d failed: %s" for_epoch e))
    | Sync signed -> (
      match Token_bank.sync replica ~signed with
      | Ok _ -> Ok ()
      | Error rejection ->
        let epochs =
          String.concat ","
            (List.map (fun (p, _) -> string_of_int p.Sync_payload.epoch) signed)
        in
        Error
          (Printf.sprintf "replay: sync [%s] failed: %s" epochs
             (Token_bank.rejection_to_string rejection)))
    | Halt { epoch } -> (
      match Token_bank.halt replica ~epoch with
      | Ok () -> Ok ()
      | Error rejection ->
        Error
          (Printf.sprintf "replay: halt at epoch %d failed: %s" epoch
             (Token_bank.rejection_to_string rejection)))
    | Exit { claimant } -> (
      match Token_bank.emergency_exit replica ~claimant with
      | Ok _ -> Ok ()
      | Error rejection ->
        Error
          (Printf.sprintf "replay: exit for %s failed: %s" (Address.to_hex claimant)
             (Token_bank.rejection_to_string rejection)))
    | Reconcile signed -> (
      match Token_bank.reconcile replica ~signed with
      | Ok _ -> Ok ()
      | Error rejection ->
        Error
          (Printf.sprintf "replay: reconcile failed: %s"
             (Token_bank.rejection_to_string rejection)))
  in
  let rec replay_all = function
    | [] -> Ok ()
    | op :: rest -> ( match replay op with Ok () -> replay_all rest | Error _ as e -> e)
  in
  match replay_all (List.rev t.ops) with
  | Error _ as e -> e
  | Ok () ->
    let check name ok = if ok then Ok () else Error ("replay mismatch: " ^ name) in
    let ( let* ) = Result.bind in
    let* () =
      check "last_synced_epoch"
        (Token_bank.last_synced_epoch live = Token_bank.last_synced_epoch replica)
    in
    let* () =
      check "total_custody"
        (u256_eq_pair (Token_bank.total_custody live) (Token_bank.total_custody replica))
    in
    let* () =
      match (Token_bank.pool live pool_id, Token_bank.pool replica pool_id) with
      | Some a, Some b ->
        check "pool_balances"
          (u256_eq_pair (a.Token_bank.balance0, a.Token_bank.balance1)
             (b.Token_bank.balance0, b.Token_bank.balance1))
      | None, None -> Ok ()
      | _ -> Error "replay mismatch: pool existence"
    in
    let* () =
      check "committee_vk"
        (Bytes.equal
           (Bls.public_key_to_bytes (Token_bank.committee_vk live))
           (Bls.public_key_to_bytes (Token_bank.committee_vk replica)))
    in
    let pa = sorted_positions live and pb = sorted_positions replica in
    let* () = check "position_count" (List.length pa = List.length pb) in
    let* () = check "positions" (List.for_all2 pos_entry_eq pa pb) in
    (* Emergency-exit observables: both sides must agree on whether the
       bank is halted and on every claim that was served. *)
    let* () = check "halted" (Token_bank.is_halted live = Token_bank.is_halted replica) in
    let sorted_exits bank =
      List.sort
        (fun (a : Token_bank.exit_claim) b -> Address.compare a.claimant b.claimant)
        (Token_bank.exits bank)
    in
    let ea = sorted_exits live and eb = sorted_exits replica in
    let* () = check "exit_count" (List.length ea = List.length eb) in
    let exit_eq (a : Token_bank.exit_claim) (b : Token_bank.exit_claim) =
      Address.equal a.claimant b.claimant
      && u256_eq_pair (a.claim0, a.claim1) (b.claim0, b.claim1)
      && u256_eq_pair (a.refund0, a.refund1) (b.refund0, b.refund1)
      && a.positions_closed = b.positions_closed
    in
    check "exit_claims" (List.for_all2 exit_eq ea eb)
