(** Seeded, deterministic fault-plan engine.

    A [spec] declares probabilistic fault rates for every layer of the
    system — network, consensus, committee, mainchain — and a plan derives
    every concrete decision from the run's seed alone, via keyed RNG
    splits. The same seed therefore reproduces the identical fault
    schedule on every run, at any domain count, which is what lets chaos
    sweeps diff their output byte-for-byte and lets the differential
    replay oracle re-check a faulty run after the fact.

    Decision functions are pure in their key (epoch, round, attempt, …):
    calling one twice with the same arguments returns the same answer and
    counts the injection once. *)

(** Message-level faults inside one consensus round
    ({!Consensus.Network} hooks). *)
type network = {
  drop_rate : float;        (** per message *)
  duplicate_rate : float;   (** per message; the copy arrives later *)
  delay_rate : float;       (** per message: extra delay beyond Δ *)
  delay_max : float;        (** upper bound on the extra delay, seconds *)
  partition_rate : float;   (** per round: a temporary two-sided partition *)
}

(** Per-round replica faults for the message-level PBFT committee. *)
type consensus = {
  member_crash_rate : float;     (** per (round, member), capped at f *)
  byzantine_leader_rate : float; (** per round: the proposer equivocates *)
}

(** Faults during threshold signing of the epoch summary. *)
type committee = {
  withhold_rate : float;  (** per (epoch, member): DKG share withheld,
                              capped so a degraded quorum still signs *)
  corrupt_rate : float;   (** per (epoch, member): the member submits a
                              tampered partial signature, capped so the
                              honest remainder still reaches quorum *)
}

(** Mainchain-facing faults. *)
type mainchain = {
  silent_leader_rate : float; (** per epoch: the Sync is never submitted *)
  corrupt_sync_rate : float;  (** per epoch: the Sync inputs are tampered *)
  sync_drop_rate : float;     (** per submission attempt: the Sync
                                  transaction is evicted from the mempool *)
  reorg_rate : float;         (** per epoch: a fork abandons the block
                                  carrying its sync *)
  max_reorg_depth : int;      (** reorg depth is drawn in [1, max] *)
  congestion_rate : float;    (** per epoch: a gas-limit congestion window *)
  congestion_gas_limit : int; (** block gas limit during congestion; must
                                  exceed the largest single transaction *)
}

(** Durable-storage faults: hard process death at a round boundary, plus
    torn writes applied to the file being appended when the process
    dies. *)
type torn =
  | Truncated_tail  (** the tail of the file never reached the disk *)
  | Bit_flip        (** a payload byte was corrupted in flight *)
  | Stale_marker    (** the commit marker was overwritten/never written *)

type durability = {
  crash_rate : float;       (** per (epoch, round): hard process death *)
  torn_write_rate : float;  (** per crash: the dying write is torn *)
  crash_script : (int * int) list;
      (** exact (epoch, round) death points, in addition to the rate —
          the crash drill kills the run at every listed coordinate *)
}

(** Scripted sustained-failure scenarios — deterministic windows rather
    than probabilistic rates. They drive the liveness watchdog through
    Degraded/Halted and exercise the emergency-exit protocol. *)
type scenario = {
  quorum_starvation : (int * int) option;
      (** [Some (from, until)]: every Sync/reconcile submission whose
          mainchain epoch falls in [\[from, until)] is dropped;
          [until = max_int] starves forever. *)
  committee_loss : int option;
      (** [Some e]: from epoch [e] on, the sidechain committee is
          permanently lost — no election, no summaries, no signatures. *)
}

(** Silent in-memory state corruption: seeded bit-flips landed directly
    in the flat stores behind the system's back (no transaction, no log
    record). The twin's differential audit must catch every one at the
    epoch boundary it lands in. *)
type corruption_target =
  | Deposit_row     (** a row of the epoch's deposit account slab *)
  | Position_slab   (** a row of TokenBank's flat position store *)
  | Pool_tick       (** an initialized tick's fee-growth accumulators *)

type state_corruption = {
  corruption_rate : float;  (** per (epoch, round): one seeded bit-flip *)
  corruption_script : (int * int * corruption_target) list;
      (** exact (epoch, round, target) injection points, in addition to
          the rate — the twin-audit bench scripts these *)
}

type spec = {
  network : network;
  consensus : consensus;
  committee : committee;
  mainchain : mainchain;
  durability : durability;
  corruption : state_corruption;
  scenario : scenario;
}

val no_scenario : scenario

val no_durability : durability
(** All rates zero, empty script. *)

val no_corruption : state_corruption
(** Zero rate, empty script. *)

val corruption_target_label : corruption_target -> string
(** Stable metric tag: ["deposit_row"], ["position_slab"], ["pool_tick"]. *)

val none : spec
(** All rates zero: a plan over [none] never injects anything. *)

val chaos : ?intensity:float -> unit -> spec
(** A balanced all-layer preset. [intensity] scales every rate linearly;
    [0.0] is equivalent to {!none}, [0.1] (the default) gives a run a
    handful of faults per epoch, and values are clamped so no single rate
    reaches certainty. *)

val active : spec -> bool
(** Whether any rate is nonzero or a scenario is scripted. *)

type t

val create : seed:string -> spec -> t
val spec : t -> spec

(** {1 Decisions}

    All deterministic in [(seed, key arguments)]. *)

val silent_leader : t -> epoch:int -> bool
val corrupt_sync : t -> epoch:int -> bool
val sync_dropped : t -> epoch:int -> attempt:int -> bool
val congested : t -> epoch:int -> bool

val sync_starved : t -> epoch:int -> bool
(** Whether a Sync/reconcile submitted during mainchain epoch [epoch]
    falls inside the quorum-starvation window (counted once per epoch). *)

val committee_lost : t -> epoch:int -> bool
(** Whether the committee is permanently gone as of [epoch] (counted
    once, at the first query that answers [true]). *)

val reorg_depth : t -> epoch:int -> int option
(** [Some d] if this epoch's sync is fated to fall off the chain once the
    fork is [d] blocks deep. The caller counts the injection with {!note}
    when the reorg actually fires (the confirmation window may close
    first). *)

val withheld_shares : t -> epoch:int -> n:int -> max_withheld:int -> int list
(** Share indices (1-based) withheld during this epoch's threshold
    signing, at most [max_withheld] of the [n] shares. *)

val corrupted_shares : t -> epoch:int -> n:int -> max_corrupted:int -> int list
(** Share indices (1-based) whose holders submit tampered partial
    signatures this epoch, at most [max_corrupted] of the [n] shares.
    {!Bls.verify_partial} catches these at the crypto layer. *)

val crashed_members : t -> epoch:int -> round:int -> members:int -> max_faulty:int -> int list
(** Committee member ids (0-based) crashed for this consensus round, at
    most [max_faulty]. *)

val byzantine_proposer : t -> epoch:int -> round:int -> bool

val crash_now : t -> epoch:int -> round:int -> bool
(** Whether the process dies hard at the start of this sidechain round —
    scripted coordinates always fire; otherwise drawn at [crash_rate]. *)

val torn_write : t -> epoch:int -> round:int -> torn option
(** When a crash fires at this coordinate, whether (and how) the write
    in flight is torn. Only consulted at an actual crash point. *)

val corrupt_state : t -> epoch:int -> round:int -> (corruption_target * int * int) option
(** [Some (target, index, bit)] when a silent corruption lands at the
    end of this sidechain round: flip [bit] of the [index]-selected row
    (both reduced modulo the live store's size by the injector).
    Scripted coordinates always fire with their scripted target; the
    probabilistic rate draws the target uniformly. The caller counts the
    injection with {!note} under [state.corruption.<target>] when the
    flip actually lands (the selected store may be empty). *)

val net_chaos :
  t -> epoch:int -> round:int -> members:int ->
  (now:float -> src:int -> dst:int -> Consensus.Network.delivery) option
(** Per-message delivery chaos for one consensus round, or [None] when
    every network rate is zero. The closure draws from a round-keyed RNG
    stream, decides drop / duplicate / delay per message, enforces the
    round's partition (messages across the cut are dropped), and counts
    each injection. Call it once per round. *)

(** {1 Injection accounting} *)

val note : t -> string -> int -> unit
(** Count [n] injections under a label (used by callers for injections
    the plan only fates, e.g. reorgs that actually fire). *)

val injected : t -> (string * int) list
(** Injection counts so far, sorted by label. *)

val total_injected : t -> int
