(* Seeded, deterministic fault-plan engine.

   Every decision is drawn from [Rng.split root key] where [key] encodes
   the decision's coordinates (epoch, round, member, attempt).  Splitting
   never disturbs the root stream, so decisions are pure in their key:
   the same seed yields the same fault schedule regardless of evaluation
   order or domain count.  Injection counts are tracked in a table; the
   [seen] guard makes counting idempotent for decisions that may be
   re-queried. *)

module Rng = Amm_crypto.Rng
module Network = Consensus.Network

type network = {
  drop_rate : float;
  duplicate_rate : float;
  delay_rate : float;
  delay_max : float;
  partition_rate : float;
}

type consensus = {
  member_crash_rate : float;
  byzantine_leader_rate : float;
}

type committee = { withhold_rate : float; corrupt_rate : float }

type mainchain = {
  silent_leader_rate : float;
  corrupt_sync_rate : float;
  sync_drop_rate : float;
  reorg_rate : float;
  max_reorg_depth : int;
  congestion_rate : float;
  congestion_gas_limit : int;
}

(* Durable-storage faults: hard process death at a round boundary, with
   an optional torn write applied to the file being appended when the
   process dies. Crashes are scripted (exact (epoch, round) points for
   the crash drill) or drawn per round; torn modes are drawn per crash. *)
type torn = Truncated_tail | Bit_flip | Stale_marker

type durability = {
  crash_rate : float;
  torn_write_rate : float;
  crash_script : (int * int) list;
      (* exact (epoch, round) hard-death points, in addition to the
         probabilistic rate *)
}

(* Scripted sustained-failure scenarios, as opposed to the probabilistic
   rates above: these drive the watchdog's Degraded/Halted transitions
   and the emergency-exit protocol end-to-end. *)
type scenario = {
  quorum_starvation : (int * int) option;
      (* [from, until): every Sync/reconcile submission whose mainchain
         epoch falls in the window is dropped; [until = max_int] starves
         forever. *)
  committee_loss : int option;
      (* from this epoch on the sidechain committee is gone: no election,
         no summaries, no signatures — ever. *)
}

(* Silent state corruption: seeded bit-flips landed directly in the
   flat stores (no transaction, no log record) — the twin audit's prey. *)
type corruption_target = Deposit_row | Position_slab | Pool_tick

type state_corruption = {
  corruption_rate : float;
  corruption_script : (int * int * corruption_target) list;
}

type spec = {
  network : network;
  consensus : consensus;
  committee : committee;
  mainchain : mainchain;
  durability : durability;
  corruption : state_corruption;
  scenario : scenario;
}

let no_scenario = { quorum_starvation = None; committee_loss = None }

let no_durability =
  { crash_rate = 0.0; torn_write_rate = 0.0; crash_script = [] }

let no_corruption = { corruption_rate = 0.0; corruption_script = [] }

let corruption_target_label = function
  | Deposit_row -> "deposit_row"
  | Position_slab -> "position_slab"
  | Pool_tick -> "pool_tick"

let none =
  {
    network =
      {
        drop_rate = 0.0;
        duplicate_rate = 0.0;
        delay_rate = 0.0;
        delay_max = 0.0;
        partition_rate = 0.0;
      };
    consensus = { member_crash_rate = 0.0; byzantine_leader_rate = 0.0 };
    committee = { withhold_rate = 0.0; corrupt_rate = 0.0 };
    mainchain =
      {
        silent_leader_rate = 0.0;
        corrupt_sync_rate = 0.0;
        sync_drop_rate = 0.0;
        reorg_rate = 0.0;
        max_reorg_depth = 0;
        congestion_rate = 0.0;
        congestion_gas_limit = 0;
      };
    durability = no_durability;
    corruption = no_corruption;
    scenario = no_scenario;
  }

let chaos ?(intensity = 0.1) () =
  (* Base rates are calibrated for intensity 0.1; scaling is linear and
     clamped so no rate reaches certainty even at extreme intensity. *)
  let r base = Float.min 0.9 (Float.max 0.0 (base *. (intensity /. 0.1))) in
  {
    network =
      {
        drop_rate = r 0.02;
        duplicate_rate = r 0.02;
        delay_rate = r 0.05;
        delay_max = 2.0;
        partition_rate = r 0.02;
      };
    consensus = { member_crash_rate = r 0.02; byzantine_leader_rate = r 0.03 };
    committee = { withhold_rate = r 0.2; corrupt_rate = r 0.1 };
    mainchain =
      {
        silent_leader_rate = r 0.05;
        corrupt_sync_rate = r 0.05;
        sync_drop_rate = r 0.15;
        reorg_rate = r 0.1;
        max_reorg_depth = 3;
        congestion_rate = r 0.1;
        congestion_gas_limit = 2_000_000;
      };
    (* Crashes abort the run they hit; the chaos soak measures recovery
       inside one run, so the durability class stays scripted-only (the
       crash drill drives it explicitly). *)
    durability = no_durability;
    (* Like crashes, corruption aborts what it touches rather than
       exercising recovery inside the run: the chaos soak keeps it
       zero, the twin-audit bench scripts it explicitly. *)
    corruption = no_corruption;
    scenario = no_scenario;
  }

let active s =
  s.network.drop_rate > 0.0
  || s.network.duplicate_rate > 0.0
  || s.network.delay_rate > 0.0
  || s.network.partition_rate > 0.0
  || s.consensus.member_crash_rate > 0.0
  || s.consensus.byzantine_leader_rate > 0.0
  || s.committee.withhold_rate > 0.0
  || s.committee.corrupt_rate > 0.0
  || s.mainchain.silent_leader_rate > 0.0
  || s.mainchain.corrupt_sync_rate > 0.0
  || s.mainchain.sync_drop_rate > 0.0
  || s.mainchain.reorg_rate > 0.0
  || s.mainchain.congestion_rate > 0.0
  || s.durability.crash_rate > 0.0
  || s.durability.torn_write_rate > 0.0
  || s.durability.crash_script <> []
  || s.corruption.corruption_rate > 0.0
  || s.corruption.corruption_script <> []
  || s.scenario.quorum_starvation <> None
  || s.scenario.committee_loss <> None

type t = {
  spec : spec;
  rng : Rng.t; (* root stream; only ever split, never drawn from *)
  counts : (string, int) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
}

let create ~seed spec =
  {
    spec;
    rng = Rng.create (seed ^ "/fault-plan");
    counts = Hashtbl.create 16;
    seen = Hashtbl.create 64;
  }

let spec t = t.spec

let note t label n =
  if n > 0 then
    Hashtbl.replace t.counts label
      (n + Option.value ~default:0 (Hashtbl.find_opt t.counts label))

let injected t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total_injected t = Hashtbl.fold (fun _ v acc -> acc + v) t.counts 0

(* A fresh draw keyed by [key]: pure in (seed, key). *)
let draw t key = Rng.float (Rng.split t.rng key)

(* Count [label] once per distinct [key], no matter how often the
   decision is re-queried. *)
let note_once t ~key label n =
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    note t label n
  end

let hit t ~rate ~key ~label =
  rate > 0.0
  && draw t key < rate
  &&
  (note_once t ~key label 1;
   true)

let silent_leader t ~epoch =
  hit t ~rate:t.spec.mainchain.silent_leader_rate
    ~key:(Printf.sprintf "mc.silent/%d" epoch)
    ~label:"mainchain.silent_leader"

let corrupt_sync t ~epoch =
  hit t ~rate:t.spec.mainchain.corrupt_sync_rate
    ~key:(Printf.sprintf "mc.corrupt/%d" epoch)
    ~label:"mainchain.corrupt_sync"

let sync_dropped t ~epoch ~attempt =
  hit t ~rate:t.spec.mainchain.sync_drop_rate
    ~key:(Printf.sprintf "mc.syncdrop/%d/%d" epoch attempt)
    ~label:"mainchain.sync_dropped"

let sync_starved t ~epoch =
  match t.spec.scenario.quorum_starvation with
  | Some (from_, until_) when epoch >= from_ && epoch < until_ ->
    note_once t
      ~key:(Printf.sprintf "sc.starve/%d" epoch)
      "scenario.sync_starved" 1;
    true
  | _ -> false

let committee_lost t ~epoch =
  match t.spec.scenario.committee_loss with
  | Some from_ when epoch >= from_ ->
    note_once t ~key:"sc.loss" "scenario.committee_lost" 1;
    true
  | _ -> false

let congested t ~epoch =
  hit t ~rate:t.spec.mainchain.congestion_rate
    ~key:(Printf.sprintf "mc.congest/%d" epoch)
    ~label:"mainchain.congestion"

let reorg_depth t ~epoch =
  let s = t.spec.mainchain in
  if s.reorg_rate <= 0.0 || s.max_reorg_depth < 1 then None
  else
    let key = Printf.sprintf "mc.reorg/%d" epoch in
    if draw t key < s.reorg_rate then
      Some (1 + Rng.int (Rng.split t.rng (key ^ "/depth")) s.max_reorg_depth)
    else None

(* Pick at most [cap] of [n] candidates, each hit independently with
   [rate]; indices are offset by [base] (1 for DKG shares, 0 for
   committee members). *)
let pick_members t ~rate ~cap ~n ~base ~key_prefix ~label ~count_key =
  if rate <= 0.0 || cap <= 0 then []
  else begin
    let picked = ref [] in
    let k = ref 0 in
    let i = ref 0 in
    while !i < n && !k < cap do
      let idx = base + !i in
      if draw t (Printf.sprintf "%s/%d" key_prefix idx) < rate then begin
        picked := idx :: !picked;
        incr k
      end;
      incr i
    done;
    let members = List.rev !picked in
    note_once t ~key:count_key label (List.length members);
    members
  end

let withheld_shares t ~epoch ~n ~max_withheld =
  let key = Printf.sprintf "cm.withhold/%d" epoch in
  pick_members t ~rate:t.spec.committee.withhold_rate ~cap:max_withheld ~n
    ~base:1 ~key_prefix:key ~label:"committee.share_withheld" ~count_key:key

let corrupted_shares t ~epoch ~n ~max_corrupted =
  let key = Printf.sprintf "cm.corrupt/%d" epoch in
  pick_members t ~rate:t.spec.committee.corrupt_rate ~cap:max_corrupted ~n
    ~base:1 ~key_prefix:key ~label:"committee.share_corrupted" ~count_key:key

let crashed_members t ~epoch ~round ~members ~max_faulty =
  let key = Printf.sprintf "cs.crash/%d/%d" epoch round in
  pick_members t ~rate:t.spec.consensus.member_crash_rate ~cap:max_faulty
    ~n:members ~base:0 ~key_prefix:key ~label:"consensus.member_crash"
    ~count_key:key

let byzantine_proposer t ~epoch ~round =
  hit t ~rate:t.spec.consensus.byzantine_leader_rate
    ~key:(Printf.sprintf "cs.byz/%d/%d" epoch round)
    ~label:"consensus.byzantine_leader"

let crash_now t ~epoch ~round =
  let d = t.spec.durability in
  if List.mem (epoch, round) d.crash_script then begin
    note_once t
      ~key:(Printf.sprintf "dur.crash/%d/%d" epoch round)
      "durability.crash" 1;
    true
  end
  else
    hit t ~rate:d.crash_rate
      ~key:(Printf.sprintf "dur.crash/%d/%d" epoch round)
      ~label:"durability.crash"

let torn_write t ~epoch ~round =
  let d = t.spec.durability in
  if d.torn_write_rate <= 0.0 then None
  else begin
    let key = Printf.sprintf "dur.torn/%d/%d" epoch round in
    if draw t key >= d.torn_write_rate then None
    else begin
      note_once t ~key "durability.torn_write" 1;
      let u = draw t (key ^ "/mode") in
      Some
        (if u < 1.0 /. 3.0 then Truncated_tail
         else if u < 2.0 /. 3.0 then Bit_flip
         else Stale_marker)
    end
  end

let corrupt_state t ~epoch ~round =
  let c = t.spec.corruption in
  let key = Printf.sprintf "state.corrupt/%d/%d" epoch round in
  let coords target =
    (* Row and bit selectors come from their own splits so a scripted
       and a drawn injection at the same coordinate pick identically. *)
    let index = Rng.int (Rng.split t.rng (key ^ "/index")) 1_000_003 in
    let bit = Rng.int (Rng.split t.rng (key ^ "/bit")) 1_000_003 in
    (* The injection is counted by the caller (with {!note}) when the
       bit-flip actually lands — a scripted coordinate may find the
       target store empty, like a fated reorg whose window closed. *)
    Some (target, index, bit)
  in
  match
    List.find_opt (fun (e, r, _) -> e = epoch && r = round) c.corruption_script
  with
  | Some (_, _, target) -> coords target
  | None ->
    if c.corruption_rate > 0.0 && draw t key < c.corruption_rate then begin
      let u = draw t (key ^ "/target") in
      coords
        (if u < 1.0 /. 3.0 then Deposit_row
         else if u < 2.0 /. 3.0 then Position_slab
         else Pool_tick)
    end
    else None

let net_chaos t ~epoch ~round ~members =
  let s = t.spec.network in
  if
    s.drop_rate <= 0.0 && s.duplicate_rate <= 0.0 && s.delay_rate <= 0.0
    && s.partition_rate <= 0.0
  then None
  else begin
    let key = Printf.sprintf "net/%d/%d" epoch round in
    (* The closure owns its own split stream; per-message draws are
       deterministic because the consensus event loop is. *)
    let rng = Rng.split t.rng key in
    let partitioned =
      s.partition_rate > 0.0 && members > 1
      && draw t (key ^ "/part") < s.partition_rate
    in
    let cut = if partitioned then 1 + Rng.int rng (members - 1) else 0 in
    if partitioned then note_once t ~key:(key ^ "/part") "net.partition" 1;
    Some
      (fun ~now:_ ~src ~dst ->
        if partitioned && src < cut <> (dst < cut) then begin
          note t "net.drop" 1;
          Network.Drop
        end
        else
          let u = Rng.float rng in
          if u < s.drop_rate then begin
            note t "net.drop" 1;
            Network.Drop
          end
          else if u < s.drop_rate +. s.duplicate_rate then begin
            note t "net.duplicate" 1;
            Network.Duplicate (s.delay_max *. Rng.float rng)
          end
          else if u < s.drop_rate +. s.duplicate_rate +. s.delay_rate then begin
            note t "net.delay" 1;
            Network.Delay (s.delay_max *. Rng.float rng)
          end
          else Network.Deliver)
  end
