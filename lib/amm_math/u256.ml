(* Unsigned 256-bit integers over sixteen base-2^16 digits (little-endian).
   Digits stay below 2^16, so any digit product plus carries fits well within
   OCaml's 63-bit native int; no Int64 boxing is needed anywhere. *)

type t = int array (* length 16, each in [0, 0xFFFF] *)

exception Overflow

let ndigits = 16
let digit_bits = 16
let base = 0x1_0000
let mask = 0xFFFF

let make_zero () = Array.make ndigits 0

let zero = make_zero ()
let one = Array.init ndigits (fun i -> if i = 0 then 1 else 0)
let two = Array.init ndigits (fun i -> if i = 0 then 2 else 0)
let max_value = Array.make ndigits mask

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let of_int n =
  if n < 0 then invalid_arg "U256.of_int: negative";
  let r = make_zero () in
  let rec fill i n = if n <> 0 then (r.(i) <- n land mask; fill (i + 1) (n lsr digit_bits)) in
  fill 0 n;
  r

let of_int64 n =
  let r = make_zero () in
  let n0 = Int64.to_int (Int64.logand n 0xFFFFL) in
  let n1 = Int64.to_int (Int64.logand (Int64.shift_right_logical n 16) 0xFFFFL) in
  let n2 = Int64.to_int (Int64.logand (Int64.shift_right_logical n 32) 0xFFFFL) in
  let n3 = Int64.to_int (Int64.logand (Int64.shift_right_logical n 48) 0xFFFFL) in
  r.(0) <- n0; r.(1) <- n1; r.(2) <- n2; r.(3) <- n3;
  r

let to_int_opt x =
  (* Native ints hold 62 value bits; accept values below 2^62. *)
  let rec high_clear i = i >= ndigits || (x.(i) = 0 && high_clear (i + 1)) in
  if not (high_clear 4) || x.(3) >= 0x4000 then None
  else Some (x.(0) lor (x.(1) lsl 16) lor (x.(2) lsl 32) lor (x.(3) lsl 48))

let to_int x = match to_int_opt x with Some n -> n | None -> raise Overflow

let to_float x =
  let acc = ref 0.0 in
  for i = ndigits - 1 downto 0 do
    acc := (!acc *. 65536.0) +. float_of_int x.(i)
  done;
  !acc

let is_zero x = Array.for_all (fun d -> d = 0) x

let compare a b =
  let rec go i =
    if i < 0 then 0
    else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
    else go (i - 1)
  in
  go (ndigits - 1)

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0
let min a b = if le a b then a else b
let max a b = if ge a b then a else b

(* ------------------------------------------------------------------ *)
(* Scratch buffers and copies (for the destination-passing variants)    *)
(* ------------------------------------------------------------------ *)

let copy = Array.copy
let scratch () = make_zero ()

let arr_effective_len a =
  let rec go i = if i > 0 && a.(i - 1) = 0 then go (i - 1) else i in
  go (Array.length a)

(* ------------------------------------------------------------------ *)
(* Addition / subtraction                                              *)
(* ------------------------------------------------------------------ *)

(* Destination-passing core: writes a+b into [dst] (aliasing allowed,
   the loop reads index i before writing it) and returns the carry. *)
let add_into_carry dst a b =
  let carry = ref 0 in
  for i = 0 to ndigits - 1 do
    let s = a.(i) + b.(i) + !carry in
    dst.(i) <- s land mask;
    carry := s lsr digit_bits
  done;
  !carry

let add_into ~dst a b = ignore (add_into_carry dst a b)

let add_with_carry a b =
  let r = make_zero () in
  let c = add_into_carry r a b in
  (r, c)

let add a b = fst (add_with_carry a b)

let checked_add a b =
  let r, c = add_with_carry a b in
  if c <> 0 then raise Overflow else r

let sub_into_borrow dst a b =
  let borrow = ref 0 in
  for i = 0 to ndigits - 1 do
    let s = a.(i) - b.(i) - !borrow in
    if s < 0 then (dst.(i) <- s + base; borrow := 1)
    else (dst.(i) <- s; borrow := 0)
  done;
  !borrow

let sub_into ~dst a b = ignore (sub_into_borrow dst a b)

let sub_with_borrow a b =
  let r = make_zero () in
  let bw = sub_into_borrow r a b in
  (r, bw)

let sub a b = fst (sub_with_borrow a b)

let checked_sub a b =
  let r, bw = sub_with_borrow a b in
  if bw <> 0 then raise Overflow else r

(* ------------------------------------------------------------------ *)
(* Multiplication                                                      *)
(* ------------------------------------------------------------------ *)

(* Schoolbook product over the *effective* (nonzero) digit lengths: the
   typical simulator operand uses 4-10 of its 16 digits, so trimming the
   loop bounds and the result allocation cuts the inner-loop work by an
   order of magnitude versus always walking 16x16 digits. *)
let arr_mul a b =
  let la = arr_effective_len a and lb = arr_effective_len b in
  if la = 0 || lb = 0 then [| 0 |]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = Array.unsafe_get a i in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let p =
            (ai * Array.unsafe_get b j) + Array.unsafe_get r (i + j) + !carry
          in
          Array.unsafe_set r (i + j) (p land mask);
          carry := p lsr digit_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    r
  end

(* Low 256 bits of a (possibly shorter or longer) digit array. *)
let arr_low_256 p =
  let r = make_zero () in
  Array.blit p 0 r 0 (Stdlib.min (Array.length p) ndigits);
  r

let mul a b = arr_low_256 (arr_mul a b)

let checked_mul a b =
  let p = arr_mul a b in
  for i = ndigits to Array.length p - 1 do
    if p.(i) <> 0 then raise Overflow
  done;
  arr_low_256 p

(* Destination-passing wrapping multiply. [dst] must not alias [a] or
   [b]: the product is accumulated in place across both loops, so an
   aliased input would be read after it was partially overwritten. *)
let mul_into ~dst a b =
  if dst == a || dst == b then invalid_arg "U256.mul_into: dst aliases an input";
  Array.fill dst 0 ndigits 0;
  let la = arr_effective_len a and lb = arr_effective_len b in
  for i = 0 to la - 1 do
    let ai = Array.unsafe_get a i in
    if ai <> 0 then begin
      let carry = ref 0 in
      let jmax = Stdlib.min (lb - 1) (ndigits - 1 - i) in
      for j = 0 to jmax do
        let p =
          (ai * Array.unsafe_get b j) + Array.unsafe_get dst (i + j) + !carry
        in
        Array.unsafe_set dst (i + j) (p land mask);
        carry := p lsr digit_bits
      done;
      (* The spill cell i+jmax+1 is provably still zero here (earlier
         iterations only touch lower cells), so the carry fits as-is; a
         later iteration's inner loop renormalizes it if it grows. *)
      if i + jmax + 1 < ndigits then
        dst.(i + jmax + 1) <- dst.(i + jmax + 1) + !carry
    end
  done

(* ------------------------------------------------------------------ *)
(* Division: Knuth algorithm D over base-2^16 digits                   *)
(* ------------------------------------------------------------------ *)

(* Short division of [u] (length m) by a single digit [d]. *)
let arr_div_digit u m d =
  let q = Array.make m 0 in
  let rem = ref 0 in
  for i = m - 1 downto 0 do
    let cur = (!rem lsl digit_bits) lor u.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (q, !rem)

(* Count of leading zero bits of a nonzero digit within 16 bits. *)
let digit_nlz d =
  let rec go n d = if d land 0x8000 <> 0 then n else go (n + 1) (d lsl 1) in
  go 0 d

(* Full division of digit arrays; returns (quotient, remainder), both
   trimmed to their natural lengths. *)
let arr_divmod u_in v_in =
  let m = arr_effective_len u_in and n = arr_effective_len v_in in
  if n = 0 then raise Division_by_zero;
  if m < n then ([| 0 |], Array.sub u_in 0 (Stdlib.max m 1))
  else if n = 1 then begin
    let q, r = arr_div_digit u_in m v_in.(0) in
    (q, [| r |])
  end else begin
    let s = digit_nlz v_in.(n - 1) in
    (* Normalized copies: vn has n digits, un has m+1 digits. *)
    let vn = Array.make n 0 in
    for i = n - 1 downto 1 do
      vn.(i) <- ((v_in.(i) lsl s) lor (v_in.(i - 1) lsr (digit_bits - s))) land mask
    done;
    vn.(0) <- (v_in.(0) lsl s) land mask;
    let un = Array.make (m + 1) 0 in
    un.(m) <- if s = 0 then 0 else u_in.(m - 1) lsr (digit_bits - s);
    for i = m - 1 downto 1 do
      un.(i) <- ((u_in.(i) lsl s) lor (u_in.(i - 1) lsr (digit_bits - s))) land mask
    done;
    un.(0) <- (u_in.(0) lsl s) land mask;
    let q = Array.make (m - n + 1) 0 in
    for j = m - n downto 0 do
      let num = (un.(j + n) lsl digit_bits) lor un.(j + n - 1) in
      let qhat = ref (num / vn.(n - 1)) and rhat = ref (num mod vn.(n - 1)) in
      let continue = ref true in
      while !continue do
        if !qhat >= base
           || !qhat * vn.(n - 2) > (!rhat lsl digit_bits) lor un.(j + n - 2)
        then begin
          decr qhat;
          rhat := !rhat + vn.(n - 1);
          if !rhat >= base then continue := false
        end
        else continue := false
      done;
      (* Multiply and subtract qhat * vn from un[j .. j+n]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * vn.(i)) + !carry in
        carry := p lsr digit_bits;
        let t = un.(i + j) - (p land mask) - !borrow in
        if t < 0 then (un.(i + j) <- t + base; borrow := 1)
        else (un.(i + j) <- t; borrow := 0)
      done;
      let t = un.(j + n) - !carry - !borrow in
      if t < 0 then begin
        (* qhat was one too large: add vn back. *)
        un.(j + n) <- t + base;
        q.(j) <- !qhat - 1;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s2 = un.(i + j) + vn.(i) + !c in
          un.(i + j) <- s2 land mask;
          c := s2 lsr digit_bits
        done;
        un.(j + n) <- (un.(j + n) + !c) land mask
      end
      else begin
        un.(j + n) <- t;
        q.(j) <- !qhat
      end
    done;
    (* Denormalize the remainder. *)
    let r = Array.make n 0 in
    for i = 0 to n - 1 do
      let hi = if i + 1 < n then un.(i + 1) else 0 in
      r.(i) <- if s = 0 then un.(i) else ((un.(i) lsr s) lor (hi lsl (digit_bits - s))) land mask
    done;
    (q, r)
  end

let fit_256 a =
  let r = make_zero () in
  let l = Stdlib.min (Array.length a) ndigits in
  Array.blit a 0 r 0 l;
  for i = ndigits to Array.length a - 1 do
    if a.(i) <> 0 then raise Overflow
  done;
  r

let divmod a b =
  let q, r = arr_divmod a b in
  (fit_256 q, fit_256 r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let div_rounding_up a b =
  let q, r = divmod a b in
  if is_zero r then q else checked_add q one

(* Small-operand fast path for the mul_div family: when a*b fits in a
   native int the whole 512-bit product/divide machinery is overkill.
   Returns the quotient and remainder as native ints. *)
let small_muldivmod a b c =
  match to_int_opt a with
  | None -> None
  | Some ia ->
    (match to_int_opt b with
    | None -> None
    | Some ib when ia = 0 || ib = 0 || ib <= max_int / ia ->
      let p = ia * ib in
      (match to_int_opt c with
      | Some 0 -> raise Division_by_zero
      | Some ic -> Some (p / ic, p mod ic)
      | None ->
        (* c needs more than 62 bits (so c <> 0 and c > a*b): quotient 0. *)
        Some (0, p))
    | Some _ -> None)

let mul_div a b c =
  if b == c then begin
    (* a*b/b = a exactly; Q96 scale/unscale round-trips hit this. *)
    if is_zero c then raise Division_by_zero;
    a
  end
  else
    match small_muldivmod a b c with
    | Some (q, _) -> of_int q
    | None ->
      let p = arr_mul a b in
      let q, _ = arr_divmod p c in
      fit_256 q

let mul_div_rounding_up a b c =
  if b == c then begin
    if is_zero c then raise Division_by_zero;
    a (* remainder is zero: nothing to round *)
  end
  else
    match small_muldivmod a b c with
    | Some (q, 0) -> of_int q
    | Some (q, _) -> of_int (q + 1)
    | None ->
      let p = arr_mul a b in
      let q, r = arr_divmod p c in
      let q = fit_256 q in
      if arr_effective_len r = 0 then q else checked_add q one

let mul_mod a b c =
  let p = arr_mul a b in
  let _, r = arr_divmod p c in
  fit_256 r

let pow x n =
  if n < 0 then invalid_arg "U256.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else go (if n land 1 = 1 then mul acc b else acc) (mul b b) (n lsr 1)
  in
  go one x n

(* ------------------------------------------------------------------ *)
(* Fixed-modulus Montgomery arithmetic                                 *)
(* ------------------------------------------------------------------ *)

(* Modular multiplication against a modulus fixed once per context: the
   generic [mul_mod] pays a full 512-bit schoolbook product plus a Knuth
   division on every call, while Montgomery's method replaces the
   division with shifts against a precomputed -N^-1 mod 2^16. The CIOS
   (coarsely integrated operand scanning) loop below interleaves the
   product and the reduction, so every intermediate stays within two
   spare limbs and all digit products fit in a native int. *)
module Mont = struct
  (* The [one] accessor below shadows the module-level constant. *)
  let u256_one = one

  type ctx = {
    m : int array; (* modulus digits, little-endian, length 16 *)
    m0' : int; (* -m^-1 mod 2^16 *)
    one_m : t; (* R mod m: the Montgomery form of 1 *)
    r2 : t; (* R^2 mod m, for conversions into Montgomery form *)
  }

  let modulus ctx = copy ctx.m
  let one ctx = copy ctx.one_m

  (* CIOS Montgomery product: a*b*R^-1 mod m with R = 2^256. Inputs must
     be < m; the result is < m and freshly allocated. *)
  let mul ctx a b =
    let m = ctx.m and m0' = ctx.m0' in
    (* t holds ndigits+2 limbs: the running (a*b + q*m)/2^(16i). *)
    let t = Array.make (ndigits + 2) 0 in
    for i = 0 to ndigits - 1 do
      let ai = Array.unsafe_get a i in
      (* t <- t + ai * b *)
      let carry = ref 0 in
      for j = 0 to ndigits - 1 do
        let v = Array.unsafe_get t j + (ai * Array.unsafe_get b j) + !carry in
        Array.unsafe_set t j (v land mask);
        carry := v lsr digit_bits
      done;
      let v = t.(ndigits) + !carry in
      t.(ndigits) <- v land mask;
      t.(ndigits + 1) <- t.(ndigits + 1) + (v lsr digit_bits);
      (* q kills the low limb: (t + q*m) mod 2^16 = 0. *)
      let q = (t.(0) * m0') land mask in
      let v0 = t.(0) + (q * Array.unsafe_get m 0) in
      let carry = ref (v0 lsr digit_bits) in
      (* t <- (t + q*m) / 2^16, fused with the shift. *)
      for j = 1 to ndigits - 1 do
        let v = Array.unsafe_get t j + (q * Array.unsafe_get m j) + !carry in
        Array.unsafe_set t (j - 1) (v land mask);
        carry := v lsr digit_bits
      done;
      let v = t.(ndigits) + !carry in
      t.(ndigits - 1) <- v land mask;
      t.(ndigits) <- t.(ndigits + 1) + (v lsr digit_bits);
      t.(ndigits + 1) <- 0
    done;
    (* Result in t[0..16], < 2m: one conditional subtract normalizes. *)
    let r = Array.sub t 0 ndigits in
    if t.(ndigits) <> 0 || ge r m then sub_into ~dst:r r m;
    r

  let create ~modulus =
    if is_zero modulus || modulus.(0) land 1 = 0 then
      invalid_arg "U256.Mont.create: modulus must be odd";
    (* m0' = -m^-1 mod 2^16 by Newton–Hensel lifting: for odd m0 the seed
       m0 is its own inverse mod 8, and each step doubles the bits. *)
    let m0 = modulus.(0) in
    let x = ref m0 in
    for _ = 1 to 4 do
      x := !x * (2 - (m0 * !x)) land mask
    done;
    let m0' = (base - !x) land mask in
    (* R mod m computed without a 257-bit value: (2^256 - 1) mod m, +1. *)
    let one_m = rem (add (rem max_value modulus) u256_one) modulus in
    let r2 = mul_mod one_m one_m modulus in
    { m = copy modulus; m0'; one_m; r2 }

  let to_mont ctx x = mul ctx x ctx.r2
  let of_mont ctx x = mul ctx x u256_one
end

(* ------------------------------------------------------------------ *)
(* Bitwise                                                             *)
(* ------------------------------------------------------------------ *)

let map2 f a b = Array.init ndigits (fun i -> f a.(i) b.(i))
let logand a b = map2 ( land ) a b
let logor a b = map2 ( lor ) a b
let logxor a b = map2 ( lxor ) a b
let lognot a = Array.init ndigits (fun i -> a.(i) lxor mask)

let shift_left x k =
  if k < 0 then invalid_arg "U256.shift_left";
  if k >= 256 then zero
  else begin
    let dsh = k / digit_bits and bsh = k mod digit_bits in
    let r = make_zero () in
    for i = ndigits - 1 downto dsh do
      let lo = x.(i - dsh) lsl bsh in
      let hi = if bsh > 0 && i - dsh - 1 >= 0 then x.(i - dsh - 1) lsr (digit_bits - bsh) else 0 in
      r.(i) <- (lo lor hi) land mask
    done;
    r
  end

let shift_right x k =
  if k < 0 then invalid_arg "U256.shift_right";
  if k >= 256 then zero
  else begin
    let dsh = k / digit_bits and bsh = k mod digit_bits in
    let r = make_zero () in
    for i = 0 to ndigits - 1 - dsh do
      let lo = x.(i + dsh) lsr bsh in
      let hi =
        if bsh > 0 && i + dsh + 1 < ndigits then (x.(i + dsh + 1) lsl (digit_bits - bsh)) land mask
        else 0
      in
      r.(i) <- (lo lor hi) land mask
    done;
    r
  end

let bit x i =
  if i < 0 || i >= 256 then false
  else (x.(i / digit_bits) lsr (i mod digit_bits)) land 1 = 1

let bits x =
  let rec top i = if i < 0 then 0 else if x.(i) <> 0 then i else top (i - 1) in
  let i = top (ndigits - 1) in
  if i = 0 && x.(0) = 0 then 0
  else begin
    let rec width n d = if d = 0 then n else width (n + 1) (d lsr 1) in
    (i * digit_bits) + width 0 x.(i)
  end

let sqrt n =
  if is_zero n then zero
  else begin
    let x0 = shift_left one ((bits n + 1) / 2) in
    let rec go x =
      let x' = shift_right (add x (div n x)) 1 in
      if lt x' x then go x' else x
    in
    go x0
  end

(* ------------------------------------------------------------------ *)
(* Strings and bytes                                                   *)
(* ------------------------------------------------------------------ *)

let to_string x =
  if is_zero x then "0"
  else begin
    let buf = Buffer.create 78 in
    let cur = ref (Array.copy x) in
    let chunks = ref [] in
    while not (is_zero !cur) do
      let m = arr_effective_len !cur in
      let q, r = arr_div_digit !cur m 10000 in
      let q256 = make_zero () in
      Array.blit q 0 q256 0 (Stdlib.min (Array.length q) ndigits);
      chunks := r :: !chunks;
      cur := q256
    done;
    (match !chunks with
     | [] -> ()
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest);
    Buffer.contents buf
  end

let of_hex s =
  let s = if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')
    then String.sub s 2 (String.length s - 2) else s in
  if s = "" then invalid_arg "U256.of_hex: empty";
  if String.length s > 64 then raise Overflow;
  let r = make_zero () in
  let nibble c = match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "U256.of_hex: bad character"
  in
  let len = String.length s in
  for i = 0 to len - 1 do
    let v = nibble s.[len - 1 - i] in
    r.(i / 4) <- r.(i / 4) lor (v lsl ((i mod 4) * 4))
  done;
  r

let of_string s =
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then of_hex s
  else begin
    if s = "" then invalid_arg "U256.of_string: empty";
    let acc = ref zero in
    let ten_k = of_int 10000 in
    let len = String.length s in
    let i = ref 0 in
    (* Consume in chunks of up to 4 decimal digits. *)
    while !i < len do
      let chunk_len = Stdlib.min 4 (len - !i) in
      let chunk = String.sub s !i chunk_len in
      String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "U256.of_string: bad character") chunk;
      let scale = match chunk_len with 1 -> of_int 10 | 2 -> of_int 100 | 3 -> of_int 1000 | _ -> ten_k in
      acc := checked_add (checked_mul !acc scale) (of_int (int_of_string chunk));
      i := !i + chunk_len
    done;
    !acc
  end

let to_hex x =
  if is_zero x then "0"
  else begin
    let buf = Buffer.create 64 in
    let started = ref false in
    for i = ndigits - 1 downto 0 do
      if !started then Buffer.add_string buf (Printf.sprintf "%04x" x.(i))
      else if x.(i) <> 0 then begin
        Buffer.add_string buf (Printf.sprintf "%x" x.(i));
        started := true
      end
    done;
    Buffer.contents buf
  end

let to_bytes_be x =
  let b = Bytes.create 32 in
  for i = 0 to ndigits - 1 do
    let d = x.(ndigits - 1 - i) in
    Bytes.set b (2 * i) (Char.chr (d lsr 8));
    Bytes.set b ((2 * i) + 1) (Char.chr (d land 0xFF))
  done;
  b

let of_bytes_be b =
  let len = Bytes.length b in
  if len = 0 || len > 32 then invalid_arg "U256.of_bytes_be: need 1..32 bytes";
  let r = make_zero () in
  for i = 0 to len - 1 do
    let byte = Char.code (Bytes.get b (len - 1 - i)) in
    r.(i / 2) <- r.(i / 2) lor (byte lsl ((i mod 2) * 8))
  done;
  r

let pp fmt x = Format.pp_print_string fmt (to_string x)
let pp_hex fmt x = Format.fprintf fmt "0x%s" (to_hex x)
