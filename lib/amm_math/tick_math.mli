(** Tick / sqrt-price conversions for concentrated liquidity.

    A tick [i] represents the price [1.0001^i]; the pool works in terms of
    [sqrt(price)] as an unsigned Q64.96 fixed-point number, exactly as
    Uniswap V3's [TickMath]. *)

val min_tick : int
(** -887272. *)

val max_tick : int
(** 887272. *)

val min_sqrt_ratio : U256.t
(** [get_sqrt_ratio_at_tick min_tick] = 4295128739. *)

val max_sqrt_ratio : U256.t
(** [get_sqrt_ratio_at_tick max_tick] =
    1461446703485210103287273052203988822378723970342. *)

val get_sqrt_ratio_at_tick : int -> U256.t
(** [get_sqrt_ratio_at_tick tick] is [sqrt(1.0001^tick) * 2^96], rounded as
    in Uniswap V3. Raises [Invalid_argument] outside [min_tick, max_tick].
    Results are memoised in a bounded, domain-local table (swap traffic
    revisits a narrow tick band); returned values are shared and must not
    be mutated. *)

val get_sqrt_ratio_at_tick_uncached : int -> U256.t
(** Same result as {!get_sqrt_ratio_at_tick} but always recomputed —
    bypasses the memo table. Reference implementation for tests. *)

val get_tick_at_sqrt_ratio : U256.t -> int
(** Greatest tick whose ratio is [<=] the argument. Raises
    [Invalid_argument] outside [min_sqrt_ratio, max_sqrt_ratio). *)
