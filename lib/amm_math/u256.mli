(** Unsigned 256-bit integers, implemented from scratch.

    Values are immutable. Arithmetic wraps modulo 2^256 unless the function
    name says otherwise ([checked_*] variants raise {!Overflow}). The
    representation is an array of sixteen base-2^16 digits, little-endian,
    which keeps every intermediate product within OCaml's native [int]. *)

type t

exception Overflow
(** Raised by [checked_*] operations and conversions that do not fit. *)

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val max_value : t
(** [2^256 - 1]. *)

(** {1 Conversions} *)

val of_int : int -> t
(** [of_int n] converts a non-negative native integer. Raises
    [Invalid_argument] if [n < 0]. *)

val of_int64 : int64 -> t
(** Interprets the argument as an unsigned 64-bit value. *)

val to_int : t -> int
(** Raises {!Overflow} if the value exceeds [max_int]. *)

val to_int_opt : t -> int option
val to_float : t -> float
(** Lossy conversion, exact below 2^53. *)

val of_string : string -> t
(** Parses a decimal string, or a hexadecimal string when prefixed with
    ["0x"]. Raises [Invalid_argument] on malformed input and {!Overflow} if
    the value needs more than 256 bits. *)

val of_hex : string -> t
(** Parses a hexadecimal string (no prefix required). *)

val to_string : t -> string
(** Decimal rendering. *)

val to_hex : t -> string
(** Minimal-length lowercase hex, no prefix (["0"] for zero). *)

val to_bytes_be : t -> bytes
(** Big-endian 32-byte encoding. *)

val of_bytes_be : bytes -> t
(** Inverse of {!to_bytes_be}; accepts 1..32 bytes. *)

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

(** {1 Arithmetic} *)

val add : t -> t -> t
(** Wrapping addition modulo 2^256. *)

val checked_add : t -> t -> t
(** Raises {!Overflow} on carry out. *)

val sub : t -> t -> t
(** Wrapping subtraction modulo 2^256. *)

val checked_sub : t -> t -> t
(** Raises {!Overflow} when the result would be negative. *)

val mul : t -> t -> t
(** Wrapping multiplication modulo 2^256. *)

val checked_mul : t -> t -> t
(** Raises {!Overflow} if the full product needs more than 256 bits. *)

val div : t -> t -> t
(** Floor division. Raises [Division_by_zero]. *)

val rem : t -> t -> t
val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r] and [r < b]. *)

val div_rounding_up : t -> t -> t
(** Ceiling division. *)

val mul_div : t -> t -> t -> t
(** [mul_div a b c = floor (a*b / c)] computed with a 512-bit intermediate
    product, as Uniswap's [FullMath.mulDiv]. Raises [Division_by_zero] when
    [c = 0] and {!Overflow} when the quotient needs more than 256 bits. *)

val mul_div_rounding_up : t -> t -> t -> t
(** Like {!mul_div} but rounding the quotient up. *)

val mul_mod : t -> t -> t -> t
(** [mul_mod a b c = (a*b) mod c] with a 512-bit intermediate. *)

val pow : t -> int -> t
(** Wrapping exponentiation by squaring. *)

(** {1 Destination-passing variants}

    Hot loops can avoid per-operation allocation by writing into a scratch
    value they own. Only ever mutate values obtained from {!scratch} or
    {!copy}: every other [t] (including the constants above and anything
    returned by the functions in this interface) must be treated as
    immutable — several operations return inputs or cached values by
    physical sharing. *)

val scratch : unit -> t
(** A fresh mutable value, initially zero. *)

val copy : t -> t
(** A private mutable copy of [x]. *)

val add_into : dst:t -> t -> t -> unit
(** [add_into ~dst a b] stores the wrapping sum in [dst]. [dst] may be
    physically equal to [a] and/or [b]. *)

val sub_into : dst:t -> t -> t -> unit
(** [sub_into ~dst a b] stores the wrapping difference in [dst]; aliasing
    allowed as for {!add_into}. *)

val mul_into : dst:t -> t -> t -> unit
(** [mul_into ~dst a b] stores the wrapping product in [dst]. Raises
    [Invalid_argument] if [dst] is physically equal to [a] or [b] (the
    product accumulates in place, so aliasing would corrupt it). *)

val sqrt : t -> t
(** Integer square root (floor). *)

(** {1 Fixed-modulus Montgomery arithmetic}

    When many multiplications share one odd modulus (prime-field
    arithmetic, most notably), a precomputed context replaces the
    512-bit product + Knuth division of {!mul_mod} with a CIOS
    Montgomery reduction: no division at all, just shifts against
    [-m⁻¹ mod 2^16]. Values live in Montgomery form [x·R mod m]
    (R = 2^256) between {!Mont.to_mont} and {!Mont.of_mont}; {!Mont.mul}
    is closed over that form. *)

module Mont : sig
  type ctx

  val create : modulus:t -> ctx
  (** Precompute for a fixed modulus. Raises [Invalid_argument] if the
      modulus is even or zero. *)

  val modulus : ctx -> t

  val one : ctx -> t
  (** [R mod m] — the Montgomery form of 1. *)

  val to_mont : ctx -> t -> t
  (** [to_mont ctx x = x·R mod m]. [x] must already be reduced ([< m]). *)

  val of_mont : ctx -> t -> t
  (** [of_mont ctx x = x·R⁻¹ mod m]; inverse of {!to_mont}. *)

  val mul : ctx -> t -> t -> t
  (** Montgomery product [a·b·R⁻¹ mod m] of reduced inputs; on values in
      Montgomery form this is the modular product in Montgomery form. *)
end

(** {1 Bitwise} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
val bit : t -> int -> bool
(** [bit x i] is the value of bit [i] (0 = least significant). *)

val bits : t -> int
(** Position of the highest set bit plus one; [bits zero = 0]. *)

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit
val pp_hex : Format.formatter -> t -> unit
