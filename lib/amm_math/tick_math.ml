(* Port of Uniswap V3's TickMath. get_sqrt_ratio_at_tick multiplies together
   precomputed Q128.128 factors sqrt(1.0001)^(-2^k) selected by the bits of
   |tick|; get_tick_at_sqrt_ratio inverts it by binary search (the function
   is strictly monotonic, so 20 probes suffice and keep the code free of the
   Solidity bit-twiddling log2 approximation). *)

let min_tick = -887272
let max_tick = 887272

let min_sqrt_ratio = U256.of_string "4295128739"
let max_sqrt_ratio = U256.of_string "1461446703485210103287273052203988822378723970342"

(* factors.(k) = round(2^128 / sqrt(1.0001)^(2^k)) — the constants from
   TickMath.sol. factor for bit 0 applies when |tick| is odd, etc. *)
let factors =
  [| "0xfffcb933bd6fad37aa2d162d1a594001";
     "0xfff97272373d413259a46990580e213a";
     "0xfff2e50f5f656932ef12357cf3c7fdcc";
     "0xffe5caca7e10e4e61c3624eaa0941cd0";
     "0xffcb9843d60f6159c9db58835c926644";
     "0xff973b41fa98c081472e6896dfb254c0";
     "0xff2ea16466c96a3843ec78b326b52861";
     "0xfe5dee046a99a2a811c461f1969c3053";
     "0xfcbe86c7900a88aedcffc83b479aa3a4";
     "0xf987a7253ac413176f2b074cf7815e54";
     "0xf3392b0822b70005940c7a398e4b70f3";
     "0xe7159475a2c29b7443b29c7fa6e889d9";
     "0xd097f3bdfd2022b8845ad8f792aa5825";
     "0xa9f746462d870fdf8a65dc1f90e061e5";
     "0x70d869a156d2a1b890bb3df62baf32f7";
     "0x31be135f97d08fd981231505542fcfa6";
     "0x9aa508b5b7a84e1c677de54f3e99bc9";
     "0x5d6af8dedb81196699c329225ee604";
     "0x2216e584f5fa1ea926041bedfe98";
     "0x48a170391f7dc42444e8fa2" |]
  |> Array.map U256.of_hex

let get_sqrt_ratio_at_tick_uncached tick =
  if tick < min_tick || tick > max_tick then
    invalid_arg (Printf.sprintf "Tick_math.get_sqrt_ratio_at_tick: tick %d out of range" tick);
  let abs_tick = abs tick in
  let ratio = ref (if abs_tick land 1 <> 0 then factors.(0) else Q96.q128) in
  for k = 1 to 19 do
    if abs_tick land (1 lsl k) <> 0 then
      ratio := U256.shift_right (U256.mul !ratio factors.(k)) 128
  done;
  if tick > 0 then ratio := U256.div U256.max_value !ratio;
  (* Convert Q128.128 to Q64.96, rounding up so that
     get_tick_at_sqrt_ratio(get_sqrt_ratio_at_tick(t)) = t. *)
  let shifted = U256.shift_right !ratio 32 in
  let low_bits = U256.logand !ratio (U256.sub (U256.shift_left U256.one 32) U256.one) in
  if U256.is_zero low_bits then shifted else U256.add shifted U256.one

(* Swap traffic revisits a narrow tick band over and over (and the binary
   search in [get_tick_at_sqrt_ratio] recomputes ~20 ratios per call), so
   the 20-multiply derivation above is worth caching. The memo table is
   domain-local — parallel experiment cells each fill their own — and
   bounded: if a scan ever touches more than [memo_cap] distinct ticks the
   table resets rather than holding 1.7M boxed ratios. Cached values are
   shared, never mutated (see the U256 in-place API contract). *)
let memo_cap = 1 lsl 17

let memo_key : (int, U256.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let get_sqrt_ratio_at_tick tick =
  let tbl = Domain.DLS.get memo_key in
  match Hashtbl.find_opt tbl tick with
  | Some ratio -> ratio
  | None ->
    let ratio = get_sqrt_ratio_at_tick_uncached tick in
    if Hashtbl.length tbl >= memo_cap then Hashtbl.reset tbl;
    Hashtbl.add tbl tick ratio;
    ratio

let get_tick_at_sqrt_ratio sqrt_ratio =
  if U256.lt sqrt_ratio min_sqrt_ratio || U256.ge sqrt_ratio max_sqrt_ratio then
    invalid_arg "Tick_math.get_tick_at_sqrt_ratio: ratio out of range";
  (* Invariant: ratio(lo) <= sqrt_ratio < ratio(hi + 1); answer is the
     greatest tick whose ratio does not exceed sqrt_ratio. *)
  let lo = ref min_tick and hi = ref max_tick in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo + 1) / 2) in  (* upper mid so the loop terminates *)
    if U256.le (get_sqrt_ratio_at_tick mid) sqrt_ratio then lo := mid else hi := mid - 1
  done;
  !lo
