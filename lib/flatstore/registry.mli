(** Key interning: a bijection between keys (addresses, position ids)
    and dense integer indices, in first-seen order.

    The dense index is what lets the rest of the flat-store layer drop
    per-entry boxing: a registry index doubles as a {!Slab} row number,
    so "the state of key [k]" is a row offset instead of a hash-table
    hit on a 20- or 32-byte key. Indices are never reused — a key keeps
    its index for the lifetime of the registry. *)

module Make (K : sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end) : sig
  type t

  val create : ?capacity:int -> unit -> t
  val count : t -> int

  val intern : t -> K.t -> int
  (** The key's index, assigning the next free one on first sight. *)

  val find : t -> K.t -> int option
  val mem : t -> K.t -> bool

  val key : t -> int -> K.t
  (** Raises [Invalid_argument] if the index was never assigned. *)

  val iteri : t -> (int -> K.t -> unit) -> unit
  (** In index (= first-seen) order. *)

  val fold : t -> init:'a -> f:('a -> int -> K.t -> 'a) -> 'a
  (** In index order. *)
end
