module U256 = Amm_math.U256

let slot_size = 32

type t = {
  slots : int;
  row_bytes : int;
  mutable data : Bytes.t;       (* capacity * row_bytes *)
  mutable rows : int;
  mutable dirty_flag : Bytes.t; (* one byte per row of capacity *)
  mutable dirty : int list;     (* rows flagged since last clear, unordered *)
  mutable dirty_count : int;
}

let create ~slots ?(capacity = 16) () =
  if slots <= 0 then invalid_arg "Slab.create: slots must be positive";
  let capacity = Stdlib.max 1 capacity in
  let row_bytes = slots * slot_size in
  { slots; row_bytes;
    data = Bytes.make (capacity * row_bytes) '\000';
    rows = 0;
    dirty_flag = Bytes.make capacity '\000';
    dirty = []; dirty_count = 0 }

let slots t = t.slots
let rows t = t.rows
let row_bytes t = t.row_bytes

let capacity t = Bytes.length t.dirty_flag

let ensure_capacity t wanted =
  let cap = capacity t in
  if wanted > cap then begin
    let cap' = ref (Stdlib.max 1 cap) in
    while !cap' < wanted do
      cap' := !cap' * 2
    done;
    let data = Bytes.make (!cap' * t.row_bytes) '\000' in
    Bytes.blit t.data 0 data 0 (t.rows * t.row_bytes);
    let flags = Bytes.make !cap' '\000' in
    Bytes.blit t.dirty_flag 0 flags 0 t.rows;
    t.data <- data;
    t.dirty_flag <- flags
  end

let mark_dirty t row =
  if Bytes.unsafe_get t.dirty_flag row = '\000' then begin
    Bytes.unsafe_set t.dirty_flag row '\001';
    t.dirty <- row :: t.dirty;
    t.dirty_count <- t.dirty_count + 1
  end

let alloc t =
  ensure_capacity t (t.rows + 1);
  let row = t.rows in
  t.rows <- row + 1;
  (* New capacity arrives zeroed, but a row may be re-allocated after a
     shrink-free store grew into recycled space; clear defensively. *)
  Bytes.fill t.data (row * t.row_bytes) t.row_bytes '\000';
  mark_dirty t row;
  row

let check t row slot =
  if row < 0 || row >= t.rows then invalid_arg "Slab: row out of bounds";
  if slot < 0 || slot >= t.slots then invalid_arg "Slab: slot out of bounds"

let off t row slot = (row * t.row_bytes) + (slot * slot_size)

let get_u256 t ~row ~slot =
  check t row slot;
  U256.of_bytes_be (Bytes.sub t.data (off t row slot) slot_size)

let set_u256 t ~row ~slot v =
  check t row slot;
  let b = U256.to_bytes_be v in
  Bytes.blit b 0 t.data (off t row slot) slot_size;
  mark_dirty t row

let get_int t ~row ~slot =
  check t row slot;
  Int64.to_int (Bytes.get_int64_be t.data (off t row slot))

let set_int t ~row ~slot v =
  check t row slot;
  Bytes.set_int64_be t.data (off t row slot) (Int64.of_int v);
  mark_dirty t row

let get_int2 t ~row ~slot =
  check t row slot;
  let o = off t row slot in
  (Int64.to_int (Bytes.get_int64_be t.data o),
   Int64.to_int (Bytes.get_int64_be t.data (o + 8)))

let set_int2 t ~row ~slot a b =
  check t row slot;
  let o = off t row slot in
  Bytes.set_int64_be t.data o (Int64.of_int a);
  Bytes.set_int64_be t.data (o + 8) (Int64.of_int b);
  mark_dirty t row

let get_bytes t ~row ~slot ~len =
  check t row slot;
  if len < 0 || len > slot_size then invalid_arg "Slab.get_bytes: bad length";
  Bytes.sub t.data (off t row slot) len

let set_bytes t ~row ~slot b =
  check t row slot;
  let len = Bytes.length b in
  if len > slot_size then invalid_arg "Slab.set_bytes: value exceeds slot";
  let o = off t row slot in
  Bytes.blit b 0 t.data o len;
  Bytes.fill t.data (o + len) (slot_size - len) '\000';
  mark_dirty t row

let copy_row t row =
  check t row 0;
  Bytes.sub t.data (row * t.row_bytes) t.row_bytes

let blit_row t row b =
  check t row 0;
  if Bytes.length b <> t.row_bytes then invalid_arg "Slab.blit_row: bad length";
  Bytes.blit b 0 t.data (row * t.row_bytes) t.row_bytes;
  mark_dirty t row

let corrupt_bit t ~row ~bit =
  check t row 0;
  let bit = ((bit mod (t.row_bytes * 8)) + (t.row_bytes * 8)) mod (t.row_bytes * 8) in
  let o = (row * t.row_bytes) + (bit / 8) in
  Bytes.set t.data o (Char.chr (Char.code (Bytes.get t.data o) lxor (1 lsl (bit mod 8))));
  mark_dirty t row

let dirty_rows t = List.sort compare t.dirty
let dirty_count t = t.dirty_count

let clear_dirty t =
  List.iter (fun row -> Bytes.unsafe_set t.dirty_flag row '\000') t.dirty;
  t.dirty <- [];
  t.dirty_count <- 0

let set_u32be b off v =
  Bytes.set_int32_be b off (Int32.of_int v)

let get_u32be b off = Int32.to_int (Bytes.get_int32_be b off)

let to_bytes t =
  let body = t.rows * t.row_bytes in
  let out = Bytes.create (8 + body) in
  set_u32be out 0 t.slots;
  set_u32be out 4 t.rows;
  Bytes.blit t.data 0 out 8 body;
  out

type error =
  | Truncated of { need : int; got : int }
  | Bad_header of string
  | Length_mismatch of { expected : int; got : int }

let error_to_string = function
  | Truncated { need; got } ->
    Printf.sprintf "truncated buffer: need at least %d bytes, got %d" need got
  | Bad_header msg -> "bad header: " ^ msg
  | Length_mismatch { expected; got } ->
    Printf.sprintf "length mismatch: header implies %d bytes, got %d" expected got

(* Decoders never reach into [Bytes] without checking first: a short or
   corrupted buffer (a torn snapshot file, say) must come back as a typed
   [Error], not as an [Invalid_argument] escaping from a Bytes primitive. *)
let of_bytes b =
  let len = Bytes.length b in
  if len < 8 then Error (Truncated { need = 8; got = len })
  else begin
    let slots = get_u32be b 0 in
    let rows = get_u32be b 4 in
    if slots <= 0 then
      Error (Bad_header (Printf.sprintf "slots = %d, must be positive" slots))
    else if slots > 1024 then
      Error (Bad_header (Printf.sprintf "slots = %d, implausibly wide" slots))
    else if rows < 0 then
      Error (Bad_header (Printf.sprintf "rows = %d, must be non-negative" rows))
    else begin
      let row_bytes = slots * slot_size in
      let expected = 8 + (rows * row_bytes) in
      if len <> expected then Error (Length_mismatch { expected; got = len })
      else begin
        let t = create ~slots ~capacity:(Stdlib.max 1 rows) () in
        ensure_capacity t rows;
        Bytes.blit b 8 t.data 0 (rows * row_bytes);
        t.rows <- rows;
        Ok t
      end
    end
  end

let of_bytes_exn b =
  match of_bytes b with
  | Ok t -> t
  | Error e -> invalid_arg ("Slab.of_bytes: " ^ error_to_string e)
