(** A flat, [Bytes]-backed row store.

    Each row is a fixed number of 32-byte slots living in one contiguous
    byte arena — no per-entry records, no boxed limbs, so a store with a
    million rows is a single allocation the GC scans in O(1). Slots hold
    big-endian {!Amm_math.U256} words, native integers, or raw byte
    strings (addresses, hashes).

    The slab tracks which rows were written since the last
    {!clear_dirty}: checkpointing only has to copy the dirty rows, and
    the binary codec ({!to_bytes}/{!of_bytes}) round-trips the whole
    arena without walking a heap structure. *)

type t

val create : slots:int -> ?capacity:int -> unit -> t
(** [create ~slots ()] is an empty slab whose rows have [slots] 32-byte
    slots. Raises [Invalid_argument] if [slots <= 0]. *)

val slots : t -> int
val rows : t -> int
(** Number of allocated rows; row indices are [0 .. rows-1]. *)

val row_bytes : t -> int
(** Bytes per row ([32 * slots]). *)

val alloc : t -> int
(** Append a zeroed row and return its index. Marks it dirty. *)

(** {1 Slot accessors}

    [row] must be in [0 .. rows-1] and [slot] in [0 .. slots-1];
    violations raise [Invalid_argument]. Every setter marks the row
    dirty. *)

val get_u256 : t -> row:int -> slot:int -> Amm_math.U256.t
val set_u256 : t -> row:int -> slot:int -> Amm_math.U256.t -> unit

val get_int : t -> row:int -> slot:int -> int
(** Reads the signed 64-bit value stored in the first 8 bytes of the
    slot. *)

val set_int : t -> row:int -> slot:int -> int -> unit

val get_int2 : t -> row:int -> slot:int -> int * int
(** Reads the pair packed by {!set_int2} (bytes 0-7 and 8-15). *)

val set_int2 : t -> row:int -> slot:int -> int -> int -> unit

val get_bytes : t -> row:int -> slot:int -> len:int -> bytes
(** First [len] bytes of the slot ([len <= 32]). *)

val set_bytes : t -> row:int -> slot:int -> bytes -> unit
(** Writes [b] at the start of the slot, zero-padding the remainder.
    Raises [Invalid_argument] if [b] is longer than 32 bytes. *)

(** {1 Row-granular access} *)

val copy_row : t -> int -> bytes
(** A fresh copy of the row's raw bytes. *)

val blit_row : t -> int -> bytes -> unit
(** Overwrites the row from raw bytes (length must be [row_bytes]).
    Marks it dirty. *)

(** {1 Dirty tracking} *)

val dirty_rows : t -> int list
(** Rows written since the last {!clear_dirty}, ascending, each at most
    once. *)

val dirty_count : t -> int
val clear_dirty : t -> unit

val corrupt_bit : t -> row:int -> bit:int -> unit
(** Flips one bit of the row's raw bytes ([bit] is taken modulo the
    row's bit width) and marks the row dirty — the fault injector's
    model of a silent in-memory corruption. Raises [Invalid_argument]
    if [row] is out of bounds. *)

(** {1 Binary codec}

    The encoding is [slots : u32be][rows : u32be][arena bytes] — a
    compact snapshot of the entire store. [of_bytes] rebuilds a slab
    whose re-encoding is byte-identical. The decoded slab starts with an
    empty dirty set. *)

type error =
  | Truncated of { need : int; got : int }
      (** Shorter than the fixed header. *)
  | Bad_header of string
      (** Header fields out of range (non-positive slots, negative or
          implausible row count). *)
  | Length_mismatch of { expected : int; got : int }
      (** Header is well-formed but the arena length disagrees — a torn
          or truncated snapshot. *)

val error_to_string : error -> string

val to_bytes : t -> bytes

val of_bytes : bytes -> (t, error) result
(** Total: never raises, whatever the buffer contains. Untrusted input
    (snapshot files read back from disk) must go through this. *)

val of_bytes_exn : bytes -> t
(** Raises [Invalid_argument] with the rendered error — for callers that
    treat a malformed buffer as a programming error. *)
