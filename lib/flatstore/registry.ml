module Make (K : sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end) =
struct
  module H = Hashtbl.Make (K)

  type t = {
    mutable keys : K.t array;  (* index -> key; only [0, count) valid *)
    mutable count : int;
    index : int H.t;
  }

  let create ?(capacity = 64) () =
    let capacity = Stdlib.max 1 capacity in
    { keys = [||]; count = 0; index = H.create capacity }

  let count t = t.count

  let intern t k =
    match H.find_opt t.index k with
    | Some i -> i
    | None ->
      let i = t.count in
      let cap = Array.length t.keys in
      if i >= cap then begin
        let keys = Array.make (Stdlib.max 16 (2 * cap)) k in
        Array.blit t.keys 0 keys 0 t.count;
        t.keys <- keys
      end;
      t.keys.(i) <- k;
      t.count <- i + 1;
      H.replace t.index k i;
      i

  let find t k = H.find_opt t.index k
  let mem t k = H.mem t.index k

  let key t i =
    if i < 0 || i >= t.count then invalid_arg "Registry.key: unassigned index";
    t.keys.(i)

  let iteri t f =
    for i = 0 to t.count - 1 do
      f i t.keys.(i)
    done

  let fold t ~init ~f =
    let acc = ref init in
    for i = 0 to t.count - 1 do
      acc := f !acc i t.keys.(i)
    done;
    !acc
end
