(** Bounded-delay message-passing network (the Δ-synchronous model of the
    paper's adversary section): every sent message is delivered within
    [delta] seconds; actual delays are drawn uniformly from
    [[0.1·delta, delta]]. The adversary may reorder in that window — which
    random delays exercise — but by default cannot drop messages.

    An optional [chaos] hook strengthens the adversary for fault
    injection: consulted once per {!send}, it may drop the message,
    duplicate it (the copy arrives [extra] seconds after the original) or
    add delay beyond Δ. Timers scheduled with {!schedule} are local
    events and are never subject to chaos. *)

(** Per-message verdict of the chaos hook. *)
type delivery =
  | Deliver            (** normal bounded-delay delivery *)
  | Drop               (** the message is lost *)
  | Duplicate of float (** delivered, plus a copy [extra] seconds later *)
  | Delay of float     (** delivered [extra] seconds beyond the drawn delay *)

type 'msg t

val create :
  ?chaos:(now:float -> src:int -> dst:int -> delivery) ->
  rng:Amm_crypto.Rng.t -> delta:float -> unit -> 'msg t

val delta : 'msg t -> float

val send : 'msg t -> at:float -> src:int -> dst:int -> 'msg -> unit
val broadcast : 'msg t -> at:float -> src:int -> dsts:int list -> 'msg -> unit

val schedule : 'msg t -> at:float -> dst:int -> 'msg -> unit
(** Local event (e.g. a timer) delivered to [dst] at exactly [at]. *)

val next : 'msg t -> (float * int * 'msg) option
(** Earliest undelivered event as [(time, dst, msg)]. *)

val next_time : 'msg t -> float option
val pending : 'msg t -> int
