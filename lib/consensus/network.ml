module Rng = Amm_crypto.Rng

type delivery = Deliver | Drop | Duplicate of float | Delay of float

type 'msg t = {
  rng : Rng.t;
  delta : float;
  queue : (int * 'msg) Pqueue.t;
  chaos : (now:float -> src:int -> dst:int -> delivery) option;
}

let create ?chaos ~rng ~delta () = { rng; delta; queue = Pqueue.create (); chaos }
let delta t = t.delta

let send t ~at ~src ~dst msg =
  (* The base delay is always drawn, chaos or not, so a run with no
     chaos hook consumes the identical rng sequence as before. *)
  let delay = t.delta *. (0.1 +. (0.9 *. Rng.float t.rng)) in
  match t.chaos with
  | None -> Pqueue.push t.queue (at +. delay) (dst, msg)
  | Some decide -> (
    match decide ~now:at ~src ~dst with
    | Deliver -> Pqueue.push t.queue (at +. delay) (dst, msg)
    | Drop -> ()
    | Delay extra -> Pqueue.push t.queue (at +. delay +. extra) (dst, msg)
    | Duplicate extra ->
      Pqueue.push t.queue (at +. delay) (dst, msg);
      Pqueue.push t.queue (at +. delay +. extra) (dst, msg))

let broadcast t ~at ~src ~dsts msg = List.iter (fun dst -> send t ~at ~src ~dst msg) dsts

let schedule t ~at ~dst msg = Pqueue.push t.queue at (dst, msg)

let next t =
  match Pqueue.pop t.queue with
  | Some (time, (dst, msg)) -> Some (time, dst, msg)
  | None -> None

let next_time t = Pqueue.peek_priority t.queue
let pending t = Pqueue.length t.queue
