(** Leader-based PBFT over the simulated Δ-network, as the ammBoost
    sidechain committee runs it: the epoch leader proposes a block, the
    committee prepares and commits with 2f+1 quorums, and a
    malicious/unresponsive leader is replaced through view change
    (the paper's leader-change interruption handling).

    The implementation is message-level and is exercised with real
    committees in tests and examples; large-scale experiments use
    {!Latency_model} instead (see DESIGN.md). *)

type behavior =
  | Honest
  | Silent          (** never sends anything (crashed / unresponsive) *)
  | Propose_invalid (** as leader, proposes a block that fails validation *)

type config = {
  n : int;             (** committee size; must be >= 3f+1 *)
  f : int;             (** maximum faulty members tolerated *)
  behaviors : behavior array;  (** length n *)
  delta : float;       (** network delay bound (seconds) *)
  timeout : float;     (** view-change timeout τ *)
  max_time : float;    (** simulation horizon *)
}

type outcome = {
  decisions : (bytes * float) option array;
      (** per replica: decided digest and decision time *)
  final_views : int array;
  total_view_changes : int;
}

val leader_of_view : n:int -> int -> int

val backoff_cap : int
(** View-change timers back off exponentially, timeout · 2^min(view, cap);
    this is the cap exponent. *)

val run :
  rng:Amm_crypto.Rng.t ->
  ?chaos:(now:float -> src:int -> dst:int -> Network.delivery) ->
  config -> value:bytes -> outcome
(** Runs one consensus instance on [value]; the honest leader of view [v]
    proposes [H(value || v)], so agreement across replicas implies they
    decided the same view's proposal. [chaos] is passed to the underlying
    {!Network} to drop/duplicate/delay individual messages. *)

val honest_agreement : config -> outcome -> bool
(** All honest replicas that decided agree on one digest. *)

val all_honest_decided : config -> outcome -> bool
