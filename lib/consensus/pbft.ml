module Sha256 = Amm_crypto.Sha256

type behavior = Honest | Silent | Propose_invalid

type config = {
  n : int;
  f : int;
  behaviors : behavior array;
  delta : float;
  timeout : float;
  max_time : float;
}

type msg =
  | Pre_prepare of { view : int; from : int; digest : bytes; valid : bool }
  | Prepare of { view : int; from : int; digest : bytes }
  | Commit of { view : int; from : int; digest : bytes }
  | View_change of { new_view : int; from : int }
  | Timeout of { view : int }

type replica = {
  id : int;
  mutable view : int;
  mutable sent_prepare_for : int;  (* highest view we prepared in; -1 none *)
  mutable sent_commit_for : int;
  mutable decision : (bytes * float) option;
}

type outcome = {
  decisions : (bytes * float) option array;
  final_views : int array;
  total_view_changes : int;
}

let leader_of_view ~n v = v mod n

(* Back-off cap: timers never exceed timeout * 2^6 however far views
   climb, so a long faulty-leader streak delays but cannot stall runs. *)
let backoff_cap = 6

let run ~rng ?chaos cfg ~value =
  if cfg.n < (3 * cfg.f) + 1 then invalid_arg "Pbft.run: need n >= 3f+1";
  if Array.length cfg.behaviors <> cfg.n then invalid_arg "Pbft.run: behaviors length";
  let quorum = (2 * cfg.f) + 1 in
  let net = Network.create ?chaos ~rng ~delta:cfg.delta () in
  let replicas = Array.init cfg.n (fun id ->
      { id; view = 0; sent_prepare_for = -1; sent_commit_for = -1; decision = None })
  in
  let all = List.init cfg.n Fun.id in
  let digest_of_view v = Sha256.concat [ value; Bytes.of_string (string_of_int v) ] in
  (* Vote bookkeeping, global for simplicity: sets of voters per (view, kind). *)
  let prepares : (int * string, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let commits : (int * string, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let view_changes : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let proposed_in_view : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let total_view_changes = ref 0 in
  let voters tbl key =
    match Hashtbl.find_opt tbl key with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.add tbl key s;
      s
  in
  let is_honest r = cfg.behaviors.(r.id) <> Silent in
  let propose ~at view =
    (* The view's leader issues a pre-prepare according to its behavior. *)
    if not (Hashtbl.mem proposed_in_view view) then begin
      let leader = leader_of_view ~n:cfg.n view in
      match cfg.behaviors.(leader) with
      | Silent -> ()
      | Honest ->
        Hashtbl.add proposed_in_view view ();
        Network.broadcast net ~at ~src:leader ~dsts:all
          (Pre_prepare { view; from = leader; digest = digest_of_view view; valid = true })
      | Propose_invalid ->
        Hashtbl.add proposed_in_view view ();
        Network.broadcast net ~at ~src:leader ~dsts:all
          (Pre_prepare { view; from = leader; digest = digest_of_view view; valid = false })
    end
  in
  let schedule_timeout ~at r =
    (* Exponential back-off keeps successive view changes from racing:
       the view-v timer waits timeout * 2^min(v, cap). *)
    let multiplier = float_of_int (1 lsl Stdlib.min r.view backoff_cap) in
    Network.schedule net ~at:(at +. (cfg.timeout *. multiplier)) ~dst:r.id
      (Timeout { view = r.view })
  in
  let advance_view ~at r new_view =
    if new_view > r.view && r.decision = None then begin
      r.view <- new_view;
      incr total_view_changes;
      Network.broadcast net ~at ~src:r.id ~dsts:all
        (View_change { new_view; from = r.id });
      schedule_timeout ~at r
    end
  in
  let try_prepare ~at r view digest =
    if view = r.view && r.sent_prepare_for < view then begin
      r.sent_prepare_for <- view;
      Network.broadcast net ~at ~src:r.id ~dsts:all
        (Prepare { view; from = r.id; digest })
    end
  in
  let handle ~at r = function
    | Pre_prepare { view; from; digest; valid } ->
      if view >= r.view && from = leader_of_view ~n:cfg.n view then begin
        if view > r.view then r.view <- view;
        if valid then try_prepare ~at r view digest
        else advance_view ~at r (view + 1)
      end
    | Prepare { view; from; digest } ->
      let s = voters prepares (view, Bytes.to_string digest) in
      Hashtbl.replace s from ();
      if Hashtbl.length s >= quorum && view >= r.view && r.sent_commit_for < view then begin
        r.sent_commit_for <- view;
        Network.broadcast net ~at ~src:r.id ~dsts:all
          (Commit { view; from = r.id; digest })
      end
    | Commit { view; from; digest } ->
      let s = voters commits (view, Bytes.to_string digest) in
      Hashtbl.replace s from ();
      if Hashtbl.length s >= quorum && r.decision = None && view >= r.view then
        r.decision <- Some (digest, at)
    | View_change { new_view; from } ->
      let s = voters view_changes new_view in
      Hashtbl.replace s from ();
      (* Join a view change once f+1 back it (someone honest wants it). *)
      if Hashtbl.length s >= cfg.f + 1 && r.view < new_view then
        advance_view ~at r new_view;
      (* The new leader starts proposing once a quorum has moved. *)
      if Hashtbl.length s >= quorum && leader_of_view ~n:cfg.n new_view = r.id
         && r.view >= new_view then
        propose ~at new_view
    | Timeout { view } ->
      if r.decision = None && r.view = view then advance_view ~at r (view + 1)
  in
  (* Bootstrap: the view-0 leader proposes; everyone arms a timer. *)
  propose ~at:0.0 0;
  Array.iter (fun r -> if is_honest r then schedule_timeout ~at:0.0 r) replicas;
  let all_decided () =
    Array.for_all
      (fun r -> cfg.behaviors.(r.id) = Silent || r.decision <> None)
      replicas
  in
  let rec loop () =
    match Network.next net with
    | Some (at, dst, msg) when at <= cfg.max_time && not (all_decided ()) ->
      let r = replicas.(dst) in
      if is_honest r then handle ~at r msg;
      loop ()
    | _ -> ()
  in
  loop ();
  { decisions = Array.map (fun r -> r.decision) replicas;
    final_views = Array.map (fun r -> r.view) replicas;
    total_view_changes = !total_view_changes }

let honest_agreement cfg outcome =
  let digests = ref [] in
  Array.iteri
    (fun i d ->
      if cfg.behaviors.(i) <> Silent then
        match d with Some (digest, _) -> digests := digest :: !digests | None -> ())
    outcome.decisions;
  match !digests with
  | [] -> true
  | first :: rest -> List.for_all (Bytes.equal first) rest

let all_honest_decided cfg outcome =
  let ok = ref true in
  Array.iteri
    (fun i d -> if cfg.behaviors.(i) = Honest && d = None then ok := false)
    outcome.decisions;
  !ok
