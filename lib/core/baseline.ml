(* The baseline: Uniswap V3 deployed directly on the mainchain (the
   paper's Sepolia deployment). The same traffic is executed through the
   same Router logic, but every operation is an on-chain transaction
   paying the measured per-operation gas (Gas_model) and adding its
   Sepolia-encoded bytes to the chain. *)

module U256 = Amm_math.U256
module Rng = Amm_crypto.Rng
module Tx = Chain.Tx
module Encoding = Chain.Encoding
module Eth = Mainchain.Eth

type result = {
  cfg : Config.t;
  generated : int;
  executed : int;
  rejected : int;
  gas_total : int;
  gas_by_op : (string * int) list;
  mc_tx_bytes : int;          (* Sepolia encoding, what lands on chain *)
  mc_tx_bytes_ethereum : int; (* same ops under the production-Ethereum encoding *)
  latency_by_op : (string * float) list;
  throughput : float;
  swaps : int;
  mints : int;
  burns : int;
  collects : int;
  growth_epochs : (int * float) list;
      (* (epoch, cumulative mainchain tx bytes) at each epoch start plus a
         closing entry after the drain — the real counterfactual series the
         run-report plots against the ammBoost growth ledger *)
}

let op_of_tx tx = Tx.op_of_payload tx.Tx.payload

let unlimited = U256.of_string "1000000000000000000000000000000000000" (* 1e36 *)

let run cfg =
  let rng_root = Rng.create (cfg.Config.seed ^ "/baseline") in
  let users = Party.make_users (Rng.split rng_root "users") ~count:cfg.Config.users
      ~lp_fraction:cfg.Config.lp_fraction in
  let traffic = Traffic.create ~rng:(Rng.split rng_root "traffic") ~cfg ~users in
  let eth = Eth.create ~interval:cfg.Config.mc_block_interval
      ~gas_limit:cfg.Config.mc_gas_limit ~rng:(Rng.split rng_root "net") () in
  let token0 = Chain.Token.make ~id:0 ~symbol:"TKA" in
  let token1 = Chain.Token.make ~id:1 ~symbol:"TKB" in
  let pool =
    Uniswap.Pool.create ~pool_id:0 ~token0 ~token1 ~fee_pips:cfg.Config.fee_pips
      ~tick_spacing:cfg.Config.tick_spacing ~sqrt_price:Amm_math.Q96.q96
  in
  (* Seed liquidity (the V3Factory deployment plus initial LP position). *)
  let genesis = U256.of_string "1000000000000000000000000" in
  (match
     Uniswap.Router.mint pool
       ~position_id:(Chain.Ids.Position_id.of_hash (Amm_crypto.Sha256.digest_string "genesis"))
       ~owner:users.(0).Party.address ~lower_tick:(-887220) ~upper_tick:887220
       ~amount0_desired:genesis ~amount1_desired:genesis
   with
  | Ok _ -> ()
  | Error e -> failwith ("Baseline: genesis mint failed: " ^ e));
  (* Reuse the sidechain processor as the execution engine with unlimited
     deposits: identical AMM semantics, no deposit constraint (baseline
     users pay from their wallets). *)
  let snapshot =
    { Tokenbank.Token_bank.snap_epoch = 0;
      snap_deposits =
        Array.to_list
          (Array.map (fun u -> (u.Party.address, (unlimited, unlimited))) users);
      snap_pool_balances = [ (0, (Uniswap.Pool.balance0 pool, Uniswap.Pool.balance1 pool)) ];
      snap_positions = [] }
  in
  let processor =
    Sidechain.Processor.begin_epoch ~pool ~snapshot
      ~verify_signatures:cfg.Config.verify_signatures ()
  in
  let executed = ref 0 and rejected = ref 0 in
  let ethereum_bytes = ref 0 in
  let growth_epochs = ref [] in
  let chain_bytes () =
    float_of_int
      (List.fold_left (fun acc (_, b) -> acc + b) 0 (Eth.bytes_by_label eth))
  in
  let b_t = cfg.Config.sc_round_duration in
  let spr = cfg.Config.sc_rounds_per_epoch in
  let rounds = cfg.Config.epochs * spr in
  for round = 0 to rounds - 1 do
    let t_round = float_of_int round *. b_t in
    Eth.advance_to eth t_round;
    if round mod spr = 0 then
      growth_epochs := (round / spr, chain_bytes ()) :: !growth_epochs;
    ignore
      (Traffic.iter_round traffic ~round ~time:t_round (fun tx ->
        let op = op_of_tx tx in
        ethereum_bytes := !ethereum_bytes + Encoding.ethereum_op_size op;
        Eth.submit eth ~at:t_round
          { Eth.label = Tx.type_name tx.Tx.payload;
            size_bytes = Encoding.sepolia_op_size op;
            gas = Gas_model.op_gas op;
            flow_txs = Gas_model.flow_txs_of_op op;
            tag = None;
            execute =
              Some
                (fun _h ->
                  match
                    Sidechain.Processor.process processor ~current_round:round tx
                  with
                  | Ok () -> incr executed
                  | Error _ -> incr rejected) }))
  done;
  (* Drain the pending pool (gas-limit congestion can leave a backlog). *)
  let horizon = ref (float_of_int rounds *. b_t) in
  while Eth.pending_count eth > 0 && !horizon < 1e7 do
    horizon := !horizon +. (10.0 *. cfg.Config.mc_block_interval);
    Eth.advance_to eth !horizon
  done;
  growth_epochs := (cfg.Config.epochs, chain_bytes ()) :: !growth_epochs;
  let stats = Sidechain.Processor.stats processor in
  let gas_by_op = Eth.gas_used_by_label eth in
  let latency_by_op =
    List.filter_map
      (fun (label, _) ->
        Option.map (fun v -> (label, v)) (Eth.mean_latency eth label))
      gas_by_op
  in
  { cfg;
    generated = Traffic.generated traffic;
    executed = !executed;
    rejected = !rejected;
    gas_total = Eth.gas_used_total eth;
    gas_by_op;
    mc_tx_bytes =
      List.fold_left (fun acc (_, b) -> acc + b) 0 (Eth.bytes_by_label eth);
    mc_tx_bytes_ethereum = !ethereum_bytes;
    latency_by_op;
    throughput = float_of_int !executed /. Config.generation_duration cfg;
    swaps = stats.Sidechain.Processor.swaps;
    mints = stats.Sidechain.Processor.mints;
    burns = stats.Sidechain.Processor.burns;
    collects = stats.Sidechain.Processor.collects;
    growth_epochs = List.rev !growth_epochs }
