(* Synthetic Uniswap-like traffic following the paper's measured 2023
   distribution (Table 8): 93.19% swaps, 2.14% mints, 2.38% burns,
   2.27% collects, arriving at the constant rate ρ = ⌈V_D·b_t/86400⌉ per
   sidechain round. LPs mostly supplement existing positions (so the
   position count stays bounded by the user population, as the paper's
   sidechain-growth results require), occasionally open new ones, and
   sometimes withdraw fully. *)

module U256 = Amm_math.U256
module Rng = Amm_crypto.Rng
module Tx = Chain.Tx
module Position_id = Chain.Ids.Position_id

type t = {
  rng : Rng.t;
  cfg : Config.t;
  users : Party.user array;
  lps : Party.user array;
  (* user_index -> open position ids this LP minted *)
  registry : (int, Position_id.t list ref) Hashtbl.t;
  mutable generated : int;
  mutable n_swaps : int;
  mutable n_mints : int;
  mutable n_burns : int;
  mutable n_collects : int;
}

let create ~rng ~cfg ~users =
  let lps = Array.of_list (List.filter (fun u -> u.Party.is_lp) (Array.to_list users)) in
  if Array.length lps = 0 then invalid_arg "Traffic.create: no LPs";
  { rng; cfg; users; lps; registry = Hashtbl.create 32;
    generated = 0; n_swaps = 0; n_mints = 0; n_burns = 0; n_collects = 0 }

let positions_of t (lp : Party.user) =
  match Hashtbl.find_opt t.registry lp.Party.user_index with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.replace t.registry lp.Party.user_index l;
    l

let register_position t (lp : Party.user) pid =
  let l = positions_of t lp in
  l := pid :: !l

let unregister_position t (lp : Party.user) pid =
  let l = positions_of t lp in
  l := List.filter (fun p -> not (Position_id.equal p pid)) !l

let unit_amount = U256.of_string "10000000000000000" (* 1e16 *)

let amount t ~max_units = U256.mul unit_amount (U256.of_int (1 + Rng.int t.rng max_units))

let make_tx t (user : Party.user) ~round ~time payload =
  let sign = if t.cfg.Config.sign_transactions then Some user.Party.sk else None in
  Tx.create ?sign ~issuer:user.Party.address ~issuer_pk:user.Party.pk ~pool:0
    ~issued_round:round ~issued_at:time payload

let gen_swap t user ~round ~time =
  t.n_swaps <- t.n_swaps + 1;
  let exact_in = Rng.float t.rng < 0.7 in
  let amount_specified = amount t ~max_units:100 in
  let payload =
    Tx.Swap
      { zero_for_one = Rng.bool t.rng;
        kind = (if exact_in then Tx.Exact_input else Tx.Exact_output);
        amount_specified;
        amount_limit =
          (if exact_in then U256.zero (* min out: accept any fill *)
           else U256.mul amount_specified (U256.of_int 3) (* generous max in *));
        sqrt_price_limit = U256.zero;
        deadline = round + t.cfg.Config.swap_deadline_rounds }
  in
  make_tx t user ~round ~time payload

let pick_range t =
  let spacing = t.cfg.Config.tick_spacing in
  let halfwidth = spacing * (5 + Rng.int t.rng 46) in
  let center = spacing * (Rng.int t.rng 11 - 5) in
  let lower = ((center - halfwidth) / spacing) * spacing in
  let upper = ((center + halfwidth) / spacing) * spacing in
  if lower >= upper then (lower - spacing, upper + spacing) else (lower, upper)

let gen_mint t lp ~round ~time =
  t.n_mints <- t.n_mints + 1;
  let open_positions = !(positions_of t lp) in
  (* Mostly supplement an open position; open fresh ones only below the
     per-LP cap. This keeps the live position count bounded by the LP
     population, which is what bounds the paper's sync cost and sidechain
     growth ("it remains invariant even with a variation of transaction
     distributions", Table 5). *)
  let at_cap = List.length open_positions >= t.cfg.Config.max_positions_per_lp in
  let target =
    match open_positions with
    | _ :: _ when at_cap || Rng.float t.rng < 0.8 ->
      Tx.Existing_position (Rng.pick t.rng (Array.of_list open_positions))
    | _ :: _ | [] -> Tx.New_position
  in
  let lower_tick, upper_tick = pick_range t in
  let tx =
    make_tx t lp ~round ~time
      (Tx.Mint
         { lower_tick; upper_tick;
           amount0_desired = amount t ~max_units:1000;
           amount1_desired = amount t ~max_units:1000;
           target })
  in
  (match target with
  | Tx.New_position ->
    (* The committee derives the id from the mint tx; compute it the same
       way so later burns/collects can reference it. *)
    register_position t lp (Uniswap.Position.derive_id ~minter:lp.Party.address ~tx_id:tx.Tx.id)
  | Tx.Existing_position _ -> ());
  tx

(* A mint re-targeting an existing position keeps its original range on
   the pool side; the generated ticks are simply ignored there, matching
   the paper's "an existing position will receive an increase in its
   balance". *)

let gen_burn t lp ~round ~time =
  t.n_burns <- t.n_burns + 1;
  match !(positions_of t lp) with
  | [] -> gen_mint t lp ~round ~time (* nothing to burn yet: provide instead *)
  | positions ->
    let pid = Rng.pick t.rng (Array.of_list positions) in
    let full = Rng.float t.rng < 0.3 in
    if full then unregister_position t lp pid;
    make_tx t lp ~round ~time
      (Tx.Burn
         { burn_position = pid;
           amount0_requested = (if full then U256.max_value else amount t ~max_units:50);
           amount1_requested = (if full then U256.max_value else amount t ~max_units:50) })

let gen_collect t lp ~round ~time =
  t.n_collects <- t.n_collects + 1;
  match !(positions_of t lp) with
  | [] -> gen_mint t lp ~round ~time
  | positions ->
    let pid = Rng.pick t.rng (Array.of_list positions) in
    make_tx t lp ~round ~time
      (Tx.Collect
         { collect_position = pid;
           fees0_requested = U256.max_value;
           fees1_requested = U256.max_value })

let generate_one t ~round ~time =
  t.generated <- t.generated + 1;
  let d = t.cfg.Config.distribution in
  let roll = Rng.float t.rng *. 100.0 in
  let lp () = Rng.pick t.rng t.lps in
  if roll < d.Config.swap_pct then gen_swap t (Rng.pick t.rng t.users) ~round ~time
  else if roll < d.Config.swap_pct +. d.Config.mint_pct then gen_mint t (lp ()) ~round ~time
  else if roll < d.Config.swap_pct +. d.Config.mint_pct +. d.Config.burn_pct then
    gen_burn t (lp ()) ~round ~time
  else gen_collect t (lp ()) ~round ~time

let iter_round t ~round ~time f =
  let n = Config.arrivals_per_round t.cfg in
  for _ = 1 to n do
    f (generate_one t ~round ~time)
  done;
  n

let generate_round t ~round ~time =
  let acc = ref [] in
  ignore (iter_round t ~round ~time (fun tx -> acc := tx :: !acc));
  List.rev !acc

type type_stats = {
  ts_name : string;
  ts_share_pct : float;
  ts_daily_volume : float;
  ts_avg_size : float;
}

let table8_stats t =
  let total = float_of_int (Stdlib.max 1 t.generated) in
  let days =
    float_of_int t.generated /. float_of_int (Stdlib.max 1 t.cfg.Config.daily_volume)
  in
  let row name count op =
    let c = float_of_int count in
    { ts_name = name; ts_share_pct = 100.0 *. c /. total;
      ts_daily_volume = (if days > 0.0 then c /. days else 0.0);
      ts_avg_size = float_of_int (Chain.Encoding.ethereum_op_size op) }
  in
  [ row "Swap" t.n_swaps Chain.Encoding.Op_swap;
    row "Mint" t.n_mints Chain.Encoding.Op_mint;
    row "Burn" t.n_burns Chain.Encoding.Op_burn;
    row "Collect" t.n_collects Chain.Encoding.Op_collect ]

let generated t = t.generated
